(** Strike-based quarantine of repeatedly faulting states.

    The phase supervisor charges a strike against a state each time it
    faults without terminating (an undecided verification, a contained
    exception). After [max_strikes] strikes the state is quarantined:
    the caller removes it from its searcher so the rest of the phase
    keeps making progress. Keys are state ids. *)

type t

val create : max_strikes:int -> t
(** [max_strikes] is clamped to at least 1. *)

val strike : t -> int -> bool
(** [strike t id] charges one strike; [true] means the state has reached
    the limit and must be quarantined (its strike record is cleared and
    the eviction is counted). *)

val strikes_of : t -> int -> int
(** Current strikes charged against a live (not yet evicted) state. *)

val total_strikes : t -> int
(** Strikes charged over the whole run, including evicted states. *)

val evicted : t -> int
(** States quarantined so far. *)

val max_strikes : t -> int
