(** Strike-based quarantine of repeatedly faulting states.

    The phase supervisor charges a strike against a state each time it
    faults without terminating (an undecided verification, a contained
    exception). After [max_strikes] strikes the state is quarantined:
    the caller removes it from its searcher so the rest of the phase
    keeps making progress. Keys are state ids.

    A quarantine can outlive one run: {!epoch} clears the per-state
    strike counts (state ids restart per run) while the cumulative
    totals and the per-site eviction records persist. Callers that run
    seeds sequentially ([Driver.run ?quarantine] across invocations) can
    thread one quarantine this way so a fork site that struck out under
    one seed fails fast under the next. [Driver.run_pool] does {e not}:
    each pool session owns a private quarantine inside its runtime
    context, the price of running turns on concurrent domains with
    byte-identical reports at every [--jobs] width
    (docs/parallelism.md). *)

type t

val create : ?registry:Pbse_telemetry.Telemetry.Registry.t -> max_strikes:int -> unit -> t
(** [max_strikes] is clamped to at least 1. [registry] owns the
    strike/eviction counters (default
    {!Pbse_telemetry.Telemetry.Registry.default}). *)

val epoch : t -> unit
(** Start a new run against the same quarantine: per-state strikes are
    cleared; totals, evictions and site records persist. *)

val strike : t -> ?site:int -> int -> bool
(** [strike t ~site id] charges one strike; [true] means the state has
    reached the limit and must be quarantined (its strike record is
    cleared and the eviction is counted). [site] is the state's fork
    site (a global block id, negative when unknown): sites with prior
    evictions lower the state's effective limit — by one per recorded
    eviction, floored at 1 — so known-bad fork points are retired
    faster in later epochs. *)

val strikes_of : t -> int -> int
(** Current strikes charged against a live (not yet evicted) state. *)

val site_evictions : t -> int -> int
(** Evictions recorded against a fork site, across all epochs. *)

val total_strikes : t -> int
(** Strikes charged over the quarantine's lifetime, including evicted
    states and earlier epochs. *)

val evicted : t -> int
(** States quarantined over the quarantine's lifetime. *)

val max_strikes : t -> int
