let tm_strikes = Pbse_telemetry.Telemetry.counter "quarantine.strikes"
let tm_evictions = Pbse_telemetry.Telemetry.counter "quarantine.evictions"

type t = {
  limit : int;
  strikes : (int, int) Hashtbl.t;
  mutable total : int;
  mutable evictions : int;
}

let create ~max_strikes =
  { limit = max 1 max_strikes; strikes = Hashtbl.create 64; total = 0; evictions = 0 }

let strike t id =
  let s = (match Hashtbl.find_opt t.strikes id with Some s -> s | None -> 0) + 1 in
  t.total <- t.total + 1;
  Pbse_telemetry.Telemetry.incr tm_strikes;
  if s >= t.limit then begin
    Hashtbl.remove t.strikes id;
    t.evictions <- t.evictions + 1;
    Pbse_telemetry.Telemetry.incr tm_evictions;
    true
  end
  else begin
    Hashtbl.replace t.strikes id s;
    false
  end

let strikes_of t id =
  match Hashtbl.find_opt t.strikes id with Some s -> s | None -> 0

let total_strikes t = t.total

let evicted t = t.evictions

let max_strikes t = t.limit
