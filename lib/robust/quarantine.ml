module Telemetry = Pbse_telemetry.Telemetry

type t = {
  limit : int;
  strikes : (int, int) Hashtbl.t; (* per-state, cleared by [epoch] *)
  sites : (int, int) Hashtbl.t; (* fork site -> evictions, persistent *)
  mutable total : int;
  mutable evictions : int;
  tm_strikes : Telemetry.counter;
  tm_evictions : Telemetry.counter;
}

let create ?registry ~max_strikes () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  {
    limit = max 1 max_strikes;
    strikes = Hashtbl.create 64;
    sites = Hashtbl.create 64;
    total = 0;
    evictions = 0;
    tm_strikes = Telemetry.Registry.counter registry "quarantine.strikes";
    tm_evictions = Telemetry.Registry.counter registry "quarantine.evictions";
  }

let epoch t = Hashtbl.reset t.strikes

let site_evictions t site =
  match Hashtbl.find_opt t.sites site with Some n -> n | None -> 0

(* A state whose fork site already produced evictions (in this or an
   earlier epoch) starts closer to the limit: known-bad sites fail fast
   instead of re-earning every strike each run. The effective limit
   never drops below 1, so every state survives at least one fault. *)
let effective_limit t ~site =
  if site < 0 then t.limit
  else max 1 (t.limit - min (site_evictions t site) (t.limit - 1))

let strike t ?(site = -1) id =
  let s = (match Hashtbl.find_opt t.strikes id with Some s -> s | None -> 0) + 1 in
  t.total <- t.total + 1;
  Telemetry.incr t.tm_strikes;
  if s >= effective_limit t ~site then begin
    Hashtbl.remove t.strikes id;
    t.evictions <- t.evictions + 1;
    if site >= 0 then Hashtbl.replace t.sites site (site_evictions t site + 1);
    Telemetry.incr t.tm_evictions;
    true
  end
  else begin
    Hashtbl.replace t.strikes id s;
    false
  end

let strikes_of t id =
  match Hashtbl.find_opt t.strikes id with Some s -> s | None -> 0

let total_strikes t = t.total

let evicted t = t.evictions

let max_strikes t = t.limit
