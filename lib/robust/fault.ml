type kind =
  | Solver_unknown
  | Solver_injected
  | Exec_abort
  | Exec_injected_abort
  | Exec_exception
  | Mem_pressure
  | Concolic_injected
  | Degenerate_phase
  | Turn_timeout
  | Snapshot_corrupt
  | Resume_mismatch

let all =
  [
    Solver_unknown;
    Solver_injected;
    Exec_abort;
    Exec_injected_abort;
    Exec_exception;
    Mem_pressure;
    Concolic_injected;
    Degenerate_phase;
    Turn_timeout;
    Snapshot_corrupt;
    Resume_mismatch;
  ]

let nkinds = List.length all

let rank = function
  | Solver_unknown -> 0
  | Solver_injected -> 1
  | Exec_abort -> 2
  | Exec_injected_abort -> 3
  | Exec_exception -> 4
  | Mem_pressure -> 5
  | Concolic_injected -> 6
  | Degenerate_phase -> 7
  | Turn_timeout -> 8
  | Snapshot_corrupt -> 9
  | Resume_mismatch -> 10

let label = function
  | Solver_unknown -> "solver-unknown"
  | Solver_injected -> "solver-injected"
  | Exec_abort -> "exec-abort"
  | Exec_injected_abort -> "exec-injected-abort"
  | Exec_exception -> "exec-exception"
  | Mem_pressure -> "mem-pressure"
  | Concolic_injected -> "concolic-injected"
  | Degenerate_phase -> "degenerate-phase"
  | Turn_timeout -> "turn-timeout"
  | Snapshot_corrupt -> "snapshot-corrupt"
  | Resume_mismatch -> "resume-mismatch"

(* Fault details feed dedup keys and resume replay, so they must not
   depend on Printexc's payload rendering (addresses, arguments, ...):
   map an exception to a stable kebab-case label instead. *)
let normalize_exn exn =
  match exn with
  | Failure _ -> "failure"
  | Invalid_argument _ -> "invalid-argument"
  | Not_found -> "not-found"
  | Division_by_zero -> "division-by-zero"
  | Stack_overflow -> "stack-overflow"
  | Out_of_memory -> "out-of-memory"
  | Assert_failure _ -> "assert-failure"
  | Match_failure _ -> "match-failure"
  | End_of_file -> "end-of-file"
  | Sys_error _ -> "sys-error"
  | exn ->
    (* constructor name only: cut the payload, kebab-case the rest *)
    let s = Printexc.to_string exn in
    let cut =
      match String.index_opt s '(' with Some i -> i | None -> String.length s
    in
    let s = String.trim (String.sub s 0 cut) in
    let b = Bytes.of_string (String.lowercase_ascii s) in
    Bytes.iteri
      (fun i c ->
        let keep =
          (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.' || c = '-'
        in
        if not keep then Bytes.set b i '-')
      b;
    let s = Bytes.to_string b in
    if s = "" then "exception" else s

module Telemetry = Pbse_telemetry.Telemetry

type t = {
  kind : kind;
  detail : string;
  vtime : int;
}

(* Recent entries are a two-block ring (newest-first): [cur] fills to
   [max_recent], then displaces [older] wholesale. Records stay O(1) and
   {!recent} always has the latest [max_recent..2*max_recent) entries to
   pick from. *)
type log = {
  counts : int array;
  mutable cur : t list; (* newest first *)
  mutable cur_len : int;
  mutable older : t list; (* previous full block, newest first *)
  (* one registry counter per kind, mirroring the per-log counts into
     the owning registry's view (docs/telemetry.md) *)
  tm : Telemetry.counter array;
}

let max_recent = 256

let log_create ?registry () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  let tm =
    Array.of_list
      (List.map (fun k -> Telemetry.Registry.counter registry ("fault." ^ label k)) all)
  in
  { counts = Array.make nkinds 0; cur = []; cur_len = 0; older = []; tm }

let record log ?(detail = "") ~vtime kind =
  log.counts.(rank kind) <- log.counts.(rank kind) + 1;
  Telemetry.incr log.tm.(rank kind);
  log.cur <- { kind; detail; vtime } :: log.cur;
  log.cur_len <- log.cur_len + 1;
  if log.cur_len >= max_recent then begin
    log.older <- log.cur;
    log.cur <- [];
    log.cur_len <- 0
  end

let count log kind = log.counts.(rank kind)

let total log = Array.fold_left ( + ) 0 log.counts

let recent log =
  let newest_first = log.cur @ log.older in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  List.rev (take max_recent newest_first)

let summary log =
  let parts =
    List.filter_map
      (fun k ->
        let c = count log k in
        if c = 0 then None else Some (Printf.sprintf "%s=%d" (label k) c))
      all
  in
  match parts with [] -> "no faults" | _ -> String.concat " " parts

let restore_counts log pairs =
  (* campaign resume: reinstate per-kind counts from a snapshot. The
     recent-entry ring is not restored (counts are the durable record);
     mirrored registry counters are restored separately by the caller. *)
  List.iter
    (fun (lbl, c) ->
      match List.find_opt (fun k -> label k = lbl) all with
      | Some k -> log.counts.(rank k) <- c
      | None -> ())
    pairs
