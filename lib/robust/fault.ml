type kind =
  | Solver_unknown
  | Solver_injected
  | Exec_abort
  | Exec_injected_abort
  | Exec_exception
  | Mem_pressure
  | Concolic_injected
  | Degenerate_phase

let all =
  [
    Solver_unknown;
    Solver_injected;
    Exec_abort;
    Exec_injected_abort;
    Exec_exception;
    Mem_pressure;
    Concolic_injected;
    Degenerate_phase;
  ]

let nkinds = List.length all

let rank = function
  | Solver_unknown -> 0
  | Solver_injected -> 1
  | Exec_abort -> 2
  | Exec_injected_abort -> 3
  | Exec_exception -> 4
  | Mem_pressure -> 5
  | Concolic_injected -> 6
  | Degenerate_phase -> 7

let label = function
  | Solver_unknown -> "solver-unknown"
  | Solver_injected -> "solver-injected"
  | Exec_abort -> "exec-abort"
  | Exec_injected_abort -> "exec-injected-abort"
  | Exec_exception -> "exec-exception"
  | Mem_pressure -> "mem-pressure"
  | Concolic_injected -> "concolic-injected"
  | Degenerate_phase -> "degenerate-phase"

module Telemetry = Pbse_telemetry.Telemetry

type t = {
  kind : kind;
  detail : string;
  vtime : int;
}

(* Recent entries are a two-block ring (newest-first): [cur] fills to
   [max_recent], then displaces [older] wholesale. Records stay O(1) and
   {!recent} always has the latest [max_recent..2*max_recent) entries to
   pick from. *)
type log = {
  counts : int array;
  mutable cur : t list; (* newest first *)
  mutable cur_len : int;
  mutable older : t list; (* previous full block, newest first *)
  (* one registry counter per kind, mirroring the per-log counts into
     the owning registry's view (docs/telemetry.md) *)
  tm : Telemetry.counter array;
}

let max_recent = 256

let log_create ?registry () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  let tm =
    Array.of_list
      (List.map (fun k -> Telemetry.Registry.counter registry ("fault." ^ label k)) all)
  in
  { counts = Array.make nkinds 0; cur = []; cur_len = 0; older = []; tm }

let record log ?(detail = "") ~vtime kind =
  log.counts.(rank kind) <- log.counts.(rank kind) + 1;
  Telemetry.incr log.tm.(rank kind);
  log.cur <- { kind; detail; vtime } :: log.cur;
  log.cur_len <- log.cur_len + 1;
  if log.cur_len >= max_recent then begin
    log.older <- log.cur;
    log.cur <- [];
    log.cur_len <- 0
  end

let count log kind = log.counts.(rank kind)

let total log = Array.fold_left ( + ) 0 log.counts

let recent log =
  let newest_first = log.cur @ log.older in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  List.rev (take max_recent newest_first)

let summary log =
  let parts =
    List.filter_map
      (fun k ->
        let c = count log k in
        if c = 0 then None else Some (Printf.sprintf "%s=%d" (label k) c))
      all
  in
  match parts with [] -> "no faults" | _ -> String.concat " " parts
