(** Deterministic fault injection.

    A plan names the fault rates to force on a run: solver queries that
    return Unknown, executor slices that abort, fork attempts that hit
    simulated [max_live] memory pressure, and lazy forks of the concolic
    pass whose seedState is dropped. Decisions are drawn from a
    seeded RNG, so a given plan against a given (deterministic) engine
    run fires at exactly the same points every time — the test suite
    relies on this to assert crash-freedom and byte-identical reports
    under faults.

    Flag grammar (the CLI's [--inject] and the [PBSE_INJECT] variable):

    {v seed=N,solver=R,abort=R,mem=R,concolic=R,crash=R,snapshot=R v}

    where each clause is optional, [N] is an integer RNG seed (default
    1) and each [R] is a rate in [0, 1] (default 0). *)

type plan = {
  seed : int;
  solver_unknown_rate : float;
  exec_abort_rate : float;
  mem_pressure_rate : float;
  concolic_drop_rate : float; (* lazy-fork seedStates dropped (concolic pass) *)
  turn_crash_rate : float; (* campaign turns killed at entry (pool driver) *)
  snapshot_corrupt_rate : float; (* checkpoint writes corrupted on disk *)
}

val none : plan
(** All rates zero: injection disabled. *)

val is_active : plan -> bool

val parse : string -> (plan, string) result
(** Parses the flag grammar above. *)

val to_string : plan -> string
(** Round-trips through {!parse}. *)

type t
(** An instantiated plan: the plan plus its RNG stream and fire counts. *)

val create : plan -> t

val plan : t -> plan

val fire_solver_unknown : t -> bool
val fire_exec_abort : t -> bool
val fire_mem_pressure : t -> bool
val fire_concolic_drop : t -> bool
val fire_turn_crash : t -> bool
val fire_snapshot_corrupt : t -> bool
(** Each call draws one decision from the stream (no draw when the
    corresponding rate is zero, so disabled channels cost nothing and do
    not perturb the others). *)

val fired : t -> int
(** Total faults injected so far across all channels. *)
