module Rng = Pbse_util.Rng

type plan = {
  seed : int;
  solver_unknown_rate : float;
  exec_abort_rate : float;
  mem_pressure_rate : float;
  concolic_drop_rate : float;
  turn_crash_rate : float;
  snapshot_corrupt_rate : float;
}

let none =
  {
    seed = 1;
    solver_unknown_rate = 0.0;
    exec_abort_rate = 0.0;
    mem_pressure_rate = 0.0;
    concolic_drop_rate = 0.0;
    turn_crash_rate = 0.0;
    snapshot_corrupt_rate = 0.0;
  }

let is_active p =
  p.solver_unknown_rate > 0.0 || p.exec_abort_rate > 0.0 || p.mem_pressure_rate > 0.0
  || p.concolic_drop_rate > 0.0 || p.turn_crash_rate > 0.0
  || p.snapshot_corrupt_rate > 0.0

let parse s =
  let parse_clause plan clause =
    match String.index_opt clause '=' with
    | None -> Error (Printf.sprintf "bad clause %S (want key=value)" clause)
    | Some i ->
      let key = String.trim (String.sub clause 0 i) in
      let v = String.trim (String.sub clause (i + 1) (String.length clause - i - 1)) in
      let rate () =
        match float_of_string_opt v with
        | Some f when f >= 0.0 && f <= 1.0 -> Ok f
        | Some _ | None ->
          Error (Printf.sprintf "bad rate %S for %s (want a float in [0, 1])" v key)
      in
      (match key with
       | "seed" -> (
         match int_of_string_opt v with
         | Some n -> Ok { plan with seed = n }
         | None -> Error (Printf.sprintf "bad seed %S (want an integer)" v))
       | "solver" -> Result.map (fun r -> { plan with solver_unknown_rate = r }) (rate ())
       | "abort" -> Result.map (fun r -> { plan with exec_abort_rate = r }) (rate ())
       | "mem" -> Result.map (fun r -> { plan with mem_pressure_rate = r }) (rate ())
       | "concolic" ->
         Result.map (fun r -> { plan with concolic_drop_rate = r }) (rate ())
       | "crash" -> Result.map (fun r -> { plan with turn_crash_rate = r }) (rate ())
       | "snapshot" ->
         Result.map (fun r -> { plan with snapshot_corrupt_rate = r }) (rate ())
       | _ ->
         Error
           (Printf.sprintf
              "unknown key %S (want seed|solver|abort|mem|concolic|crash|snapshot)"
              key))
  in
  if String.trim s = "" then Ok none (* every clause is optional *)
  else
    List.fold_left
      (fun acc clause -> Result.bind acc (fun plan -> parse_clause plan clause))
      (Ok none)
      (String.split_on_char ',' s)

let to_string p =
  Printf.sprintf "seed=%d,solver=%g,abort=%g,mem=%g,concolic=%g,crash=%g,snapshot=%g"
    p.seed p.solver_unknown_rate p.exec_abort_rate p.mem_pressure_rate
    p.concolic_drop_rate p.turn_crash_rate p.snapshot_corrupt_rate

type counts = {
  mutable solver : int;
  mutable abort : int;
  mutable mem : int;
  mutable concolic : int;
  mutable crash : int;
  mutable snapshot : int;
}

type t = {
  plan : plan;
  solver_rng : Rng.t;
  abort_rng : Rng.t;
  mem_rng : Rng.t;
  concolic_rng : Rng.t;
  crash_rng : Rng.t;
  snapshot_rng : Rng.t;
  counts : counts;
}

(* Each channel draws from its own stream split off the plan seed, so
   changing one rate never shifts where the other channels fire. *)
let create plan =
  let root = Rng.create plan.seed in
  let solver_rng = Rng.split root in
  let abort_rng = Rng.split root in
  let mem_rng = Rng.split root in
  let concolic_rng = Rng.split root in
  (* split last so pre-existing channels keep their streams *)
  let crash_rng = Rng.split root in
  let snapshot_rng = Rng.split root in
  {
    plan;
    solver_rng;
    abort_rng;
    mem_rng;
    concolic_rng;
    crash_rng;
    snapshot_rng;
    counts = { solver = 0; abort = 0; mem = 0; concolic = 0; crash = 0; snapshot = 0 };
  }

let plan t = t.plan

let fire rng rate = rate > 0.0 && Rng.float rng 1.0 < rate

let fire_solver_unknown t =
  let hit = fire t.solver_rng t.plan.solver_unknown_rate in
  if hit then t.counts.solver <- t.counts.solver + 1;
  hit

let fire_exec_abort t =
  let hit = fire t.abort_rng t.plan.exec_abort_rate in
  if hit then t.counts.abort <- t.counts.abort + 1;
  hit

let fire_mem_pressure t =
  let hit = fire t.mem_rng t.plan.mem_pressure_rate in
  if hit then t.counts.mem <- t.counts.mem + 1;
  hit

let fire_concolic_drop t =
  let hit = fire t.concolic_rng t.plan.concolic_drop_rate in
  if hit then t.counts.concolic <- t.counts.concolic + 1;
  hit

let fire_turn_crash t =
  let hit = fire t.crash_rng t.plan.turn_crash_rate in
  if hit then t.counts.crash <- t.counts.crash + 1;
  hit

let fire_snapshot_corrupt t =
  let hit = fire t.snapshot_rng t.plan.snapshot_corrupt_rate in
  if hit then t.counts.snapshot <- t.counts.snapshot + 1;
  hit

let fired t =
  t.counts.solver + t.counts.abort + t.counts.mem + t.counts.concolic + t.counts.crash
  + t.counts.snapshot
