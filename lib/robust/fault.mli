(** Structured fault taxonomy for the fault-contained pipeline.

    Every component failure the engine survives — a solver query giving
    up, an executor abort, a contained exception, fork suppression under
    memory pressure, a degenerate phase division — is recorded here
    instead of being silently swallowed or allowed to crash the run. The
    log is deterministic: counts are kept per kind in a fixed order, so
    two runs with the same virtual-clock history render byte-identical
    summaries. *)

type kind =
  | Solver_unknown (* a solver query exhausted its work budget *)
  | Solver_injected (* an injected solver Unknown (fault injection) *)
  | Exec_abort (* the executor aborted a state (halt, overflow, ...) *)
  | Exec_injected_abort (* an injected executor abort *)
  | Exec_exception (* an exception contained by the phase supervisor *)
  | Mem_pressure (* a fork suppressed by the live-state cap *)
  | Concolic_injected (* an injected concolic seedState drop *)
  | Degenerate_phase (* phase division fell back to one phase *)
  | Turn_timeout (* a campaign turn overran its watchdog deadline *)
  | Snapshot_corrupt (* a checkpoint failed its checksum or schema check *)
  | Resume_mismatch (* resumed state diverged from the snapshot's record *)

val all : kind list
(** Every kind, in the fixed summary order. *)

val label : kind -> string
(** Stable kebab-case name, e.g. ["solver-unknown"]. *)

val normalize_exn : exn -> string
(** Stable kebab-case label for an exception — the constructor name
    without its payload (e.g. [Failure "x"] is ["failure"]) — so fault
    details are byte-identical across runs and resumes. *)

type t = {
  kind : kind;
  detail : string;
  vtime : int; (* virtual time of the fault *)
}

type log

val log_create : ?registry:Pbse_telemetry.Telemetry.Registry.t -> unit -> log
(** [registry] owns the per-kind fault counters (default
    {!Pbse_telemetry.Telemetry.Registry.default}). *)

val record : log -> ?detail:string -> vtime:int -> kind -> unit

val count : log -> kind -> int

val total : log -> int

val recent : log -> t list
(** Most recent faults, oldest first (capped at 256). *)

val summary : log -> string
(** Deterministic one-line rendering: ["kind=count ..."] for every kind
    with a nonzero count, or ["no faults"]. *)

val restore_counts : log -> (string * int) list -> unit
(** Reinstate per-kind counts from [(label, count)] pairs recorded in a
    campaign snapshot. Unknown labels are ignored; the recent-entry ring
    is left empty (counts are the durable record) and mirrored registry
    counters are the caller's responsibility. *)
