(** Structured fault taxonomy for the fault-contained pipeline.

    Every component failure the engine survives — a solver query giving
    up, an executor abort, a contained exception, fork suppression under
    memory pressure, a degenerate phase division — is recorded here
    instead of being silently swallowed or allowed to crash the run. The
    log is deterministic: counts are kept per kind in a fixed order, so
    two runs with the same virtual-clock history render byte-identical
    summaries. *)

type kind =
  | Solver_unknown (* a solver query exhausted its work budget *)
  | Solver_injected (* an injected solver Unknown (fault injection) *)
  | Exec_abort (* the executor aborted a state (halt, overflow, ...) *)
  | Exec_injected_abort (* an injected executor abort *)
  | Exec_exception (* an exception contained by the phase supervisor *)
  | Mem_pressure (* a fork suppressed by the live-state cap *)
  | Concolic_injected (* an injected concolic seedState drop *)
  | Degenerate_phase (* phase division fell back to one phase *)

val all : kind list
(** Every kind, in the fixed summary order. *)

val label : kind -> string
(** Stable kebab-case name, e.g. ["solver-unknown"]. *)

type t = {
  kind : kind;
  detail : string;
  vtime : int; (* virtual time of the fault *)
}

type log

val log_create : ?registry:Pbse_telemetry.Telemetry.Registry.t -> unit -> log
(** [registry] owns the per-kind fault counters (default
    {!Pbse_telemetry.Telemetry.Registry.default}). *)

val record : log -> ?detail:string -> vtime:int -> kind -> unit

val count : log -> kind -> int

val total : log -> int

val recent : log -> t list
(** Most recent faults, oldest first (capped at 256). *)

val summary : log -> string
(** Deterministic one-line rendering: ["kind=count ..."] for every kind
    with a nonzero count, or ["no faults"]. *)
