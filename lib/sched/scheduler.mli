(** Phase-selection policies behind one interface.

    The engine loop (Driver) repeatedly asks [select] for the next
    phase turn, runs states from that phase's searcher until the turn
    budget is exhausted, then reports the outcome back: [credit] when
    the phase stays schedulable, [evict] when it is retired (drained or
    its searcher failed). [drained] ends the loop. All bookkeeping that
    decides {e which} phase runs next lives behind this interface; the
    caller owns the per-phase counters in {!Phase_queue} (it executes
    the slices) and the policies read them.

    Policies are deterministic: identical call sequences yield identical
    selections, which the byte-identical-report determinism test relies
    on. *)

type turn = {
  queue : Phase_queue.t;
  budget : int; (* virtual-time allowance for this turn *)
}

type stats = {
  mutable turns : int; (* turns granted *)
  mutable rotations : int; (* full rotations (policy-specific) *)
  mutable evictions : int; (* queues retired *)
  mutable failovers : int; (* retired because their searcher failed *)
}

type t = {
  name : string;
  select : unit -> turn option;
      (** Next phase to run and its budget; [None] when no queues remain. *)
  credit : Phase_queue.t -> elapsed:int -> new_cover:int -> unit;
      (** The turn ended and the phase stays schedulable. *)
  evict : Phase_queue.t -> failed:bool -> unit;
      (** Retire the phase ([failed] marks searcher fail-over, as opposed
          to a drained queue). *)
  drained : unit -> bool;  (** No queues left to schedule. *)
  remaining : unit -> Phase_queue.t list;
      (** Queues still schedulable, in policy order. *)
  stats : stats;
}

val round_robin :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Phase_queue.t list ->
  t
(** The paper's Algorithm 3: first-appearance order, budget grows by one
    [time_period] per full rotation. *)

val sequential :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Phase_queue.t list ->
  t
(** Ablation policy: drain each phase to exhaustion in order. *)

val coverage_greedy :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Phase_queue.t list ->
  t
(** Greedy alternative: highest new-cover-per-dwell ratio first
    (integer cross-multiplied, ties to the lower ordinal). *)

val trap_first :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Phase_queue.t list ->
  t
(** Round-robin rotations and budgets, but trap phases take their turns
    first within each rotation (appearance order within each class). *)

val names : string list
(** All policy names accepted by {!by_name}. *)

val by_name :
  string ->
  (?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Phase_queue.t list ->
  t)
  option
(** Factories accept the registry that owns their [sched.*] counters
    (default {!Pbse_telemetry.Telemetry.Registry.default}). *)
