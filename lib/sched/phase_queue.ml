module Searcher = Pbse_exec.Searcher
module State = Pbse_exec.State
module Report = Pbse_telemetry.Report
module Telemetry = Pbse_telemetry.Telemetry

type t = {
  ordinal : int;
  pid : int;
  trap : bool;
  searcher : Searcher.t;
  turn_dwell : Telemetry.histogram;
  mutable seeded : int;
  mutable turns : int;
  mutable slices : int;
  mutable new_cover : int;
  mutable dwell : int;
  mutable quarantined : int;
  mutable subsumed : int;
  mutable summarized : int;
}

let create ?registry ~ordinal ~pid ~trap searcher =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  {
    ordinal;
    pid;
    trap;
    searcher;
    turn_dwell =
      Telemetry.Registry.histogram registry
        (Printf.sprintf "phase.%d.turn_dwell" ordinal);
    seeded = 0;
    turns = 0;
    slices = 0;
    new_cover = 0;
    dwell = 0;
    quarantined = 0;
    subsumed = 0;
    summarized = 0;
  }

let seed q st =
  q.searcher.Searcher.add st;
  q.seeded <- q.seeded + 1

let size q = q.searcher.Searcher.size ()

let stat_row q =
  {
    Report.ordinal = q.ordinal;
    pid = q.pid;
    trap = q.trap;
    seeded = q.seeded;
    turns = q.turns;
    slices = q.slices;
    new_cover = q.new_cover;
    dwell = q.dwell;
    quarantined = q.quarantined;
    subsumed = q.subsumed;
    summarized = q.summarized;
  }
