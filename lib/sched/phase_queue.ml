module Searcher = Pbse_exec.Searcher
module State = Pbse_exec.State
module Report = Pbse_telemetry.Report

type t = {
  ordinal : int;
  pid : int;
  trap : bool;
  searcher : Searcher.t;
  mutable seeded : int;
  mutable turns : int;
  mutable slices : int;
  mutable new_cover : int;
  mutable dwell : int;
  mutable quarantined : int;
}

let create ~ordinal ~pid ~trap searcher =
  {
    ordinal;
    pid;
    trap;
    searcher;
    seeded = 0;
    turns = 0;
    slices = 0;
    new_cover = 0;
    dwell = 0;
    quarantined = 0;
  }

let seed q st =
  q.searcher.Searcher.add st;
  q.seeded <- q.seeded + 1

let size q = q.searcher.Searcher.size ()

let stat_row q =
  {
    Report.ordinal = q.ordinal;
    pid = q.pid;
    trap = q.trap;
    seeded = q.seeded;
    turns = q.turns;
    slices = q.slices;
    new_cover = q.new_cover;
    dwell = q.dwell;
    quarantined = q.quarantined;
  }
