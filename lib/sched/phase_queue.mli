(** One schedulable phase: its searcher plus scheduling bookkeeping.

    The mutable counters feed the per-phase rows of the run report; they
    are a few ints per phase, so they are maintained unconditionally.
    The engine loop owns the counters (it executes the slices); the
    {!Scheduler} policies only read them. *)

type t = {
  ordinal : int; (* 1-based position in first-appearance order *)
  pid : int; (* cluster id from the phase division *)
  trap : bool;
  searcher : Pbse_exec.Searcher.t;
  turn_dwell : Pbse_telemetry.Telemetry.histogram;
      (* per-turn dwell distribution, named [phase.<ordinal>.turn_dwell] *)
  mutable seeded : int; (* seedStates initially mapped here *)
  mutable turns : int;
  mutable slices : int;
  mutable new_cover : int; (* slices that covered a new block *)
  mutable dwell : int; (* virtual time spent in this phase's turns *)
  mutable quarantined : int; (* states evicted while this phase ran *)
  mutable subsumed : int; (* states pruned by subsumption in its turns *)
  mutable summarized : int; (* loop summaries applied in its turns *)
}

val create :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  ordinal:int ->
  pid:int ->
  trap:bool ->
  Pbse_exec.Searcher.t ->
  t
(** All counters start at zero. [registry] owns the per-phase
    [turn_dwell] histogram (default
    {!Pbse_telemetry.Telemetry.Registry.default}). *)

val seed : t -> Pbse_exec.State.t -> unit
(** Adds a seedState to the phase's searcher and counts it. *)

val size : t -> int
(** Live states in the phase's searcher. *)

val stat_row : t -> Pbse_telemetry.Report.phase_row
(** Snapshot of the counters as a report row. *)
