module Telemetry = Pbse_telemetry.Telemetry

type turn = {
  queue : Phase_queue.t;
  budget : int;
}

type stats = {
  mutable turns : int;
  mutable rotations : int;
  mutable evictions : int;
  mutable failovers : int;
}

type t = {
  name : string;
  select : unit -> turn option;
  credit : Phase_queue.t -> elapsed:int -> new_cover:int -> unit;
  evict : Phase_queue.t -> failed:bool -> unit;
  drained : unit -> bool;
  remaining : unit -> Phase_queue.t list;
  stats : stats;
}

let stats_create () = { turns = 0; rotations = 0; evictions = 0; failovers = 0 }

(* Policy telemetry lives in the registry the factory was given, so
   concurrent sessions (one per domain) never share instrument state. *)
type instruments = {
  i_turns : Telemetry.counter;
  i_rotations : Telemetry.counter;
  i_evictions : Telemetry.counter;
  i_failovers : Telemetry.counter;
}

let instruments ?registry () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  {
    i_turns = Telemetry.Registry.counter registry "sched.turns";
    i_rotations = Telemetry.Registry.counter registry "sched.rotations";
    i_evictions = Telemetry.Registry.counter registry "sched.evictions";
    i_failovers = Telemetry.Registry.counter registry "sched.failovers";
  }

let note_turn ins st =
  st.turns <- st.turns + 1;
  Telemetry.incr ins.i_turns

let note_rotation ins st =
  st.rotations <- st.rotations + 1;
  Telemetry.incr ins.i_rotations

let note_eviction ins st ~failed =
  st.evictions <- st.evictions + 1;
  Telemetry.incr ins.i_evictions;
  if failed then begin
    st.failovers <- st.failovers + 1;
    Telemetry.incr ins.i_failovers
  end

(* Remove one queue (matched by ordinal) from the array, preserving order. *)
let array_remove queues (q : Phase_queue.t) =
  let n = Array.length !queues in
  match
    Array.to_list !queues
    |> List.mapi (fun i x -> (i, x))
    |> List.find_opt (fun (_, (x : Phase_queue.t)) -> x.Phase_queue.ordinal = q.Phase_queue.ordinal)
  with
  | None -> ()
  | Some (idx, _) ->
    queues :=
      Array.init (n - 1) (fun i -> if i < idx then !queues.(i) else !queues.(i + 1))

(* The paper's policy (Algorithm 3): cycle the queues in first-appearance
   order; every full rotation grows the per-turn budget by one
   [time_period]. On eviction the next queue shifts into the vacated
   slot, so the cursor stays put. *)
let round_robin ?registry ~time_period queue_list =
  let ins = instruments ?registry () in
  let queues = ref (Array.of_list queue_list) in
  let pos = ref 0 in
  let rotation = ref 1 in
  let stats = stats_create () in
  let wrap () =
    if !pos >= Array.length !queues then begin
      pos := 0;
      incr rotation;
      note_rotation ins stats
    end
  in
  {
    name = "round-robin";
    select =
      (fun () ->
        if Array.length !queues = 0 then None
        else begin
          note_turn ins stats;
          Some { queue = !queues.(!pos); budget = !rotation * time_period }
        end);
    credit =
      (fun _q ~elapsed:_ ~new_cover:_ ->
        incr pos;
        wrap ());
    evict =
      (fun q ~failed ->
        note_eviction ins stats ~failed;
        array_remove queues q;
        wrap ());
    drained = (fun () -> Array.length !queues = 0);
    remaining = (fun () -> Array.to_list !queues);
    stats;
  }

(* Ablation policy: drain the head queue to exhaustion before moving on;
   the budget grows only as whole phases retire. *)
let sequential ?registry ~time_period queue_list =
  let ins = instruments ?registry () in
  let queues = ref (Array.of_list queue_list) in
  let rotation = ref 0 in
  let stats = stats_create () in
  {
    name = "sequential";
    select =
      (fun () ->
        if Array.length !queues = 0 then None
        else begin
          note_turn ins stats;
          Some { queue = !queues.(0); budget = (!rotation + 1) * time_period }
        end);
    credit = (fun _q ~elapsed:_ ~new_cover:_ -> ());
    evict =
      (fun q ~failed ->
        note_eviction ins stats ~failed;
        array_remove queues q;
        incr rotation;
        note_rotation ins stats);
    drained = (fun () -> Array.length !queues = 0);
    remaining = (fun () -> Array.to_list !queues);
    stats;
  }

(* Greedy alternative: always run the queue with the best
   new-cover-per-dwell ratio, (new_cover + 1) / (dwell + time_period),
   compared by integer cross-multiplication so there is no float
   rounding; ties break toward the lower ordinal. Each queue's budget
   grows with its own turn count, so a productive phase earns longer
   stretches without starving the comparison. *)
let coverage_greedy ?registry ~time_period queue_list =
  let ins = instruments ?registry () in
  let queues = ref (Array.of_list queue_list) in
  let stats = stats_create () in
  let better (a : Phase_queue.t) (b : Phase_queue.t) =
    let lhs = (a.Phase_queue.new_cover + 1) * (b.Phase_queue.dwell + time_period) in
    let rhs = (b.Phase_queue.new_cover + 1) * (a.Phase_queue.dwell + time_period) in
    if lhs <> rhs then lhs > rhs else a.Phase_queue.ordinal < b.Phase_queue.ordinal
  in
  {
    name = "coverage-greedy";
    select =
      (fun () ->
        if Array.length !queues = 0 then None
        else begin
          note_turn ins stats;
          let best = Array.fold_left (fun acc q -> if better q acc then q else acc) !queues.(0) !queues in
          Some { queue = best; budget = (best.Phase_queue.turns + 1) * time_period }
        end);
    credit = (fun _q ~elapsed:_ ~new_cover:_ -> ());
    evict =
      (fun q ~failed ->
        note_eviction ins stats ~failed;
        array_remove queues q);
    drained = (fun () -> Array.length !queues = 0);
    remaining = (fun () -> Array.to_list !queues);
    stats;
  }

(* Round-robin with trap priority: every phase still gets exactly one
   turn per rotation with the same growing budget, but within each
   rotation the trap phases (the paper's prime bug habitat) take their
   turns first, in appearance order, followed by the non-trap phases.
   The pending list is rebuilt at each rotation boundary from the
   still-live queues, so evictions never starve the order. *)
let trap_first ?registry ~time_period queue_list =
  let ins = instruments ?registry () in
  let queues = ref (Array.of_list queue_list) in
  let rotation = ref 1 in
  let stats = stats_create () in
  let order () =
    let live = Array.to_list !queues in
    List.filter (fun (q : Phase_queue.t) -> q.Phase_queue.trap) live
    @ List.filter (fun (q : Phase_queue.t) -> not q.Phase_queue.trap) live
  in
  let pending = ref (order ()) in
  let drop q =
    pending :=
      List.filter
        (fun (x : Phase_queue.t) -> x.Phase_queue.ordinal <> q.Phase_queue.ordinal)
        !pending
  in
  let refill_if_done () =
    if !pending = [] && Array.length !queues > 0 then begin
      incr rotation;
      note_rotation ins stats;
      pending := order ()
    end
  in
  {
    name = "trap-first";
    select =
      (fun () ->
        if Array.length !queues = 0 then None
        else begin
          refill_if_done ();
          note_turn ins stats;
          Some { queue = List.hd !pending; budget = !rotation * time_period }
        end);
    credit =
      (fun q ~elapsed:_ ~new_cover:_ ->
        drop q;
        refill_if_done ());
    evict =
      (fun q ~failed ->
        note_eviction ins stats ~failed;
        array_remove queues q;
        drop q;
        refill_if_done ());
    drained = (fun () -> Array.length !queues = 0);
    remaining = (fun () -> Array.to_list !queues);
    stats;
  }

let names = [ "round-robin"; "sequential"; "coverage-greedy"; "trap-first" ]

let by_name = function
  | "round-robin" -> Some round_robin
  | "sequential" -> Some sequential
  | "coverage-greedy" -> Some coverage_greedy
  | "trap-first" -> Some trap_first
  | _ -> None
