(* Incremental prefix contexts.

   Symbolic execution issues nearly every query against a path that
   extends an already-seen prefix by a handful of constraints: the
   state's previous query plus the pins and branch conditions assumed
   since, a sibling fork's shared prefix, a lazy child verified against
   its parent's path, an escalating retry of the same query. The old
   entry point re-walked the whole path per query to find the
   constraints sharing bytes with [extra].

   A prefix context indexes a path once and is {e extended} — never
   rebuilt — when a query arrives whose path adds constraints on top of
   an indexed prefix. Contexts are persistent (maps, not hash tables),
   so an extension costs O(delta) and shares the rest with its parent:

   - a by-byte index of the prefix constraints, making the component
     closure for a query O(component);
   - learned per-byte intervals (endpoint trimming against each newly
     added constraint), handed to the search as initial domain bounds;
   - the last Sat model produced under the prefix — inherited by an
     extension when it satisfies the added constraints — tried as a
     witness before any solving.

   Lookup is by physical identity of the path list: a state's path is a
   persistent cons-list, physically shared with the parent it forked
   from, so walking the spine finds the deepest indexed prefix without
   comparing constraint sets. Structurally equal but physically distinct
   paths get separate entries (harmless, bounded table). *)

module Imap = Map.Make (Int)

type entry = {
  path : Expr.t list; (* the exact (physical) prefix this entry indexes *)
  depth : int;
  by_var : Expr.t list Imap.t; (* input byte -> prefix constraints reading it *)
  creads : int list Imap.t; (* constraint id -> its reads *)
  bounds : Interval.t Imap.t; (* learned per-byte intervals *)
  mutable model : Model.t option; (* last Sat model under this prefix *)
  mutable last_use : int; (* LRU clock tick of the last lookup hit *)
}

type t = {
  table : (int, entry list) Hashtbl.t; (* head expr id -> entries *)
  mutable entries : int;
  mutable tick : int; (* LRU clock, advanced per lookup/insert *)
  mutable evictions : int; (* entries dropped by the LRU bound *)
  cap : int;
  root : entry;
  fps : (int, int) Hashtbl.t; (* expr id -> structural fingerprint *)
  hints : (int, Model.t) Hashtbl.t; (* imported: path fingerprint -> witness *)
  mutable hint_installs : int;
}

let default_cap = 16_384

let make_root () =
  {
    path = [];
    depth = 0;
    by_var = Imap.empty;
    creads = Imap.empty;
    bounds = Imap.empty;
    model = None;
    last_use = 0;
  }

let create ?(cap = default_cap) () =
  {
    table = Hashtbl.create 1024;
    entries = 0;
    tick = 0;
    evictions = 0;
    cap = max 16 cap;
    root = make_root ();
    fps = Hashtbl.create 1024;
    hints = Hashtbl.create 64;
    hint_installs = 0;
  }

let clear t =
  Hashtbl.reset t.table;
  t.entries <- 0;
  t.root.model <- None

let evictions t = t.evictions

let size t = t.entries

(* Bounded LRU: at capacity, drop the least-recently-used quarter in one
   batch (instead of the old wholesale reset), so long campaigns keep
   their hot prefixes. O(n log n) every n/4 inserts — amortised O(log n)
   per insert. Survivors keep their ticks; the relative order is all the
   LRU needs, and ticks are per-context, so eviction is deterministic
   for a given query sequence. *)
let evict_lru t =
  let all = Hashtbl.fold (fun _ es acc -> List.rev_append es acc) t.table [] in
  let ages = List.sort Int.compare (List.map (fun e -> e.last_use) all) in
  let drop_target = max 1 (t.entries / 4) in
  (* evict everything at or below the drop-target age; ties share a tick
     (entries built by one extension walk), so the batch can exceed the
     quarter — the condition is per-entry, independent of table order *)
  let threshold = List.nth ages (min (drop_target - 1) (List.length ages - 1)) in
  let dropped = ref 0 in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
  List.iter
    (fun k ->
      match Hashtbl.find_opt t.table k with
      | None -> ()
      | Some es -> (
        let kept =
          List.filter
            (fun e ->
              if e.last_use <= threshold then begin
                incr dropped;
                false
              end
              else true)
            es
        in
        match kept with
        | [] -> Hashtbl.remove t.table k
        | _ -> Hashtbl.replace t.table k kept))
    keys;
  t.entries <- t.entries - !dropped;
  t.evictions <- t.evictions + !dropped

(* Endpoint trimming of one byte's interval against one constraint:
   advance the endpoints while the constraint is definitely false there,
   other bytes held at their learned hulls. Sound: every removed value
   provably violates [c], a constraint any solve involving this byte
   must include (see [closure]). *)
let max_trim_steps = 64

let trim_bound bounds cost v iv (c : Expr.t) =
  let hull i =
    match Imap.find_opt i bounds with Some b -> b | None -> Interval.make 0L 255L
  in
  let false_at x =
    cost := !cost + c.Expr.nodes;
    let lookup i = if i = v then Interval.point (Int64.of_int x) else hull i in
    Interval.definitely_false (Interval.eval lookup c)
  in
  let lo = ref (Int64.to_int iv.Interval.lo) in
  let hi = ref (Int64.to_int iv.Interval.hi) in
  let steps = ref 0 in
  while !lo < !hi && !steps < max_trim_steps && false_at !lo do
    incr lo;
    incr steps
  done;
  steps := 0;
  while !hi > !lo && !steps < max_trim_steps && false_at !hi do
    decr hi;
    incr steps
  done;
  Interval.make (Int64.of_int !lo) (Int64.of_int !hi)

(* Extend [parent] with one constraint [c]; [path] is the physical list
   [c :: parent.path]. O(reads of c). *)
let extend ~reads cost path (c : Expr.t) parent =
  match Expr.is_const c with
  | Some _ ->
    (* constants never join a component; the context only re-anchors *)
    { parent with path; depth = parent.depth + 1; model = parent.model; last_use = 0 }
  | None ->
    let r = reads c in
    cost := !cost + 1 + List.length r;
    let by_var =
      List.fold_left
        (fun m v ->
          let existing = match Imap.find_opt v m with Some l -> l | None -> [] in
          Imap.add v (c :: existing) m)
        parent.by_var r
    in
    let creads = Imap.add c.Expr.id r parent.creads in
    (* learn bounds only for the bytes [c] reads, starting from the
       parent's learned interval — incremental, O(delta) *)
    let bounds =
      if List.length r <= 2 then
        List.fold_left
          (fun m v ->
            let iv =
              match Imap.find_opt v m with Some b -> b | None -> Interval.make 0L 255L
            in
            let iv' = trim_bound parent.bounds cost v iv c in
            if iv'.Interval.lo = iv.Interval.lo && iv'.Interval.hi = iv.Interval.hi
            then m
            else Imap.add v iv' m)
          parent.bounds r
      else parent.bounds
    in
    (* the parent's witness stays valid iff it satisfies the delta *)
    let model =
      match parent.model with
      | Some m ->
        cost := !cost + min c.Expr.nodes 64;
        if Model.satisfies m [ c ] then Some m else None
      | None -> None
    in
    { path; depth = parent.depth + 1; by_var; creads; bounds; model; last_use = 0 }

(* --- cross-context residue -------------------------------------------------

   Entry lookup keys on physical identity and expr ids key on the
   context's own arena, so neither survives a session boundary. What
   does is a *structural* fingerprint of the path (recursing on
   [Expr.node], never on ids) paired with the entry's last Sat model —
   models are arena-free index/value maps. A finished session exports
   (fingerprint, model) pairs; a fresh session imports them as hints and
   installs a hint on any newly built entry whose path fingerprints
   equal, after checking the model actually satisfies the path (so a
   fingerprint collision costs one check, never a wrong witness). *)

let mix h x = (h * 0x01000193) lxor (x land max_int)

let rec expr_fp t (e : Expr.t) =
  match Hashtbl.find_opt t.fps e.Expr.id with
  | Some h -> h
  | None ->
    let h =
      match e.Expr.node with
      | Expr.Const c -> mix (mix 1 (Int64.to_int c)) (Int64.to_int (Int64.shift_right_logical c 31))
      | Expr.Read v -> mix 2 v
      | Expr.Bin (op, a, b) ->
        mix (mix (mix 3 (Hashtbl.hash op)) (expr_fp t a)) (expr_fp t b)
      | Expr.Un (op, a) -> mix (mix 4 (Hashtbl.hash op)) (expr_fp t a)
      | Expr.Ite (c, a, b) ->
        mix (mix (mix 5 (expr_fp t c)) (expr_fp t a)) (expr_fp t b)
    in
    Hashtbl.replace t.fps e.Expr.id h;
    h

let path_fp t path = List.fold_left (fun h e -> mix h (expr_fp t e)) 0x811c9dc5 path

let export t =
  Hashtbl.fold
    (fun _ entries acc ->
      List.fold_left
        (fun acc e ->
          match e.model with
          | Some m -> (path_fp t e.path, Model.bindings m) :: acc
          | None -> acc)
        acc entries)
    t.table []

let import t hints =
  List.iter
    (fun (fp, bindings) ->
      if not (Hashtbl.mem t.hints fp) then
        Hashtbl.replace t.hints fp
          (List.fold_left (fun m (i, v) -> Model.set m i v) Model.empty bindings))
    hints

let hint_installs t = t.hint_installs

let try_hint t e =
  if Hashtbl.length t.hints > 0 && e.model = None then
    match Hashtbl.find_opt t.hints (path_fp t e.path) with
    | Some m when Model.satisfies m e.path ->
      e.model <- Some m;
      t.hint_installs <- t.hint_installs + 1
    | _ -> ()

let head_id (path : Expr.t list) =
  match path with [] -> assert false | e :: _ -> e.Expr.id

(* Physical-identity lookup of an exact path. *)
let lookup t path =
  match Hashtbl.find_opt t.table (head_id path) with
  | None -> None
  | Some entries -> List.find_opt (fun e -> e.path == path) entries

let insert t entry =
  if t.entries >= t.cap then evict_lru t;
  entry.last_use <- t.tick;
  let hid = head_id entry.path in
  let existing = match Hashtbl.find_opt t.table hid with Some l -> l | None -> [] in
  Hashtbl.replace t.table hid (entry :: existing);
  t.entries <- t.entries + 1

type outcome = {
  ctx : entry;
  reused : bool; (* an indexed prefix (exact or ancestor) was reused *)
  built : int; (* entries constructed by this call *)
  cost : int; (* work units the construction spent *)
}

(* Walk the physical spine of [path] down to the deepest indexed prefix
   (or the empty root), then extend back up, caching every intermediate
   context. Amortised O(delta): the common caller pattern — query, pin a
   few constraints, query again — finds the previous query's context
   after a few steps. *)
let find_or_build t ~reads path =
  t.tick <- t.tick + 1;
  let rec walk path pending =
    match path with
    | [] -> (t.root, false, pending)
    | c :: rest -> (
      match lookup t path with
      | Some e ->
        e.last_use <- t.tick;
        (e, true, pending)
      | None -> walk rest ((path, c) :: pending))
  in
  let base, hit_table, pending = walk path [] in
  let cost = ref 0 in
  let ctx =
    List.fold_left
      (fun parent (sub, c) ->
        let e = extend ~reads cost sub c parent in
        insert t e;
        try_hint t e;
        e)
      base pending
  in
  {
    ctx;
    (* a reuse means an already-indexed context served as the base —
       an exact hit, a cached ancestor, or the (trivial) empty prefix *)
    reused = hit_table || pending = [];
    built = List.length pending;
    cost = !cost;
  }

let bound e v = Imap.find_opt v e.bounds

let model e = e.model

let note_model e m = e.model <- Some m

(* Component closure: [extra] plus every prefix constraint transitively
   sharing an input byte with it — a BFS over the by-byte index, O(size
   of the component) instead of O(path) per fixpoint round. [spend] is
   charged once per selected prefix constraint. *)
let closure e ~reads ~spend extra =
  let in_component = Hashtbl.create 64 in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let selected = ref extra in
  let add_var v =
    if not (Hashtbl.mem in_component v) then begin
      Hashtbl.replace in_component v ();
      Queue.add v queue
    end
  in
  List.iter
    (fun (x : Expr.t) ->
      (* never re-select a prefix constraint already present in [extra] *)
      Hashtbl.replace seen x.Expr.id ();
      List.iter add_var (reads x))
    extra;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    match Imap.find_opt v e.by_var with
    | None -> ()
    | Some cs ->
      List.iter
        (fun (c : Expr.t) ->
          if not (Hashtbl.mem seen c.Expr.id) then begin
            Hashtbl.replace seen c.Expr.id ();
            spend 1;
            selected := c :: !selected;
            match Imap.find_opt c.Expr.id e.creads with
            | Some r -> List.iter add_var r
            | None -> ()
          end)
        cs
  done;
  !selected
