(** The solving core: budgeted backtracking over per-byte domains.

    Stateless apart from the caller's {!meter}: the probe and search
    mutate nothing but their own scratch structures, so {!Solver} keeps
    all caches and statistics. *)

exception Out_of_budget

type meter = {
  mutable spent : int;
  limit : int;
}

val meter : limit:int -> meter

val spend : meter -> int -> unit
(** Charge work units; raises {!Out_of_budget} past [limit]. *)

type group
(** A set of constraints over the input bytes they mention, indexed for
    propagation ([by_var], [creads]). *)

val build_group : reads:(Expr.t -> int list) -> Expr.t list -> group

val group_vars : group -> int array
(** Sorted input indices the group constrains. *)

type group_result =
  | Gsat of (int * int) list (* input index, value *)
  | Gunsat
  | Gunknown

val solve_group :
  on_node:(unit -> unit) ->
  meter ->
  hint:Model.t ->
  focus:int list ->
  bounds:(int -> Interval.t option) ->
  group ->
  group_result
(** Probe the hint's neighbourhood on the [focus] bytes first, then run
    interval propagation plus depth-first search. [bounds] supplies
    externally learned per-byte intervals (e.g. a prefix context's),
    intersected into the initial domains; sound as long as each bound is
    implied by constraints present in the group. [on_node] fires once
    per search-tree node (the caller's statistics hook). *)
