(** Incremental prefix contexts for {!Solver.check_assuming}.

    Nearly every query of symbolic execution extends an already-seen
    path prefix by a handful of constraints (the pins and branch
    conditions assumed since the state's previous query, a sibling
    fork's shared prefix, a verify retry). A prefix context indexes a
    path once and is {e extended} — never rebuilt — as paths grow;
    contexts are persistent maps, so an extension costs O(delta) and
    shares the rest with its parent. Each context carries:

    - a by-byte index for O(component) closure computation;
    - learned per-byte intervals (endpoint trimming against each added
      constraint), used as initial search domains;
    - the last Sat model produced under the prefix (inherited across
      extensions while it satisfies the delta), a candidate witness.

    Lookup walks the path's physical spine: paths are persistent
    cons-lists shared between a state and its forks, so identity
    comparison finds the deepest indexed prefix without comparing
    constraint sets. The table is a bounded LRU: at [cap] entries the
    least-recently-used quarter is dropped in one batch, so long
    campaigns keep their hot prefixes instead of resetting wholesale.
    Eviction is deterministic for a given query sequence (the LRU clock
    is per-context, never wall time). *)

type entry

type t

val create : ?cap:int -> unit -> t
(** [cap] bounds the number of cached contexts (default 16384, floor 16). *)

val clear : t -> unit

val size : t -> int
(** Number of cached contexts. *)

val evictions : t -> int
(** Total contexts dropped by the LRU bound since creation. *)

type outcome = {
  ctx : entry;
  reused : bool; (* an indexed prefix (exact or ancestor) served as base *)
  built : int; (* contexts constructed by this call *)
  cost : int; (* work units construction spent (charge to the meter) *)
}

val find_or_build : t -> reads:(Expr.t -> int list) -> Expr.t list -> outcome
(** Context for this exact path (newest first, as stored on states).
    Walks down to the deepest indexed prefix, then extends upward,
    caching every intermediate context; [cost] is reported rather than
    charged so the caller can meter it {e after} the contexts are safely
    cached (an out-of-budget retry then hits instead of rebuilding). *)

val closure :
  entry -> reads:(Expr.t -> int list) -> spend:(int -> unit) -> Expr.t list -> Expr.t list
(** [closure e ~reads ~spend extra] — [extra] plus every prefix
    constraint transitively sharing an input byte with it (BFS over the
    by-byte index). [spend] is charged once per selected prefix
    constraint. *)

val bound : entry -> int -> Interval.t option
(** Learned interval for an input byte, if any tightening was found.
    Sound for any query whose constraint set includes the prefix
    constraints reading that byte — which {!closure} guarantees. *)

val model : entry -> Model.t option
(** Last Sat model produced under this prefix (or inherited from an
    ancestor whose model satisfies the delta). It satisfies the whole
    prefix by construction, so it is a valid witness whenever it also
    satisfies the new query's extra constraints. *)

val note_model : entry -> Model.t -> unit

(** {1 Cross-context residue}

    Entries key on physical path identity and arena-local expr ids, so
    they can't cross a session boundary — but a {e structural}
    fingerprint of the path (recursing on {!Expr.node}) paired with the
    entry's last Sat model can: models are arena-free index/value maps.
    A finished session {!export}s its residue; a fresh session
    {!import}s it as hints, installed on newly built entries whose path
    fingerprints match, after a [Model.satisfies] check against the
    entry's own path (a fingerprint collision costs one check, never a
    wrong witness). *)

val export : t -> (int * (int * int) list) list
(** [(path fingerprint, model bindings)] for every cached context that
    holds a witness model. *)

val import : t -> (int * (int * int) list) list -> unit
(** Register exported residue as hints; first import per fingerprint
    wins. *)

val hint_installs : t -> int
(** Imported hints installed as entry witnesses so far. *)
