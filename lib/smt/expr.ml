open Pbse_ir.Types

type t = {
  id : int;
  hkey : int;
  node : node;
  max_read : int;
  nodes : int;
  bits : int64;
}

and node =
  | Const of int64
  | Read of int
  | Bin of binop * t * t
  | Un of unop * t
  | Ite of t * t * t

(* --- hash-consing ------------------------------------------------------- *)

let node_equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Read i, Read j -> i = j
  | Bin (op1, a1, b1), Bin (op2, a2, b2) -> op1 = op2 && a1.id = a2.id && b1.id = b2.id
  | Un (op1, a1), Un (op2, a2) -> op1 = op2 && a1.id = a2.id
  | Ite (c1, t1, e1), Ite (c2, t2, e2) -> c1.id = c2.id && t1.id = t2.id && e1.id = e2.id
  | (Const _ | Read _ | Bin _ | Un _ | Ite _), _ -> false

let combine h a = (h * 0x01000193) lxor a

let node_hash = function
  | Const x -> combine 1 (Int64.to_int x land max_int)
  | Read i -> combine 2 i
  | Bin (op, a, b) -> combine (combine (combine 3 (Hashtbl.hash op)) a.id) b.id
  | Un (op, a) -> combine (combine 4 (Hashtbl.hash op)) a.id
  | Ite (c, t, e) -> combine (combine (combine 5 c.id) t.id) e.id

module Table = Hashtbl.Make (struct
  type nonrec t = node

  let equal = node_equal
  let hash = node_hash
end)

(* Hash-consing arena: one interning table per execution context. Each
   driver session owns an arena and installs it (domain-locally) before
   running, so parallel campaign turns never contend on a shared table
   and a session's interning behaviour is identical regardless of which
   domain — or how many — executes its turns. The table holds strong
   references: an arena's expressions live exactly as long as the arena
   (a session), which keeps solver caches keyed on ids immune to
   re-interning nondeterminism. *)
type arena = { table : t Table.t }

(* Ids are allocated in per-domain blocks: a domain holds a private
   [next, limit) range and bumps a plain field, so the hot interning
   path never touches shared memory; only a refill (every [id_block]
   ids) claims a fresh block from the process-wide cursor. Blocks are
   disjoint, so ids stay globally unique and id equality still implies
   physical equality even across arenas (e.g. the shared [zero]/[one]
   constants interned at module initialisation). Ids are NOT dense or
   allocation-ordered across domains — which is fine, because every
   id-keyed structure (solver caches, memo tables) is
   renaming-invariant: only id {e equality} carries meaning
   (docs/parallelism.md). *)
let id_block = 8192
let next_block = Atomic.make 0
let block_refills = Atomic.make 0

type id_cell = { mutable next : int; mutable limit : int }

let dls_ids : id_cell Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { next = 0; limit = 0 })

let fresh_id () =
  let cell = Domain.DLS.get dls_ids in
  if cell.next >= cell.limit then begin
    let b = Atomic.fetch_and_add next_block 1 in
    Atomic.incr block_refills;
    cell.next <- b * id_block;
    cell.limit <- (b + 1) * id_block
  end;
  let id = cell.next in
  cell.next <- id + 1;
  id

let id_block_refills () = Atomic.get block_refills
let arena () = { table = Table.create 4096 }
let dls_arena : arena Domain.DLS.key = Domain.DLS.new_key arena
let use_arena a = Domain.DLS.set dls_arena a

(* Smallest all-ones mask covering [v] (unsigned). *)
let smear v =
  let rec widen m =
    if Int64.unsigned_compare m v >= 0 then m
    else widen (Int64.logor (Int64.shift_left m 1) 1L)
  in
  if v = 0L then 0L else if v < 0L then -1L else widen 1L

(* Sound superset of the bits the expression's value can have set. Used
   for cheap comparison folding and to recognise disjoint-bit [Or]
   compositions (little-endian field reads) in the interval analysis. *)
let bits_of node =
  match node with
  | Const c -> c
  | Read _ -> 0xFFL
  | Bin (op, a, b) -> (
    let open Pbse_ir.Types in
    match op with
    | And -> Int64.logand a.bits b.bits
    | Or | Xor -> Int64.logor a.bits b.bits
    | Add ->
      if Int64.logand a.bits b.bits = 0L then Int64.logor a.bits b.bits
      else
        let both = Int64.logor a.bits b.bits in
        if both < 0L then -1L else Int64.logor (smear both) (Int64.add (smear both) 1L)
    | Mul ->
      if a.bits = 0L || b.bits = 0L then 0L
      else if
        a.bits > 0L && b.bits > 0L
        && Int64.div Int64.max_int (smear a.bits) >= smear b.bits
      then smear (Int64.mul (smear a.bits) (smear b.bits))
      else -1L
    | Shl -> (
      match b.node with
      | Const k when Int64.unsigned_compare k 64L < 0 ->
        Int64.shift_left a.bits (Int64.to_int k)
      | _ -> -1L)
    | Lshr -> (
      match b.node with
      | Const k when Int64.unsigned_compare k 64L < 0 ->
        Int64.shift_right_logical a.bits (Int64.to_int k)
      | _ -> if a.bits >= 0L then smear a.bits else -1L)
    | Eq | Ne | Ult | Ule | Slt | Sle -> 1L
    | Udiv | Urem -> if a.bits >= 0L then smear a.bits else -1L
    | Sub | Sdiv | Srem | Ashr -> -1L)
  | Un (op, a) -> (
    let open Pbse_ir.Types in
    match op with
    | Trunc8 -> Int64.logand a.bits 0xFFL
    | Trunc16 -> Int64.logand a.bits 0xFFFFL
    | Trunc32 -> Int64.logand a.bits 0xFFFFFFFFL
    | Sext8 -> if Int64.logand a.bits 0x80L = 0L then a.bits else -1L
    | Sext16 -> if Int64.logand a.bits 0x8000L = 0L then a.bits else -1L
    | Sext32 -> if Int64.logand a.bits 0x80000000L = 0L then a.bits else -1L
    | Neg | Not -> -1L)
  | Ite (_, t, e) -> Int64.logor t.bits e.bits

let make node =
  let max_read, nodes =
    match node with
    | Const _ -> (-1, 1)
    | Read i -> (i, 1)
    | Bin (_, a, b) -> (max a.max_read b.max_read, 1 + a.nodes + b.nodes)
    | Un (_, a) -> (a.max_read, 1 + a.nodes)
    | Ite (c, t, e) ->
      (max c.max_read (max t.max_read e.max_read), 1 + c.nodes + t.nodes + e.nodes)
  in
  let table = (Domain.DLS.get dls_arena).table in
  match Table.find_opt table node with
  | Some interned -> interned
  | None ->
    let interned =
      { id = fresh_id (); hkey = node_hash node land max_int;
        node; max_read; nodes; bits = bits_of node }
    in
    Table.add table node interned;
    interned

let table_stats () = Table.length (Domain.DLS.get dls_arena).table

(* --- constructors with simplification ----------------------------------- *)

let const c = make (Const c)
let of_int i = const (Int64.of_int i)
let zero = const 0L
let one = const 1L
let all_ones = const (-1L)

let read i =
  if i < 0 then invalid_arg "Expr.read: negative index";
  make (Read i)

let is_const e = match e.node with Const c -> Some c | Read _ | Bin _ | Un _ | Ite _ -> None
let is_concrete e = e.max_read < 0

(* Unsigned upper bound that is obvious from the node shape alone; used to
   fold comparisons against constants without a full interval analysis.
   Returns None when no cheap bound exists. *)
let cheap_ubound e = if e.bits >= 0L then Some e.bits else None

let is_boolean e =
  match e.node with
  | Bin ((Eq | Ne | Ult | Ule | Slt | Sle), _, _) -> true
  | Const (0L | 1L) -> true
  | Const _ | Read _ | Bin _ | Un _ | Ite _ -> false

let negate_cmp e =
  match e.node with
  | Bin (Eq, a, b) -> Some (make (Bin (Ne, a, b)))
  | Bin (Ne, a, b) -> Some (make (Bin (Eq, a, b)))
  | Bin (Ult, a, b) -> Some (make (Bin (Ule, b, a)))
  | Bin (Ule, a, b) -> Some (make (Bin (Ult, b, a)))
  | Bin (Slt, a, b) -> Some (make (Bin (Sle, b, a)))
  | Bin (Sle, a, b) -> Some (make (Bin (Slt, b, a)))
  | Const c -> Some (if c = 0L then one else zero)
  | Read _ | Bin _ | Un _ | Ite _ -> None

let rec bin op a b =
  match (a.node, b.node) with
  | Const x, Const y -> const (Semantics.binop op x y)
  | _ -> bin_simplify op a b

and bin_simplify op a b =
  let default () = make (Bin (op, a, b)) in
  match op with
  | Add -> (
    match (a.node, b.node) with
    | Const 0L, _ -> b
    | _, Const 0L -> a
    (* normalise constants to the right and reassociate, so loop-counter
       chains (((i + 1) + 1) + ...) stay constant-size *)
    | Const _, _ -> bin Add b a
    | Bin (Add, x, { node = Const c1; _ }), Const c2 ->
      bin Add x (const (Int64.add c1 c2))
    | _, _ -> default ())
  | Sub -> (
    match (a.node, b.node) with
    | _, Const 0L -> a
    | _, _ when a.id = b.id -> zero
    | _, Const c -> bin Add a (const (Int64.neg c))
    | _, _ -> default ())
  | Mul -> (
    match (a.node, b.node) with
    | Const 0L, _ | _, Const 0L -> zero
    | Const 1L, _ -> b
    | _, Const 1L -> a
    | Const _, _ -> bin Mul b a
    | _, _ -> default ())
  | And -> (
    match (a.node, b.node) with
    | Const 0L, _ | _, Const 0L -> zero
    | Const -1L, _ -> b
    | _, Const -1L -> a
    | _, _ when a.id = b.id -> a
    | Const _, _ -> bin And b a
    | Bin (And, x, { node = Const c1; _ }), Const c2 ->
      bin And x (const (Int64.logand c1 c2))
    | _, Const m -> (
      (* masking a value already within the mask is the identity *)
      match cheap_ubound a with
      | Some ub
        when Int64.unsigned_compare ub m <= 0
             && Int64.logand (Int64.add m 1L) m = 0L -> a
      | Some _ | None -> default ())
    | _, _ -> default ())
  | Or -> (
    match (a.node, b.node) with
    | Const 0L, _ -> b
    | _, Const 0L -> a
    | Const -1L, _ | _, Const -1L -> all_ones
    | _, _ when a.id = b.id -> a
    | Const _, _ -> bin Or b a
    | _, _ -> default ())
  | Xor -> (
    match (a.node, b.node) with
    | Const 0L, _ -> b
    | _, Const 0L -> a
    | _, _ when a.id = b.id -> zero
    | _, _ -> default ())
  | Shl | Lshr -> (
    match (a.node, b.node) with
    | Const 0L, _ -> zero
    | _, Const 0L -> a
    | _, _ -> default ())
  | Ashr -> (
    match (a.node, b.node) with
    | Const 0L, _ -> zero
    | _, Const 0L -> a
    | _, _ -> default ())
  | Eq -> (
    match (a.node, b.node) with
    | _, _ when a.id = b.id -> one
    | Const _, _ -> bin Eq b a
    | _, Const 0L when is_boolean a -> (
      match negate_cmp a with Some e -> e | None -> make (Bin (Eq, a, b)))
    | _, Const 1L when is_boolean a -> a
    | _, Const c -> (
      match cheap_ubound a with
      | Some ub when Int64.unsigned_compare c ub > 0 -> zero
      | Some _ | None -> make (Bin (Eq, a, b)))
    | _, _ -> default ())
  | Ne -> (
    match (a.node, b.node) with
    | _, _ when a.id = b.id -> zero
    | Const _, _ -> bin Ne b a
    | _, Const 0L when is_boolean a -> a
    | _, Const c -> (
      match cheap_ubound a with
      | Some ub when Int64.unsigned_compare c ub > 0 -> one
      | Some _ | None -> make (Bin (Ne, a, b)))
    | _, _ -> default ())
  | Ult -> (
    match (a.node, b.node) with
    | _, _ when a.id = b.id -> zero
    | _, Const 0L -> zero
    | _, Const c -> (
      match cheap_ubound a with
      | Some ub when Int64.unsigned_compare ub c < 0 -> one
      | Some _ | None -> default ())
    | _, _ -> default ())
  | Ule -> (
    match (a.node, b.node) with
    | _, _ when a.id = b.id -> one
    | Const 0L, _ -> one
    | _, Const c -> (
      match cheap_ubound a with
      | Some ub when Int64.unsigned_compare ub c <= 0 -> one
      | Some _ | None -> default ())
    | _, _ -> default ())
  | Slt -> if a.id = b.id then zero else default ()
  | Sle -> if a.id = b.id then one else default ()
  | Udiv | Sdiv | Urem | Srem -> (
    match (a.node, b.node) with
    | _, Const 1L when op = Udiv || op = Sdiv -> a
    | _, Const 1L -> zero
    | _, _ -> default ())

let un op a =
  match a.node with
  | Const x -> const (Semantics.unop op x)
  | _ -> (
    match op with
    (* canonicalise truncations to masks so the solver sees one shape *)
    | Trunc8 -> bin And a (const 0xFFL)
    | Trunc16 -> bin And a (const 0xFFFFL)
    | Trunc32 -> bin And a (const 0xFFFFFFFFL)
    | Neg -> bin Sub zero a
    | Not -> bin Xor a all_ones
    | Sext8 | Sext16 | Sext32 -> (
      (* extension is the identity when the sign bit is provably clear *)
      let bits = match op with Sext8 -> 7L | Sext16 -> 15L | _ -> 31L in
      let limit = Int64.shift_left 1L (Int64.to_int bits) in
      match cheap_ubound a with
      | Some ub when Int64.unsigned_compare ub limit < 0 -> a
      | Some _ | None -> make (Un (op, a))))

let ite c t e =
  match c.node with
  | Const 0L -> e
  | Const _ -> t
  | _ -> if t.id = e.id then t else make (Ite (c, t, e))

let lognot e =
  match negate_cmp e with
  | Some ne -> ne
  | None -> bin Eq e zero

(* --- queries ------------------------------------------------------------ *)

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash a = a.hkey

let reads e =
  let seen = Hashtbl.create 64 in
  let acc = Hashtbl.create 16 in
  let rec go e =
    if e.max_read >= 0 && not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      match e.node with
      | Read i -> Hashtbl.replace acc i ()
      | Const _ -> ()
      | Bin (_, a, b) ->
        go a;
        go b
      | Un (_, a) -> go a
      | Ite (c, t, e') ->
        go c;
        go t;
        go e'
    end
  in
  go e;
  List.sort Int.compare (Hashtbl.fold (fun k () l -> k :: l) acc [])

let eval lookup e =
  let memo = Hashtbl.create 64 in
  let rec go e =
    match e.node with
    | Const c -> c
    | Read i -> Int64.of_int (lookup i land 0xFF)
    | Bin _ | Un _ | Ite _ -> (
      match Hashtbl.find_opt memo e.id with
      | Some v -> v
      | None ->
        let v =
          match e.node with
          | Bin (op, a, b) -> Semantics.binop op (go a) (go b)
          | Un (op, a) -> Semantics.unop op (go a)
          | Ite (c, t, e') -> if Semantics.truthy (go c) then go t else go e'
          | Const _ | Read _ -> assert false
        in
        Hashtbl.add memo e.id v;
        v)
  in
  go e

let to_string e =
  let buf = Buffer.create 64 in
  let rec go e =
    match e.node with
    | Const c -> Buffer.add_string buf (Int64.to_string c)
    | Read i -> Buffer.add_string buf (Printf.sprintf "in[%d]" i)
    | Bin (op, a, b) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (Pbse_ir.Printer.binop_to_string op);
      Buffer.add_char buf ' ';
      go a;
      Buffer.add_char buf ' ';
      go b;
      Buffer.add_char buf ')'
    | Un (op, a) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (Pbse_ir.Printer.unop_to_string op);
      Buffer.add_char buf ' ';
      go a;
      Buffer.add_char buf ')'
    | Ite (c, t, e') ->
      Buffer.add_string buf "(ite ";
      go c;
      Buffer.add_char buf ' ';
      go t;
      Buffer.add_char buf ' ';
      go e';
      Buffer.add_char buf ')'
  in
  go e;
  Buffer.contents buf
