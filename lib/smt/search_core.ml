(* The solving core: budgeted backtracking search over per-byte domains
   with interval propagation, plus the hint-neighbourhood probe that
   short-circuits it. Stateless apart from the caller's meter — solver
   bookkeeping (stats, caches) stays in [Solver]. *)

(* --- work accounting ------------------------------------------------------ *)

exception Out_of_budget

(* Raises [Out_of_budget] when the per-query allowance is exhausted. *)
type meter = {
  mutable spent : int;
  limit : int;
}

let meter ~limit = { spent = 0; limit }

let spend m n =
  m.spent <- m.spent + n;
  if m.spent > m.limit then raise Out_of_budget

(* --- byte domains --------------------------------------------------------- *)

(* Mutable domain of one input byte during a group solve. *)
type domain = {
  allowed : Bytes.t; (* 256 flags *)
  mutable size : int;
  mutable dlo : int;
  mutable dhi : int;
}

let domain_full () = { allowed = Bytes.make 256 '\001'; size = 256; dlo = 0; dhi = 255 }

let domain_mem d v = Bytes.get d.allowed v <> '\000'

let domain_remove d v =
  if domain_mem d v then begin
    Bytes.set d.allowed v '\000';
    d.size <- d.size - 1;
    if d.size > 0 then begin
      while d.dlo < 256 && not (domain_mem d d.dlo) do
        d.dlo <- d.dlo + 1
      done;
      while d.dhi >= 0 && not (domain_mem d d.dhi) do
        d.dhi <- d.dhi - 1
      done
    end
  end

let domain_interval d = Interval.make (Int64.of_int d.dlo) (Int64.of_int d.dhi)

(* --- groups --------------------------------------------------------------- *)

type group = {
  constraints : Expr.t array;
  vars : int array; (* sorted input indices *)
  var_pos : (int, int) Hashtbl.t; (* input index -> position in [vars] *)
  by_var : int list array; (* position -> constraint indices *)
  creads : int list array; (* constraint -> input indices *)
}

let build_group ~reads exprs =
  let constraints = Array.of_list exprs in
  let creads = Array.map reads constraints in
  let var_set = Hashtbl.create 16 in
  Array.iter (List.iter (fun v -> Hashtbl.replace var_set v ())) creads;
  let vars =
    Hashtbl.fold (fun v () acc -> v :: acc) var_set [] |> List.sort Int.compare
    |> Array.of_list
  in
  let var_pos = Hashtbl.create (Array.length vars * 2) in
  Array.iteri (fun pos v -> Hashtbl.replace var_pos v pos) vars;
  let by_var = Array.make (Array.length vars) [] in
  Array.iteri
    (fun ci reads ->
      List.iter
        (fun v ->
          let pos = Hashtbl.find var_pos v in
          by_var.(pos) <- ci :: by_var.(pos))
        reads)
    creads;
  { constraints; vars; var_pos; by_var; creads }

let group_vars g = g.vars

type group_result =
  | Gsat of (int * int) list (* input index, value *)
  | Gunsat
  | Gunknown

(* --- hint-neighbourhood probe --------------------------------------------- *)

(* Fast path: most fork queries in loops ask for "one more iteration" —
   a model one small step away from the hint on the newly constrained
   bytes. Probe hint +/- powers of two on each focus byte before any
   domain work; constraints are evaluated lazily and the probe aborts on
   the first falsified one, so failed probes are nearly free. *)
let probe_deltas = [ 1; -1; 2; -2; 4; -4; 8; -8; 16; -16; 32; -32; 64; -64; 128 ]

let probe_neighborhood meter ~hint group focus =
  let satisfied lookup =
    Array.for_all
      (fun (c : Expr.t) ->
        spend meter (min c.Expr.nodes 64);
        Semantics.truthy (Expr.eval lookup c))
      group.constraints
  in
  let try_model overrides =
    let lookup i =
      match List.assoc_opt i overrides with
      | Some v -> v land 0xFF
      | None -> Model.get hint i
    in
    if satisfied lookup then
      Some (Array.to_list (Array.map (fun v -> (v, lookup v)) group.vars))
    else None
  in
  let rec try_var vars =
    match vars with
    | [] -> None
    | v :: rest ->
      let base = Model.get hint v in
      let rec try_delta = function
        | [] -> try_var rest
        | d :: ds ->
          let candidate = base + d in
          if candidate >= 0 && candidate <= 255 then
            match try_model [ (v, candidate) ] with
            | Some bindings -> Some bindings
            | None -> try_delta ds
          else try_delta ds
      in
      try_delta probe_deltas
  in
  match try_model [] with
  | Some bindings -> Some bindings
  | None -> try_var focus

(* --- backtracking search -------------------------------------------------- *)

(* [bounds] supplies externally learned per-byte intervals (the prefix
   context's); they are intersected into the initial domains. Soundness:
   a bound for byte [v] is implied by constraints that read [v], all of
   which the caller includes in [v]'s group, so the pruned values could
   never appear in a solution of this group anyway. [on_node] is the
   caller's search-node counter. *)
let solve_group_search ~on_node meter ~hint ~bounds group =
  let nvars = Array.length group.vars in
  let domains = Array.init nvars (fun _ -> domain_full ()) in
  (* seed the domains with the learned bounds *)
  Array.iteri
    (fun pos v ->
      match bounds v with
      | None -> ()
      | Some (iv : Interval.t) ->
        let lo = Int64.to_int iv.Interval.lo and hi = Int64.to_int iv.Interval.hi in
        if lo > 0 || hi < 255 then begin
          let d = domains.(pos) in
          for x = 0 to 255 do
            if x < lo || x > hi then domain_remove d x
          done
        end)
    group.vars;
  let assignment = Array.make nvars (-1) in
  (* Interval environment: assigned variables are points, unassigned ones
     are the hull of their remaining domain. *)
  let lookup_interval input_index =
    match Hashtbl.find_opt group.var_pos input_index with
    | None -> Interval.make 0L 255L
    | Some pos ->
      if assignment.(pos) >= 0 then Interval.point (Int64.of_int assignment.(pos))
      else domain_interval domains.(pos)
  in
  let interval_check ci =
    let c = group.constraints.(ci) in
    spend meter c.Expr.nodes;
    not (Interval.definitely_false (Interval.eval lookup_interval c))
  in
  let exact_check ci =
    let c = group.constraints.(ci) in
    spend meter c.Expr.nodes;
    let lookup i =
      match Hashtbl.find_opt group.var_pos i with
      | Some pos when assignment.(pos) >= 0 -> assignment.(pos)
      | Some _ | None -> Model.get hint i
    in
    Semantics.truthy (Expr.eval lookup c)
  in
  (* Bound-consistency pass: trim each variable's domain endpoints while
     a constraint is definitely false there (holding the other variables
     at their domain hulls). Trimming is pay-per-prune — a constraint that
     prunes nothing costs two interval evaluations — yet converges fully
     for the monotone loop-bound chains and magic-byte equalities that
     dominate parser path conditions. *)
  let propagate () =
    let changed = ref true in
    let rounds = ref 0 in
    (* multi-byte equalities narrow one byte per round, highest first;
       six rounds cover a u32 field plus slack *)
    while !changed && !rounds < 6 do
      changed := false;
      incr rounds;
      for pos = 0 to nvars - 1 do
        let narrow ci =
          if List.length group.creads.(ci) <= 6 then begin
            let c = group.constraints.(ci) in
            let false_at v =
              spend meter c.Expr.nodes;
              let lookup i =
                match Hashtbl.find_opt group.var_pos i with
                | Some p when p = pos -> Interval.point (Int64.of_int v)
                | Some p -> domain_interval domains.(p)
                | None -> Interval.make 0L 255L
              in
              Interval.definitely_false (Interval.eval lookup c)
            in
            let d = domains.(pos) in
            while d.size > 0 && false_at d.dlo do
              domain_remove d d.dlo;
              changed := true
            done;
            while d.size > 0 && false_at d.dhi do
              domain_remove d d.dhi;
              changed := true
            done
          end
        in
        List.iter narrow group.by_var.(pos);
        if domains.(pos).size = 0 then raise Exit
      done
    done
  in
  let unassigned ci =
    List.exists
      (fun v ->
        let pos = Hashtbl.find group.var_pos v in
        assignment.(pos) < 0)
      group.creads.(ci)
  in
  (* Depth-first search over variables, cheapest domain first, hint value
     tried first. *)
  let order = Array.init nvars (fun i -> i) in
  let finished = ref None in
  let rec assign depth =
    if depth = nvars then begin
      (* all variables assigned: every constraint must hold exactly *)
      let ok =
        Array.for_all (fun ci -> exact_check ci)
          (Array.init (Array.length group.constraints) (fun i -> i))
      in
      if ok then begin
        finished :=
          Some
            (Array.to_list
               (Array.mapi (fun pos _ -> (group.vars.(pos), assignment.(pos))) group.vars));
        true
      end
      else false
    end
    else begin
      let pos = order.(depth) in
      let d = domains.(pos) in
      let try_value v =
        if not (domain_mem d v) then false
        else begin
          on_node ();
          spend meter 1;
          assignment.(pos) <- v;
          let consistent =
            List.for_all
              (fun ci -> if unassigned ci then interval_check ci else exact_check ci)
              group.by_var.(pos)
          in
          let found = consistent && assign (depth + 1) in
          if not found then assignment.(pos) <- -1;
          found
        end
      in
      (* neighbourhood-first value order: loop-step queries succeed a small
         delta away from the hint; the tail scan keeps the search complete *)
      let hint_v = Model.get hint group.vars.(pos) land 0xFF in
      let deltas = [ 0; 1; -1; 2; -2; 4; -4; 8; -8; 16; -16; 32; -32; 64; -64; 128 ] in
      let near =
        List.filter_map
          (fun delta ->
            let v = hint_v + delta in
            if v >= 0 && v <= 255 then Some v else None)
          deltas
      in
      let rec try_near = function
        | [] ->
          let rec scan v =
            if v > d.dhi then false
            else if (not (List.mem v near)) && try_value v then true
            else scan (v + 1)
          in
          scan d.dlo
        | v :: rest -> if try_value v then true else try_near rest
      in
      try_near near
    end
  in
  match
    (try
       if Array.exists (fun d -> d.size = 0) domains then raise Exit;
       propagate ();
       (* order variables by narrowed domain size *)
       Array.sort (fun a b -> Int.compare domains.(a).size domains.(b).size) order;
       if assign 0 then `Sat else `Unsat
     with
    | Exit -> `Unsat)
  with
  | `Sat -> (
    match !finished with
    | Some bindings -> Gsat bindings
    | None -> Gunknown)
  | `Unsat -> Gunsat

let solve_group ~on_node meter ~hint ~focus ~bounds group =
  let focus = List.filter (Hashtbl.mem group.var_pos) focus in
  match probe_neighborhood meter ~hint group focus with
  | Some bindings -> Gsat bindings
  | None -> solve_group_search ~on_node meter ~hint ~bounds group
