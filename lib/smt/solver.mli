(** Constraint solver over symbolic input bytes.

    Queries are conjunctions of expressions required to be truthy
    (nonzero), exactly like KLEE path conditions. The solver is a complete
    backtracking search over the byte domains of the mentioned input
    positions, accelerated by:

    - model reuse: the caller's hint model (usually the state's last
      model, or the concolic seed) is tried before any search;
    - independence slicing: constraints are partitioned by the input
      bytes they share, and each group is solved separately;
    - interval propagation: per-group arc-consistency passes narrow byte
      domains before and during search;
    - a query cache keyed on hash-consed expression ids.

    Every answer is budgeted. [Sat]/[Unsat] answers are definitive;
    [Unknown] means the work budget ran out. Each call reports the work
    it performed so the engine can charge virtual time for solver effort.

    [Unknown] answers are additionally cached as {e retryable} with the
    budget they failed at: re-issuing the same query retries with twice
    that budget, doubling on each failure up to [retry_cap]. The
    escalation is deterministic (work units, no wall clock), so hard
    queries near phase boundaries eventually resolve instead of silently
    truncating exploration.

    [check_assuming] additionally solves {e incrementally} against the
    path prefix ({!Prefix_ctx}): the path is indexed once per distinct
    prefix, and each query against it pays only for the component of
    constraints sharing input bytes with its [extra] part, seeded with
    the prefix's learned per-byte bounds and its last satisfying model.
    Bursts of sibling queries (branch pairs, switch arms, verify
    retries) hit the same prefix context. *)

type result =
  | Sat of Model.t
  | Unsat
  | Unknown

type stats = {
  mutable queries : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable cache_hits : int;
  mutable hint_hits : int;
  mutable prefix_hits : int; (* check_assuming calls reusing a prefix context *)
  mutable prefix_builds : int; (* prefix contexts built (prefix misses) *)
  mutable prefix_model_hits : int; (* queries answered by a prefix's cached model *)
  mutable search_nodes : int;
  mutable work : int; (* total work units across all queries *)
  mutable retries : int; (* re-issues of a previously Unknown query *)
  mutable escalations : int; (* retries that ran with a raised budget *)
  mutable retry_resolved : int; (* retryable queries later answered *)
  mutable prefix_evictions : int; (* prefix contexts dropped by the LRU bound *)
}

type t

val create :
  ?budget:int ->
  ?retry_cap:int ->
  ?prefix_cap:int ->
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  unit ->
  t
(** [budget] is the work allowance per [check] call (default 60_000).
    [retry_cap] bounds the escalating retry budget (default
    [8 * budget]; clamped to at least [budget]). [prefix_cap] bounds the
    prefix-context LRU ({!Prefix_ctx.create}). [registry] owns the
    solver's telemetry instruments (default {!Telemetry.Registry.default}). *)

val stats : t -> stats

val retry_cap : t -> int

val check : t -> ?hint:Model.t -> Expr.t list -> result * int
(** [check t ~hint cs] decides the conjunction [cs]; the integer is the
    work performed by this call. A [Sat] model binds every input byte
    mentioned in [cs] and inherits [hint] elsewhere. *)

val check_assuming :
  t ->
  ?hint:Model.t ->
  ?on_unsat_core:(Expr.t list -> unit) ->
  path:Expr.t list ->
  Expr.t list ->
  result * int
(** [check_assuming t ~hint ~path extra] decides [path @ extra] under the
    caller-guaranteed invariant that [hint] already satisfies every
    constraint in [path]. Only the constraints transitively sharing input
    bytes with [extra] are re-examined, which makes the per-branch
    queries of symbolic execution O(component) instead of O(path). The
    result is as definitive as [check]'s: disjoint path constraints stay
    satisfied because the returned model only rebinds component bytes.
    Repeated queries against the same prefix reuse its context (counted
    in [prefix_hits]).

    On an [Unsat] answer decided by the group search, [on_unsat_core] is
    called with the failing independence group's constraints — a genuine
    unsat core drawn from [path @ extra] (constraint groups are closed
    under shared input bytes, so the bounds used to refute the group are
    all justified inside it). The callback is {e not} invoked when the
    refutation came from a constant-false constraint in [extra]; such
    queries never reach the search. The path-condition layer
    ({!Pbse_pathcond}-side subsumption) records these cores per block
    boundary and answers superset queries without solving. *)

val sat : t -> ?hint:Model.t -> Expr.t list -> bool
(** [sat t cs] is true only on a definitive [Sat] answer ([Unknown]
    counts as unsatisfiable, the engine's conservative choice). *)

val clear_cache : t -> unit

val export_prefix_hints : t -> (int * (int * int) list) list
(** Arena-free prefix-context residue — [(structural path fingerprint,
    witness-model bindings)] pairs ({!Prefix_ctx.export}) — for carrying
    solver facts across sessions. *)

val import_prefix_hints : t -> (int * (int * int) list) list -> unit
(** Install residue exported from another solver as prefix-model hints
    ({!Prefix_ctx.import}): a newly indexed prefix whose structural
    fingerprint matches starts with the exporter's witness, subject to a
    satisfiability check against its own path. *)
