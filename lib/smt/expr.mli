(** Hash-consed symbolic expressions over 64-bit values.

    Leaves are 64-bit constants and [Read i] — the i-th byte of the
    symbolic input file, always in [0, 255]. Operators are exactly the IR
    operators (their semantics is {!Semantics}), plus if-then-else.

    Hash-consing gives every structurally distinct expression a unique
    [id]; equality is O(1), and sets of expressions (path conditions,
    solver caches) key on ids. Smart constructors constant-fold and apply
    algebraic simplifications, so a fully concrete computation never
    allocates a symbolic node. *)

type t = private {
  id : int;
  hkey : int;
  node : node;
  max_read : int; (* largest input index read; -1 when concrete *)
  nodes : int; (* structural size, for budget heuristics *)
  bits : int64;
  (* sound superset of the bits the value can have set; when non-negative
     it doubles as an unsigned upper bound. Lets the solver treat
     disjoint-bit [Or] compositions (little-endian field reads) exactly. *)
}

and node =
  | Const of int64
  | Read of int
  | Bin of Pbse_ir.Types.binop * t * t
  | Un of Pbse_ir.Types.unop * t
  | Ite of t * t * t

val const : int64 -> t
val of_int : int -> t
val zero : t
val one : t

val read : int -> t
(** [read i] is input byte [i]; raises [Invalid_argument] on negative [i]. *)

val bin : Pbse_ir.Types.binop -> t -> t -> t
val un : Pbse_ir.Types.unop -> t -> t
val ite : t -> t -> t -> t

val lognot : t -> t
(** Boolean negation: comparison nodes flip to their complements, any
    other expression [e] becomes [e == 0]. [lognot (lognot e)] is truthy
    exactly when [e] is. *)

val is_const : t -> int64 option
val is_concrete : t -> bool
(** True when the expression mentions no input byte. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val reads : t -> int list
(** Sorted, distinct input-byte indices mentioned. *)

val eval : (int -> int) -> t -> int64
(** [eval lookup e] evaluates under the byte assignment [lookup]
    (values are masked to [0, 255]). *)

val to_string : t -> string

(** {1 Arenas}

    Interning is arena-scoped: every expression is hash-consed in the
    arena currently installed in the running domain (each domain starts
    with a private default arena). A driver session owns one arena and
    re-installs it before every turn, so its interning — and therefore
    every id-keyed solver cache — behaves identically no matter which
    domain executes the turn. Ids are allocated in per-domain blocks
    (the hot interning path bumps a domain-local cell; only a block
    refill touches the process-wide cursor): blocks are disjoint, so
    ids are globally unique and id equality implies physical equality
    even for expressions crossing arenas (the module-level constants) —
    but ids are not dense or allocation-ordered across domains, so
    id-keyed structures must be renaming-invariant, using only id
    equality, never id order or contiguity (all solver caches are). *)

type arena

val arena : unit -> arena
(** A fresh, empty interning arena. *)

val use_arena : arena -> unit
(** Install [a] as the running domain's interning arena. *)

val table_stats : unit -> int
(** Number of hash-consed nodes in the current arena (diagnostic). *)

val id_block_refills : unit -> int
(** Process-wide count of id-block refills since startup: how many times
    any domain exhausted its private id range and claimed a fresh block
    from the shared cursor. One refill per [8192] interned nodes per
    domain — a hot-path contention diagnostic (reported as
    [smt.id_block_refills]). Monotonic; diff two readings to scope a
    campaign. *)
