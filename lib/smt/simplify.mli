(** Query preprocessing: constant folding and independence slicing.
    Pure helpers shared by {!Solver}'s entry points. *)

val cache_key : Expr.t list -> int list
(** Sorted hash-consed ids of a conjunction — the canonical cache /
    retry key (permutation-insensitive). *)

val partition_constants : Expr.t list -> (Expr.t list, unit) result
(** Drop constant-true constraints; [Error ()] on a constant-false one
    (the conjunction is trivially unsatisfiable). Order is preserved. *)

val group_constraints : reads:(Expr.t -> int list) -> Expr.t list -> Expr.t list list
(** Partition a conjunction into independence groups: constraints land
    in the same group iff they transitively share an input byte
    (union-find). Constraints reading no input are dropped (they are
    non-constant but input-independent only for ite-free queries, which
    {!partition_constants} has already folded). *)
