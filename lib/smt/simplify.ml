(* Query preprocessing shared by the solver entry points: constant
   folding of the conjunction and independence slicing. Pure functions —
   no solver state. *)

(* Canonical cache key of a conjunction: its hash-consed expression ids,
   sorted so permutations of the same constraint set collide. *)
let cache_key exprs =
  List.sort Int.compare (List.map (fun (e : Expr.t) -> e.id) exprs)

(* Split constant constraints out; [Error ()] means a constant 0 (the
   conjunction is trivially unsatisfiable). *)
let partition_constants exprs =
  let symbolic = ref [] in
  let contradiction = ref false in
  List.iter
    (fun e ->
      match Expr.is_const e with
      | Some 0L -> contradiction := true
      | Some _ -> ()
      | None -> symbolic := e :: !symbolic)
    exprs;
  if !contradiction then Error () else Ok (List.rev !symbolic)

(* Partition constraints into independence groups by shared input bytes
   (union-find over byte indices). [reads] memoises [Expr.reads] for the
   caller. *)
let group_constraints ~reads exprs =
  let parent = Hashtbl.create 64 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None -> v
    | Some p ->
      let root = find p in
      if root <> p then Hashtbl.replace parent v root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun e ->
      match reads e with
      | [] -> ()
      | first :: rest -> List.iter (union first) rest)
    exprs;
  let groups = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match reads e with
      | [] -> ()
      | first :: _ ->
        let root = find first in
        let existing = try Hashtbl.find groups root with Not_found -> [] in
        Hashtbl.replace groups root (e :: existing))
    exprs;
  Hashtbl.fold (fun _ es acc -> es :: acc) groups []
