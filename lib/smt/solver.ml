module Telemetry = Pbse_telemetry.Telemetry

type result =
  | Sat of Model.t
  | Unsat
  | Unknown

type stats = {
  mutable queries : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable cache_hits : int;
  mutable hint_hits : int;
  mutable prefix_hits : int;
  mutable prefix_builds : int;
  mutable prefix_model_hits : int;
  mutable search_nodes : int;
  mutable work : int;
  mutable retries : int;
  mutable escalations : int;
  mutable retry_resolved : int;
  mutable prefix_evictions : int;
}

type t = {
  budget : int;
  retry_cap : int;
  st : stats;
  cache : (int list, Search_core.group_result) Hashtbl.t;
  reads_memo : (int, int list) Hashtbl.t; (* expr id -> sorted input indices *)
  retryable : (int list, int) Hashtbl.t; (* query key -> budget it failed at *)
  prefixes : Prefix_ctx.t;
  (* registry instruments (docs/telemetry.md); mutation is gated on the
     owning registry's enabled flag, so uninstrumented runs pay one
     boolean load *)
  tm_query_work : Telemetry.histogram;
  tm_retry_budget : Telemetry.histogram;
  tm_unknown : Telemetry.counter;
  tm_prefix_hits : Telemetry.counter;
  tm_prefix_evictions : Telemetry.counter;
}

exception Out_of_budget = Search_core.Out_of_budget

let create ?(budget = 60_000) ?retry_cap ?prefix_cap ?registry () =
  let retry_cap =
    match retry_cap with Some c -> max budget c | None -> 8 * budget
  in
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  {
    budget;
    retry_cap;
    st =
      {
        queries = 0;
        sat = 0;
        unsat = 0;
        unknown = 0;
        cache_hits = 0;
        hint_hits = 0;
        prefix_hits = 0;
        prefix_builds = 0;
        prefix_model_hits = 0;
        search_nodes = 0;
        work = 0;
        retries = 0;
        escalations = 0;
        retry_resolved = 0;
        prefix_evictions = 0;
      };
    cache = Hashtbl.create 4096;
    reads_memo = Hashtbl.create 4096;
    retryable = Hashtbl.create 256;
    prefixes = Prefix_ctx.create ?cap:prefix_cap ();
    tm_query_work = Telemetry.Registry.histogram registry "solver.query_work";
    tm_retry_budget = Telemetry.Registry.histogram registry "solver.retry_budget";
    tm_unknown = Telemetry.Registry.counter registry "solver.unknown";
    tm_prefix_hits = Telemetry.Registry.counter registry "solver.prefix_hits";
    tm_prefix_evictions = Telemetry.Registry.counter registry "smt.prefix_evictions";
  }

let stats t = t.st

let retry_cap t = t.retry_cap

let clear_cache t =
  Hashtbl.reset t.cache;
  Hashtbl.reset t.reads_memo;
  Hashtbl.reset t.retryable;
  Prefix_ctx.clear t.prefixes

let reads_of t (e : Expr.t) =
  match Hashtbl.find_opt t.reads_memo e.id with
  | Some r -> r
  | None ->
    let r = Expr.reads e in
    Hashtbl.replace t.reads_memo e.id r;
    r

(* --- group solving -------------------------------------------------------- *)

let max_group_vars = 48

let solve_groups t meter ~hint ~focus ~bounds ?on_unsat_core groups =
  let model = ref hint in
  let unknown = ref false in
  let unsat = ref false in
  let on_node () = t.st.search_nodes <- t.st.search_nodes + 1 in
  let solve_one exprs =
    if (not !unsat) && not !unknown then begin
      let key = Simplify.cache_key exprs in
      let outcome =
        match Hashtbl.find_opt t.cache key with
        | Some r ->
          t.st.cache_hits <- t.st.cache_hits + 1;
          r
        | None ->
          let group = Search_core.build_group ~reads:(reads_of t) exprs in
          let r =
            if Array.length (Search_core.group_vars group) > max_group_vars then
              Search_core.Gunknown
            else
              try Search_core.solve_group ~on_node meter ~hint ~focus ~bounds group
              with Out_of_budget -> Search_core.Gunknown
          in
          (* only definitive answers are budget-independent *)
          (match r with
           | Search_core.Gsat _ | Search_core.Gunsat ->
             if Hashtbl.length t.cache > 200_000 then Hashtbl.reset t.cache;
             Hashtbl.replace t.cache key r
           | Search_core.Gunknown -> ());
          r
      in
      match outcome with
      | Search_core.Gsat bindings ->
        model := List.fold_left (fun m (i, v) -> Model.set m i v) !model bindings
      | Search_core.Gunsat ->
        unsat := true;
        (* the failing group is a genuine unsat core: grouping is closed
           under shared bytes, so every constraint justifying the
           search's learned bounds is in [exprs] (see docs/subsumption.md) *)
        (match on_unsat_core with Some f -> f exprs | None -> ())
      | Search_core.Gunknown -> unknown := true
    end
  in
  List.iter solve_one groups;
  if !unsat then Unsat else if !unknown then Unknown else Sat !model

let no_bounds _ = None

(* Retry with escalating budgets: a query that went [Unknown] because its
   budget ran out is remembered (keyed on its expression ids) together
   with the budget it failed at. When the same query is issued again, it
   runs with twice that budget, doubling on each failure up to
   [retry_cap] — a deterministic, virtual-budget-based escalation with no
   wall clock. A later definitive answer retires the entry. *)
let with_meter t ?retry_key body =
  t.st.queries <- t.st.queries + 1;
  let key = lazy (match retry_key with Some f -> Some (f ()) | None -> None) in
  let limit =
    if Hashtbl.length t.retryable = 0 then t.budget
    else
      match Lazy.force key with
      | None -> t.budget
      | Some k -> (
        match Hashtbl.find_opt t.retryable k with
        | None -> t.budget
        | Some prev ->
          t.st.retries <- t.st.retries + 1;
          let escalated = min t.retry_cap (2 * prev) in
          if escalated > prev then begin
            t.st.escalations <- t.st.escalations + 1;
            Telemetry.observe t.tm_retry_budget escalated
          end;
          escalated)
  in
  let meter = Search_core.meter ~limit in
  let result = try body meter with Out_of_budget -> Unknown in
  (match result with
   | Sat _ -> t.st.sat <- t.st.sat + 1
   | Unsat -> t.st.unsat <- t.st.unsat + 1
   | Unknown ->
     t.st.unknown <- t.st.unknown + 1;
     Telemetry.incr t.tm_unknown);
  Telemetry.observe t.tm_query_work meter.Search_core.spent;
  (match result with
   | Unknown -> (
     match Lazy.force key with
     | Some k ->
       if Hashtbl.length t.retryable > 65_536 then Hashtbl.reset t.retryable;
       Hashtbl.replace t.retryable k limit
     | None -> ())
   | Sat _ | Unsat ->
     if Hashtbl.length t.retryable > 0 then (
       match Lazy.force key with
       | Some k when Hashtbl.mem t.retryable k ->
         Hashtbl.remove t.retryable k;
         t.st.retry_resolved <- t.st.retry_resolved + 1
       | Some _ | None -> ()));
  t.st.work <- t.st.work + meter.Search_core.spent;
  (result, meter.Search_core.spent)

let check t ?(hint = Model.empty) exprs =
  with_meter t ~retry_key:(fun () -> Simplify.cache_key exprs) (fun meter ->
      match Simplify.partition_constants exprs with
      | Error () -> Unsat
      | Ok symbolic ->
        (* model reuse: the hint satisfies most taken-branch queries *)
        List.iter (fun (e : Expr.t) -> Search_core.spend meter e.Expr.nodes) symbolic;
        if Model.satisfies hint symbolic then begin
          t.st.hint_hits <- t.st.hint_hits + 1;
          Sat hint
        end
        else
          solve_groups t meter ~hint ~focus:[] ~bounds:no_bounds
            (Simplify.group_constraints ~reads:(reads_of t) symbolic))

let check_assuming t ?(hint = Model.empty) ?on_unsat_core ~path extra =
  (* the key identifies the query by its [extra] constraints only: cheap
     to compute on the hot path, and a collision across states merely
     shares the (harmless) budget escalation for that branch *)
  with_meter t ~retry_key:(fun () -> Simplify.cache_key extra) (fun meter ->
      match Simplify.partition_constants extra with
      | Error () -> Unsat
      | Ok extra ->
        List.iter (fun (e : Expr.t) -> Search_core.spend meter e.Expr.nodes) extra;
        if Model.satisfies hint extra then begin
          t.st.hint_hits <- t.st.hint_hits + 1;
          Sat hint
        end
        else begin
          (* incremental prefix solving: the path is indexed once and
             extended as it grows, so each query pays for its delta and
             its component, not the whole path *)
          let o = Prefix_ctx.find_or_build t.prefixes ~reads:(reads_of t) path in
          let entry = o.Prefix_ctx.ctx in
          if o.Prefix_ctx.reused then begin
            t.st.prefix_hits <- t.st.prefix_hits + 1;
            Telemetry.incr t.tm_prefix_hits
          end;
          t.st.prefix_builds <- t.st.prefix_builds + o.Prefix_ctx.built;
          let ev = Prefix_ctx.evictions t.prefixes in
          if ev > t.st.prefix_evictions then begin
            Telemetry.add t.tm_prefix_evictions (ev - t.st.prefix_evictions);
            t.st.prefix_evictions <- ev
          end;
          (* charged after the contexts are cached: if the charge
             exhausts the budget, the retry hits instead of rebuilding *)
          Search_core.spend meter o.Prefix_ctx.cost;
          (* the prefix's last witness satisfies the whole path; reuse it
             when it also covers the new constraints *)
          let model_hit =
            match Prefix_ctx.model entry with
            | Some m ->
              List.iter
                (fun (e : Expr.t) -> Search_core.spend meter (min e.Expr.nodes 64))
                extra;
              if Model.satisfies m extra then Some m else None
            | None -> None
          in
          match model_hit with
          | Some m ->
            t.st.prefix_model_hits <- t.st.prefix_model_hits + 1;
            Sat m
          | None ->
            (* component closure over the prefix index; only constraints
               sharing bytes with [extra] can be affected by rebinding *)
            let selected =
              Prefix_ctx.closure entry ~reads:(reads_of t)
                ~spend:(Search_core.spend meter) extra
            in
            let focus = List.concat_map (reads_of t) extra in
            let result =
              solve_groups t meter ~hint ~focus ~bounds:(Prefix_ctx.bound entry)
                ?on_unsat_core
                (Simplify.group_constraints ~reads:(reads_of t) selected)
            in
            (match result with
             | Sat m -> Prefix_ctx.note_model entry m
             | Unsat | Unknown -> ());
            result
        end)

let sat t ?hint exprs =
  match check t ?hint exprs with
  | Sat _, _ -> true
  | (Unsat | Unknown), _ -> false

let export_prefix_hints t = Prefix_ctx.export t.prefixes
let import_prefix_hints t hints = Prefix_ctx.import t.prefixes hints
