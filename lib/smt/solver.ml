module Telemetry = Pbse_telemetry.Telemetry

(* Registry instruments (docs/telemetry.md); every mutation is gated on
   [Telemetry.enabled], so uninstrumented runs pay one boolean load. *)
let tm_query_work = Telemetry.histogram "solver.query_work"
let tm_retry_budget = Telemetry.histogram "solver.retry_budget"
let tm_unknown = Telemetry.counter "solver.unknown"

type result =
  | Sat of Model.t
  | Unsat
  | Unknown

type stats = {
  mutable queries : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable cache_hits : int;
  mutable hint_hits : int;
  mutable search_nodes : int;
  mutable work : int;
  mutable retries : int;
  mutable escalations : int;
  mutable retry_resolved : int;
}

type group_result =
  | Gsat of (int * int) list (* input index, value *)
  | Gunsat
  | Gunknown

type t = {
  budget : int;
  retry_cap : int;
  st : stats;
  cache : (int list, group_result) Hashtbl.t;
  reads_memo : (int, int list) Hashtbl.t; (* expr id -> sorted input indices *)
  retryable : (int list, int) Hashtbl.t; (* query key -> budget it failed at *)
}

exception Out_of_budget

let create ?(budget = 60_000) ?retry_cap () =
  let retry_cap =
    match retry_cap with Some c -> max budget c | None -> 8 * budget
  in
  {
    budget;
    retry_cap;
    st =
      {
        queries = 0;
        sat = 0;
        unsat = 0;
        unknown = 0;
        cache_hits = 0;
        hint_hits = 0;
        search_nodes = 0;
        work = 0;
        retries = 0;
        escalations = 0;
        retry_resolved = 0;
      };
    cache = Hashtbl.create 4096;
    reads_memo = Hashtbl.create 4096;
    retryable = Hashtbl.create 256;
  }

let stats t = t.st

let retry_cap t = t.retry_cap

let clear_cache t =
  Hashtbl.reset t.cache;
  Hashtbl.reset t.reads_memo;
  Hashtbl.reset t.retryable

let reads_of t (e : Expr.t) =
  match Hashtbl.find_opt t.reads_memo e.id with
  | Some r -> r
  | None ->
    let r = Expr.reads e in
    Hashtbl.replace t.reads_memo e.id r;
    r

(* --- byte domains -------------------------------------------------------- *)

(* Mutable domain of one input byte during a group solve. *)
type domain = {
  allowed : Bytes.t; (* 256 flags *)
  mutable size : int;
  mutable dlo : int;
  mutable dhi : int;
}

let domain_full () = { allowed = Bytes.make 256 '\001'; size = 256; dlo = 0; dhi = 255 }

let domain_mem d v = Bytes.get d.allowed v <> '\000'

let domain_remove d v =
  if domain_mem d v then begin
    Bytes.set d.allowed v '\000';
    d.size <- d.size - 1;
    if d.size > 0 then begin
      while d.dlo < 256 && not (domain_mem d d.dlo) do
        d.dlo <- d.dlo + 1
      done;
      while d.dhi >= 0 && not (domain_mem d d.dhi) do
        d.dhi <- d.dhi - 1
      done
    end
  end

let domain_interval d =
  Interval.make (Int64.of_int d.dlo) (Int64.of_int d.dhi)

(* --- group solving ------------------------------------------------------- *)

type group = {
  constraints : Expr.t array;
  vars : int array; (* sorted input indices *)
  var_pos : (int, int) Hashtbl.t; (* input index -> position in [vars] *)
  by_var : int list array; (* position -> constraint indices *)
  creads : int list array; (* constraint -> input indices *)
}

let build_group t exprs =
  let constraints = Array.of_list exprs in
  let creads = Array.map (reads_of t) constraints in
  let var_set = Hashtbl.create 16 in
  Array.iter (List.iter (fun v -> Hashtbl.replace var_set v ())) creads;
  let vars =
    Hashtbl.fold (fun v () acc -> v :: acc) var_set [] |> List.sort Int.compare
    |> Array.of_list
  in
  let var_pos = Hashtbl.create (Array.length vars * 2) in
  Array.iteri (fun pos v -> Hashtbl.replace var_pos v pos) vars;
  let by_var = Array.make (Array.length vars) [] in
  Array.iteri
    (fun ci reads ->
      List.iter
        (fun v ->
          let pos = Hashtbl.find var_pos v in
          by_var.(pos) <- ci :: by_var.(pos))
        reads)
    creads;
  { constraints; vars; var_pos; by_var; creads }

(* Work accounting: raises [Out_of_budget] when the per-query allowance is
   exhausted. *)
type meter = {
  mutable spent : int;
  limit : int;
}

let spend m n =
  m.spent <- m.spent + n;
  if m.spent > m.limit then raise Out_of_budget

(* Fast path: most fork queries in loops ask for "one more iteration" —
   a model one small step away from the hint on the newly constrained
   bytes. Probe hint +/- powers of two on each focus byte before any
   domain work; constraints are evaluated lazily and the probe aborts on
   the first falsified one, so failed probes are nearly free. *)
let probe_deltas = [ 1; -1; 2; -2; 4; -4; 8; -8; 16; -16; 32; -32; 64; -64; 128 ]

let probe_neighborhood meter ~hint group focus =
  let satisfied lookup =
    Array.for_all
      (fun (c : Expr.t) ->
        spend meter (min c.Expr.nodes 64);
        Semantics.truthy (Expr.eval lookup c))
      group.constraints
  in
  let try_model overrides =
    let lookup i =
      match List.assoc_opt i overrides with
      | Some v -> v land 0xFF
      | None -> Model.get hint i
    in
    if satisfied lookup then
      Some
        (Array.to_list
           (Array.map (fun v -> (v, lookup v)) group.vars))
    else None
  in
  let rec try_var vars =
    match vars with
    | [] -> None
    | v :: rest ->
      let base = Model.get hint v in
      let rec try_delta = function
        | [] -> try_var rest
        | d :: ds ->
          let candidate = base + d in
          if candidate >= 0 && candidate <= 255 then
            match try_model [ (v, candidate) ] with
            | Some bindings -> Some bindings
            | None -> try_delta ds
          else try_delta ds
      in
      try_delta probe_deltas
  in
  match try_model [] with
  | Some bindings -> Some bindings
  | None -> try_var focus

let solve_group_search t meter ~hint group =
  let nvars = Array.length group.vars in
  let domains = Array.init nvars (fun _ -> domain_full ()) in
  let assignment = Array.make nvars (-1) in
  (* Interval environment: assigned variables are points, unassigned ones
     are the hull of their remaining domain. *)
  let lookup_interval input_index =
    match Hashtbl.find_opt group.var_pos input_index with
    | None -> Interval.make 0L 255L
    | Some pos ->
      if assignment.(pos) >= 0 then Interval.point (Int64.of_int assignment.(pos))
      else domain_interval domains.(pos)
  in
  let interval_check ci =
    let c = group.constraints.(ci) in
    spend meter c.Expr.nodes;
    not (Interval.definitely_false (Interval.eval lookup_interval c))
  in
  let exact_check ci =
    let c = group.constraints.(ci) in
    spend meter c.Expr.nodes;
    let lookup i =
      match Hashtbl.find_opt group.var_pos i with
      | Some pos when assignment.(pos) >= 0 -> assignment.(pos)
      | Some _ | None -> Model.get hint i
    in
    Semantics.truthy (Expr.eval lookup c)
  in
  (* Bound-consistency pass: trim each variable's domain endpoints while
     a constraint is definitely false there (holding the other variables
     at their domain hulls). Trimming is pay-per-prune — a constraint that
     prunes nothing costs two interval evaluations — yet converges fully
     for the monotone loop-bound chains and magic-byte equalities that
     dominate parser path conditions. *)
  let propagate () =
    let changed = ref true in
    let rounds = ref 0 in
    (* multi-byte equalities narrow one byte per round, highest first;
       six rounds cover a u32 field plus slack *)
    while !changed && !rounds < 6 do
      changed := false;
      incr rounds;
      for pos = 0 to nvars - 1 do
        let narrow ci =
          if List.length group.creads.(ci) <= 6 then begin
            let c = group.constraints.(ci) in
            let false_at v =
              spend meter c.Expr.nodes;
              let lookup i =
                match Hashtbl.find_opt group.var_pos i with
                | Some p when p = pos -> Interval.point (Int64.of_int v)
                | Some p -> domain_interval domains.(p)
                | None -> Interval.make 0L 255L
              in
              Interval.definitely_false (Interval.eval lookup c)
            in
            let d = domains.(pos) in
            while d.size > 0 && false_at d.dlo do
              domain_remove d d.dlo;
              changed := true
            done;
            while d.size > 0 && false_at d.dhi do
              domain_remove d d.dhi;
              changed := true
            done
          end
        in
        List.iter narrow group.by_var.(pos);
        if domains.(pos).size = 0 then raise Exit
      done
    done
  in
  let unassigned ci =
    List.exists
      (fun v ->
        let pos = Hashtbl.find group.var_pos v in
        assignment.(pos) < 0)
      group.creads.(ci)
  in
  (* Depth-first search over variables, cheapest domain first, hint value
     tried first. *)
  let order = Array.init nvars (fun i -> i) in
  let finished = ref None in
  let rec assign depth =
    if depth = nvars then begin
      (* all variables assigned: every constraint must hold exactly *)
      let ok =
        Array.for_all (fun ci -> exact_check ci)
          (Array.init (Array.length group.constraints) (fun i -> i))
      in
      if ok then begin
        finished :=
          Some
            (Array.to_list
               (Array.mapi (fun pos _ -> (group.vars.(pos), assignment.(pos))) group.vars));
        true
      end
      else false
    end
    else begin
      let pos = order.(depth) in
      let d = domains.(pos) in
      let try_value v =
        if not (domain_mem d v) then false
        else begin
          t.st.search_nodes <- t.st.search_nodes + 1;
          spend meter 1;
          assignment.(pos) <- v;
          let consistent =
            List.for_all
              (fun ci -> if unassigned ci then interval_check ci else exact_check ci)
              group.by_var.(pos)
          in
          let found = consistent && assign (depth + 1) in
          if not found then assignment.(pos) <- -1;
          found
        end
      in
      (* neighbourhood-first value order: loop-step queries succeed a small
         delta away from the hint; the tail scan keeps the search complete *)
      let hint_v = Model.get hint group.vars.(pos) land 0xFF in
      let deltas = [ 0; 1; -1; 2; -2; 4; -4; 8; -8; 16; -16; 32; -32; 64; -64; 128 ] in
      let near = List.filter_map
          (fun delta ->
            let v = hint_v + delta in
            if v >= 0 && v <= 255 then Some v else None)
          deltas
      in
      let rec try_near = function
        | [] ->
          let rec scan v =
            if v > d.dhi then false
            else if (not (List.mem v near)) && try_value v then true
            else scan (v + 1)
          in
          scan d.dlo
        | v :: rest -> if try_value v then true else try_near rest
      in
      try_near near
    end
  in
  match
    (try
       propagate ();
       (* order variables by narrowed domain size *)
       Array.sort (fun a b -> Int.compare domains.(a).size domains.(b).size) order;
       if assign 0 then `Sat else `Unsat
     with
     | Exit -> `Unsat)
  with
  | `Sat -> (
    match !finished with
    | Some bindings -> Gsat bindings
    | None -> Gunknown)
  | `Unsat -> Gunsat

let solve_group t meter ~hint ~focus group =
  let focus = List.filter (Hashtbl.mem group.var_pos) focus in
  match probe_neighborhood meter ~hint group focus with
  | Some bindings -> Gsat bindings
  | None -> solve_group_search t meter ~hint group

(* --- top level ----------------------------------------------------------- *)

(* Partition constraints into independence groups by shared input bytes
   (union-find over byte indices). *)
let group_constraints t exprs =
  let parent = Hashtbl.create 64 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None -> v
    | Some p ->
      let root = find p in
      if root <> p then Hashtbl.replace parent v root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun e ->
      match reads_of t e with
      | [] -> ()
      | first :: rest -> List.iter (union first) rest)
    exprs;
  let groups = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match reads_of t e with
      | [] -> ()
      | first :: _ ->
        let root = find first in
        let existing = try Hashtbl.find groups root with Not_found -> [] in
        Hashtbl.replace groups root (e :: existing))
    exprs;
  Hashtbl.fold (fun _ es acc -> es :: acc) groups []

let max_group_vars = 48

let cache_key exprs =
  List.sort Int.compare (List.map (fun (e : Expr.t) -> e.id) exprs)

(* Split constant constraints out; [Error ()] means a constant 0. *)
let partition_constants exprs =
  let symbolic = ref [] in
  let contradiction = ref false in
  List.iter
    (fun e ->
      match Expr.is_const e with
      | Some 0L -> contradiction := true
      | Some _ -> ()
      | None -> symbolic := e :: !symbolic)
    exprs;
  if !contradiction then Error () else Ok (List.rev !symbolic)

let solve_groups t meter ~hint ~focus groups =
  let model = ref hint in
  let unknown = ref false in
  let unsat = ref false in
  let solve_one exprs =
    if (not !unsat) && not !unknown then begin
      let key = cache_key exprs in
      let outcome =
        match Hashtbl.find_opt t.cache key with
        | Some r ->
          t.st.cache_hits <- t.st.cache_hits + 1;
          r
        | None ->
          let group = build_group t exprs in
          let r =
            if Array.length group.vars > max_group_vars then Gunknown
            else try solve_group t meter ~hint ~focus group with Out_of_budget -> Gunknown
          in
          (* only definitive answers are budget-independent *)
          (match r with
           | Gsat _ | Gunsat ->
             if Hashtbl.length t.cache > 200_000 then Hashtbl.reset t.cache;
             Hashtbl.replace t.cache key r
           | Gunknown -> ());
          r
      in
      match outcome with
      | Gsat bindings ->
        model := List.fold_left (fun m (i, v) -> Model.set m i v) !model bindings
      | Gunsat -> unsat := true
      | Gunknown -> unknown := true
    end
  in
  List.iter solve_one groups;
  if !unsat then Unsat else if !unknown then Unknown else Sat !model

(* Retry with escalating budgets: a query that went [Unknown] because its
   budget ran out is remembered (keyed on its expression ids) together
   with the budget it failed at. When the same query is issued again, it
   runs with twice that budget, doubling on each failure up to
   [retry_cap] — a deterministic, virtual-budget-based escalation with no
   wall clock. A later definitive answer retires the entry. *)
let with_meter t ?retry_key body =
  t.st.queries <- t.st.queries + 1;
  let key = lazy (match retry_key with Some f -> Some (f ()) | None -> None) in
  let limit =
    if Hashtbl.length t.retryable = 0 then t.budget
    else
      match Lazy.force key with
      | None -> t.budget
      | Some k -> (
        match Hashtbl.find_opt t.retryable k with
        | None -> t.budget
        | Some prev ->
          t.st.retries <- t.st.retries + 1;
          let escalated = min t.retry_cap (2 * prev) in
          if escalated > prev then begin
            t.st.escalations <- t.st.escalations + 1;
            Telemetry.observe tm_retry_budget escalated
          end;
          escalated)
  in
  let meter = { spent = 0; limit } in
  let result = try body meter with Out_of_budget -> Unknown in
  (match result with
   | Sat _ -> t.st.sat <- t.st.sat + 1
   | Unsat -> t.st.unsat <- t.st.unsat + 1
   | Unknown ->
     t.st.unknown <- t.st.unknown + 1;
     Telemetry.incr tm_unknown);
  Telemetry.observe tm_query_work meter.spent;
  (match result with
   | Unknown -> (
     match Lazy.force key with
     | Some k ->
       if Hashtbl.length t.retryable > 65_536 then Hashtbl.reset t.retryable;
       Hashtbl.replace t.retryable k limit
     | None -> ())
   | Sat _ | Unsat ->
     if Hashtbl.length t.retryable > 0 then (
       match Lazy.force key with
       | Some k when Hashtbl.mem t.retryable k ->
         Hashtbl.remove t.retryable k;
         t.st.retry_resolved <- t.st.retry_resolved + 1
       | Some _ | None -> ()));
  t.st.work <- t.st.work + meter.spent;
  (result, meter.spent)

let check t ?(hint = Model.empty) exprs =
  with_meter t ~retry_key:(fun () -> cache_key exprs) (fun meter ->
      match partition_constants exprs with
      | Error () -> Unsat
      | Ok symbolic ->
        (* model reuse: the hint satisfies most taken-branch queries *)
        List.iter (fun (e : Expr.t) -> spend meter e.Expr.nodes) symbolic;
        if Model.satisfies hint symbolic then begin
          t.st.hint_hits <- t.st.hint_hits + 1;
          Sat hint
        end
        else solve_groups t meter ~hint ~focus:[] (group_constraints t symbolic))

let check_assuming t ?(hint = Model.empty) ~path extra =
  (* the key identifies the query by its [extra] constraints only: cheap
     to compute on the hot path, and a collision across states merely
     shares the (harmless) budget escalation for that branch *)
  with_meter t ~retry_key:(fun () -> cache_key extra) (fun meter ->
      match partition_constants extra with
      | Error () -> Unsat
      | Ok extra ->
        List.iter (fun (e : Expr.t) -> spend meter e.Expr.nodes) extra;
        if Model.satisfies hint extra then begin
          t.st.hint_hits <- t.st.hint_hits + 1;
          Sat hint
        end
        else begin
          (* transitive closure of input bytes shared with [extra]; only
             that component can be affected by rebinding *)
          let in_component = Hashtbl.create 64 in
          List.iter
            (fun e -> List.iter (fun v -> Hashtbl.replace in_component v ()) (reads_of t e))
            extra;
          let path =
            match partition_constants path with Error () -> [] | Ok p -> p
          in
          let selected = ref extra in
          let remaining = ref path in
          let changed = ref true in
          while !changed do
            changed := false;
            remaining :=
              List.filter
                (fun e ->
                  spend meter 1;
                  let reads = reads_of t e in
                  if List.exists (Hashtbl.mem in_component) reads then begin
                    List.iter (fun v -> Hashtbl.replace in_component v ()) reads;
                    selected := e :: !selected;
                    changed := true;
                    false
                  end
                  else true)
                !remaining
          done;
          let focus = List.concat_map (reads_of t) extra in
          solve_groups t meter ~hint ~focus (group_constraints t !selected)
        end)

let sat t ?hint exprs =
  match check t ?hint exprs with
  | Sat _, _ -> true
  | (Unsat | Unknown), _ -> false
