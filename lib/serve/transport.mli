(** Transport layer for [pbse-serve/2]: Unix-domain and TCP listeners
    behind one accept/dispatch loop, a self-pipe shutdown control, a
    timeout-aware client [connect], and a bounded buffered reader whose
    buffer boundary is under protocol control (an [in_channel] would
    happily read past a frame header into the raw payload). *)

type endpoint = Unix_socket of string | Tcp of string * int

val endpoint_to_string : endpoint -> string

val endpoint_of_string : string -> (endpoint, string) result
(** Parse a [HOST:PORT] TCP endpoint ([Unix_socket] paths are given
    directly by the caller, not parsed). *)

(** {2 Shutdown control (self-pipe)} *)

type control

val control_create : ?stop:bool Atomic.t -> unit -> control
(** [stop] (default a fresh flag) may be shared with code that only
    knows the atomic; {!stopping} reads it. *)

val request_stop : control -> unit
(** Set the stop flag and write one byte into the self-pipe, waking a
    blocked {!accept_loop} immediately. Safe to call from a signal
    handler and safe to repeat. *)

val stopping : control -> bool
val control_close : control -> unit

(** {2 Listeners} *)

val listen : ?backlog:int -> endpoint -> Unix.file_descr
(** Bind and listen (backlog default 16). A Unix socket replaces any
    existing file at its path; a TCP listener sets [SO_REUSEADDR].
    Raises [Unix.Unix_error] on bind failure. *)

val close_listener : endpoint -> Unix.file_descr -> unit
(** Close, and unlink the socket file of a Unix endpoint. *)

val accept_loop :
  control -> Unix.file_descr list -> (Unix.file_descr -> unit) -> unit
(** Block (no timeout — the self-pipe is the wakeup) on every listener
    plus the control pipe; call the dispatcher with each accepted
    connection; return once {!request_stop} has been called. *)

(** {2 Client side} *)

val connect : ?timeout:float -> endpoint -> (Unix.file_descr, string) result
(** Connect to a server. With [timeout] (seconds), the connect itself is
    bounded (non-blocking + select) and the socket's later reads and
    writes inherit the same bound via [SO_RCVTIMEO]/[SO_SNDTIMEO]. *)

(** {2 Bounded reader} *)

type reader

val reader : Unix.file_descr -> reader

type read_error =
  | Eof
  | Overflow  (** line exceeded [max] — an oversized request/frame *)
  | Fail of string  (** read error or timeout *)

val read_line : ?max:int -> reader -> (string, read_error) result
(** One line, newline consumed but not returned (default [max] is
    {!Protocol.max_line}); never reads past the newline. A final
    unterminated line before EOF is returned as a line. *)

val drain_line : ?limit:int -> reader -> unit
(** Discard input through the next newline (or EOF, or [limit] bytes —
    default 16x {!Protocol.max_line}), so an error can be written back
    for an oversized line without resetting the peer mid-send. *)

val read_exact : reader -> int -> (string, read_error) result
(** Exactly [n] bytes (a frame's announced payload). *)
