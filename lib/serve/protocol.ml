module Json = Pbse_telemetry.Json

(* pbse-serve/2 wire protocol (docs/serve.md): every v2 message is one
   JSON object on one line. Requests carry a typed envelope — protocol
   version, optional request id and client identity, a progress switch
   and the campaign parameters under "params" — and are parsed strictly:
   unknown fields, duplicated fields and mistyped values are rejected
   with a structured error code, so a v3 client can't be silently
   half-understood. Requests without a "pbse" member are the deprecated
   v1 one-liner and keep their lenient parse. Responses are framed
   events; the report frame announces a byte count and is followed by
   exactly that many raw bytes of pbse-report/1 JSON — raw, never
   embedded in the frame, so the payload stays byte-identical to what
   the CLI writes. *)

let version = 2
let max_line = 65_536
let default_deadline = 120_000 (* one paper-hour of virtual time *)

type error_code =
  | Bad_json
  | Bad_request
  | Unsupported_version
  | Unknown_target
  | Unknown_scheduler
  | Over_capacity
  | Oversized_request
  | Internal

let error_label = function
  | Bad_json -> "bad-json"
  | Bad_request -> "bad-request"
  | Unsupported_version -> "unsupported-version"
  | Unknown_target -> "unknown-target"
  | Unknown_scheduler -> "unknown-scheduler"
  | Over_capacity -> "over-capacity"
  | Oversized_request -> "oversized-request"
  | Internal -> "internal"

let error_code_of_label = function
  | "bad-json" -> Some Bad_json
  | "bad-request" -> Some Bad_request
  | "unsupported-version" -> Some Unsupported_version
  | "unknown-target" -> Some Unknown_target
  | "unknown-scheduler" -> Some Unknown_scheduler
  | "over-capacity" -> Some Over_capacity
  | "oversized-request" -> Some Oversized_request
  | "internal" -> Some Internal
  | _ -> None

type wire_version = V1 | V2

type request = {
  rq_id : string option;
  rq_client : string option; (* admission identity; anonymous if absent *)
  rq_progress : bool; (* stream progress frames at round barriers *)
  rq_target : string;
  rq_deadline : int;
  rq_pool_scheduler : string;
  rq_scheduler : string option; (* phase-scheduling policy override *)
  rq_jobs : int option; (* per-request width, clamped to the pool's *)
  rq_lease : int;
  rq_share : bool; (* search.share_seed_states for this campaign *)
}

(* --- parsing ---------------------------------------------------------------

   The Json parser keeps an object's fields as the literal assoc list,
   duplicates included — strictness is a plain walk over that list. *)

let fields_of = function Json.Obj fields -> Some fields | _ -> None

let duplicate_key fields =
  let rec scan seen = function
    | [] -> None
    | (k, _) :: rest -> if List.mem k seen then Some k else scan (k :: seen) rest
  in
  scan [] fields

let unknown_key ~allowed fields =
  List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields
  |> Option.map fst

let strict_shape ~what ~allowed fields =
  match duplicate_key fields with
  | Some k -> Error (Bad_request, Printf.sprintf "duplicate %s field %S" what k)
  | None -> (
    match unknown_key ~allowed fields with
    | Some k -> Error (Bad_request, Printf.sprintf "unknown %s field %S" what k)
    | None -> Ok ())

let typed ~what key conv = function
  | None -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None ->
      Error (Bad_request, Printf.sprintf "%s field %S has the wrong type" what key))

let ( let* ) = Result.bind

let envelope_fields = [ "pbse"; "id"; "client"; "progress"; "params" ]

let params_fields =
  [ "target"; "deadline"; "pool_scheduler"; "scheduler"; "jobs"; "lease"; "share" ]

let parse_params ~what fields =
  let* () = strict_shape ~what ~allowed:params_fields fields in
  let get k = List.assoc_opt k fields in
  let* target =
    match get "target" with
    | None -> Error (Bad_request, Printf.sprintf "%s needs a \"target\" field" what)
    | Some v -> (
      match Json.to_str v with
      | Some t -> Ok t
      | None -> Error (Bad_request, what ^ " field \"target\" has the wrong type"))
  in
  let* deadline = typed ~what "deadline" Json.to_int (get "deadline") in
  let* pool_scheduler =
    typed ~what "pool_scheduler" Json.to_str (get "pool_scheduler")
  in
  let* scheduler = typed ~what "scheduler" Json.to_str (get "scheduler") in
  let* jobs = typed ~what "jobs" Json.to_int (get "jobs") in
  let* lease = typed ~what "lease" Json.to_int (get "lease") in
  let* share = typed ~what "share" Json.to_bool (get "share") in
  Ok
    ( target,
      Option.value deadline ~default:default_deadline,
      Option.value pool_scheduler ~default:"",
      scheduler,
      jobs,
      max 1 (Option.value lease ~default:1),
      Option.value share ~default:false )

let parse_v2 fields =
  let* () = strict_shape ~what:"envelope" ~allowed:envelope_fields fields in
  let get k = List.assoc_opt k fields in
  let* id = typed ~what:"envelope" "id" Json.to_str (get "id") in
  let* client = typed ~what:"envelope" "client" Json.to_str (get "client") in
  let* progress = typed ~what:"envelope" "progress" Json.to_bool (get "progress") in
  let* params =
    match get "params" with
    | None -> Error (Bad_request, "envelope needs a \"params\" field")
    | Some v -> (
      match fields_of v with
      | Some fields -> Ok fields
      | None -> Error (Bad_request, "envelope field \"params\" must be an object"))
  in
  let* target, deadline, pool_scheduler, scheduler, jobs, lease, share =
    parse_params ~what:"params" params
  in
  Ok
    {
      rq_id = id;
      rq_client = client;
      rq_progress = Option.value progress ~default:false;
      rq_target = target;
      rq_deadline = deadline;
      rq_pool_scheduler = pool_scheduler;
      rq_scheduler = scheduler;
      rq_jobs = jobs;
      rq_lease = lease;
      rq_share = share;
    }

(* The deprecated-but-served v1 request: a flat object, parsed leniently
   (unknown fields ignored, wrong types fall back to defaults) exactly
   as pbse-serve/1 always did. *)
let parse_v1 json =
  let str k = Option.bind (Json.member k json) Json.to_str in
  let int k = Option.bind (Json.member k json) Json.to_int in
  let bool k = Option.bind (Json.member k json) Json.to_bool in
  match str "target" with
  | None -> Error (Bad_request, "request needs a \"target\" field")
  | Some target ->
    Ok
      {
        rq_id = None;
        rq_client = None;
        rq_progress = false;
        rq_target = target;
        rq_deadline = Option.value (int "deadline") ~default:default_deadline;
        rq_pool_scheduler = Option.value (str "pool_scheduler") ~default:"";
        rq_scheduler = str "scheduler";
        rq_jobs = int "jobs";
        rq_lease = max 1 (Option.value (int "lease") ~default:1);
        rq_share = Option.value (bool "share") ~default:false;
      }

(* Parse errors carry the request's wire version when it could be told
   apart (so the server can answer a broken v1 request with v1 framing);
   [None] means undeterminable — the server answers those in v2. *)
let parse_request line =
  match Json.parse line with
  | Error e -> Error (None, Bad_json, "bad request JSON: " ^ e)
  | Ok json -> (
    match fields_of json with
    | None -> Error (None, Bad_request, "request must be a JSON object")
    | Some fields -> (
      match List.assoc_opt "pbse" fields with
      | None ->
        Result.map_error
          (fun (code, msg) -> (Some V1, code, msg))
          (Result.map (fun r -> (V1, r)) (parse_v1 json))
      | Some v -> (
        match Json.to_int v with
        | Some 2 ->
          Result.map_error
            (fun (code, msg) -> (Some V2, code, msg))
            (Result.map (fun r -> (V2, r)) (parse_v2 fields))
        | Some n ->
          Error
            ( None,
              Unsupported_version,
              Printf.sprintf "protocol version %d not supported (supported: 1 2)"
                n )
        | None ->
          Error (None, Bad_request, "envelope field \"pbse\" must be an integer"))))

(* --- rendering -------------------------------------------------------------- *)

let opt_str = function Some s -> Json.Str s | None -> Json.Null

let params_json r =
  Json.Obj
    (List.concat
       [
         [ ("target", Json.Str r.rq_target); ("deadline", Json.Int r.rq_deadline) ];
         (if r.rq_pool_scheduler = "" then []
          else [ ("pool_scheduler", Json.Str r.rq_pool_scheduler) ]);
         (match r.rq_scheduler with
          | Some s -> [ ("scheduler", Json.Str s) ]
          | None -> []);
         (match r.rq_jobs with Some j -> [ ("jobs", Json.Int j) ] | None -> []);
         [ ("lease", Json.Int r.rq_lease) ];
         (if r.rq_share then [ ("share", Json.Bool true) ] else []);
       ])

let render_request r =
  Json.to_string
    (Json.Obj
       (List.concat
          [
            [ ("pbse", Json.Int version) ];
            (match r.rq_id with Some id -> [ ("id", Json.Str id) ] | None -> []);
            (match r.rq_client with
             | Some c -> [ ("client", Json.Str c) ]
             | None -> []);
            (if r.rq_progress then [ ("progress", Json.Bool true) ] else []);
            [ ("params", params_json r) ];
          ]))

(* A v2 line downgraded to the v1 one-liner, for client-side fallback
   against a server that predates the envelope. Progress streaming has
   no v1 spelling, so a progress request refuses to downgrade. *)
let downgrade_request line =
  match parse_request line with
  | Error _ | Ok (V1, _) -> None
  | Ok (V2, r) ->
    if r.rq_progress then None
    else (
      match params_json r with
      | Json.Obj fields -> Some (Json.to_string (Json.Obj fields))
      | _ -> None)

(* --- response frames -------------------------------------------------------- *)

type frame =
  | Report of { id : string option; bytes : int }
  | Progress of { id : string option; round : int }
  | Error_frame of {
      id : string option;
      code : error_code;
      message : string;
      retry_after : int option; (* whole seconds; over-capacity only *)
    }

let frame_base ~id event =
  ("pbse", Json.Int version) :: ("id", opt_str id) :: [ ("event", Json.Str event) ]

let render_frame frame =
  let json =
    match frame with
    | Report { id; bytes } ->
      Json.Obj (frame_base ~id "report" @ [ ("bytes", Json.Int bytes) ])
    | Progress { id; round } ->
      Json.Obj (frame_base ~id "progress" @ [ ("round", Json.Int round) ])
    | Error_frame { id; code; message; retry_after } ->
      Json.Obj
        (frame_base ~id "error"
        @ [
            ("code", Json.Str (error_label code)); ("message", Json.Str message);
          ]
        @
        match retry_after with
        | Some s -> [ ("retry_after", Json.Int s) ]
        | None -> [])
  in
  Json.to_string json ^ "\n"

let parse_frame line =
  match Json.parse line with
  | Error e -> Error ("bad response frame: " ^ e)
  | Ok json -> (
    let str k = Option.bind (Json.member k json) Json.to_str in
    let int k = Option.bind (Json.member k json) Json.to_int in
    match int "pbse" with
    | Some v when v <> version ->
      Error (Printf.sprintf "response frame for protocol version %d" v)
    | None -> Error "response frame without a \"pbse\" member"
    | Some _ -> (
      let id = str "id" in
      match str "event" with
      | Some "report" -> (
        match int "bytes" with
        | Some bytes when bytes >= 0 -> Ok (Report { id; bytes })
        | _ -> Error "report frame needs a non-negative \"bytes\" field")
      | Some "progress" ->
        Ok (Progress { id; round = Option.value (int "round") ~default:0 })
      | Some "error" ->
        let code =
          Option.bind (str "code") error_code_of_label
          |> Option.value ~default:Internal
        in
        Ok
          (Error_frame
             {
               id;
               code;
               message = Option.value (str "message") ~default:"";
               retry_after = int "retry_after";
             })
      | Some e -> Error (Printf.sprintf "unknown response event %S" e)
      | None -> Error "response frame without an \"event\" member"))

(* --- v1 framing (deprecated, still served) ---------------------------------- *)

let sanitize msg =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg

let render_v1_ok_header bytes = Printf.sprintf "pbse-serve/1 ok %d\n" bytes
let render_v1_error msg = "pbse-serve/1 error " ^ sanitize msg ^ "\n"

type v1_header = V1_ok of int | V1_error of string

let parse_v1_header header =
  match String.split_on_char ' ' header with
  | "pbse-serve/1" :: "ok" :: n :: _ -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> Some (V1_ok n)
    | _ -> None)
  | "pbse-serve/1" :: "error" :: rest -> Some (V1_error (String.concat " " rest))
  | _ -> None
