(* Transport layer shared by every pbse-serve endpoint: Unix-domain and
   TCP listeners feed one accept loop, a self-pipe control turns a
   signal into an immediate wakeup (no stop-flag polling), and a small
   bounded reader gives both sides line/exact reads that never buffer
   past what the protocol frame owns. *)

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let endpoint_of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad endpoint %S (want HOST:PORT)" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65_536 && host <> "" -> Ok (Tcp (host, p))
    | _ -> Error (Printf.sprintf "bad endpoint %S (want HOST:PORT)" s))

let resolve_inet host port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> (
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ ->
      Unix.ADDR_INET (addr, port)
    | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

(* --- self-pipe control ------------------------------------------------------

   [request_stop] is called from signal handlers: it sets the atomic and
   writes one byte into the pipe, so a select blocked on the listen fds
   returns immediately instead of timing out on a poll interval. Both
   operations are harmless to repeat; the pipe is drained (not read to
   exhaustion) by whoever wakes. *)

type control = {
  stop : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let control_create ?(stop = Atomic.make false) () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_w;
  { stop; wake_r; wake_w }

let request_stop c =
  Atomic.set c.stop true;
  try ignore (Unix.write_substring c.wake_w "x" 0 1)
  with Unix.Unix_error _ -> () (* pipe full: a wakeup is already pending *)

let stopping c = Atomic.get c.stop

let control_close c =
  (try Unix.close c.wake_r with Unix.Unix_error _ -> ());
  try Unix.close c.wake_w with Unix.Unix_error _ -> ()

(* --- listeners -------------------------------------------------------------- *)

let listen ?(backlog = 16) endpoint =
  match endpoint with
  | Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd backlog;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (resolve_inet host port);
       Unix.listen fd backlog
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

let close_listener endpoint fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match endpoint with
  | Unix_socket path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* Block on every listener plus the control pipe; dispatch each accepted
   connection, return when the control asks to stop. No timeout: the
   self-pipe write is the only wakeup a shutdown needs. *)
let accept_loop control fds dispatch =
  let drain_wake () =
    let buf = Bytes.create 64 in
    try ignore (Unix.read control.wake_r buf 0 64) with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    if not (stopping control) then begin
      match Unix.select (control.wake_r :: fds) [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
        if List.mem control.wake_r ready then drain_wake ();
        List.iter
          (fun fd ->
            if fd <> control.wake_r then
              match Unix.accept ~cloexec:true fd with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | client, _ -> dispatch client)
          ready;
        loop ()
    end
  in
  loop ()

(* --- client connect --------------------------------------------------------- *)

let addr_of_endpoint = function
  | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (Unix.PF_INET, resolve_inet host port)

(* Connect with an optional wall-clock budget that also bounds every
   later read/write on the socket (SO_RCVTIMEO/SO_SNDTIMEO), so a hung
   server can't hold `pbse request --timeout' forever. The timeout path
   uses a non-blocking connect completed by select. *)
let connect ?timeout endpoint =
  match addr_of_endpoint endpoint with
  | exception Failure e -> Error e
  | domain, addr -> (
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error msg)
        fmt
    in
    let where = endpoint_to_string endpoint in
    match timeout with
    | None -> (
      match Unix.connect fd addr with
      | () -> Ok fd
      | exception Unix.Unix_error (err, _, _) ->
        fail "cannot connect to %s: %s" where (Unix.error_message err))
    | Some t -> (
      let t = if t <= 0.0 then 0.001 else t in
      Unix.set_nonblock fd;
      let finish () =
        match Unix.getsockopt_error fd with
        | Some err ->
          fail "cannot connect to %s: %s" where (Unix.error_message err)
        | None ->
          Unix.clear_nonblock fd;
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO t;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO t
           with Unix.Unix_error _ -> () (* UDS on some systems: best effort *));
          Ok fd
      in
      match Unix.connect fd addr with
      | () -> finish ()
      | exception Unix.Unix_error (Unix.EINPROGRESS, _, _)
      | exception Unix.Unix_error (Unix.EWOULDBLOCK, _, _)
      | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> (
        match Unix.select [] [ fd ] [] t with
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          fail "connect to %s interrupted" where
        | _, [], _ -> fail "connect to %s timed out after %.3gs" where t
        | _, _ :: _, _ -> finish ())
      | exception Unix.Unix_error (err, _, _) ->
        fail "cannot connect to %s: %s" where (Unix.error_message err)))

(* --- bounded reader ---------------------------------------------------------

   A minimal buffered reader over a file descriptor. [read_line] never
   consumes bytes past its newline and refuses lines over [max] bytes;
   [read_exact] reads a known payload length. Unlike in_channel, the
   buffer boundary is under protocol control, so a frame header's raw
   payload always starts exactly where the header line ended. *)

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t; (* bytes received but not yet consumed *)
}

let reader fd = { fd; buf = Buffer.create 512 }

type read_error = Eof | Overflow | Fail of string

let refill r =
  let chunk = Bytes.create 4096 in
  match Unix.read r.fd chunk 0 4096 with
  | 0 -> Error Eof
  | n ->
    Buffer.add_subbytes r.buf chunk 0 n;
    Ok ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Error (Fail "read timed out")
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok ()
  | exception Unix.Unix_error (err, _, _) -> Error (Fail (Unix.error_message err))

let take r n =
  let s = Buffer.sub r.buf 0 n in
  let rest = Buffer.sub r.buf n (Buffer.length r.buf - n) in
  Buffer.clear r.buf;
  Buffer.add_string r.buf rest;
  s

let rec read_line ?(max = Protocol.max_line) r =
  let contents = Buffer.contents r.buf in
  match String.index_opt contents '\n' with
  | Some i when i < max ->
    let line = take r (i + 1) in
    Ok (String.sub line 0 i)
  | Some _ -> Error Overflow
  | None ->
    if Buffer.length r.buf >= max then Error Overflow
    else (
      match refill r with
      | Ok () -> read_line ~max r
      | Error Eof when Buffer.length r.buf > 0 ->
        (* a final unterminated line is still a line *)
        Ok (take r (Buffer.length r.buf))
      | Error e -> Error e)

let drain_line ?(limit = 16 * Protocol.max_line) r =
  let rec go dropped =
    let contents = Buffer.contents r.buf in
    match String.index_opt contents '\n' with
    | Some i -> ignore (take r (i + 1))
    | None ->
      let dropped = dropped + Buffer.length r.buf in
      Buffer.clear r.buf;
      if dropped < limit then
        match refill r with Ok () -> go dropped | Error _ -> ()
  in
  go 0

let rec read_exact r n =
  if Buffer.length r.buf >= n then Ok (take r n)
  else
    match refill r with
    | Ok () -> read_exact r n
    | Error Eof -> Error (Fail "truncated payload")
    | Error Overflow -> assert false
    | Error (Fail _ as e) -> Error e
