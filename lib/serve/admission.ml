(* Admission control in front of the campaign arbiter: a global
   in-flight cap plus a token bucket per client identity. The arbiter
   behind us fair-shares the domain pool among admitted campaigns, so
   without a cap every client is silently queued; admission turns that
   into an explicit, structured "come back in N seconds". The clock is
   injectable so bucket arithmetic is testable without sleeping. *)

type bucket = {
  mutable tokens : float;
  mutable last : float; (* clock at the last refill *)
}

type t = {
  mutex : Mutex.t;
  max_inflight : int; (* 0 = unlimited *)
  burst : int; (* bucket capacity; 0 = quotas off *)
  refill : float; (* tokens per second *)
  now : unit -> float;
  buckets : (string, bucket) Hashtbl.t;
  mutable inflight : int;
  mutable rejections : int;
}

type ticket = { t_owner : t; mutable t_released : bool }

type decision = Admit of ticket | Reject of { retry_after : int }

let create ?(max_inflight = 0) ?(quota_burst = 0) ?(quota_refill = 0.0)
    ?(now = Unix.gettimeofday) () =
  {
    mutex = Mutex.create ();
    max_inflight = max 0 max_inflight;
    burst = max 0 quota_burst;
    refill = max 0.0 quota_refill;
    now;
    buckets = Hashtbl.create 16;
    inflight = 0;
    rejections = 0;
  }

let topped_up t client =
  let clock = t.now () in
  match Hashtbl.find_opt t.buckets client with
  | None ->
    let b = { tokens = float_of_int t.burst; last = clock } in
    Hashtbl.replace t.buckets client b;
    b
  | Some b ->
    let dt = clock -. b.last in
    if dt > 0.0 then begin
      b.tokens <- Float.min (float_of_int t.burst) (b.tokens +. (dt *. t.refill));
      b.last <- clock
    end;
    b

(* Seconds until the bucket holds a whole token again — the structured
   retry_after. A dry bucket with no refill can only say "try in a
   second"; the floor keeps the field a positive integer either way. *)
let seconds_until_token t b =
  if t.refill <= 0.0 then 1
  else max 1 (int_of_float (Float.ceil ((1.0 -. b.tokens) /. t.refill)))

let admit t ~client =
  Mutex.protect t.mutex (fun () ->
      if t.max_inflight > 0 && t.inflight >= t.max_inflight then begin
        t.rejections <- t.rejections + 1;
        (* the cap frees up when a campaign finishes, not on a clock;
           one second is the polite "immediately after someone leaves" *)
        Reject { retry_after = 1 }
      end
      else if t.burst = 0 then begin
        t.inflight <- t.inflight + 1;
        Admit { t_owner = t; t_released = false }
      end
      else begin
        let b = topped_up t client in
        if b.tokens >= 1.0 then begin
          b.tokens <- b.tokens -. 1.0;
          t.inflight <- t.inflight + 1;
          Admit { t_owner = t; t_released = false }
        end
        else begin
          t.rejections <- t.rejections + 1;
          Reject { retry_after = seconds_until_token t b }
        end
      end)

let release ticket =
  let t = ticket.t_owner in
  Mutex.protect t.mutex (fun () ->
      if not ticket.t_released then begin
        ticket.t_released <- true;
        t.inflight <- t.inflight - 1
      end)

let inflight t = Mutex.protect t.mutex (fun () -> t.inflight)
let rejections t = Mutex.protect t.mutex (fun () -> t.rejections)
