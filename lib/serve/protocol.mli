(** The [pbse-serve/2] wire protocol: typed request envelopes, framed
    responses, structured error codes, and the deprecated-but-served v1
    one-liner (docs/serve.md has the full grammar).

    Every v2 message is one JSON object on one line. A request envelope
    is [{"pbse": 2, "id": ..., "client": ..., "progress": ...,
    "params": {...}}] and is parsed {e strictly}: unknown fields,
    duplicated fields and mistyped values are structured errors, never
    silently ignored. A request without a ["pbse"] member takes the
    lenient v1 parse. Responses are framed events ([report] /
    [progress] / [error]); the report frame is followed by exactly
    [bytes] raw bytes of [pbse-report/1] JSON — raw rather than
    embedded, so the payload stays byte-identical to the CLI's. *)

val version : int
(** The protocol version this library speaks: 2. *)

val max_line : int
(** Longest request or frame line either side will read (65536 bytes
    including the newline); longer lines are an [Oversized_request]. *)

val default_deadline : int
(** Virtual-time budget when a request names none: 120000, one
    paper-hour. *)

(** Structured error codes, rendered in kebab-case on the wire (see
    {!error_label}). *)
type error_code =
  | Bad_json  (** request line is not JSON *)
  | Bad_request  (** structurally invalid envelope or params *)
  | Unsupported_version  (** ["pbse"] names a version we don't speak *)
  | Unknown_target
  | Unknown_scheduler
  | Over_capacity  (** admission rejection; carries [retry_after] *)
  | Oversized_request  (** request line exceeded {!max_line} *)
  | Internal  (** campaign raised; message carries the exception *)

val error_label : error_code -> string
val error_code_of_label : string -> error_code option

type wire_version = V1 | V2

type request = {
  rq_id : string option;  (** echoed verbatim in every response frame *)
  rq_client : string option;  (** admission (quota) identity *)
  rq_progress : bool;  (** stream progress frames at round barriers *)
  rq_target : string;
  rq_deadline : int;
  rq_pool_scheduler : string;  (** [""] means the server's default *)
  rq_scheduler : string option;
  rq_jobs : int option;
  rq_lease : int;
  rq_share : bool;
}

val parse_request :
  string ->
  (wire_version * request, wire_version option * error_code * string) result
(** Parse one request line, dispatching on the ["pbse"] member: absent
    → lenient v1, [2] → strict v2, anything else →
    [Unsupported_version] / [Bad_request]. A parse error carries the
    request's wire version when determinable (so a server can answer a
    broken v1 request in v1 framing); [None] when the line was not
    attributable to either version. *)

val render_request : request -> string
(** The canonical v2 envelope for [r] (no trailing newline); omitted
    optional members are left out, not rendered as null. *)

val downgrade_request : string -> string option
(** Rewrite a v2 request line as the equivalent v1 one-liner, for
    client-side fallback against a pre-v2 server. [None] if the line is
    not a valid v2 request or asks for progress streaming (which v1
    cannot express). *)

(** One v2 response frame. [id] echoes the request's id (null on the
    wire when the request carried none). *)
type frame =
  | Report of { id : string option; bytes : int }
      (** followed by exactly [bytes] raw bytes of report JSON *)
  | Progress of { id : string option; round : int }
  | Error_frame of {
      id : string option;
      code : error_code;
      message : string;
      retry_after : int option;  (** whole seconds; [Over_capacity] only *)
    }

val render_frame : frame -> string
(** One JSON line, newline-terminated. *)

val parse_frame : string -> (frame, string) result

(** {2 v1 framing — deprecated, still served} *)

val sanitize : string -> string
(** Newlines flattened to spaces, for single-line v1 error messages. *)

val render_v1_ok_header : int -> string
val render_v1_error : string -> string

type v1_header = V1_ok of int | V1_error of string

val parse_v1_header : string -> v1_header option
