(** Request admission for the campaign server: a global in-flight cap
    and per-client token-bucket quotas, keyed by the client-supplied
    identity from the request envelope. A rejected request gets a
    structured [retry_after] (whole seconds) instead of being silently
    queued behind every admitted campaign. Mutex-guarded; one arbiter
    is shared by all client threads. *)

type t

type ticket
(** Proof of admission; {!release} exactly once when the request
    finishes (releasing twice is a no-op). *)

type decision = Admit of ticket | Reject of { retry_after : int }

val create :
  ?max_inflight:int ->
  ?quota_burst:int ->
  ?quota_refill:float ->
  ?now:(unit -> float) ->
  unit ->
  t
(** [max_inflight] (default 0 = unlimited) caps concurrently admitted
    requests across all clients. [quota_burst] (default 0 = quotas off)
    is each client's bucket capacity — a fresh client may burst that
    many requests — and [quota_refill] the bucket's refill rate in
    tokens per second. [now] (default [Unix.gettimeofday]) is the
    bucket clock, injectable for tests. *)

val admit : t -> client:string -> decision
(** Admit or reject one request for [client] (the anonymous identity
    [""] is one shared bucket). The in-flight cap is checked first and
    rejects with [retry_after = 1] (capacity frees on completion, not
    on a clock); a dry bucket rejects with the seconds until it holds a
    whole token again (at least 1, even when the refill rate is 0). *)

val release : ticket -> unit

val inflight : t -> int
val rejections : t -> int
(** Lifetime count of rejected requests. *)
