(** Persistent domain pool with home-queue affinity and work-stealing.

    The turn executor behind {!Campaign.run_rounds}: worker domains are
    spawned once per campaign ({!create}) and reused for every round
    ({!run}), so a round barrier costs a condition-variable handshake
    instead of a spawn-and-join. Each round's tasks are distributed into
    per-worker queues by a caller-supplied [home] key — a seed slot that
    keeps the same key keeps the same domain, so its session's arena and
    caches stop migrating — and a worker steals from the other queues
    only after its own runs dry. {!pinned} and {!steals} count the
    split.

    Results are returned in {e input} order — completion order, worker
    identity and pinned-vs-stolen are all invisible to the caller, which
    is the determinism contract (docs/parallelism.md) — and the barrier
    handshake publishes everything the tasks wrote before {!run}
    returns.

    Tasks must not share mutable state with each other; each should own
    its session's runtime context ({!Pbse}'s [Runtime]). *)

type t
(** A pool of worker domains. The pool spawns at most
    [Domain.recommended_domain_count () - 1] domains regardless of the
    requested width — extra domains only add minor-GC synchronisation
    overhead — and must be released with {!shutdown}. *)

val create : jobs:int -> t
(** [create ~jobs] spawns a pool of up to [jobs] workers (the calling
    domain counts as one), clamped to at least 1 and at most the
    hardware's recommended domain count. *)

val width : t -> int
(** The pool's worker count (including the calling domain). *)

val run : t -> jobs:int -> home:('a -> int) -> ('a -> 'b) -> 'a list -> 'b list
(** [run t ~jobs ~home f xs] applies [f] to every element of [xs] on the
    pool's workers and returns the results in input order. At most
    [min jobs (width t)] workers participate (so a caller may narrow the
    width per round — graceful degradation — without re-spawning);
    [jobs <= 1] runs inline on the calling domain. Each element is
    queued on worker [home x mod active]: tasks sharing a home key run
    on the same worker, in input order, unless another worker runs dry
    and steals them. If any application raises, the round still
    completes on every worker and then the exception of the earliest
    failing input is re-raised with its backtrace; the pool remains
    usable. Not reentrant: one [run] at a time per pool. *)

val pinned : t -> int
(** Tasks executed by their home worker since {!create} (reported as
    [pool.pinned_turns]). *)

val steals : t -> int
(** Tasks executed by a non-home worker since {!create} (reported as
    [pool.steal_count]): a high ratio of steals to pinned means home
    queues are chronically unbalanced. *)

val shutdown : t -> unit
(** Join the pool's domains. Idempotent; the pool must not be used
    afterwards. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is a one-shot convenience: a fresh pool, one
    {!run} homed by input index (round-robin spread), then {!shutdown}
    — same clamping, ordering and exception contract as {!run}. *)
