(** Work-stealing parallel map over OCaml 5 domains.

    The turn executor behind {!Campaign.run_rounds}: a round's turns are
    claimed from one atomic cursor by [jobs] workers (the calling domain
    plus up to [jobs - 1] spawned ones), so turn durations never skew
    which worker runs what. Results are returned in {e input} order —
    completion order is invisible to the caller, which is the
    determinism contract (docs/parallelism.md) — and [Domain.join]
    publishes everything the tasks wrote before [map] returns.

    Tasks must not share mutable state with each other; each should own
    its session's runtime context ({!Pbse}'s [Runtime]). *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] applications concurrently (clamped to at least 1 and at most
    [List.length xs]; [jobs <= 1] runs inline without spawning). If any
    application raises, every domain is still joined and then the
    exception of the earliest failing input is re-raised with its
    backtrace. *)
