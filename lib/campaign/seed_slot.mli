(** Per-seed accounting for a campaign over a seed pool.

    A slot is the seed-level analogue of {!Pbse_sched.Phase_queue}: one
    record per pool seed holding the counters the pool scheduling
    policies read ([dwell], [new_blocks], [turns]) and the tallies the
    aggregate pool report serialises. The campaign loop owns all
    mutation; policies only read. *)

type t = {
  ordinal : int; (* 1-based position in pool order (smallest seed first) *)
  seed : bytes;
  size : int; (* seed length in bytes *)
  mutable turns : int; (* campaign turns granted *)
  mutable granted : int; (* budget granted across those turns *)
  mutable dwell : int; (* virtual time actually consumed *)
  mutable new_blocks : int; (* blocks this seed added to the merged set *)
  mutable bugs : int; (* merged bugs first found under this seed *)
  mutable faults : int; (* contained faults in this seed's engine *)
  mutable quarantined : int; (* quarantine evictions during its turns *)
  mutable strikes : int; (* quarantine strikes during its turns *)
  mutable timeouts : int; (* watchdog strikes: overran or crashed turns *)
  mutable retired : bool; (* no longer schedulable (drained or skipped) *)
}

val create : ordinal:int -> bytes -> t

val carry : t -> int
(** Unused budget rolled forward: [max 0 (granted - dwell)]. *)

val stat_row : t -> Pbse_telemetry.Report.seed_row
(** Snapshot the tallies into the aggregate report's per-seed row. *)
