module Report = Pbse_telemetry.Report

type t = {
  ordinal : int;
  seed : bytes;
  size : int;
  mutable turns : int;
  mutable granted : int;
  mutable dwell : int;
  mutable new_blocks : int;
  mutable bugs : int;
  mutable faults : int;
  mutable quarantined : int;
  mutable strikes : int;
  mutable timeouts : int;
  mutable retired : bool;
}

let create ~ordinal seed =
  {
    ordinal;
    seed;
    size = Bytes.length seed;
    turns = 0;
    granted = 0;
    dwell = 0;
    new_blocks = 0;
    bugs = 0;
    faults = 0;
    quarantined = 0;
    strikes = 0;
    timeouts = 0;
    retired = false;
  }

let carry slot = max 0 (slot.granted - slot.dwell)

let stat_row slot =
  {
    Report.ordinal = slot.ordinal;
    bytes = slot.size;
    turns = slot.turns;
    granted = slot.granted;
    dwell = slot.dwell;
    new_blocks = slot.new_blocks;
    bugs = slot.bugs;
    faults = slot.faults;
    quarantined = slot.quarantined;
    strikes = slot.strikes;
    timeouts = slot.timeouts;
  }
