(** The campaign loop: scheduled, budget-reallocating execution over a
    seed pool.

    Generic over both the policy ({!Pool_scheduler.t}) and the engine: a
    caller-supplied [turn] callback runs one seed for one budgeted turn
    and reports what happened. The loop owns all {!Seed_slot} counter
    updates (turns, granted, dwell, new_blocks, retired); the callback
    only executes.

    [Pbse.Driver.run_pool] supplies a callback that opens a resumable
    driver session per seed on its first turn and steps it on later
    ones, keeping this library free of any engine dependency. *)

type outcome = {
  spent : int; (* virtual time the turn consumed (may overshoot budget) *)
  new_blocks : int; (* blocks the turn added to the merged coverage set *)
  finished : bool; (* the seed's engine drained; no more turns wanted *)
}

val run :
  sched:Pool_scheduler.t ->
  deadline:int ->
  (Seed_slot.t -> budget:int -> outcome) ->
  int
(** [run ~sched ~deadline turn] grants turns until the budget is spent
    or every slot is retired, and returns the total virtual time spent.
    Zero-budget shares and turns that make no progress retire their slot
    (never the campaign), so the loop always terminates. *)

val run_rounds :
  ?on_round:(int -> unit) ->
  ?after_round:(unit -> bool) ->
  ?lease:int ->
  ?round_wrap:((unit -> unit) -> unit) ->
  ?pool:Domain_pool.t ->
  sched:Pool_scheduler.t ->
  deadline:int ->
  jobs:(unit -> int) ->
  run:(Seed_slot.t -> budget:int -> 'r) ->
  merge:(Seed_slot.t -> budget:int -> 'r -> outcome) ->
  unit ->
  int
(** [run_rounds ~sched ~deadline ~jobs ~run ~merge ()] is the
    round-barrier campaign loop behind [--jobs]: each iteration asks the
    policy to {!Pool_scheduler.t.plan} a whole round, clamps the round's
    budgets against the opening balance in plan order (zero shares
    skip-retire their slot without running), executes the surviving
    turns with {!Domain_pool.run} on up to [jobs] domains — each slot
    homed on its ordinal, so a seed's turns stick to one worker domain
    across rounds — then merges results at the barrier {e in plan
    order}: [merge] turns each [run] result into an {!outcome}
    (performing any shared-state merging — coverage union, bug harvest —
    as a side effect), after which the loop updates the slot's counters
    and retires or credits it exactly as {!run} would. Because plans,
    clamps and merges never observe intra-round outcomes or completion
    order, the spent total, every slot counter and every merge effect
    are identical for every [jobs] value, including 1 — the
    byte-identical pool-report contract (docs/parallelism.md).

    [lease] (default 1, clamped to at least 1) coarsens work units: each
    planned turn becomes up to [lease] consecutive same-budget sub-turns
    (bounded by the remaining balance, claimed in plan order), which run
    unbroken on one worker — [run] is called once per sub-turn, in order
    — and merge sub-turn by sub-turn at the barrier. The scheduler sees
    one aggregated credit-or-retire decision per lease, so policy
    decisions and barrier overhead amortise over [lease] engine turns.
    Reports remain byte-identical across [jobs] at any fixed [lease];
    different leases are different (equally deterministic) campaigns.

    [run] executes on a worker domain and must touch only the slot's own
    session state (its runtime context); [merge] runs on the calling
    domain. [on_round] fires before each executed round with the number
    of runnable leases in it.

    [pool] is the campaign's worker pool; when omitted a private pool is
    created for the call and shut down before it returns. [jobs] is
    consulted once per round, so a caller may narrow the pool width
    mid-campaign (graceful degradation) — the width is invisible to
    plans and merges, so reports are unaffected. [after_round] fires
    after each executed round's merges; returning [false] stops the
    campaign at that barrier (checkpoint-and-halt), leaving all slot
    state consistent for a later resume.

    [round_wrap] (default [fun f -> f ()]) brackets each executed round,
    from dispatch through the last merge — a server multiplexing several
    campaigns onto one shared pool passes a fair-share arbiter here, so
    pool occupancy changes hands only at round granularity and the
    barriers inside a round (hence per-round determinism) are untouched.
    [after_round] runs outside the wrap. *)
