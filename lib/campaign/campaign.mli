(** The campaign loop: scheduled, budget-reallocating execution over a
    seed pool.

    Generic over both the policy ({!Pool_scheduler.t}) and the engine: a
    caller-supplied [turn] callback runs one seed for one budgeted turn
    and reports what happened. The loop owns all {!Seed_slot} counter
    updates (turns, granted, dwell, new_blocks, retired); the callback
    only executes.

    [Pbse.Driver.run_pool] supplies a callback that opens a resumable
    driver session per seed on its first turn and steps it on later
    ones, keeping this library free of any engine dependency. *)

type outcome = {
  spent : int; (* virtual time the turn consumed (may overshoot budget) *)
  new_blocks : int; (* blocks the turn added to the merged coverage set *)
  finished : bool; (* the seed's engine drained; no more turns wanted *)
}

val run :
  sched:Pool_scheduler.t ->
  deadline:int ->
  (Seed_slot.t -> budget:int -> outcome) ->
  int
(** [run ~sched ~deadline turn] grants turns until the budget is spent
    or every slot is retired, and returns the total virtual time spent.
    Zero-budget shares and turns that make no progress retire their slot
    (never the campaign), so the loop always terminates. *)
