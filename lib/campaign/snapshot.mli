(** Versioned, checksummed serialisation of a live campaign.

    A snapshot is the durable record of a seed-pool campaign at a round
    barrier: slot counters and remaining budgets, each opened session's
    granted-turn history (the {e event ledger}), the merged-bug dedup
    keys, scheduler position, pool telemetry counters and the
    checkpoint/degradation bookkeeping. Engine state (searcher queues,
    symbolic stores, expression arenas) is deliberately {e not}
    serialised — the engine is deterministic in virtual time, so
    [Pbse.Driver.resume_pool] reconstructs it by replaying each
    session's ledger against the same seed, then verifies the replayed
    clock and coverage against the values recorded here.

    The on-disk form is a [pbse-snapshot/1] JSON document whose payload
    is guarded by an FNV-1a checksum; writes are atomic (tmp + rename)
    and rotate the previous checkpoint to [FILE.bak] as a fallback.
    This module is engine-agnostic (ints and strings only), keeping
    [pbse_campaign] free of any engine dependency. *)

type turn_event =
  | Step of {
      deadline : int; (* the turn's virtual-clock deadline *)
      budget : int; (* the budget the scheduler granted *)
    }  (** a normally executed turn *)
  | Crash of string  (** a turn killed at entry; the normalized detail *)

type slot_state = {
  sl_ordinal : int;
  sl_bytes : int; (* seed length, checked against the resume pool *)
  sl_turns : int;
  sl_granted : int;
  sl_dwell : int;
  sl_new_blocks : int;
  sl_bugs : int;
  sl_quarantined : int;
  sl_strikes : int;
  sl_timeouts : int;
  sl_retired : bool;
  sl_clock : int; (* session virtual time; replay must land here *)
  sl_coverage : int; (* session covered-block count; ditto *)
  sl_prefix_cap : int; (* prefix cap at open time; -1 = unbounded *)
  sl_crash_draws : int; (* turn-crash channel draws to re-burn *)
  sl_events : turn_event list; (* granted turns, oldest first *)
}

type bug_ref = {
  br_slot : int; (* ordinal of the slot the bug was merged from *)
  br_gid : int; (* global block id of the bug site *)
  br_kind : string;
}

type t = {
  sn_meta : (string * string) list; (* config kvs, target, scheduler... *)
  sn_deadline : int; (* the campaign's full budget *)
  sn_spent : int; (* virtual time consumed so far *)
  sn_rounds : int;
  sn_parallel_turns : int;
  sn_merge_blocks : int;
  sn_merge_bugs : int;
  sn_checkpoints : int; (* checkpoints written (snapshot-channel draws) *)
  sn_degrade_faults : int; (* pool-level faults driving degradation *)
  sn_sched_turns : int;
  sn_sched_rotations : int;
  sn_sched_retirements : int;
  sn_sched_state : (string * int) list; (* Pool_scheduler.t.state *)
  sn_pool_faults : (string * int) list; (* pool fault log, label -> count *)
  sn_opened : int list; (* slot ordinals in session-open order *)
  sn_counters : (string * int) list; (* pool registry counters *)
  sn_slots : slot_state list;
  sn_bugs : bug_ref list; (* merged-bug keys in harvest order *)
}

val schema : string
(** ["pbse-snapshot/1"]. *)

val to_string : t -> string
(** The full on-disk document (compact JSON, schema + checksum +
    payload). Deterministic: [of_string] followed by [to_string]
    reproduces the bytes exactly. *)

type error =
  | Corrupt of string (* unparsable, truncated, or failed its checksum *)
  | Version_mismatch of string (* a schema other than {!schema} *)

val error_message : error -> string

val of_string : string -> (t, error) result

val save : path:string -> t -> unit
(** Atomic write: the document goes to [path].tmp, any existing [path]
    rotates to [path].bak, then the tmp renames into place. *)

val save_string : path:string -> string -> unit
(** {!save} for pre-rendered (possibly deliberately corrupted — fault
    injection) document bytes. *)

val load : path:string -> (t, error) result
(** Read and validate [path]; I/O errors surface as [Corrupt]. *)
