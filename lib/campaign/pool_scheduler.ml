module Telemetry = Pbse_telemetry.Telemetry

let tm_turns = Telemetry.counter "campaign.turns"
let tm_rotations = Telemetry.counter "campaign.rotations"
let tm_retirements = Telemetry.counter "campaign.retirements"

type turn = {
  slot : Seed_slot.t;
  budget : int;
}

type stats = {
  mutable turns : int;
  mutable rotations : int;
  mutable retirements : int;
}

type t = {
  name : string;
  select : remaining:int -> turn option;
  credit : Seed_slot.t -> spent:int -> new_blocks:int -> unit;
  retire : Seed_slot.t -> unit;
  drained : unit -> bool;
  active : unit -> Seed_slot.t list;
  stats : stats;
}

let stats_create () = { turns = 0; rotations = 0; retirements = 0 }

let note_turn st =
  st.turns <- st.turns + 1;
  Telemetry.incr tm_turns

let note_rotation st =
  st.rotations <- st.rotations + 1;
  Telemetry.incr tm_rotations

let note_retirement st =
  st.retirements <- st.retirements + 1;
  Telemetry.incr tm_retirements

(* Remove one slot (matched by ordinal) from the array, preserving order. *)
let array_remove slots (s : Seed_slot.t) =
  let n = Array.length !slots in
  match
    Array.to_list !slots
    |> List.mapi (fun i x -> (i, x))
    |> List.find_opt (fun (_, (x : Seed_slot.t)) -> x.Seed_slot.ordinal = s.Seed_slot.ordinal)
  with
  | None -> ()
  | Some (idx, _) ->
    slots := Array.init (n - 1) (fun i -> if i < idx then !slots.(i) else !slots.(i + 1))

(* Algorithm 1's outer loop, as a policy: the head seed (slots arrive in
   smallest-first order) gets one turn sized to an equal share of the
   remaining budget, then leaves the rotation whether or not its engine
   drained. Unused budget stays in the pool, so later seeds inherit it
   through the shrinking divisor. *)
let smallest_first ~time_period:_ slot_list =
  let slots = ref (Array.of_list slot_list) in
  let stats = stats_create () in
  {
    name = "smallest-first";
    select =
      (fun ~remaining ->
        if Array.length !slots = 0 then None
        else begin
          note_turn stats;
          Some { slot = !slots.(0); budget = remaining / Array.length !slots }
        end);
    credit =
      (fun s ~spent:_ ~new_blocks:_ ->
        (* one turn per seed: the share was final *)
        note_retirement stats;
        array_remove slots s);
    retire =
      (fun s ->
        note_retirement stats;
        array_remove slots s);
    drained = (fun () -> Array.length !slots = 0);
    active = (fun () -> Array.to_list !slots);
    stats;
  }

(* Fair rotation: every seed gets [time_period]-sized turns in pool
   order, with its own unused budget rolled forward onto its next turn
   (an engine that stops early keeps its claim; one that overshoots
   starts from zero carry). *)
let round_robin ~time_period slot_list =
  let slots = ref (Array.of_list slot_list) in
  let pos = ref 0 in
  let stats = stats_create () in
  let wrap () =
    if !pos >= Array.length !slots then begin
      pos := 0;
      if Array.length !slots > 0 then note_rotation stats
    end
  in
  {
    name = "round-robin";
    select =
      (fun ~remaining:_ ->
        if Array.length !slots = 0 then None
        else begin
          note_turn stats;
          let s = !slots.(!pos) in
          Some { slot = s; budget = time_period + Seed_slot.carry s }
        end);
    credit =
      (fun _s ~spent:_ ~new_blocks:_ ->
        incr pos;
        wrap ());
    retire =
      (fun s ->
        note_retirement stats;
        array_remove slots s;
        wrap ());
    drained = (fun () -> Array.length !slots = 0);
    active = (fun () -> Array.to_list !slots);
    stats;
  }

(* Greedy reallocation: the next turn goes to the seed with the best
   new-blocks-per-dwell ratio, (new_blocks + 1) / (dwell + time_period),
   compared by integer cross-multiplication; ties break toward the lower
   ordinal (the smaller seed). A seed whose marginal coverage dries up
   loses the comparison and its remaining budget flows to the others.
   Budgets grow with the slot's own turn count so a productive seed
   earns longer stretches. *)
let coverage_greedy ~time_period slot_list =
  let slots = ref (Array.of_list slot_list) in
  let stats = stats_create () in
  let better (a : Seed_slot.t) (b : Seed_slot.t) =
    let lhs = (a.Seed_slot.new_blocks + 1) * (b.Seed_slot.dwell + time_period) in
    let rhs = (b.Seed_slot.new_blocks + 1) * (a.Seed_slot.dwell + time_period) in
    if lhs <> rhs then lhs > rhs else a.Seed_slot.ordinal < b.Seed_slot.ordinal
  in
  {
    name = "coverage-greedy";
    select =
      (fun ~remaining:_ ->
        if Array.length !slots = 0 then None
        else begin
          note_turn stats;
          let best =
            Array.fold_left (fun acc s -> if better s acc then s else acc) !slots.(0) !slots
          in
          Some { slot = best; budget = (best.Seed_slot.turns + 1) * time_period }
        end);
    credit = (fun _s ~spent:_ ~new_blocks:_ -> ());
    retire =
      (fun s ->
        note_retirement stats;
        array_remove slots s);
    drained = (fun () -> Array.length !slots = 0);
    active = (fun () -> Array.to_list !slots);
    stats;
  }

let default = "smallest-first"
let names = [ "smallest-first"; "round-robin"; "coverage-greedy" ]

let by_name = function
  | "smallest-first" -> Some smallest_first
  | "round-robin" -> Some round_robin
  | "coverage-greedy" -> Some coverage_greedy
  | _ -> None
