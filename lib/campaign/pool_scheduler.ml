module Telemetry = Pbse_telemetry.Telemetry

type turn = {
  slot : Seed_slot.t;
  budget : int;
}

type stats = {
  mutable turns : int;
  mutable rotations : int;
  mutable retirements : int;
}

type t = {
  name : string;
  select : remaining:int -> turn option;
  plan : remaining:int -> turn list;
  credit : Seed_slot.t -> spent:int -> new_blocks:int -> unit;
  retire : Seed_slot.t -> unit;
  drained : unit -> bool;
  active : unit -> Seed_slot.t list;
  stats : stats;
  state : unit -> (string * int) list;
  restore_state : (string * int) list -> unit;
}

let stats_create () = { turns = 0; rotations = 0; retirements = 0 }

(* stateless policies: nothing beyond the live-slot set and [stats] *)
let no_state = ((fun () -> []), fun _ -> ())

(* Campaign telemetry lives in the registry the factory was given, so a
   pool registry never aliases the per-session ones. *)
type instruments = {
  i_turns : Telemetry.counter;
  i_rotations : Telemetry.counter;
  i_retirements : Telemetry.counter;
}

let instruments ?registry () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  {
    i_turns = Telemetry.Registry.counter registry "campaign.turns";
    i_rotations = Telemetry.Registry.counter registry "campaign.rotations";
    i_retirements = Telemetry.Registry.counter registry "campaign.retirements";
  }

let note_turn ins st =
  st.turns <- st.turns + 1;
  Telemetry.incr ins.i_turns

let note_rotation ins st =
  st.rotations <- st.rotations + 1;
  Telemetry.incr ins.i_rotations

let note_retirement ins st =
  st.retirements <- st.retirements + 1;
  Telemetry.incr ins.i_retirements

(* Remove one slot (matched by ordinal) from the array, preserving order. *)
let array_remove slots (s : Seed_slot.t) =
  let n = Array.length !slots in
  match
    Array.to_list !slots
    |> List.mapi (fun i x -> (i, x))
    |> List.find_opt (fun (_, (x : Seed_slot.t)) -> x.Seed_slot.ordinal = s.Seed_slot.ordinal)
  with
  | None -> ()
  | Some (idx, _) ->
    slots := Array.init (n - 1) (fun i -> if i < idx then !slots.(i) else !slots.(i + 1))

(* Algorithm 1's outer loop, as a policy: the head seed (slots arrive in
   smallest-first order) gets one turn sized to an equal share of the
   remaining budget, then leaves the rotation whether or not its engine
   drained. Unused budget stays in the pool, so later seeds inherit it
   through the shrinking divisor. *)
let smallest_first ?registry ~time_period:_ slot_list =
  let ins = instruments ?registry () in
  let slots = ref (Array.of_list slot_list) in
  let stats = stats_create () in
  {
    name = "smallest-first";
    select =
      (fun ~remaining ->
        if Array.length !slots = 0 then None
        else begin
          note_turn ins stats;
          Some { slot = !slots.(0); budget = remaining / Array.length !slots }
        end);
    (* One round: every live slot, in pool order, with an equal share of
       the budget the round started with. The plan depends only on the
       live-slot set and [remaining], never on the outcomes of turns
       inside the round, so every [--jobs] width plans identically. *)
    plan =
      (fun ~remaining ->
        let n = Array.length !slots in
        if n = 0 then []
        else begin
          let share = remaining / n in
          Array.to_list
            (Array.map
               (fun slot ->
                 note_turn ins stats;
                 { slot; budget = share })
               !slots)
        end);
    credit =
      (fun s ~spent:_ ~new_blocks:_ ->
        (* one turn per seed: the share was final *)
        note_retirement ins stats;
        array_remove slots s);
    retire =
      (fun s ->
        note_retirement ins stats;
        array_remove slots s);
    drained = (fun () -> Array.length !slots = 0);
    active = (fun () -> Array.to_list !slots);
    stats;
    state = fst no_state;
    restore_state = snd no_state;
  }

(* Fair rotation: every seed gets [time_period]-sized turns in pool
   order, with its own unused budget rolled forward onto its next turn
   (an engine that stops early keeps its claim; one that overshoots
   starts from zero carry). *)
let round_robin ?registry ~time_period slot_list =
  let ins = instruments ?registry () in
  let slots = ref (Array.of_list slot_list) in
  let pos = ref 0 in
  let stats = stats_create () in
  let wrap () =
    if !pos >= Array.length !slots then begin
      pos := 0;
      if Array.length !slots > 0 then note_rotation ins stats
    end
  in
  {
    name = "round-robin";
    select =
      (fun ~remaining:_ ->
        if Array.length !slots = 0 then None
        else begin
          note_turn ins stats;
          let s = !slots.(!pos) in
          Some { slot = s; budget = time_period + Seed_slot.carry s }
        end);
    (* One round = one full rotation: every live slot once, in pool
       order, with the fair period plus its rolled-forward carry. *)
    plan =
      (fun ~remaining:_ ->
        if Array.length !slots = 0 then []
        else begin
          note_rotation ins stats;
          Array.to_list
            (Array.map
               (fun s ->
                 note_turn ins stats;
                 { slot = s; budget = time_period + Seed_slot.carry s })
               !slots)
        end);
    credit =
      (fun _s ~spent:_ ~new_blocks:_ ->
        incr pos;
        wrap ());
    retire =
      (fun s ->
        note_retirement ins stats;
        array_remove slots s;
        wrap ());
    drained = (fun () -> Array.length !slots = 0);
    active = (fun () -> Array.to_list !slots);
    stats;
    state = (fun () -> [ ("pos", !pos) ]);
    restore_state =
      (fun kvs ->
        match List.assoc_opt "pos" kvs with Some p -> pos := p | None -> ());
  }

(* Greedy reallocation: the next turn goes to the seed with the best
   new-blocks-per-dwell ratio, (new_blocks + 1) / (dwell + time_period),
   compared by integer cross-multiplication; ties break toward the lower
   ordinal (the smaller seed). A seed whose marginal coverage dries up
   loses the comparison and its remaining budget flows to the others.
   Budgets grow with the slot's own turn count so a productive seed
   earns longer stretches. *)
let coverage_greedy ?registry ~time_period slot_list =
  let ins = instruments ?registry () in
  let slots = ref (Array.of_list slot_list) in
  let stats = stats_create () in
  let better (a : Seed_slot.t) (b : Seed_slot.t) =
    let lhs = (a.Seed_slot.new_blocks + 1) * (b.Seed_slot.dwell + time_period) in
    let rhs = (b.Seed_slot.new_blocks + 1) * (a.Seed_slot.dwell + time_period) in
    if lhs <> rhs then lhs > rhs else a.Seed_slot.ordinal < b.Seed_slot.ordinal
  in
  {
    name = "coverage-greedy";
    select =
      (fun ~remaining:_ ->
        if Array.length !slots = 0 then None
        else begin
          note_turn ins stats;
          let best =
            Array.fold_left (fun acc s -> if better s acc then s else acc) !slots.(0) !slots
          in
          Some { slot = best; budget = (best.Seed_slot.turns + 1) * time_period }
        end);
    (* One round: every live slot, most-productive ratio first (same
       comparison as [select]), each budgeted by its own turn count. The
       ordering uses only counters frozen at the round barrier. *)
    plan =
      (fun ~remaining:_ ->
        let live = Array.copy !slots in
        Array.sort (fun a b -> if better a b then -1 else if better b a then 1 else 0) live;
        Array.to_list
          (Array.map
             (fun s ->
               note_turn ins stats;
               { slot = s; budget = (s.Seed_slot.turns + 1) * time_period })
             live));
    credit = (fun _s ~spent:_ ~new_blocks:_ -> ());
    retire =
      (fun s ->
        note_retirement ins stats;
        array_remove slots s);
    drained = (fun () -> Array.length !slots = 0);
    active = (fun () -> Array.to_list !slots);
    stats;
    state = fst no_state;
    restore_state = snd no_state;
  }

let default = "smallest-first"
let names = [ "smallest-first"; "round-robin"; "coverage-greedy" ]

let by_name = function
  | "smallest-first" -> Some smallest_first
  | "round-robin" -> Some round_robin
  | "coverage-greedy" -> Some coverage_greedy
  | _ -> None
