(** Seed-pool scheduling policies behind one interface.

    The seed-level mirror of {!Pbse_sched.Scheduler}: the campaign loop
    repeatedly asks [select] for the next seed turn and its budget, runs
    that seed's engine for the turn, then reports back — [credit] when
    the seed stays schedulable, [retire] when it leaves the pool (engine
    drained, zero budget, or no progress). Policies read the counters on
    {!Seed_slot} (the campaign loop owns them) and are deterministic:
    identical call sequences yield identical selections, which the
    byte-identical aggregate-report test relies on. *)

type turn = {
  slot : Seed_slot.t;
  budget : int; (* virtual-time allowance for this turn *)
}

type stats = {
  mutable turns : int; (* turns granted *)
  mutable rotations : int; (* full rotations (policy-specific) *)
  mutable retirements : int; (* slots retired from the rotation *)
}

type t = {
  name : string;
  select : remaining:int -> turn option;
      (** Next seed to run and its budget, given the campaign's
          remaining budget; [None] when no slots remain. *)
  plan : remaining:int -> turn list;
      (** The whole next {e round} at once: one turn per live slot, in
          policy order, budgets fixed from the state at the barrier.
          Because the plan never depends on the outcomes of turns inside
          the round, the turns can run concurrently (one domain each)
          and merge deterministically — every [--jobs] width sees the
          same plans. An empty list means the pool is drained. Use
          either [select] or [plan] on a given instance, not both. *)
  credit : Seed_slot.t -> spent:int -> new_blocks:int -> unit;
      (** The turn ended and the seed stays schedulable (under
          [smallest-first] the seed's single share is spent, so credit
          also retires it). *)
  retire : Seed_slot.t -> unit;  (** Remove the seed from the rotation. *)
  drained : unit -> bool;  (** No slots left to schedule. *)
  active : unit -> Seed_slot.t list;
      (** Slots still schedulable, in policy order. *)
  stats : stats;
  state : unit -> (string * int) list;
      (** Policy-internal position beyond [stats] and the live-slot set
          (campaign snapshots persist it): [round-robin] exposes its
          rotation cursor, the other policies are stateless. *)
  restore_state : (string * int) list -> unit;
      (** Reinstate a {!state} capture on a freshly built instance over
          the same live slots (campaign resume). Unknown keys are
          ignored. *)
}

val smallest_first :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Seed_slot.t list ->
  t
(** The paper's Algorithm 1 (today's equal split): each seed, smallest
    first, gets one turn sized to an equal share of the remaining
    budget. [time_period] is unused. *)

val round_robin :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Seed_slot.t list ->
  t
(** Fair rotation: [time_period]-sized turns in pool order, per-seed
    unused budget rolled forward onto the seed's next turn. *)

val coverage_greedy :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Seed_slot.t list ->
  t
(** Adaptive reallocation: best new-blocks-per-dwell ratio first
    (integer cross-multiplied, ties to the lower ordinal), budgets
    growing with the slot's own turn count. *)

val default : string
(** ["smallest-first"] — the paper's behaviour. *)

val names : string list
(** All policy names accepted by {!by_name}. *)

val by_name :
  string ->
  (?registry:Pbse_telemetry.Telemetry.Registry.t ->
  time_period:int ->
  Seed_slot.t list ->
  t)
  option
(** Factories accept the registry that owns their [campaign.*] counters
    (default {!Pbse_telemetry.Telemetry.Registry.default}). *)
