module Json = Pbse_telemetry.Json

type turn_event =
  | Step of {
      deadline : int;
      budget : int;
    }
  | Crash of string

type slot_state = {
  sl_ordinal : int;
  sl_bytes : int;
  sl_turns : int;
  sl_granted : int;
  sl_dwell : int;
  sl_new_blocks : int;
  sl_bugs : int;
  sl_quarantined : int;
  sl_strikes : int;
  sl_timeouts : int;
  sl_retired : bool;
  sl_clock : int;
  sl_coverage : int;
  sl_prefix_cap : int;
  sl_crash_draws : int;
  sl_events : turn_event list;
}

type bug_ref = {
  br_slot : int;
  br_gid : int;
  br_kind : string;
}

type t = {
  sn_meta : (string * string) list;
  sn_deadline : int;
  sn_spent : int;
  sn_rounds : int;
  sn_parallel_turns : int;
  sn_merge_blocks : int;
  sn_merge_bugs : int;
  sn_checkpoints : int;
  sn_degrade_faults : int;
  sn_sched_turns : int;
  sn_sched_rotations : int;
  sn_sched_retirements : int;
  sn_sched_state : (string * int) list;
  sn_pool_faults : (string * int) list;
  sn_opened : int list;
  sn_counters : (string * int) list;
  sn_slots : slot_state list;
  sn_bugs : bug_ref list;
}

let schema = "pbse-snapshot/1"

(* --- checksum -------------------------------------------------------------- *)

(* FNV-1a over the compact payload rendering. 64-bit arithmetic is done
   in Int64 (the native int is 63-bit), rendered as 16 hex digits. The
   JSON printer is deterministic and key-order preserving, so parse →
   re-render reproduces the checksummed bytes exactly. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Printf.sprintf "fnv1a64:%016Lx" !h

(* --- serialisation --------------------------------------------------------- *)

let event_to_json = function
  | Step { deadline; budget } ->
    Json.Obj [ ("d", Json.Int deadline); ("b", Json.Int budget) ]
  | Crash detail -> Json.Obj [ ("crash", Json.Str detail) ]

let slot_to_json s =
  Json.Obj
    [
      ("ordinal", Json.Int s.sl_ordinal);
      ("bytes", Json.Int s.sl_bytes);
      ("turns", Json.Int s.sl_turns);
      ("granted", Json.Int s.sl_granted);
      ("dwell", Json.Int s.sl_dwell);
      ("new_blocks", Json.Int s.sl_new_blocks);
      ("bugs", Json.Int s.sl_bugs);
      ("quarantined", Json.Int s.sl_quarantined);
      ("strikes", Json.Int s.sl_strikes);
      ("timeouts", Json.Int s.sl_timeouts);
      ("retired", Json.Bool s.sl_retired);
      ("clock", Json.Int s.sl_clock);
      ("coverage", Json.Int s.sl_coverage);
      ("prefix_cap", Json.Int s.sl_prefix_cap);
      ("crash_draws", Json.Int s.sl_crash_draws);
      ("events", Json.List (List.map event_to_json s.sl_events));
    ]

let bug_to_json b =
  Json.Obj
    [
      ("slot", Json.Int b.br_slot);
      ("gid", Json.Int b.br_gid);
      ("kind", Json.Str b.br_kind);
    ]

let int_obj kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)

let payload_to_json t =
  Json.Obj
    [
      ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.sn_meta));
      ("deadline", Json.Int t.sn_deadline);
      ("spent", Json.Int t.sn_spent);
      ("rounds", Json.Int t.sn_rounds);
      ("parallel_turns", Json.Int t.sn_parallel_turns);
      ("merge_blocks", Json.Int t.sn_merge_blocks);
      ("merge_bugs", Json.Int t.sn_merge_bugs);
      ("checkpoints", Json.Int t.sn_checkpoints);
      ("degrade_faults", Json.Int t.sn_degrade_faults);
      ( "sched",
        Json.Obj
          [
            ("turns", Json.Int t.sn_sched_turns);
            ("rotations", Json.Int t.sn_sched_rotations);
            ("retirements", Json.Int t.sn_sched_retirements);
            ("state", int_obj t.sn_sched_state);
          ] );
      ("pool_faults", int_obj t.sn_pool_faults);
      ("opened", Json.List (List.map (fun o -> Json.Int o) t.sn_opened));
      ("counters", int_obj t.sn_counters);
      ("slots", Json.List (List.map slot_to_json t.sn_slots));
      ("bugs", Json.List (List.map bug_to_json t.sn_bugs));
    ]

let to_string t =
  let payload = payload_to_json t in
  let body = Json.to_string payload in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ("checksum", Json.Str (fnv1a64 body));
         ("payload", payload);
       ])

(* --- parsing --------------------------------------------------------------- *)

type error =
  | Corrupt of string
  | Version_mismatch of string

let error_message = function
  | Corrupt msg -> Printf.sprintf "corrupt snapshot: %s" msg
  | Version_mismatch msg -> Printf.sprintf "snapshot version mismatch: %s" msg

(* the checksum vouches for integrity, so field decoding can be lenient:
   a missing field decodes to its zero value *)
let get_int field json =
  match Option.bind (Json.member field json) Json.to_int with Some i -> i | None -> 0

let get_bool field json =
  match Option.bind (Json.member field json) Json.to_bool with
  | Some b -> b
  | None -> false

let int_pairs field json =
  match Json.member field json with
  | Some (Json.Obj kvs) ->
    List.filter_map (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v)) kvs
  | _ -> []

let get_list field json =
  match Option.bind (Json.member field json) Json.to_list with
  | Some items -> items
  | None -> []

let event_of_json json =
  match Option.bind (Json.member "crash" json) Json.to_str with
  | Some detail -> Crash detail
  | None -> Step { deadline = get_int "d" json; budget = get_int "b" json }

let slot_of_json json =
  {
    sl_ordinal = get_int "ordinal" json;
    sl_bytes = get_int "bytes" json;
    sl_turns = get_int "turns" json;
    sl_granted = get_int "granted" json;
    sl_dwell = get_int "dwell" json;
    sl_new_blocks = get_int "new_blocks" json;
    sl_bugs = get_int "bugs" json;
    sl_quarantined = get_int "quarantined" json;
    sl_strikes = get_int "strikes" json;
    sl_timeouts = get_int "timeouts" json;
    sl_retired = get_bool "retired" json;
    sl_clock = get_int "clock" json;
    sl_coverage = get_int "coverage" json;
    sl_prefix_cap = get_int "prefix_cap" json;
    sl_crash_draws = get_int "crash_draws" json;
    sl_events = List.map event_of_json (get_list "events" json);
  }

let bug_of_json json =
  {
    br_slot = get_int "slot" json;
    br_gid = get_int "gid" json;
    br_kind =
      (match Option.bind (Json.member "kind" json) Json.to_str with
       | Some s -> s
       | None -> "");
  }

let payload_of_json json =
  let sched =
    match Json.member "sched" json with Some s -> s | None -> Json.Obj []
  in
  {
    sn_meta =
      (match Json.member "meta" json with
       | Some (Json.Obj kvs) ->
         List.filter_map
           (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
           kvs
       | _ -> []);
    sn_deadline = get_int "deadline" json;
    sn_spent = get_int "spent" json;
    sn_rounds = get_int "rounds" json;
    sn_parallel_turns = get_int "parallel_turns" json;
    sn_merge_blocks = get_int "merge_blocks" json;
    sn_merge_bugs = get_int "merge_bugs" json;
    sn_checkpoints = get_int "checkpoints" json;
    sn_degrade_faults = get_int "degrade_faults" json;
    sn_sched_turns = get_int "turns" sched;
    sn_sched_rotations = get_int "rotations" sched;
    sn_sched_retirements = get_int "retirements" sched;
    sn_sched_state = int_pairs "state" sched;
    sn_pool_faults = int_pairs "pool_faults" json;
    sn_opened = List.filter_map Json.to_int (get_list "opened" json);
    sn_counters = int_pairs "counters" json;
    sn_slots = List.map slot_of_json (get_list "slots" json);
    sn_bugs = List.map bug_of_json (get_list "bugs" json);
  }

let of_string text =
  match Json.parse text with
  | Error e -> Error (Corrupt e)
  | Ok json -> (
    match Option.bind (Json.member "schema" json) Json.to_str with
    | None -> Error (Corrupt "missing \"schema\" field")
    | Some s when s <> schema ->
      Error (Version_mismatch (Printf.sprintf "schema %S (want %S)" s schema))
    | Some _ -> (
      match
        ( Option.bind (Json.member "checksum" json) Json.to_str,
          Json.member "payload" json )
      with
      | None, _ -> Error (Corrupt "missing \"checksum\" field")
      | _, None -> Error (Corrupt "missing \"payload\" field")
      | Some recorded, Some payload ->
        let actual = fnv1a64 (Json.to_string payload) in
        if recorded <> actual then
          Error
            (Corrupt
               (Printf.sprintf "checksum mismatch (recorded %s, computed %s)"
                  recorded actual))
        else Ok (payload_of_json payload)))

(* --- files ----------------------------------------------------------------- *)

let save_string ~path data =
  (* atomic: write aside then rename into place, keeping the previous
     checkpoint as [path].bak so a corrupt write has a fallback *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc data;
      output_char oc '\n');
  if Sys.file_exists path then begin
    let bak = path ^ ".bak" in
    if Sys.file_exists bak then Sys.remove bak;
    Sys.rename path bak
  end;
  Sys.rename tmp path

let save ~path t = save_string ~path (to_string t)

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Corrupt e)
  | text -> of_string text
