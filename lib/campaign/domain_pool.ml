(* Persistent domain pool with home-queue affinity and work-stealing.

   A pool spawns its worker domains once ([create]) and reuses them for
   every round of a campaign ([run]), so round barriers cost a
   mutex-and-condition handshake instead of a spawn-and-join per round.
   Each run distributes its tasks into per-worker queues by the caller's
   [home] key: a slot that always maps to the same key always executes
   on the same domain (its session arena, prefix contexts and scratch
   state stay hot in that domain's caches), and a worker only *steals*
   from the other queues once its own runs dry. Pinned-vs-stolen counts
   are kept as pool statistics ([pinned], [steals]) so affinity loss is
   diagnosable from a run report.

   Determinism: results land in a slot array indexed by input position
   and are consumed in input order, so which worker ran which task — and
   whether it was pinned or stolen — is invisible to the caller
   (docs/parallelism.md). Exceptions are captured per task and the
   earliest (in input order) re-raised after the round barrier, so a
   failing task can never leak a running domain and the pool stays
   usable.

   Memory publication: the coordinator installs a round's queues and
   task closure under the pool mutex before bumping the epoch, and
   workers acknowledge completion under the same mutex — each round's
   writes (results, session mutations) happen-before the coordinator's
   barrier read. Task indices are claimed from per-queue atomic cursors,
   so a slow task never blocks the rest of its queue. *)

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let run_task f tasks results i =
  match f tasks.(i) with
  | v -> results.(i) <- Done v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    results.(i) <- Failed (e, bt)

let collect results =
  Array.to_list
    (Array.map
       (function
         | Done v -> v
         | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
         | Pending -> assert false)
       results)

type t = {
  lock : Mutex.t;
  work : Condition.t; (* a new epoch (or shutdown) is ready *)
  idle : Condition.t; (* a worker finished the current epoch *)
  mutable epoch : int;
  mutable acked : int; (* spawned workers done with the current epoch *)
  mutable active : int; (* workers participating in the current epoch *)
  mutable queues : int array array; (* per-active-worker task indices *)
  mutable cursors : int Atomic.t array;
  mutable run_one : int -> unit; (* current epoch's task runner *)
  mutable pinned : int; (* tasks run by their home worker *)
  mutable steals : int; (* tasks run by a non-home worker *)
  mutable closing : bool;
  width : int; (* worker count including the coordinator *)
  mutable domains : unit Domain.t array; (* the [width - 1] spawned ones *)
}

(* Drain the worker's own queue first (every task there counts as
   pinned), then sweep the other active queues in cyclic order and steal
   what is left. Runs outside the mutex: queues, cursors and [run_one]
   were published by the epoch handshake, and distinct tasks never share
   a result slot. *)
let participate t w =
  if w >= t.active then (0, 0)
  else begin
    let pinned = ref 0 and steals = ref 0 in
    let drain qi counter =
      let q = t.queues.(qi) in
      let cursor = t.cursors.(qi) in
      let n = Array.length q in
      let rec go () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          t.run_one q.(i);
          incr counter;
          go ()
        end
      in
      go ()
    in
    drain w pinned;
    for d = 1 to t.active - 1 do
      drain ((w + d) mod t.active) steals
    done;
    (!pinned, !steals)
  end

let rec worker_loop t w seen_epoch =
  Mutex.lock t.lock;
  while (not t.closing) && t.epoch = seen_epoch do
    Condition.wait t.work t.lock
  done;
  if t.closing then Mutex.unlock t.lock
  else begin
    let epoch = t.epoch in
    Mutex.unlock t.lock;
    let pinned, steals = participate t w in
    Mutex.lock t.lock;
    t.pinned <- t.pinned + pinned;
    t.steals <- t.steals + steals;
    t.acked <- t.acked + 1;
    Condition.broadcast t.idle;
    Mutex.unlock t.lock;
    worker_loop t w epoch
  end

let create ~jobs =
  (* More domains than cores is pure overhead (the minor-GC barrier
     synchronises every running domain), so the width is capped by the
     hardware; [run]'s per-round [jobs] can only narrow it further. *)
  let width = max 1 (min jobs (Domain.recommended_domain_count ())) in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      epoch = 0;
      acked = 0;
      active = 0;
      queues = [||];
      cursors = [||];
      run_one = ignore;
      pinned = 0;
      steals = 0;
      closing = false;
      width;
      domains = [||];
    }
  in
  if width > 1 then
    t.domains <-
      Array.init (width - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1) 0));
  t

let width t = t.width

let pinned t =
  Mutex.lock t.lock;
  let v = t.pinned in
  Mutex.unlock t.lock;
  v

let steals t =
  Mutex.lock t.lock;
  let v = t.steals in
  Mutex.unlock t.lock;
  v

let run t ~jobs ~home f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let results = Array.make n Pending in
    let active = max 1 (min (min jobs t.width) n) in
    if active <= 1 then begin
      (* degraded or sequential round: run inline, spawned workers (if
         any) sleep through it — the epoch never advances *)
      for i = 0 to n - 1 do
        run_task f tasks results i
      done;
      Mutex.lock t.lock;
      t.pinned <- t.pinned + n;
      Mutex.unlock t.lock
    end
    else begin
      let buckets = Array.make active [] in
      (* bucket in reverse so each queue ends up in input order *)
      for i = n - 1 downto 0 do
        let h = ((home tasks.(i) mod active) + active) mod active in
        buckets.(h) <- i :: buckets.(h)
      done;
      Mutex.lock t.lock;
      t.queues <- Array.map Array.of_list buckets;
      t.cursors <- Array.init active (fun _ -> Atomic.make 0);
      t.active <- active;
      t.run_one <- (fun i -> run_task f tasks results i);
      t.acked <- 0;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      (* the coordinator is worker 0 *)
      let pinned, steals = participate t 0 in
      Mutex.lock t.lock;
      t.pinned <- t.pinned + pinned;
      t.steals <- t.steals + steals;
      while t.acked < Array.length t.domains do
        Condition.wait t.idle t.lock
      done;
      (* drop the round's closures so finished task state can be
         collected between rounds *)
      t.run_one <- ignore;
      t.queues <- [||];
      t.cursors <- [||];
      Mutex.unlock t.lock
    end;
    collect results
  end

let shutdown t =
  Mutex.lock t.lock;
  if t.closing then Mutex.unlock t.lock
  else begin
    t.closing <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

(* One-shot parallel map, for callers without a campaign-long pool (and
   the pre-pool API). Tasks are homed by input index, so the work spreads
   round-robin and stealing still balances stragglers. *)
let map ~jobs f xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let t = create ~jobs:(min (max 1 jobs) n) in
    Fun.protect
      ~finally:(fun () -> shutdown t)
      (fun () ->
        let idx = ref (-1) in
        let xs = List.map (fun x -> incr idx; (!idx, x)) xs in
        run t ~jobs ~home:fst (fun (_, x) -> f x) xs)
  end
