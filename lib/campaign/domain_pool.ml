(* Work-stealing map over OCaml 5 domains.

   The input list becomes an array of tasks claimed through one atomic
   cursor: each worker domain repeatedly takes the next unclaimed index
   and runs the function on it, so a slow task never blocks the others
   (work-stealing in the degenerate single-queue form, which is all a
   turn barrier needs). Results land in a slot array indexed by input
   position — callers consume them in input order, which is what makes
   the surrounding merge deterministic regardless of which domain ran
   which task or in what order they finished.

   Exceptions are captured per task and re-raised (first in input order)
   after every domain has been joined, so a failing task can never leak
   a running domain. *)

type 'b slot =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let run_task f tasks results i =
  match f tasks.(i) with
  | v -> results.(i) <- Done v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    results.(i) <- Failed (e, bt)

let collect results =
  Array.to_list
    (Array.map
       (function
         | Done v -> v
         | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
         | Pending -> assert false)
       results)

let map ~jobs f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let results = Array.make n Pending in
  let workers = min (max 1 jobs) n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      run_task f tasks results i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec steal () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_task f tasks results i;
          steal ()
        end
      in
      steal ()
    in
    (* [workers - 1] spawned domains plus the calling one; Domain.join
       gives the happens-before edge that publishes every result slot
       (and everything the tasks mutated) back to the caller. *)
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  collect results
