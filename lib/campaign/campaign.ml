type outcome = {
  spent : int;
  new_blocks : int;
  finished : bool;
}

(* The generic campaign loop: policy decisions live behind
   [Pool_scheduler.t], engine execution behind the [turn] callback, and
   this loop owns every slot counter. Termination is guaranteed: each
   iteration either consumes budget (monotone progress toward the
   deadline) or retires a slot (zero-budget shares and no-progress turns
   leave the rotation), and the rotation is finite. *)
let run ~sched ~deadline turn =
  let spent_total = ref 0 in
  let rec loop () =
    let remaining = deadline - !spent_total in
    if remaining > 0 then
      match sched.Pool_scheduler.select ~remaining with
      | None -> ()
      | Some { Pool_scheduler.slot; budget } ->
        let budget = min budget remaining in
        if budget <= 0 then begin
          (* a share too small to run: the seed is skipped, its claim
             flows back to the pool *)
          slot.Seed_slot.retired <- true;
          sched.Pool_scheduler.retire slot;
          loop ()
        end
        else begin
          slot.Seed_slot.turns <- slot.Seed_slot.turns + 1;
          slot.Seed_slot.granted <- slot.Seed_slot.granted + budget;
          let o = turn slot ~budget in
          slot.Seed_slot.dwell <- slot.Seed_slot.dwell + o.spent;
          slot.Seed_slot.new_blocks <- slot.Seed_slot.new_blocks + o.new_blocks;
          spent_total := !spent_total + o.spent;
          if o.finished || o.spent <= 0 then begin
            (* drained, or a turn that made no progress: either way the
               seed must leave the rotation or the loop could live-lock *)
            slot.Seed_slot.retired <- true;
            sched.Pool_scheduler.retire slot
          end
          else
            sched.Pool_scheduler.credit slot ~spent:o.spent ~new_blocks:o.new_blocks;
          loop ()
        end
  in
  loop ();
  !spent_total

(* The round-barrier variant: the policy plans a whole round up front
   (one turn per live slot, outcome-independent), the turns run — on up
   to [jobs] domains — and the results merge back at the barrier in plan
   order. Budgets are clamped against the round's opening balance in
   plan order, so the clamp too is independent of how turns inside the
   round actually went; every [jobs] width therefore grants, runs and
   merges the identical sequence. Retirement mirrors {!run}: a clamped
   share of zero skips the slot out of the rotation, and a finished or
   progress-free turn retires it at the barrier. *)
let run_rounds ?(on_round = fun _ -> ()) ?(after_round = fun () -> true) ~sched
    ~deadline ~jobs ~run ~merge () =
  let spent_total = ref 0 in
  let rec loop () =
    let remaining = deadline - !spent_total in
    if remaining > 0 then begin
      match sched.Pool_scheduler.plan ~remaining with
      | [] -> ()
      | planned ->
        (* split the plan into runnable turns and zero-share skips,
           draining the opening balance in plan order *)
        let avail = ref remaining in
        let runnable =
          List.filter_map
            (fun { Pool_scheduler.slot; budget } ->
              let budget = min budget !avail in
              if budget <= 0 then begin
                slot.Seed_slot.retired <- true;
                sched.Pool_scheduler.retire slot;
                None
              end
              else begin
                avail := !avail - budget;
                slot.Seed_slot.turns <- slot.Seed_slot.turns + 1;
                slot.Seed_slot.granted <- slot.Seed_slot.granted + budget;
                Some (slot, budget)
              end)
            planned
        in
        if runnable <> [] then begin
          on_round (List.length runnable);
          let results =
            Domain_pool.map ~jobs:(jobs ())
              (fun (slot, budget) -> run slot ~budget)
              runnable
          in
          List.iter2
            (fun (slot, budget) result ->
              let o = merge slot ~budget result in
              slot.Seed_slot.dwell <- slot.Seed_slot.dwell + o.spent;
              slot.Seed_slot.new_blocks <- slot.Seed_slot.new_blocks + o.new_blocks;
              spent_total := !spent_total + o.spent;
              if o.finished || o.spent <= 0 then begin
                slot.Seed_slot.retired <- true;
                sched.Pool_scheduler.retire slot
              end
              else
                sched.Pool_scheduler.credit slot ~spent:o.spent ~new_blocks:o.new_blocks)
            runnable results;
          if after_round () then loop ()
        end
    end
  in
  loop ();
  !spent_total
