type outcome = {
  spent : int;
  new_blocks : int;
  finished : bool;
}

(* The generic campaign loop: policy decisions live behind
   [Pool_scheduler.t], engine execution behind the [turn] callback, and
   this loop owns every slot counter. Termination is guaranteed: each
   iteration either consumes budget (monotone progress toward the
   deadline) or retires a slot (zero-budget shares and no-progress turns
   leave the rotation), and the rotation is finite. *)
let run ~sched ~deadline turn =
  let spent_total = ref 0 in
  let rec loop () =
    let remaining = deadline - !spent_total in
    if remaining > 0 then
      match sched.Pool_scheduler.select ~remaining with
      | None -> ()
      | Some { Pool_scheduler.slot; budget } ->
        let budget = min budget remaining in
        if budget <= 0 then begin
          (* a share too small to run: the seed is skipped, its claim
             flows back to the pool *)
          slot.Seed_slot.retired <- true;
          sched.Pool_scheduler.retire slot;
          loop ()
        end
        else begin
          slot.Seed_slot.turns <- slot.Seed_slot.turns + 1;
          slot.Seed_slot.granted <- slot.Seed_slot.granted + budget;
          let o = turn slot ~budget in
          slot.Seed_slot.dwell <- slot.Seed_slot.dwell + o.spent;
          slot.Seed_slot.new_blocks <- slot.Seed_slot.new_blocks + o.new_blocks;
          spent_total := !spent_total + o.spent;
          if o.finished || o.spent <= 0 then begin
            (* drained, or a turn that made no progress: either way the
               seed must leave the rotation or the loop could live-lock *)
            slot.Seed_slot.retired <- true;
            sched.Pool_scheduler.retire slot
          end
          else
            sched.Pool_scheduler.credit slot ~spent:o.spent ~new_blocks:o.new_blocks;
          loop ()
        end
  in
  loop ();
  !spent_total

(* The round-barrier variant: the policy plans a whole round up front
   (one turn per live slot, outcome-independent), the turns run — on up
   to [jobs] domains — and the results merge back at the barrier in plan
   order. Budgets are clamped against the round's opening balance in
   plan order, so the clamp too is independent of how turns inside the
   round actually went; every [jobs] width therefore grants, runs and
   merges the identical sequence. Retirement mirrors {!run}: a clamped
   share of zero skips the slot out of the rotation, and a finished or
   progress-free turn retires it at the barrier.

   [lease] coarsens the work units: each planned turn is granted up to
   [lease] consecutive sub-turns of the same budget (bounded by the
   remaining balance, still clamped in plan order), which run unbroken
   on one worker and merge sub-turn by sub-turn at the barrier. The
   scheduler sees one credit-or-retire decision per lease — exactly the
   decision it would have seen per turn at [lease = 1] — so barrier and
   merge overhead amortises over [lease] engine turns. Slots are homed
   on their ordinal, so a slot's leases land on the same pool worker
   round after round (domain-affine sessions; stealing only when a
   worker runs dry).

   [round_wrap] brackets each executed round (dispatch through merges):
   a server multiplexing several campaigns onto one shared pool passes
   an arbiter here, so pool occupancy is handed over at round
   granularity — the barriers inside a round stay untouched, keeping
   per-round determinism. *)
let run_rounds ?(on_round = fun _ -> ()) ?(after_round = fun () -> true) ?(lease = 1)
    ?(round_wrap = fun f -> f ()) ?pool ~sched ~deadline ~jobs ~run ~merge () =
  let lease = max 1 lease in
  let owned_pool = ref None in
  let pool =
    match pool with
    | Some p -> p
    | None ->
      let p = Domain_pool.create ~jobs:(jobs ()) in
      owned_pool := Some p;
      p
  in
  let spent_total = ref 0 in
  let rec loop () =
    let remaining = deadline - !spent_total in
    if remaining > 0 then begin
      match sched.Pool_scheduler.plan ~remaining with
      | [] -> ()
      | planned ->
        (* split the plan into runnable leases and zero-share skips,
           draining the opening balance in plan order: each lease claims
           up to [lease] budgets (at least one — the clamp guarantees
           budget <= avail) before the next slot draws *)
        let avail = ref remaining in
        let runnable =
          List.filter_map
            (fun { Pool_scheduler.slot; budget } ->
              let budget = min budget !avail in
              if budget <= 0 then begin
                slot.Seed_slot.retired <- true;
                sched.Pool_scheduler.retire slot;
                None
              end
              else begin
                let turns = max 1 (min lease (!avail / budget)) in
                avail := !avail - (budget * turns);
                slot.Seed_slot.turns <- slot.Seed_slot.turns + turns;
                slot.Seed_slot.granted <- slot.Seed_slot.granted + (budget * turns);
                Some (slot, budget, turns)
              end)
            planned
        in
        if runnable <> [] then begin
          round_wrap (fun () ->
          on_round (List.length runnable);
          let results =
            Domain_pool.run pool ~jobs:(jobs ())
              ~home:(fun (slot, _, _) -> slot.Seed_slot.ordinal - 1)
              (fun (slot, budget, turns) ->
                (* sub-turns step the same session: strictly in order *)
                let rec go k acc =
                  if k = 0 then List.rev acc else go (k - 1) (run slot ~budget :: acc)
                in
                go turns [])
              runnable
          in
          List.iter2
            (fun (slot, budget, _turns) sub_results ->
              (* merge every sub-turn, in lease order, then make the one
                 credit-or-retire decision for the whole lease *)
              let lease_spent = ref 0 in
              let lease_blocks = ref 0 in
              let finished = ref false in
              List.iter
                (fun result ->
                  let o = merge slot ~budget result in
                  slot.Seed_slot.dwell <- slot.Seed_slot.dwell + o.spent;
                  slot.Seed_slot.new_blocks <- slot.Seed_slot.new_blocks + o.new_blocks;
                  spent_total := !spent_total + o.spent;
                  lease_spent := !lease_spent + o.spent;
                  lease_blocks := !lease_blocks + o.new_blocks;
                  if o.finished then finished := true)
                sub_results;
              if !finished || !lease_spent <= 0 then begin
                if not slot.Seed_slot.retired then begin
                  slot.Seed_slot.retired <- true;
                  sched.Pool_scheduler.retire slot
                end
              end
              else
                sched.Pool_scheduler.credit slot ~spent:!lease_spent
                  ~new_blocks:!lease_blocks)
            runnable results);
          if after_round () then loop ()
        end
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Domain_pool.shutdown !owned_pool)
    (fun () ->
      loop ();
      !spent_total)
