type outcome = {
  spent : int;
  new_blocks : int;
  finished : bool;
}

(* The generic campaign loop: policy decisions live behind
   [Pool_scheduler.t], engine execution behind the [turn] callback, and
   this loop owns every slot counter. Termination is guaranteed: each
   iteration either consumes budget (monotone progress toward the
   deadline) or retires a slot (zero-budget shares and no-progress turns
   leave the rotation), and the rotation is finite. *)
let run ~sched ~deadline turn =
  let spent_total = ref 0 in
  let rec loop () =
    let remaining = deadline - !spent_total in
    if remaining > 0 then
      match sched.Pool_scheduler.select ~remaining with
      | None -> ()
      | Some { Pool_scheduler.slot; budget } ->
        let budget = min budget remaining in
        if budget <= 0 then begin
          (* a share too small to run: the seed is skipped, its claim
             flows back to the pool *)
          slot.Seed_slot.retired <- true;
          sched.Pool_scheduler.retire slot;
          loop ()
        end
        else begin
          slot.Seed_slot.turns <- slot.Seed_slot.turns + 1;
          slot.Seed_slot.granted <- slot.Seed_slot.granted + budget;
          let o = turn slot ~budget in
          slot.Seed_slot.dwell <- slot.Seed_slot.dwell + o.spent;
          slot.Seed_slot.new_blocks <- slot.Seed_slot.new_blocks + o.new_blocks;
          spent_total := !spent_total + o.spent;
          if o.finished || o.spent <= 0 then begin
            (* drained, or a turn that made no progress: either way the
               seed must leave the rotation or the loop could live-lock *)
            slot.Seed_slot.retired <- true;
            sched.Pool_scheduler.retire slot
          end
          else
            sched.Pool_scheduler.credit slot ~spent:o.spent ~new_blocks:o.new_blocks;
          loop ()
        end
  in
  loop ();
  !spent_total
