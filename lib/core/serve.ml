module Pool_scheduler = Pbse_campaign.Pool_scheduler
module Domain_pool = Pbse_campaign.Domain_pool
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report
module Json = Pbse_telemetry.Json
module Session_store = Pbse_session.Session_store

type stats = {
  sv_clients : int;
  sv_requests : int;
  sv_errors : int;
  sv_store_hits : int;
  sv_store_misses : int;
  sv_store_evictions : int;
}

(* --- fair-share round arbiter ----------------------------------------------

   One shared domain pool, many concurrent campaigns: each campaign
   wraps every round (dispatch through merges) in [wrap], which grants
   pool occupancy in strict ticket order. Campaigns therefore interleave
   at round granularity — a long campaign cannot starve a short one for
   more than one round — while the barriers inside a round stay
   untouched, keeping per-round determinism. *)

type arbiter = {
  arb_mutex : Mutex.t;
  arb_cond : Condition.t;
  mutable arb_next : int; (* next ticket to hand out *)
  mutable arb_serving : int; (* ticket currently allowed to run *)
}

let arbiter_create () =
  {
    arb_mutex = Mutex.create ();
    arb_cond = Condition.create ();
    arb_next = 0;
    arb_serving = 0;
  }

let arbiter_wrap arb f =
  let ticket =
    Mutex.protect arb.arb_mutex (fun () ->
        let t = arb.arb_next in
        arb.arb_next <- t + 1;
        t)
  in
  Mutex.lock arb.arb_mutex;
  while arb.arb_serving <> ticket do
    Condition.wait arb.arb_cond arb.arb_mutex
  done;
  Mutex.unlock arb.arb_mutex;
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect arb.arb_mutex (fun () ->
          arb.arb_serving <- arb.arb_serving + 1;
          Condition.broadcast arb.arb_cond))
    f

(* --- request protocol ------------------------------------------------------

   One request per connection: a single line of JSON in, one framed
   response out. The response header is one line — "pbse-serve/1 ok
   NBYTES" or "pbse-serve/1 error MESSAGE" — followed (ok only) by
   exactly NBYTES of pbse-report/1 JSON, byte-identical to what `pbse
   run TARGET --pool --report` writes for the same request. *)

type request = {
  rq_target : string;
  rq_deadline : int;
  rq_pool_scheduler : string;
  rq_scheduler : string option; (* phase-scheduling policy override *)
  rq_jobs : int option; (* per-request width, clamped to the pool's *)
  rq_lease : int;
  rq_share : bool; (* search.share_seed_states for this campaign *)
}

let default_deadline = 120_000 (* one paper-hour of virtual time *)

let parse_request line =
  match Json.parse line with
  | Error e -> Error ("bad request JSON: " ^ e)
  | Ok json -> (
    let str k = Option.bind (Json.member k json) Json.to_str in
    let int k = Option.bind (Json.member k json) Json.to_int in
    let bool k = Option.bind (Json.member k json) Json.to_bool in
    match str "target" with
    | None -> Error "request needs a \"target\" field"
    | Some target ->
      Ok
        {
          rq_target = target;
          rq_deadline = Option.value (int "deadline") ~default:default_deadline;
          rq_pool_scheduler =
            Option.value (str "pool_scheduler") ~default:Pool_scheduler.default;
          rq_scheduler = str "scheduler";
          rq_jobs = int "jobs";
          rq_lease = max 1 (Option.value (int "lease") ~default:1);
          rq_share = Option.value (bool "share") ~default:false;
        })

(* The CLI's exact `run --pool --report` recipe, against the server's
   shared pool and store: default config (plus the request's phase
   scheduler and sharing switch), a fresh runtime per request over a
   private telemetry-enabled registry — concurrent requests share no
   registry — and the same report metadata the CLI writes. *)
let run_request ~pool ~store ~arb ~jobs req prog seeds =
  if not (List.mem req.rq_pool_scheduler Pool_scheduler.names) then
    Error
      (Printf.sprintf "unknown pool scheduler %s (available: %s)"
         req.rq_pool_scheduler
         (String.concat ", " Pool_scheduler.names))
  else if
    match req.rq_scheduler with
    | Some s -> not (List.mem s Pbse_sched.Scheduler.names)
    | None -> false
  then
    Error
      (Printf.sprintf "unknown scheduler %s (available: %s)"
         (Option.get req.rq_scheduler)
         (String.concat ", " Pbse_sched.Scheduler.names))
  else begin
    let config =
      Driver.default_config
      |> Driver.with_search (fun s ->
             {
               s with
               Driver.scheduler =
                 Option.value req.rq_scheduler
                   ~default:s.Driver.scheduler;
               share_seed_states = req.rq_share;
             })
    in
    let runtime =
      Runtime.create
        ~registry:(Telemetry.Registry.create ~enabled:true ())
        ~rng_seed:config.Driver.rng_seed ~inject:config.Driver.robust.Driver.inject
        ~max_strikes:config.Driver.robust.Driver.max_strikes
        ~prefix_cap:config.Driver.solver.Driver.prefix_cap ()
    in
    match
      Driver.run_pool ~config ~scheduler:req.rq_pool_scheduler ~runtime
        ~jobs:(Option.value req.rq_jobs ~default:jobs)
        ~lease:req.rq_lease ~pool ~store ~target:req.rq_target
        ~round_wrap:(arbiter_wrap arb) prog ~seeds ~deadline:req.rq_deadline
    with
    | report ->
      let meta =
        [
          ("target", req.rq_target);
          ("seed", "pool");
          ("deadline", string_of_int req.rq_deadline);
        ]
      in
      Ok (Report.to_json (Driver.pool_run_report ~meta report))
    | exception e -> Error (Printexc.to_string e)
  end

let sanitize msg =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg

let serve ~socket ?(jobs = 2) ?store_cap ?(stop = Atomic.make false) ~lookup () =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let registry = Telemetry.Registry.create ~enabled:true () in
  let ctr_clients = Telemetry.Registry.counter registry "serve.clients" in
  let ctr_requests = Telemetry.Registry.counter registry "serve.requests" in
  let ctr_errors = Telemetry.Registry.counter registry "serve.errors" in
  let clients = Atomic.make 0 in
  let requests = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let store = Session_store.create ?cap:store_cap ~registry () in
  let pool = Domain_pool.create ~jobs in
  let arb = arbiter_create () in
  let handle_client fd =
    Atomic.incr clients;
    Telemetry.incr ctr_clients;
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let respond_error msg =
      Atomic.incr errors;
      Telemetry.incr ctr_errors;
      output_string oc ("pbse-serve/1 error " ^ sanitize msg ^ "\n")
    in
    (try
       (match input_line ic with
        | exception End_of_file -> () (* client connected and hung up *)
        | line -> (
          match parse_request line with
          | Error e -> respond_error e
          | Ok req -> (
            match lookup req.rq_target with
            | None -> respond_error ("unknown target " ^ req.rq_target)
            | Some (prog, seeds) -> (
              match run_request ~pool ~store ~arb ~jobs req prog seeds with
              | Error e -> respond_error e
              | Ok body ->
                Atomic.incr requests;
                Telemetry.incr ctr_requests;
                output_string oc
                  (Printf.sprintf "pbse-serve/1 ok %d\n" (String.length body));
                output_string oc body))));
       flush oc
     with Sys_error _ | Unix.Unix_error _ -> ());
    try close_out oc with Sys_error _ | Unix.Unix_error _ -> ()
  in
  let threads = ref [] in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (* poll so a SIGTERM-set [stop] flag is honoured within ~200ms *)
      match Unix.select [ listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ ->
        (match Unix.accept listen_fd with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | fd, _ -> threads := Thread.create handle_client fd :: !threads);
        accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (* drain in-flight requests before releasing their domain pool *)
      List.iter Thread.join !threads;
      Domain_pool.shutdown pool;
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    accept_loop;
  {
    sv_clients = Atomic.get clients;
    sv_requests = Atomic.get requests;
    sv_errors = Atomic.get errors;
    sv_store_hits = Session_store.hits store;
    sv_store_misses = Session_store.misses store;
    sv_store_evictions = Session_store.evictions store;
  }

(* --- client ---------------------------------------------------------------- *)

let request ~socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message err))
  | () ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let finish r =
      (try close_out oc with Sys_error _ | Unix.Unix_error _ -> ());
      r
    in
    (try
       output_string oc line;
       if not (String.length line > 0 && line.[String.length line - 1] = '\n')
       then output_string oc "\n";
       flush oc;
       match input_line ic with
       | exception End_of_file -> finish (Error "server closed the connection")
       | header -> (
         match String.split_on_char ' ' header with
         | "pbse-serve/1" :: "ok" :: n :: _ -> (
           match int_of_string_opt n with
           | None -> finish (Error ("bad response header: " ^ header))
           | Some n -> finish (Ok (really_input_string ic n)))
         | "pbse-serve/1" :: "error" :: rest ->
           finish (Error (String.concat " " rest))
         | _ -> finish (Error ("bad response header: " ^ header)))
     with
    | End_of_file -> finish (Error "truncated response")
    | Sys_error e -> finish (Error e)
    | Unix.Unix_error (err, _, _) -> finish (Error (Unix.error_message err)))
