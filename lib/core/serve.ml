module Pool_scheduler = Pbse_campaign.Pool_scheduler
module Domain_pool = Pbse_campaign.Domain_pool
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report
module Session_store = Pbse_session.Session_store
module Protocol = Pbse_serve.Protocol
module Transport = Pbse_serve.Transport
module Admission = Pbse_serve.Admission

type stats = {
  sv_clients : int;
  sv_requests : int;
  sv_errors : int;
  sv_rejections : int;
  sv_store_hits : int;
  sv_store_misses : int;
  sv_store_evictions : int;
  sv_store_reloads : int;
}

(* --- fair-share round arbiter ----------------------------------------------

   One shared domain pool, many concurrent campaigns: each campaign
   wraps every round (dispatch through merges) in [wrap], which grants
   pool occupancy in strict ticket order. Campaigns therefore interleave
   at round granularity — a long campaign cannot starve a short one for
   more than one round — while the barriers inside a round stay
   untouched, keeping per-round determinism. Admission control sits in
   front of this arbiter: the arbiter shares fairly among admitted
   campaigns, admission decides who gets to queue at all. *)

type arbiter = {
  arb_mutex : Mutex.t;
  arb_cond : Condition.t;
  mutable arb_next : int; (* next ticket to hand out *)
  mutable arb_serving : int; (* ticket currently allowed to run *)
}

let arbiter_create () =
  {
    arb_mutex = Mutex.create ();
    arb_cond = Condition.create ();
    arb_next = 0;
    arb_serving = 0;
  }

let arbiter_wrap arb f =
  let ticket =
    Mutex.protect arb.arb_mutex (fun () ->
        let t = arb.arb_next in
        arb.arb_next <- t + 1;
        t)
  in
  Mutex.lock arb.arb_mutex;
  while arb.arb_serving <> ticket do
    Condition.wait arb.arb_cond arb.arb_mutex
  done;
  Mutex.unlock arb.arb_mutex;
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect arb.arb_mutex (fun () ->
          arb.arb_serving <- arb.arb_serving + 1;
          Condition.broadcast arb.arb_cond))
    f

(* --- campaign execution ----------------------------------------------------

   The CLI's exact `run --pool --report` recipe, against the server's
   shared pool and store: default config (plus the request's phase
   scheduler and sharing switch), a fresh runtime per request over a
   private telemetry-enabled registry — concurrent requests share no
   registry — and the same report metadata the CLI writes. *)

let config_of_request (req : Protocol.request) =
  Driver.default_config
  |> Driver.with_search (fun s ->
         {
           s with
           Driver.scheduler =
             Option.value req.Protocol.rq_scheduler ~default:s.Driver.scheduler;
           share_seed_states = req.Protocol.rq_share;
         })

let pool_scheduler_of (req : Protocol.request) =
  if req.Protocol.rq_pool_scheduler = "" then Pool_scheduler.default
  else req.Protocol.rq_pool_scheduler

let validate (req : Protocol.request) =
  let sched = pool_scheduler_of req in
  if not (List.mem sched Pool_scheduler.names) then
    Error
      ( Protocol.Unknown_scheduler,
        Printf.sprintf "unknown pool scheduler %s (available: %s)" sched
          (String.concat ", " Pool_scheduler.names) )
  else
    match req.Protocol.rq_scheduler with
    | Some s when not (List.mem s Pbse_sched.Scheduler.names) ->
      Error
        ( Protocol.Unknown_scheduler,
          Printf.sprintf "unknown scheduler %s (available: %s)" s
            (String.concat ", " Pbse_sched.Scheduler.names) )
    | _ -> Ok ()

let run_request ~pool ~store ~arb ~jobs ?on_round (req : Protocol.request) prog
    seeds =
  let config = config_of_request req in
  let runtime =
    Runtime.create
      ~registry:(Telemetry.Registry.create ~enabled:true ())
      ~rng_seed:config.Driver.rng_seed ~inject:config.Driver.robust.Driver.inject
      ~max_strikes:config.Driver.robust.Driver.max_strikes
      ~prefix_cap:config.Driver.solver.Driver.prefix_cap ()
  in
  let round_wrap f =
    arbiter_wrap arb f;
    match on_round with Some g -> g () | None -> ()
  in
  match
    Driver.run_pool ~config ~scheduler:(pool_scheduler_of req) ~runtime
      ~jobs:(Option.value req.Protocol.rq_jobs ~default:jobs)
      ~lease:req.Protocol.rq_lease ~pool ~store ~target:req.Protocol.rq_target
      ~round_wrap prog ~seeds ~deadline:req.Protocol.rq_deadline
  with
  | report ->
    let meta =
      [
        ("target", req.Protocol.rq_target);
        ("seed", "pool");
        ("deadline", string_of_int req.Protocol.rq_deadline);
      ]
    in
    Ok (Report.to_json (Driver.pool_run_report ~meta report))
  | exception e -> Error (Protocol.Internal, Printexc.to_string e)

(* --- connection handling ---------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

type server = {
  srv_pool : Domain_pool.t;
  srv_store : Driver.pool_report Session_store.t;
  srv_arb : arbiter;
  srv_admission : Admission.t;
  srv_jobs : int;
  srv_store_file : string option;
  srv_save_mutex : Mutex.t; (* one store-file writer at a time *)
  srv_lookup : string -> (Pbse_ir.Types.program * bytes list) option;
  srv_clients : int Atomic.t;
  srv_requests : int Atomic.t;
  srv_errors : int Atomic.t;
  ctr_clients : Telemetry.counter;
  ctr_requests : Telemetry.counter;
  ctr_errors : Telemetry.counter;
  ctr_rejections : Telemetry.counter;
}

let save_store srv =
  match srv.srv_store_file with
  | None -> ()
  | Some path -> (
    Mutex.protect srv.srv_save_mutex (fun () ->
        try Session_store.save srv.srv_store ~path
        with Sys_error _ -> () (* an unwritable store file degrades to none *)))

(* One request per connection. Everything the client can get wrong is
   answered in its own dialect: a v1 request (or a broken line that was
   recognisably v1) gets the one-line v1 error, everything else gets a
   v2 error frame with a structured code. A client that disconnects
   mid-campaign only marks its connection dead — the campaign runs to
   completion so the shared pool, arbiter and store stay healthy. *)
let handle srv fd =
  Atomic.incr srv.srv_clients;
  Telemetry.incr srv.ctr_clients;
  let rd = Transport.reader fd in
  let respond_error ~version ~id code message retry_after =
    Atomic.incr srv.srv_errors;
    Telemetry.incr srv.ctr_errors;
    match version with
    | Protocol.V1 -> write_all fd (Protocol.render_v1_error message)
    | Protocol.V2 ->
      write_all fd
        (Protocol.render_frame
           (Protocol.Error_frame { id; code; message; retry_after }))
  in
  let respond_body ~version ~id body =
    Atomic.incr srv.srv_requests;
    Telemetry.incr srv.ctr_requests;
    (match version with
     | Protocol.V1 ->
       write_all fd (Protocol.render_v1_ok_header (String.length body))
     | Protocol.V2 ->
       write_all fd
         (Protocol.render_frame
            (Protocol.Report { id; bytes = String.length body })));
    write_all fd body
  in
  let serve_request version (req : Protocol.request) =
    let id = req.Protocol.rq_id in
    let fail (code, message) = respond_error ~version ~id code message None in
    match
      Admission.admit srv.srv_admission
        ~client:(Option.value req.Protocol.rq_client ~default:"")
    with
    | Admission.Reject { retry_after } ->
      Telemetry.incr srv.ctr_rejections;
      (* the retry hint travels in the structured retry_after field; v1
         clients only see the message, so spell it out for them *)
      let message =
        match version with
        | Protocol.V2 -> "over capacity"
        | Protocol.V1 ->
          Printf.sprintf "over capacity: retry after %ds" retry_after
      in
      respond_error ~version ~id Protocol.Over_capacity message
        (Some retry_after)
    | Admission.Admit ticket ->
      Fun.protect ~finally:(fun () -> Admission.release ticket) @@ fun () -> (
      match validate req with
      | Error e -> fail e
      | Ok () -> (
        match srv.srv_lookup req.Protocol.rq_target with
        | None ->
          fail
            ( Protocol.Unknown_target,
              "unknown target " ^ req.Protocol.rq_target )
        | Some (prog, seeds) -> (
          let fingerprint =
            Driver.campaign_fingerprint ~config:(config_of_request req)
              ~scheduler:(pool_scheduler_of req) ~lease:req.Protocol.rq_lease
              ~target:req.Protocol.rq_target ~seeds
              ~deadline:req.Protocol.rq_deadline ()
          in
          match Session_store.find_residue srv.srv_store ~fingerprint with
          | Some body -> respond_body ~version ~id body
          | None ->
            (* progress frames ride the handler thread: [round_wrap]
               brackets each round on this thread, so frame writes never
               race the final report. A failed write (client gone) stops
               the frames, never the campaign. *)
            let dead = ref false in
            let round = ref 0 in
            let on_round () =
              if (not !dead) && version = Protocol.V2 && req.Protocol.rq_progress
              then begin
                incr round;
                try
                  write_all fd
                    (Protocol.render_frame
                       (Protocol.Progress { id; round = !round }))
                with Unix.Unix_error _ | Sys_error _ -> dead := true
              end
            in
            (match
               run_request ~pool:srv.srv_pool ~store:srv.srv_store
                 ~arb:srv.srv_arb ~jobs:srv.srv_jobs ~on_round req prog seeds
             with
             | Error e -> fail e
             | Ok body ->
               Session_store.put_residue srv.srv_store ~fingerprint body;
               save_store srv;
               if not !dead then respond_body ~version ~id body))))
  in
  (try
     (match Transport.read_line rd with
      | Error Transport.Eof | Error (Transport.Fail _) ->
        () (* client connected and hung up (or the read timed out) *)
      | Error Transport.Overflow ->
        (* consume the rest of the line first: closing with unread bytes
           pending resets the peer and can discard the error frame *)
        Transport.drain_line rd;
        respond_error ~version:Protocol.V2 ~id:None Protocol.Oversized_request
          (Printf.sprintf "request line exceeds %d bytes" Protocol.max_line)
          None
      | Ok line -> (
        match Protocol.parse_request line with
        | Error (version, code, message) ->
          respond_error
            ~version:(Option.value version ~default:Protocol.V2)
            ~id:None code message None
        | Ok (version, req) -> serve_request version req))
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Sys_error _ | Unix.Unix_error _ -> ()

(* --- server ------------------------------------------------------------------ *)

let serve ~endpoints ?(jobs = 2) ?store_cap ?store_file ?(max_inflight = 0)
    ?(quota_burst = 0) ?(quota_refill = 0.0) ?control ~lookup () =
  if endpoints = [] then invalid_arg "Serve.serve: no endpoints";
  (* progress frames are written to clients that may be gone; a SIGPIPE
     must surface as EPIPE on the write, not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let control =
    match control with Some c -> c | None -> Transport.control_create ()
  in
  let listeners =
    List.fold_left
      (fun acc ep ->
        match Transport.listen ep with
        | fd -> (ep, fd) :: acc
        | exception e ->
          List.iter (fun (ep, fd) -> Transport.close_listener ep fd) acc;
          raise e)
      [] endpoints
    |> List.rev
  in
  let registry = Telemetry.Registry.create ~enabled:true () in
  let store = Session_store.create ?cap:store_cap ~registry () in
  (match store_file with
   | Some path when Sys.file_exists path ->
     (* a corrupt or unreadable store file degrades to a cold boot *)
     ignore (Session_store.load store ~path)
   | _ -> ());
  let srv =
    {
      srv_pool = Domain_pool.create ~jobs;
      srv_store = store;
      srv_arb = arbiter_create ();
      srv_admission =
        Admission.create ~max_inflight ~quota_burst ~quota_refill ();
      srv_jobs = jobs;
      srv_store_file = store_file;
      srv_save_mutex = Mutex.create ();
      srv_lookup = lookup;
      srv_clients = Atomic.make 0;
      srv_requests = Atomic.make 0;
      srv_errors = Atomic.make 0;
      ctr_clients = Telemetry.Registry.counter registry "serve.clients";
      ctr_requests = Telemetry.Registry.counter registry "serve.requests";
      ctr_errors = Telemetry.Registry.counter registry "serve.errors";
      ctr_rejections = Telemetry.Registry.counter registry "serve.rejections";
    }
  in
  let threads_mutex = Mutex.create () in
  let threads = ref [] in
  let dispatch fd =
    let t = Thread.create (handle srv) fd in
    Mutex.protect threads_mutex (fun () -> threads := t :: !threads)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (ep, fd) -> Transport.close_listener ep fd) listeners;
      (* drain in-flight requests before releasing their domain pool *)
      List.iter Thread.join
        (Mutex.protect threads_mutex (fun () -> !threads));
      save_store srv;
      Domain_pool.shutdown srv.srv_pool)
    (fun () ->
      Transport.accept_loop control (List.map snd listeners) dispatch);
  {
    sv_clients = Atomic.get srv.srv_clients;
    sv_requests = Atomic.get srv.srv_requests;
    sv_errors = Atomic.get srv.srv_errors;
    sv_rejections = Admission.rejections srv.srv_admission;
    sv_store_hits = Session_store.hits store;
    sv_store_misses = Session_store.misses store;
    sv_store_evictions = Session_store.evictions store;
    sv_store_reloads = Session_store.reloads store;
  }

(* --- client ---------------------------------------------------------------- *)

type error_info = {
  err_code : string;
  err_message : string;
  err_retry_after : int option;
}

let transport_error message = { err_code = "transport"; err_message = message; err_retry_after = None }

let read_failure = function
  | Transport.Eof -> transport_error "server closed the connection"
  | Transport.Overflow -> transport_error "oversized response frame"
  | Transport.Fail e -> transport_error e

(* One exchange. The response dialect is detected from the first line:
   a [pbse-serve/1] header is the legacy framing, anything else must
   parse as v2 frames (progress frames invoke [on_progress] and keep
   reading). When a v2 envelope meets a pre-v2 server the server answers
   with a v1 error — the line is downgraded to the v1 one-liner and
   retried once on a fresh connection. *)
let request ?timeout ?on_progress ~connect line =
  let line =
    if String.length line > 0 && line.[String.length line - 1] = '\n' then line
    else line ^ "\n"
  in
  let exchange line =
    match Transport.connect ?timeout connect with
    | Error e -> Error { err_code = "connect"; err_message = e; err_retry_after = None }
    | Ok fd ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Sys_error _ | Unix.Unix_error _ -> ())
        (fun () ->
          match write_all fd line with
          | exception Unix.Unix_error (err, _, _) ->
            Error (transport_error (Unix.error_message err))
          | () ->
            let rd = Transport.reader fd in
            let rec next_frame () =
              match Transport.read_line rd with
              | Error e -> Error (read_failure e)
              | Ok header -> (
                match Protocol.parse_v1_header header with
                | Some (Protocol.V1_ok n) -> (
                  match Transport.read_exact rd n with
                  | Ok body -> Ok (`Body body)
                  | Error e -> Error (read_failure e))
                | Some (Protocol.V1_error msg) -> Ok (`V1_error msg)
                | None -> (
                  match Protocol.parse_frame header with
                  | Error e -> Error (transport_error e)
                  | Ok (Protocol.Progress { round; _ }) ->
                    (match on_progress with Some f -> f round | None -> ());
                    next_frame ()
                  | Ok (Protocol.Report { bytes; _ }) -> (
                    match Transport.read_exact rd bytes with
                    | Ok body -> Ok (`Body body)
                    | Error e -> Error (read_failure e))
                  | Ok (Protocol.Error_frame { code; message; retry_after; _ })
                    ->
                    Error
                      {
                        err_code = Protocol.error_label code;
                        err_message = message;
                        err_retry_after = retry_after;
                      }))
            in
            next_frame ())
  in
  match exchange line with
  | Ok (`Body body) -> Ok body
  | Ok (`V1_error msg) -> (
    (* a v1 error to a v2 envelope: the server predates v2 — fall back *)
    match Protocol.downgrade_request line with
    | Some v1_line -> (
      match exchange (v1_line ^ "\n") with
      | Ok (`Body body) -> Ok body
      | Ok (`V1_error msg) ->
        Error { err_code = "error"; err_message = msg; err_retry_after = None }
      | Error e -> Error e)
    | None ->
      Error { err_code = "error"; err_message = msg; err_retry_after = None })
  | Error e -> Error e
