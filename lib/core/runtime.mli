(** Re-export of {!Pbse_session.Runtime}, the explicit runtime context
    threaded through every engine layer — it moved to the session
    library with the session lifecycle; [Pbse.Runtime] remains the
    canonical path for engine-level callers. *)

include module type of struct
  include Pbse_session.Runtime
end
