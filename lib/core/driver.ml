module Executor = Pbse_exec.Executor
module Searcher = Pbse_exec.Searcher
module Coverage = Pbse_exec.Coverage
module State = Pbse_exec.State
module Bug = Pbse_exec.Bug
module Concolic = Pbse_concolic.Concolic
module Bbv = Pbse_concolic.Bbv
module Trace = Pbse_concolic.Trace
module Phase = Pbse_phase.Phase
module Vclock = Pbse_util.Vclock
module Rng = Pbse_util.Rng
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Quarantine = Pbse_robust.Quarantine

type config = {
  interval_length : int option; (* None: size from a concrete pre-run *)
  intervals_target : int; (* BBVs aimed for when auto-sizing *)
  time_period : int;
  phase_searcher : string;
  mode : Phase.mode;
  dedup_seed_states : bool;
  round_robin : bool;
  max_k : int;
  rng_seed : int;
  max_live : int;
  solver_budget : int;
  solver_retry_cap : int;
  confirm_bugs : bool;
  max_strikes : int;
  inject : Inject.plan;
}

let default_config =
  {
    interval_length = None;
    intervals_target = 120;
    time_period = 10_000;
    phase_searcher = "default";
    mode = Phase.Bbv_with_coverage;
    dedup_seed_states = true;
    round_robin = true;
    max_k = 20;
    rng_seed = 1;
    max_live = 8192;
    solver_budget = 60_000;
    solver_retry_cap = 480_000;
    confirm_bugs = true;
    max_strikes = 4;
    inject = Inject.none;
  }

type report = {
  config : config;
  seed_size : int;
  c_time : int;
  p_time : int;
  division : Phase.division;
  bbvs : Bbv.t list;
  trace : Trace.t;
  seed_state_count : int;
  interval_length : int;
  coverage_samples : (int * int) list;
  bugs : (Bug.t * int) list;
  executor : Executor.t;
  faults : Fault.log;
  quarantined : int;
  strikes : int;
}

let coverage_at report t =
  let rec scan best = function
    | [] -> best
    | (vt, cov) :: rest -> if vt <= t then scan cov rest else best
  in
  scan 0 report.coverage_samples

(* One schedulable phase: its searcher plus bookkeeping. *)
type phase_queue = {
  ordinal : int; (* 1-based position in first-appearance order *)
  pid : int;
  searcher : Searcher.t;
}

let make_phase_searcher config rng exec =
  match Searcher.by_name config.phase_searcher with
  | Some make -> make (Rng.split rng) (Executor.cfg exec) (Executor.coverage exec)
  | None -> invalid_arg ("Driver: unknown phase searcher " ^ config.phase_searcher)

let map_seed_states config ~interval_length division bbvs
    (seed_states : Concolic.seed_state list) =
  (* phase id for each seedState via its fork interval *)
  let tagged =
    List.filter_map
      (fun (ss : Concolic.seed_state) ->
        let interval = ss.Concolic.fork_vtime / interval_length in
        match Phase.phase_of_interval division bbvs interval with
        | Some pid ->
          ss.Concolic.state.State.phase <- pid;
          Some ss
        | None -> None)
      seed_states
  in
  if not config.dedup_seed_states then tagged
  else begin
    (* keep the earliest seedState per (phase, fork location) *)
    let seen = Hashtbl.create 256 in
    List.filter
      (fun (ss : Concolic.seed_state) ->
        let key = (ss.Concolic.state.State.phase, ss.Concolic.fork_gid) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      tagged
  end

let run ?(config = default_config) prog ~seed ~deadline =
  let clock = Vclock.create () in
  let exec =
    Executor.create ~max_live:config.max_live ~solver_budget:config.solver_budget
      ~solver_retry_cap:config.solver_retry_cap ~confirm_bugs:config.confirm_bugs
      ~inject:config.inject ~clock prog ~input:seed
  in
  let rng = Rng.create config.rng_seed in
  (* step 1: concolic execution. The BBV interval is sized from a cheap
     concrete pre-run so every seed yields a comparable number of BBVs
     (the paper gathers over wall-clock intervals; runs lasting longer
     simply produce more vectors). *)
  let interval_length =
    match config.interval_length with
    | Some l -> l
    | None ->
      let probe = Pbse_exec.Concrete.run prog ~input:seed ~fuel:20_000_000 in
      max 50 (probe.Pbse_exec.Concrete.steps / config.intervals_target)
  in
  let indexer = Trace.indexer () in
  let concolic = Concolic.run ~interval_length ~deadline exec indexer in
  let c_time = concolic.Concolic.c_time in
  (* step 2: phase analysis; charge virtual time proportional to the work *)
  let p_start = Vclock.now clock in
  let division =
    Phase.divide ~mode:config.mode ~max_k:config.max_k (Rng.split rng)
      concolic.Concolic.bbvs
  in
  Vclock.advance clock (50 * List.length concolic.Concolic.bbvs * config.max_k / 20);
  let p_time = Vclock.now clock - p_start + 1 in
  (match concolic.Concolic.bbvs with
   | [] ->
     Fault.record (Executor.faults exec) ~detail:"no BBVs; one-phase fallback"
       ~vtime:(Vclock.now clock) Fault.Degenerate_phase
   | _ :: _ -> ());
  (* step 3: map seedStates into phases. Feasibility is checked lazily,
     when a seedState is first scheduled — exactly the paper's "lazy pass
     through": the concolic step recorded fork points without exploring
     or deciding them. *)
  let seed_states =
    map_seed_states config ~interval_length division concolic.Concolic.bbvs
      concolic.Concolic.seed_states
  in
  (* build phase queues in first-appearance order *)
  let queue_list =
    List.mapi
      (fun i (p : Phase.phase) ->
        let searcher = make_phase_searcher config rng exec in
        { ordinal = i + 1; pid = p.Phase.pid; searcher })
      division.Phase.phases
  in
  List.iter
    (fun (ss : Concolic.seed_state) ->
      match
        List.find_opt (fun q -> q.pid = ss.Concolic.state.State.phase) queue_list
      with
      | Some q -> q.searcher.Searcher.add ss.Concolic.state
      | None -> ())
    seed_states;
  let queues =
    ref
      (Array.of_list
         (List.filter (fun q -> q.searcher.Searcher.size () > 0) queue_list))
  in
  Executor.set_live_counter exec (fun () ->
      Array.fold_left (fun acc q -> acc + q.searcher.Searcher.size ()) 0 !queues);
  (* bookkeeping for coverage samples and bug-to-phase attribution *)
  let samples = ref [ (Vclock.now clock, Coverage.count (Executor.coverage exec)) ] in
  let last_cov = ref (Coverage.count (Executor.coverage exec)) in
  let bug_phases : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
  let known_bugs = ref 0 in
  let note_progress current_ordinal =
    let cov = Coverage.count (Executor.coverage exec) in
    if cov <> !last_cov then begin
      last_cov := cov;
      samples := (Vclock.now clock, cov) :: !samples
    end;
    let bugs = Executor.bugs exec in
    let n = List.length bugs in
    if n > !known_bugs then begin
      (* attribute by dedup key, not list position: only bugs whose key is
         genuinely new belong to the current phase *)
      List.iter
        (fun bug ->
          let key = Bug.dedup_key bug in
          if not (Hashtbl.mem bug_phases key) then
            Hashtbl.replace bug_phases key current_ordinal)
        bugs;
      known_bugs := n
    end
  in
  note_progress 0;
  (* Algorithm 3 under supervision: round-robin with growing turn budgets.
     Executor/solver failures are contained and recorded; a faulting state
     costs at worst itself (quarantine after [max_strikes]) and a broken
     searcher costs its phase (fail-over), never the run. *)
  let faults = Executor.faults exec in
  let quarantine = Quarantine.create ~max_strikes:config.max_strikes in
  let pos = ref 0 in
  let rr_turn = ref 1 in
  let seq_rotation = ref 0 in
  while Vclock.now clock < deadline && Array.length !queues > 0 do
    let idx = if config.round_robin then !pos else 0 in
    let q = (!queues).(idx) in
    let turn = if config.round_robin then !rr_turn else !seq_rotation + 1 in
    let turn_budget = turn * config.time_period in
    let turn_start = Vclock.now clock in
    let queue_failed = ref false in
    let contain st exn =
      (* charge a tick so fault loops always advance toward the deadline *)
      Vclock.advance clock 1;
      Fault.record faults ~detail:(Printexc.to_string exn)
        ~vtime:(Vclock.now clock) Fault.Exec_exception;
      if Quarantine.strike quarantine st.State.id then q.searcher.Searcher.remove st
    in
    let rec drain () =
      if Vclock.now clock >= deadline then ()
      else
        match
          try `Selected (q.searcher.Searcher.select ())
          with exn -> `Searcher_error exn
        with
        | `Searcher_error exn ->
          (* a broken searcher forfeits its whole phase *)
          Vclock.advance clock 1;
          Fault.record faults ~detail:(Printexc.to_string exn)
            ~vtime:(Vclock.now clock) Fault.Exec_exception;
          queue_failed := true
        | `Selected None -> ()
        | `Selected (Some st) when st.State.needs_verify -> (
          match try `V (Executor.verify exec st) with exn -> `E exn with
          | `V Executor.Verified -> slice st
          | `V Executor.Infeasible_state ->
            (* lazily discovered infeasible seedState *)
            q.searcher.Searcher.remove st;
            drain ()
          | `V Executor.Undecided ->
            (* the solver gave up; the state stays schedulable and the
               next attempt escalates the query budget — unless it has
               struck out *)
            if Quarantine.strike quarantine st.State.id then
              q.searcher.Searcher.remove st;
            drain ()
          | `E exn ->
            contain st exn;
            drain ())
        | `Selected (Some st) -> slice st
    and slice st =
      match try `S (Executor.run_slice exec st) with exn -> `E exn with
      | `E exn ->
        contain st exn;
        drain ()
      | `S slice ->
        let covered_new = st.State.fresh_cover in
        (match slice with
         | Executor.Running -> ()
         | Executor.Forked children ->
           List.iter
             (fun (child : State.t) ->
               child.State.phase <- q.pid;
               q.searcher.Searcher.fork ~parent:st child)
             children
         | Executor.Finished _ -> q.searcher.Searcher.remove st);
        note_progress q.ordinal;
        (* stay in the phase while under budget or still covering new code *)
        if Vclock.now clock - turn_start <= turn_budget || covered_new then drain ()
    in
    drain ();
    let removed = !queue_failed || q.searcher.Searcher.size () = 0 in
    if removed then begin
      let n = Array.length !queues in
      queues :=
        Array.init (n - 1) (fun i ->
            if i < idx then (!queues).(i) else (!queues).(i + 1))
    end;
    if config.round_robin then begin
      (* on removal the next queue shifts into [idx], so [pos] stays put *)
      if not removed then incr pos;
      if !pos >= Array.length !queues then begin
        pos := 0;
        incr rr_turn
      end
    end
    else if removed then incr seq_rotation
  done;
  let bugs =
    List.map
      (fun bug ->
        let ordinal =
          match Hashtbl.find_opt bug_phases (Bug.dedup_key bug) with
          | Some o -> o
          | None -> 0
        in
        (bug, ordinal))
      (Executor.bugs exec)
  in
  {
    config;
    seed_size = Bytes.length seed;
    c_time;
    p_time;
    division;
    bbvs = concolic.Concolic.bbvs;
    trace = concolic.Concolic.trace;
    seed_state_count = List.length seed_states;
    interval_length;
    coverage_samples = List.rev !samples;
    bugs;
    executor = exec;
    faults;
    quarantined = Quarantine.evicted quarantine;
    strikes = Quarantine.total_strikes quarantine;
  }

type pool_report = {
  runs : (bytes * report) list;
  merged_coverage : int;
  merged_bugs : (Bug.t * int) list;
}

(* Algorithm 1's outer loop: pop seeds (smallest first, the paper's
   heuristic bias), giving each remaining seed an equal share of the
   remaining budget. Coverage is merged as a union of global block ids;
   bugs are deduplicated across runs on (location, kind). *)
let run_pool ?(config = default_config) prog ~seeds ~deadline =
  let ordered =
    List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
  in
  let merged = Hashtbl.create 1024 in
  let bug_keys = Hashtbl.create 32 in
  let runs = ref [] in
  let bugs = ref [] in
  let spent = ref 0 in
  let remaining_seeds = ref (List.length ordered) in
  List.iter
    (fun seed ->
      let budget = (deadline - !spent) / max 1 !remaining_seeds in
      decr remaining_seeds;
      if budget > 0 then begin
        let report = run ~config prog ~seed ~deadline:budget in
        spent := !spent + Vclock.now (Executor.clock report.executor);
        runs := (seed, report) :: !runs;
        List.iter
          (fun gid -> Hashtbl.replace merged gid ())
          (Coverage.covered_ids (Executor.coverage report.executor));
        List.iter
          (fun ((bug : Bug.t), phase) ->
            let key = Bug.dedup_key bug in
            if not (Hashtbl.mem bug_keys key) then begin
              Hashtbl.replace bug_keys key ();
              bugs := (bug, phase) :: !bugs
            end)
          report.bugs
      end)
    ordered;
  {
    runs = List.rev !runs;
    merged_coverage = Hashtbl.length merged;
    merged_bugs = List.rev !bugs;
  }

let select_seed seeds ~coverage_of =
  match seeds with
  | [] -> None
  | _ ->
    let by_size =
      List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
    in
    let smallest =
      List.filteri (fun i _ -> i < 10) by_size
    in
    let best =
      List.fold_left
        (fun acc seed ->
          let cov = coverage_of seed in
          match acc with
          | Some (_, best_cov) when best_cov >= cov -> acc
          | _ -> Some (seed, cov))
        None smallest
    in
    Option.map fst best
