module Executor = Pbse_exec.Executor
module Searcher = Pbse_exec.Searcher
module Coverage = Pbse_exec.Coverage
module State = Pbse_exec.State
module Bug = Pbse_exec.Bug
module Concolic = Pbse_concolic.Concolic
module Bbv = Pbse_concolic.Bbv
module Trace = Pbse_concolic.Trace
module Phase = Pbse_phase.Phase
module Phase_queue = Pbse_sched.Phase_queue
module Scheduler = Pbse_sched.Scheduler
module Seed_slot = Pbse_campaign.Seed_slot
module Pool_scheduler = Pbse_campaign.Pool_scheduler
module Campaign = Pbse_campaign.Campaign
module Snapshot = Pbse_campaign.Snapshot
module Domain_pool = Pbse_campaign.Domain_pool
module Vclock = Pbse_util.Vclock
module Rng = Pbse_util.Rng
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Quarantine = Pbse_robust.Quarantine
module Solver = Pbse_smt.Solver
module Expr = Pbse_smt.Expr
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report

(* --- configuration --------------------------------------------------------- *)

type concolic_config = {
  interval_length : int option; (* None: size from a concrete pre-run *)
  intervals_target : int; (* BBVs aimed for when auto-sizing *)
  time_period : int;
  mode : Phase.mode;
}

type search_config = {
  phase_searcher : string;
  scheduler : string;
  max_live : int;
  dedup_seed_states : bool;
  max_k : int;
}

type solver_config = {
  budget : int;
  retry_cap : int;
  prefix_cap : int;
}

type robust_config = {
  confirm_bugs : bool;
  max_strikes : int;
  inject : Inject.plan;
  watchdog_factor : int;
  watchdog_strikes : int;
  degrade_after : int;
}

type config = {
  concolic : concolic_config;
  search : search_config;
  solver : solver_config;
  robust : robust_config;
  rng_seed : int;
}

let default_config =
  {
    concolic =
      {
        interval_length = None;
        intervals_target = 120;
        time_period = 10_000;
        mode = Phase.Bbv_with_coverage;
      };
    search =
      {
        phase_searcher = "default";
        scheduler = "round-robin";
        max_live = 8192;
        dedup_seed_states = true;
        max_k = 20;
      };
    solver = { budget = 60_000; retry_cap = 480_000; prefix_cap = 16_384 };
    robust =
      {
        confirm_bugs = true;
        max_strikes = 4;
        inject = Inject.none;
        watchdog_factor = 4;
        watchdog_strikes = 3;
        degrade_after = 4;
      };
    rng_seed = 1;
  }

let with_concolic f config = { config with concolic = f config.concolic }
let with_search f config = { config with search = f config.search }
let with_solver f config = { config with solver = f config.solver }
let with_robust f config = { config with robust = f config.robust }
let with_rng_seed rng_seed config = { config with rng_seed }

(* Flat (key, value) rendering of a config, for campaign snapshots: a
   resumed process must rebuild the exact config or replay diverges. *)
let config_to_kvs config =
  [
    ( "concolic.interval_length",
      match config.concolic.interval_length with
      | Some l -> string_of_int l
      | None -> "auto" );
    ("concolic.intervals_target", string_of_int config.concolic.intervals_target);
    ("concolic.time_period", string_of_int config.concolic.time_period);
    ( "concolic.mode",
      match config.concolic.mode with
      | Phase.Bbv_only -> "bbv"
      | Phase.Bbv_with_coverage -> "bbv+cov" );
    ("search.phase_searcher", config.search.phase_searcher);
    ("search.scheduler", config.search.scheduler);
    ("search.max_live", string_of_int config.search.max_live);
    ("search.dedup_seed_states", if config.search.dedup_seed_states then "1" else "0");
    ("search.max_k", string_of_int config.search.max_k);
    ("solver.budget", string_of_int config.solver.budget);
    ("solver.retry_cap", string_of_int config.solver.retry_cap);
    ("solver.prefix_cap", string_of_int config.solver.prefix_cap);
    ("robust.confirm_bugs", if config.robust.confirm_bugs then "1" else "0");
    ("robust.max_strikes", string_of_int config.robust.max_strikes);
    ("robust.inject", Inject.to_string config.robust.inject);
    ("robust.watchdog_factor", string_of_int config.robust.watchdog_factor);
    ("robust.watchdog_strikes", string_of_int config.robust.watchdog_strikes);
    ("robust.degrade_after", string_of_int config.robust.degrade_after);
    ("rng_seed", string_of_int config.rng_seed);
  ]

let config_of_kvs kvs =
  (* keys that aren't config fields (snapshot meta like the target name
     or scheduler) pass through untouched; bad values are errors *)
  let int_field key v k =
    match int_of_string_opt v with
    | Some i -> Ok (k i)
    | None -> Error (Printf.sprintf "bad integer %S for %s" v key)
  in
  let bool_field key v k =
    match v with
    | "1" | "true" -> Ok (k true)
    | "0" | "false" -> Ok (k false)
    | _ -> Error (Printf.sprintf "bad flag %S for %s" v key)
  in
  List.fold_left
    (fun acc (key, v) ->
      Result.bind acc (fun config ->
          let concolic f = with_concolic f config in
          let search f = with_search f config in
          let solver f = with_solver f config in
          let robust f = with_robust f config in
          match key with
          | "concolic.interval_length" ->
            if v = "auto" then Ok (concolic (fun c -> { c with interval_length = None }))
            else
              int_field key v (fun i ->
                  concolic (fun c -> { c with interval_length = Some i }))
          | "concolic.intervals_target" ->
            int_field key v (fun i -> concolic (fun c -> { c with intervals_target = i }))
          | "concolic.time_period" ->
            int_field key v (fun i -> concolic (fun c -> { c with time_period = i }))
          | "concolic.mode" -> (
            match v with
            | "bbv" -> Ok (concolic (fun c -> { c with mode = Phase.Bbv_only }))
            | "bbv+cov" ->
              Ok (concolic (fun c -> { c with mode = Phase.Bbv_with_coverage }))
            | _ -> Error (Printf.sprintf "bad mode %S (want bbv|bbv+cov)" v))
          | "search.phase_searcher" ->
            Ok (search (fun s -> { s with phase_searcher = v }))
          | "search.scheduler" -> Ok (search (fun s -> { s with scheduler = v }))
          | "search.max_live" ->
            int_field key v (fun i -> search (fun s -> { s with max_live = i }))
          | "search.dedup_seed_states" ->
            bool_field key v (fun b -> search (fun s -> { s with dedup_seed_states = b }))
          | "search.max_k" ->
            int_field key v (fun i -> search (fun s -> { s with max_k = i }))
          | "solver.budget" ->
            int_field key v (fun i -> solver (fun s -> { s with budget = i }))
          | "solver.retry_cap" ->
            int_field key v (fun i -> solver (fun s -> { s with retry_cap = i }))
          | "solver.prefix_cap" ->
            int_field key v (fun i -> solver (fun s -> { s with prefix_cap = i }))
          | "robust.confirm_bugs" ->
            bool_field key v (fun b -> robust (fun r -> { r with confirm_bugs = b }))
          | "robust.max_strikes" ->
            int_field key v (fun i -> robust (fun r -> { r with max_strikes = i }))
          | "robust.inject" ->
            Result.map
              (fun plan -> robust (fun r -> { r with inject = plan }))
              (Inject.parse v)
          | "robust.watchdog_factor" ->
            int_field key v (fun i -> robust (fun r -> { r with watchdog_factor = i }))
          | "robust.watchdog_strikes" ->
            int_field key v (fun i -> robust (fun r -> { r with watchdog_strikes = i }))
          | "robust.degrade_after" ->
            int_field key v (fun i -> robust (fun r -> { r with degrade_after = i }))
          | "rng_seed" -> int_field key v (fun i -> with_rng_seed i config)
          | _ -> Ok config))
    (Ok default_config) kvs

let interval_length_for config prog ~seed =
  match config.concolic.interval_length with
  | Some l -> l
  | None ->
    let probe = Pbse_exec.Concrete.run prog ~input:seed ~fuel:20_000_000 in
    max 50 (probe.Pbse_exec.Concrete.steps / max 1 config.concolic.intervals_target)

type report = {
  config : config;
  seed_size : int;
  c_time : int;
  p_time : int;
  division : Phase.division;
  bbvs : Bbv.t list;
  trace : Trace.t;
  seed_state_count : int;
  interval_length : int;
  coverage_samples : (int * int) list;
  bugs : (Bug.t * int) list;
  executor : Executor.t;
  faults : Fault.log;
  quarantined : int;
  strikes : int;
  sched_stats : Scheduler.stats;
  phase_stats : Report.phase_row list; (* scheduling stats, ordinal order *)
  registry : Telemetry.Registry.t; (* the session's instruments *)
}

let coverage_at report t =
  let rec scan best = function
    | [] -> best
    | (vt, cov) :: rest -> if vt <= t then scan cov rest else best
  in
  scan 0 report.coverage_samples

let make_phase_searcher config rng exec =
  match Searcher.by_name config.search.phase_searcher with
  | Some make -> make (Rng.split rng) (Executor.cfg exec) (Executor.coverage exec)
  | None ->
    invalid_arg ("Driver: unknown phase searcher " ^ config.search.phase_searcher)

let make_scheduler config =
  match Scheduler.by_name config.search.scheduler with
  | Some make -> make
  | None -> invalid_arg ("Driver: unknown scheduler " ^ config.search.scheduler)

let map_seed_states config ~interval_length division bbvs
    (seed_states : Concolic.seed_state list) =
  (* phase id for each seedState via its fork interval *)
  let tagged =
    List.filter_map
      (fun (ss : Concolic.seed_state) ->
        let interval = ss.Concolic.fork_vtime / interval_length in
        match Phase.phase_of_interval division bbvs interval with
        | Some pid ->
          ss.Concolic.state.State.phase <- pid;
          Some ss
        | None -> None)
      seed_states
  in
  if not config.search.dedup_seed_states then tagged
  else begin
    (* keep the earliest seedState per (phase, fork location) *)
    let seen = Hashtbl.create 256 in
    List.filter
      (fun (ss : Concolic.seed_state) ->
        let key = (ss.Concolic.state.State.phase, ss.Concolic.fork_gid) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      tagged
  end

(* The shared engine loop: Algorithm 3 under supervision, generic over
   the scheduling policy. Which phase runs next, for how long, and when
   a phase leaves the rotation are all [sched]'s decisions; this loop
   only executes turns. Executor and solver failures inside a turn are
   contained and recorded; a faulting state costs at worst itself
   (quarantine after [max_strikes]) and a broken searcher costs its
   phase (fail-over via [evict]), never the run. *)
let schedule_phases ~registry ~clock ~deadline ~sched ~quarantine exec note_progress =
  let faults = Executor.faults exec in
  let now () = Vclock.now clock in
  let tm_turn = Telemetry.Registry.span registry "driver.turn" in
  let rec turns () =
    if Vclock.now clock >= deadline then ()
    else
      match sched.Scheduler.select () with
      | None -> ()
      | Some { Scheduler.queue = q; budget = turn_budget } ->
        let turn_start = Vclock.now clock in
        let cover_start = q.Phase_queue.new_cover in
        let searcher = q.Phase_queue.searcher in
        q.Phase_queue.turns <- q.Phase_queue.turns + 1;
        let queue_failed = ref false in
        let quarantine_strike st =
          if Quarantine.strike quarantine ~site:st.State.fork_gid st.State.id then begin
            q.Phase_queue.quarantined <- q.Phase_queue.quarantined + 1;
            searcher.Searcher.remove st
          end
        in
        let contain st exn =
          (* charge a tick so fault loops always advance toward the deadline *)
          Vclock.advance clock 1;
          Fault.record faults ~detail:(Fault.normalize_exn exn)
            ~vtime:(Vclock.now clock) Fault.Exec_exception;
          quarantine_strike st
        in
        let rec drain () =
          if Vclock.now clock >= deadline then ()
          else
            match
              try `Selected (searcher.Searcher.select ())
              with exn -> `Searcher_error exn
            with
            | `Searcher_error exn ->
              (* a broken searcher forfeits its whole phase *)
              Vclock.advance clock 1;
              Fault.record faults ~detail:(Fault.normalize_exn exn)
                ~vtime:(Vclock.now clock) Fault.Exec_exception;
              queue_failed := true
            | `Selected None -> ()
            | `Selected (Some st) when st.State.needs_verify -> (
              match try `V (Executor.verify exec st) with exn -> `E exn with
              | `V Executor.Verified -> slice st
              | `V Executor.Infeasible_state ->
                (* lazily discovered infeasible seedState *)
                searcher.Searcher.remove st;
                drain ()
              | `V Executor.Undecided ->
                (* the solver gave up; the state stays schedulable and the
                   next attempt escalates the query budget — unless it has
                   struck out *)
                quarantine_strike st;
                drain ()
              | `E exn ->
                contain st exn;
                drain ())
            | `Selected (Some st) -> slice st
        and slice st =
          match try `S (Executor.run_slice exec st) with exn -> `E exn with
          | `E exn ->
            contain st exn;
            drain ()
          | `S slice ->
            q.Phase_queue.slices <- q.Phase_queue.slices + 1;
            let covered_new = st.State.fresh_cover in
            if covered_new then q.Phase_queue.new_cover <- q.Phase_queue.new_cover + 1;
            (match slice with
             | Executor.Running -> ()
             | Executor.Forked children ->
               List.iter
                 (fun (child : State.t) ->
                   child.State.phase <- q.Phase_queue.pid;
                   searcher.Searcher.fork ~parent:st child)
                 children
             | Executor.Finished _ -> searcher.Searcher.remove st);
            note_progress q.Phase_queue.ordinal;
            (* stay in the phase while under budget or still covering new code *)
            if Vclock.now clock - turn_start <= turn_budget || covered_new then drain ()
        in
        Telemetry.with_span tm_turn ~now drain;
        let elapsed = Vclock.now clock - turn_start in
        q.Phase_queue.dwell <- q.Phase_queue.dwell + elapsed;
        Telemetry.observe q.Phase_queue.turn_dwell elapsed;
        if !queue_failed || Phase_queue.size q = 0 then
          sched.Scheduler.evict q ~failed:!queue_failed
        else
          sched.Scheduler.credit q
            ~elapsed:(Vclock.now clock - turn_start)
            ~new_cover:(q.Phase_queue.new_cover - cover_start);
        turns ()
  in
  turns ()

(* --- resumable sessions ---------------------------------------------------- *)

(* A session is one seed's engine with its setup (concolic pass, phase
   division, seeded queues) done and its scheduling state live, so the
   campaign layer can grant it turn-granular budget instead of one
   deadline: open once, step any number of times, finish into the same
   report [run] produces. *)
type session = {
  s_config : config;
  s_runtime : Runtime.t;
  s_seed : bytes;
  s_clock : Vclock.t;
  s_exec : Executor.t;
  s_sched : Scheduler.t;
  s_quarantine : Quarantine.t;
  s_evicted0 : int;
  s_strikes0 : int;
  s_c_time : int;
  s_p_time : int;
  s_division : Phase.division;
  s_bbvs : Bbv.t list;
  s_trace : Trace.t;
  s_seed_state_count : int;
  s_interval_length : int;
  s_queues : Phase_queue.t list;
  s_samples : (int * int) list ref;
  s_bug_phases : (int * string, int) Hashtbl.t;
  s_note_progress : int -> unit;
}

let open_session ?(config = default_config) ?quarantine ?runtime
    ?(reset_telemetry = true) prog ~seed ~deadline =
  (* validate the policy name before the expensive concolic step *)
  let scheduler_factory = make_scheduler config in
  (* a caller-supplied quarantine persists across runs: per-state strikes
     reset with the epoch, site records and totals carry over *)
  (match quarantine with Some q -> Quarantine.epoch q | None -> ());
  let rt =
    match runtime with
    | Some rt -> (
      match quarantine with
      | Some q -> { rt with Runtime.quarantine = q }
      | None -> rt)
    | None ->
      Runtime.create ~rng_seed:config.rng_seed ~inject:config.robust.inject
        ?quarantine ~max_strikes:config.robust.max_strikes
        ~prefix_cap:config.solver.prefix_cap ()
  in
  (* the session's expressions intern into its own arena from here on *)
  Runtime.activate rt;
  let registry = rt.Runtime.registry in
  (* instrumented runs snapshot the registry into their report, so start
     each run from zero; uninstrumented runs skip the reset too. A pool
     campaign resets once for the whole campaign instead
     ([reset_telemetry = false] here). *)
  if reset_telemetry && Telemetry.Registry.enabled registry then
    Telemetry.Registry.reset registry;
  let tm_concolic = Telemetry.Registry.span registry "driver.concolic" in
  let tm_phase_analysis = Telemetry.Registry.span registry "driver.phase_analysis" in
  let clock = Vclock.create () in
  let exec =
    Executor.create ~max_live:config.search.max_live ~solver_budget:config.solver.budget
      ~solver_retry_cap:config.solver.retry_cap
      ~solver_prefix_cap:config.solver.prefix_cap
      ~confirm_bugs:config.robust.confirm_bugs ~inject:rt.Runtime.inject ~registry
      ~clock prog ~input:seed
  in
  (* every stochastic choice below (k-means restarts, searcher splits)
     derives from the runtime's RNG, itself seeded from config.rng_seed *)
  let rng = rt.Runtime.rng in
  (* step 1: concolic execution. The BBV interval is sized from a cheap
     concrete pre-run so every seed yields a comparable number of BBVs
     (the paper gathers over wall-clock intervals; runs lasting longer
     simply produce more vectors). *)
  let interval_length = interval_length_for config prog ~seed in
  let indexer = Trace.indexer () in
  let now () = Vclock.now clock in
  let concolic =
    Telemetry.with_span tm_concolic ~now (fun () ->
        Concolic.run ~interval_length ~deadline exec indexer)
  in
  let c_time = concolic.Concolic.c_time in
  (* step 2: phase analysis; charge virtual time proportional to the work *)
  let p_start = Vclock.now clock in
  let division =
    Telemetry.with_span tm_phase_analysis ~now (fun () ->
        let d =
          Phase.divide ~registry ~mode:config.concolic.mode ~max_k:config.search.max_k
            (Rng.split rng) concolic.Concolic.bbvs
        in
        Vclock.advance clock
          (50 * List.length concolic.Concolic.bbvs * config.search.max_k / 20);
        d)
  in
  let p_time = Vclock.now clock - p_start + 1 in
  (match concolic.Concolic.bbvs with
   | [] ->
     Fault.record (Executor.faults exec) ~detail:"no BBVs; one-phase fallback"
       ~vtime:(Vclock.now clock) Fault.Degenerate_phase
   | _ :: _ -> ());
  (* step 3: map seedStates into phases. Feasibility is checked lazily,
     when a seedState is first scheduled — exactly the paper's "lazy pass
     through": the concolic step recorded fork points without exploring
     or deciding them. *)
  let seed_states =
    map_seed_states config ~interval_length division concolic.Concolic.bbvs
      concolic.Concolic.seed_states
  in
  (* build phase queues in first-appearance order *)
  let queue_list =
    List.mapi
      (fun i (p : Phase.phase) ->
        Phase_queue.create ~registry ~ordinal:(i + 1) ~pid:p.Phase.pid
          ~trap:p.Phase.trap
          (make_phase_searcher config rng exec))
      division.Phase.phases
  in
  List.iter
    (fun (ss : Concolic.seed_state) ->
      match
        List.find_opt
          (fun q -> q.Phase_queue.pid = ss.Concolic.state.State.phase)
          queue_list
      with
      | Some q -> Phase_queue.seed q ss.Concolic.state
      | None -> ())
    seed_states;
  let sched =
    scheduler_factory ~registry ~time_period:config.concolic.time_period
      (List.filter (fun q -> Phase_queue.size q > 0) queue_list)
  in
  Executor.set_live_counter exec (fun () ->
      List.fold_left
        (fun acc q -> acc + Phase_queue.size q)
        0
        (sched.Scheduler.remaining ()));
  (* bookkeeping for coverage samples and bug-to-phase attribution *)
  let samples = ref [ (Vclock.now clock, Coverage.count (Executor.coverage exec)) ] in
  let last_cov = ref (Coverage.count (Executor.coverage exec)) in
  let bug_phases : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
  let known_bugs = ref 0 in
  let note_progress current_ordinal =
    let cov = Coverage.count (Executor.coverage exec) in
    if cov <> !last_cov then begin
      last_cov := cov;
      samples := (Vclock.now clock, cov) :: !samples
    end;
    let bugs = Executor.bugs exec in
    let n = List.length bugs in
    if n > !known_bugs then begin
      (* attribute by dedup key, not list position: only bugs whose key is
         genuinely new belong to the current phase *)
      List.iter
        (fun bug ->
          let key = Bug.dedup_key bug in
          if not (Hashtbl.mem bug_phases key) then
            Hashtbl.replace bug_phases key current_ordinal)
        bugs;
      known_bugs := n
    end
  in
  note_progress 0;
  let quarantine = rt.Runtime.quarantine in
  {
    s_config = config;
    s_runtime = rt;
    s_seed = seed;
    s_clock = clock;
    s_exec = exec;
    s_sched = sched;
    s_quarantine = quarantine;
    s_evicted0 = Quarantine.evicted quarantine;
    s_strikes0 = Quarantine.total_strikes quarantine;
    s_c_time = c_time;
    s_p_time = p_time;
    s_division = division;
    s_bbvs = concolic.Concolic.bbvs;
    s_trace = concolic.Concolic.trace;
    s_seed_state_count = List.length seed_states;
    s_interval_length = interval_length;
    s_queues = queue_list;
    s_samples = samples;
    s_bug_phases = bug_phases;
    s_note_progress = note_progress;
  }

let step_session s ~deadline =
  (* step 4: phase-scheduled symbolic execution, up to [deadline] on the
     session's own clock; resumable — the scheduling policy keeps its
     rotation state between steps. Re-activate the session's arena: the
     campaign layer may step the same session from a different domain on
     every round. *)
  Runtime.activate s.s_runtime;
  schedule_phases ~registry:s.s_runtime.Runtime.registry ~clock:s.s_clock ~deadline
    ~sched:s.s_sched ~quarantine:s.s_quarantine s.s_exec s.s_note_progress

let session_runtime s = s.s_runtime

let session_time s = Vclock.now s.s_clock
let session_drained s = s.s_sched.Scheduler.drained ()
let session_executor s = s.s_exec

let session_bug_phase s bug =
  match Hashtbl.find_opt s.s_bug_phases (Bug.dedup_key bug) with
  | Some o -> o
  | None -> 0

let finish_session s =
  let bugs =
    List.map (fun bug -> (bug, session_bug_phase s bug)) (Executor.bugs s.s_exec)
  in
  {
    config = s.s_config;
    seed_size = Bytes.length s.s_seed;
    c_time = s.s_c_time;
    p_time = s.s_p_time;
    division = s.s_division;
    bbvs = s.s_bbvs;
    trace = s.s_trace;
    seed_state_count = s.s_seed_state_count;
    interval_length = s.s_interval_length;
    coverage_samples = List.rev !(s.s_samples);
    bugs;
    executor = s.s_exec;
    faults = Executor.faults s.s_exec;
    quarantined = Quarantine.evicted s.s_quarantine - s.s_evicted0;
    strikes = Quarantine.total_strikes s.s_quarantine - s.s_strikes0;
    sched_stats = s.s_sched.Scheduler.stats;
    phase_stats = List.map Phase_queue.stat_row s.s_queues;
    registry = s.s_runtime.Runtime.registry;
  }

let run ?(config = default_config) ?quarantine ?runtime prog ~seed ~deadline =
  let s = open_session ~config ?quarantine ?runtime prog ~seed ~deadline in
  step_session s ~deadline;
  finish_session s

(* --- run reports ---------------------------------------------------------- *)

(* The scalar metric families of a run report, harvested from the
   per-run stats structs — authoritative whether or not the registry was
   enabled. Construction order is fixed, so two identical seeded runs
   serialise byte-identically; the aggregate pool report sums these same
   families across runs. *)
let scalar_metrics report =
  let exec = report.executor in
  let sst = Solver.stats (Executor.solver exec) in
  let est = Executor.stats exec in
  let scs = report.sched_stats in
  let confirmed =
    List.length (List.filter (fun ((b : Bug.t), _) -> b.Bug.confirmed) report.bugs)
  in
  let trap_dwell =
    List.fold_left
      (fun acc (p : Report.phase_row) -> if p.Report.trap then acc + p.Report.dwell else acc)
      0 report.phase_stats
  in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 report.phase_stats in
  [
    ("seed.bytes", report.seed_size);
    ("run.c_time", report.c_time);
    ("run.p_time", report.p_time);
    ("run.interval_length", report.interval_length);
    ("run.seed_states", report.seed_state_count);
    ("phase.count", report.division.Phase.k);
    ("phase.traps", report.division.Phase.trap_count);
    ("phase.turns", sum (fun p -> p.Report.turns));
    ("phase.slices", sum (fun p -> p.Report.slices));
    ("phase.new_cover", sum (fun p -> p.Report.new_cover));
    ("phase.dwell", sum (fun p -> p.Report.dwell));
    ("phase.trap_dwell", trap_dwell);
    ("sched.turns", scs.Scheduler.turns);
    ("sched.rotations", scs.Scheduler.rotations);
    ("sched.evictions", scs.Scheduler.evictions);
    ("sched.failovers", scs.Scheduler.failovers);
    ("coverage.blocks", Coverage.count (Executor.coverage exec));
    ("bugs.total", List.length report.bugs);
    ("bugs.confirmed", confirmed);
    ("exec.states", Executor.state_count exec);
    ("exec.instructions", est.Executor.instructions);
    ("exec.slices", est.Executor.slices);
    ("exec.forks", est.Executor.forks);
    ("exec.dropped_forks", est.Executor.dropped_forks);
    ("exec.cow_copies", est.Executor.cow_copies);
    ("exec.term_exit", est.Executor.term_exit);
    ("exec.term_bug", est.Executor.term_bug);
    ("exec.term_abort", est.Executor.term_abort);
    ("exec.term_infeasible", est.Executor.term_infeasible);
    ("exec.concretized_addrs", est.Executor.concretized_addrs);
    ("verify.verified", est.Executor.verify_verified);
    ("verify.infeasible", est.Executor.verify_infeasible);
    ("verify.undecided", est.Executor.verify_undecided);
    ("solver.queries", sst.Solver.queries);
    ("solver.sat", sst.Solver.sat);
    ("solver.unsat", sst.Solver.unsat);
    ("solver.unknown", sst.Solver.unknown);
    ("solver.cache_hits", sst.Solver.cache_hits);
    ("solver.hint_hits", sst.Solver.hint_hits);
    ("solver.prefix_hits", sst.Solver.prefix_hits);
    ("solver.prefix_builds", sst.Solver.prefix_builds);
    ("solver.prefix_model_hits", sst.Solver.prefix_model_hits);
    ("solver.search_nodes", sst.Solver.search_nodes);
    ("solver.work", sst.Solver.work);
    ("solver.retries", sst.Solver.retries);
    ("solver.escalations", sst.Solver.escalations);
    ("solver.retry_resolved", sst.Solver.retry_resolved);
    ("solver.prefix_evictions", sst.Solver.prefix_evictions);
    ("quarantine.evicted", report.quarantined);
    ("quarantine.strikes", report.strikes);
  ]
  @ List.map
      (fun kind -> ("fault." ^ Fault.label kind, Fault.count report.faults kind))
      Fault.all

let span_metrics registry =
  List.concat_map
    (fun (name, count, total) ->
      [ ("span." ^ name ^ ".count", count); ("span." ^ name ^ ".total", total) ])
    (Telemetry.Registry.snapshot_spans registry)

(* Assemble the structured run report (docs/telemetry.md). The scalar
   metrics are authoritative whether or not the registry was enabled,
   while spans and histograms come from the registry snapshot and are
   only populated on instrumented runs. *)
let run_report ?(meta = []) report =
  {
    Report.meta;
    metrics = scalar_metrics report @ span_metrics report.registry;
    phases = report.phase_stats;
    seeds = [];
    histograms = Telemetry.Registry.snapshot_histograms report.registry;
  }

(* --- seed pools ------------------------------------------------------------ *)

type pool_report = {
  runs : (bytes * report) list;
  merged_coverage : int;
  merged_bugs : (Bug.t * int) list;
  pool_scheduler : string;
  seed_rows : Report.seed_row list;
  pool_stats : Pool_scheduler.stats;
  pool_deadline : int;
  pool_spent : int;
  pool_rounds : int;
  pool_parallel_turns : int;
  pool_merge_blocks : int;
  pool_merge_bugs : int;
  pool_merge_registries : int;
  pool_faults : Fault.log;
  pool_registry : Telemetry.Registry.t;
  (* Wall-clock-side diagnostics. These describe how the campaign
     happened to execute — which worker ran what, how often a domain
     refilled its id block — so they depend on [jobs] and scheduling
     luck. They are deliberately NOT part of the pool-report JSON, which
     is byte-identical across widths; the bench CSV and CLI surface
     them. *)
  pool_steal_count : int; (* turns run by a non-home pool worker *)
  pool_pinned_turns : int; (* turns run by their slot's home worker *)
  pool_id_refills : int; (* expr id-block refills during the campaign *)
}

type checkpoint = {
  ck_path : string;
  ck_every : int; (* turns between checkpoint writes *)
  ck_meta : (string * string) list;
  ck_halt_after : int option; (* stop at this round barrier (tests) *)
  ck_note_ms : (int -> unit) option; (* serialisation-cost probe (bench) *)
}

let checkpoint ?(meta = []) ?halt_after ?note_ms ~path ~every () =
  {
    ck_path = path;
    ck_every = max 1 every;
    ck_meta = meta;
    ck_halt_after = halt_after;
    ck_note_ms = note_ms;
  }

(* Worker-side record of one executed sub-turn. Everything a merge needs
   is captured at execution time: under a multi-turn lease the barrier
   merge runs after {e later} sub-turns have already advanced the
   session's clock and quarantine, so reading them at merge time would
   smear one sub-turn's dwell and strike deltas over its successors. *)
type turn_exec = {
  tx_start : int; (* session clock entering the sub-turn *)
  tx_stop : int; (* session clock leaving it *)
  tx_ev0 : int; (* quarantine evictions before / after *)
  tx_ev1 : int;
  tx_st0 : int; (* quarantine strikes before / after *)
  tx_st1 : int;
  tx_opened : bool; (* this sub-turn opened the session *)
  tx_status : [ `Stepped | `Failed | `Injected | `Entry_crash ];
}

(* Algorithm 1's outer loop over a seed pool, generalised into a
   campaign and run in deterministic rounds: the pool policy plans every
   round up front (one turn per live seed), the turns execute on up to
   [jobs] domains — each seed's session owns a private {!Runtime}
   (registry, RNG, quarantine, expression arena), so concurrent turns
   share no mutable state — and the results merge back at the round
   barrier in plan order. Coverage merges as a union of global block
   ids; bugs deduplicate on (location, kind) and are attributed to the
   seed whose turn first surfaced them; per-session registries merge
   into the pool registry in ordinal order when the campaign ends.
   Every observable outcome is therefore identical for every [jobs]
   value, including 1 (docs/parallelism.md).

   Crash durability (docs/robustness.md) rides on the same determinism:
   [checkpoint] serialises the campaign at round barriers — slot
   counters, each session's granted-turn ledger, merged-bug keys,
   scheduler state — and [resume] reinstates the counters then replays
   each ledger against the same seeds, reconstructing engine state the
   snapshot never stored. A clean kill-and-resume therefore yields a
   pool report byte-identical to the uninterrupted run. Watchdogged
   turns (spent > factor x budget), injected turn kills and contained
   turn exceptions all strike their seed toward forced retirement and
   step the effective [--jobs] and prefix cap down (graceful
   degradation) without ever aborting the campaign. *)
let run_pool ?(config = default_config) ?(scheduler = Pool_scheduler.default)
    ?runtime ?(jobs = 1) ?(lease = 1) ?checkpoint ?resume ?(preload_faults = [])
    prog ~seeds ~deadline =
  let factory =
    match Pool_scheduler.by_name scheduler with
    | Some f -> f
    | None -> invalid_arg ("Driver: unknown pool scheduler " ^ scheduler)
  in
  let lease = max 1 lease in
  (* Per-domain minor heaps below ~8 MB thrash the stop-the-world minor
     collection once several domains allocate at engine rates (every
     domain must reach the barrier for every collection); widen once,
     process-wide, and never shrink a user-tuned size. *)
  let g = Gc.get () in
  if g.Gc.minor_heap_size < 1 lsl 20 then
    Gc.set { g with Gc.minor_heap_size = 1 lsl 20 };
  (* One persistent worker pool for the whole campaign — replay and every
     round reuse its domains; sessions are homed on their slot ordinal. *)
  let pool = Domain_pool.create ~jobs in
  let id_refills0 = Expr.id_block_refills () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let pool_rt =
    match runtime with
    | Some rt -> rt
    | None ->
      Runtime.create ~rng_seed:config.rng_seed ~inject:config.robust.inject
        ~max_strikes:config.robust.max_strikes
        ~prefix_cap:config.solver.prefix_cap ()
  in
  let pool_registry = pool_rt.Runtime.registry in
  if Telemetry.Registry.enabled pool_registry then Telemetry.Registry.reset pool_registry;
  let tm_rounds = Telemetry.Registry.counter pool_registry "pool.rounds" in
  let tm_parallel_turns =
    Telemetry.Registry.counter pool_registry "pool.parallel_turns"
  in
  let tm_merge_blocks = Telemetry.Registry.counter pool_registry "pool.merge_blocks" in
  let tm_merge_bugs = Telemetry.Registry.counter pool_registry "pool.merge_bugs" in
  let tm_merge_registries =
    Telemetry.Registry.counter pool_registry "pool.merge_registries"
  in
  (* contention diagnostics (width-dependent; excluded from report JSON) *)
  let tm_steal_count = Telemetry.Registry.counter pool_registry "pool.steal_count" in
  let tm_pinned_turns = Telemetry.Registry.counter pool_registry "pool.pinned_turns" in
  let tm_id_refills = Telemetry.Registry.counter pool_registry "smt.id_block_refills" in
  let pool_faults = Fault.log_create ~registry:pool_registry () in
  let ordered =
    List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
  in
  let slots = List.mapi (fun i seed -> Seed_slot.create ~ordinal:(i + 1) seed) ordered in
  let nslots = List.length slots in
  let slot_arr = Array.of_list slots in
  let merged = Hashtbl.create 1024 in
  let bug_keys = Hashtbl.create 32 in
  let merged_bugs = ref [] in
  let bug_refs = ref [] in
  (* Sessions indexed by slot ordinal. A cell is written once, by the
     worker domain running its slot's first turn, and only ever touched
     by that slot's turns afterwards; distinct slots use distinct cells
     and [Domain_pool.map]'s join publishes the writes before the
     barrier reads them, so the array needs no lock. *)
  let sessions : (Runtime.t * session) option array = Array.make (nslots + 1) None in
  (* Turn-crash injection draws from a per-slot stream (plan seed +
     ordinal) so a draw's position never depends on which domain ran
     which turn; the snapshot-corruption channel draws once per
     checkpoint write, on the coordinating domain. *)
  let slot_plan ordinal =
    { config.robust.inject with Inject.seed = config.robust.inject.Inject.seed + ordinal }
  in
  let crash_injects = Array.init (nslots + 1) (fun i -> Inject.create (slot_plan i)) in
  let pool_inject = Inject.create config.robust.inject in
  (* Per-ordinal durability records: RNG draws to re-burn on resume, the
     granted-turn ledger (newest first) and the prefix cap each session
     opened under (-1 = unbounded). *)
  let crash_draws = Array.make (nslots + 1) 0 in
  let turn_events : Snapshot.turn_event list array = Array.make (nslots + 1) [] in
  let opened_caps = Array.make (nslots + 1) (-1) in
  let opened = ref [] in
  let rounds = ref 0 in
  let parallel_turns = ref 0 in
  let merge_blocks = ref 0 in
  let merge_bug_count = ref 0 in
  let merge_registries = ref 0 in
  let base_spent = ref 0 in
  let spent_acc = ref 0 in
  let turns_since_ck = ref 0 in
  let checkpoints_written = ref 0 in
  let degrade_faults = ref 0 in
  (* Graceful degradation: every watchdog strike, crashed turn or
     pool-level fault widens [degrade_faults]; each [degrade_after]
     faults halve the domain-pool width and the solver prefix cap.
     Neither knob is visible to plans or merges, so reports are
     unaffected. *)
  let degrade_steps () =
    if config.robust.degrade_after <= 0 then 0
    else !degrade_faults / config.robust.degrade_after
  in
  let eff_jobs () = max 1 (jobs asr degrade_steps ()) in
  let eff_prefix_cap () =
    match pool_rt.Runtime.prefix_cap with
    | None -> None
    | Some cap -> Some (max 16 (cap asr degrade_steps ()))
  in
  let watchdog_overran ~budget ~spent =
    config.robust.watchdog_factor > 0 && spent > config.robust.watchdog_factor * budget
  in
  (* Contain a real exception escaping the engine: the engine is
     deterministic in virtual time, so replaying the same turn after a
     resume re-raises and re-contains the same fault. *)
  let step_contained s ~deadline =
    try
      step_session s ~deadline;
      `Stepped
    with exn ->
      Fault.record (Executor.faults s.s_exec) ~detail:(Fault.normalize_exn exn)
        ~vtime:(Vclock.now s.s_clock) Fault.Exec_exception;
      `Failed
  in
  (* The watchdog fires at the merge barrier (and identically during
     resume replay): a turn that ran past factor x budget records a
     session-level fault and strikes its seed. *)
  let watchdog_check s ~start ~budget =
    let spent = Vclock.now s.s_clock - start in
    if watchdog_overran ~budget ~spent then begin
      Fault.record (Executor.faults s.s_exec) ~detail:"turn-timeout"
        ~vtime:(Vclock.now s.s_clock) Fault.Turn_timeout;
      true
    end
    else false
  in
  let replay_crash s detail =
    (* an injected kill charged one tick and touched nothing else *)
    Vclock.advance s.s_clock 1;
    Fault.record (Executor.faults s.s_exec) ~detail ~vtime:(Vclock.now s.s_clock)
      Fault.Exec_exception
  in
  let derive_session_rt ~prefix_cap =
    let registry =
      Telemetry.Registry.create ~enabled:(Telemetry.Registry.enabled pool_registry) ()
    in
    match prefix_cap with
    | Some cap -> Runtime.derive ~registry ~rng_seed:config.rng_seed ~prefix_cap:cap pool_rt
    | None -> Runtime.derive ~registry ~rng_seed:config.rng_seed pool_rt
  in
  (* Re-execute one opened session's ledger from scratch: open under the
     recorded prefix cap, then grant exactly the recorded turns. Runs on
     a worker domain (the session is slot-private). *)
  let replay_slot (slot : Seed_slot.t) (st : Snapshot.slot_state) =
    match st.Snapshot.sl_events with
    | [] -> None
    | Snapshot.Crash _ :: _ -> None (* the opening turn is always a Step *)
    | Snapshot.Step { deadline = first_deadline; budget = first_budget } :: rest ->
      let prefix_cap = if st.Snapshot.sl_prefix_cap >= 0 then Some st.Snapshot.sl_prefix_cap else None in
      let rt = derive_session_rt ~prefix_cap in
      let s =
        open_session ~config ~runtime:rt ~reset_telemetry:false prog
          ~seed:slot.Seed_slot.seed ~deadline:first_deadline
      in
      ignore (step_contained s ~deadline:first_deadline);
      ignore (watchdog_check s ~start:0 ~budget:first_budget);
      List.iter
        (fun ev ->
          match ev with
          | Snapshot.Crash detail -> replay_crash s detail
          | Snapshot.Step { deadline; budget } ->
            let start = Vclock.now s.s_clock in
            ignore (step_contained s ~deadline);
            ignore (watchdog_check s ~start ~budget))
        rest;
      Some (rt, s)
  in
  (* --- resume: reinstate the snapshot, then replay the ledgers ------- *)
  let apply_resume (sn : Snapshot.t) fallback =
    let compatible =
      List.length sn.Snapshot.sn_slots = nslots
      && List.for_all2
           (fun (st : Snapshot.slot_state) (slot : Seed_slot.t) ->
             st.Snapshot.sl_ordinal = slot.Seed_slot.ordinal
             && st.Snapshot.sl_bytes = slot.Seed_slot.size)
           sn.Snapshot.sn_slots slots
    in
    if not compatible then begin
      (* the snapshot describes a different pool: degrade to a fresh
         start with the mismatch on record, never a crash *)
      Fault.record pool_faults ~detail:"pool-shape" ~vtime:0 Fault.Resume_mismatch;
      incr degrade_faults
    end
    else begin
      Fault.restore_counts pool_faults sn.Snapshot.sn_pool_faults;
      Telemetry.Registry.restore_counters pool_registry sn.Snapshot.sn_counters;
      base_spent := sn.Snapshot.sn_spent;
      spent_acc := sn.Snapshot.sn_spent;
      rounds := sn.Snapshot.sn_rounds;
      parallel_turns := sn.Snapshot.sn_parallel_turns;
      merge_blocks := sn.Snapshot.sn_merge_blocks;
      merge_bug_count := sn.Snapshot.sn_merge_bugs;
      checkpoints_written := sn.Snapshot.sn_checkpoints;
      degrade_faults := sn.Snapshot.sn_degrade_faults;
      (match fallback with
       | Some detail ->
         (* the primary checkpoint was bad; we are running from [.bak] *)
         Fault.record pool_faults ~detail ~vtime:sn.Snapshot.sn_spent
           Fault.Snapshot_corrupt;
         incr degrade_faults
       | None -> ());
      (* reposition the injection streams where the original left them *)
      for _ = 1 to sn.Snapshot.sn_checkpoints do
        ignore (Inject.fire_snapshot_corrupt pool_inject)
      done;
      List.iter2
        (fun (st : Snapshot.slot_state) (slot : Seed_slot.t) ->
          let ordinal = slot.Seed_slot.ordinal in
          slot.Seed_slot.turns <- st.Snapshot.sl_turns;
          slot.Seed_slot.granted <- st.Snapshot.sl_granted;
          slot.Seed_slot.dwell <- st.Snapshot.sl_dwell;
          slot.Seed_slot.new_blocks <- st.Snapshot.sl_new_blocks;
          slot.Seed_slot.bugs <- st.Snapshot.sl_bugs;
          slot.Seed_slot.quarantined <- st.Snapshot.sl_quarantined;
          slot.Seed_slot.strikes <- st.Snapshot.sl_strikes;
          slot.Seed_slot.timeouts <- st.Snapshot.sl_timeouts;
          slot.Seed_slot.retired <- st.Snapshot.sl_retired;
          opened_caps.(ordinal) <- st.Snapshot.sl_prefix_cap;
          crash_draws.(ordinal) <- st.Snapshot.sl_crash_draws;
          turn_events.(ordinal) <- List.rev st.Snapshot.sl_events;
          for _ = 1 to st.Snapshot.sl_crash_draws do
            ignore (Inject.fire_turn_crash crash_injects.(ordinal))
          done)
        sn.Snapshot.sn_slots slots;
      let by_ordinal = Array.make (nslots + 1) None in
      List.iter
        (fun (st : Snapshot.slot_state) -> by_ordinal.(st.Snapshot.sl_ordinal) <- Some st)
        sn.Snapshot.sn_slots;
      (* replay opened sessions concurrently, like the turns they rerun —
         homed on their ordinal so each lands on its campaign-long home
         domain straight away *)
      let replayed =
        Domain_pool.run pool ~jobs:(eff_jobs ())
          ~home:(fun ordinal -> ordinal - 1)
          (fun ordinal ->
            match by_ordinal.(ordinal) with
            | Some st when ordinal >= 1 && ordinal <= nslots ->
              (ordinal, replay_slot slot_arr.(ordinal - 1) st)
            | _ -> (ordinal, None))
          sn.Snapshot.sn_opened
      in
      List.iter
        (fun (ordinal, result) ->
          match result with
          | None ->
            Fault.record pool_faults ~detail:"missing-session" ~vtime:!base_spent
              Fault.Resume_mismatch;
            incr degrade_faults
          | Some (rt, s) ->
            sessions.(ordinal) <- Some (rt, s);
            opened := slot_arr.(ordinal - 1) :: !opened;
            (* the replayed engine must land exactly where the snapshot
               recorded it; divergence is survivable but on record *)
            let st = Option.get by_ordinal.(ordinal) in
            if Vclock.now s.s_clock <> st.Snapshot.sl_clock then begin
              Fault.record pool_faults ~detail:"clock" ~vtime:!base_spent
                Fault.Resume_mismatch;
              incr degrade_faults
            end;
            if Coverage.count (Executor.coverage s.s_exec) <> st.Snapshot.sl_coverage
            then begin
              Fault.record pool_faults ~detail:"coverage" ~vtime:!base_spent
                Fault.Resume_mismatch;
              incr degrade_faults
            end)
        replayed;
      (* the merged coverage set is the union over the replayed sessions
         (membership is order-insensitive; the fresh-block counters were
         restored above, so later merges count against the same set) *)
      List.iter
        (fun (ordinal, _) ->
          match sessions.(ordinal) with
          | Some (_, s) ->
            List.iter
              (fun gid -> Hashtbl.replace merged gid ())
              (Coverage.covered_ids (Executor.coverage s.s_exec))
          | None -> ())
        replayed;
      (* merged bugs, reattached in recorded harvest order *)
      List.iter
        (fun (br : Snapshot.bug_ref) ->
          let key = (br.Snapshot.br_gid, br.Snapshot.br_kind) in
          Hashtbl.replace bug_keys key ();
          bug_refs := (br.Snapshot.br_slot, br.Snapshot.br_gid, br.Snapshot.br_kind) :: !bug_refs;
          let reattached =
            match sessions.(br.Snapshot.br_slot) with
            | Some (_, s) -> (
              match
                List.find_opt
                  (fun b -> Bug.dedup_key b = key)
                  (Executor.bugs s.s_exec)
              with
              | Some bug ->
                merged_bugs := (bug, session_bug_phase s bug) :: !merged_bugs;
                true
              | None -> false)
            | None -> false
          in
          if not reattached then begin
            Fault.record pool_faults ~detail:"bug" ~vtime:!base_spent
              Fault.Resume_mismatch;
            incr degrade_faults
          end)
        sn.Snapshot.sn_bugs
    end
  in
  (match resume with Some (sn, fallback) -> apply_resume sn fallback | None -> ());
  List.iter
    (fun (kind, detail) ->
      Fault.record pool_faults ~detail ~vtime:0 kind;
      incr degrade_faults)
    preload_faults;
  let merge_coverage session =
    let fresh =
      List.fold_left
        (fun fresh gid ->
          if Hashtbl.mem merged gid then fresh
          else begin
            Hashtbl.replace merged gid ();
            fresh + 1
          end)
        0
        (Coverage.covered_ids (Executor.coverage session.s_exec))
    in
    merge_blocks := !merge_blocks + fresh;
    Telemetry.add tm_merge_blocks fresh;
    fresh
  in
  let harvest_bugs (slot : Seed_slot.t) session =
    List.iter
      (fun bug ->
        let ((gid, bkind) as key) = Bug.dedup_key bug in
        if not (Hashtbl.mem bug_keys key) then begin
          Hashtbl.replace bug_keys key ();
          slot.Seed_slot.bugs <- slot.Seed_slot.bugs + 1;
          incr merge_bug_count;
          Telemetry.incr tm_merge_bugs;
          merged_bugs := (bug, session_bug_phase session bug) :: !merged_bugs;
          bug_refs := (slot.Seed_slot.ordinal, gid, bkind) :: !bug_refs
        end)
      (Executor.bugs session.s_exec)
  in
  (* The worker half of a turn: everything here touches only the slot's
     own session, its private runtime and its own cells of the
     per-ordinal arrays, so it is safe on any domain. *)
  let exec_turn (slot : Seed_slot.t) ~budget =
    let ordinal = slot.Seed_slot.ordinal in
    crash_draws.(ordinal) <- crash_draws.(ordinal) + 1;
    let crashed = Inject.fire_turn_crash crash_injects.(ordinal) in
    match sessions.(ordinal) with
    | Some (rt, s) ->
      let start = Vclock.now s.s_clock in
      let ev0 = Quarantine.evicted rt.Runtime.quarantine in
      let st0 = Quarantine.total_strikes rt.Runtime.quarantine in
      let status =
        if crashed then begin
          replay_crash s "injected-crash";
          `Injected
        end
        else step_contained s ~deadline:(start + budget)
      in
      {
        tx_start = start;
        tx_stop = Vclock.now s.s_clock;
        tx_ev0 = ev0;
        tx_ev1 = Quarantine.evicted rt.Runtime.quarantine;
        tx_st0 = st0;
        tx_st1 = Quarantine.total_strikes rt.Runtime.quarantine;
        tx_opened = false;
        tx_status = status;
      }
    | None ->
      if crashed then
        (* killed before the session ever opened: nothing to ledger *)
        { tx_start = 0; tx_stop = 0; tx_ev0 = 0; tx_ev1 = 0; tx_st0 = 0;
          tx_st1 = 0; tx_opened = false; tx_status = `Entry_crash }
      else begin
        (* first turn: the session's setup (concolic pass, phase
           division, seeding) is charged against this turn's budget. The
           session's runtime is private — fresh registry, RNG reseeded
           from the config so every seed's run is reproducible in
           isolation, fresh quarantine, fresh arena — and its prefix cap
           is the pool's current (possibly degraded) one, recorded for
           replay. *)
        let cap = eff_prefix_cap () in
        opened_caps.(ordinal) <- (match cap with Some c -> c | None -> -1);
        let rt = derive_session_rt ~prefix_cap:cap in
        let s =
          open_session ~config ~runtime:rt ~reset_telemetry:false prog
            ~seed:slot.Seed_slot.seed ~deadline:budget
        in
        sessions.(ordinal) <- Some (rt, s);
        let status = step_contained s ~deadline:budget in
        {
          tx_start = 0;
          tx_stop = Vclock.now s.s_clock;
          tx_ev0 = 0;
          tx_ev1 = Quarantine.evicted rt.Runtime.quarantine;
          tx_st0 = 0;
          tx_st1 = Quarantine.total_strikes rt.Runtime.quarantine;
          tx_opened = true;
          tx_status = status;
        }
      end
  in
  (* The barrier half: runs on the coordinating domain, in plan order,
     after every turn of the round has been joined. Works only from the
     [turn_exec] capture — by merge time, later sub-turns of the same
     lease have already advanced the session. *)
  let merge_turn (slot : Seed_slot.t) ~budget tx =
    let ordinal = slot.Seed_slot.ordinal in
    incr turns_since_ck;
    match tx.tx_status with
    | `Entry_crash ->
      (* charge one tick (a zero-spent turn would silently retire the
         seed; this way it retries opening next round) and record the
         kill at pool level — there is no session to carry the fault *)
      spent_acc := !spent_acc + 1;
      Fault.record pool_faults ~detail:"injected-crash" ~vtime:!spent_acc
        Fault.Exec_exception;
      slot.Seed_slot.timeouts <- slot.Seed_slot.timeouts + 1;
      incr degrade_faults;
      let force_retire =
        config.robust.watchdog_strikes > 0
        && slot.Seed_slot.timeouts >= config.robust.watchdog_strikes
      in
      { Campaign.spent = 1; new_blocks = 0; finished = force_retire }
    | (`Stepped | `Failed | `Injected) as status ->
      let _rt, session =
        match sessions.(ordinal) with Some pair -> pair | None -> assert false
      in
      if tx.tx_opened then opened := slot :: !opened;
      let spent = tx.tx_stop - tx.tx_start in
      (* ledger the turn for resume replay: injected kills replay as a
         tick, everything else (including real contained crashes, which
         are deterministic) replays as a normal step *)
      let event =
        match status with
        | `Injected -> Snapshot.Crash "injected-crash"
        | `Stepped | `Failed ->
          Snapshot.Step { deadline = tx.tx_start + budget; budget }
      in
      turn_events.(ordinal) <- event :: turn_events.(ordinal);
      slot.Seed_slot.quarantined <-
        slot.Seed_slot.quarantined + (tx.tx_ev1 - tx.tx_ev0);
      slot.Seed_slot.strikes <- slot.Seed_slot.strikes + (tx.tx_st1 - tx.tx_st0);
      harvest_bugs slot session;
      let fresh = merge_coverage session in
      let overran =
        match status with
        | `Injected -> false
        | `Stepped | `Failed ->
          (* same decision — and the same session fault — the replay's
             [watchdog_check] reaches right after re-running this step *)
          if watchdog_overran ~budget ~spent then begin
            Fault.record (Executor.faults session.s_exec) ~detail:"turn-timeout"
              ~vtime:tx.tx_stop Fault.Turn_timeout;
            true
          end
          else false
      in
      let struck = overran || status <> `Stepped in
      if struck then begin
        slot.Seed_slot.timeouts <- slot.Seed_slot.timeouts + 1;
        incr degrade_faults
      end;
      spent_acc := !spent_acc + spent;
      let force_retire =
        config.robust.watchdog_strikes > 0
        && slot.Seed_slot.timeouts >= config.robust.watchdog_strikes
      in
      {
        Campaign.spent;
        new_blocks = fresh;
        finished = session_drained session || force_retire;
      }
  in
  let on_round n =
    incr rounds;
    Telemetry.incr tm_rounds;
    if n >= 2 then begin
      parallel_turns := !parallel_turns + n;
      Telemetry.add tm_parallel_turns n
    end
  in
  let sched =
    factory ~registry:pool_registry ~time_period:config.concolic.time_period
      (List.filter (fun (sl : Seed_slot.t) -> not sl.Seed_slot.retired) slots)
  in
  (match resume with
   | Some (sn, _) ->
     sched.Pool_scheduler.stats.Pool_scheduler.turns <- sn.Snapshot.sn_sched_turns;
     sched.Pool_scheduler.stats.Pool_scheduler.rotations <- sn.Snapshot.sn_sched_rotations;
     sched.Pool_scheduler.stats.Pool_scheduler.retirements <-
       sn.Snapshot.sn_sched_retirements;
     sched.Pool_scheduler.restore_state sn.Snapshot.sn_sched_state
   | None -> ());
  let slot_state (slot : Seed_slot.t) =
    let ordinal = slot.Seed_slot.ordinal in
    let clock, coverage =
      match sessions.(ordinal) with
      | Some (_, s) ->
        (Vclock.now s.s_clock, Coverage.count (Executor.coverage s.s_exec))
      | None -> (0, 0)
    in
    {
      Snapshot.sl_ordinal = ordinal;
      sl_bytes = slot.Seed_slot.size;
      sl_turns = slot.Seed_slot.turns;
      sl_granted = slot.Seed_slot.granted;
      sl_dwell = slot.Seed_slot.dwell;
      sl_new_blocks = slot.Seed_slot.new_blocks;
      sl_bugs = slot.Seed_slot.bugs;
      sl_quarantined = slot.Seed_slot.quarantined;
      sl_strikes = slot.Seed_slot.strikes;
      sl_timeouts = slot.Seed_slot.timeouts;
      sl_retired = slot.Seed_slot.retired;
      sl_clock = clock;
      sl_coverage = coverage;
      sl_prefix_cap = opened_caps.(ordinal);
      sl_crash_draws = crash_draws.(ordinal);
      sl_events = List.rev turn_events.(ordinal);
    }
  in
  let write_checkpoint ck =
    let t0 = Sys.time () in
    let sn =
      {
        Snapshot.sn_meta =
          ck.ck_meta
          @ [
              ("scheduler", scheduler);
              ("jobs", string_of_int jobs);
              ("lease", string_of_int lease);
              ("deadline", string_of_int deadline);
              ( "telemetry",
                if Telemetry.Registry.enabled pool_registry then "1" else "0" );
            ]
          @ config_to_kvs config;
        sn_deadline = deadline;
        sn_spent = !spent_acc;
        sn_rounds = !rounds;
        sn_parallel_turns = !parallel_turns;
        sn_merge_blocks = !merge_blocks;
        sn_merge_bugs = !merge_bug_count;
        (* count this write too: resume burns one snapshot-channel draw
           per write, including the one just below *)
        sn_checkpoints = !checkpoints_written + 1;
        sn_degrade_faults = !degrade_faults;
        sn_sched_turns = sched.Pool_scheduler.stats.Pool_scheduler.turns;
        sn_sched_rotations = sched.Pool_scheduler.stats.Pool_scheduler.rotations;
        sn_sched_retirements = sched.Pool_scheduler.stats.Pool_scheduler.retirements;
        sn_sched_state = sched.Pool_scheduler.state ();
        sn_pool_faults =
          List.map (fun k -> (Fault.label k, Fault.count pool_faults k)) Fault.all;
        sn_opened =
          List.rev_map (fun (sl : Seed_slot.t) -> sl.Seed_slot.ordinal) !opened;
        sn_counters = Telemetry.Registry.snapshot_counters pool_registry;
        sn_slots = List.map slot_state slots;
        sn_bugs =
          List.rev_map
            (fun (ordinal, gid, kind) ->
              { Snapshot.br_slot = ordinal; br_gid = gid; br_kind = kind })
            !bug_refs;
      }
    in
    let doc = Snapshot.to_string sn in
    let doc =
      if Inject.fire_snapshot_corrupt pool_inject then begin
        (* flip one byte mid-document; the checksum catches it on load *)
        let b = Bytes.of_string doc in
        Bytes.set b (Bytes.length b / 2) '#';
        Bytes.to_string b
      end
      else doc
    in
    Snapshot.save_string ~path:ck.ck_path doc;
    incr checkpoints_written;
    turns_since_ck := 0;
    match ck.ck_note_ms with
    | Some note -> note (int_of_float ((Sys.time () -. t0) *. 1000.0))
    | None -> ()
  in
  let after_round () =
    match checkpoint with
    | None -> true
    | Some ck ->
      let halt =
        match ck.ck_halt_after with Some n -> !rounds >= n | None -> false
      in
      if halt || !turns_since_ck >= ck.ck_every then write_checkpoint ck;
      not halt
  in
  let spent =
    Campaign.run_rounds ~on_round ~after_round ~lease ~pool ~sched
      ~deadline:(deadline - !base_spent) ~jobs:eff_jobs ~run:exec_turn
      ~merge:merge_turn ()
  in
  List.iter
    (fun (slot : Seed_slot.t) ->
      match sessions.(slot.Seed_slot.ordinal) with
      | Some (rt, s) ->
        slot.Seed_slot.faults <- Fault.total (Executor.faults s.s_exec);
        (* fold the session's instruments into the pool registry, in
           ordinal order — the aggregate report covers the campaign *)
        Telemetry.Registry.merge_into ~into:pool_registry rt.Runtime.registry;
        incr merge_registries;
        Telemetry.incr tm_merge_registries
      | None -> ())
    slots;
  let runs =
    List.rev_map
      (fun (slot : Seed_slot.t) ->
        match sessions.(slot.Seed_slot.ordinal) with
        | Some (_, s) -> (slot.Seed_slot.seed, finish_session s)
        | None -> assert false)
      !opened
  in
  let steal_count = Domain_pool.steals pool in
  let pinned_turns = Domain_pool.pinned pool in
  let id_refills = Expr.id_block_refills () - id_refills0 in
  Telemetry.add tm_steal_count steal_count;
  Telemetry.add tm_pinned_turns pinned_turns;
  Telemetry.add tm_id_refills id_refills;
  {
    runs;
    merged_coverage = Hashtbl.length merged;
    merged_bugs = List.rev !merged_bugs;
    pool_scheduler = sched.Pool_scheduler.name;
    seed_rows = List.map Seed_slot.stat_row slots;
    pool_stats = sched.Pool_scheduler.stats;
    pool_deadline = deadline;
    pool_spent = !base_spent + spent;
    pool_rounds = !rounds;
    pool_parallel_turns = !parallel_turns;
    pool_merge_blocks = !merge_blocks;
    pool_merge_bugs = !merge_bug_count;
    pool_merge_registries = !merge_registries;
    pool_faults;
    pool_registry;
    pool_steal_count = steal_count;
    pool_pinned_turns = pinned_turns;
    pool_id_refills = id_refills;
  }

(* Aggregate pool report: pool-level metrics first (merged coverage and
   deduplicated bugs replace the per-run values, which would double
   count), then the element-wise sum of every per-run scalar family,
   plus the per-seed rows. Span and histogram sections snapshot the
   registry, which a pool campaign resets once at the start — they cover
   the whole campaign on instrumented runs. *)
let pool_run_report ?(meta = []) pool =
  let reports = List.map snd pool.runs in
  let summed =
    match List.map scalar_metrics reports with
    | [] -> []
    | first :: rest ->
      List.fold_left
        (fun acc m -> List.map2 (fun (k, a) (_, b) -> (k, a + b)) acc m)
        first rest
  in
  (* merged values replace their summed counterparts; per-run interval
     lengths don't aggregate meaningfully *)
  let dropped =
    [ "coverage.blocks"; "bugs.total"; "bugs.confirmed"; "run.interval_length" ]
  in
  let summed = List.filter (fun (k, _) -> not (List.mem k dropped)) summed in
  let confirmed =
    List.length
      (List.filter (fun ((b : Bug.t), _) -> b.Bug.confirmed) pool.merged_bugs)
  in
  let st = pool.pool_stats in
  let metrics =
    [
      ("pool.seeds", List.length pool.seed_rows);
      ("pool.runs", List.length pool.runs);
      ("pool.turns", st.Pool_scheduler.turns);
      ("pool.rotations", st.Pool_scheduler.rotations);
      ("pool.retirements", st.Pool_scheduler.retirements);
      ("pool.deadline", pool.pool_deadline);
      ("pool.spent", pool.pool_spent);
      ("pool.rounds", pool.pool_rounds);
      ("pool.parallel_turns", pool.pool_parallel_turns);
      ("pool.merge_blocks", pool.pool_merge_blocks);
      ("pool.merge_bugs", pool.pool_merge_bugs);
      ("pool.merge_registries", pool.pool_merge_registries);
      ("coverage.blocks", pool.merged_coverage);
      ("bugs.total", List.length pool.merged_bugs);
      ("bugs.confirmed", confirmed);
    ]
    @ List.map
        (fun kind -> ("pool.fault." ^ Fault.label kind, Fault.count pool.pool_faults kind))
        Fault.all
    @ summed
    @ span_metrics pool.pool_registry
  in
  {
    Report.meta = ("pool_scheduler", pool.pool_scheduler) :: meta;
    metrics;
    phases = [];
    seeds = pool.seed_rows;
    histograms = Telemetry.Registry.snapshot_histograms pool.pool_registry;
  }

(* --- crash recovery -------------------------------------------------------- *)

(* Load a checkpoint with graceful degradation: a corrupt or
   version-mismatched primary falls back to the [.bak] rotation (the
   last good checkpoint), reporting the primary's failure so the resumed
   campaign can put it on the fault record. *)
let load_snapshot ~path =
  match Snapshot.load ~path with
  | Ok sn -> Ok (sn, None)
  | Error primary -> (
    let bak = path ^ ".bak" in
    let primary_msg = Snapshot.error_message primary in
    if Sys.file_exists bak then
      match Snapshot.load ~path:bak with
      | Ok sn -> Ok (sn, Some primary_msg)
      | Error fb ->
        Error
          (Printf.sprintf "%s; fallback %s: %s" primary_msg bak
             (Snapshot.error_message fb))
    else Error primary_msg)

let resume_pool ?jobs ?lease ?checkpoint ?fallback snapshot prog ~seeds =
  let meta = snapshot.Snapshot.sn_meta in
  match config_of_kvs meta with
  | Error e -> Error ("snapshot config: " ^ e)
  | Ok config -> (
    let scheduler =
      match List.assoc_opt "scheduler" meta with
      | Some s -> s
      | None -> Pool_scheduler.default
    in
    match Pool_scheduler.by_name scheduler with
    | None -> Error (Printf.sprintf "snapshot names unknown pool scheduler %S" scheduler)
    | Some _ ->
      let jobs =
        match jobs with
        | Some j -> j
        | None -> (
          match Option.bind (List.assoc_opt "jobs" meta) int_of_string_opt with
          | Some j -> j
          | None -> 1)
      in
      (* a snapshot written under multi-turn leases must resume under the
         same lease, or the remaining rounds would re-plan with different
         work units and diverge from the uninterrupted run *)
      let lease =
        match lease with
        | Some l -> l
        | None -> (
          match Option.bind (List.assoc_opt "lease" meta) int_of_string_opt with
          | Some l -> l
          | None -> 1)
      in
      Ok
        (run_pool ~config ~scheduler ~jobs ~lease ?checkpoint
           ~resume:(snapshot, fallback) prog ~seeds
           ~deadline:snapshot.Snapshot.sn_deadline))

let select_seed seeds ~coverage_of =
  match seeds with
  | [] -> None
  | _ ->
    let by_size =
      List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
    in
    let smallest =
      List.filteri (fun i _ -> i < 10) by_size
    in
    let best =
      List.fold_left
        (fun acc seed ->
          let cov = coverage_of seed in
          match acc with
          | Some (_, best_cov) when best_cov >= cov -> acc
          | _ -> Some (seed, cov))
        None smallest
    in
    Option.map fst best
