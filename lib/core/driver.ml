module Executor = Pbse_exec.Executor
module Coverage = Pbse_exec.Coverage
module Bug = Pbse_exec.Bug
module Seed_slot = Pbse_campaign.Seed_slot
module Pool_scheduler = Pbse_campaign.Pool_scheduler
module Campaign = Pbse_campaign.Campaign
module Snapshot = Pbse_campaign.Snapshot
module Domain_pool = Pbse_campaign.Domain_pool
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Quarantine = Pbse_robust.Quarantine
module Expr = Pbse_smt.Expr
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report
module Session = Pbse_session.Session
module Session_store = Pbse_session.Session_store

(* --- session layer re-exports ----------------------------------------------

   The whole single-run lifecycle — configuration, open/step/finish,
   run reports — lives in {!Pbse_session.Session}; the driver re-exports
   it so [Driver.run] / [Driver.open_session] remain the engine-level
   entry points, and keeps for itself only what is genuinely
   campaign-shaped: seed pools, round scheduling, checkpoints, resume. *)

type concolic_config = Session.concolic_config = {
  interval_length : int option;
  intervals_target : int;
  time_period : int;
  mode : Pbse_phase.Phase.mode;
}

type search_config = Session.search_config = {
  phase_searcher : string;
  scheduler : string;
  max_live : int;
  dedup_seed_states : bool;
  max_k : int;
  share_seed_states : bool;
}

type solver_config = Session.solver_config = {
  budget : int;
  retry_cap : int;
  prefix_cap : int;
}

type robust_config = Session.robust_config = {
  confirm_bugs : bool;
  max_strikes : int;
  inject : Inject.plan;
  watchdog_factor : int;
  watchdog_strikes : int;
  degrade_after : int;
}

type pathcond_config = Session.pathcond_config = {
  subsumption : bool;
  loop_summaries : bool;
}

type config = Session.config = {
  concolic : concolic_config;
  search : search_config;
  solver : solver_config;
  robust : robust_config;
  pathcond : pathcond_config;
  rng_seed : int;
}

let default_config = Session.default_config
let with_concolic = Session.with_concolic
let with_search = Session.with_search
let with_solver = Session.with_solver
let with_robust = Session.with_robust
let with_pathcond = Session.with_pathcond
let with_rng_seed = Session.with_rng_seed
let config_to_kvs = Session.config_to_kvs
let config_of_kvs = Session.config_of_kvs
let interval_length_for = Session.interval_length_for

type report = Session.report = {
  config : config;
  seed_size : int;
  c_time : int;
  p_time : int;
  division : Pbse_phase.Phase.division;
  bbvs : Pbse_concolic.Bbv.t list;
  trace : Pbse_concolic.Trace.t;
  seed_state_count : int;
  interval_length : int;
  coverage_samples : (int * int) list;
  bugs : (Bug.t * int) list;
  executor : Executor.t;
  faults : Fault.log;
  quarantined : int;
  strikes : int;
  sched_stats : Pbse_sched.Scheduler.stats;
  phase_stats : Report.phase_row list;
  registry : Telemetry.Registry.t;
}

let coverage_at = Session.coverage_at
let run = Session.run

type session = Session.t

let open_session = Session.open_session
let step_session = Session.step_session
let session_time = Session.session_time
let session_drained = Session.session_drained
let session_executor = Session.session_executor
let session_runtime = Session.session_runtime
let finish_session = Session.finish_session
let run_report = Session.run_report
let scalar_metrics = Session.scalar_metrics
let span_metrics = Session.span_metrics

(* --- seed pools ------------------------------------------------------------ *)

type pool_report = {
  runs : (bytes * report) list;
  merged_coverage : int;
  merged_bugs : (Bug.t * int) list;
  pool_scheduler : string;
  seed_rows : Report.seed_row list;
  pool_stats : Pool_scheduler.stats;
  pool_deadline : int;
  pool_spent : int;
  pool_rounds : int;
  pool_parallel_turns : int;
  pool_merge_blocks : int;
  pool_merge_bugs : int;
  pool_merge_registries : int;
  pool_faults : Fault.log;
  pool_registry : Telemetry.Registry.t;
  (* Wall-clock-side diagnostics. These describe how the campaign
     happened to execute — which worker ran what, how often a domain
     refilled its id block — so they depend on [jobs] and scheduling
     luck. They are deliberately NOT part of the pool-report JSON, which
     is byte-identical across widths; the bench CSV and CLI surface
     them. *)
  pool_steal_count : int; (* turns run by a non-home pool worker *)
  pool_pinned_turns : int; (* turns run by their slot's home worker *)
  pool_id_refills : int; (* expr id-block refills during the campaign *)
  pool_shared_seedstates : int;
      (* seedStates skipped because another session of this campaign
         already published their fork point (share hits). Diagnostic
         like the above: the sharing feature itself is config-gated, and
         at [jobs > 1] which session publishes first is timing-dependent *)
}

type checkpoint = {
  ck_path : string;
  ck_every : int; (* turns between checkpoint writes *)
  ck_meta : (string * string) list;
  ck_halt_after : int option; (* stop at this round barrier (tests) *)
  ck_note_ms : (int -> unit) option; (* serialisation-cost probe (bench) *)
}

let checkpoint ?(meta = []) ?halt_after ?note_ms ~path ~every () =
  {
    ck_path = path;
    ck_every = max 1 every;
    ck_meta = meta;
    ck_halt_after = halt_after;
    ck_note_ms = note_ms;
  }

(* Worker-side record of one executed sub-turn. Everything a merge needs
   is captured at execution time: under a multi-turn lease the barrier
   merge runs after {e later} sub-turns have already advanced the
   session's clock and quarantine, so reading them at merge time would
   smear one sub-turn's dwell and strike deltas over its successors. *)
type turn_exec = {
  tx_start : int; (* session clock entering the sub-turn *)
  tx_stop : int; (* session clock leaving it *)
  tx_ev0 : int; (* quarantine evictions before / after *)
  tx_ev1 : int;
  tx_st0 : int; (* quarantine strikes before / after *)
  tx_st1 : int;
  tx_opened : bool; (* this sub-turn opened the session *)
  tx_status : [ `Stepped | `Failed | `Injected | `Entry_crash ];
}

(* Algorithm 1's outer loop over a seed pool, generalised into a
   campaign and run in deterministic rounds: the pool policy plans every
   round up front (one turn per live seed), the turns execute on up to
   [jobs] domains — each seed's session owns a private {!Runtime}
   (registry, RNG, quarantine, expression arena), so concurrent turns
   share no mutable state — and the results merge back at the round
   barrier in plan order. Coverage merges as a union of global block
   ids; bugs deduplicate on (location, kind) and are attributed to the
   seed whose turn first surfaced them; per-session registries merge
   into the pool registry in ordinal order when the campaign ends.
   Every observable outcome is therefore identical for every [jobs]
   value, including 1 (docs/parallelism.md).

   Crash durability (docs/robustness.md) rides on the same determinism:
   [checkpoint] serialises the campaign at round barriers — slot
   counters, each session's granted-turn ledger, merged-bug keys,
   scheduler state — and [resume] reinstates the counters then replays
   each ledger against the same seeds, reconstructing engine state the
   snapshot never stored. A clean kill-and-resume therefore yields a
   pool report byte-identical to the uninterrupted run. Watchdogged
   turns (spent > factor x budget), injected turn kills and contained
   turn exceptions all strike their seed toward forced retirement and
   step the effective [--jobs] and prefix cap down (graceful
   degradation) without ever aborting the campaign.

   On top sits the session-store fast path: with [store] (and no
   checkpointing, resume or preloaded faults — durability features
   describe one concrete execution, not a cacheable one), a finished
   campaign memoises its sessions and pool report under a campaign
   fingerprint, and an identical later call recalls them — re-finishing
   the live sessions instead of re-running concolic bootstrap — with
   byte-identical report JSON. *)
(* Everything a later identical call must agree on to be served the
   memoised campaign. [jobs] is deliberately absent: reports are
   jobs-invariant, so any width may reuse any width's campaign. The
   serve layer computes the same digest up front to key its
   restart-persistent residue cache. *)
let campaign_fingerprint ?(config = default_config)
    ?(scheduler = Pool_scheduler.default) ?(lease = 1) ?(registry_enabled = true)
    ~target ~seeds ~deadline () =
  let ordered =
    List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun part ->
      Buffer.add_string buf part;
      Buffer.add_char buf '\n')
    ([
       target;
       Session.config_fingerprint config;
       scheduler;
       string_of_int (max 1 lease);
       string_of_int deadline;
       (if registry_enabled then "1" else "0");
     ]
    @ List.map (fun seed -> Digest.to_hex (Digest.bytes seed)) ordered);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run_pool ?(config = default_config) ?(scheduler = Pool_scheduler.default)
    ?runtime ?(jobs = 1) ?(lease = 1) ?checkpoint ?resume ?(preload_faults = [])
    ?pool:ext_pool ?store ?target ?round_wrap prog ~seeds ~deadline =
  let factory =
    match Pool_scheduler.by_name scheduler with
    | Some f -> f
    | None -> invalid_arg ("Driver: unknown pool scheduler " ^ scheduler)
  in
  let lease = max 1 lease in
  let ordered =
    List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
  in
  let registry_enabled =
    match runtime with
    | Some rt -> Telemetry.Registry.enabled rt.Runtime.registry
    | None -> Telemetry.Registry.enabled (Telemetry.Registry.default ())
  in
  (* The campaign-wide share table consulted by every [open_session]
     (config-gated). A store-backed share outlives this campaign, so
     repeated campaigns against one store share across campaigns too. *)
  let share =
    if config.search.share_seed_states then
      Some
        (match store with
         | Some st -> Session_store.share st
         | None -> Session.share_create ())
    else None
  in
  let share_hits0 =
    match share with Some sh -> snd (Session.share_stats sh) | None -> 0
  in
  let target_name = match target with Some t -> t | None -> "" in
  let config_fp = Session.config_fingerprint config in
  let run_cold () =
    (* Per-domain minor heaps below ~8 MB thrash the stop-the-world minor
       collection once several domains allocate at engine rates (every
       domain must reach the barrier for every collection); widen once,
       process-wide, and never shrink a user-tuned size. *)
    let g = Gc.get () in
    if g.Gc.minor_heap_size < 1 lsl 20 then
      Gc.set { g with Gc.minor_heap_size = 1 lsl 20 };
    (* One persistent worker pool for the whole campaign — replay and every
       round reuse its domains; sessions are homed on their slot ordinal.
       A caller-supplied pool (the serve layer's) is reused as-is and left
       running; steal/pinned diagnostics are deltas either way. *)
    let own_pool = Option.is_none ext_pool in
    let pool =
      match ext_pool with Some p -> p | None -> Domain_pool.create ~jobs
    in
    let steals0 = Domain_pool.steals pool in
    let pinned0 = Domain_pool.pinned pool in
    let id_refills0 = Expr.id_block_refills () in
    Fun.protect ~finally:(fun () -> if own_pool then Domain_pool.shutdown pool)
    @@ fun () ->
    let pool_rt =
      match runtime with
      | Some rt -> rt
      | None ->
        Runtime.create ~rng_seed:config.rng_seed ~inject:config.robust.inject
          ~max_strikes:config.robust.max_strikes
          ~prefix_cap:config.solver.prefix_cap ()
    in
    let pool_registry = pool_rt.Runtime.registry in
    if Telemetry.Registry.enabled pool_registry then
      Telemetry.Registry.reset pool_registry;
    let tm_rounds = Telemetry.Registry.counter pool_registry "pool.rounds" in
    let tm_parallel_turns =
      Telemetry.Registry.counter pool_registry "pool.parallel_turns"
    in
    let tm_merge_blocks = Telemetry.Registry.counter pool_registry "pool.merge_blocks" in
    let tm_merge_bugs = Telemetry.Registry.counter pool_registry "pool.merge_bugs" in
    let tm_merge_registries =
      Telemetry.Registry.counter pool_registry "pool.merge_registries"
    in
    (* contention diagnostics (width-dependent; excluded from report JSON) *)
    let tm_steal_count = Telemetry.Registry.counter pool_registry "pool.steal_count" in
    let tm_pinned_turns = Telemetry.Registry.counter pool_registry "pool.pinned_turns" in
    let tm_id_refills = Telemetry.Registry.counter pool_registry "smt.id_block_refills" in
    let pool_faults = Fault.log_create ~registry:pool_registry () in
    let slots =
      List.mapi (fun i seed -> Seed_slot.create ~ordinal:(i + 1) seed) ordered
    in
    let nslots = List.length slots in
    let slot_arr = Array.of_list slots in
    let merged = Hashtbl.create 1024 in
    let bug_keys = Hashtbl.create 32 in
    let merged_bugs = ref [] in
    let bug_refs = ref [] in
    (* Sessions indexed by slot ordinal. A cell is written once, by the
       worker domain running its slot's first turn, and only ever touched
       by that slot's turns afterwards; distinct slots use distinct cells
       and [Domain_pool.map]'s join publishes the writes before the
       barrier reads them, so the array needs no lock. *)
    let sessions : (Runtime.t * Session.t) option array = Array.make (nslots + 1) None in
    (* Turn-crash injection draws from a per-slot stream (plan seed +
       ordinal) so a draw's position never depends on which domain ran
       which turn; the snapshot-corruption channel draws once per
       checkpoint write, on the coordinating domain. *)
    let slot_plan ordinal =
      { config.robust.inject with Inject.seed = config.robust.inject.Inject.seed + ordinal }
    in
    let crash_injects = Array.init (nslots + 1) (fun i -> Inject.create (slot_plan i)) in
    let pool_inject = Inject.create config.robust.inject in
    (* Per-ordinal durability records: RNG draws to re-burn on resume, the
       granted-turn ledger (newest first) and the prefix cap each session
       opened under (-1 = unbounded). *)
    let crash_draws = Array.make (nslots + 1) 0 in
    let turn_events : Snapshot.turn_event list array = Array.make (nslots + 1) [] in
    let opened_caps = Array.make (nslots + 1) (-1) in
    let opened = ref [] in
    let rounds = ref 0 in
    let parallel_turns = ref 0 in
    let merge_blocks = ref 0 in
    let merge_bug_count = ref 0 in
    let merge_registries = ref 0 in
    let base_spent = ref 0 in
    let spent_acc = ref 0 in
    let turns_since_ck = ref 0 in
    let checkpoints_written = ref 0 in
    let degrade_faults = ref 0 in
    (* Graceful degradation: every watchdog strike, crashed turn or
       pool-level fault widens [degrade_faults]; each [degrade_after]
       faults halve the domain-pool width and the solver prefix cap.
       Neither knob is visible to plans or merges, so reports are
       unaffected. *)
    let degrade_steps () =
      if config.robust.degrade_after <= 0 then 0
      else !degrade_faults / config.robust.degrade_after
    in
    let eff_jobs () = max 1 (jobs asr degrade_steps ()) in
    let eff_prefix_cap () =
      match pool_rt.Runtime.prefix_cap with
      | None -> None
      | Some cap -> Some (max 16 (cap asr degrade_steps ()))
    in
    let watchdog_overran ~budget ~spent =
      config.robust.watchdog_factor > 0 && spent > config.robust.watchdog_factor * budget
    in
    (* The watchdog fires at the merge barrier (and identically during
       resume replay): a turn that ran past factor x budget records a
       session-level fault and strikes its seed. *)
    let watchdog_check s ~start ~budget =
      let spent = Session.session_time s - start in
      if watchdog_overran ~budget ~spent then begin
        Fault.record
          (Executor.faults (Session.session_executor s))
          ~detail:"turn-timeout" ~vtime:(Session.session_time s) Fault.Turn_timeout;
        true
      end
      else false
    in
    let derive_session_rt ~prefix_cap =
      let registry =
        Telemetry.Registry.create ~enabled:(Telemetry.Registry.enabled pool_registry) ()
      in
      match prefix_cap with
      | Some cap -> Runtime.derive ~registry ~rng_seed:config.rng_seed ~prefix_cap:cap pool_rt
      | None -> Runtime.derive ~registry ~rng_seed:config.rng_seed pool_rt
    in
    (* Re-execute one opened session's ledger from scratch: open under the
       recorded prefix cap, then grant exactly the recorded turns. Runs on
       a worker domain (the session is slot-private). *)
    let replay_slot (slot : Seed_slot.t) (st : Snapshot.slot_state) =
      match st.Snapshot.sl_events with
      | [] -> None
      | Snapshot.Crash _ :: _ -> None (* the opening turn is always a Step *)
      | Snapshot.Step { deadline = first_deadline; budget = first_budget } :: rest ->
        let prefix_cap =
          if st.Snapshot.sl_prefix_cap >= 0 then Some st.Snapshot.sl_prefix_cap else None
        in
        let rt = derive_session_rt ~prefix_cap in
        let s =
          Session.open_session ~config ~runtime:rt ~reset_telemetry:false ?share prog
            ~seed:slot.Seed_slot.seed ~deadline:first_deadline
        in
        ignore (Session.step_contained s ~deadline:first_deadline);
        ignore (watchdog_check s ~start:0 ~budget:first_budget);
        List.iter
          (fun ev ->
            match ev with
            | Snapshot.Crash detail -> Session.record_crash s ~detail
            | Snapshot.Step { deadline; budget } ->
              let start = Session.session_time s in
              ignore (Session.step_contained s ~deadline);
              ignore (watchdog_check s ~start ~budget))
          rest;
        Some (rt, s)
    in
    (* --- resume: reinstate the snapshot, then replay the ledgers ------- *)
    let apply_resume (sn : Snapshot.t) fallback =
      let compatible =
        List.length sn.Snapshot.sn_slots = nslots
        && List.for_all2
             (fun (st : Snapshot.slot_state) (slot : Seed_slot.t) ->
               st.Snapshot.sl_ordinal = slot.Seed_slot.ordinal
               && st.Snapshot.sl_bytes = slot.Seed_slot.size)
             sn.Snapshot.sn_slots slots
      in
      if not compatible then begin
        (* the snapshot describes a different pool: degrade to a fresh
           start with the mismatch on record, never a crash *)
        Fault.record pool_faults ~detail:"pool-shape" ~vtime:0 Fault.Resume_mismatch;
        incr degrade_faults
      end
      else begin
        Fault.restore_counts pool_faults sn.Snapshot.sn_pool_faults;
        Telemetry.Registry.restore_counters pool_registry sn.Snapshot.sn_counters;
        base_spent := sn.Snapshot.sn_spent;
        spent_acc := sn.Snapshot.sn_spent;
        rounds := sn.Snapshot.sn_rounds;
        parallel_turns := sn.Snapshot.sn_parallel_turns;
        merge_blocks := sn.Snapshot.sn_merge_blocks;
        merge_bug_count := sn.Snapshot.sn_merge_bugs;
        checkpoints_written := sn.Snapshot.sn_checkpoints;
        degrade_faults := sn.Snapshot.sn_degrade_faults;
        (match fallback with
         | Some detail ->
           (* the primary checkpoint was bad; we are running from [.bak] *)
           Fault.record pool_faults ~detail ~vtime:sn.Snapshot.sn_spent
             Fault.Snapshot_corrupt;
           incr degrade_faults
         | None -> ());
        (* reposition the injection streams where the original left them *)
        for _ = 1 to sn.Snapshot.sn_checkpoints do
          ignore (Inject.fire_snapshot_corrupt pool_inject)
        done;
        List.iter2
          (fun (st : Snapshot.slot_state) (slot : Seed_slot.t) ->
            let ordinal = slot.Seed_slot.ordinal in
            slot.Seed_slot.turns <- st.Snapshot.sl_turns;
            slot.Seed_slot.granted <- st.Snapshot.sl_granted;
            slot.Seed_slot.dwell <- st.Snapshot.sl_dwell;
            slot.Seed_slot.new_blocks <- st.Snapshot.sl_new_blocks;
            slot.Seed_slot.bugs <- st.Snapshot.sl_bugs;
            slot.Seed_slot.quarantined <- st.Snapshot.sl_quarantined;
            slot.Seed_slot.strikes <- st.Snapshot.sl_strikes;
            slot.Seed_slot.timeouts <- st.Snapshot.sl_timeouts;
            slot.Seed_slot.retired <- st.Snapshot.sl_retired;
            opened_caps.(ordinal) <- st.Snapshot.sl_prefix_cap;
            crash_draws.(ordinal) <- st.Snapshot.sl_crash_draws;
            turn_events.(ordinal) <- List.rev st.Snapshot.sl_events;
            for _ = 1 to st.Snapshot.sl_crash_draws do
              ignore (Inject.fire_turn_crash crash_injects.(ordinal))
            done)
          sn.Snapshot.sn_slots slots;
        let by_ordinal = Array.make (nslots + 1) None in
        List.iter
          (fun (st : Snapshot.slot_state) -> by_ordinal.(st.Snapshot.sl_ordinal) <- Some st)
          sn.Snapshot.sn_slots;
        (* replay opened sessions concurrently, like the turns they rerun —
           homed on their ordinal so each lands on its campaign-long home
           domain straight away *)
        let replayed =
          Domain_pool.run pool ~jobs:(eff_jobs ())
            ~home:(fun ordinal -> ordinal - 1)
            (fun ordinal ->
              match by_ordinal.(ordinal) with
              | Some st when ordinal >= 1 && ordinal <= nslots ->
                (ordinal, replay_slot slot_arr.(ordinal - 1) st)
              | _ -> (ordinal, None))
            sn.Snapshot.sn_opened
        in
        List.iter
          (fun (ordinal, result) ->
            match result with
            | None ->
              Fault.record pool_faults ~detail:"missing-session" ~vtime:!base_spent
                Fault.Resume_mismatch;
              incr degrade_faults
            | Some (rt, s) ->
              sessions.(ordinal) <- Some (rt, s);
              opened := slot_arr.(ordinal - 1) :: !opened;
              (* the replayed engine must land exactly where the snapshot
                 recorded it; divergence is survivable but on record *)
              let st = Option.get by_ordinal.(ordinal) in
              if Session.session_time s <> st.Snapshot.sl_clock then begin
                Fault.record pool_faults ~detail:"clock" ~vtime:!base_spent
                  Fault.Resume_mismatch;
                incr degrade_faults
              end;
              if
                Coverage.count (Executor.coverage (Session.session_executor s))
                <> st.Snapshot.sl_coverage
              then begin
                Fault.record pool_faults ~detail:"coverage" ~vtime:!base_spent
                  Fault.Resume_mismatch;
                incr degrade_faults
              end)
          replayed;
        (* the merged coverage set is the union over the replayed sessions
           (membership is order-insensitive; the fresh-block counters were
           restored above, so later merges count against the same set) *)
        List.iter
          (fun (ordinal, _) ->
            match sessions.(ordinal) with
            | Some (_, s) ->
              List.iter
                (fun gid -> Hashtbl.replace merged gid ())
                (Coverage.covered_ids (Executor.coverage (Session.session_executor s)))
            | None -> ())
          replayed;
        (* merged bugs, reattached in recorded harvest order *)
        List.iter
          (fun (br : Snapshot.bug_ref) ->
            let key = (br.Snapshot.br_gid, br.Snapshot.br_kind) in
            Hashtbl.replace bug_keys key ();
            bug_refs := (br.Snapshot.br_slot, br.Snapshot.br_gid, br.Snapshot.br_kind) :: !bug_refs;
            let reattached =
              match sessions.(br.Snapshot.br_slot) with
              | Some (_, s) -> (
                match
                  List.find_opt
                    (fun b -> Bug.dedup_key b = key)
                    (Executor.bugs (Session.session_executor s))
                with
                | Some bug ->
                  merged_bugs := (bug, Session.session_bug_phase s bug) :: !merged_bugs;
                  true
                | None -> false)
              | None -> false
            in
            if not reattached then begin
              Fault.record pool_faults ~detail:"bug" ~vtime:!base_spent
                Fault.Resume_mismatch;
              incr degrade_faults
            end)
          sn.Snapshot.sn_bugs
      end
    in
    (match resume with Some (sn, fallback) -> apply_resume sn fallback | None -> ());
    List.iter
      (fun (kind, detail) ->
        Fault.record pool_faults ~detail ~vtime:0 kind;
        incr degrade_faults)
      preload_faults;
    let merge_coverage session =
      let fresh =
        List.fold_left
          (fun fresh gid ->
            if Hashtbl.mem merged gid then fresh
            else begin
              Hashtbl.replace merged gid ();
              fresh + 1
            end)
          0
          (Coverage.covered_ids (Executor.coverage (Session.session_executor session)))
      in
      merge_blocks := !merge_blocks + fresh;
      Telemetry.add tm_merge_blocks fresh;
      fresh
    in
    let harvest_bugs (slot : Seed_slot.t) session =
      List.iter
        (fun bug ->
          let ((gid, bkind) as key) = Bug.dedup_key bug in
          if not (Hashtbl.mem bug_keys key) then begin
            Hashtbl.replace bug_keys key ();
            slot.Seed_slot.bugs <- slot.Seed_slot.bugs + 1;
            incr merge_bug_count;
            Telemetry.incr tm_merge_bugs;
            merged_bugs := (bug, Session.session_bug_phase session bug) :: !merged_bugs;
            bug_refs := (slot.Seed_slot.ordinal, gid, bkind) :: !bug_refs
          end)
        (Executor.bugs (Session.session_executor session))
    in
    (* The worker half of a turn: everything here touches only the slot's
       own session, its private runtime and its own cells of the
       per-ordinal arrays, so it is safe on any domain. *)
    let exec_turn (slot : Seed_slot.t) ~budget =
      let ordinal = slot.Seed_slot.ordinal in
      crash_draws.(ordinal) <- crash_draws.(ordinal) + 1;
      let crashed = Inject.fire_turn_crash crash_injects.(ordinal) in
      match sessions.(ordinal) with
      | Some (rt, s) ->
        let start = Session.session_time s in
        let ev0 = Quarantine.evicted rt.Runtime.quarantine in
        let st0 = Quarantine.total_strikes rt.Runtime.quarantine in
        let status =
          if crashed then begin
            Session.record_crash s ~detail:"injected-crash";
            `Injected
          end
          else (Session.step_contained s ~deadline:(start + budget) :> [ `Stepped | `Failed | `Injected | `Entry_crash ])
        in
        {
          tx_start = start;
          tx_stop = Session.session_time s;
          tx_ev0 = ev0;
          tx_ev1 = Quarantine.evicted rt.Runtime.quarantine;
          tx_st0 = st0;
          tx_st1 = Quarantine.total_strikes rt.Runtime.quarantine;
          tx_opened = false;
          tx_status = status;
        }
      | None ->
        if crashed then
          (* killed before the session ever opened: nothing to ledger *)
          { tx_start = 0; tx_stop = 0; tx_ev0 = 0; tx_ev1 = 0; tx_st0 = 0;
            tx_st1 = 0; tx_opened = false; tx_status = `Entry_crash }
        else begin
          (* first turn: the session's setup (concolic pass, phase
             division, seeding) is charged against this turn's budget. The
             session's runtime is private — fresh registry, RNG reseeded
             from the config so every seed's run is reproducible in
             isolation, fresh quarantine, fresh arena — and its prefix cap
             is the pool's current (possibly degraded) one, recorded for
             replay. *)
          let cap = eff_prefix_cap () in
          opened_caps.(ordinal) <- (match cap with Some c -> c | None -> -1);
          let rt = derive_session_rt ~prefix_cap:cap in
          let s =
            Session.open_session ~config ~runtime:rt ~reset_telemetry:false ?share prog
              ~seed:slot.Seed_slot.seed ~deadline:budget
          in
          sessions.(ordinal) <- Some (rt, s);
          let status =
            (Session.step_contained s ~deadline:budget
              :> [ `Stepped | `Failed | `Injected | `Entry_crash ])
          in
          {
            tx_start = 0;
            tx_stop = Session.session_time s;
            tx_ev0 = 0;
            tx_ev1 = Quarantine.evicted rt.Runtime.quarantine;
            tx_st0 = 0;
            tx_st1 = Quarantine.total_strikes rt.Runtime.quarantine;
            tx_opened = true;
            tx_status = status;
          }
        end
    in
    (* The barrier half: runs on the coordinating domain, in plan order,
       after every turn of the round has been joined. Works only from the
       [turn_exec] capture — by merge time, later sub-turns of the same
       lease have already advanced the session. *)
    let merge_turn (slot : Seed_slot.t) ~budget tx =
      let ordinal = slot.Seed_slot.ordinal in
      incr turns_since_ck;
      match tx.tx_status with
      | `Entry_crash ->
        (* charge one tick (a zero-spent turn would silently retire the
           seed; this way it retries opening next round) and record the
           kill at pool level — there is no session to carry the fault *)
        spent_acc := !spent_acc + 1;
        Fault.record pool_faults ~detail:"injected-crash" ~vtime:!spent_acc
          Fault.Exec_exception;
        slot.Seed_slot.timeouts <- slot.Seed_slot.timeouts + 1;
        incr degrade_faults;
        let force_retire =
          config.robust.watchdog_strikes > 0
          && slot.Seed_slot.timeouts >= config.robust.watchdog_strikes
        in
        { Campaign.spent = 1; new_blocks = 0; finished = force_retire }
      | (`Stepped | `Failed | `Injected) as status ->
        let _rt, session =
          match sessions.(ordinal) with Some pair -> pair | None -> assert false
        in
        if tx.tx_opened then opened := slot :: !opened;
        let spent = tx.tx_stop - tx.tx_start in
        (* ledger the turn for resume replay: injected kills replay as a
           tick, everything else (including real contained crashes, which
           are deterministic) replays as a normal step *)
        let event =
          match status with
          | `Injected -> Snapshot.Crash "injected-crash"
          | `Stepped | `Failed ->
            Snapshot.Step { deadline = tx.tx_start + budget; budget }
        in
        turn_events.(ordinal) <- event :: turn_events.(ordinal);
        slot.Seed_slot.quarantined <-
          slot.Seed_slot.quarantined + (tx.tx_ev1 - tx.tx_ev0);
        slot.Seed_slot.strikes <- slot.Seed_slot.strikes + (tx.tx_st1 - tx.tx_st0);
        harvest_bugs slot session;
        let fresh = merge_coverage session in
        let overran =
          match status with
          | `Injected -> false
          | `Stepped | `Failed ->
            (* same decision — and the same session fault — the replay's
               [watchdog_check] reaches right after re-running this step *)
            if watchdog_overran ~budget ~spent then begin
              Fault.record
                (Executor.faults (Session.session_executor session))
                ~detail:"turn-timeout" ~vtime:tx.tx_stop Fault.Turn_timeout;
              true
            end
            else false
        in
        let struck = overran || status <> `Stepped in
        if struck then begin
          slot.Seed_slot.timeouts <- slot.Seed_slot.timeouts + 1;
          incr degrade_faults
        end;
        spent_acc := !spent_acc + spent;
        let force_retire =
          config.robust.watchdog_strikes > 0
          && slot.Seed_slot.timeouts >= config.robust.watchdog_strikes
        in
        {
          Campaign.spent;
          new_blocks = fresh;
          finished = Session.session_drained session || force_retire;
        }
    in
    let on_round n =
      incr rounds;
      Telemetry.incr tm_rounds;
      if n >= 2 then begin
        parallel_turns := !parallel_turns + n;
        Telemetry.add tm_parallel_turns n
      end
    in
    let sched =
      factory ~registry:pool_registry ~time_period:config.concolic.time_period
        (List.filter (fun (sl : Seed_slot.t) -> not sl.Seed_slot.retired) slots)
    in
    (match resume with
     | Some (sn, _) ->
       sched.Pool_scheduler.stats.Pool_scheduler.turns <- sn.Snapshot.sn_sched_turns;
       sched.Pool_scheduler.stats.Pool_scheduler.rotations <- sn.Snapshot.sn_sched_rotations;
       sched.Pool_scheduler.stats.Pool_scheduler.retirements <-
         sn.Snapshot.sn_sched_retirements;
       sched.Pool_scheduler.restore_state sn.Snapshot.sn_sched_state
     | None -> ());
    let slot_state (slot : Seed_slot.t) =
      let ordinal = slot.Seed_slot.ordinal in
      let clock, coverage =
        match sessions.(ordinal) with
        | Some (_, s) ->
          ( Session.session_time s,
            Coverage.count (Executor.coverage (Session.session_executor s)) )
        | None -> (0, 0)
      in
      {
        Snapshot.sl_ordinal = ordinal;
        sl_bytes = slot.Seed_slot.size;
        sl_turns = slot.Seed_slot.turns;
        sl_granted = slot.Seed_slot.granted;
        sl_dwell = slot.Seed_slot.dwell;
        sl_new_blocks = slot.Seed_slot.new_blocks;
        sl_bugs = slot.Seed_slot.bugs;
        sl_quarantined = slot.Seed_slot.quarantined;
        sl_strikes = slot.Seed_slot.strikes;
        sl_timeouts = slot.Seed_slot.timeouts;
        sl_retired = slot.Seed_slot.retired;
        sl_clock = clock;
        sl_coverage = coverage;
        sl_prefix_cap = opened_caps.(ordinal);
        sl_crash_draws = crash_draws.(ordinal);
        sl_events = List.rev turn_events.(ordinal);
      }
    in
    let write_checkpoint ck =
      let t0 = Sys.time () in
      let sn =
        {
          Snapshot.sn_meta =
            ck.ck_meta
            @ [
                ("scheduler", scheduler);
                ("jobs", string_of_int jobs);
                ("lease", string_of_int lease);
                ("deadline", string_of_int deadline);
                ( "telemetry",
                  if Telemetry.Registry.enabled pool_registry then "1" else "0" );
              ]
            @ config_to_kvs config;
          sn_deadline = deadline;
          sn_spent = !spent_acc;
          sn_rounds = !rounds;
          sn_parallel_turns = !parallel_turns;
          sn_merge_blocks = !merge_blocks;
          sn_merge_bugs = !merge_bug_count;
          (* count this write too: resume burns one snapshot-channel draw
             per write, including the one just below *)
          sn_checkpoints = !checkpoints_written + 1;
          sn_degrade_faults = !degrade_faults;
          sn_sched_turns = sched.Pool_scheduler.stats.Pool_scheduler.turns;
          sn_sched_rotations = sched.Pool_scheduler.stats.Pool_scheduler.rotations;
          sn_sched_retirements = sched.Pool_scheduler.stats.Pool_scheduler.retirements;
          sn_sched_state = sched.Pool_scheduler.state ();
          sn_pool_faults =
            List.map (fun k -> (Fault.label k, Fault.count pool_faults k)) Fault.all;
          sn_opened =
            List.rev_map (fun (sl : Seed_slot.t) -> sl.Seed_slot.ordinal) !opened;
          sn_counters = Telemetry.Registry.snapshot_counters pool_registry;
          sn_slots = List.map slot_state slots;
          sn_bugs =
            List.rev_map
              (fun (ordinal, gid, kind) ->
                { Snapshot.br_slot = ordinal; br_gid = gid; br_kind = kind })
              !bug_refs;
        }
      in
      let doc = Snapshot.to_string sn in
      let doc =
        if Inject.fire_snapshot_corrupt pool_inject then begin
          (* flip one byte mid-document; the checksum catches it on load *)
          let b = Bytes.of_string doc in
          Bytes.set b (Bytes.length b / 2) '#';
          Bytes.to_string b
        end
        else doc
      in
      Snapshot.save_string ~path:ck.ck_path doc;
      incr checkpoints_written;
      turns_since_ck := 0;
      match ck.ck_note_ms with
      | Some note -> note (int_of_float ((Sys.time () -. t0) *. 1000.0))
      | None -> ()
    in
    let after_round () =
      match checkpoint with
      | None -> true
      | Some ck ->
        let halt =
          match ck.ck_halt_after with Some n -> !rounds >= n | None -> false
        in
        if halt || !turns_since_ck >= ck.ck_every then write_checkpoint ck;
        not halt
    in
    let spent =
      Campaign.run_rounds ~on_round ~after_round ~lease ?round_wrap ~pool ~sched
        ~deadline:(deadline - !base_spent) ~jobs:eff_jobs ~run:exec_turn
        ~merge:merge_turn ()
    in
    List.iter
      (fun (slot : Seed_slot.t) ->
        match sessions.(slot.Seed_slot.ordinal) with
        | Some (rt, s) ->
          slot.Seed_slot.faults <-
            Fault.total (Executor.faults (Session.session_executor s));
          (* publish the session's solver residue for future sessions of
             this share (ordinal order, first writer per prefix wins) *)
          (match share with
           | Some sh -> Session.share_publish_hints sh (Session.export_prefix_hints s)
           | None -> ());
          (* fold the session's instruments into the pool registry, in
             ordinal order — the aggregate report covers the campaign *)
          Telemetry.Registry.merge_into ~into:pool_registry rt.Runtime.registry;
          incr merge_registries;
          Telemetry.incr tm_merge_registries
        | None -> ())
      slots;
    let runs =
      List.rev_map
        (fun (slot : Seed_slot.t) ->
          match sessions.(slot.Seed_slot.ordinal) with
          | Some (_, s) -> (slot.Seed_slot.seed, Session.finish_session s)
          | None -> assert false)
        !opened
    in
    (* store members, in the same first-turn order as [runs] *)
    let members =
      List.rev_map
        (fun (slot : Seed_slot.t) ->
          match sessions.(slot.Seed_slot.ordinal) with
          | Some (_, s) ->
            ( Session_store.session_key ~target:target_name ~seed:slot.Seed_slot.seed
                ~config_fp,
              slot.Seed_slot.seed,
              s )
          | None -> assert false)
        !opened
    in
    let steal_count = Domain_pool.steals pool - steals0 in
    let pinned_turns = Domain_pool.pinned pool - pinned0 in
    let id_refills = Expr.id_block_refills () - id_refills0 in
    Telemetry.add tm_steal_count steal_count;
    Telemetry.add tm_pinned_turns pinned_turns;
    Telemetry.add tm_id_refills id_refills;
    ( {
        runs;
        merged_coverage = Hashtbl.length merged;
        merged_bugs = List.rev !merged_bugs;
        pool_scheduler = sched.Pool_scheduler.name;
        seed_rows = List.map Seed_slot.stat_row slots;
        pool_stats = sched.Pool_scheduler.stats;
        pool_deadline = deadline;
        pool_spent = !base_spent + spent;
        pool_rounds = !rounds;
        pool_parallel_turns = !parallel_turns;
        pool_merge_blocks = !merge_blocks;
        pool_merge_bugs = !merge_bug_count;
        pool_merge_registries = !merge_registries;
        pool_faults;
        pool_registry;
        pool_steal_count = steal_count;
        pool_pinned_turns = pinned_turns;
        pool_id_refills = id_refills;
        pool_shared_seedstates =
          (match share with
           | Some sh -> snd (Session.share_stats sh) - share_hits0
           | None -> 0);
      },
      members )
  in
  (* The warm path: only a plain campaign is cacheable — checkpointing,
     resume and preloaded faults describe one concrete execution. On a
     hit the memoised sessions are re-finished (valid at any time; no
     engine work) into runs byte-identical to the cold campaign's. *)
  let cacheable =
    Option.is_none checkpoint && Option.is_none resume && preload_faults = []
  in
  match store with
  | Some st when cacheable -> (
    let fingerprint =
      campaign_fingerprint ~config ~scheduler ~lease ~registry_enabled
        ~target:target_name ~seeds ~deadline ()
    in
    match Session_store.find_campaign st ~fingerprint with
    | Some (members, residue) ->
      {
        residue with
        runs = List.map (fun (seed, s) -> (seed, Session.finish_session s)) members;
      }
    | None ->
      let result, members = run_cold () in
      Session_store.put_campaign st ~fingerprint ~sessions:members result;
      result)
  | _ -> fst (run_cold ())

(* Aggregate pool report: pool-level metrics first (merged coverage and
   deduplicated bugs replace the per-run values, which would double
   count), then the element-wise sum of every per-run scalar family,
   plus the per-seed rows. Span and histogram sections snapshot the
   registry, which a pool campaign resets once at the start — they cover
   the whole campaign on instrumented runs. *)
let pool_run_report ?(meta = []) pool =
  let reports = List.map snd pool.runs in
  let summed =
    match List.map scalar_metrics reports with
    | [] -> []
    | first :: rest ->
      List.fold_left
        (fun acc m -> List.map2 (fun (k, a) (_, b) -> (k, a + b)) acc m)
        first rest
  in
  (* merged values replace their summed counterparts; per-run interval
     lengths don't aggregate meaningfully *)
  let dropped =
    [ "coverage.blocks"; "bugs.total"; "bugs.confirmed"; "run.interval_length" ]
  in
  let summed = List.filter (fun (k, _) -> not (List.mem k dropped)) summed in
  let confirmed =
    List.length
      (List.filter (fun ((b : Bug.t), _) -> b.Bug.confirmed) pool.merged_bugs)
  in
  let st = pool.pool_stats in
  let metrics =
    [
      ("pool.seeds", List.length pool.seed_rows);
      ("pool.runs", List.length pool.runs);
      ("pool.turns", st.Pool_scheduler.turns);
      ("pool.rotations", st.Pool_scheduler.rotations);
      ("pool.retirements", st.Pool_scheduler.retirements);
      ("pool.deadline", pool.pool_deadline);
      ("pool.spent", pool.pool_spent);
      ("pool.rounds", pool.pool_rounds);
      ("pool.parallel_turns", pool.pool_parallel_turns);
      ("pool.merge_blocks", pool.pool_merge_blocks);
      ("pool.merge_bugs", pool.pool_merge_bugs);
      ("pool.merge_registries", pool.pool_merge_registries);
      ("coverage.blocks", pool.merged_coverage);
      ("bugs.total", List.length pool.merged_bugs);
      ("bugs.confirmed", confirmed);
    ]
    @ List.map
        (fun kind -> ("pool.fault." ^ Fault.label kind, Fault.count pool.pool_faults kind))
        Fault.all
    @ summed
    @ span_metrics pool.pool_registry
  in
  {
    Report.meta = ("pool_scheduler", pool.pool_scheduler) :: meta;
    metrics;
    phases = [];
    seeds = pool.seed_rows;
    histograms = Telemetry.Registry.snapshot_histograms pool.pool_registry;
  }

(* --- crash recovery -------------------------------------------------------- *)

(* Load a checkpoint with graceful degradation: a corrupt or
   version-mismatched primary falls back to the [.bak] rotation (the
   last good checkpoint), reporting the primary's failure so the resumed
   campaign can put it on the fault record. *)
let load_snapshot ~path =
  match Snapshot.load ~path with
  | Ok sn -> Ok (sn, None)
  | Error primary -> (
    let bak = path ^ ".bak" in
    let primary_msg = Snapshot.error_message primary in
    if Sys.file_exists bak then
      match Snapshot.load ~path:bak with
      | Ok sn -> Ok (sn, Some primary_msg)
      | Error fb ->
        Error
          (Printf.sprintf "%s; fallback %s: %s" primary_msg bak
             (Snapshot.error_message fb))
    else Error primary_msg)

let resume_pool ?jobs ?lease ?checkpoint ?fallback snapshot prog ~seeds =
  let meta = snapshot.Snapshot.sn_meta in
  match config_of_kvs meta with
  | Error e -> Error ("snapshot config: " ^ e)
  | Ok config -> (
    let scheduler =
      match List.assoc_opt "scheduler" meta with
      | Some s -> s
      | None -> Pool_scheduler.default
    in
    match Pool_scheduler.by_name scheduler with
    | None -> Error (Printf.sprintf "snapshot names unknown pool scheduler %S" scheduler)
    | Some _ ->
      let jobs =
        match jobs with
        | Some j -> j
        | None -> (
          match Option.bind (List.assoc_opt "jobs" meta) int_of_string_opt with
          | Some j -> j
          | None -> 1)
      in
      (* a snapshot written under multi-turn leases must resume under the
         same lease, or the remaining rounds would re-plan with different
         work units and diverge from the uninterrupted run *)
      let lease =
        match lease with
        | Some l -> l
        | None -> (
          match Option.bind (List.assoc_opt "lease" meta) int_of_string_opt with
          | Some l -> l
          | None -> 1)
      in
      Ok
        (run_pool ~config ~scheduler ~jobs ~lease ?checkpoint
           ~resume:(snapshot, fallback) prog ~seeds
           ~deadline:snapshot.Snapshot.sn_deadline))

let select_seed seeds ~coverage_of =
  match seeds with
  | [] -> None
  | _ ->
    let by_size =
      List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
    in
    let smallest =
      List.filteri (fun i _ -> i < 10) by_size
    in
    let best =
      List.fold_left
        (fun acc seed ->
          let cov = coverage_of seed in
          match acc with
          | Some (_, best_cov) when best_cov >= cov -> acc
          | _ -> Some (seed, cov))
        None smallest
    in
    Option.map fst best
