module Executor = Pbse_exec.Executor
module Searcher = Pbse_exec.Searcher
module Coverage = Pbse_exec.Coverage
module State = Pbse_exec.State
module Bug = Pbse_exec.Bug
module Concolic = Pbse_concolic.Concolic
module Bbv = Pbse_concolic.Bbv
module Trace = Pbse_concolic.Trace
module Phase = Pbse_phase.Phase
module Phase_queue = Pbse_sched.Phase_queue
module Scheduler = Pbse_sched.Scheduler
module Vclock = Pbse_util.Vclock
module Rng = Pbse_util.Rng
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Quarantine = Pbse_robust.Quarantine
module Solver = Pbse_smt.Solver
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report

let tm_concolic = Telemetry.span "driver.concolic"
let tm_phase_analysis = Telemetry.span "driver.phase_analysis"
let tm_turn = Telemetry.span "driver.turn"

type config = {
  interval_length : int option; (* None: size from a concrete pre-run *)
  intervals_target : int; (* BBVs aimed for when auto-sizing *)
  time_period : int;
  phase_searcher : string;
  mode : Phase.mode;
  dedup_seed_states : bool;
  scheduler : string;
  max_k : int;
  rng_seed : int;
  max_live : int;
  solver_budget : int;
  solver_retry_cap : int;
  confirm_bugs : bool;
  max_strikes : int;
  inject : Inject.plan;
}

let default_config =
  {
    interval_length = None;
    intervals_target = 120;
    time_period = 10_000;
    phase_searcher = "default";
    mode = Phase.Bbv_with_coverage;
    dedup_seed_states = true;
    scheduler = "round-robin";
    max_k = 20;
    rng_seed = 1;
    max_live = 8192;
    solver_budget = 60_000;
    solver_retry_cap = 480_000;
    confirm_bugs = true;
    max_strikes = 4;
    inject = Inject.none;
  }

type report = {
  config : config;
  seed_size : int;
  c_time : int;
  p_time : int;
  division : Phase.division;
  bbvs : Bbv.t list;
  trace : Trace.t;
  seed_state_count : int;
  interval_length : int;
  coverage_samples : (int * int) list;
  bugs : (Bug.t * int) list;
  executor : Executor.t;
  faults : Fault.log;
  quarantined : int;
  strikes : int;
  sched_stats : Scheduler.stats;
  phase_stats : Report.phase_row list; (* scheduling stats, ordinal order *)
}

let coverage_at report t =
  let rec scan best = function
    | [] -> best
    | (vt, cov) :: rest -> if vt <= t then scan cov rest else best
  in
  scan 0 report.coverage_samples

let make_phase_searcher config rng exec =
  match Searcher.by_name config.phase_searcher with
  | Some make -> make (Rng.split rng) (Executor.cfg exec) (Executor.coverage exec)
  | None -> invalid_arg ("Driver: unknown phase searcher " ^ config.phase_searcher)

let make_scheduler config =
  match Scheduler.by_name config.scheduler with
  | Some make -> make
  | None -> invalid_arg ("Driver: unknown scheduler " ^ config.scheduler)

let map_seed_states config ~interval_length division bbvs
    (seed_states : Concolic.seed_state list) =
  (* phase id for each seedState via its fork interval *)
  let tagged =
    List.filter_map
      (fun (ss : Concolic.seed_state) ->
        let interval = ss.Concolic.fork_vtime / interval_length in
        match Phase.phase_of_interval division bbvs interval with
        | Some pid ->
          ss.Concolic.state.State.phase <- pid;
          Some ss
        | None -> None)
      seed_states
  in
  if not config.dedup_seed_states then tagged
  else begin
    (* keep the earliest seedState per (phase, fork location) *)
    let seen = Hashtbl.create 256 in
    List.filter
      (fun (ss : Concolic.seed_state) ->
        let key = (ss.Concolic.state.State.phase, ss.Concolic.fork_gid) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      tagged
  end

(* The shared engine loop: Algorithm 3 under supervision, generic over
   the scheduling policy. Which phase runs next, for how long, and when
   a phase leaves the rotation are all [sched]'s decisions; this loop
   only executes turns. Executor and solver failures inside a turn are
   contained and recorded; a faulting state costs at worst itself
   (quarantine after [max_strikes]) and a broken searcher costs its
   phase (fail-over via [evict]), never the run. *)
let schedule_phases ~clock ~deadline ~sched ~quarantine exec note_progress =
  let faults = Executor.faults exec in
  let now () = Vclock.now clock in
  let rec turns () =
    if Vclock.now clock >= deadline then ()
    else
      match sched.Scheduler.select () with
      | None -> ()
      | Some { Scheduler.queue = q; budget = turn_budget } ->
        let turn_start = Vclock.now clock in
        let cover_start = q.Phase_queue.new_cover in
        let searcher = q.Phase_queue.searcher in
        q.Phase_queue.turns <- q.Phase_queue.turns + 1;
        let queue_failed = ref false in
        let quarantine_strike st =
          if Quarantine.strike quarantine ~site:st.State.fork_gid st.State.id then begin
            q.Phase_queue.quarantined <- q.Phase_queue.quarantined + 1;
            searcher.Searcher.remove st
          end
        in
        let contain st exn =
          (* charge a tick so fault loops always advance toward the deadline *)
          Vclock.advance clock 1;
          Fault.record faults ~detail:(Printexc.to_string exn)
            ~vtime:(Vclock.now clock) Fault.Exec_exception;
          quarantine_strike st
        in
        let rec drain () =
          if Vclock.now clock >= deadline then ()
          else
            match
              try `Selected (searcher.Searcher.select ())
              with exn -> `Searcher_error exn
            with
            | `Searcher_error exn ->
              (* a broken searcher forfeits its whole phase *)
              Vclock.advance clock 1;
              Fault.record faults ~detail:(Printexc.to_string exn)
                ~vtime:(Vclock.now clock) Fault.Exec_exception;
              queue_failed := true
            | `Selected None -> ()
            | `Selected (Some st) when st.State.needs_verify -> (
              match try `V (Executor.verify exec st) with exn -> `E exn with
              | `V Executor.Verified -> slice st
              | `V Executor.Infeasible_state ->
                (* lazily discovered infeasible seedState *)
                searcher.Searcher.remove st;
                drain ()
              | `V Executor.Undecided ->
                (* the solver gave up; the state stays schedulable and the
                   next attempt escalates the query budget — unless it has
                   struck out *)
                quarantine_strike st;
                drain ()
              | `E exn ->
                contain st exn;
                drain ())
            | `Selected (Some st) -> slice st
        and slice st =
          match try `S (Executor.run_slice exec st) with exn -> `E exn with
          | `E exn ->
            contain st exn;
            drain ()
          | `S slice ->
            q.Phase_queue.slices <- q.Phase_queue.slices + 1;
            let covered_new = st.State.fresh_cover in
            if covered_new then q.Phase_queue.new_cover <- q.Phase_queue.new_cover + 1;
            (match slice with
             | Executor.Running -> ()
             | Executor.Forked children ->
               List.iter
                 (fun (child : State.t) ->
                   child.State.phase <- q.Phase_queue.pid;
                   searcher.Searcher.fork ~parent:st child)
                 children
             | Executor.Finished _ -> searcher.Searcher.remove st);
            note_progress q.Phase_queue.ordinal;
            (* stay in the phase while under budget or still covering new code *)
            if Vclock.now clock - turn_start <= turn_budget || covered_new then drain ()
        in
        Telemetry.with_span tm_turn ~now drain;
        q.Phase_queue.dwell <- q.Phase_queue.dwell + (Vclock.now clock - turn_start);
        if !queue_failed || Phase_queue.size q = 0 then
          sched.Scheduler.evict q ~failed:!queue_failed
        else
          sched.Scheduler.credit q
            ~elapsed:(Vclock.now clock - turn_start)
            ~new_cover:(q.Phase_queue.new_cover - cover_start);
        turns ()
  in
  turns ()

let run ?(config = default_config) ?quarantine prog ~seed ~deadline =
  (* validate the policy name before the expensive concolic step *)
  let scheduler_factory = make_scheduler config in
  (* instrumented runs snapshot the registry into their report, so start
     each run from zero; uninstrumented runs skip the reset too *)
  if Telemetry.enabled () then Telemetry.reset ();
  let clock = Vclock.create () in
  let exec =
    Executor.create ~max_live:config.max_live ~solver_budget:config.solver_budget
      ~solver_retry_cap:config.solver_retry_cap ~confirm_bugs:config.confirm_bugs
      ~inject:config.inject ~clock prog ~input:seed
  in
  let rng = Rng.create config.rng_seed in
  (* step 1: concolic execution. The BBV interval is sized from a cheap
     concrete pre-run so every seed yields a comparable number of BBVs
     (the paper gathers over wall-clock intervals; runs lasting longer
     simply produce more vectors). *)
  let interval_length =
    match config.interval_length with
    | Some l -> l
    | None ->
      let probe = Pbse_exec.Concrete.run prog ~input:seed ~fuel:20_000_000 in
      max 50 (probe.Pbse_exec.Concrete.steps / config.intervals_target)
  in
  let indexer = Trace.indexer () in
  let now () = Vclock.now clock in
  let concolic =
    Telemetry.with_span tm_concolic ~now (fun () ->
        Concolic.run ~interval_length ~deadline exec indexer)
  in
  let c_time = concolic.Concolic.c_time in
  (* step 2: phase analysis; charge virtual time proportional to the work *)
  let p_start = Vclock.now clock in
  let division =
    Telemetry.with_span tm_phase_analysis ~now (fun () ->
        let d =
          Phase.divide ~mode:config.mode ~max_k:config.max_k (Rng.split rng)
            concolic.Concolic.bbvs
        in
        Vclock.advance clock (50 * List.length concolic.Concolic.bbvs * config.max_k / 20);
        d)
  in
  let p_time = Vclock.now clock - p_start + 1 in
  (match concolic.Concolic.bbvs with
   | [] ->
     Fault.record (Executor.faults exec) ~detail:"no BBVs; one-phase fallback"
       ~vtime:(Vclock.now clock) Fault.Degenerate_phase
   | _ :: _ -> ());
  (* step 3: map seedStates into phases. Feasibility is checked lazily,
     when a seedState is first scheduled — exactly the paper's "lazy pass
     through": the concolic step recorded fork points without exploring
     or deciding them. *)
  let seed_states =
    map_seed_states config ~interval_length division concolic.Concolic.bbvs
      concolic.Concolic.seed_states
  in
  (* build phase queues in first-appearance order *)
  let queue_list =
    List.mapi
      (fun i (p : Phase.phase) ->
        Phase_queue.create ~ordinal:(i + 1) ~pid:p.Phase.pid ~trap:p.Phase.trap
          (make_phase_searcher config rng exec))
      division.Phase.phases
  in
  List.iter
    (fun (ss : Concolic.seed_state) ->
      match
        List.find_opt
          (fun q -> q.Phase_queue.pid = ss.Concolic.state.State.phase)
          queue_list
      with
      | Some q -> Phase_queue.seed q ss.Concolic.state
      | None -> ())
    seed_states;
  let sched =
    scheduler_factory ~time_period:config.time_period
      (List.filter (fun q -> Phase_queue.size q > 0) queue_list)
  in
  Executor.set_live_counter exec (fun () ->
      List.fold_left
        (fun acc q -> acc + Phase_queue.size q)
        0
        (sched.Scheduler.remaining ()));
  (* bookkeeping for coverage samples and bug-to-phase attribution *)
  let samples = ref [ (Vclock.now clock, Coverage.count (Executor.coverage exec)) ] in
  let last_cov = ref (Coverage.count (Executor.coverage exec)) in
  let bug_phases : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
  let known_bugs = ref 0 in
  let note_progress current_ordinal =
    let cov = Coverage.count (Executor.coverage exec) in
    if cov <> !last_cov then begin
      last_cov := cov;
      samples := (Vclock.now clock, cov) :: !samples
    end;
    let bugs = Executor.bugs exec in
    let n = List.length bugs in
    if n > !known_bugs then begin
      (* attribute by dedup key, not list position: only bugs whose key is
         genuinely new belong to the current phase *)
      List.iter
        (fun bug ->
          let key = Bug.dedup_key bug in
          if not (Hashtbl.mem bug_phases key) then
            Hashtbl.replace bug_phases key current_ordinal)
        bugs;
      known_bugs := n
    end
  in
  note_progress 0;
  (* step 4: phase-scheduled symbolic execution. A caller-supplied
     quarantine (run_pool) persists across runs: per-state strikes reset
     with the epoch, site records and totals carry over. *)
  let quarantine =
    match quarantine with
    | Some q ->
      Quarantine.epoch q;
      q
    | None -> Quarantine.create ~max_strikes:config.max_strikes
  in
  let evicted0 = Quarantine.evicted quarantine in
  let strikes0 = Quarantine.total_strikes quarantine in
  schedule_phases ~clock ~deadline ~sched ~quarantine exec note_progress;
  let bugs =
    List.map
      (fun bug ->
        let ordinal =
          match Hashtbl.find_opt bug_phases (Bug.dedup_key bug) with
          | Some o -> o
          | None -> 0
        in
        (bug, ordinal))
      (Executor.bugs exec)
  in
  {
    config;
    seed_size = Bytes.length seed;
    c_time;
    p_time;
    division;
    bbvs = concolic.Concolic.bbvs;
    trace = concolic.Concolic.trace;
    seed_state_count = List.length seed_states;
    interval_length;
    coverage_samples = List.rev !samples;
    bugs;
    executor = exec;
    faults = Executor.faults exec;
    quarantined = Quarantine.evicted quarantine - evicted0;
    strikes = Quarantine.total_strikes quarantine - strikes0;
    sched_stats = sched.Scheduler.stats;
    phase_stats = List.map Phase_queue.stat_row queue_list;
  }

(* --- run reports ---------------------------------------------------------- *)

(* Assemble the structured run report (docs/telemetry.md). The scalar
   metrics are harvested from the per-run stats structs — authoritative
   whether or not the registry was enabled — while spans and histograms
   come from the registry snapshot and are only populated on
   instrumented runs. Construction order is fixed, so two identical
   seeded runs serialise byte-identically. *)
let run_report ?(meta = []) report =
  let exec = report.executor in
  let sst = Solver.stats (Executor.solver exec) in
  let est = Executor.stats exec in
  let scs = report.sched_stats in
  let confirmed =
    List.length (List.filter (fun ((b : Bug.t), _) -> b.Bug.confirmed) report.bugs)
  in
  let trap_dwell =
    List.fold_left
      (fun acc (p : Report.phase_row) -> if p.Report.trap then acc + p.Report.dwell else acc)
      0 report.phase_stats
  in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 report.phase_stats in
  let metrics =
    [
      ("seed.bytes", report.seed_size);
      ("run.c_time", report.c_time);
      ("run.p_time", report.p_time);
      ("run.interval_length", report.interval_length);
      ("run.seed_states", report.seed_state_count);
      ("phase.count", report.division.Phase.k);
      ("phase.traps", report.division.Phase.trap_count);
      ("phase.turns", sum (fun p -> p.Report.turns));
      ("phase.slices", sum (fun p -> p.Report.slices));
      ("phase.new_cover", sum (fun p -> p.Report.new_cover));
      ("phase.dwell", sum (fun p -> p.Report.dwell));
      ("phase.trap_dwell", trap_dwell);
      ("sched.turns", scs.Scheduler.turns);
      ("sched.rotations", scs.Scheduler.rotations);
      ("sched.evictions", scs.Scheduler.evictions);
      ("sched.failovers", scs.Scheduler.failovers);
      ("coverage.blocks", Coverage.count (Executor.coverage exec));
      ("bugs.total", List.length report.bugs);
      ("bugs.confirmed", confirmed);
      ("exec.states", Executor.state_count exec);
      ("exec.instructions", est.Executor.instructions);
      ("exec.slices", est.Executor.slices);
      ("exec.forks", est.Executor.forks);
      ("exec.dropped_forks", est.Executor.dropped_forks);
      ("exec.cow_copies", est.Executor.cow_copies);
      ("exec.term_exit", est.Executor.term_exit);
      ("exec.term_bug", est.Executor.term_bug);
      ("exec.term_abort", est.Executor.term_abort);
      ("exec.term_infeasible", est.Executor.term_infeasible);
      ("exec.concretized_addrs", est.Executor.concretized_addrs);
      ("verify.verified", est.Executor.verify_verified);
      ("verify.infeasible", est.Executor.verify_infeasible);
      ("verify.undecided", est.Executor.verify_undecided);
      ("solver.queries", sst.Solver.queries);
      ("solver.sat", sst.Solver.sat);
      ("solver.unsat", sst.Solver.unsat);
      ("solver.unknown", sst.Solver.unknown);
      ("solver.cache_hits", sst.Solver.cache_hits);
      ("solver.hint_hits", sst.Solver.hint_hits);
      ("solver.prefix_hits", sst.Solver.prefix_hits);
      ("solver.prefix_builds", sst.Solver.prefix_builds);
      ("solver.prefix_model_hits", sst.Solver.prefix_model_hits);
      ("solver.search_nodes", sst.Solver.search_nodes);
      ("solver.work", sst.Solver.work);
      ("solver.retries", sst.Solver.retries);
      ("solver.escalations", sst.Solver.escalations);
      ("solver.retry_resolved", sst.Solver.retry_resolved);
      ("quarantine.evicted", report.quarantined);
      ("quarantine.strikes", report.strikes);
    ]
    @ List.map
        (fun kind -> ("fault." ^ Fault.label kind, Fault.count report.faults kind))
        Fault.all
    @ List.concat_map
        (fun (name, count, total) ->
          [ ("span." ^ name ^ ".count", count); ("span." ^ name ^ ".total", total) ])
        (Telemetry.snapshot_spans ())
  in
  {
    Report.meta;
    metrics;
    phases = report.phase_stats;
    histograms = Telemetry.snapshot_histograms ();
  }

type pool_report = {
  runs : (bytes * report) list;
  merged_coverage : int;
  merged_bugs : (Bug.t * int) list;
}

(* Algorithm 1's outer loop: pop seeds (smallest first, the paper's
   heuristic bias), giving each remaining seed an equal share of the
   remaining budget. Coverage is merged as a union of global block ids;
   bugs are deduplicated across runs on (location, kind). One quarantine
   is threaded through every run, so eviction records persist across
   seeds instead of resetting (each run reports its own delta). *)
let run_pool ?(config = default_config) prog ~seeds ~deadline =
  let ordered =
    List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
  in
  let quarantine = Quarantine.create ~max_strikes:config.max_strikes in
  let merged = Hashtbl.create 1024 in
  let bug_keys = Hashtbl.create 32 in
  let runs = ref [] in
  let bugs = ref [] in
  let spent = ref 0 in
  let remaining_seeds = ref (List.length ordered) in
  List.iter
    (fun seed ->
      let budget = (deadline - !spent) / max 1 !remaining_seeds in
      decr remaining_seeds;
      if budget > 0 then begin
        let report = run ~config ~quarantine prog ~seed ~deadline:budget in
        spent := !spent + Vclock.now (Executor.clock report.executor);
        runs := (seed, report) :: !runs;
        List.iter
          (fun gid -> Hashtbl.replace merged gid ())
          (Coverage.covered_ids (Executor.coverage report.executor));
        List.iter
          (fun ((bug : Bug.t), phase) ->
            let key = Bug.dedup_key bug in
            if not (Hashtbl.mem bug_keys key) then begin
              Hashtbl.replace bug_keys key ();
              bugs := (bug, phase) :: !bugs
            end)
          report.bugs
      end)
    ordered;
  {
    runs = List.rev !runs;
    merged_coverage = Hashtbl.length merged;
    merged_bugs = List.rev !bugs;
  }

let select_seed seeds ~coverage_of =
  match seeds with
  | [] -> None
  | _ ->
    let by_size =
      List.sort (fun a b -> Int.compare (Bytes.length a) (Bytes.length b)) seeds
    in
    let smallest =
      List.filteri (fun i _ -> i < 10) by_size
    in
    let best =
      List.fold_left
        (fun acc seed ->
          let cov = coverage_of seed in
          match acc with
          | Some (_, best_cov) when best_cov >= cov -> acc
          | _ -> Some (seed, cov))
        None smallest
    in
    Option.map fst best
