(** The pbSE driver — the paper's contribution (Algorithms 1 and 3).

    Pipeline: concolic execution of the seed (gathering BBVs and
    seedStates), phase division with trap identification, then
    phase-scheduled symbolic execution:

    - seedStates are mapped to the phase of the interval in which their
      fork point was reached, deduplicated per fork location (keeping the
      earliest, §III-B3);
    - phase turns are granted by a pluggable scheduling policy
      ({!Pbse_sched.Scheduler}); the default is the paper's round-robin
      in order of first appearance, with the turn budget growing by one
      [time_period] per full rotation;
    - a phase's turn ends when it exhausts its budget and its latest
      slice covered no new code; empty phases leave the rotation.

    Scheduling is supervised: executor and solver failures inside a turn
    are contained, recorded in a {!Pbse_robust.Fault.log}, and charged a
    clock tick so fault loops still converge on the deadline. A state
    that faults repeatedly is quarantined (removed from its searcher)
    after [max_strikes]; a searcher that raises forfeits its whole phase
    (the rotation fails over to the remaining queues). Degenerate phase
    division (no BBVs) falls back to a single phase instead of raising. *)

type config = {
  interval_length : int option; (* BBV interval; None sizes it from a
                                   concrete pre-run of the seed *)
  intervals_target : int; (* BBVs aimed for when auto-sizing (default 120) *)
  time_period : int; (* Algorithm 3's TimePeriod *)
  phase_searcher : string; (* searcher used inside each phase *)
  mode : Pbse_phase.Phase.mode; (* BBV-only or coverage-augmented vectors *)
  dedup_seed_states : bool; (* keep earliest per fork point (paper) *)
  scheduler : string; (* scheduling policy (Pbse_sched.Scheduler.names);
                         "round-robin" is the paper's Algorithm 3,
                         "sequential" the ablation, "coverage-greedy"
                         the greedy alternative *)
  max_k : int; (* k-means upper bound (paper: 20) *)
  rng_seed : int;
  max_live : int;
  solver_budget : int;
  solver_retry_cap : int; (* upper bound for escalating solver retries *)
  confirm_bugs : bool;
  max_strikes : int; (* faults a state survives before quarantine *)
  inject : Pbse_robust.Inject.plan; (* deterministic fault injection *)
}

val default_config : config

type report = {
  config : config;
  seed_size : int;
  c_time : int; (* virtual time of the concolic step *)
  p_time : int; (* virtual time charged for phase analysis *)
  division : Pbse_phase.Phase.division;
  bbvs : Pbse_concolic.Bbv.t list;
  trace : Pbse_concolic.Trace.t; (* concrete block-entry trace *)
  seed_state_count : int; (* after mapping, dedup and verification *)
  interval_length : int; (* BBV interval actually used *)
  coverage_samples : (int * int) list; (* (virtual time, blocks covered) *)
  bugs : (Pbse_exec.Bug.t * int) list; (* bug, 1-based phase ordinal (0 = concolic) *)
  executor : Pbse_exec.Executor.t; (* for stats and coverage queries *)
  faults : Pbse_robust.Fault.log; (* contained failures, by kind *)
  quarantined : int; (* states evicted this run ([max_strikes] faults) *)
  strikes : int; (* faults charged against states this run *)
  sched_stats : Pbse_sched.Scheduler.stats; (* turns/rotations/evictions *)
  phase_stats : Pbse_telemetry.Report.phase_row list;
      (* per-phase scheduling stats in ordinal order: turns granted,
         slices run, new-cover slices, dwell time, quarantine evictions.
         Always collected (a few ints per phase). *)
}

val coverage_at : report -> int -> int
(** [coverage_at report t] — blocks covered by virtual time [t]
    (monotone interpolation of the samples). *)

val run :
  ?config:config ->
  ?quarantine:Pbse_robust.Quarantine.t ->
  Pbse_ir.Types.program ->
  seed:bytes ->
  deadline:int ->
  report
(** End-to-end pbSE on one seed. The deadline is in virtual time and
    includes the concolic and analysis steps. When telemetry is enabled
    ({!Pbse_telemetry.Telemetry.set_enabled}), the registry is reset at
    the start of the run so {!run_report} snapshots this run only.
    [quarantine] lets a caller persist quarantine records across runs
    (a new {!Pbse_robust.Quarantine.epoch} is started); by default each
    run gets a fresh quarantine. The report's [quarantined]/[strikes]
    are this run's deltas either way. *)

val run_report :
  ?meta:(string * string) list -> report -> Pbse_telemetry.Report.t
(** Assemble the structured run report: solver query/retry/escalation
    counts, executor and verification totals, per-phase turn/coverage
    stats, fault and quarantine totals, plus span and histogram
    snapshots from the telemetry registry (populated only when telemetry
    was enabled during the run). Deterministic: identical seeded runs
    yield byte-identical {!Pbse_telemetry.Report.to_json} output. *)

val select_seed : bytes list -> coverage_of:(bytes -> int) -> bytes option
(** The paper's seed-selection heuristic (§III-B4): consider the 10
    smallest seeds, pick the one with the best coverage. *)

type pool_report = {
  runs : (bytes * report) list; (* in execution order *)
  merged_coverage : int; (* union of covered blocks across runs *)
  merged_bugs : (Pbse_exec.Bug.t * int) list; (* deduplicated *)
}

val run_pool :
  ?config:config ->
  Pbse_ir.Types.program ->
  seeds:bytes list ->
  deadline:int ->
  pool_report
(** Algorithm 1's outer loop over a seed pool: seeds run smallest-first,
    each receiving an equal share of the remaining budget. One quarantine
    is threaded through every run, so fork sites that struck out under
    one seed are retired faster under later seeds. *)
