(** The pbSE driver — the paper's contribution (Algorithms 1 and 3).

    The single-run lifecycle (configuration, [run], resumable sessions,
    run reports) lives in the session layer ({!Pbse_session.Session})
    and is re-exported here verbatim, so [Driver.run] /
    [Driver.open_session] remain the engine-level entry points. What the
    driver owns is the campaign layer: {!run_pool} drives a seed pool
    through seed-level scheduling policies
    ({!Pbse_campaign.Pool_scheduler}) built on resumable
    {!type:session}s — checkpointed, resumable, optionally warmed by a
    {!Session_store} and shared-seedState-aware — and
    {!pool_run_report} renders the aggregate into the same
    [pbse-report/1] document single runs use. *)

module Session = Pbse_session.Session
module Session_store = Pbse_session.Session_store

(** {1 Configuration}

    Re-exported from {!Session}. Build one from {!default_config} with
    the [with_*] helpers:
    {[
      Driver.default_config
      |> Driver.with_concolic (fun c -> { c with time_period = 500 })
      |> Driver.with_search (fun s -> { s with scheduler = "sequential" })
    ]} *)

type concolic_config = Session.concolic_config = {
  interval_length : int option; (* BBV interval; None sizes it from a
                                   concrete pre-run of the seed *)
  intervals_target : int; (* BBVs aimed for when auto-sizing (default 120) *)
  time_period : int; (* Algorithm 3's TimePeriod; also the seed-level
                        turn quantum of pool schedulers *)
  mode : Pbse_phase.Phase.mode; (* BBV-only or coverage-augmented vectors *)
}
(** The concolic pass and phase-division inputs. *)

type search_config = Session.search_config = {
  phase_searcher : string; (* searcher used inside each phase *)
  scheduler : string; (* scheduling policy (Pbse_sched.Scheduler.names);
                         "round-robin" is the paper's Algorithm 3,
                         "sequential" the ablation, "coverage-greedy"
                         the greedy alternative, "trap-first" the
                         trap-prioritising rotation *)
  max_live : int;
  dedup_seed_states : bool; (* keep earliest per fork point (paper) *)
  max_k : int; (* k-means upper bound (paper: 20) *)
  share_seed_states : bool; (* campaign-wide seedState dedup across
                               seeds (Session.share); default false *)
}
(** State search and phase scheduling. *)

type solver_config = Session.solver_config = {
  budget : int; (* work units per query *)
  retry_cap : int; (* upper bound for escalating solver retries *)
  prefix_cap : int; (* prefix-context LRU bound (Pbse_smt.Prefix_ctx) *)
}

type robust_config = Session.robust_config = {
  confirm_bugs : bool;
  max_strikes : int; (* faults a state survives before quarantine *)
  inject : Pbse_robust.Inject.plan; (* deterministic fault injection *)
  watchdog_factor : int; (* a campaign turn spending more than
                            factor x budget records a Turn_timeout and
                            strikes its seed; 0 disables the watchdog *)
  watchdog_strikes : int; (* watchdog/crash strikes before a seed is
                             force-retired from the pool; 0 = never *)
  degrade_after : int; (* pool-level faults per degradation step: each
                          step halves the effective --jobs and the
                          solver prefix cap; 0 disables degradation *)
}

type pathcond_config = Session.pathcond_config = {
  subsumption : bool; (* block-boundary unsat-core subsumption cache *)
  loop_summaries : bool; (* closed-form counting-loop summaries *)
}
(** Path-condition layer pruning (docs/subsumption.md). Both on by
    default; both are coverage- and bug-transparent. *)

type config = Session.config = {
  concolic : concolic_config;
  search : search_config;
  solver : solver_config;
  robust : robust_config;
  pathcond : pathcond_config;
  rng_seed : int;
}

val default_config : config

val with_concolic : (concolic_config -> concolic_config) -> config -> config
val with_search : (search_config -> search_config) -> config -> config
val with_solver : (solver_config -> solver_config) -> config -> config
val with_robust : (robust_config -> robust_config) -> config -> config
val with_pathcond : (pathcond_config -> pathcond_config) -> config -> config
val with_rng_seed : int -> config -> config

val config_to_kvs : config -> (string * string) list
(** Flat [(key, value)] rendering of every config field (e.g.
    [("solver.prefix_cap", "256")]), stored in campaign snapshots so a
    resumed process rebuilds the exact configuration. *)

val config_of_kvs : (string * string) list -> (config, string) result
(** Inverse of {!config_to_kvs} over {!default_config}. Unknown keys
    are ignored (snapshot metadata carries non-config entries such as
    the target name); a malformed value for a known key is an error. *)

val interval_length_for :
  config -> Pbse_ir.Types.program -> seed:bytes -> int
(** The BBV interval the driver will use for [seed]: the configured
    [interval_length] if set, otherwise sized from a concrete pre-run so
    the run yields about [intervals_target] BBVs. *)

(** {1 Single runs} *)

type report = Session.report = {
  config : config;
  seed_size : int;
  c_time : int; (* virtual time of the concolic step *)
  p_time : int; (* virtual time charged for phase analysis *)
  division : Pbse_phase.Phase.division;
  bbvs : Pbse_concolic.Bbv.t list;
  trace : Pbse_concolic.Trace.t; (* concrete block-entry trace *)
  seed_state_count : int; (* after mapping, dedup and verification *)
  interval_length : int; (* BBV interval actually used *)
  coverage_samples : (int * int) list; (* (virtual time, blocks covered) *)
  bugs : (Pbse_exec.Bug.t * int) list; (* bug, 1-based phase ordinal (0 = concolic) *)
  executor : Pbse_exec.Executor.t; (* for stats and coverage queries *)
  faults : Pbse_robust.Fault.log; (* contained failures, by kind *)
  quarantined : int; (* states evicted this run ([max_strikes] faults) *)
  strikes : int; (* faults charged against states this run *)
  sched_stats : Pbse_sched.Scheduler.stats; (* turns/rotations/evictions *)
  phase_stats : Pbse_telemetry.Report.phase_row list;
      (* per-phase scheduling stats in ordinal order: turns granted,
         slices run, new-cover slices, dwell time, quarantine evictions.
         Always collected (a few ints per phase). *)
  registry : Pbse_telemetry.Telemetry.Registry.t;
      (* the session's instruments; {!run_report} snapshots its spans
         and histograms *)
}

val coverage_at : report -> int -> int
(** [coverage_at report t] — blocks covered by virtual time [t]
    (monotone interpolation of the samples). *)

val run :
  ?config:config ->
  ?quarantine:Pbse_robust.Quarantine.t ->
  ?runtime:Runtime.t ->
  Pbse_ir.Types.program ->
  seed:bytes ->
  deadline:int ->
  report
(** End-to-end pbSE on one seed ({!Session.run}). *)

(** {1 Resumable sessions}

    [run] is [open_session] + one [step_session] + [finish_session]. The
    split lets a caller (the campaign layer) grant a seed's engine
    budget in turns rather than one deadline: the scheduling policy's
    rotation state survives between steps, so a resumed session
    continues exactly where it paused. *)

type session = Session.t
(** One seed's engine with setup done (concolic pass, phase division,
    seeded queues) and scheduling state live. *)

val open_session :
  ?config:config ->
  ?quarantine:Pbse_robust.Quarantine.t ->
  ?runtime:Runtime.t ->
  ?reset_telemetry:bool ->
  ?share:Session.share ->
  Pbse_ir.Types.program ->
  seed:bytes ->
  deadline:int ->
  session
(** {!Session.open_session}: runs the concolic and phase-analysis steps
    (charged to the session's clock) and seeds the phase queues;
    [deadline] bounds the concolic pass only. [share] is the
    campaign-wide seedState/solver-residue table, consulted only when
    [config.search.share_seed_states] is on. *)

val step_session : session -> deadline:int -> unit
(** Phase-scheduled symbolic execution until [deadline] on the
    session's own clock (an absolute virtual time, not a delta).
    Returns early if the scheduler drains. *)

val session_time : session -> int
(** Current virtual time of the session's clock. *)

val session_drained : session -> bool
(** True when every phase queue has left the rotation; further steps
    are no-ops. *)

val session_executor : session -> Pbse_exec.Executor.t

val session_runtime : session -> Runtime.t
(** The context the session was opened with. *)

val finish_session : session -> report
(** Assemble the run report from the session's current state. The
    session stays usable; finishing again after more steps is valid. *)

val run_report :
  ?meta:(string * string) list -> report -> Pbse_telemetry.Report.t
(** Assemble the structured run report: solver query/retry/escalation
    counts, executor and verification totals, per-phase turn/coverage
    stats, fault and quarantine totals, plus span and histogram
    snapshots from the telemetry registry (populated only when telemetry
    was enabled during the run). Deterministic: identical seeded runs
    yield byte-identical {!Pbse_telemetry.Report.to_json} output. *)

val select_seed : bytes list -> coverage_of:(bytes -> int) -> bytes option
(** The paper's seed-selection heuristic (§III-B4): consider the 10
    smallest seeds, pick the one with the best coverage. *)

(** {1 Seed-pool campaigns} *)

type pool_report = {
  runs : (bytes * report) list; (* in first-turn order *)
  merged_coverage : int; (* union of covered blocks across runs *)
  merged_bugs : (Pbse_exec.Bug.t * int) list; (* deduplicated, with the
                                                 phase ordinal of the run
                                                 that first found each *)
  pool_scheduler : string; (* policy that drove the campaign *)
  seed_rows : Pbse_telemetry.Report.seed_row list; (* ordinal order,
                                                      every seed (also
                                                      never-run ones) *)
  pool_stats : Pbse_campaign.Pool_scheduler.stats;
  pool_deadline : int;
  pool_spent : int; (* virtual time actually consumed *)
  pool_rounds : int; (* campaign rounds executed *)
  pool_parallel_turns : int; (* turns in rounds that planned >= 2 turns *)
  pool_merge_blocks : int; (* blocks added to the union at merge barriers *)
  pool_merge_bugs : int; (* deduplicated bugs harvested at merge barriers *)
  pool_merge_registries : int; (* session registries folded into the pool's *)
  pool_faults : Pbse_robust.Fault.log;
      (* pool-level faults: turn watchdog kills before a session opened,
         snapshot corruption, resume divergence *)
  pool_registry : Pbse_telemetry.Telemetry.Registry.t;
      (* campaign-wide instruments: pool counters plus every session
         registry, merged in ordinal order *)
  pool_steal_count : int;
      (* turns executed by a non-home pool worker. Wall-clock-side
         diagnostic: depends on [jobs] and scheduling luck, so it is
         deliberately absent from the byte-identical pool-report JSON
         (the bench CSV and CLI surface it) *)
  pool_pinned_turns : int; (* turns executed by their slot's home worker *)
  pool_id_refills : int;
      (* expression id-block refills during the campaign
         ({!Pbse_smt.Expr.id_block_refills}) *)
  pool_shared_seedstates : int;
      (* seedStates skipped because another session of this campaign
         already published their fork point ({!Session.share_stats}
         hits, as a delta over this campaign). Diagnostic like the
         above: 0 unless [search.share_seed_states] is on *)
}

type checkpoint
(** Where and how often a campaign checkpoints itself
    (docs/robustness.md). *)

val checkpoint :
  ?meta:(string * string) list ->
  ?halt_after:int ->
  ?note_ms:(int -> unit) ->
  path:string ->
  every:int ->
  unit ->
  checkpoint
(** Checkpoint to [path] every [every] campaign turns (clamped to at
    least 1), atomically (tmp + rename, previous checkpoint rotated to
    [path].bak). [meta] is carried verbatim in the snapshot — callers
    store what they need to reconstruct the campaign (the CLI stores the
    target name). [halt_after] stops the campaign at the first round
    barrier once that many rounds have run, after writing a final
    checkpoint — a deterministic in-process "kill" for tests and the
    crash-resume bench. [note_ms] receives each write's serialisation
    cost in milliseconds. *)

val campaign_fingerprint :
  ?config:config ->
  ?scheduler:string ->
  ?lease:int ->
  ?registry_enabled:bool ->
  target:string ->
  seeds:bytes list ->
  deadline:int ->
  unit ->
  string
(** The digest under which {!run_pool} memoises (and the serve layer
    persists) a campaign: target, config fingerprint, pool policy,
    lease, deadline, telemetry enablement and the seed digests
    (size-ordered). [jobs] is deliberately excluded — reports are
    jobs-invariant, so any width may reuse any width's campaign.
    Defaults mirror {!run_pool}'s ([registry_enabled] — whether the
    campaign's runtime registry records telemetry — defaults to true,
    the serve layer's case). *)

val run_pool :
  ?config:config ->
  ?scheduler:string ->
  ?runtime:Runtime.t ->
  ?jobs:int ->
  ?lease:int ->
  ?checkpoint:checkpoint ->
  ?resume:Pbse_campaign.Snapshot.t * string option ->
  ?preload_faults:(Pbse_robust.Fault.kind * string) list ->
  ?pool:Pbse_campaign.Domain_pool.t ->
  ?store:pool_report Session_store.t ->
  ?target:string ->
  ?round_wrap:((unit -> unit) -> unit) ->
  Pbse_ir.Types.program ->
  seeds:bytes list ->
  deadline:int ->
  pool_report
(** Algorithm 1's outer loop over a seed pool, generalised into a
    scheduled campaign run in deterministic rounds. Seeds are ordered
    smallest-first and become slots of the named seed-level policy
    ({!Pbse_campaign.Pool_scheduler.names}; default
    {!Pbse_campaign.Pool_scheduler.default}, the paper's equal-share
    smallest-first pass). Each round the policy plans one turn per live
    seed; the turns execute on up to [jobs] domains (default 1) via
    {!Pbse_campaign.Campaign.run_rounds} — a persistent, domain-affine
    worker pool: each slot is homed on one domain for the whole
    campaign, with work-stealing only when a worker runs dry — each
    seed's session under its own private {!Runtime} (registry, RNG,
    quarantine, arena), and results merge at the round barrier in plan
    order: coverage into a global block union, bugs deduplicated on
    (location, kind) and attributed to the seed whose turn first
    surfaced them. [lease] (default 1) grants each planned turn up to
    that many consecutive same-budget sub-turns, run unbroken on the
    slot's worker and merged sub-turn by sub-turn at the barrier, so
    barrier and merge overhead amortises (docs/parallelism.md). When
    the campaign ends, per-session registries fold into [runtime]'s
    registry (default: a fresh runtime over the process-global
    registry) in ordinal order. Every field of the result — and the
    byte-exact {!pool_run_report} JSON — is identical for every [jobs]
    value at any fixed [lease] (docs/parallelism.md); the
    [pool_steal_count]/[pool_pinned_turns]/[pool_id_refills]/
    [pool_shared_seedstates] diagnostics are the deliberate exception.
    Raises [Invalid_argument] on an unknown policy name.

    Robustness (docs/robustness.md): [checkpoint] snapshots the campaign
    at round barriers; [resume] reinstates a snapshot — with an optional
    fallback detail recorded as a [Snapshot_corrupt] fault when the
    primary checkpoint was bad — and replays each opened session's
    granted-turn ledger, so kill-and-resume reproduces the uninterrupted
    run's report byte for byte (use {!resume_pool} rather than passing
    [resume] directly). A turn overrunning [watchdog_factor] x budget,
    an injected turn kill ([crash=R]) or a contained turn exception
    strikes its seed toward forced retirement; accumulated faults step
    the effective [jobs] and prefix cap down without aborting the
    campaign. [preload_faults] enters faults on the pool record before
    the first round — the CLI uses it when a campaign restarts fresh
    because every checkpoint was unusable.

    Session layer (docs/architecture.md): [pool] runs the campaign on a
    caller-owned {!Pbse_campaign.Domain_pool} (left running afterwards;
    by default the campaign creates and shuts down its own), and
    [round_wrap] brackets each executed round (dispatch through merges)
    — together they let a server multiplex several campaigns onto one
    shared pool with round-granular fair sharing. [store] memoises the
    finished campaign's sessions and pool report under a campaign
    fingerprint ([target], config fingerprint, policy, lease, deadline,
    telemetry enablement and the seed digests; [jobs] deliberately
    excluded — reports are jobs-invariant), and an identical later call
    is served from the store: live sessions are re-finished instead of
    re-running concolic bootstrap, with byte-identical report JSON.
    Checkpointing, resuming or preloading faults disables the memo for
    that call (durability features describe one concrete execution).
    With [config.search.share_seed_states] on, every session of the
    campaign publishes and consults a shared seedState table (the
    store's campaign-spanning one when [store] is given): fork points
    already published by another session are scheduled once
    campaign-wide, and finished sessions' solver prefix residue seeds
    fresh ones. *)

val load_snapshot :
  path:string -> (Pbse_campaign.Snapshot.t * string option, string) result
(** Load a checkpoint for resumption, degrading gracefully: a corrupt or
    version-mismatched [path] falls back to [path].bak (the previous
    checkpoint), returning the primary's failure message alongside so
    the resumed campaign records it. [Error] only when no usable
    checkpoint exists at either location. *)

val resume_pool :
  ?jobs:int ->
  ?lease:int ->
  ?checkpoint:checkpoint ->
  ?fallback:string ->
  Pbse_campaign.Snapshot.t ->
  Pbse_ir.Types.program ->
  seeds:bytes list ->
  (pool_report, string) result
(** Continue a checkpointed campaign: rebuild the config and pool
    scheduler from the snapshot's metadata ([Error] if the metadata is
    malformed or names an unknown policy), then {!run_pool} with the
    snapshot's own deadline, replaying up to the checkpointed barrier
    and running the remainder. [jobs] defaults to the snapshot's
    recorded width and [lease] to its recorded lease — a snapshot
    written under multi-turn leases must resume under the same lease or
    the remaining rounds would plan different work units and diverge
    from the uninterrupted run. [fallback] is the failure message of a
    corrupt primary checkpoint this snapshot replaced
    ({!load_snapshot}). Telemetry enablement is the caller's
    responsibility (the snapshot records it in the ["telemetry"]
    metadata key). *)

val pool_run_report :
  ?meta:(string * string) list -> pool_report -> Pbse_telemetry.Report.t
(** Aggregate campaign report in the same [pbse-report/1] document
    single runs use, so [--report], [report --diff] and [--fail-on]
    work unchanged on pool runs: [pool.*] metrics (seeds, runs, turns,
    rotations, retirements, deadline, spent), merged [coverage.blocks]
    and deduplicated [bugs.*], the element-wise sum of every per-run
    scalar metric family, and a [seeds] section of per-seed rows. The
    pool scheduler's name is recorded in the metadata. Deterministic:
    identical seeded campaigns yield byte-identical JSON. *)
