(** [pbse serve] — a long-running campaign server over a Unix-domain
    socket (docs/architecture.md).

    One process holds one persistent {!Pbse_campaign.Domain_pool} and
    one {!Pbse_session.Session_store}; each client connection carries
    one line-delimited JSON campaign request, runs as a
    {!Driver.run_pool} campaign multiplexed onto the shared pool with
    fair-share round scheduling (a ticket arbiter passed as
    [round_wrap], so concurrent campaigns interleave at round
    granularity), and streams back a [pbse-report/1] document
    byte-identical to what [pbse run TARGET --pool --report] writes for
    the same parameters. Repeated requests hit the store's campaign
    memo and are served from live sessions.

    {2 Protocol}

    Request — one JSON object on one line:
    {v
    {"target": "grep-like", "deadline": 120000, "lease": 2}
    v}
    Fields: [target] (required), [deadline] (virtual time, default
    120000 = one paper-hour), [pool_scheduler], [scheduler] (the
    phase-level policy), [jobs] (clamped to the server's pool width),
    [lease], [share] (bool, campaign-wide seedState sharing).

    Response — one header line, then (on success) exactly NBYTES of
    report JSON:
    {v
    pbse-serve/1 ok NBYTES
    {"schema":"pbse-report/1",...}
    v}
    or [pbse-serve/1 error MESSAGE]. *)

type stats = {
  sv_clients : int; (* connections accepted *)
  sv_requests : int; (* campaigns served successfully *)
  sv_errors : int; (* error responses written *)
  sv_store_hits : int; (* session-store hits over the server's life *)
  sv_store_misses : int;
  sv_store_evictions : int;
}

val serve :
  socket:string ->
  ?jobs:int ->
  ?store_cap:int ->
  ?stop:bool Atomic.t ->
  lookup:(string -> (Pbse_ir.Types.program * bytes list) option) ->
  unit ->
  stats
(** Bind [socket] (an existing file there is replaced), accept clients
    until [stop] becomes true — the accept loop polls it every ~200ms,
    so a signal handler setting it shuts the server down cleanly — then
    drain in-flight requests, release the domain pool, unlink the
    socket and return the lifetime {!stats}. [jobs] (default 2) sizes
    the shared domain pool; [store_cap] bounds the session store.
    [lookup] resolves a request's target name to its program and benign
    seed pool (the CLI passes the target registry). Each client is
    handled on its own thread; every campaign runs under a private
    runtime and telemetry registry, so requests share only the domain
    pool (arbitrated per round) and the mutex-guarded store. *)

val request : socket:string -> string -> (string, string) result
(** One client exchange: send [line] (a newline is appended if missing)
    to the server at [socket], return the report JSON on success or the
    server's error message. Used by [pbse request] and the serve smoke
    tests. *)
