(** [pbse serve] — a long-running campaign server speaking
    [pbse-serve/2] (docs/serve.md) over Unix-domain and/or TCP
    endpoints.

    One process holds one persistent {!Pbse_campaign.Domain_pool} and
    one {!Pbse_session.Session_store}; each client connection carries
    one campaign request, passes an admission arbiter (global in-flight
    cap plus per-client token-bucket quotas — rejected requests get a
    structured [over-capacity] error with [retry_after] seconds instead
    of silently queueing), runs as a {!Driver.run_pool} campaign
    multiplexed onto the shared pool with fair-share round scheduling,
    and streams back a [pbse-report/1] document byte-identical to what
    [pbse run TARGET --pool --report] writes for the same parameters —
    over every transport. Repeated requests hit the store's campaign
    memo; with [store_file], rendered responses also persist across a
    server restart (reloaded on boot, so a deploy keeps the cache warm).

    The wire protocol lives in {!Pbse_serve.Protocol}: v2 requests are
    typed envelopes with structured error codes and optional progress
    frames at round barriers; the v1 one-liner remains served for old
    clients (deprecated). Shutdown is immediate: the accept loop blocks
    on a self-pipe ({!Pbse_serve.Transport.control}), not a poll. *)

type stats = {
  sv_clients : int;  (** connections accepted *)
  sv_requests : int;  (** campaigns served successfully *)
  sv_errors : int;  (** error responses written *)
  sv_rejections : int;  (** admission rejections (subset of errors) *)
  sv_store_hits : int;  (** session-store hits over the server's life *)
  sv_store_misses : int;
  sv_store_evictions : int;
  sv_store_reloads : int;  (** residues reloaded from [store_file] at boot *)
}

val serve :
  endpoints:Pbse_serve.Transport.endpoint list ->
  ?jobs:int ->
  ?store_cap:int ->
  ?store_file:string ->
  ?max_inflight:int ->
  ?quota_burst:int ->
  ?quota_refill:float ->
  ?control:Pbse_serve.Transport.control ->
  lookup:(string -> (Pbse_ir.Types.program * bytes list) option) ->
  unit ->
  stats
(** Bind every endpoint (a Unix socket path replaces any existing file;
    TCP listeners set [SO_REUSEADDR]), accept clients until the
    [control]'s {!Pbse_serve.Transport.request_stop} fires — a signal
    handler calling it wakes the accept loop immediately via the
    self-pipe — then drain in-flight requests, persist the store (with
    [store_file]), release the domain pool, unlink Unix sockets and
    return the lifetime {!stats}.

    [jobs] (default 2) sizes the shared domain pool; [store_cap] bounds
    the session store. [store_file] names a [pbse-store/1] file:
    rendered response bodies are reloaded from it at boot (counted in
    [sv_store_reloads]; a corrupt file degrades to a cold boot) and
    checkpointed after every successful request and at shutdown.
    [max_inflight] (0 = unlimited) caps concurrently admitted
    campaigns; [quota_burst]/[quota_refill] configure each client's
    token bucket (see {!Pbse_serve.Admission}). [lookup] resolves a
    request's target name to its program and benign seed pool (the CLI
    passes the target registry).

    Each client is handled on its own thread; every campaign runs under
    a private runtime and telemetry registry, so requests share only
    the domain pool (arbitrated per round), the admission arbiter and
    the mutex-guarded store. A client that disconnects mid-campaign
    stops receiving frames but its campaign completes — the shared pool
    stays healthy. Raises [Invalid_argument] on an empty endpoint
    list. *)

(** {2 Client} *)

type error_info = {
  err_code : string;
      (** a {!Pbse_serve.Protocol.error_code} label, or ["connect"] /
          ["transport"] for client-side failures, or ["error"] for a
          bare v1 server error *)
  err_message : string;
  err_retry_after : int option;  (** seconds; [over-capacity] only *)
}

val request :
  ?timeout:float ->
  ?on_progress:(int -> unit) ->
  connect:Pbse_serve.Transport.endpoint ->
  string ->
  (string, error_info) result
(** One client exchange: send [line] (a newline is appended if missing)
    to the server at [connect], return the report bytes or a structured
    error. [timeout] (seconds) bounds the connect and every read.
    [on_progress] receives each progress frame's round number as it
    arrives. The response dialect is auto-detected; if a v2 envelope is
    answered by a v1-only server (a v1 error to a line it cannot have
    understood), the request is downgraded to the v1 one-liner and
    retried once on a fresh connection. Used by [pbse request], the
    serve tests and the bench drills. *)
