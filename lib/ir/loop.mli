(** Natural-loop detection over a single function's intra-procedural CFG.

    Works on terminator successor edges only — call edges (which
    {!Cfg.build} adds for the distance heuristics) are not loop edges.
    Loops are discovered via dominators: a back edge is an edge [u -> h]
    where [h] dominates [u]; the natural loop of [h] is [h] plus every
    block that can reach some latch [u] without passing through [h].
    Back edges sharing a header are merged into one loop.

    Irreducible control flow — a retreating edge in reverse post-order
    whose target does {e not} dominate its source — has no unique header
    and is reported separately; consumers (the loop-summary pass) must
    refuse to summarize any loop touching an irreducible region. *)

type loop = {
  header : int; (* block index within the function *)
  latches : int list; (* sources of back edges into [header], ascending *)
  body : bool array; (* block index -> member (includes the header) *)
}

type analysis = {
  loops : loop list; (* ascending header index *)
  irreducible : int list; (* targets of retreating non-back edges, ascending *)
}

val analyze : Types.func -> analysis

val idoms : Types.func -> int array
(** Immediate dominators: [idoms f].(b) is the immediate dominator of
    block [b], [-1] for the entry block and for blocks unreachable from
    it. Exposed for tests. *)

val dominates : int array -> int -> int -> bool
(** [dominates idoms a b]: does [a] dominate [b] (reflexively), under
    the immediate-dominator array from {!idoms}? *)
