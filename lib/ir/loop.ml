open Types

type loop = {
  header : int;
  latches : int list;
  body : bool array;
}

type analysis = {
  loops : loop list;
  irreducible : int list;
}

(* Intra-procedural successors: terminator edges only. Call edges never
   participate in loop structure. *)
let block_succs f =
  Array.map (fun b -> Cfg.term_successors b.term) f.blocks

let preds_of succs n =
  let preds = Array.make n [] in
  Array.iteri (fun u -> List.iter (fun v -> preds.(v) <- u :: preds.(v))) succs;
  preds

(* Reverse post-order over blocks reachable from the entry (block 0).
   Returns the order (entry first) and each block's position in it
   (max_int for unreachable blocks). *)
let reverse_postorder succs n =
  let seen = Array.make n false in
  let order = ref [] in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter dfs succs.(u);
      order := u :: !order
    end
  in
  if n > 0 then dfs 0;
  let order = !order in
  let pos = Array.make n max_int in
  List.iteri (fun i u -> pos.(u) <- i) order;
  (order, pos)

(* Cooper–Harvey–Kennedy iterative immediate dominators. *)
let idoms f =
  let n = Array.length f.blocks in
  let succs = block_succs f in
  let preds = preds_of succs n in
  let order, pos = reverse_postorder succs n in
  let idom = Array.make n (-1) in
  let rec intersect a b =
    if a = b then a
    else if pos.(a) > pos.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  if n > 0 then idom.(0) <- 0;
  let changed = ref (n > 0) in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if idom.(p) < 0 then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None preds.(b)
          in
          match new_idom with
          | Some d when idom.(b) <> d ->
            idom.(b) <- d;
            changed := true
          | _ -> ()
        end)
      order
  done;
  if n > 0 then idom.(0) <- -1;
  idom

let dominates idom a b =
  let rec walk b = b = a || (idom.(b) >= 0 && walk idom.(b)) in
  walk b

let analyze f =
  let n = Array.length f.blocks in
  let succs = block_succs f in
  let preds = preds_of succs n in
  let _, pos = reverse_postorder succs n in
  let idom = idoms f in
  let reachable b = b = 0 || idom.(b) >= 0 in
  (* classify edges: a retreating edge u -> v (pos v <= pos u) is a back
     edge when v dominates u, otherwise it witnesses irreducibility *)
  let back_edges = ref [] in
  let irreducible = ref [] in
  Array.iteri
    (fun u vs ->
      if reachable u then
        List.iter
          (fun v ->
            if pos.(v) <= pos.(u) then
              if dominates idom v u then back_edges := (u, v) :: !back_edges
              else if not (List.mem v !irreducible) then irreducible := v :: !irreducible)
          vs)
    succs;
  (* natural loop of header h: h plus reverse reachability from each
     latch, never crossing h *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (u, h) ->
      let latches = try Hashtbl.find by_header h with Not_found -> [] in
      Hashtbl.replace by_header h (u :: latches))
    !back_edges;
  let loops =
    Hashtbl.fold
      (fun h latches acc ->
        let body = Array.make n false in
        body.(h) <- true;
        let rec pull u =
          if not body.(u) then begin
            body.(u) <- true;
            List.iter pull preds.(u)
          end
        in
        List.iter pull latches;
        { header = h; latches = List.sort_uniq compare latches; body } :: acc)
      by_header []
  in
  {
    loops = List.sort (fun a b -> compare a.header b.header) loops;
    irreducible = List.sort_uniq compare !irreducible;
  }
