(** Whole-program control-flow graph over basic blocks.

    Blocks are given dense global identifiers so that coverage sets,
    BBVs and searcher heuristics can use plain arrays. Edges are the
    terminator successors of each block plus an edge from any block
    containing a call to the callee's entry block — the approximation the
    md2u/covnew searchers need for distance-to-uncovered estimates. *)

type t

val term_successors : Types.terminator -> int list
(** Intra-function successor block indices of a terminator — the raw
    edges, without the call edges [build] adds. Loop analysis
    ({!Loop}) works on these. *)

val build : Types.program -> t

val program : t -> Types.program

val nblocks : t -> int
(** Total number of basic blocks in the program. *)

val id : t -> int -> int -> int
(** [id t func_index block_index] is the global block id. *)

val of_id : t -> int -> int * int
(** Inverse of [id]. *)

val label : t -> int -> string
(** [label t gid] is ["func/.n"], for reports. *)

val successors : t -> int -> int list

val reachable_from : t -> int -> bool array
(** Blocks reachable from the given global id, following CFG and call
    edges. *)

val distances_to : t -> targets:(int -> bool) -> int array
(** [distances_to t ~targets] gives, for every block, the minimum number
    of CFG edges to reach any block satisfying [targets] ([max_int] when
    none is reachable). This is the static metric behind KLEE's
    "minimum distance to uncovered" heuristics. *)
