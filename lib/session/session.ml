module Executor = Pbse_exec.Executor
module Searcher = Pbse_exec.Searcher
module Coverage = Pbse_exec.Coverage
module State = Pbse_exec.State
module Bug = Pbse_exec.Bug
module Concolic = Pbse_concolic.Concolic
module Bbv = Pbse_concolic.Bbv
module Trace = Pbse_concolic.Trace
module Phase = Pbse_phase.Phase
module Phase_queue = Pbse_sched.Phase_queue
module Scheduler = Pbse_sched.Scheduler
module Vclock = Pbse_util.Vclock
module Rng = Pbse_util.Rng
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Quarantine = Pbse_robust.Quarantine
module Solver = Pbse_smt.Solver
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report

(* --- configuration --------------------------------------------------------- *)

type concolic_config = {
  interval_length : int option; (* None: size from a concrete pre-run *)
  intervals_target : int; (* BBVs aimed for when auto-sizing *)
  time_period : int;
  mode : Phase.mode;
}

type search_config = {
  phase_searcher : string;
  scheduler : string;
  max_live : int;
  dedup_seed_states : bool;
  max_k : int;
  share_seed_states : bool; (* consult/publish the campaign share table *)
}

type solver_config = {
  budget : int;
  retry_cap : int;
  prefix_cap : int;
}

type robust_config = {
  confirm_bugs : bool;
  max_strikes : int;
  inject : Inject.plan;
  watchdog_factor : int;
  watchdog_strikes : int;
  degrade_after : int;
}

type pathcond_config = {
  subsumption : bool; (* block-boundary unsat-core pruning *)
  loop_summaries : bool; (* template loop summaries *)
}

type config = {
  concolic : concolic_config;
  search : search_config;
  solver : solver_config;
  robust : robust_config;
  pathcond : pathcond_config;
  rng_seed : int;
}

let default_config =
  {
    concolic =
      {
        interval_length = None;
        intervals_target = 120;
        time_period = 10_000;
        mode = Phase.Bbv_with_coverage;
      };
    search =
      {
        phase_searcher = "default";
        scheduler = "round-robin";
        max_live = 8192;
        dedup_seed_states = true;
        max_k = 20;
        share_seed_states = false;
      };
    solver = { budget = 60_000; retry_cap = 480_000; prefix_cap = 16_384 };
    robust =
      {
        confirm_bugs = true;
        max_strikes = 4;
        inject = Inject.none;
        watchdog_factor = 4;
        watchdog_strikes = 3;
        degrade_after = 4;
      };
    pathcond = { subsumption = true; loop_summaries = true };
    rng_seed = 1;
  }

let with_concolic f config = { config with concolic = f config.concolic }
let with_search f config = { config with search = f config.search }
let with_solver f config = { config with solver = f config.solver }
let with_robust f config = { config with robust = f config.robust }
let with_pathcond f config = { config with pathcond = f config.pathcond }
let with_rng_seed rng_seed config = { config with rng_seed }

(* Flat (key, value) rendering of a config, for campaign snapshots: a
   resumed process must rebuild the exact config or replay diverges. *)
let config_to_kvs config =
  [
    ( "concolic.interval_length",
      match config.concolic.interval_length with
      | Some l -> string_of_int l
      | None -> "auto" );
    ("concolic.intervals_target", string_of_int config.concolic.intervals_target);
    ("concolic.time_period", string_of_int config.concolic.time_period);
    ( "concolic.mode",
      match config.concolic.mode with
      | Phase.Bbv_only -> "bbv"
      | Phase.Bbv_with_coverage -> "bbv+cov" );
    ("search.phase_searcher", config.search.phase_searcher);
    ("search.scheduler", config.search.scheduler);
    ("search.max_live", string_of_int config.search.max_live);
    ("search.dedup_seed_states", if config.search.dedup_seed_states then "1" else "0");
    ("search.max_k", string_of_int config.search.max_k);
    ("search.share_seed_states", if config.search.share_seed_states then "1" else "0");
    ("solver.budget", string_of_int config.solver.budget);
    ("solver.retry_cap", string_of_int config.solver.retry_cap);
    ("solver.prefix_cap", string_of_int config.solver.prefix_cap);
    ("robust.confirm_bugs", if config.robust.confirm_bugs then "1" else "0");
    ("robust.max_strikes", string_of_int config.robust.max_strikes);
    ("robust.inject", Inject.to_string config.robust.inject);
    ("robust.watchdog_factor", string_of_int config.robust.watchdog_factor);
    ("robust.watchdog_strikes", string_of_int config.robust.watchdog_strikes);
    ("robust.degrade_after", string_of_int config.robust.degrade_after);
    (* snapshots from before the pathcond layer lack these keys and
       resume with the defaults (both enabled) *)
    ("pathcond.subsumption", if config.pathcond.subsumption then "1" else "0");
    ("pathcond.loop_summaries", if config.pathcond.loop_summaries then "1" else "0");
    ("rng_seed", string_of_int config.rng_seed);
  ]

let config_of_kvs kvs =
  (* keys that aren't config fields (snapshot meta like the target name
     or scheduler) pass through untouched; bad values are errors *)
  let int_field key v k =
    match int_of_string_opt v with
    | Some i -> Ok (k i)
    | None -> Error (Printf.sprintf "bad integer %S for %s" v key)
  in
  let bool_field key v k =
    match v with
    | "1" | "true" -> Ok (k true)
    | "0" | "false" -> Ok (k false)
    | _ -> Error (Printf.sprintf "bad flag %S for %s" v key)
  in
  List.fold_left
    (fun acc (key, v) ->
      Result.bind acc (fun config ->
          let concolic f = with_concolic f config in
          let search f = with_search f config in
          let solver f = with_solver f config in
          let robust f = with_robust f config in
          let pathcond f = with_pathcond f config in
          match key with
          | "concolic.interval_length" ->
            if v = "auto" then Ok (concolic (fun c -> { c with interval_length = None }))
            else
              int_field key v (fun i ->
                  concolic (fun c -> { c with interval_length = Some i }))
          | "concolic.intervals_target" ->
            int_field key v (fun i -> concolic (fun c -> { c with intervals_target = i }))
          | "concolic.time_period" ->
            int_field key v (fun i -> concolic (fun c -> { c with time_period = i }))
          | "concolic.mode" -> (
            match v with
            | "bbv" -> Ok (concolic (fun c -> { c with mode = Phase.Bbv_only }))
            | "bbv+cov" ->
              Ok (concolic (fun c -> { c with mode = Phase.Bbv_with_coverage }))
            | _ -> Error (Printf.sprintf "bad mode %S (want bbv|bbv+cov)" v))
          | "search.phase_searcher" ->
            Ok (search (fun s -> { s with phase_searcher = v }))
          | "search.scheduler" -> Ok (search (fun s -> { s with scheduler = v }))
          | "search.max_live" ->
            int_field key v (fun i -> search (fun s -> { s with max_live = i }))
          | "search.dedup_seed_states" ->
            bool_field key v (fun b -> search (fun s -> { s with dedup_seed_states = b }))
          | "search.max_k" ->
            int_field key v (fun i -> search (fun s -> { s with max_k = i }))
          | "search.share_seed_states" ->
            bool_field key v (fun b -> search (fun s -> { s with share_seed_states = b }))
          | "solver.budget" ->
            int_field key v (fun i -> solver (fun s -> { s with budget = i }))
          | "solver.retry_cap" ->
            int_field key v (fun i -> solver (fun s -> { s with retry_cap = i }))
          | "solver.prefix_cap" ->
            int_field key v (fun i -> solver (fun s -> { s with prefix_cap = i }))
          | "robust.confirm_bugs" ->
            bool_field key v (fun b -> robust (fun r -> { r with confirm_bugs = b }))
          | "robust.max_strikes" ->
            int_field key v (fun i -> robust (fun r -> { r with max_strikes = i }))
          | "robust.inject" ->
            Result.map
              (fun plan -> robust (fun r -> { r with inject = plan }))
              (Inject.parse v)
          | "robust.watchdog_factor" ->
            int_field key v (fun i -> robust (fun r -> { r with watchdog_factor = i }))
          | "robust.watchdog_strikes" ->
            int_field key v (fun i -> robust (fun r -> { r with watchdog_strikes = i }))
          | "robust.degrade_after" ->
            int_field key v (fun i -> robust (fun r -> { r with degrade_after = i }))
          | "pathcond.subsumption" ->
            bool_field key v (fun b -> pathcond (fun p -> { p with subsumption = b }))
          | "pathcond.loop_summaries" ->
            bool_field key v (fun b -> pathcond (fun p -> { p with loop_summaries = b }))
          | "rng_seed" -> int_field key v (fun i -> with_rng_seed i config)
          | _ -> Ok config))
    (Ok default_config) kvs

let config_fingerprint config =
  Digest.to_hex
    (Digest.string
       (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) (config_to_kvs config))))

let interval_length_for config prog ~seed =
  match config.concolic.interval_length with
  | Some l -> l
  | None ->
    let probe = Pbse_exec.Concrete.run prog ~input:seed ~fuel:20_000_000 in
    max 50 (probe.Pbse_exec.Concrete.steps / max 1 config.concolic.intervals_target)

(* --- cross-session sharing ------------------------------------------------- *)

(* The share table a campaign pool (or a session store) threads through
   every [open_session]: seedStates are published under their
   path-prefix key so identical fork points reached by several seeds are
   scheduled once, and solver prefix-context residue (arena-free model
   hints keyed by the structural fingerprint of the path) carries
   witnesses from finished sessions into fresh ones. Everything behind
   the mutex is plain ints/lists, so concurrent opens on pool domains
   are safe; the publication order still depends on turn timing, which
   is why sharing is config-gated off by default (byte-identity across
   [--jobs] widths is only contractual with sharing off). *)
type share = {
  sh_mutex : Mutex.t;
  sh_seedstates : (int, unit) Hashtbl.t; (* path-prefix key -> published *)
  sh_hints : (int, (int * int) list) Hashtbl.t; (* prefix fp -> model bytes *)
  mutable sh_published : int;
  mutable sh_hits : int;
}

let share_create () =
  {
    sh_mutex = Mutex.create ();
    sh_seedstates = Hashtbl.create 256;
    sh_hints = Hashtbl.create 256;
    sh_published = 0;
    sh_hits = 0;
  }

let share_stats sh =
  Mutex.protect sh.sh_mutex (fun () -> (sh.sh_published, sh.sh_hits))

let share_publish_hints sh hints =
  Mutex.protect sh.sh_mutex (fun () ->
      List.iter
        (fun (fp, bindings) ->
          if not (Hashtbl.mem sh.sh_hints fp) then Hashtbl.replace sh.sh_hints fp bindings)
        hints)

let share_hints sh =
  Mutex.protect sh.sh_mutex (fun () ->
      Hashtbl.fold (fun fp bindings acc -> (fp, bindings) :: acc) sh.sh_hints [])

(* Path-prefix key of a seedState: the chronological block-entry trace up
   to its fork point, folded with the fork's global block id. Two seeds
   whose concrete runs agree up to a fork point produce the same key for
   it (plot indices are assigned in first-execution order, identical
   along identical prefixes). *)
let seedstate_prefix_key trace (ss : Concolic.seed_state) =
  let mix h x = (h * 0x01000193) lxor x in
  let h =
    List.fold_left
      (fun h (p : Trace.point) ->
        if p.Trace.vtime <= ss.Concolic.fork_vtime then mix (mix h p.Trace.vtime) p.Trace.bb
        else h)
      0x811c9dc5 (Trace.points trace)
  in
  mix h ss.Concolic.fork_gid

(* --- run reports ----------------------------------------------------------- *)

type report = {
  config : config;
  seed_size : int;
  c_time : int;
  p_time : int;
  division : Phase.division;
  bbvs : Bbv.t list;
  trace : Trace.t;
  seed_state_count : int;
  interval_length : int;
  coverage_samples : (int * int) list;
  bugs : (Bug.t * int) list;
  executor : Executor.t;
  faults : Fault.log;
  quarantined : int;
  strikes : int;
  sched_stats : Scheduler.stats;
  phase_stats : Report.phase_row list; (* scheduling stats, ordinal order *)
  registry : Telemetry.Registry.t; (* the session's instruments *)
}

let coverage_at report t =
  let rec scan best = function
    | [] -> best
    | (vt, cov) :: rest -> if vt <= t then scan cov rest else best
  in
  scan 0 report.coverage_samples

let make_phase_searcher config rng exec =
  match Searcher.by_name config.search.phase_searcher with
  | Some make -> make (Rng.split rng) (Executor.cfg exec) (Executor.coverage exec)
  | None ->
    invalid_arg ("Session: unknown phase searcher " ^ config.search.phase_searcher)

let make_scheduler config =
  match Scheduler.by_name config.search.scheduler with
  | Some make -> make
  | None -> invalid_arg ("Session: unknown scheduler " ^ config.search.scheduler)

let map_seed_states config ~interval_length ?share ?shared_hits ~trace division bbvs
    (seed_states : Concolic.seed_state list) =
  (* phase id for each seedState via its fork interval *)
  let tagged =
    List.filter_map
      (fun (ss : Concolic.seed_state) ->
        let interval = ss.Concolic.fork_vtime / interval_length in
        match Phase.phase_of_interval division bbvs interval with
        | Some pid ->
          ss.Concolic.state.State.phase <- pid;
          Some ss
        | None -> None)
      seed_states
  in
  let tagged =
    if not config.search.dedup_seed_states then tagged
    else begin
      (* keep the earliest seedState per (phase, fork location) *)
      let seen = Hashtbl.create 256 in
      List.filter
        (fun (ss : Concolic.seed_state) ->
          let key = (ss.Concolic.state.State.phase, ss.Concolic.fork_gid) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        tagged
    end
  in
  match share with
  | None -> tagged
  | Some sh ->
    (* campaign-wide dedup: a fork point another session already
       published (same concrete path prefix, same fork location) is
       that session's to explore; this one spends its budget elsewhere *)
    Mutex.protect sh.sh_mutex (fun () ->
        List.filter
          (fun ss ->
            let key = seedstate_prefix_key trace ss in
            if Hashtbl.mem sh.sh_seedstates key then begin
              sh.sh_hits <- sh.sh_hits + 1;
              (match shared_hits with Some c -> Telemetry.incr c | None -> ());
              false
            end
            else begin
              Hashtbl.replace sh.sh_seedstates key ();
              sh.sh_published <- sh.sh_published + 1;
              true
            end)
          tagged)

(* The shared engine loop: Algorithm 3 under supervision, generic over
   the scheduling policy. Which phase runs next, for how long, and when
   a phase leaves the rotation are all [sched]'s decisions; this loop
   only executes turns. Executor and solver failures inside a turn are
   contained and recorded; a faulting state costs at worst itself
   (quarantine after [max_strikes]) and a broken searcher costs its
   phase (fail-over via [evict]), never the run. *)
let schedule_phases ~registry ~clock ~deadline ~sched ~quarantine exec note_progress =
  let faults = Executor.faults exec in
  let est = Executor.stats exec in
  let now () = Vclock.now clock in
  let tm_turn = Telemetry.Registry.span registry "driver.turn" in
  let rec turns () =
    if Vclock.now clock >= deadline then ()
    else
      match sched.Scheduler.select () with
      | None -> ()
      | Some { Scheduler.queue = q; budget = turn_budget } ->
        let turn_start = Vclock.now clock in
        let cover_start = q.Phase_queue.new_cover in
        (* executor-stat marks: the deltas over this turn are attributed
           to the phase's report row *)
        let subsumed_start = est.Executor.subsumed_states in
        let summarized_start = est.Executor.loop_summaries in
        let searcher = q.Phase_queue.searcher in
        q.Phase_queue.turns <- q.Phase_queue.turns + 1;
        let queue_failed = ref false in
        let quarantine_strike st =
          if Quarantine.strike quarantine ~site:st.State.fork_gid st.State.id then begin
            q.Phase_queue.quarantined <- q.Phase_queue.quarantined + 1;
            searcher.Searcher.remove st
          end
        in
        let contain st exn =
          (* charge a tick so fault loops always advance toward the deadline *)
          Vclock.advance clock 1;
          Fault.record faults ~detail:(Fault.normalize_exn exn)
            ~vtime:(Vclock.now clock) Fault.Exec_exception;
          quarantine_strike st
        in
        let rec drain () =
          if Vclock.now clock >= deadline then ()
          else
            match
              try `Selected (searcher.Searcher.select ())
              with exn -> `Searcher_error exn
            with
            | `Searcher_error exn ->
              (* a broken searcher forfeits its whole phase *)
              Vclock.advance clock 1;
              Fault.record faults ~detail:(Fault.normalize_exn exn)
                ~vtime:(Vclock.now clock) Fault.Exec_exception;
              queue_failed := true
            | `Selected None -> ()
            | `Selected (Some st) when st.State.needs_verify -> (
              match try `V (Executor.verify exec st) with exn -> `E exn with
              | `V Executor.Verified -> slice st
              | `V Executor.Infeasible_state ->
                (* lazily discovered infeasible seedState *)
                searcher.Searcher.remove st;
                drain ()
              | `V Executor.Undecided ->
                (* the solver gave up; the state stays schedulable and the
                   next attempt escalates the query budget — unless it has
                   struck out *)
                quarantine_strike st;
                drain ()
              | `E exn ->
                contain st exn;
                drain ())
            | `Selected (Some st) -> slice st
        and slice st =
          let slice_summaries = est.Executor.loop_summaries in
          match try `S (Executor.run_slice exec st) with exn -> `E exn with
          | `E exn ->
            contain st exn;
            drain ()
          | `S slice ->
            q.Phase_queue.slices <- q.Phase_queue.slices + 1;
            let covered_new = st.State.fresh_cover in
            if covered_new then q.Phase_queue.new_cover <- q.Phase_queue.new_cover + 1;
            (match slice with
             | Executor.Running -> ()
             | Executor.Forked children ->
               List.iter
                 (fun (child : State.t) ->
                   child.State.phase <- q.Phase_queue.pid;
                   searcher.Searcher.fork ~parent:st child)
                 children
             | Executor.Finished _ -> searcher.Searcher.remove st);
            note_progress q.Phase_queue.ordinal;
            (* stay in the phase while under budget or still progressing:
               new coverage always counts, and a trap phase that just
               leapt a loop via a summary consults that before retreating *)
            let progressed =
              Phase.turn_progress ~trap:q.Phase_queue.trap ~fresh_cover:covered_new
                ~summaries_applied:(est.Executor.loop_summaries - slice_summaries)
            in
            if Vclock.now clock - turn_start <= turn_budget || progressed then drain ()
        in
        Telemetry.with_span tm_turn ~now drain;
        q.Phase_queue.subsumed <-
          q.Phase_queue.subsumed + (est.Executor.subsumed_states - subsumed_start);
        q.Phase_queue.summarized <-
          q.Phase_queue.summarized + (est.Executor.loop_summaries - summarized_start);
        let elapsed = Vclock.now clock - turn_start in
        q.Phase_queue.dwell <- q.Phase_queue.dwell + elapsed;
        Telemetry.observe q.Phase_queue.turn_dwell elapsed;
        if !queue_failed || Phase_queue.size q = 0 then
          sched.Scheduler.evict q ~failed:!queue_failed
        else
          sched.Scheduler.credit q
            ~elapsed:(Vclock.now clock - turn_start)
            ~new_cover:(q.Phase_queue.new_cover - cover_start);
        turns ()
  in
  turns ()

(* --- resumable sessions ---------------------------------------------------- *)

(* A session is one seed's engine with its setup (concolic pass, phase
   division, seeded queues) done and its scheduling state live, so the
   campaign layer can grant it turn-granular budget instead of one
   deadline: open once, step any number of times, finish into the same
   report [run] produces. *)
type t = {
  s_config : config;
  s_runtime : Runtime.t;
  s_seed : bytes;
  s_clock : Vclock.t;
  s_exec : Executor.t;
  s_sched : Scheduler.t;
  s_quarantine : Quarantine.t;
  s_evicted0 : int;
  s_strikes0 : int;
  s_c_time : int;
  s_p_time : int;
  s_division : Phase.division;
  s_bbvs : Bbv.t list;
  s_trace : Trace.t;
  s_seed_state_count : int;
  s_interval_length : int;
  s_queues : Phase_queue.t list;
  s_samples : (int * int) list ref;
  s_bug_phases : (int * string, int) Hashtbl.t;
  s_note_progress : int -> unit;
}

let open_session ?(config = default_config) ?quarantine ?runtime
    ?(reset_telemetry = true) ?share prog ~seed ~deadline =
  (* validate the policy name before the expensive concolic step *)
  let scheduler_factory = make_scheduler config in
  (* a caller-supplied quarantine persists across runs: per-state strikes
     reset with the epoch, site records and totals carry over *)
  (match quarantine with Some q -> Quarantine.epoch q | None -> ());
  let rt =
    match runtime with
    | Some rt -> (
      match quarantine with
      | Some q -> { rt with Runtime.quarantine = q }
      | None -> rt)
    | None ->
      Runtime.create ~rng_seed:config.rng_seed ~inject:config.robust.inject
        ?quarantine ~max_strikes:config.robust.max_strikes
        ~prefix_cap:config.solver.prefix_cap ()
  in
  (* the session's expressions intern into its own arena from here on *)
  Runtime.activate rt;
  let registry = rt.Runtime.registry in
  (* instrumented runs snapshot the registry into their report, so start
     each run from zero; uninstrumented runs skip the reset too. A pool
     campaign resets once for the whole campaign instead
     ([reset_telemetry = false] here). *)
  if reset_telemetry && Telemetry.Registry.enabled registry then
    Telemetry.Registry.reset registry;
  let tm_concolic = Telemetry.Registry.span registry "driver.concolic" in
  let tm_phase_analysis = Telemetry.Registry.span registry "driver.phase_analysis" in
  let shared_hits = Telemetry.Registry.counter registry "session.seedstate_shared_hits" in
  let clock = Vclock.create () in
  let exec =
    Executor.create ~max_live:config.search.max_live ~solver_budget:config.solver.budget
      ~solver_retry_cap:config.solver.retry_cap
      ~solver_prefix_cap:config.solver.prefix_cap
      ~confirm_bugs:config.robust.confirm_bugs ~inject:rt.Runtime.inject
      ~subsumption:config.pathcond.subsumption
      ~loop_summaries:config.pathcond.loop_summaries ~registry ~clock prog ~input:seed
  in
  (* prefix-context residue published by finished sessions: arena-free
     model hints, installed before any query is issued *)
  (match share with
   | Some sh when config.search.share_seed_states -> (
     match share_hints sh with
     | [] -> ()
     | hints -> Solver.import_prefix_hints (Executor.solver exec) hints)
   | _ -> ());
  (* every stochastic choice below (k-means restarts, searcher splits)
     derives from the runtime's RNG, itself seeded from config.rng_seed *)
  let rng = rt.Runtime.rng in
  (* step 1: concolic execution. The BBV interval is sized from a cheap
     concrete pre-run so every seed yields a comparable number of BBVs
     (the paper gathers over wall-clock intervals; runs lasting longer
     simply produce more vectors). *)
  let interval_length = interval_length_for config prog ~seed in
  let indexer = Trace.indexer () in
  let now () = Vclock.now clock in
  let concolic =
    Telemetry.with_span tm_concolic ~now (fun () ->
        Concolic.run ~interval_length ~deadline exec indexer)
  in
  let c_time = concolic.Concolic.c_time in
  (* step 2: phase analysis; charge virtual time proportional to the work *)
  let p_start = Vclock.now clock in
  let division =
    Telemetry.with_span tm_phase_analysis ~now (fun () ->
        let d =
          Phase.divide ~registry ~mode:config.concolic.mode ~max_k:config.search.max_k
            (Rng.split rng) concolic.Concolic.bbvs
        in
        Vclock.advance clock
          (50 * List.length concolic.Concolic.bbvs * config.search.max_k / 20);
        d)
  in
  let p_time = Vclock.now clock - p_start + 1 in
  (match concolic.Concolic.bbvs with
   | [] ->
     Fault.record (Executor.faults exec) ~detail:"no BBVs; one-phase fallback"
       ~vtime:(Vclock.now clock) Fault.Degenerate_phase
   | _ :: _ -> ());
  (* step 3: map seedStates into phases. Feasibility is checked lazily,
     when a seedState is first scheduled — exactly the paper's "lazy pass
     through": the concolic step recorded fork points without exploring
     or deciding them. *)
  let share = if config.search.share_seed_states then share else None in
  let seed_states =
    map_seed_states config ~interval_length ?share ~shared_hits
      ~trace:concolic.Concolic.trace division concolic.Concolic.bbvs
      concolic.Concolic.seed_states
  in
  (* build phase queues in first-appearance order *)
  let queue_list =
    List.mapi
      (fun i (p : Phase.phase) ->
        Phase_queue.create ~registry ~ordinal:(i + 1) ~pid:p.Phase.pid
          ~trap:p.Phase.trap
          (make_phase_searcher config rng exec))
      division.Phase.phases
  in
  List.iter
    (fun (ss : Concolic.seed_state) ->
      match
        List.find_opt
          (fun q -> q.Phase_queue.pid = ss.Concolic.state.State.phase)
          queue_list
      with
      | Some q -> Phase_queue.seed q ss.Concolic.state
      | None -> ())
    seed_states;
  let sched =
    scheduler_factory ~registry ~time_period:config.concolic.time_period
      (List.filter (fun q -> Phase_queue.size q > 0) queue_list)
  in
  Executor.set_live_counter exec (fun () ->
      List.fold_left
        (fun acc q -> acc + Phase_queue.size q)
        0
        (sched.Scheduler.remaining ()));
  (* bookkeeping for coverage samples and bug-to-phase attribution *)
  let samples = ref [ (Vclock.now clock, Coverage.count (Executor.coverage exec)) ] in
  let last_cov = ref (Coverage.count (Executor.coverage exec)) in
  let bug_phases : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
  let known_bugs = ref 0 in
  let note_progress current_ordinal =
    let cov = Coverage.count (Executor.coverage exec) in
    if cov <> !last_cov then begin
      last_cov := cov;
      samples := (Vclock.now clock, cov) :: !samples
    end;
    let bugs = Executor.bugs exec in
    let n = List.length bugs in
    if n > !known_bugs then begin
      (* attribute by dedup key, not list position: only bugs whose key is
         genuinely new belong to the current phase *)
      List.iter
        (fun bug ->
          let key = Bug.dedup_key bug in
          if not (Hashtbl.mem bug_phases key) then
            Hashtbl.replace bug_phases key current_ordinal)
        bugs;
      known_bugs := n
    end
  in
  note_progress 0;
  let quarantine = rt.Runtime.quarantine in
  {
    s_config = config;
    s_runtime = rt;
    s_seed = seed;
    s_clock = clock;
    s_exec = exec;
    s_sched = sched;
    s_quarantine = quarantine;
    s_evicted0 = Quarantine.evicted quarantine;
    s_strikes0 = Quarantine.total_strikes quarantine;
    s_c_time = c_time;
    s_p_time = p_time;
    s_division = division;
    s_bbvs = concolic.Concolic.bbvs;
    s_trace = concolic.Concolic.trace;
    s_seed_state_count = List.length seed_states;
    s_interval_length = interval_length;
    s_queues = queue_list;
    s_samples = samples;
    s_bug_phases = bug_phases;
    s_note_progress = note_progress;
  }

let step_session s ~deadline =
  (* step 4: phase-scheduled symbolic execution, up to [deadline] on the
     session's own clock; resumable — the scheduling policy keeps its
     rotation state between steps. Re-activate the session's arena: the
     campaign layer may step the same session from a different domain on
     every round. *)
  Runtime.activate s.s_runtime;
  schedule_phases ~registry:s.s_runtime.Runtime.registry ~clock:s.s_clock ~deadline
    ~sched:s.s_sched ~quarantine:s.s_quarantine s.s_exec s.s_note_progress

let session_runtime s = s.s_runtime
let session_config s = s.s_config
let session_seed s = s.s_seed

let session_time s = Vclock.now s.s_clock
let session_drained s = s.s_sched.Scheduler.drained ()
let session_executor s = s.s_exec

let session_bug_phase s bug =
  match Hashtbl.find_opt s.s_bug_phases (Bug.dedup_key bug) with
  | Some o -> o
  | None -> 0

(* Contain a real exception escaping the engine: the engine is
   deterministic in virtual time, so replaying the same turn after a
   resume re-raises and re-contains the same fault. *)
let step_contained s ~deadline =
  try
    step_session s ~deadline;
    `Stepped
  with exn ->
    Fault.record (Executor.faults s.s_exec) ~detail:(Fault.normalize_exn exn)
      ~vtime:(Vclock.now s.s_clock) Fault.Exec_exception;
    `Failed

let record_crash s ~detail =
  (* an injected kill charged one tick and touched nothing else *)
  Vclock.advance s.s_clock 1;
  Fault.record (Executor.faults s.s_exec) ~detail ~vtime:(Vclock.now s.s_clock)
    Fault.Exec_exception

let export_prefix_hints s = Solver.export_prefix_hints (Executor.solver s.s_exec)

let finish_session s =
  let bugs =
    List.map (fun bug -> (bug, session_bug_phase s bug)) (Executor.bugs s.s_exec)
  in
  {
    config = s.s_config;
    seed_size = Bytes.length s.s_seed;
    c_time = s.s_c_time;
    p_time = s.s_p_time;
    division = s.s_division;
    bbvs = s.s_bbvs;
    trace = s.s_trace;
    seed_state_count = s.s_seed_state_count;
    interval_length = s.s_interval_length;
    coverage_samples = List.rev !(s.s_samples);
    bugs;
    executor = s.s_exec;
    faults = Executor.faults s.s_exec;
    quarantined = Quarantine.evicted s.s_quarantine - s.s_evicted0;
    strikes = Quarantine.total_strikes s.s_quarantine - s.s_strikes0;
    sched_stats = s.s_sched.Scheduler.stats;
    phase_stats = List.map Phase_queue.stat_row s.s_queues;
    registry = s.s_runtime.Runtime.registry;
  }

let run ?(config = default_config) ?quarantine ?runtime prog ~seed ~deadline =
  let s = open_session ~config ?quarantine ?runtime prog ~seed ~deadline in
  step_session s ~deadline;
  finish_session s

(* The counter manifest: the single authoritative list of every scalar
   metric family a run report carries — name plus how to harvest it from
   the per-run stats structs. CLI reports, serve frames (which flow
   through [run_report]) and the bench runs.csv columns all derive from
   this one list, so a metric added here cannot drift between surfaces.
   Construction order is fixed, so two identical seeded runs serialise
   byte-identically; the aggregate pool report sums these same families
   across runs. *)
let scalar_metric_specs : (string * (report -> int)) list =
  let sst r = Solver.stats (Executor.solver r.executor) in
  let est r = Executor.stats r.executor in
  let sum f r = List.fold_left (fun acc p -> acc + f p) 0 r.phase_stats in
  [
    ("seed.bytes", fun r -> r.seed_size);
    ("run.c_time", fun r -> r.c_time);
    ("run.p_time", fun r -> r.p_time);
    ("run.interval_length", fun r -> r.interval_length);
    ("run.seed_states", fun r -> r.seed_state_count);
    ("phase.count", fun r -> r.division.Phase.k);
    ("phase.traps", fun r -> r.division.Phase.trap_count);
    ("phase.turns", sum (fun p -> p.Report.turns));
    ("phase.slices", sum (fun p -> p.Report.slices));
    ("phase.new_cover", sum (fun p -> p.Report.new_cover));
    ("phase.dwell", sum (fun p -> p.Report.dwell));
    ( "phase.trap_dwell",
      sum (fun p -> if p.Report.trap then p.Report.dwell else 0) );
    ("sched.turns", fun r -> r.sched_stats.Scheduler.turns);
    ("sched.rotations", fun r -> r.sched_stats.Scheduler.rotations);
    ("sched.evictions", fun r -> r.sched_stats.Scheduler.evictions);
    ("sched.failovers", fun r -> r.sched_stats.Scheduler.failovers);
    ("coverage.blocks", fun r -> Coverage.count (Executor.coverage r.executor));
    ("bugs.total", fun r -> List.length r.bugs);
    ( "bugs.confirmed",
      fun r ->
        List.length (List.filter (fun ((b : Bug.t), _) -> b.Bug.confirmed) r.bugs) );
    ("exec.states", fun r -> Executor.state_count r.executor);
    ("exec.instructions", fun r -> (est r).Executor.instructions);
    ("exec.slices", fun r -> (est r).Executor.slices);
    ("exec.forks", fun r -> (est r).Executor.forks);
    ("exec.dropped_forks", fun r -> (est r).Executor.dropped_forks);
    ("exec.cow_copies", fun r -> (est r).Executor.cow_copies);
    ("exec.term_exit", fun r -> (est r).Executor.term_exit);
    ("exec.term_bug", fun r -> (est r).Executor.term_bug);
    ("exec.term_abort", fun r -> (est r).Executor.term_abort);
    ("exec.term_infeasible", fun r -> (est r).Executor.term_infeasible);
    ("exec.concretized_addrs", fun r -> (est r).Executor.concretized_addrs);
    ("verify.verified", fun r -> (est r).Executor.verify_verified);
    ("verify.infeasible", fun r -> (est r).Executor.verify_infeasible);
    ("verify.undecided", fun r -> (est r).Executor.verify_undecided);
    ("solver.queries", fun r -> (sst r).Solver.queries);
    ("solver.sat", fun r -> (sst r).Solver.sat);
    ("solver.unsat", fun r -> (sst r).Solver.unsat);
    ("solver.unknown", fun r -> (sst r).Solver.unknown);
    ("solver.cache_hits", fun r -> (sst r).Solver.cache_hits);
    ("solver.hint_hits", fun r -> (sst r).Solver.hint_hits);
    ("solver.prefix_hits", fun r -> (sst r).Solver.prefix_hits);
    ("solver.prefix_builds", fun r -> (sst r).Solver.prefix_builds);
    ("solver.prefix_model_hits", fun r -> (sst r).Solver.prefix_model_hits);
    ("solver.search_nodes", fun r -> (sst r).Solver.search_nodes);
    ("solver.work", fun r -> (sst r).Solver.work);
    ("solver.retries", fun r -> (sst r).Solver.retries);
    ("solver.escalations", fun r -> (sst r).Solver.escalations);
    ("solver.retry_resolved", fun r -> (sst r).Solver.retry_resolved);
    ("solver.prefix_evictions", fun r -> (sst r).Solver.prefix_evictions);
    ("smt.subsumed_states", fun r -> (est r).Executor.subsumed_states);
    ("smt.interpolant_hits", fun r -> (est r).Executor.interpolant_hits);
    ("smt.interpolant_misses", fun r -> (est r).Executor.interpolant_misses);
    ("pathcond.loop_summaries", fun r -> (est r).Executor.loop_summaries);
    ("pathcond.summary_fallbacks", fun r -> (est r).Executor.summary_fallbacks);
    ("quarantine.evicted", fun r -> r.quarantined);
    ("quarantine.strikes", fun r -> r.strikes);
  ]
  @ List.map
      (fun kind ->
        ("fault." ^ Fault.label kind, fun r -> Fault.count r.faults kind))
      Fault.all

let scalar_metric_names = List.map fst scalar_metric_specs

let scalar_metrics report =
  List.map (fun (name, harvest) -> (name, harvest report)) scalar_metric_specs

let span_metrics registry =
  List.concat_map
    (fun (name, count, total) ->
      [ ("span." ^ name ^ ".count", count); ("span." ^ name ^ ".total", total) ])
    (Telemetry.Registry.snapshot_spans registry)

(* Assemble the structured run report (docs/telemetry.md). The scalar
   metrics are authoritative whether or not the registry was enabled,
   while spans and histograms come from the registry snapshot and are
   only populated on instrumented runs. *)
let run_report ?(meta = []) report =
  {
    Report.meta;
    metrics = scalar_metrics report @ span_metrics report.registry;
    phases = report.phase_stats;
    seeds = [];
    histograms = Telemetry.Registry.snapshot_histograms report.registry;
  }
