module Telemetry = Pbse_telemetry.Telemetry
module Json = Pbse_telemetry.Json

(* Live sessions are cached under (target, seed digest, config
   fingerprint); whole campaigns additionally memoise their residue (the
   caller's aggregate result) under a campaign fingerprint whose members
   point back into the session table. Eviction is strictly LRU over
   sessions; a campaign residue is only servable while every member
   session is still live, so evicting a session invalidates the
   campaigns that used it. All operations are mutex-guarded — the serve
   layer hits one store from many client threads. *)

type entry = {
  e_session : Session.t;
  mutable e_last : int; (* LRU tick of the last find/put *)
}

type 'r campaign = {
  c_members : (string * bytes) list; (* (session key, seed) in run order *)
  c_residue : 'r;
}

(* A rendered residue: the final response bytes of a finished campaign,
   keyed by its campaign fingerprint. Unlike live sessions these are
   plain strings, so they survive save/load across a server restart. *)
type rendered = {
  r_body : string;
  mutable r_last : int; (* shares the store's LRU tick *)
}

type 'r t = {
  mutex : Mutex.t;
  sessions : (string, entry) Hashtbl.t;
  campaigns : (string, 'r campaign) Hashtbl.t;
  residues : (string, rendered) Hashtbl.t;
  cap : int;
  residue_cap : int;
  share : Session.share; (* campaign-spanning seedState/hint share *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable reloads : int; (* residues reloaded from a store file *)
  ctr_hits : Telemetry.counter;
  ctr_misses : Telemetry.counter;
  ctr_evictions : Telemetry.counter;
  ctr_reloads : Telemetry.counter;
}

let default_cap = 32

let create ?(cap = default_cap) ?residue_cap ?registry () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  let cap = max 1 cap in
  {
    mutex = Mutex.create ();
    sessions = Hashtbl.create 64;
    campaigns = Hashtbl.create 16;
    residues = Hashtbl.create 16;
    cap;
    residue_cap =
      (match residue_cap with Some c -> max 1 c | None -> max 64 (2 * cap));
    share = Session.share_create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    reloads = 0;
    ctr_hits = Telemetry.Registry.counter registry "session.store_hits";
    ctr_misses = Telemetry.Registry.counter registry "session.store_misses";
    ctr_evictions = Telemetry.Registry.counter registry "session.store_evictions";
    ctr_reloads = Telemetry.Registry.counter registry "session.store_reloads";
  }

let session_key ~target ~seed ~config_fp =
  target ^ "|" ^ Digest.to_hex (Digest.bytes seed) ^ "|" ^ config_fp

let touch t e =
  t.tick <- t.tick + 1;
  e.e_last <- t.tick

let note_hit t =
  t.hits <- t.hits + 1;
  Telemetry.incr t.ctr_hits

let note_miss t =
  t.misses <- t.misses + 1;
  Telemetry.incr t.ctr_misses

(* Evict strictly least-recently-used sessions until under cap, and drop
   every campaign residue that referenced an evicted member (it can no
   longer be served whole). O(n) scans — the store caps at tens of
   sessions, not thousands. *)
let enforce_cap t =
  while Hashtbl.length t.sessions > t.cap do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, last) when last <= e.e_last -> acc
          | _ -> Some (key, e.e_last))
        t.sessions None
    in
    match victim with
    | None -> ()
    | Some (key, _) ->
      Hashtbl.remove t.sessions key;
      t.evictions <- t.evictions + 1;
      Telemetry.incr t.ctr_evictions;
      let stale =
        Hashtbl.fold
          (fun fp c acc ->
            if List.exists (fun (k, _) -> k = key) c.c_members then fp :: acc else acc)
          t.campaigns []
      in
      List.iter (Hashtbl.remove t.campaigns) stale
  done

let find_session t key =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.sessions key with
      | Some e ->
        touch t e;
        note_hit t;
        Some e.e_session
      | None ->
        note_miss t;
        None)

let put_session_locked t key session =
  (match Hashtbl.find_opt t.sessions key with
   | Some e -> touch t e
   | None ->
     let e = { e_session = session; e_last = 0 } in
     touch t e;
     Hashtbl.replace t.sessions key e);
  enforce_cap t

let put_session t key session =
  Mutex.protect t.mutex (fun () -> put_session_locked t key session)

let find_campaign t ~fingerprint =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.campaigns fingerprint with
      | None ->
        note_miss t;
        None
      | Some c ->
        let live =
          List.map
            (fun (key, seed) ->
              match Hashtbl.find_opt t.sessions key with
              | Some e -> Some (seed, e)
              | None -> None)
            c.c_members
        in
        if List.for_all Option.is_some live then begin
          let members =
            List.map
              (function
                | Some (seed, e) ->
                  touch t e;
                  note_hit t;
                  (seed, e.e_session)
                | None -> assert false)
              live
          in
          Some (members, c.c_residue)
        end
        else begin
          (* a member was evicted since; the memo can't be served whole *)
          Hashtbl.remove t.campaigns fingerprint;
          note_miss t;
          None
        end)

let put_campaign t ~fingerprint ~sessions residue =
  Mutex.protect t.mutex (fun () ->
      List.iter (fun (key, _, session) -> put_session_locked t key session) sessions;
      Hashtbl.replace t.campaigns fingerprint
        {
          c_members = List.map (fun (key, seed, _) -> (key, seed)) sessions;
          c_residue = residue;
        };
      (* members evicted while inserting (cap smaller than the campaign)
         make the memo unservable; drop it rather than cache a stub *)
      let whole =
        List.for_all (fun (key, _, _) -> Hashtbl.mem t.sessions key) sessions
      in
      if not whole then Hashtbl.remove t.campaigns fingerprint)

(* --- rendered residues (restart-persistent) --------------------------------

   The serve layer records every successful response body here under its
   campaign fingerprint. Lookups count through the same hit/miss
   counters as sessions — a residue hit after a restart is exactly the
   "warm cache survived the deploy" signal the CI drill gates on. *)

let enforce_residue_cap t =
  while Hashtbl.length t.residues > t.residue_cap do
    let victim =
      Hashtbl.fold
        (fun fp r acc ->
          match acc with
          | Some (_, last) when last <= r.r_last -> acc
          | _ -> Some (fp, r.r_last))
        t.residues None
    in
    match victim with
    | None -> ()
    | Some (fp, _) ->
      Hashtbl.remove t.residues fp;
      t.evictions <- t.evictions + 1;
      Telemetry.incr t.ctr_evictions
  done

let find_residue t ~fingerprint =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.residues fingerprint with
      | Some r ->
        t.tick <- t.tick + 1;
        r.r_last <- t.tick;
        note_hit t;
        Some r.r_body
      | None ->
        note_miss t;
        None)

let put_residue_locked t fingerprint body =
  (match Hashtbl.find_opt t.residues fingerprint with
   | Some r ->
     t.tick <- t.tick + 1;
     r.r_last <- t.tick
   | None ->
     t.tick <- t.tick + 1;
     Hashtbl.replace t.residues fingerprint { r_body = body; r_last = t.tick });
  enforce_residue_cap t

let put_residue t ~fingerprint body =
  Mutex.protect t.mutex (fun () -> put_residue_locked t fingerprint body)

(* --- store files (pbse-store/1) --------------------------------------------

   Same file discipline as Pbse_campaign.Snapshot (which lib/session
   cannot depend on): a versioned JSON document carrying an FNV-1a-64
   checksum over the rendered payload, written atomically via tmp +
   rename with the previous file rotated to [path].bak. *)

let store_schema = "pbse-store/1"

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "fnv1a64:%016Lx" !h

let residues_snapshot t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold (fun fp r acc -> (fp, r.r_last, r.r_body) :: acc) t.residues [])
  |> List.sort (fun (a, la, _) (b, lb, _) ->
         match Int.compare la lb with 0 -> String.compare a b | c -> c)

let save t ~path =
  let entries =
    List.map
      (fun (fp, _, body) ->
        Json.Obj [ ("fingerprint", Json.Str fp); ("body", Json.Str body) ])
      (residues_snapshot t)
  in
  let payload = Json.Obj [ ("entries", Json.List entries) ] in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str store_schema);
        ("checksum", Json.Str (fnv1a64 (Json.to_string payload)));
        ("payload", payload);
      ]
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  if Sys.file_exists path then begin
    let bak = path ^ ".bak" in
    if Sys.file_exists bak then Sys.remove bak;
    Sys.rename path bak
  end;
  Sys.rename tmp path

let parse_store text =
  match Json.parse text with
  | Error e -> Error ("corrupt store file: " ^ e)
  | Ok json -> (
    match Option.bind (Json.member "schema" json) Json.to_str with
    | None -> Error "store file missing \"schema\" field"
    | Some s when s <> store_schema ->
      Error (Printf.sprintf "store schema %S (want %S)" s store_schema)
    | Some _ -> (
      match
        ( Option.bind (Json.member "checksum" json) Json.to_str,
          Json.member "payload" json )
      with
      | None, _ -> Error "store file missing \"checksum\" field"
      | _, None -> Error "store file missing \"payload\" field"
      | Some recorded, Some payload ->
        let actual = fnv1a64 (Json.to_string payload) in
        if recorded <> actual then
          Error
            (Printf.sprintf "store checksum mismatch (recorded %s, computed %s)"
               recorded actual)
        else
          let entries =
            Option.bind (Json.member "entries" payload) Json.to_list
            |> Option.value ~default:[]
          in
          let parsed =
            List.filter_map
              (fun e ->
                match
                  ( Option.bind (Json.member "fingerprint" e) Json.to_str,
                    Option.bind (Json.member "body" e) Json.to_str )
                with
                | Some fp, Some body -> Some (fp, body)
                | _ -> None)
              entries
          in
          if List.length parsed <> List.length entries then
            Error "store file has a malformed entry"
          else Ok parsed))

let load t ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
    match parse_store text with
    | Error e -> Error e
    | Ok entries ->
      Mutex.protect t.mutex (fun () ->
          List.iter
            (fun (fp, body) ->
              put_residue_locked t fp body;
              t.reloads <- t.reloads + 1;
              Telemetry.incr t.ctr_reloads)
            entries);
      Ok (List.length entries))

let share t = t.share
let hits t = Mutex.protect t.mutex (fun () -> t.hits)
let misses t = Mutex.protect t.mutex (fun () -> t.misses)
let evictions t = Mutex.protect t.mutex (fun () -> t.evictions)
let reloads t = Mutex.protect t.mutex (fun () -> t.reloads)
let size t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.sessions)
let residue_size t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.residues)
