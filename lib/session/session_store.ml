module Telemetry = Pbse_telemetry.Telemetry

(* Live sessions are cached under (target, seed digest, config
   fingerprint); whole campaigns additionally memoise their residue (the
   caller's aggregate result) under a campaign fingerprint whose members
   point back into the session table. Eviction is strictly LRU over
   sessions; a campaign residue is only servable while every member
   session is still live, so evicting a session invalidates the
   campaigns that used it. All operations are mutex-guarded — the serve
   layer hits one store from many client threads. *)

type entry = {
  e_session : Session.t;
  mutable e_last : int; (* LRU tick of the last find/put *)
}

type 'r campaign = {
  c_members : (string * bytes) list; (* (session key, seed) in run order *)
  c_residue : 'r;
}

type 'r t = {
  mutex : Mutex.t;
  sessions : (string, entry) Hashtbl.t;
  campaigns : (string, 'r campaign) Hashtbl.t;
  cap : int;
  share : Session.share; (* campaign-spanning seedState/hint share *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  ctr_hits : Telemetry.counter;
  ctr_misses : Telemetry.counter;
  ctr_evictions : Telemetry.counter;
}

let default_cap = 32

let create ?(cap = default_cap) ?registry () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  {
    mutex = Mutex.create ();
    sessions = Hashtbl.create 64;
    campaigns = Hashtbl.create 16;
    cap = max 1 cap;
    share = Session.share_create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    ctr_hits = Telemetry.Registry.counter registry "session.store_hits";
    ctr_misses = Telemetry.Registry.counter registry "session.store_misses";
    ctr_evictions = Telemetry.Registry.counter registry "session.store_evictions";
  }

let session_key ~target ~seed ~config_fp =
  target ^ "|" ^ Digest.to_hex (Digest.bytes seed) ^ "|" ^ config_fp

let touch t e =
  t.tick <- t.tick + 1;
  e.e_last <- t.tick

let note_hit t =
  t.hits <- t.hits + 1;
  Telemetry.incr t.ctr_hits

let note_miss t =
  t.misses <- t.misses + 1;
  Telemetry.incr t.ctr_misses

(* Evict strictly least-recently-used sessions until under cap, and drop
   every campaign residue that referenced an evicted member (it can no
   longer be served whole). O(n) scans — the store caps at tens of
   sessions, not thousands. *)
let enforce_cap t =
  while Hashtbl.length t.sessions > t.cap do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, last) when last <= e.e_last -> acc
          | _ -> Some (key, e.e_last))
        t.sessions None
    in
    match victim with
    | None -> ()
    | Some (key, _) ->
      Hashtbl.remove t.sessions key;
      t.evictions <- t.evictions + 1;
      Telemetry.incr t.ctr_evictions;
      let stale =
        Hashtbl.fold
          (fun fp c acc ->
            if List.exists (fun (k, _) -> k = key) c.c_members then fp :: acc else acc)
          t.campaigns []
      in
      List.iter (Hashtbl.remove t.campaigns) stale
  done

let find_session t key =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.sessions key with
      | Some e ->
        touch t e;
        note_hit t;
        Some e.e_session
      | None ->
        note_miss t;
        None)

let put_session_locked t key session =
  (match Hashtbl.find_opt t.sessions key with
   | Some e -> touch t e
   | None ->
     let e = { e_session = session; e_last = 0 } in
     touch t e;
     Hashtbl.replace t.sessions key e);
  enforce_cap t

let put_session t key session =
  Mutex.protect t.mutex (fun () -> put_session_locked t key session)

let find_campaign t ~fingerprint =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.campaigns fingerprint with
      | None ->
        note_miss t;
        None
      | Some c ->
        let live =
          List.map
            (fun (key, seed) ->
              match Hashtbl.find_opt t.sessions key with
              | Some e -> Some (seed, e)
              | None -> None)
            c.c_members
        in
        if List.for_all Option.is_some live then begin
          let members =
            List.map
              (function
                | Some (seed, e) ->
                  touch t e;
                  note_hit t;
                  (seed, e.e_session)
                | None -> assert false)
              live
          in
          Some (members, c.c_residue)
        end
        else begin
          (* a member was evicted since; the memo can't be served whole *)
          Hashtbl.remove t.campaigns fingerprint;
          note_miss t;
          None
        end)

let put_campaign t ~fingerprint ~sessions residue =
  Mutex.protect t.mutex (fun () ->
      List.iter (fun (key, _, session) -> put_session_locked t key session) sessions;
      Hashtbl.replace t.campaigns fingerprint
        {
          c_members = List.map (fun (key, seed, _) -> (key, seed)) sessions;
          c_residue = residue;
        };
      (* members evicted while inserting (cap smaller than the campaign)
         make the memo unservable; drop it rather than cache a stub *)
      let whole =
        List.for_all (fun (key, _, _) -> Hashtbl.mem t.sessions key) sessions
      in
      if not whole then Hashtbl.remove t.campaigns fingerprint)

let share t = t.share
let hits t = Mutex.protect t.mutex (fun () -> t.hits)
let misses t = Mutex.protect t.mutex (fun () -> t.misses)
let evictions t = Mutex.protect t.mutex (fun () -> t.evictions)
let size t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.sessions)
