(** A cache of live {!Session.t}s keyed by (target, seed digest, config
    fingerprint), with strict LRU eviction — so repeated campaigns over
    the same seeds resume warm sessions instead of re-running concolic
    bootstrap — plus a campaign-level memo: a whole campaign's sessions
    and residue (the caller's aggregate result, ['r] — the driver stores
    its pool report) can be recalled in one lookup while every member
    session is still live.

    Alongside the live caches sits a restart-persistent layer: rendered
    campaign {e residues} (final response bodies as plain strings, keyed
    by campaign fingerprint) that {!save}/{!load} carry across a server
    restart as a checksummed [pbse-store/1] document — so a deploy does
    not flush the warm cache.

    Telemetry: hit/miss/evict/reload totals are exposed directly and
    mirrored into the [session.store_hits] / [session.store_misses] /
    [session.store_evictions] / [session.store_reloads] counters of the
    registry given at {!create}. All operations are mutex-guarded; one
    store may be shared by concurrent server clients. *)

type 'r t

val create :
  ?cap:int ->
  ?residue_cap:int ->
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  unit ->
  'r t
(** [cap] (default 32, clamped to at least 1) bounds the number of live
    sessions; the least-recently-used session beyond it is evicted, and
    any campaign memo referencing an evicted session is dropped with it.
    [residue_cap] (default [max 64 (2 * cap)]) separately bounds the
    rendered-residue cache, LRU likewise. [registry] (default the
    process-global one) receives the [session.store_*] counters. *)

val session_key : target:string -> seed:bytes -> config_fp:string -> string
(** The cache key of one session: target name, seed digest and
    {!Session.config_fingerprint} — a config change can never alias a
    cached session. *)

val find_session : 'r t -> string -> Session.t option
(** Lookup (counts a hit or miss, touches LRU order). *)

val put_session : 'r t -> string -> Session.t -> unit
(** Insert or refresh; may evict the least-recently-used session. *)

val find_campaign : 'r t -> fingerprint:string -> ((bytes * Session.t) list * 'r) option
(** Recall a memoised campaign: its sessions in run order (each counted
    as a hit and LRU-touched) and its residue — served only while every
    member session is live; a partially-evicted memo is dropped and
    counted as one miss. *)

val put_campaign :
  'r t -> fingerprint:string -> sessions:(string * bytes * Session.t) list -> 'r -> unit
(** Memoise a finished campaign: [(session key, seed, session)] members
    in run order plus the residue. If inserting the members itself
    evicts one of them (cap smaller than the campaign), the memo is not
    kept. *)

val find_residue : _ t -> fingerprint:string -> string option
(** Recall a rendered residue (a hit counts into [session.store_hits],
    exactly like a live-session hit — the serve layer's warm-restart
    gate reads that counter). *)

val put_residue : _ t -> fingerprint:string -> string -> unit
(** Record the rendered response body of a finished campaign; may evict
    the least-recently-used residue beyond [residue_cap]. *)

val save : _ t -> path:string -> unit
(** Write every rendered residue to [path] as a [pbse-store/1] document
    (FNV-1a-64 checksum over the payload; atomic tmp + rename, previous
    file rotated to [path].bak), in LRU order so a capped reload keeps
    the most recently useful entries. *)

val load : _ t -> path:string -> (int, string) result
(** Reload residues saved by {!save} into the store, returning how many
    were loaded (each also counts into [reloads] and
    [session.store_reloads]). A missing, corrupt or checksum-mismatched
    file is an [Error] and leaves the store unchanged. *)

val share : 'r t -> Session.share
(** The store's seedState/prefix-hint share table, spanning every
    campaign run against this store. *)

val hits : _ t -> int
val misses : _ t -> int
val evictions : _ t -> int

val reloads : _ t -> int
(** Residues reloaded from store files over this store's lifetime. *)

val size : _ t -> int
(** Live sessions currently cached. *)

val residue_size : _ t -> int
(** Rendered residues currently cached. *)
