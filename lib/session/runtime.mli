(** The explicit runtime context threaded through every engine layer.

    One [t] bundles everything that used to live in ambient module
    state: the telemetry registry that owns every instrument the
    session touches, the session's RNG, its fault-injection plan, its
    quarantine, the hash-consing arena its expressions intern into, and
    the solver's prefix-context LRU bound. A session holds exactly one
    runtime; two sessions with distinct runtimes share {e no} mutable
    state, which is what lets campaign turns run on concurrent domains
    (docs/parallelism.md).

    [Session.open_session] builds a default runtime from its config when
    the caller doesn't supply one, so single-run and legacy callers keep
    the process-global defaults ({!Pbse_telemetry.Telemetry.Registry.default},
    the default expression arena). *)

type t = {
  registry : Pbse_telemetry.Telemetry.Registry.t;
  rng : Pbse_util.Rng.t;  (** all stochastic choices derive from this *)
  inject : Pbse_robust.Inject.plan;
  quarantine : Pbse_robust.Quarantine.t;
  arena : Pbse_smt.Expr.arena;
  prefix_cap : int option;
      (** solver prefix-context LRU bound; [None] = solver default *)
}

val create :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  ?rng_seed:int ->
  ?inject:Pbse_robust.Inject.plan ->
  ?quarantine:Pbse_robust.Quarantine.t ->
  ?max_strikes:int ->
  ?prefix_cap:int ->
  unit ->
  t
(** Defaults: the process-global registry, RNG seed 1, no fault
    injection, a fresh quarantine with [max_strikes] (default 4) whose
    counters live in [registry], a fresh expression arena, and the
    solver's default prefix-cap. *)

val activate : t -> unit
(** Install the runtime's expression arena on the calling domain
    ({!Pbse_smt.Expr.use_arena}). Must run on the domain about to
    execute the session — [Session.open_session] and
    [Session.step_session] call it, so a session migrating between
    domains across campaign rounds always interns into its own arena. *)

val derive :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  ?rng_seed:int ->
  ?prefix_cap:int ->
  t ->
  t
(** A child runtime for one session of a campaign: fresh registry
    (default: share the parent's), RNG split from the parent (or seeded
    with [rng_seed]), fresh private quarantine with the parent's strike
    limit, fresh arena; the inject plan is inherited, and the prefix-cap
    is inherited unless [prefix_cap] overrides it (the pool driver
    shrinks it under graceful degradation). *)
