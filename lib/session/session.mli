(** The session layer — one seed's resumable pbSE engine, extracted
    from the driver so sessions can outlive a campaign, be cached in a
    {!Session_store}, and be multiplexed by a server.

    Pipeline per session: concolic execution of the seed (gathering
    BBVs and seedStates), phase division with trap identification, then
    phase-scheduled symbolic execution:

    - seedStates are mapped to the phase of the interval in which their
      fork point was reached, deduplicated per fork location (keeping the
      earliest, §III-B3);
    - phase turns are granted by a pluggable scheduling policy
      ({!Pbse_sched.Scheduler}); the default is the paper's round-robin
      in order of first appearance, with the turn budget growing by one
      [time_period] per full rotation;
    - a phase's turn ends when it exhausts its budget and its latest
      slice covered no new code; empty phases leave the rotation.

    Scheduling is supervised: executor and solver failures inside a turn
    are contained, recorded in a {!Pbse_robust.Fault.log}, and charged a
    clock tick so fault loops still converge on the deadline. A state
    that faults repeatedly is quarantined (removed from its searcher)
    after [max_strikes]; a searcher that raises forfeits its whole phase
    (the rotation fails over to the remaining queues). Degenerate phase
    division (no BBVs) falls back to a single phase instead of raising.

    The campaign layer ([Pbse.Driver]) re-exports everything here, so
    existing callers keep using [Driver.run] / [Driver.open_session]. *)

(** {1 Configuration}

    The configuration is grouped by concern. Build one from
    {!default_config} with the [with_*] helpers:
    {[
      Session.default_config
      |> Session.with_concolic (fun c -> { c with time_period = 500 })
      |> Session.with_search (fun s -> { s with scheduler = "sequential" })
    ]} *)

type concolic_config = {
  interval_length : int option; (* BBV interval; None sizes it from a
                                   concrete pre-run of the seed *)
  intervals_target : int; (* BBVs aimed for when auto-sizing (default 120) *)
  time_period : int; (* Algorithm 3's TimePeriod; also the seed-level
                        turn quantum of pool schedulers *)
  mode : Pbse_phase.Phase.mode; (* BBV-only or coverage-augmented vectors *)
}
(** The concolic pass and phase-division inputs. *)

type search_config = {
  phase_searcher : string; (* searcher used inside each phase *)
  scheduler : string; (* scheduling policy (Pbse_sched.Scheduler.names);
                         "round-robin" is the paper's Algorithm 3,
                         "sequential" the ablation, "coverage-greedy"
                         the greedy alternative, "trap-first" the
                         trap-prioritising rotation *)
  max_live : int;
  dedup_seed_states : bool; (* keep earliest per fork point (paper) *)
  max_k : int; (* k-means upper bound (paper: 20) *)
  share_seed_states : bool;
      (* consult/publish the campaign share table at phase-seeding time:
         a fork point another session of the same campaign already
         published (identical concrete path prefix) is skipped here.
         Default false — with sharing on, which session publishes a
         shared fork point depends on turn timing at [jobs > 1], so
         per-run reports are only jobs-invariant with sharing off *)
}
(** State search and phase scheduling. *)

type solver_config = {
  budget : int; (* work units per query *)
  retry_cap : int; (* upper bound for escalating solver retries *)
  prefix_cap : int; (* prefix-context LRU bound (Pbse_smt.Prefix_ctx) *)
}

type robust_config = {
  confirm_bugs : bool;
  max_strikes : int; (* faults a state survives before quarantine *)
  inject : Pbse_robust.Inject.plan; (* deterministic fault injection *)
  watchdog_factor : int; (* a campaign turn spending more than
                            factor x budget records a Turn_timeout and
                            strikes its seed; 0 disables the watchdog *)
  watchdog_strikes : int; (* watchdog/crash strikes before a seed is
                             force-retired from the pool; 0 = never *)
  degrade_after : int; (* pool-level faults per degradation step: each
                          step halves the effective --jobs and the
                          solver prefix cap; 0 disables degradation *)
}

type pathcond_config = {
  subsumption : bool; (* block-boundary unsat-core subsumption cache *)
  loop_summaries : bool; (* closed-form counting-loop summaries *)
}
(** The path-condition layer's pruning features (docs/subsumption.md).
    Both default on; [pbse --no-subsumption] / [--no-loop-summaries]
    turn them off for A-B runs. Both are semantically transparent —
    merged coverage and bug sets are unchanged — so they only trade
    solver work. *)

type config = {
  concolic : concolic_config;
  search : search_config;
  solver : solver_config;
  robust : robust_config;
  pathcond : pathcond_config;
  rng_seed : int;
}

val default_config : config

val with_concolic : (concolic_config -> concolic_config) -> config -> config
val with_search : (search_config -> search_config) -> config -> config
val with_solver : (solver_config -> solver_config) -> config -> config
val with_robust : (robust_config -> robust_config) -> config -> config
val with_pathcond : (pathcond_config -> pathcond_config) -> config -> config
val with_rng_seed : int -> config -> config

val config_to_kvs : config -> (string * string) list
(** Flat [(key, value)] rendering of every config field (e.g.
    [("solver.prefix_cap", "256")]), stored in campaign snapshots so a
    resumed process rebuilds the exact configuration. *)

val config_of_kvs : (string * string) list -> (config, string) result
(** Inverse of {!config_to_kvs} over {!default_config}. Unknown keys
    are ignored (snapshot metadata carries non-config entries such as
    the target name); a malformed value for a known key is an error. *)

val config_fingerprint : config -> string
(** Hex digest of {!config_to_kvs}; two configs fingerprint equal iff
    every field renders equal. {!Session_store} keys cache entries on
    it, so a config change can never alias a cached session. *)

val interval_length_for :
  config -> Pbse_ir.Types.program -> seed:bytes -> int
(** The BBV interval the driver will use for [seed]: the configured
    [interval_length] if set, otherwise sized from a concrete pre-run so
    the run yields about [intervals_target] BBVs. *)

(** {1 Cross-session sharing} *)

type share
(** The table a campaign pool (or a {!Session_store}) threads through
    every {!open_session} when [search.share_seed_states] is on:
    seedStates are published under their path-prefix key — the
    chronological block-entry trace up to the fork point, folded with
    the fork's global block id — so identical fork points reached by
    several seeds are scheduled once campaign-wide, and solver
    prefix-context residue (arena-free model hints keyed by the
    structural fingerprint of the path, {!Pbse_smt.Prefix_ctx.export})
    carries witnesses from finished sessions into fresh ones. All
    mutation is mutex-guarded; safe to share across pool domains. *)

val share_create : unit -> share

val share_stats : share -> int * int
(** [(published, hits)] — fork points published first by some session,
    and seedStates dropped because their fork point was already
    published. *)

val share_publish_hints : share -> (int * (int * int) list) list -> unit
(** Merge exported prefix-context model hints
    ({!Pbse_smt.Solver.export_prefix_hints}) into the share; first
    writer per fingerprint wins. *)

val share_hints : share -> (int * (int * int) list) list
(** Current hint residue, for {!Pbse_smt.Solver.import_prefix_hints}. *)

(** {1 Single runs} *)

type report = {
  config : config;
  seed_size : int;
  c_time : int; (* virtual time of the concolic step *)
  p_time : int; (* virtual time charged for phase analysis *)
  division : Pbse_phase.Phase.division;
  bbvs : Pbse_concolic.Bbv.t list;
  trace : Pbse_concolic.Trace.t; (* concrete block-entry trace *)
  seed_state_count : int; (* after mapping, dedup and verification *)
  interval_length : int; (* BBV interval actually used *)
  coverage_samples : (int * int) list; (* (virtual time, blocks covered) *)
  bugs : (Pbse_exec.Bug.t * int) list; (* bug, 1-based phase ordinal (0 = concolic) *)
  executor : Pbse_exec.Executor.t; (* for stats and coverage queries *)
  faults : Pbse_robust.Fault.log; (* contained failures, by kind *)
  quarantined : int; (* states evicted this run ([max_strikes] faults) *)
  strikes : int; (* faults charged against states this run *)
  sched_stats : Pbse_sched.Scheduler.stats; (* turns/rotations/evictions *)
  phase_stats : Pbse_telemetry.Report.phase_row list;
      (* per-phase scheduling stats in ordinal order: turns granted,
         slices run, new-cover slices, dwell time, quarantine evictions.
         Always collected (a few ints per phase). *)
  registry : Pbse_telemetry.Telemetry.Registry.t;
      (* the session's instruments; {!run_report} snapshots its spans
         and histograms *)
}

val coverage_at : report -> int -> int
(** [coverage_at report t] — blocks covered by virtual time [t]
    (monotone interpolation of the samples). *)

val run :
  ?config:config ->
  ?quarantine:Pbse_robust.Quarantine.t ->
  ?runtime:Runtime.t ->
  Pbse_ir.Types.program ->
  seed:bytes ->
  deadline:int ->
  report
(** End-to-end pbSE on one seed. The deadline is in virtual time and
    includes the concolic and analysis steps. [runtime] is the explicit
    context the run executes in ({!Runtime}); by default one is built
    from the config over the process-global registry, so when telemetry
    is enabled ({!Pbse_telemetry.Telemetry.set_enabled}) the registry is
    reset at the start of the run and {!run_report} snapshots this run
    only. [quarantine] lets a caller persist quarantine records across
    runs (a new {!Pbse_robust.Quarantine.epoch} is started); by default
    each run gets a fresh quarantine. The report's
    [quarantined]/[strikes] are this run's deltas either way. *)

(** {1 Resumable sessions}

    [run] is [open_session] + one [step_session] + [finish_session]. The
    split lets a caller (the campaign layer) grant a seed's engine
    budget in turns rather than one deadline: the scheduling policy's
    rotation state survives between steps, so a resumed session
    continues exactly where it paused. *)

type t
(** One seed's engine with setup done (concolic pass, phase division,
    seeded queues) and scheduling state live. *)

val open_session :
  ?config:config ->
  ?quarantine:Pbse_robust.Quarantine.t ->
  ?runtime:Runtime.t ->
  ?reset_telemetry:bool ->
  ?share:share ->
  Pbse_ir.Types.program ->
  seed:bytes ->
  deadline:int ->
  t
(** Runs the concolic and phase-analysis steps (charged to the
    session's clock) and seeds the phase queues; [deadline] bounds the
    concolic pass only. [runtime] is the session's context — registry,
    RNG, inject plan, quarantine, expression arena ({!Runtime.activate}
    is called on the opening domain); omitted, one is built from the
    config ([quarantine], when given, overrides the runtime's).
    [reset_telemetry] (default [true]) resets the session's registry
    when telemetry is enabled — pool campaigns pass [false] and reset
    the pool registry once for the whole campaign. [share], consulted
    only when [config.search.share_seed_states] is on, drops seedStates
    whose path-prefix key another session already published (counted in
    the [session.seedstate_shared_hits] registry counter) and imports
    the share's solver prefix hints before the concolic step. *)

val step_session : t -> deadline:int -> unit
(** Phase-scheduled symbolic execution until [deadline] on the
    session's own clock (an absolute virtual time, not a delta).
    Returns early if the scheduler drains. *)

val step_contained : t -> deadline:int -> [ `Stepped | `Failed ]
(** {!step_session} with escaping exceptions contained: a raise is
    recorded as an [Exec_exception] fault on the session (with a clock
    tick charged) and reported as [`Failed]. The campaign layer uses it
    so one faulting turn can strike its seed instead of killing the
    pool. Deterministic in virtual time — replaying the same turn after
    a resume re-contains the same fault. *)

val record_crash : t -> detail:string -> unit
(** Charge one clock tick and record an [Exec_exception] fault — the
    footprint of an injected turn kill, identical live and on replay. *)

val session_time : t -> int
(** Current virtual time of the session's clock. *)

val session_drained : t -> bool
(** True when every phase queue has left the rotation; further steps
    are no-ops. *)

val session_executor : t -> Pbse_exec.Executor.t

val session_runtime : t -> Runtime.t
(** The context the session was opened with. *)

val session_config : t -> config
val session_seed : t -> bytes

val session_bug_phase : t -> Pbse_exec.Bug.t -> int
(** 1-based ordinal of the phase whose turn first surfaced this bug's
    dedup key; 0 when unknown (found by the concolic step). *)

val export_prefix_hints : t -> (int * (int * int) list) list
(** The session solver's prefix-context residue
    ({!Pbse_smt.Solver.export_prefix_hints}), for
    {!share_publish_hints}. *)

val finish_session : t -> report
(** Assemble the run report from the session's current state. The
    session stays usable; finishing again after more steps is valid. *)

val run_report :
  ?meta:(string * string) list -> report -> Pbse_telemetry.Report.t
(** Assemble the structured run report: solver query/retry/escalation
    counts, executor and verification totals, per-phase turn/coverage
    stats, fault and quarantine totals, plus span and histogram
    snapshots from the telemetry registry (populated only when telemetry
    was enabled during the run). Deterministic: identical seeded runs
    yield byte-identical {!Pbse_telemetry.Report.to_json} output. *)

val scalar_metrics : report -> (string * int) list
(** The fixed-order scalar metric families of a run report — the
    aggregate pool report sums these same families across runs. Derived
    from {!scalar_metric_names}'s manifest, so every consumer (CLI
    reports, serve frames, bench runs.csv) sees the same families. *)

val scalar_metric_names : string list
(** The names of {!scalar_metrics}'s families in emission order — the
    counter manifest. Bench and tests validate their column lists
    against it so metrics cannot drift between surfaces. *)

val span_metrics : Pbse_telemetry.Telemetry.Registry.t -> (string * int) list
(** [span.NAME.count] / [span.NAME.total] pairs from a registry
    snapshot. *)
