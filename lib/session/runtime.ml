module Telemetry = Pbse_telemetry.Telemetry
module Rng = Pbse_util.Rng
module Inject = Pbse_robust.Inject
module Quarantine = Pbse_robust.Quarantine
module Expr = Pbse_smt.Expr

type t = {
  registry : Telemetry.Registry.t;
  rng : Rng.t;
  inject : Inject.plan;
  quarantine : Quarantine.t;
  arena : Expr.arena;
  prefix_cap : int option;
}

let create ?registry ?(rng_seed = 1) ?(inject = Inject.none) ?quarantine
    ?(max_strikes = 4) ?prefix_cap () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  let quarantine =
    match quarantine with
    | Some q -> q
    | None -> Quarantine.create ~registry ~max_strikes ()
  in
  { registry; rng = Rng.create rng_seed; inject; quarantine; arena = Expr.arena (); prefix_cap }

let activate t = Expr.use_arena t.arena

let derive ?registry ?rng_seed ?prefix_cap t =
  let registry = match registry with Some r -> r | None -> t.registry in
  let rng = match rng_seed with Some s -> Rng.create s | None -> Rng.split t.rng in
  let prefix_cap =
    match prefix_cap with Some c -> Some c | None -> t.prefix_cap
  in
  {
    registry;
    rng;
    inject = t.inject;
    quarantine = Quarantine.create ~registry ~max_strikes:(Quarantine.max_strikes t.quarantine) ();
    arena = Expr.arena ();
    prefix_cap;
  }
