module Pathcond = Pbse_pathcond.Pathcond

type frame = {
  mutable regs : Pbse_smt.Expr.t array;
  mutable shared : bool; (* regs may be visible from another state *)
  ret_reg : int option;
  ret_to : (int * int * int) option;
}

type t = {
  id : int;
  mutable frames : frame list;
  mutable mem : Mem.t;
  mutable path : Pathcond.t;
  mutable model : Pbse_smt.Model.t;
  mutable fidx : int;
  mutable bidx : int;
  mutable iidx : int;
  mutable cur_gid : int;
  mutable depth : int;
  mutable steps : int;
  mutable fresh_cover : bool;
  born : int;
  fork_gid : int;
  mutable phase : int;
  mutable needs_verify : bool;
  mutable entered : bool;
}

let create ~id ~nregs ~mem ~model ~fidx ~born =
  {
    id;
    frames =
      [
        {
          regs = Array.make nregs Pbse_smt.Expr.zero;
          shared = false;
          ret_reg = None;
          ret_to = None;
        };
      ];
    mem;
    path = Pathcond.empty;
    model;
    fidx;
    bidx = 0;
    iidx = 0;
    cur_gid = -1;
    depth = 0;
    steps = 0;
    fresh_cover = false;
    born;
    fork_gid = -1;
    phase = -1;
    needs_verify = false;
    entered = false;
  }

(* Copy-on-write fork: O(call depth) frame records, zero register-array
   copies. Both sides keep referencing the same regs arrays until one of
   them writes; [own_frame] then copies just the written frame. The
   frame records themselves must be per-state — were they shared, a
   later CoW copy in one state would redirect the other's view. *)
let fork t ~id ~born ~fork_gid =
  List.iter (fun f -> f.shared <- true) t.frames;
  {
    id;
    frames = List.map (fun f -> { f with shared = true }) t.frames;
    mem = t.mem;
    path = t.path;
    model = t.model;
    fidx = t.fidx;
    bidx = t.bidx;
    iidx = t.iidx;
    cur_gid = t.cur_gid;
    depth = t.depth + 1;
    steps = t.steps;
    fresh_cover = false;
    born;
    fork_gid;
    phase = t.phase;
    needs_verify = false;
    entered = false;
  }

let own_frame f =
  if f.shared then begin
    f.regs <- Array.copy f.regs;
    f.shared <- false;
    true
  end
  else false

let current_regs t =
  match t.frames with
  | frame :: _ -> frame.regs
  | [] -> invalid_arg "State.current_regs: no frames"

let write_reg t r v =
  match t.frames with
  | frame :: _ ->
    let copied = own_frame frame in
    frame.regs.(r) <- v;
    copied
  | [] -> invalid_arg "State.write_reg: no frames"

let assume t c = t.path <- Pathcond.assume t.path ~block:t.cur_gid c

let path_conditions t = Pathcond.conditions t.path

let path_spine t = Pathcond.spine t.path
