open Pbse_ir.Types
module Cfg = Pbse_ir.Cfg
module Expr = Pbse_smt.Expr
module Model = Pbse_smt.Model
module Solver = Pbse_smt.Solver
module Semantics = Pbse_smt.Semantics
module Pathcond = Pbse_pathcond.Pathcond
module Subsume = Pbse_pathcond.Subsume
module Loop_summary = Pbse_pathcond.Loop_summary
module Vclock = Pbse_util.Vclock
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Telemetry = Pbse_telemetry.Telemetry

type finish_reason =
  | Exited of int64
  | Buggy of Bug.t
  | Infeasible
  | Aborted of string

type slice =
  | Running
  | Forked of State.t list
  | Finished of finish_reason

type stats = {
  mutable instructions : int;
  mutable slices : int;
  mutable forks : int;
  mutable dropped_forks : int;
  mutable cow_copies : int; (* register arrays copied by the CoW barrier *)
  mutable term_exit : int;
  mutable term_bug : int;
  mutable term_abort : int;
  mutable term_infeasible : int;
  mutable concretized_addrs : int;
  mutable verify_verified : int;
  mutable verify_infeasible : int;
  mutable verify_undecided : int;
  mutable subsumed_states : int; (* would-be states pruned by the subsumption cache *)
  mutable interpolant_hits : int; (* queries answered Unsat from recorded cores *)
  mutable interpolant_misses : int; (* consults that scanned a non-empty bucket in vain *)
  mutable loop_summaries : int; (* loops leapt over via a summarized transition *)
  mutable summary_fallbacks : int; (* loops downgraded to plain unrolling *)
}

type t = {
  prog : program;
  cfg : Cfg.t;
  clock : Vclock.t;
  solver : Solver.t;
  coverage : Coverage.t;
  findex : (string, int) Hashtbl.t;
  input : bytes;
  base_model : Model.t;
  max_live : int;
  confirm_bugs : bool;
  mutable next_id : int;
  mutable bugs : Bug.t list; (* newest first *)
  bug_keys : (int * string, unit) Hashtbl.t;
  st : stats;
  mutable trace : (int -> unit) option;
  mutable live : unit -> int;
  mutable lazy_fork : bool;
  mutable record_testcases : bool;
  mutable testcases : (bytes * string) list; (* newest first, capped *)
  subsumption : bool;
  subsume : Subsume.t; (* per-block unsat cores; session-local (arena ids) *)
  summaries : (int * int, Loop_summary.summary) Hashtbl.t; (* (fidx, header) *)
  inj : Inject.t option; (* fault injection, None when inactive *)
  faults : Fault.log;
  registry : Telemetry.Registry.t;
  tm_slice_steps : Telemetry.histogram;
  tm_forks : Telemetry.counter;
  tm_fork_cost : Telemetry.histogram;
  tm_cow_copies : Telemetry.counter;
}

let max_testcases = 4096

(* Dividing the solver's work units by this constant converts them into
   instruction-equivalent virtual time. One work unit is roughly one
   expression-node visit during interval evaluation — orders of magnitude
   cheaper than one interpreted instruction (KLEE's instruction dispatch
   plus expression building), hence the large divisor. *)
let solver_charge_divisor = 128

let max_call_depth = 512

let create ?(max_live = 8192) ?(solver_budget = 60_000) ?solver_retry_cap
    ?solver_prefix_cap ?(confirm_bugs = true) ?rng_seed:_ ?(inject = Inject.none)
    ?(subsumption = true) ?(loop_summaries = true) ?registry ~clock prog ~input =
  Pbse_ir.Validate.check_exn prog;
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  let cfg = Cfg.build prog in
  (* static loop-summary pass: template matches become one-step
     transitions, mismatches are fault-free downgrades counted up front *)
  let summary_analysis =
    if loop_summaries then Loop_summary.analyze prog
    else { Loop_summary.summaries = Hashtbl.create 1; fallbacks = 0 }
  in
  {
    prog;
    cfg;
    clock;
    solver =
      Solver.create ~budget:solver_budget ?retry_cap:solver_retry_cap
        ?prefix_cap:solver_prefix_cap ~registry ();
    coverage = Coverage.create (Cfg.nblocks cfg);
    findex = func_index prog;
    input;
    base_model = Model.of_bytes input;
    max_live;
    confirm_bugs;
    next_id = 0;
    bugs = [];
    bug_keys = Hashtbl.create 64;
    st =
      {
        instructions = 0;
        slices = 0;
        forks = 0;
        dropped_forks = 0;
        cow_copies = 0;
        term_exit = 0;
        term_bug = 0;
        term_abort = 0;
        term_infeasible = 0;
        concretized_addrs = 0;
        verify_verified = 0;
        verify_infeasible = 0;
        verify_undecided = 0;
        subsumed_states = 0;
        interpolant_hits = 0;
        interpolant_misses = 0;
        loop_summaries = 0;
        summary_fallbacks = summary_analysis.Loop_summary.fallbacks;
      };
    subsumption;
    subsume = Subsume.create ();
    summaries = summary_analysis.Loop_summary.summaries;
    trace = None;
    live = (fun () -> 0);
    lazy_fork = false;
    record_testcases = false;
    testcases = [];
    inj = (if Inject.is_active inject then Some (Inject.create inject) else None);
    faults = Fault.log_create ~registry ();
    registry;
    tm_slice_steps = Telemetry.Registry.histogram registry "exec.slice_steps";
    tm_forks = Telemetry.Registry.counter registry "exec.forks";
    tm_fork_cost = Telemetry.Registry.histogram registry "exec.fork_cost";
    tm_cow_copies = Telemetry.Registry.counter registry "exec.cow_copies";
  }

let cfg t = t.cfg
let coverage t = t.coverage
let faults t = t.faults
let clock t = t.clock
let solver t = t.solver
let stats t = t.st
let bugs t = List.rev t.bugs
let input_size t = Bytes.length t.input
let seed_model t = t.base_model
let state_count t = t.next_id
let set_trace t hook = t.trace <- hook
let set_live_counter t f = t.live <- f
let set_lazy_fork t flag = t.lazy_fork <- flag
let set_record_testcases t flag = t.record_testcases <- flag
let testcases t = List.rev t.testcases

let fresh_state_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let initial_state t =
  let f = t.prog.funcs.(t.prog.main) in
  State.create ~id:(fresh_state_id t) ~nregs:f.nregs ~mem:Mem.empty ~model:t.base_model
    ~fidx:t.prog.main ~born:(Vclock.now t.clock)

(* --- plumbing -------------------------------------------------------------- *)

exception Finish of finish_reason

let charge_solver t work = Vclock.advance t.clock (1 + (work / solver_charge_divisor))

(* An injected solver fault stands in for a real query: it costs one
   clock tick (so retry loops always make virtual-time progress) and is
   logged under its own kind. *)
let inject_solver_unknown t =
  match t.inj with
  | Some inj when Inject.fire_solver_unknown inj ->
    Vclock.tick t.clock;
    Fault.record t.faults ~detail:"injected solver unknown" ~vtime:(Vclock.now t.clock)
      Fault.Solver_injected;
    true
  | Some _ | None -> false

(* Consult the subsumption cache before solving: if the query's id set —
   the state's path condition plus the extra constraints — covers some
   unsat core recorded at this block boundary, the query is Unsat by
   entailment (a superset of an unsatisfiable set is unsatisfiable) and
   the solver is skipped entirely for one clock tick. [prune] marks
   consults whose Unsat answer discards a would-be state (fork sides,
   pending verifications) for the [subsumed_states] accounting. *)
let subsume_consult t st ~extra ~prune =
  t.subsumption
  &&
  let sg =
    Pathcond.signature st.State.path
    lor Pathcond.signature_of_ids (List.map (fun (e : Expr.t) -> e.Expr.id) extra)
  in
  let mem id =
    Pathcond.mem st.State.path id
    || List.exists (fun (e : Expr.t) -> e.Expr.id = id) extra
  in
  match Subsume.consult t.subsume ~block:st.State.cur_gid ~sg ~mem with
  | `Hit ->
    t.st.interpolant_hits <- t.st.interpolant_hits + 1;
    if prune then t.st.subsumed_states <- t.st.subsumed_states + 1;
    Vclock.tick t.clock;
    true
  | `Miss ->
    t.st.interpolant_misses <- t.st.interpolant_misses + 1;
    false
  | `Empty -> false

let record_core t st core =
  if t.subsumption then Subsume.record t.subsume ~block:st.State.cur_gid core

(* Invariant: a state's model satisfies its path (lazy-forked states are
   quarantined behind [verify] before they are ever sliced), so queries
   go through the incremental entry point. *)
let feasible ?(prune = false) t st extra =
  if inject_solver_unknown t then Solver.Unknown
  else if subsume_consult t st ~extra ~prune then Solver.Unsat
  else begin
    let result, work =
      Solver.check_assuming t.solver ~hint:st.State.model
        ~on_unsat_core:(record_core t st) ~path:(State.path_spine st) extra
    in
    charge_solver t work;
    (match result with
     | Solver.Unknown ->
       Fault.record t.faults ~detail:"feasibility query out of budget"
         ~vtime:(Vclock.now t.clock) Fault.Solver_unknown
     | Solver.Sat _ | Solver.Unsat -> ());
    result
  end

type verdict =
  | Verified
  | Infeasible_state
  | Undecided

(* Establish the model invariant of a lazily forked state: its newest
   path constraint is unchecked. [Infeasible_state] means the state must
   be dropped; [Undecided] means the solver gave up (or an injected
   fault fired) — the state keeps [needs_verify] set, so a later call
   retries the query, escalating its budget each time. *)
let verify_pending t st =
  begin
    match State.path_spine st with
    | [] ->
      st.State.needs_verify <- false;
      Verified
    | newest :: older ->
      if inject_solver_unknown t then Undecided
        (* the full path (newest included) is the query: a recorded core
           it covers discards the pending state without a query *)
      else if subsume_consult t st ~extra:[] ~prune:true then Infeasible_state
      else begin
        let result, work =
          Solver.check_assuming t.solver ~hint:st.State.model
            ~on_unsat_core:(record_core t st) ~path:older [ newest ]
        in
        charge_solver t work;
        match result with
        | Solver.Sat model ->
          st.State.model <- model;
          st.State.needs_verify <- false;
          Verified
        | Solver.Unsat -> Infeasible_state
        | Solver.Unknown ->
          Fault.record t.faults ~detail:"verification query out of budget"
            ~vtime:(Vclock.now t.clock) Fault.Solver_unknown;
          Undecided
      end
  end

(* Verdicts are tallied only for states that actually needed the query;
   the early return for already-verified states stays free. *)
let verify t st =
  if not st.State.needs_verify then Verified
  else begin
    let verdict = verify_pending t st in
    (match verdict with
     | Verified -> t.st.verify_verified <- t.st.verify_verified + 1
     | Infeasible_state -> t.st.verify_infeasible <- t.st.verify_infeasible + 1
     | Undecided -> t.st.verify_undecided <- t.st.verify_undecided + 1);
    verdict
  end

let enter_block t st fidx bidx =
  let gid = Cfg.id t.cfg fidx bidx in
  st.State.cur_gid <- gid;
  if Coverage.cover t.coverage gid then st.State.fresh_cover <- true;
  match t.trace with Some hook -> hook gid | None -> ()

let goto t st bidx =
  st.State.bidx <- bidx;
  st.State.iidx <- 0;
  enter_block t st st.State.fidx bidx

let location t st = Cfg.label t.cfg (Cfg.id t.cfg st.State.fidx st.State.bidx)

let report_bug t st ~kind ~detail ~model =
  let gid = Cfg.id t.cfg st.State.fidx st.State.bidx in
  let key = (gid, kind) in
  if Hashtbl.mem t.bug_keys key then ()
  else begin
    Hashtbl.replace t.bug_keys key ();
    let witness = Model.to_bytes ~size:(Bytes.length t.input) model in
    let confirmed =
      t.confirm_bugs
      &&
      match (Concrete.run t.prog ~input:witness ~fuel:2_000_000).outcome with
      | Concrete.Fault { kind = k; _ } -> k = kind
      | Concrete.Exit _ | Concrete.Halted _ | Concrete.Out_of_fuel -> false
    in
    let bug =
      {
        Bug.kind;
        gid;
        location = location t st;
        detail;
        witness;
        vtime = Vclock.now t.clock;
        state_id = st.State.id;
        confirmed;
      }
    in
    t.bugs <- bug :: t.bugs
  end

(* Terminal fault: report (deduplicated) and stop the state, surfacing the
   matching report as the finish reason. *)
let finish_buggy t st ~kind ~detail =
  report_bug t st ~kind ~detail ~model:st.State.model;
  let gid = Cfg.id t.cfg st.State.fidx st.State.bidx in
  let bug =
    match List.find_opt (fun b -> b.Bug.gid = gid && b.Bug.kind = kind) t.bugs with
    | Some b -> b
    | None ->
      {
        Bug.kind;
        gid;
        location = location t st;
        detail;
        witness = Model.to_bytes ~size:(Bytes.length t.input) st.State.model;
        vtime = Vclock.now t.clock;
        state_id = st.State.id;
        confirmed = false;
      }
  in
  raise (Finish (Buggy bug))

let fault_finish t st fault =
  finish_buggy t st ~kind:(Concrete.fault_class fault) ~detail:(Mem.fault_to_string fault)

(* Re-establish the state's witness model after a new constraint whose
   current model violates it. *)
let constrain t st extra =
  if Model.satisfies st.State.model extra then begin
    List.iter (State.assume st) extra;
    true
  end
  else
    match feasible t st extra with
    | Solver.Sat model ->
      List.iter (State.assume st) extra;
      st.State.model <- model;
      true
    | Solver.Unsat | Solver.Unknown -> false

(* Concretize a symbolic value under the state's model, pinning it with an
   equality constraint so the path stays replayable. *)
let concretize t st e =
  match Expr.is_const e with
  | Some c -> Some c
  | None ->
    let c = Model.eval st.State.model e in
    t.st.concretized_addrs <- t.st.concretized_addrs + 1;
    if constrain t st [ Expr.bin Eq e (Expr.const c) ] then Some c else None

(* --- memory access with the out-of-bounds oracle --------------------------- *)

let check_symbolic_addr_bug t st addr_expr ~len ~write =
  (* is there any model that pushes this access out of bounds? *)
  let ptr_now = Model.eval st.State.model addr_expr in
  let obj = Mem.Ptr.obj ptr_now in
  match Mem.size_of st.State.mem ptr_now with
  | None -> () (* the concrete access path will fault and report *)
  | Some size ->
    let base = Mem.Ptr.make obj 0 in
    let limit = Int64.add base (Int64.of_int (size - len)) in
    let oob =
      Expr.bin Or
        (Expr.bin Ult addr_expr (Expr.const base))
        (Expr.bin Ult (Expr.const limit) addr_expr)
    in
    (match feasible t st [ oob ] with
     | Solver.Sat model ->
       let kind = if write then "oob-write" else "oob-read" in
       report_bug t st ~kind
         ~detail:
           (Printf.sprintf "symbolic %s can exceed object %d (size %d)"
              (if write then "write" else "read")
              obj size)
         ~model
     | Solver.Unsat | Solver.Unknown -> ())

let resolve_addr t st addr_expr ~len ~write =
  match Expr.is_const addr_expr with
  | Some c -> Some c
  | None ->
    (* concolic mode records fork points only; the out-of-bounds oracle
       queries run during the symbolic-execution step (Algorithm 3) *)
    if not t.lazy_fork then check_symbolic_addr_bug t st addr_expr ~len ~write;
    (match concretize t st addr_expr with
     | Some c -> Some c
     | None -> None)

(* --- instruction execution -------------------------------------------------- *)

let operand st = function
  | Const c -> Expr.const c
  | Reg r -> (State.current_regs st).(r)

let note_cow t copied =
  if copied then begin
    t.st.cow_copies <- t.st.cow_copies + 1;
    Telemetry.incr t.tm_cow_copies
  end

let set_reg t st r v = note_cow t (State.write_reg st r v)

let spend t st =
  t.st.instructions <- t.st.instructions + 1;
  st.State.steps <- st.State.steps + 1;
  Vclock.tick t.clock

let exec_div_guard t st divisor =
  match Expr.is_const divisor with
  | Some 0L -> finish_buggy t st ~kind:"div-by-zero" ~detail:"concrete division by zero"
  | Some _ -> ()
  | None ->
    if t.lazy_fork then begin
      (* concolic: fault if the seed divides by zero, otherwise just pin
         the non-zero fact (the model satisfies it, so this is free) *)
      if Model.eval st.State.model divisor = 0L then
        finish_buggy t st ~kind:"div-by-zero" ~detail:"concrete division by zero"
      else if not (constrain t st [ Expr.bin Ne divisor Expr.zero ]) then
        raise (Finish Infeasible)
    end
    else begin
      (match feasible t st [ Expr.bin Eq divisor Expr.zero ] with
       | Solver.Sat model ->
         report_bug t st ~kind:"div-by-zero" ~detail:"divisor can be zero" ~model
       | Solver.Unsat | Solver.Unknown -> ());
      if not (constrain t st [ Expr.bin Ne divisor Expr.zero ]) then
        raise (Finish Infeasible)
    end

let exec_intrinsic t st dst name args =
  let ret v = match dst with Some d -> set_reg t st d v | None -> () in
  match (name, args) with
  | "in_size", [] -> ret (Expr.of_int (Bytes.length t.input))
  | "in_byte", [ a ] -> (
    let idx_e = operand st a in
    match concretize t st idx_e with
    | None -> raise (Finish Infeasible)
    | Some i64 ->
      let size = Bytes.length t.input in
      if Int64.unsigned_compare i64 (Int64.of_int size) < 0 then
        ret (Expr.read (Int64.to_int i64))
      else ret Expr.zero)
  | "out", [ _ ] -> ret Expr.zero
  | ("in_size" | "in_byte" | "out"), _ ->
    raise (Finish (Aborted ("intrinsic arity error: " ^ name)))
  | _ -> assert false

let exec_call t st dst name args =
  if is_intrinsic name then begin
    exec_intrinsic t st dst name args;
    st.State.iidx <- st.State.iidx + 1
  end
  else begin
    if List.length st.State.frames >= max_call_depth then
      raise (Finish (Aborted "call stack overflow"));
    let callee =
      match Hashtbl.find_opt t.findex name with
      | Some i -> i
      | None -> raise (Finish (Aborted ("unknown function " ^ name)))
    in
    let f = t.prog.funcs.(callee) in
    let regs = Array.make f.nregs Expr.zero in
    List.iteri (fun i a -> if i < f.nparams then regs.(i) <- operand st a) args;
    let caller = (st.State.fidx, st.State.bidx, st.State.iidx + 1) in
    st.State.frames <-
      { State.regs; shared = false; ret_reg = dst; ret_to = Some caller }
      :: st.State.frames;
    st.State.fidx <- callee;
    st.State.bidx <- 0;
    st.State.iidx <- 0;
    enter_block t st callee 0
  end

let exec_inst t st inst =
  match inst with
  | Bin (dst, op, a, b) ->
    let va = operand st a and vb = operand st b in
    (match op with
     | Udiv | Sdiv | Urem | Srem -> exec_div_guard t st vb
     | Add | Sub | Mul | And | Or | Xor | Shl | Lshr | Ashr | Eq | Ne | Ult | Ule | Slt
     | Sle -> ());
    set_reg t st dst (Expr.bin op va vb);
    st.State.iidx <- st.State.iidx + 1
  | Un (dst, op, a) ->
    set_reg t st dst (Expr.un op (operand st a));
    st.State.iidx <- st.State.iidx + 1
  | Load (dst, addr, w) -> (
    let addr_e = operand st addr in
    match resolve_addr t st addr_e ~len:(bytes_of_width w) ~write:false with
    | None -> raise (Finish Infeasible)
    | Some c -> (
      match Mem.load st.State.mem c w with
      | Ok v ->
        set_reg t st dst v;
        st.State.iidx <- st.State.iidx + 1
      | Error f -> fault_finish t st f))
  | Store (addr, v, w) -> (
    let addr_e = operand st addr in
    match resolve_addr t st addr_e ~len:(bytes_of_width w) ~write:true with
    | None -> raise (Finish Infeasible)
    | Some c -> (
      match Mem.store st.State.mem c w (operand st v) with
      | Ok mem ->
        st.State.mem <- mem;
        st.State.iidx <- st.State.iidx + 1
      | Error f -> fault_finish t st f))
  | Alloc (dst, size) -> (
    let size_e = operand st size in
    match concretize t st size_e with
    | None -> raise (Finish Infeasible)
    | Some c ->
      let mem, ptr = Mem.alloc st.State.mem ~size:(Int64.to_int c) in
      st.State.mem <- mem;
      set_reg t st dst (Expr.const ptr);
      st.State.iidx <- st.State.iidx + 1)
  | Free p -> (
    let p_e = operand st p in
    match concretize t st p_e with
    | None -> raise (Finish Infeasible)
    | Some c -> (
      match Mem.free st.State.mem c with
      | Ok mem ->
        st.State.mem <- mem;
        st.State.iidx <- st.State.iidx + 1
      | Error f -> fault_finish t st f))
  | Call (dst, name, args) -> exec_call t st dst name args
  | Select (dst, c, a, b) ->
    let cond = operand st c in
    let v =
      match Expr.is_const cond with
      | Some cv -> if Semantics.truthy cv then operand st a else operand st b
      | None -> Expr.ite (Expr.bin Ne cond Expr.zero) (operand st a) (operand st b)
    in
    set_reg t st dst v;
    st.State.iidx <- st.State.iidx + 1

(* --- terminators and forking ------------------------------------------------ *)

let do_ret t st v =
  let value = match v with Some o -> operand st o | None -> Expr.zero in
  match st.State.frames with
  | [] -> raise (Finish (Aborted "return with no frame"))
  | [ _ ] ->
    let code =
      match Expr.is_const value with Some c -> c | None -> Model.eval st.State.model value
    in
    raise (Finish (Exited code))
  | _ :: (up :: _ as rest) ->
    (match st.State.frames with
     | { State.ret_reg; ret_to = Some (f, b, i); _ } :: _ ->
       st.State.frames <- rest;
       (match ret_reg with
        | Some d ->
          note_cow t (State.own_frame up);
          up.State.regs.(d) <- value
        | None -> ());
       st.State.fidx <- f;
       st.State.bidx <- b;
       st.State.iidx <- i
     | _ -> raise (Finish (Aborted "malformed return frame")))

(* Memory pressure: a fork is suppressed when live states reach
   [max_live], or when the injector simulates that pressure (symbolic
   stepping only — the concolic pass records every fork point).
   Suppressions are logged as faults rather than silently dropped. *)
let fork_suppressed t ~pending =
  let injected =
    match t.inj with
    | Some inj when not t.lazy_fork -> Inject.fire_mem_pressure inj
    | Some _ | None -> false
  in
  if injected || t.live () + pending >= t.max_live then begin
    Fault.record t.faults
      ~detail:(if injected then "injected memory pressure" else "live-state cap")
      ~vtime:(Vclock.now t.clock) Fault.Mem_pressure;
    t.st.dropped_forks <- t.st.dropped_forks + 1;
    true
  end
  else false

(* An injected concolic drop simulates a lost seedState: the divergent
   side of a lazy fork is discarded instead of recorded, exercising the
   pipeline's tolerance to an incomplete concolic pass. *)
let inject_concolic_drop t =
  match t.inj with
  | Some inj when t.lazy_fork && Inject.fire_concolic_drop inj ->
    Vclock.tick t.clock;
    Fault.record t.faults ~detail:"injected concolic drop" ~vtime:(Vclock.now t.clock)
      Fault.Concolic_injected;
    t.st.dropped_forks <- t.st.dropped_forks + 1;
    true
  | Some _ | None -> false

let fork_state t st ~constraint_ ~model ~target =
  let child =
    State.fork st ~id:(fresh_state_id t) ~born:(Vclock.now t.clock)
      ~fork_gid:(Cfg.id t.cfg st.State.fidx st.State.bidx)
  in
  (* CoW fork cost: frame records allocated (no register arrays copied) *)
  Telemetry.observe t.tm_fork_cost (List.length child.State.frames);
  State.assume child constraint_;
  child.State.model <- model;
  child.State.bidx <- target;
  child.State.iidx <- 0;
  (* coverage and trace are recorded when the child actually runs *)
  child.State.entered <- false;
  t.st.forks <- t.st.forks + 1;
  Telemetry.incr t.tm_forks;
  child

let exec_br t st cond then_b else_b =
  let cond_e = operand st cond in
  match Expr.is_const cond_e with
  | Some c ->
    goto t st (if Semantics.truthy c then then_b else else_b);
    Running
  | None ->
    let taken_true = Semantics.truthy (Model.eval st.State.model cond_e) in
    let taken_c = if taken_true then Expr.bin Ne cond_e Expr.zero else Expr.lognot cond_e in
    let other_c = Expr.lognot taken_c in
    let taken_b = if taken_true then then_b else else_b in
    let other_b = if taken_true then else_b else then_b in
    let children =
      if t.lazy_fork then begin
        if inject_concolic_drop t then []
        else begin
          (* concolic mode: record the divergent side as a seedState without
             paying for a feasibility query (paper Algorithm 2, lines 19-21) *)
          let child =
            fork_state t st ~constraint_:other_c ~model:st.State.model ~target:other_b
          in
          child.State.needs_verify <- true;
          [ child ]
        end
      end
      else if fork_suppressed t ~pending:0 then []
      else
        match feasible ~prune:true t st [ other_c ] with
        | Solver.Sat model -> [ fork_state t st ~constraint_:other_c ~model ~target:other_b ]
        | Solver.Unsat | Solver.Unknown -> []
    in
    State.assume st taken_c;
    goto t st taken_b;
    (match children with [] -> Running | _ -> Forked children)

let exec_switch t st scrut cases default =
  let scrut_e = operand st scrut in
  match Expr.is_const scrut_e with
  | Some v ->
    let rec pick = function
      | [] -> default
      | (case_v, target) :: rest -> if v = case_v then target else pick rest
    in
    goto t st (pick cases);
    Running
  | None ->
    let v = Model.eval st.State.model scrut_e in
    let taken_target, taken_cs =
      match List.find_opt (fun (case_v, _) -> case_v = v) cases with
      | Some (case_v, target) -> (target, [ Expr.bin Eq scrut_e (Expr.const case_v) ])
      | None ->
        ( default,
          List.map (fun (case_v, _) -> Expr.bin Ne scrut_e (Expr.const case_v)) cases )
    in
    (* fork the other feasible arms *)
    let children = ref [] in
    let try_arm constraint_ target =
      if t.lazy_fork then begin
        if not (inject_concolic_drop t) then begin
          let child = fork_state t st ~constraint_ ~model:st.State.model ~target in
          child.State.needs_verify <- true;
          children := child :: !children
        end
      end
      else if not (fork_suppressed t ~pending:(List.length !children)) then
        match feasible ~prune:true t st [ constraint_ ] with
        | Solver.Sat model ->
          children := fork_state t st ~constraint_ ~model ~target :: !children
        | Solver.Unsat | Solver.Unknown -> ()
    in
    List.iter
      (fun (case_v, target) ->
        if case_v <> v then try_arm (Expr.bin Eq scrut_e (Expr.const case_v)) target)
      cases;
    (match List.find_opt (fun (case_v, _) -> case_v = v) cases with
     | Some _ ->
       (* the default arm is "none of the cases" *)
       let default_cs =
         List.map (fun (case_v, _) -> Expr.bin Ne scrut_e (Expr.const case_v)) cases
       in
       let conj =
         List.fold_left (fun acc c -> Expr.bin And acc c) Expr.one default_cs
       in
       if t.lazy_fork then begin
         if not (inject_concolic_drop t) then begin
           let child =
             fork_state t st ~constraint_:conj ~model:st.State.model ~target:default
           in
           child.State.needs_verify <- true;
           children := child :: !children
         end
       end
       else if not (fork_suppressed t ~pending:(List.length !children)) then begin
         match feasible ~prune:true t st default_cs with
         | Solver.Sat model ->
           let child = fork_state t st ~constraint_:conj ~model ~target:default in
           (* keep the precise per-case constraints too *)
           List.iter (State.assume child) default_cs;
           children := child :: !children
         | Solver.Unsat | Solver.Unknown -> ()
       end
     | None -> ());
    List.iter (State.assume st) taken_cs;
    goto t st taken_target;
    (match !children with [] -> Running | cs -> Forked cs)

let exec_term t st term =
  match term with
  | Jmp b ->
    goto t st b;
    Running
  | Br (c, then_b, else_b) -> exec_br t st c then_b else_b
  | Switch (scrut, cases, default) -> exec_switch t st scrut cases default
  | Ret v ->
    do_ret t st v;
    Running
  | Halt message -> raise (Finish (Aborted message))

(* --- loop summaries ---------------------------------------------------------- *)

(* Apply a matched loop summary at its header (instruction 0): replace
   running the loop to completion with its closed form over the entry
   register values. [niter] is [bound - i] when the entry test holds and
   [0] otherwise, each self-add register advances by [step * niter], and
   the loop's exit condition register is identically zero afterwards —
   all exact modulo 2^64 for {e every} input on this path (the [Ite]
   covers the zero-iteration inputs), so no path constraint is added and
   no fork is needed. The model invariant is untouched. Applied only
   when the entry test holds under the state's model: on the other side
   the header runs normally for one test (zero iterations concretely),
   and a forked taken-side child re-enters the header with a model that
   does satisfy the test, getting summarized then — so body coverage and
   bug accounting match plain unrolling. *)
let apply_summary t st (s : Loop_summary.summary) =
  let regs = State.current_regs st in
  let e_i = regs.(s.Loop_summary.counter) in
  let e_b =
    match s.Loop_summary.bound with
    | Const c -> Expr.const c
    | Reg r -> regs.(r)
  in
  let cmp_e = Expr.bin s.Loop_summary.cmp e_i e_b in
  let truthy =
    match Expr.is_const cmp_e with
    | Some c -> Semantics.truthy c
    | None -> Semantics.truthy (Model.eval st.State.model cmp_e)
  in
  if not truthy then false (* zero iterations on this model: run the header *)
  else if
    s.Loop_summary.cmp = Slt
    && not (e_i.Expr.bits >= 0L && e_b.Expr.bits >= 0L)
  then begin
    (* conservative guard: only summarize signed loops whose operands are
       provably non-negative (top bit clear makes [bits] an unsigned
       upper bound), where Slt coincides with Ult *)
    t.st.summary_fallbacks <- t.st.summary_fallbacks + 1;
    false
  end
  else begin
    let niter = Expr.ite cmp_e (Expr.bin Sub e_b e_i) Expr.zero in
    set_reg t st s.Loop_summary.counter (Expr.ite cmp_e e_b e_i);
    (* a pair temporary ends holding the final pre-copy value, which
       equals the destination's final value whenever at least one
       iteration ran; on zero iterations it keeps its entry value *)
    (match s.Loop_summary.counter_tmp with
    | Some tm ->
      let regs = State.current_regs st in
      set_reg t st tm (Expr.ite cmp_e e_b regs.(tm))
    | None -> ());
    List.iter
      (fun { Loop_summary.dst; step; tmp } ->
        let regs = State.current_regs st in
        let final =
          Expr.bin Add regs.(dst) (Expr.bin Mul (Expr.const step) niter)
        in
        set_reg t st dst final;
        match tmp with
        | Some tm ->
          let regs = State.current_regs st in
          set_reg t st tm (Expr.ite cmp_e final regs.(tm))
        | None -> ())
      s.Loop_summary.updates;
    (* after the loop the header test is false on every input: if it held
       on entry the counter now equals the bound; if it did not, it is
       false by assumption — so the condition register is exactly zero *)
    set_reg t st s.Loop_summary.cond_reg Expr.zero;
    (* the body ran at least once under the model: cover and trace it *)
    let body_gid = Cfg.id t.cfg st.State.fidx s.Loop_summary.body in
    if Coverage.cover t.coverage body_gid then st.State.fresh_cover <- true;
    (match t.trace with Some hook -> hook body_gid | None -> ());
    (* charge roughly one header+body traversal instead of [niter] *)
    Vclock.advance t.clock 4;
    t.st.loop_summaries <- t.st.loop_summaries + 1;
    goto t st s.Loop_summary.exit_;
    true
  end

(* Summaries fire at header entry during symbolic stepping only; the
   concolic (lazy-fork) pass must replay the concrete trace faithfully
   to collect BBVs and fork points. *)
let try_loop_summary t st =
  (not t.lazy_fork)
  && Hashtbl.length t.summaries > 0
  && st.State.iidx = 0
  &&
  match Hashtbl.find_opt t.summaries (st.State.fidx, st.State.bidx) with
  | Some s -> apply_summary t st s
  | None -> false

(* --- slices ------------------------------------------------------------------ *)

(* An injected abort terminates the slice before any instruction runs.
   It still costs a clock tick, so schedulers retrying around it always
   make virtual-time progress. Concolic (lazy-fork) slices are exempt:
   that pass is a single concrete replay whose failure mode is already
   handled by the deadline. *)
let inject_exec_abort t =
  match t.inj with
  | Some inj when (not t.lazy_fork) && Inject.fire_exec_abort inj ->
    Vclock.tick t.clock;
    Fault.record t.faults ~detail:"injected abort" ~vtime:(Vclock.now t.clock)
      Fault.Exec_injected_abort;
    true
  | Some _ | None -> false

let run_slice_inner t st =
  t.st.slices <- t.st.slices + 1;
  st.State.fresh_cover <- false;
  if inject_exec_abort t then begin
    t.st.term_abort <- t.st.term_abort + 1;
    Finished (Aborted "injected-abort")
  end
  else begin
  if not st.State.entered then begin
    st.State.entered <- true;
    enter_block t st st.State.fidx st.State.bidx
  end;
  try
    let result = ref Running in
    let continue = ref true in
    while !continue do
      let f = t.prog.funcs.(st.State.fidx) in
      let block = f.blocks.(st.State.bidx) in
      if try_loop_summary t st then () (* leapt to the loop exit *)
      else if st.State.iidx < Array.length block.insts then begin
        spend t st;
        exec_inst t st block.insts.(st.State.iidx)
      end
      else begin
        spend t st;
        (match exec_term t st block.term with
         | Running ->
           (match block.term with
            | Ret _ -> () (* returning continues the caller's block *)
            | Jmp _ | Br _ | Switch _ | Halt _ -> continue := false)
         | other ->
           result := other;
           continue := false)
      end
    done;
    !result
  with Finish reason ->
    (match reason with
     | Exited _ -> t.st.term_exit <- t.st.term_exit + 1
     | Buggy _ -> t.st.term_bug <- t.st.term_bug + 1
     | Aborted msg ->
       t.st.term_abort <- t.st.term_abort + 1;
       Fault.record t.faults ~detail:msg ~vtime:(Vclock.now t.clock) Fault.Exec_abort
     | Infeasible -> t.st.term_infeasible <- t.st.term_infeasible + 1);
    (* a terminated path yields a test case: its witness input replays
       the whole path concretely (KLEE's .ktest files) *)
    (match reason with
     | (Exited _ | Buggy _ | Aborted _)
       when t.record_testcases && List.length t.testcases < max_testcases ->
       let label =
         match reason with
         | Exited code -> Printf.sprintf "exit-%Ld" code
         | Buggy bug -> "bug-" ^ bug.Bug.kind
         | Aborted _ -> "abort"
         | Infeasible -> assert false
       in
       t.testcases <-
         (Model.to_bytes ~size:(Bytes.length t.input) st.State.model, label)
         :: t.testcases
     | Exited _ | Buggy _ | Aborted _ | Infeasible -> ());
    Finished reason
  end

let run_slice t st =
  if not (Telemetry.Registry.enabled t.registry) then run_slice_inner t st
  else begin
    let before = st.State.steps in
    let result = run_slice_inner t st in
    Telemetry.observe t.tm_slice_steps (st.State.steps - before);
    result
  end

let explore t searcher ~deadline =
  set_live_counter t searcher.Searcher.size;
  let rec loop () =
    if Vclock.now t.clock >= deadline then ()
    else
      match searcher.Searcher.select () with
      | None -> ()
      | Some st -> (
        match run_slice t st with
        | Running -> loop ()
        | Forked children ->
          List.iter (fun child -> searcher.Searcher.fork ~parent:st child) children;
          loop ()
        | Finished _ ->
          searcher.Searcher.remove st;
          loop ())
  in
  loop ()
