(** The symbolic executor (the KLEE analog).

    Executes IR over symbolic input bytes. The input file has a fixed
    concrete size; its content is symbolic, seeded by the creation-time
    buffer (all zeros for KLEE's [--sym-files]-style runs, the seed file
    for concolic/pbSE runs).

    Execution is sliced: {!run_slice} advances one state until it has
    executed exactly one terminator, forking at symbolic branches.
    Oracles fire along the way:

    - memory-safety: out-of-bounds, null, use-after-free, bad free —
      both on concrete faults and, for symbolic addresses, by querying
      whether any model pushes the access out of bounds;
    - division by zero, likewise checked symbolically;
    - explicit program aborts ([Halt]).

    Every report carries a witness input obtained from the solver model
    and is replay-confirmed through the concrete interpreter.

    Virtual time advances one unit per executed instruction plus a
    charge proportional to solver work, so "an hour" of symbolic
    execution includes its solver stalls, as in the paper. *)

type finish_reason =
  | Exited of int64
  | Buggy of Bug.t
  | Infeasible (* the path condition became unsatisfiable *)
  | Aborted of string (* halt instruction, stack overflow, ... *)

type slice =
  | Running
  | Forked of State.t list (* new siblings; the original state still runs *)
  | Finished of finish_reason

type stats = {
  mutable instructions : int;
  mutable slices : int;
  mutable forks : int;
  mutable dropped_forks : int; (* suppressed by the live-state cap *)
  mutable cow_copies : int; (* register arrays copied by the CoW write barrier *)
  mutable term_exit : int;
  mutable term_bug : int;
  mutable term_abort : int;
  mutable term_infeasible : int;
  mutable concretized_addrs : int;
  mutable verify_verified : int; (* {!verify} verdicts on pending states *)
  mutable verify_infeasible : int;
  mutable verify_undecided : int;
  mutable subsumed_states : int;
  (* would-be states pruned because their path condition covered a
     recorded unsat core: suppressed fork sides plus pending states
     discarded at verification *)
  mutable interpolant_hits : int; (* queries answered Unsat from recorded cores *)
  mutable interpolant_misses : int;
  (* consults that scanned a non-empty core bucket without a match *)
  mutable loop_summaries : int; (* loops leapt over via a summarized transition *)
  mutable summary_fallbacks : int;
  (* loops executed by plain unrolling: static template mismatches
     (counted once at creation) plus runtime signed-compare guard
     failures — fault-free downgrades *)
}

type t

val create :
  ?max_live:int ->
  ?solver_budget:int ->
  ?solver_retry_cap:int ->
  ?solver_prefix_cap:int ->
  ?confirm_bugs:bool ->
  ?rng_seed:int ->
  ?inject:Pbse_robust.Inject.plan ->
  ?subsumption:bool ->
  ?loop_summaries:bool ->
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  clock:Pbse_util.Vclock.t ->
  Pbse_ir.Types.program ->
  input:bytes ->
  t
(** [create ~clock program ~input] prepares an engine whose symbolic file
    has the size and seed content of [input]. [max_live] caps live states
    (forks beyond it continue on the taken side only; default 8192).
    [solver_retry_cap] bounds the solver's escalating retry budget;
    [solver_prefix_cap] bounds its prefix-context LRU. [inject] activates
    deterministic fault injection (default: none). [subsumption]
    (default true) enables the per-block-boundary unsat-core cache that
    prunes subsumed states; [loop_summaries] (default true) enables the
    static loop-summary pass and its one-step summarized transitions.
    Both caches are engine-local, so pool determinism is unaffected.
    [registry] owns the engine's telemetry instruments (default
    {!Pbse_telemetry.Telemetry.Registry.default}). *)

val cfg : t -> Pbse_ir.Cfg.t
val coverage : t -> Coverage.t
val clock : t -> Pbse_util.Vclock.t
val solver : t -> Pbse_smt.Solver.t
val stats : t -> stats
val bugs : t -> Bug.t list
(** Deduplicated on (location, kind), discovery order. *)

val faults : t -> Pbse_robust.Fault.log
(** Every contained component failure of this engine: solver Unknowns,
    aborts (genuine and injected), fork suppressions. The driver adds
    its own supervisor-level faults to the same log. *)

val input_size : t -> int
val seed_model : t -> Pbse_smt.Model.t

val state_count : t -> int
(** States ever created by this engine (initial states plus forks). *)

val set_trace : t -> (int -> unit) option -> unit
(** Hook invoked with the global block id on every block entry of every
    state (used to record the paper's Fig. 1 scatter data). *)

val set_live_counter : t -> (unit -> int) -> unit
(** How many states are currently schedulable; consulted by the fork cap.
    {!explore} sets this automatically. *)

val set_lazy_fork : t -> bool -> unit
(** In lazy-fork (concolic) mode, divergent branch sides are recorded as
    states without a feasibility query; such states carry
    [needs_verify = true] and must pass {!verify} before being sliced.
    This is the paper's Algorithm 2: concolic execution records fork
    points but explores nothing. *)

type verdict =
  | Verified
  | Infeasible_state (* the newest path constraint is unsatisfiable *)
  | Undecided (* the solver gave up; retrying later escalates its budget *)

val verify : t -> State.t -> verdict
(** Checks a lazily forked state's newest path constraint, repairing its
    witness model. [Infeasible_state] states must be discarded;
    [Undecided] states keep [needs_verify] set so a later call retries
    the query (the solver escalates the budget of repeated Unknowns).
    Returns [Verified] immediately on already-verified states. *)

val set_record_testcases : t -> bool -> unit
(** When enabled, every terminated path contributes a test case: the
    witness input generated from its model, labelled with the outcome
    ("exit-N", "bug-<kind>", "abort") — KLEE's test-case generation.
    Capped at 4096 per engine. *)

val testcases : t -> (bytes * string) list
(** Recorded test cases, oldest first. *)

val initial_state : t -> State.t
val fresh_state_id : t -> int

val run_slice : t -> State.t -> slice

val explore : t -> Searcher.t -> deadline:int -> unit
(** KLEE-style driver loop: add nothing, repeatedly select from the
    searcher and slice until the deadline (virtual time) passes or no
    states remain. Initial states must already be in the searcher. *)
