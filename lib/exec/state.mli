(** Symbolic execution state, the unit the searchers schedule.

    A state is a program counter, a call stack of symbolic register
    frames, a persistent symbolic heap, the path condition collected so
    far, and a concrete model witnessing that condition (KLEE keeps the
    same invariant implicitly via its solver; we keep the witness inline
    so taken-branch queries are free).

    The path condition is a structured {!Pbse_pathcond.Pathcond.t}:
    forks share it persistently, each assumed constraint is tagged with
    the basic block (global id) it was assumed in, and the id-set view
    feeds the block-boundary subsumption cache. *)

type frame = {
  mutable regs : Pbse_smt.Expr.t array;
  mutable shared : bool;
  (* the regs array may be visible from another state's frame; copy
     before writing ([own_frame]) *)
  ret_reg : int option;
  ret_to : (int * int * int) option; (* fidx, bidx, next instruction *)
}

type t = {
  id : int;
  mutable frames : frame list; (* innermost first; never empty while live *)
  mutable mem : Mem.t;
  mutable path : Pbse_pathcond.Pathcond.t; (* structured path condition *)
  mutable model : Pbse_smt.Model.t; (* always satisfies [path] *)
  mutable fidx : int;
  mutable bidx : int;
  mutable iidx : int;
  mutable cur_gid : int;
  (* global id of the block being executed, maintained by the executor at
     block entry; -1 before the first block. New path conditions are
     tagged with it. *)
  mutable depth : int; (* number of forks on this path *)
  mutable steps : int;
  mutable fresh_cover : bool; (* covered new code on its last slice *)
  born : int; (* virtual time of creation *)
  fork_gid : int; (* global block id of the fork that created it, -1 for roots *)
  mutable phase : int; (* pbSE phase tag; -1 when unassigned *)
  mutable needs_verify : bool;
  (* created by a lazy fork: the newest path constraint has not been
     checked for satisfiability and [model] may violate it *)
  mutable entered : bool;
  (* whether the current block's entry has been counted; false for fresh
     roots and forked children until their first slice actually runs *)
}

val create :
  id:int -> nregs:int -> mem:Mem.t -> model:Pbse_smt.Model.t -> fidx:int -> born:int -> t
(** Root state at block 0, instruction 0 of function [fidx]. *)

val fork : t -> id:int -> born:int -> fork_gid:int -> t
(** Copy-on-write fork: O(call depth), no register-array copies. Parent
    and child share regs arrays (both marked [shared]) until either side
    writes; the persistent heap and path are shared structurally as
    before (the caller then diverges the copies). *)

val own_frame : frame -> bool
(** Copy-on-write barrier: ensure the frame's regs array is exclusively
    owned, copying it if it is shared. Returns [true] iff a copy was
    made. Must be called before any in-place write to [frame.regs]. *)

val write_reg : t -> int -> Pbse_smt.Expr.t -> bool
(** Write a register of the innermost frame through the CoW barrier.
    Returns [true] iff the barrier copied the array (for stats). Raises
    [Invalid_argument] on a state with no frames. *)

val current_regs : t -> Pbse_smt.Expr.t array
(** Registers of the innermost frame, for {e reads}: the array may be
    shared with other states, so writes must go through {!write_reg} or
    {!own_frame}. Raises [Invalid_argument] on a state with no frames. *)

val assume : t -> Pbse_smt.Expr.t -> unit
(** Appends a constraint to the path condition, tagged with the current
    block ([cur_gid]); no feasibility check — callers are responsible
    for keeping [model] consistent. *)

val path_conditions : t -> Pbse_smt.Expr.t list
(** Oldest first. *)

val path_spine : t -> Pbse_smt.Expr.t list
(** Newest first — the physically shared spine handed to the solver
    ({!Pbse_pathcond.Pathcond.spine}). *)
