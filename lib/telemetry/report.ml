type phase_row = {
  ordinal : int;
  pid : int;
  trap : bool;
  seeded : int;
  turns : int;
  slices : int;
  new_cover : int;
  dwell : int;
  quarantined : int;
  subsumed : int; (* states pruned by the subsumption cache during this phase *)
  summarized : int; (* loop summaries applied during this phase *)
}

type seed_row = {
  ordinal : int;
  bytes : int;
  turns : int;
  granted : int;
  dwell : int;
  new_blocks : int;
  bugs : int;
  faults : int;
  quarantined : int;
  strikes : int;
  timeouts : int;
}

type t = {
  meta : (string * string) list;
  metrics : (string * int) list;
  phases : phase_row list;
  seeds : seed_row list;
  histograms : Telemetry.histogram_snapshot list;
}

let schema = "pbse-report/1"

(* --- serialisation -------------------------------------------------------- *)

let phase_to_json (p : phase_row) =
  Json.Obj
    [
      ("ordinal", Json.Int p.ordinal);
      ("pid", Json.Int p.pid);
      ("trap", Json.Bool p.trap);
      ("seeded", Json.Int p.seeded);
      ("turns", Json.Int p.turns);
      ("slices", Json.Int p.slices);
      ("new_cover", Json.Int p.new_cover);
      ("dwell", Json.Int p.dwell);
      ("quarantined", Json.Int p.quarantined);
      ("subsumed", Json.Int p.subsumed);
      ("summarized", Json.Int p.summarized);
    ]

let seed_to_json (s : seed_row) =
  Json.Obj
    [
      ("ordinal", Json.Int s.ordinal);
      ("bytes", Json.Int s.bytes);
      ("turns", Json.Int s.turns);
      ("granted", Json.Int s.granted);
      ("dwell", Json.Int s.dwell);
      ("new_blocks", Json.Int s.new_blocks);
      ("bugs", Json.Int s.bugs);
      ("faults", Json.Int s.faults);
      ("quarantined", Json.Int s.quarantined);
      ("strikes", Json.Int s.strikes);
      ("timeouts", Json.Int s.timeouts);
    ]

let histogram_to_json (h : Telemetry.histogram_snapshot) =
  ( h.Telemetry.hs_name,
    Json.Obj
      [
        ("count", Json.Int h.Telemetry.hs_count);
        ("sum", Json.Int h.Telemetry.hs_sum);
        ("min", Json.Int h.Telemetry.hs_min);
        ("max", Json.Int h.Telemetry.hs_max);
        ( "buckets",
          Json.List
            (List.map
               (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
               h.Telemetry.hs_buckets) );
      ] )

let to_json t =
  (* the per-seed section only appears on aggregate pool reports, so
     single-run documents are unchanged by the pool extension *)
  let seeds =
    match t.seeds with
    | [] -> []
    | rows -> [ ("seeds", Json.List (List.map seed_to_json rows)) ]
  in
  Json.to_string_pretty
    (Json.Obj
       ([
          ("schema", Json.Str schema);
          ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.meta));
          ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.metrics));
          ("phases", Json.List (List.map phase_to_json t.phases));
        ]
       @ seeds
       @ [ ("histograms", Json.Obj (List.map histogram_to_json t.histograms)) ]))

(* --- parsing -------------------------------------------------------------- *)

let get_int field json =
  match Option.bind (Json.member field json) Json.to_int with Some i -> i | None -> 0

let phase_of_json json =
  {
    ordinal = get_int "ordinal" json;
    pid = get_int "pid" json;
    trap =
      (match Option.bind (Json.member "trap" json) Json.to_bool with
       | Some b -> b
       | None -> false);
    seeded = get_int "seeded" json;
    turns = get_int "turns" json;
    slices = get_int "slices" json;
    new_cover = get_int "new_cover" json;
    dwell = get_int "dwell" json;
    quarantined = get_int "quarantined" json;
    (* absent in pre-pathcond documents: [get_int] defaults to 0 *)
    subsumed = get_int "subsumed" json;
    summarized = get_int "summarized" json;
  }

let seed_of_json json =
  {
    ordinal = get_int "ordinal" json;
    bytes = get_int "bytes" json;
    turns = get_int "turns" json;
    granted = get_int "granted" json;
    dwell = get_int "dwell" json;
    new_blocks = get_int "new_blocks" json;
    bugs = get_int "bugs" json;
    faults = get_int "faults" json;
    quarantined = get_int "quarantined" json;
    strikes = get_int "strikes" json;
    timeouts = get_int "timeouts" json;
  }

let histogram_of_json name json =
  {
    Telemetry.hs_name = name;
    hs_count = get_int "count" json;
    hs_sum = get_int "sum" json;
    hs_min = get_int "min" json;
    hs_max = get_int "max" json;
    hs_buckets =
      (match Option.bind (Json.member "buckets" json) Json.to_list with
       | None -> []
       | Some items ->
         List.filter_map
           (function
             | Json.List [ Json.Int i; Json.Int c ] -> Some (i, c)
             | _ -> None)
           items);
  }

let of_json text =
  match Json.parse text with
  | Error e -> Error e
  | Ok json -> (
    match Option.bind (Json.member "schema" json) Json.to_str with
    | Some s when s = schema ->
      let assoc field =
        match Json.member field json with Some (Json.Obj fields) -> fields | _ -> []
      in
      let meta =
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
          (assoc "meta")
      in
      let metrics =
        List.filter_map
          (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v))
          (assoc "metrics")
      in
      let phases =
        match Option.bind (Json.member "phases" json) Json.to_list with
        | None -> []
        | Some items -> List.map phase_of_json items
      in
      let seeds =
        match Option.bind (Json.member "seeds" json) Json.to_list with
        | None -> []
        | Some items -> List.map seed_of_json items
      in
      let histograms = List.map (fun (k, v) -> histogram_of_json k v) (assoc "histograms") in
      Ok { meta; metrics; phases; seeds; histograms }
    | Some s -> Error (Printf.sprintf "unsupported report schema %S (want %S)" s schema)
    | None -> Error "missing \"schema\" field")

(* --- diff ----------------------------------------------------------------- *)

let metric t name = match List.assoc_opt name t.metrics with Some v -> v | None -> 0

let diff a b =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "report diff (A -> B)";
  (* metadata changes *)
  List.iter
    (fun (k, va) ->
      match List.assoc_opt k b.meta with
      | Some vb when vb <> va -> line "  [meta] %s: %s -> %s" k va vb
      | Some _ -> ()
      | None -> line "  [meta] %s: %s -> (absent)" k va)
    a.meta;
  List.iter
    (fun (k, vb) ->
      if not (List.mem_assoc k a.meta) then line "  [meta] %s: (absent) -> %s" k vb)
    b.meta;
  (* metric deltas over the key union, A's order first *)
  let keys =
    List.map fst a.metrics
    @ List.filter (fun k -> not (List.mem_assoc k a.metrics)) (List.map fst b.metrics)
  in
  let compared = List.length keys in
  let changed = ref 0 in
  List.iter
    (fun k ->
      let va = metric a k and vb = metric b k in
      if va <> vb then begin
        incr changed;
        let delta = vb - va in
        let pct = if va = 0 then 0 else 100 * delta / abs va in
        line "  %-28s %10d -> %-10d (%+d, %+d%%)" k va vb delta pct
      end)
    keys;
  (* phase movement *)
  let traps l = List.length (List.filter (fun (p : phase_row) -> p.trap) l) in
  let dwell l = List.fold_left (fun acc (p : phase_row) -> acc + p.dwell) 0 l in
  let cover l = List.fold_left (fun acc (p : phase_row) -> acc + p.new_cover) 0 l in
  if a.phases <> [] || b.phases <> [] then
    line "  phases: %d -> %d (traps %d -> %d, dwell %d -> %d, new-cover slices %d -> %d)"
      (List.length a.phases) (List.length b.phases) (traps a.phases) (traps b.phases)
      (dwell a.phases) (dwell b.phases) (cover a.phases) (cover b.phases);
  (* seed-pool movement (aggregate pool reports only) *)
  let seed_sum f l = List.fold_left (fun acc s -> acc + f s) 0 l in
  if a.seeds <> [] || b.seeds <> [] then
    line "  seeds: %d -> %d (turns %d -> %d, dwell %d -> %d, new blocks %d -> %d, bugs %d -> %d)"
      (List.length a.seeds) (List.length b.seeds)
      (seed_sum (fun s -> s.turns) a.seeds)
      (seed_sum (fun s -> s.turns) b.seeds)
      (seed_sum (fun s -> s.dwell) a.seeds)
      (seed_sum (fun s -> s.dwell) b.seeds)
      (seed_sum (fun s -> s.new_blocks) a.seeds)
      (seed_sum (fun s -> s.new_blocks) b.seeds)
      (seed_sum (fun s -> s.bugs) a.seeds)
      (seed_sum (fun s -> s.bugs) b.seeds);
  if !changed = 0 then line "  identical metrics (%d compared)" compared
  else line "  %d of %d metrics changed" !changed compared;
  Buffer.contents buf

(* --- regression gates ------------------------------------------------------ *)

type gate = {
  gate_metric : string;
  gate_pct : int; (* +N: fail if B grows more than N%; -N: fail if B drops more *)
}

let parse_gates spec =
  let parse_one clause =
    let fail () =
      Error
        (Printf.sprintf "bad gate %S (want METRIC:+N%% or METRIC:-N%%)" clause)
    in
    match String.index_opt clause ':' with
    | None -> fail ()
    | Some i ->
      let name = String.sub clause 0 i in
      let v = String.sub clause (i + 1) (String.length clause - i - 1) in
      let v =
        let n = String.length v in
        if n > 0 && v.[n - 1] = '%' then String.sub v 0 (n - 1) else v
      in
      (match int_of_string_opt v with
       | Some pct when name <> "" && pct <> 0 -> Ok { gate_metric = name; gate_pct = pct }
       | Some _ | None -> fail ())
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
      match parse_one c with Ok g -> collect (g :: acc) rest | Error e -> Error e)
  in
  collect []
    (List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec)))

let check_gates gates a b =
  (* integer cross-multiplication, no float drift: growth gate +N fails
     when 100*(vb-va) > N*|va|, drop gate -N when 100*(vb-va) < -N*|va| *)
  List.filter_map
    (fun g ->
      let va = metric a g.gate_metric and vb = metric b g.gate_metric in
      let delta100 = 100 * (vb - va) in
      let threshold = g.gate_pct * abs va in
      let violated =
        if g.gate_pct > 0 then delta100 > threshold else delta100 < threshold
      in
      if violated then
        Some
          (Printf.sprintf "%s: %d -> %d exceeds %+d%% threshold" g.gate_metric va vb
             g.gate_pct)
      else None)
    gates
