(* Instruments carry the owning registry's enabled flag, so hot-path
   mutation is one boolean load regardless of which registry owns the
   instrument, and a registry can be switched on/off without touching
   its instruments. *)

type counter = { c_name : string; c_en : bool ref; mutable c_value : int }
type gauge = { g_name : string; g_en : bool ref; mutable g_value : int }

(* Bucket 0 holds v <= 0; bucket i >= 1 holds [2^(i-1), 2^i - 1]. OCaml
   ints are 63-bit, so max_int = 2^62 - 1 needs 62 value bits: 63 buckets
   (0..62) cover the whole nonnegative range with no clamping slack
   wasted. *)
let nbuckets = 63

let bucket_index v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 in
    let n = ref v in
    while !n > 0 do
      incr bits;
      n := !n lsr 1
    done;
    min !bits (nbuckets - 1)
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

type histogram = {
  h_name : string;
  h_en : bool ref;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type histogram_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_buckets : (int * int) list;
}

type span = {
  s_name : string;
  s_en : bool ref;
  mutable s_count : int;
  mutable s_total : int;
}

let histogram_snapshot h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
  done;
  {
    hs_name = h.h_name;
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = h.h_min;
    hs_max = h.h_max;
    hs_buckets = !buckets;
  }

(* --- registries ------------------------------------------------------------ *)

module Registry = struct
  type t = {
    en : bool ref;
    counters : (string, counter) Hashtbl.t;
    gauges : (string, gauge) Hashtbl.t;
    histograms : (string, histogram) Hashtbl.t;
    spans : (string, span) Hashtbl.t;
  }

  let create ?(enabled = false) () =
    {
      en = ref enabled;
      counters = Hashtbl.create 64;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 16;
      spans = Hashtbl.create 16;
    }

  (* The one process-global registry, kept only so pre-context code
     paths (CLI solo runs, tests, examples) have a registry without
     threading one. Everything context-threaded gets its own
     [create]. This back-compat shim is the single piece of module
     state in the library. *)
  let default_instance = lazy (create ())
  let default () = Lazy.force default_instance

  let enabled t = !(t.en)
  let set_enabled t b = t.en := b

  let intern table name make =
    match Hashtbl.find_opt table name with
    | Some v -> v
    | None ->
      let v = make name in
      Hashtbl.replace table name v;
      v

  let counter t name =
    intern t.counters name (fun c_name -> { c_name; c_en = t.en; c_value = 0 })

  let gauge t name =
    intern t.gauges name (fun g_name -> { g_name; g_en = t.en; g_value = 0 })

  let histogram t name =
    intern t.histograms name (fun h_name ->
        { h_name; h_en = t.en; h_buckets = Array.make nbuckets 0; h_count = 0;
          h_sum = 0; h_min = 0; h_max = 0 })

  let span t name =
    intern t.spans name (fun s_name -> { s_name; s_en = t.en; s_count = 0; s_total = 0 })

  let reset t =
    Hashtbl.iter (fun _ c -> c.c_value <- 0) t.counters;
    Hashtbl.iter (fun _ g -> g.g_value <- 0) t.gauges;
    Hashtbl.iter
      (fun _ h ->
        Array.fill h.h_buckets 0 nbuckets 0;
        h.h_count <- 0;
        h.h_sum <- 0;
        h.h_min <- 0;
        h.h_max <- 0)
      t.histograms;
    Hashtbl.iter
      (fun _ s ->
        s.s_count <- 0;
        s.s_total <- 0)
      t.spans

  (* Merge laws (docs/parallelism.md): counters and spans add, gauges
     keep the max, histograms add bucket-wise with min/max hulls. Every
     law is commutative and associative with the zero instrument as
     identity, so merging per-session registries in any grouping yields
     the same totals — the pool merges in seed-ordinal order purely for
     reproducibility of intermediate states. Merging bypasses the
     enabled gate: it is bookkeeping, not hot-path instrumentation. *)
  let merge_into ~into src =
    Hashtbl.iter
      (fun name (c : counter) ->
        let dst = counter into name in
        dst.c_value <- dst.c_value + c.c_value)
      src.counters;
    Hashtbl.iter
      (fun name (g : gauge) ->
        let dst = gauge into name in
        dst.g_value <- max dst.g_value g.g_value)
      src.gauges;
    Hashtbl.iter
      (fun name (h : histogram) ->
        let dst = histogram into name in
        if h.h_count > 0 then begin
          if dst.h_count = 0 then begin
            dst.h_min <- h.h_min;
            dst.h_max <- h.h_max
          end
          else begin
            if h.h_min < dst.h_min then dst.h_min <- h.h_min;
            if h.h_max > dst.h_max then dst.h_max <- h.h_max
          end;
          dst.h_count <- dst.h_count + h.h_count;
          dst.h_sum <- dst.h_sum + h.h_sum;
          Array.iteri
            (fun i n -> if n > 0 then dst.h_buckets.(i) <- dst.h_buckets.(i) + n)
            h.h_buckets
        end)
      src.histograms;
    Hashtbl.iter
      (fun name (s : span) ->
        let dst = span into name in
        dst.s_count <- dst.s_count + s.s_count;
        dst.s_total <- dst.s_total + s.s_total)
      src.spans

  let sorted_values table = Hashtbl.fold (fun _ v acc -> v :: acc) table []

  let snapshot_counters t =
    sorted_values t.counters
    |> List.map (fun c -> (c.c_name, c.c_value))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let restore_counters t pairs =
    (* campaign resume: reinstate values captured by snapshot_counters,
       creating missing counters; like merge_into this ignores the
       enabled gate — the snapshot is authoritative *)
    List.iter (fun (name, v) -> (counter t name).c_value <- v) pairs

  let snapshot_gauges t =
    sorted_values t.gauges
    |> List.map (fun g -> (g.g_name, g.g_value))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let snapshot_spans t =
    sorted_values t.spans
    |> List.map (fun s -> (s.s_name, s.s_count, s.s_total))
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

  let snapshot_histograms t =
    sorted_values t.histograms
    |> List.filter (fun h -> h.h_count > 0)
    |> List.map histogram_snapshot
    |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)
end

(* --- mutation (gated) ----------------------------------------------------- *)

let incr c = if !(c.c_en) then c.c_value <- c.c_value + 1
let add c n = if !(c.c_en) then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let set_gauge g v = if !(g.g_en) then g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  if !(h.h_en) then begin
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    if h.h_count = 0 then begin
      h.h_min <- v;
      h.h_max <- v
    end
    else begin
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    end;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v
  end

let with_span s ~now f =
  if not !(s.s_en) then f ()
  else begin
    let t0 = now () in
    let record () =
      s.s_count <- s.s_count + 1;
      s.s_total <- s.s_total + (now () - t0)
    in
    match f () with
    | r ->
      record ();
      r
    | exception e ->
      record ();
      raise e
  end

let span_count s = s.s_count
let span_total s = s.s_total

(* --- process-global shims (Registry.default) ------------------------------- *)

let enabled () = Registry.enabled (Registry.default ())
let set_enabled b = Registry.set_enabled (Registry.default ()) b
let reset () = Registry.reset (Registry.default ())
let counter name = Registry.counter (Registry.default ()) name
let gauge name = Registry.gauge (Registry.default ()) name
let histogram name = Registry.histogram (Registry.default ()) name
let span name = Registry.span (Registry.default ()) name
let snapshot_counters () = Registry.snapshot_counters (Registry.default ())
let snapshot_gauges () = Registry.snapshot_gauges (Registry.default ())
let snapshot_spans () = Registry.snapshot_spans (Registry.default ())
let snapshot_histograms () = Registry.snapshot_histograms (Registry.default ())
