let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* --- counters ------------------------------------------------------------- *)

type counter = { c_name : string; mutable c_value : int }

(* --- gauges --------------------------------------------------------------- *)

type gauge = { g_name : string; mutable g_value : int }

(* --- histograms ----------------------------------------------------------- *)

(* Bucket 0 holds v <= 0; bucket i >= 1 holds [2^(i-1), 2^i - 1]. OCaml
   ints are 63-bit, so max_int = 2^62 - 1 needs 62 value bits: 63 buckets
   (0..62) cover the whole nonnegative range with no clamping slack
   wasted. *)
let nbuckets = 63

let bucket_index v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 in
    let n = ref v in
    while !n > 0 do
      incr bits;
      n := !n lsr 1
    done;
    min !bits (nbuckets - 1)
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type histogram_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_buckets : (int * int) list;
}

(* --- spans ---------------------------------------------------------------- *)

type span = { s_name : string; mutable s_count : int; mutable s_total : int }

(* --- registry ------------------------------------------------------------- *)

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let spans : (string, span) Hashtbl.t = Hashtbl.create 16

let intern table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = make name in
    Hashtbl.replace table name v;
    v

let counter name = intern counters name (fun c_name -> { c_name; c_value = 0 })
let gauge name = intern gauges name (fun g_name -> { g_name; g_value = 0 })

let histogram name =
  intern histograms name (fun h_name ->
      { h_name; h_buckets = Array.make nbuckets 0; h_count = 0; h_sum = 0;
        h_min = 0; h_max = 0 })

let span name = intern spans name (fun s_name -> { s_name; s_count = 0; s_total = 0 })

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 nbuckets 0;
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- 0;
      h.h_max <- 0)
    histograms;
  Hashtbl.iter
    (fun _ s ->
      s.s_count <- 0;
      s.s_total <- 0)
    spans

(* --- mutation (gated) ----------------------------------------------------- *)

let incr c = if !enabled_flag then c.c_value <- c.c_value + 1
let add c n = if !enabled_flag then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let set_gauge g v = if !enabled_flag then g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  if !enabled_flag then begin
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    if h.h_count = 0 then begin
      h.h_min <- v;
      h.h_max <- v
    end
    else begin
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    end;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v
  end

let with_span s ~now f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    let record () =
      s.s_count <- s.s_count + 1;
      s.s_total <- s.s_total + (now () - t0)
    in
    match f () with
    | r ->
      record ();
      r
    | exception e ->
      record ();
      raise e
  end

let span_count s = s.s_count
let span_total s = s.s_total

(* --- snapshots ------------------------------------------------------------ *)

let sorted_values table =
  Hashtbl.fold (fun _ v acc -> v :: acc) table []

let snapshot_counters () =
  sorted_values counters
  |> List.map (fun c -> (c.c_name, c.c_value))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_gauges () =
  sorted_values gauges
  |> List.map (fun g -> (g.g_name, g.g_value))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_spans () =
  sorted_values spans
  |> List.map (fun s -> (s.s_name, s.s_count, s.s_total))
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let histogram_snapshot h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
  done;
  {
    hs_name = h.h_name;
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = h.h_min;
    hs_max = h.h_max;
    hs_buckets = !buckets;
  }

let snapshot_histograms () =
  sorted_values histograms
  |> List.filter (fun h -> h.h_count > 0)
  |> List.map histogram_snapshot
  |> List.sort (fun a b -> String.compare a.hs_name b.hs_name)
