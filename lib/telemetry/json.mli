(** Minimal JSON reader/writer for run reports.

    Deliberately tiny: objects, arrays, strings, 63-bit integers, bools
    and null — no floats, so rendering is deterministic and roundtrips
    exactly. Object key order is preserved on both print and parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace), keys in the given order. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by people. *)

val parse : string -> (t, string) result
(** Accepts what {!to_string} emits plus arbitrary inter-token
    whitespace. Numbers with a fraction or exponent are an error. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects. *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
