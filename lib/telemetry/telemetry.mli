(** Zero-dependency metrics substrate.

    Registries of named instruments: monotonic counters, gauges, latency
    histograms with fixed log-scale buckets, and span timers. A
    {!Registry.t} is a first-class value — every context-threaded layer
    (docs/parallelism.md) owns a private registry, so parallel campaign
    turns never share instrument state; {!Registry.merge_into} folds
    per-session registries into an aggregate under commutative,
    associative merge laws. Instruments are created once (per name, per
    registry) and mutated on hot paths; every mutation is gated on the
    owning registry's enabled flag, so the zero-telemetry path costs one
    boolean load and allocates nothing.

    All quantities are integers measured in deterministic units (counts,
    work units, virtual-clock ticks) — never wall clock — so two runs
    with the same seed produce byte-identical snapshots. Snapshots are
    sorted by instrument name, making serialisation order independent of
    creation order.

    Registries (and their instruments) are not thread-safe: each domain
    must mutate only registries it owns, merging at a barrier. *)

(** {1 Instruments} *)

type counter
type gauge
type histogram
type span

type histogram_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int; (* 0 when empty *)
  hs_max : int; (* 0 when empty *)
  hs_buckets : (int * int) list; (* (bucket index, count), nonzero only *)
}

(** {1 Registries} *)

module Registry : sig
  type t

  val create : ?enabled:bool -> unit -> t
  (** A fresh, empty registry (disabled unless [enabled]). *)

  val default : unit -> t
  (** The process-global registry behind the module-level shims below —
      back-compat for code that predates explicit contexts. Never use it
      from more than one domain. *)

  val enabled : t -> bool
  val set_enabled : t -> bool -> unit

  val reset : t -> unit
  (** Zero every registered instrument (instruments stay registered). *)

  val counter : t -> string -> counter
  (** Registers (or returns the existing) counter under [name]. *)

  val gauge : t -> string -> gauge
  val histogram : t -> string -> histogram
  val span : t -> string -> span

  val merge_into : into:t -> t -> unit
  (** Fold [src] into [into], creating missing instruments: counters and
      spans add, gauges keep the max, histograms add bucket-wise with
      min/max hulls. Commutative and associative; ignores the enabled
      gates. *)

  val snapshot_counters : t -> (string * int) list
  (** Every registered counter, sorted by name (zeros included). *)

  val restore_counters : t -> (string * int) list -> unit
  (** Reinstate values captured by {!snapshot_counters} (campaign
      resume), creating missing counters. Like {!merge_into} this
      bypasses the enabled gate: the snapshot is authoritative. *)

  val snapshot_gauges : t -> (string * int) list

  val snapshot_spans : t -> (string * int * int) list
  (** (name, count, total elapsed), sorted by name. *)

  val snapshot_histograms : t -> histogram_snapshot list
  (** Sorted by name; empty histograms are skipped. *)
end

(** {1 Mutation}

    Gated on the owning registry's enabled flag. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {2 Histograms}

    Fixed log2-scale buckets: bucket 0 holds values [<= 0]; bucket [i]
    ([i >= 1]) holds values in [[2^(i-1), 2^i - 1]]. The top bucket
    absorbs everything above its lower bound, so [max_int] lands in
    bucket [nbuckets - 1]. *)

val nbuckets : int

val bucket_index : int -> int
(** Total: negative values and 0 map to bucket 0; huge values clamp to
    the top bucket. *)

val bucket_lo : int -> int
(** Inclusive lower bound of a bucket (0 for bucket 0). *)

val observe : histogram -> int -> unit
val histogram_snapshot : histogram -> histogram_snapshot

(** {2 Spans}

    A span accumulates the duration of a timed section under a
    caller-supplied monotonic clock (virtual time in this codebase; a
    span never reads the wall clock itself). *)

val with_span : span -> now:(unit -> int) -> (unit -> 'a) -> 'a
(** Runs the thunk, charging [now () - now ()] elapsed units to the span
    (also on exception). When the owning registry is disabled this is
    exactly [f ()]. *)

val span_count : span -> int
val span_total : span -> int

(** {1 Process-global shims}

    Module-level conveniences over {!Registry.default} — back-compat for
    single-domain code without an explicit context. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val reset : unit -> unit
val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram
val span : string -> span
val snapshot_counters : unit -> (string * int) list
val snapshot_gauges : unit -> (string * int) list
val snapshot_spans : unit -> (string * int * int) list
val snapshot_histograms : unit -> histogram_snapshot list
