(** Zero-dependency metrics substrate.

    A process-global registry of named instruments: monotonic counters,
    gauges, latency histograms with fixed log-scale buckets, and span
    timers. Instruments are created once (per name) at module
    initialisation and mutated on hot paths; every mutation is gated on
    {!enabled}, so the zero-telemetry path costs one boolean load and
    allocates nothing.

    All quantities are integers measured in deterministic units (counts,
    work units, virtual-clock ticks) — never wall clock — so two runs
    with the same seed produce byte-identical snapshots. Snapshots are
    sorted by instrument name, making serialisation order independent of
    module-initialisation order. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every registered instrument (instruments stay registered).
    Called at the start of an instrumented run so per-run reports do not
    leak state across runs in the same process. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Registers (or returns the existing) counter under [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms}

    Fixed log2-scale buckets: bucket 0 holds values [<= 0]; bucket [i]
    ([i >= 1]) holds values in [[2^(i-1), 2^i - 1]]. The top bucket
    absorbs everything above its lower bound, so [max_int] lands in
    bucket [nbuckets - 1]. *)

type histogram

val nbuckets : int

val bucket_index : int -> int
(** Total: negative values and 0 map to bucket 0; huge values clamp to
    the top bucket. *)

val bucket_lo : int -> int
(** Inclusive lower bound of a bucket (0 for bucket 0). *)

val histogram : string -> histogram
val observe : histogram -> int -> unit

type histogram_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int; (* 0 when empty *)
  hs_max : int; (* 0 when empty *)
  hs_buckets : (int * int) list; (* (bucket index, count), nonzero only *)
}

val histogram_snapshot : histogram -> histogram_snapshot

(** {1 Spans}

    A span accumulates the duration of a timed section under a
    caller-supplied monotonic clock (virtual time in this codebase; a
    span never reads the wall clock itself). *)

type span

val span : string -> span

val with_span : span -> now:(unit -> int) -> (unit -> 'a) -> 'a
(** Runs the thunk, charging [now () - now ()] elapsed units to the span
    (also on exception). When telemetry is disabled this is exactly
    [f ()]. *)

val span_count : span -> int
val span_total : span -> int

(** {1 Snapshots} *)

val snapshot_counters : unit -> (string * int) list
(** Every registered counter, sorted by name (zeros included). *)

val snapshot_gauges : unit -> (string * int) list

val snapshot_spans : unit -> (string * int * int) list
(** (name, count, total elapsed), sorted by name. *)

val snapshot_histograms : unit -> histogram_snapshot list
(** Sorted by name; empty histograms are skipped. *)
