(** Structured per-run reports.

    A report is a flat, ordered bag of integer metrics plus string
    metadata, per-phase rows, and histogram snapshots. The driver builds
    one at the end of an instrumented run; the CLI serialises it with
    [--report FILE] and compares two with [report --diff A B].

    Serialisation is deterministic: field order is the construction
    order, integers only, no timestamps — two runs with the same seed
    render byte-identical JSON (the telemetry determinism test pins
    this). Schema documented in docs/telemetry.md. *)

type phase_row = {
  ordinal : int; (* 1-based scheduling order *)
  pid : int; (* cluster id from the phase division *)
  trap : bool;
  seeded : int; (* seedStates initially mapped into the phase *)
  turns : int; (* scheduler turns granted *)
  slices : int; (* state slices executed during those turns *)
  new_cover : int; (* slices that covered a new block *)
  dwell : int; (* virtual time spent inside the phase's turns *)
  quarantined : int; (* states evicted while this phase ran *)
  subsumed : int; (* states pruned by the subsumption cache in its turns *)
  summarized : int; (* loop summaries applied in its turns *)
}
(** [subsumed]/[summarized] default to 0 when parsing pre-pathcond
    documents, so old reports stay readable. *)

type seed_row = {
  ordinal : int; (* 1-based pool order (smallest seed first) *)
  bytes : int; (* seed size *)
  turns : int; (* campaign turns granted *)
  granted : int; (* budget granted across those turns *)
  dwell : int; (* virtual time actually consumed *)
  new_blocks : int; (* blocks this seed added to the merged set *)
  bugs : int; (* merged bugs first found under this seed *)
  faults : int; (* contained faults in this seed's engine *)
  quarantined : int; (* quarantine evictions during its turns *)
  strikes : int; (* quarantine strikes during its turns *)
  timeouts : int; (* watchdog strikes: overran or crashed turns *)
}
(** Per-seed row of an aggregate pool report ([Driver.pool_run_report]).
    Single-run reports leave [seeds] empty and serialise exactly as
    before the pool extension. *)

type t = {
  meta : (string * string) list;
  metrics : (string * int) list;
  phases : phase_row list;
  seeds : seed_row list;
  histograms : Telemetry.histogram_snapshot list;
}

val schema : string
(** ["pbse-report/1"], embedded in the JSON. *)

val to_json : t -> string
(** Pretty-printed JSON document (trailing newline). *)

val of_json : string -> (t, string) result
(** Parses what {!to_json} emitted; unknown fields are ignored, a wrong
    schema string is an error. *)

val metric : t -> string -> int
(** Metric lookup; 0 when absent (so diffs treat a missing metric as a
    zero baseline). *)

val diff : t -> t -> string
(** Human-readable regression summary between two reports: changed
    metadata, every changed metric with absolute and percent delta,
    per-phase dwell/coverage movement, and — for aggregate pool
    reports — per-seed turn/dwell/new-block movement. *)

type gate
(** One regression threshold on a metric: [+N] fails when the metric
    grows by more than N% from A to B, [-N] when it drops by more. *)

val parse_gates : string -> (gate list, string) result
(** Parses a comma-separated spec like
    ["coverage.blocks:-10%,solver.work:+75%"]; the [%] suffix is
    optional, a zero threshold is an error. *)

val check_gates : gate list -> t -> t -> string list
(** Violation messages for each gate B breaks relative to A (empty list:
    all gates hold). Integer arithmetic throughout, so CI gating is
    deterministic. An absent metric counts as zero on either side. *)
