type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write ~indent ~level buf v =
  let nl l =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to 2 * l do
        Buffer.add_char buf ' '
      done
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s -> add_escaped buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        add_escaped buf k;
        Buffer.add_char buf ':';
        if indent then Buffer.add_char buf ' ';
        write ~indent ~level:(level + 1) buf item)
      fields;
    nl level;
    Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 1024 in
  write ~indent ~level:0 buf v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* --- parsing -------------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
            Buffer.add_char buf e;
            loop ()
          | 'n' ->
            Buffer.add_char buf '\n';
            loop ()
          | 't' ->
            Buffer.add_char buf '\t';
            loop ()
          | 'r' ->
            Buffer.add_char buf '\r';
            loop ()
          | 'b' ->
            Buffer.add_char buf '\b';
            loop ()
          | 'f' ->
            Buffer.add_char buf '\012';
            loop ()
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
            in
            (* we only ever emit \u00xx for control bytes; decode the
               low byte and keep anything else as '?' *)
            Buffer.add_char buf (if code < 256 then Char.chr code else '?');
            loop ()
          | _ -> fail "bad escape")
        | c ->
          Buffer.add_char buf c;
          loop ()
      end
    in
    loop ()
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    (match peek () with
     | Some ('.' | 'e' | 'E') -> fail "floats are not supported"
     | _ -> ());
    if !pos = start then fail "expected a number"
    else
      match int_of_string_opt (String.sub s start (!pos - start)) with
      | Some i -> i
      | None -> fail "number out of range"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Int (parse_int ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- accessors ------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
