(** Template-based loop summaries for input-count-bounded loops.

    The static pass scans every function's natural loops
    ({!Pbse_ir.Loop}) for the induction template

    {v
      header:  t := i <u b        (Ult, or Slt under a runtime guard)
               br t, body, exit
      body:    i := i + 1
               r1 := r1 + c1     (any number of distinct advances)
               ...
               jmp header
    v}

    — a two-block loop whose header tests a step-1 counter against a
    loop-invariant bound and whose body only advances registers by
    constants. Each advance [r := r + c] may appear either as a plain
    self-add or in the frontend's materialised form
    [tmp := r + c; r := tmp + 0] (MiniC assignments lower through a
    temporary); all written registers (destinations and temporaries)
    must be pairwise distinct, so each advance reads only its own
    register and the body is order-independent. For a matched loop, the
    full effect of running it to completion is a closed form over the
    entry values ([niter] = [b - i] when the test holds, else [0]; each
    [rj] advances by [cj * niter]; each temporary ends equal to its
    destination once at least one iteration ran), exact modulo 2^64 — so
    the executor can jump a state from the header to the exit in one
    step, with no new path constraint and no forks (the closed form is
    an [Ite] on the entry test, covering the zero-iteration inputs too).
    See docs/subsumption.md for the exactness argument.

    Loops that fail the template — nested, multi-latch, irreducible,
    effectful bodies — are counted as fallbacks and executed by plain
    unrolling, a fault-free downgrade. *)

type update = {
  dst : int; (* register advanced by the loop body *)
  step : int64; (* constant added per iteration *)
  tmp : int option; (* temporary of the materialised pair, if any *)
}

type summary = {
  fidx : int;
  header : int; (* block index of the loop header *)
  body : int; (* the single body block *)
  exit_ : int; (* header's fall-through when the test fails *)
  cmp : Pbse_ir.Types.binop; (* Ult or Slt *)
  counter : int; (* induction register i, step exactly 1 *)
  counter_tmp : int option; (* temporary of the counter's pair, if any *)
  cond_reg : int; (* register holding the header test *)
  bound : Pbse_ir.Types.operand; (* Const, or a Reg unwritten by the loop *)
  updates : update list; (* non-counter advances *)
}

type analysis = {
  summaries : (int * int, summary) Hashtbl.t; (* (fidx, header) -> summary *)
  fallbacks : int; (* detected loops that failed the template *)
}

val analyze : Pbse_ir.Types.program -> analysis
