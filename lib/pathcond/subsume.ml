module Expr = Pbse_smt.Expr

type core = {
  ids : int array; (* sorted ascending *)
  sg : int; (* bloom signature of [ids] *)
}

(* newest-first core list per block; small and capped, so the linear
   scan stays cheap and eviction is a List.filteri *)
type t = { buckets : (int, core list) Hashtbl.t }

let bucket_cap = 24

let create () = { buckets = Hashtbl.create 256 }

let record t ~block exprs =
  let ids =
    List.sort_uniq compare (List.map (fun e -> e.Expr.id) exprs) |> Array.of_list
  in
  if Array.length ids > 0 then begin
    let sg = Pathcond.signature_of_ids (Array.to_list ids) in
    let cores = Option.value ~default:[] (Hashtbl.find_opt t.buckets block) in
    let dup = List.exists (fun c -> c.sg = sg && c.ids = ids) cores in
    if not dup then begin
      let cores = { ids; sg } :: cores in
      let cores = List.filteri (fun i _ -> i < bucket_cap) cores in
      Hashtbl.replace t.buckets block cores
    end
  end

let consult t ~block ~sg ~mem =
  match Hashtbl.find_opt t.buckets block with
  | None | Some [] -> `Empty
  | Some cores ->
    if List.exists (fun c -> c.sg land sg = c.sg && Array.for_all mem c.ids) cores
    then `Hit
    else `Miss

let stats t =
  Hashtbl.fold (fun _ cores (n, b) -> (n + List.length cores, b + 1)) t.buckets (0, 0)
