(** Per-block-boundary subsumption cache over unsat cores.

    When a feasibility query issued at block [B] comes back Unsat, the
    solver reports the failing constraint group — a genuine unsat core
    (the group is closed under the constraints that justify its learned
    bounds). The cache records the core's id set under [B]. A later
    query at [B] whose constraint ids are a {e superset} of some
    recorded core is Unsat by entailment — the conjunction of a superset
    of an unsatisfiable set is unsatisfiable — and is answered without
    touching the solver. This is the weakened-interpolant scheme of
    docs/subsumption.md: the core is the slice of the path condition the
    search actually used to refute the query.

    Soundness does not depend on where the query was issued; bucketing
    by block id only keeps lookups O(bucket) — queries at the same
    program point are the ones that repeat cores.

    The cache is per-executor (per-session, per-arena): ids are only
    meaningful within one interning arena, and keeping it session-local
    preserves byte-identical pool reports at every [--jobs] width. *)

type t

val create : unit -> t

val record : t -> block:int -> Pbse_smt.Expr.t list -> unit
(** Record the id set of an unsat core learned at [block]. Duplicate
    cores are dropped; buckets are capped (oldest evicted first). *)

val consult : t -> block:int -> sg:int -> mem:(int -> bool) -> [ `Hit | `Miss | `Empty ]
(** Does some recorded core at [block] consist only of ids satisfying
    [mem]? [sg] is the bloom signature of the querying id set
    ({!Pathcond.signature} [lor] the extra constraints' contribution);
    cores whose signature is not covered are skipped without testing.
    [`Hit]: a core is covered — the query is Unsat by entailment.
    [`Miss]: cores exist at [block] but none is covered. [`Empty]: no
    cores recorded at [block] yet. *)

val stats : t -> int * int
(** [(cores, buckets)] currently held. *)
