module Expr = Pbse_smt.Expr
module Iset = Set.Make (Int)

type t = {
  spine : Expr.t list; (* newest first; physical identity is load-bearing *)
  len : int;
  ids : Iset.t;
  sg : int;
  marks : (int * int) list; (* (gid, conditions before this delta), newest first *)
}

let empty = { spine = []; len = 0; ids = Iset.empty; sg = 0; marks = [] }

let bloom_bit id = 1 lsl (id mod 63)

let signature_of_ids ids = List.fold_left (fun sg id -> sg lor bloom_bit id) 0 ids

let assume t ~block e =
  let marks =
    match t.marks with
    | (g, _) :: _ when g = block -> t.marks
    | _ -> (block, t.len) :: t.marks
  in
  {
    spine = e :: t.spine;
    len = t.len + 1;
    ids = Iset.add e.Expr.id t.ids;
    sg = t.sg lor bloom_bit e.Expr.id;
    marks;
  }

let spine t = t.spine
let conditions t = List.rev t.spine
let length t = t.len
let mem t id = Iset.mem id t.ids
let signature t = t.sg

let deltas t =
  (* walk marks (newest first) slicing the spine into per-block runs *)
  let rec slice spine len marks acc =
    match marks with
    | [] -> acc
    | (gid, start) :: rest ->
      let rec take spine len grp =
        if len = start then (spine, grp) else
          match spine with
          | [] -> ([], grp)
          | e :: tl -> take tl (len - 1) (e :: grp)
      in
      let spine, grp = take spine len [] in
      slice spine start rest ((gid, grp) :: acc)
  in
  slice t.spine t.len t.marks []
