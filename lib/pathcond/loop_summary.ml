open Pbse_ir.Types
module Loop = Pbse_ir.Loop

type update = { dst : int; step : int64; tmp : int option }

type summary = {
  fidx : int;
  header : int;
  body : int;
  exit_ : int;
  cmp : binop;
  counter : int;
  counter_tmp : int option;
  cond_reg : int;
  bound : operand;
  updates : update list;
}

type analysis = {
  summaries : (int * int, summary) Hashtbl.t;
  fallbacks : int;
}

(* Match one natural loop against the template; None is a fallback. *)
let match_loop f fidx (l : Loop.loop) ~tainted ~preds =
  let loop_size = Array.fold_left (fun n m -> if m then n + 1 else n) 0 l.Loop.body in
  if Array.exists2 (fun t b -> t && b) tainted l.Loop.body then None
  else
    match l.Loop.latches with
    | [ latch ] when loop_size = 2 && latch <> l.Loop.header -> (
      let header_b = f.blocks.(l.Loop.header) in
      let body_b = f.blocks.(latch) in
      match (header_b.insts, header_b.term, body_b.term) with
      | ( [| Bin (t, ((Ult | Slt) as cmp), Reg i, bound) |],
          Br (Reg t', th, el),
          Jmp back )
        when t = t' && th = latch && back = l.Loop.header
             && (not l.Loop.body.(el))
             && List.for_all (fun p -> p = l.Loop.header) preds.(latch) -> (
        (* body: constant advances over distinct registers, counter
           stepping by exactly 1. Two lowering shapes are accepted: a
           plain self-add [r := r + c], and the frontend's materialised
           pair [tmp := r + c; r := tmp + 0] (MiniC assignments lower
           through a temporary). Each update reads only its own
           register, so the updates are order-independent and the whole
           body has a closed form. *)
        let insts = body_b.insts in
        let n = Array.length insts in
        let rec scan acc written k =
          if k = n then Some (List.rev acc, written)
          else
            match insts.(k) with
            | Bin (r, Add, Reg r', Const c)
              when r = r' && not (List.mem r written) ->
              scan ({ dst = r; step = c; tmp = None } :: acc) (r :: written)
                (k + 1)
            | Bin (tm, Add, Reg r, Const c)
              when tm <> r
                   && (not (List.mem tm written))
                   && (not (List.mem r written))
                   && k + 1 < n -> (
              match insts.(k + 1) with
              | Bin (r2, Add, Reg tm2, Const 0L) when r2 = r && tm2 = tm ->
                scan
                  ({ dst = r; step = c; tmp = Some tm } :: acc)
                  (tm :: r :: written) (k + 2)
              | _ -> None)
            | _ -> None
        in
        match scan [] [] 0 with
        | Some (ups, written) -> (
          match List.find_opt (fun u -> u.dst = i) ups with
          | Some cu when cu.step = 1L && not (List.mem t written) ->
            let bound_ok =
              match bound with
              | Const _ -> true
              | Reg b -> b <> t && not (List.mem b written)
            in
            if bound_ok then
              Some
                {
                  fidx;
                  header = l.Loop.header;
                  body = latch;
                  exit_ = el;
                  cmp;
                  counter = i;
                  counter_tmp = cu.tmp;
                  cond_reg = t;
                  bound;
                  updates = List.filter (fun u -> u.dst <> i) ups;
                }
            else None
          | _ -> None)
        | None -> None)
      | _ -> None)
    | _ -> None

let analyze prog =
  let summaries = Hashtbl.create 16 in
  let fallbacks = ref 0 in
  Array.iteri
    (fun fidx f ->
      let n = Array.length f.blocks in
      if n > 0 then begin
        let { Loop.loops; irreducible } = Loop.analyze f in
        let tainted = Array.make n false in
        List.iter (fun b -> tainted.(b) <- true) irreducible;
        let preds = Array.make n [] in
        Array.iteri
          (fun u blk ->
            List.iter
              (fun v -> preds.(v) <- u :: preds.(v))
              (Pbse_ir.Cfg.term_successors blk.term))
          f.blocks;
        List.iter
          (fun l ->
            match match_loop f fidx l ~tainted ~preds with
            | Some s -> Hashtbl.replace summaries (fidx, s.header) s
            | None -> incr fallbacks)
          loops
      end)
    prog.funcs;
  { summaries; fallbacks = !fallbacks }
