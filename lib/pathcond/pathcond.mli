(** Structured path conditions: the layer between executor and solver.

    A path condition is the conjunction of branch constraints a symbolic
    state has assumed. Historically the executor kept it as a bare
    [Expr.t list] and {!Pbse_smt.Prefix_ctx} reverse-engineered its
    structure; this module makes the structure explicit and the solver
    layer one consumer of it.

    The representation is persistent: forked states share the whole
    prefix physically. The spine — newest-condition-first cons list —
    is exposed verbatim to the solver because [Prefix_ctx] indexes
    prefix entries by the {e physical} identity of spine tails: two
    sibling states share every prefix context their common ancestor
    built. Nothing in this module ever rebuilds or reorders the spine.

    On top of the spine the type tracks, incrementally:
    - the id set of the conditions, with an order-independent bloom
      signature, so the subsumption layer ({!Subsume}) can decide
      entailment-by-superset in O(core size);
    - block-boundary marks: which basic block (global id) each
      condition was assumed in, giving the per-block deltas the
      interpolation literature keys pruning on. *)

type t

val empty : t

val assume : t -> block:int -> Pbse_smt.Expr.t -> t
(** Extend the path with one condition, recorded against the global
    block id it was assumed in ([-1] when unknown). O(log n). *)

val spine : t -> Pbse_smt.Expr.t list
(** Newest-first condition list, physically shared across forks — the
    exact value handed to [Solver.check_assuming ~path]. *)

val conditions : t -> Pbse_smt.Expr.t list
(** Oldest-first conditions (assumption order). *)

val length : t -> int

val mem : t -> int -> bool
(** Is the expression with this id one of the conditions? *)

val signature : t -> int
(** Bloom signature over condition ids: for any subset [s] of the
    conditions, [signature_of_ids s land signature t = signature_of_ids s]. *)

val deltas : t -> (int * Pbse_smt.Expr.t list) list
(** Block-boundary view, oldest first: [(gid, conds)] groups of
    consecutive conditions assumed in the same block (conds oldest
    first). Consecutive conditions from the same block merge into one
    delta; revisiting a block later starts a new one. *)

val signature_of_ids : int list -> int
(** The bloom signature a set of condition ids would contribute. *)
