module Bbv = Pbse_concolic.Bbv

type mode =
  | Bbv_only
  | Bbv_with_coverage

type phase = {
  pid : int;
  intervals : int array;
  first_vtime : int;
  trap : bool;
  longest_run : int;
}

type division = {
  mode : mode;
  k : int;
  assignment : int array;
  phases : phase list;
  trap_count : int;
}

let trap_run_threshold nbbvs = max 2 (nbbvs * 5 / 100)

let vectors_of mode bbvs =
  let bbvs_arr = Array.of_list bbvs in
  let dim = max 1 (Bbv.dims bbvs) in
  let max_coverage =
    Array.fold_left (fun acc (b : Bbv.t) -> max acc b.Bbv.coverage) 1 bbvs_arr
  in
  let vector (b : Bbv.t) =
    let base = Bbv.normalized b in
    match mode with
    | Bbv_only -> base
    | Bbv_with_coverage ->
      let cov = float_of_int b.Bbv.coverage /. float_of_int max_coverage in
      Array.append base [| (dim, cov) |]
  in
  let dim = match mode with Bbv_only -> dim | Bbv_with_coverage -> dim + 1 in
  (Array.map vector bbvs_arr, dim)

(* Longest run of consecutive interval indices owned by [cluster]. *)
let longest_run_of bbvs_arr assignment cluster =
  let best = ref 0 in
  let run = ref 0 in
  let prev_interval = ref min_int in
  Array.iteri
    (fun i (b : Bbv.t) ->
      if assignment.(i) = cluster then begin
        if b.Bbv.index = !prev_interval + 1 || !run = 0 then run := !run + 1 else run := 1;
        prev_interval := b.Bbv.index;
        if !run > !best then best := !run
      end)
    bbvs_arr;
  !best

let phases_of bbvs_arr assignment k threshold =
  let phases = ref [] in
  for cluster = 0 to k - 1 do
    let members = ref [] in
    let first_vtime = ref max_int in
    Array.iteri
      (fun i (b : Bbv.t) ->
        if assignment.(i) = cluster then begin
          members := b.Bbv.index :: !members;
          if b.Bbv.t_start < !first_vtime then first_vtime := b.Bbv.t_start
        end)
      bbvs_arr;
    match !members with
    | [] -> ()
    | members ->
      let intervals = Array.of_list (List.rev members) in
      let longest = longest_run_of bbvs_arr assignment cluster in
      phases :=
        {
          pid = cluster;
          intervals;
          first_vtime = !first_vtime;
          trap = longest >= threshold;
          longest_run = longest;
        }
        :: !phases
  done;
  List.sort (fun a b -> Int.compare a.first_vtime b.first_vtime) !phases

(* Degenerate fallback: a single catch-all phase. Used when the concolic
   step yielded no BBVs (a short deadline, an early abort) — the run
   degrades to one-phase scheduling instead of raising out of
   [Kmeans.cluster]. *)
let one_phase_division mode =
  {
    mode;
    k = 1;
    assignment = [||];
    phases =
      [ { pid = 0; intervals = [| 0 |]; first_vtime = 0; trap = false; longest_run = 0 } ];
    trap_count = 0;
  }

module Telemetry = Pbse_telemetry.Telemetry

let divide ?registry ?(mode = Bbv_with_coverage) ?(max_k = 20) rng bbvs =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.default ()
  in
  let tm_divisions = Telemetry.Registry.counter registry "phase.divisions" in
  let tm_bbvs = Telemetry.Registry.histogram registry "phase.bbvs_per_division" in
  let tm_chosen_k = Telemetry.Registry.gauge registry "phase.chosen_k" in
  let tm_traps = Telemetry.Registry.gauge registry "phase.trap_count" in
  Telemetry.incr tm_divisions;
  Telemetry.observe tm_bbvs (List.length bbvs);
  if bbvs = [] then one_phase_division mode
  else
  let vectors, dim = vectors_of mode bbvs in
  let bbvs_arr = Array.of_list bbvs in
  let n = Array.length vectors in
  let threshold = trap_run_threshold n in
  let try_k k =
    let clustering = Kmeans.cluster rng ~k ~dim vectors in
    let phases = phases_of bbvs_arr clustering.Kmeans.assignment k threshold in
    let traps = List.length (List.filter (fun p -> p.trap) phases) in
    (clustering, phases, traps)
  in
  let best = ref None in
  for k = 1 to min max_k n do
    let (_, _, traps) as candidate = try_k k in
    match !best with
    | None -> best := Some (k, candidate)
    | Some (_, (_, _, best_traps)) ->
      (* strictly more traps wins; ties keep the smaller k *)
      if traps > best_traps then best := Some (k, candidate)
  done;
  match !best with
  | None -> one_phase_division mode
  | Some (k, (clustering, phases, traps)) ->
    Telemetry.set_gauge tm_chosen_k k;
    Telemetry.set_gauge tm_traps traps;
    {
      mode;
      k;
      assignment = clustering.Kmeans.assignment;
      phases;
      trap_count = traps;
    }

let phase_of_interval division bbvs interval =
  match bbvs with
  | [] -> (
    (* degenerate one-phase division: everything maps to its sole phase *)
    match division.phases with p :: _ -> Some p.pid | [] -> None)
  | _ :: _ ->
  let bbvs_arr = Array.of_list bbvs in
  let best = ref None in
  Array.iteri
    (fun i (b : Bbv.t) ->
      if b.Bbv.index <= interval then
        match !best with
        | Some (bi, _) when bi >= b.Bbv.index -> ()
        | _ -> best := Some (b.Bbv.index, division.assignment.(i)))
    bbvs_arr;
  Option.map snd !best

let render_strip division =
  let trap_clusters =
    List.filter_map (fun p -> if p.trap then Some p.pid else None) division.phases
  in
  String.init (Array.length division.assignment) (fun i ->
      let c = division.assignment.(i) in
      let letter = Char.chr (Char.code 'a' + (c mod 26)) in
      if List.mem c trap_clusters then Char.uppercase_ascii letter else letter)

(* A trap phase's turn made progress when it covered new code or leapt
   over its loops via summaries: the summarized transition IS the
   phase's way through the trap, so retreating right after one throws
   the leap away. Non-trap phases only count coverage. *)
let turn_progress ~trap ~fresh_cover ~summaries_applied =
  fresh_cover || (trap && summaries_applied > 0)
