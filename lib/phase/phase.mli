(** Phase division and trap-phase identification (paper §III-B1).

    BBVs are normalised, optionally augmented with a coverage element
    (the paper's improvement, Fig. 4), and clustered with k-means. The k
    in [1, max_k] that yields the most trap phases wins (smallest k on
    ties). A cluster is a trap phase when it owns a run of at least
    [trap_run_threshold] consecutive intervals — code repeating across
    a long stretch of time without coverage progress, exactly the loops
    that trap symbolic execution. *)

type mode =
  | Bbv_only
  | Bbv_with_coverage

type phase = {
  pid : int; (* cluster id *)
  intervals : int array; (* interval indices, ascending *)
  first_vtime : int;
  trap : bool;
  longest_run : int; (* longest consecutive-interval run *)
}

type division = {
  mode : mode;
  k : int;
  assignment : int array; (* per BBV, cluster id *)
  phases : phase list; (* ordered by first_vtime *)
  trap_count : int;
}

val trap_run_threshold : int -> int
(** [trap_run_threshold nbbvs] — 5% of the BBV count, at least 2. *)

val divide :
  ?registry:Pbse_telemetry.Telemetry.Registry.t ->
  ?mode:mode ->
  ?max_k:int ->
  Pbse_util.Rng.t ->
  Pbse_concolic.Bbv.t list ->
  division
(** Total: an empty BBV list yields a degenerate one-phase division
    (pid 0, no trap) instead of raising, so a run whose concolic step
    produced nothing still schedules. [max_k] defaults to 20 (the paper
    tries k in 1..20). [registry] owns the division telemetry
    (default {!Pbse_telemetry.Telemetry.Registry.default}). *)

val phase_of_interval : division -> Pbse_concolic.Bbv.t list -> int -> int option
(** [phase_of_interval division bbvs interval] maps an interval index to
    the id (cluster) of its phase; intervals with no recorded BBV map to
    the nearest earlier recorded interval. Under a degenerate (empty-BBV)
    division every interval maps to the single phase. *)

val render_strip : division -> string
(** One character per BBV: cluster letter, uppercase for trap phases —
    a textual rendition of the paper's Fig. 4 colour strips. *)

val turn_progress : trap:bool -> fresh_cover:bool -> summaries_applied:int -> bool
(** Did a scheduling turn make progress? New coverage always counts;
    for trap phases, applied loop summaries count too — the summarized
    transition is the leap over the trap, so the scheduler consults it
    before retreating ([fresh_cover || (trap && summaries_applied > 0)]). *)
