(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables I-III, Figures 1, 4, 5), plus the ablations listed
   in DESIGN.md and Bechamel micro-benchmarks of each experiment kernel.

   Wall-clock hours are modelled by a virtual-time budget: one "hour" is
   PBSE_HOUR work units (default 120_000; see DESIGN.md "Virtual time
   model"). Absolute numbers therefore differ from the paper; the shapes
   (who wins, by what factor, where coverage plateaus) are the
   reproduction target. *)

module Registry = Pbse_targets.Registry
module Driver = Pbse.Driver
module Klee = Pbse.Klee
module Executor = Pbse_exec.Executor
module Coverage = Pbse_exec.Coverage
module Searcher = Pbse_exec.Searcher
module Bug = Pbse_exec.Bug
module Concolic = Pbse_concolic.Concolic
module Trace = Pbse_concolic.Trace
module Phase = Pbse_phase.Phase
module Vclock = Pbse_util.Vclock
module Rng = Pbse_util.Rng
module Tablefmt = Pbse_util.Tablefmt
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report

let hour =
  match Sys.getenv_opt "PBSE_HOUR" with
  | Some v -> (try int_of_string v with Failure _ -> 120_000)
  | None -> 120_000

let ten_hours = 10 * hour

let results_dir = "results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Unix.mkdir results_dir 0o755

let write_file path contents =
  ensure_results_dir ();
  let oc = open_out (Filename.concat results_dir path) in
  output_string oc contents;
  close_out oc

let target name =
  match Registry.by_name name with
  | Some t -> t
  | None -> failwith ("unknown target " ^ name)

let heading title =
  Printf.printf "\n=== %s ===\n%!" title

(* --- per-run telemetry rows (results/runs.csv) --------------------------------- *)

(* Every pbSE driver run performed by the harness contributes one CSV row
   of solver/fault/retry/phase telemetry, harvested through the same
   Driver.run_report mapping the CLI's --report uses (docs/telemetry.md
   documents the column <-> metric correspondence). *)
let run_csv_metrics =
  [
    "coverage.blocks"; "bugs.total"; "bugs.confirmed"; "solver.queries";
    "solver.unknown"; "solver.retries"; "solver.escalations"; "solver.retry_resolved";
    "solver.work"; "solver.prefix_hits"; "smt.subsumed_states"; "smt.interpolant_hits";
    "smt.interpolant_misses"; "pathcond.loop_summaries"; "pathcond.summary_fallbacks";
    "fault.solver-unknown"; "fault.exec-abort";
    "fault.mem-pressure"; "quarantine.evicted"; "quarantine.strikes"; "phase.turns";
    "phase.new_cover"; "phase.dwell"; "phase.trap_dwell"; "sched.turns";
    "exec.cow_copies";
  ]

(* every CSV column must name a family in the session layer's counter
   manifest (Session.scalar_metric_names) — a typo or a renamed metric
   is a startup failure here, not a silently-zero column *)
let () =
  List.iter
    (fun m ->
      if not (List.mem m Driver.Session.scalar_metric_names) then
        failwith ("runs.csv column not in the counter manifest: " ^ m))
    run_csv_metrics

(* jobs / lease / wall_ms / speedup_pct / snapshot_ms / resumes /
   pool_steals / pool_pinned / id_refills / session_hits /
   session_evictions / serve_clients / serve_rejections / store_reloads
   close every row: single runs are always jobs=1, lease=1 and
   unmeasured (0), the pool --jobs sweep fills in the timing and
   contention columns, the crash-resume drill the durability ones, and
   the session-store and serve drills the session-layer ones (including
   admission rejections and warm-restart store reloads). The contention
   and session columns come from the pool-report diagnostics and the
   store/server stats, which are wall-clock-side and deliberately absent
   from the byte-identical report JSON (docs/parallelism.md). *)
let run_csv_header =
  String.concat ","
    ([ "suite"; "target"; "seed_bytes"; "deadline" ]
    @ List.map (fun m -> String.map (function '.' -> '_' | c -> c) m) run_csv_metrics
    @ [ "jobs"; "lease"; "wall_ms"; "speedup_pct"; "snapshot_ms"; "resumes";
        "pool_steals"; "pool_pinned"; "id_refills"; "session_hits";
        "session_evictions"; "serve_clients"; "serve_rejections";
        "store_reloads" ])

let run_rows : string list ref = ref []

let note_run ~suite ~name ~deadline report =
  let rr = Driver.run_report report in
  let row =
    String.concat ","
      ([
         suite;
         name;
         string_of_int report.Driver.seed_size;
         string_of_int deadline;
       ]
      @ List.map (fun m -> string_of_int (Report.metric rr m)) run_csv_metrics
      @ [ "1"; "1"; "0"; "0"; "0"; "0"; "0"; "0"; "0"; "0"; "0"; "0"; "0"; "0" ])
  in
  run_rows := row :: !run_rows

(* Pool campaigns contribute the same CSV columns, harvested through the
   aggregate Driver.pool_run_report (merged coverage, deduplicated bugs,
   summed engine totals); seed_bytes is the whole pool's size. *)
let note_pool_run ?(jobs = 1) ?(lease = 1) ?(wall_ms = 0) ?(speedup_pct = 0)
    ?(snapshot_ms = 0) ?(resumes = 0) ?(session_hits = 0)
    ?(session_evictions = 0) ?(serve_clients = 0) ?(serve_rejections = 0)
    ?(store_reloads = 0) ~suite ~name ~deadline pool =
  let rr = Driver.pool_run_report pool in
  let pool_bytes =
    List.fold_left
      (fun acc (s : Report.seed_row) -> acc + s.Report.bytes)
      0 pool.Driver.seed_rows
  in
  let row =
    String.concat ","
      ([ suite; name; string_of_int pool_bytes; string_of_int deadline ]
      @ List.map (fun m -> string_of_int (Report.metric rr m)) run_csv_metrics
      @ [
          string_of_int jobs; string_of_int lease; string_of_int wall_ms;
          string_of_int speedup_pct; string_of_int snapshot_ms;
          string_of_int resumes;
          string_of_int pool.Driver.pool_steal_count;
          string_of_int pool.Driver.pool_pinned_turns;
          string_of_int pool.Driver.pool_id_refills;
          string_of_int session_hits;
          string_of_int session_evictions;
          string_of_int serve_clients;
          string_of_int serve_rejections;
          string_of_int store_reloads;
        ])
  in
  run_rows := row :: !run_rows

let flush_runs ?(file = "runs.csv") () =
  match !run_rows with
  | [] -> ()
  | rows ->
    write_file file (String.concat "\n" (run_csv_header :: List.rev rows) ^ "\n");
    Printf.printf "per-run telemetry: %d row(s) -> results/%s\n%!" (List.length rows) file;
    run_rows := []

(* --- Table I ----------------------------------------------------------------- *)

(* KLEE with one searcher on readelf; returns (cov@1h, cov@10h). *)
let klee_cell prog searcher sym_size =
  let r =
    Klee.run prog ~searcher ~input:(Bytes.make sym_size '\000')
      ~checkpoints:[ hour; ten_hours ]
  in
  (List.assoc hour r.Klee.checkpoints, List.assoc ten_hours r.Klee.checkpoints)

let pbse_row ~suite ~name prog seed =
  let report = Driver.run prog ~seed ~deadline:ten_hours in
  note_run ~suite ~name ~deadline:ten_hours report;
  let cov1 = Driver.coverage_at report hour in
  let cov10 = Coverage.count (Executor.coverage report.Driver.executor) in
  (report, cov1, cov10)

let table1 () =
  heading "Table I: basic blocks covered on readelf, per searcher";
  Printf.printf "(1h = %d virtual time units; symbolic file sizes as in the paper)\n" hour;
  let t = target "readelf" in
  let prog = Registry.program t in
  let sizes = [ 10; 100; 1000; 10000 ] in
  let table =
    Tablefmt.create
      ([ "searcher" ]
      @ List.concat_map
          (fun s -> [ Printf.sprintf "sym-%d 1h" s; Printf.sprintf "sym-%d 10h" s ])
          sizes)
  in
  List.iter
    (fun searcher ->
      let cells =
        List.concat_map
          (fun size ->
            let c1, c10 = klee_cell prog searcher size in
            [ string_of_int c1; string_of_int c10 ])
          sizes
      in
      Tablefmt.add_row table (searcher :: cells);
      Printf.printf "  ... %s done\n%!" searcher)
    Searcher.names;
  Tablefmt.print table;
  (* pbSE rows: a small and a large seed, as in the paper (576 / 7981 B) *)
  let pbse_table =
    Tablefmt.create [ "pbSE"; "c-time"; "p-time"; "1h"; "10h" ]
  in
  List.iter
    (fun label ->
      let seed = Registry.seed t label in
      let report, cov1, cov10 = pbse_row ~suite:"table1" ~name:"readelf" prog seed in
      Tablefmt.add_row pbse_table
        [
          Printf.sprintf "seed(%d)" (Bytes.length seed);
          string_of_int report.Driver.c_time;
          string_of_int report.Driver.p_time;
          string_of_int cov1;
          string_of_int cov10;
        ])
    [ "small"; "large" ];
  Tablefmt.print pbse_table

(* --- Table II ---------------------------------------------------------------- *)

let table2 () =
  heading "Table II: basic blocks covered on readelf/gif2tiff/pngtest/dwarfdump";
  let sizes = [ 10; 100; 1000; 10000 ] in
  let table =
    Tablefmt.create
      ([ "program" ]
      @ List.concat_map
          (fun searcher ->
            List.concat_map
              (fun s ->
                [
                  Printf.sprintf "%s sym-%d 1h" searcher s;
                  Printf.sprintf "%s sym-%d 10h" searcher s;
                ])
              sizes)
          [ "rp"; "cn" ]
      @ [ "pbSE 1h"; "pbSE 10h"; "inc" ])
  in
  List.iter
    (fun name ->
      let t = target name in
      let prog = Registry.program t in
      let best = ref 0 in
      let klee_cells =
        List.concat_map
          (fun searcher ->
            List.concat_map
              (fun size ->
                let c1, c10 = klee_cell prog searcher size in
                best := max !best (max c1 c10);
                [ string_of_int c1; string_of_int c10 ])
              sizes)
          [ "random-path"; "covnew" ]
      in
      let _, cov1, cov10 = pbse_row ~suite:"table2" ~name prog (Registry.default_seed t) in
      let inc =
        if !best = 0 then "n/a"
        else Printf.sprintf "%d%%" (100 * (cov10 - !best) / !best)
      in
      Tablefmt.add_row table
        ((t.Registry.package ^ " " ^ name)
        :: (klee_cells @ [ string_of_int cov1; string_of_int cov10; inc ]));
      Printf.printf "  ... %s done\n%!" name)
    [ "readelf"; "gif2tiff"; "pngtest"; "dwarfdump" ];
  Tablefmt.print table

(* --- Table III --------------------------------------------------------------- *)

(* Planted-bug label for a report: the faulting function plus the fault
   kind identify the label (declaration order breaks the rare ties, e.g.
   the two line-program overflows in dwarfdump). *)
let bug_label_table =
  [
    ("readelf", "read_name", "oob-read", "strtab-name-oob-read");
    ("readelf", "process_symbols", "oob-write", "symbol-version-oob-write");
    ("readelf", "process_dynamic", "oob-read", "dynamic-strtab-oob-read");
    ("readelf", "process_note", "oob-write", "note-alloc-overflow");
    ("pngtest", "handle_time", "oob-read", "time-month-oob-read");
    ("pngtest", "check_keyword", "oob-read", "keyword-trim-underflow");
    ("gif2tiff", "write_tiff", "oob-read", "colormap-oob-read");
    ("gif2tiff", "lzw_decode_block", "oob-write", "lzw-stack-oob-write");
    ("tiff2rgba", "put_cielab", "oob-read", "cielab-oob-read");
    ("tiff2bw", "average_samples", "oob-read", "spp-oob-read");
    ("tiff2bw", "invert_min_is_white", "oob-write", "invert-row-oob-write");
    (* parse_die carries two oob-reads: the abbrev lookup faults in an
       earlier block than the sibling reference; table3 assigns the labels
       in block order *)
    ("dwarfdump", "parse_die", "oob-read", "abbrev-code-oob-read");
    ("dwarfdump", "parse_die", "oob-read", "sibling-ref-oob-read");
    ("dwarfdump", "parse_die", "null-deref", "null-abbrev-table-deref");
    ("dwarfdump", "main", "oob-read", "cu-name-oob-read");
    ("dwarfdump", "read_str", "oob-read", "form-string-oob-read");
    ("dwarfdump", "parse_line_program", "oob-read", "line-file-index-oob-read");
    ("dwarfdump", "parse_line_program", "oob-write", "line-ftable-alloc-overflow");
  ]

(* [nth_match] distinguishes multiple same-kind bugs in one function; the
   caller passes the bug's rank among its (function, kind) group, ordered
   by faulting block. *)
let bug_label target (bug : Bug.t) ~nth_match =
  let func =
    match String.index_opt bug.Bug.location '/' with
    | Some i -> String.sub bug.Bug.location 0 i
    | None -> bug.Bug.location
  in
  let candidates =
    List.filter_map
      (fun (t, f, k, label) ->
        if t = target && f = func && k = bug.Bug.kind then Some label else None)
      bug_label_table
  in
  List.nth_opt candidates (min nth_match (max 0 (List.length candidates - 1)))

let table3 () =
  heading "Table III: bugs found by pbSE";
  let table =
    Tablefmt.create [ "package"; "test-driver"; "s-size"; "t-p"; "b-p"; "kind"; "CVE ID" ]
  in
  let total = ref 0 in
  let distinct : (string * int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (name, seed_labels) ->
      let t = target name in
      let prog = Registry.program t in
      List.iter
        (fun label ->
          let seed = Registry.seed t label in
          let report = Driver.run prog ~seed ~deadline:ten_hours in
          note_run ~suite:"table3" ~name ~deadline:ten_hours report;
          let traps = report.Driver.division.Phase.trap_count in
          (* rank same-(function, kind) bugs by faulting block so labels
             with shared functions resolve deterministically *)
          let sorted =
            List.sort
              (fun ((a : Bug.t), _) ((b : Bug.t), _) -> Int.compare a.Bug.gid b.Bug.gid)
              report.Driver.bugs
          in
          List.iter
            (fun ((bug : Bug.t), phase_ordinal) ->
              incr total;
              Hashtbl.replace distinct (name, bug.Bug.gid, bug.Bug.kind) ();
              let func =
                match String.index_opt bug.Bug.location '/' with
                | Some i -> String.sub bug.Bug.location 0 i
                | None -> bug.Bug.location
              in
              let rank =
                List.length
                  (List.filter
                     (fun ((b : Bug.t), _) ->
                       b.Bug.gid < bug.Bug.gid
                       && b.Bug.kind = bug.Bug.kind
                       &&
                       let f =
                         match String.index_opt b.Bug.location '/' with
                         | Some j -> String.sub b.Bug.location 0 j
                         | None -> b.Bug.location
                       in
                       f = func)
                     sorted)
              in
              let cve =
                match bug_label name bug ~nth_match:rank with
                | Some label -> (
                  match List.assoc_opt label t.Registry.cves with
                  | Some cve -> cve
                  | None -> "N")
                | None -> "N"
              in
              Tablefmt.add_row table
                [
                  t.Registry.package;
                  name;
                  string_of_int (Bytes.length seed);
                  string_of_int traps;
                  string_of_int phase_ordinal;
                  bug.Bug.kind;
                  cve;
                ])
            sorted;
          Printf.printf "  ... %s/%s done (%d reports so far)\n%!" name label !total)
        seed_labels)
    [
      ("pngtest", [ "small" ]);
      ("gif2tiff", [ "small"; "large" ]);
      ("tiff2rgba", [ "small" ]);
      ("tiff2bw", [ "small" ]);
      ("dwarfdump", [ "small"; "mid"; "wide" ]);
      ("readelf", [ "small"; "medium" ]);
      ("tcpdump", [ "small" ]);
    ];
  Tablefmt.print table;
  Printf.printf "%d reports over the seed pool; %d distinct bugs (19 planted; paper found 21)\n"
    !total (Hashtbl.length distinct)

(* --- Fig 1: block distribution, concrete vs symbolic ------------------------- *)

let ascii_scatter ~width ~height points =
  (* points: (x, y); normalise into a width x height grid *)
  match points with
  | [] -> "(no points)\n"
  | _ ->
    let max_x = List.fold_left (fun acc (x, _) -> max acc x) 1 points in
    let max_y = List.fold_left (fun acc (_, y) -> max acc y) 1 points in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun (x, y) ->
        let gx = min (width - 1) (x * width / (max_x + 1)) in
        let gy = min (height - 1) (y * height / (max_y + 1)) in
        grid.(height - 1 - gy).(gx) <- '*')
      points;
    let buf = Buffer.create (width * height) in
    Buffer.add_string buf
      (Printf.sprintf "  y: bb index 0..%d, x: virtual time 0..%d\n" max_y max_x);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.contents buf

let trace_points trace = List.map (fun p -> (p.Trace.vtime, p.Trace.bb)) (Trace.points trace)

let fig1_one name =
  let t = target name in
  let prog = Registry.program t in
  let seed = Registry.default_seed t in
  (* concrete execution trace (paper Fig 1 a/c/e) *)
  let ix = Trace.indexer () in
  let clock = Vclock.create () in
  let exec = Executor.create ~clock prog ~input:seed in
  let concolic = Concolic.run exec ix in
  let concrete_points = trace_points concolic.Concolic.trace in
  (* symbolic execution trace with the default searcher (Fig 1 b/d/f),
     reusing the indexer so block numbering matches the paper's method *)
  let clock2 = Vclock.create () in
  let exec2 = Executor.create ~clock:clock2 prog ~input:(Bytes.make 100 '\000') in
  let symbolic_trace = Trace.create ix in
  Executor.set_trace exec2
    (Some (fun gid -> Trace.record symbolic_trace ~vtime:(Vclock.now clock2) ~gid));
  let searcher = Searcher.default (Rng.create 1) (Executor.cfg exec2) (Executor.coverage exec2) in
  searcher.Searcher.add (Executor.initial_state exec2);
  Executor.explore exec2 searcher ~deadline:hour;
  let symbolic_points = trace_points symbolic_trace in
  Printf.printf "\nFig 1 (%s): concrete execution, %d block entries, %d distinct blocks\n"
    name (List.length concrete_points) (Trace.assigned ix);
  print_string (ascii_scatter ~width:64 ~height:16 concrete_points);
  Printf.printf "Fig 1 (%s): symbolic execution (default searcher, 1h)\n" name;
  print_string (ascii_scatter ~width:64 ~height:16 symbolic_points);
  let concrete_max = List.fold_left (fun acc (_, y) -> max acc y) 0 concrete_points in
  let symbolic_max = List.fold_left (fun acc (_, y) -> max acc y) 0 symbolic_points in
  Printf.printf
    "highest concrete bb index: %d; highest symbolic bb index within 1h: %d\n"
    concrete_max symbolic_max;
  write_file (Printf.sprintf "fig1_%s_concrete.csv" name)
    (Trace.to_csv concolic.Concolic.trace);
  write_file (Printf.sprintf "fig1_%s_symbolic.csv" name) (Trace.to_csv symbolic_trace)

let fig1 () =
  heading "Fig 1: basic-block distribution, concrete vs symbolic";
  List.iter fig1_one [ "readelf"; "gif2tiff"; "pngtest" ]

(* --- Fig 4: phase division with and without the coverage element ------------- *)

let fig4 () =
  heading "Fig 4: gif2tiff phase division, BBV-only vs BBV+coverage";
  let t = target "gif2tiff" in
  let prog = Registry.program t in
  let seed = Registry.default_seed t in
  let ix = Trace.indexer () in
  let clock = Vclock.create () in
  let exec = Executor.create ~clock prog ~input:seed in
  let probe = Pbse_exec.Concrete.run prog ~input:seed in
  let interval_length = max 50 (probe.Pbse_exec.Concrete.steps / 120) in
  let concolic = Concolic.run ~interval_length exec ix in
  let bbvs = concolic.Concolic.bbvs in
  let show label mode =
    let division = Phase.divide ~mode (Rng.create 1) bbvs in
    Printf.printf "%s: k=%d, %d trap phases\n  strip: %s\n" label division.Phase.k
      division.Phase.trap_count (Phase.render_strip division);
    division.Phase.trap_count
  in
  let plain = show "(a) BBVs only          " Phase.Bbv_only in
  let augmented = show "(b) BBVs + coverage    " Phase.Bbv_with_coverage in
  Printf.printf
    "coverage-augmented vectors identified %s trap phases (paper: 2 vs 4)\n"
    (if augmented > plain then "more"
     else if augmented = plain then "as many"
     else "fewer")

(* --- Fig 5: tiff2rgba, normal vs buggy seed ----------------------------------- *)

let fig5 () =
  heading "Fig 5: tiff2rgba concrete block distribution, normal vs buggy seed";
  let t = target "tiff2rgba" in
  let prog = Registry.program t in
  let run_seed label seed =
    let ix = Trace.indexer () in
    let clock = Vclock.create () in
    let exec = Executor.create ~clock prog ~input:seed in
    let probe = Pbse_exec.Concrete.run prog ~input:seed in
    let interval_length = max 20 (probe.Pbse_exec.Concrete.steps / 60) in
    let concolic = Concolic.run ~interval_length exec ix in
    Printf.printf "\n(%s seed, %d bytes): %s\n" label (Bytes.length seed)
      (match concolic.Concolic.outcome with
       | Concolic.Exited _ -> "ran to completion"
       | Concolic.Stopped reason -> "stopped: " ^ reason
       | Concolic.Deadline -> "deadline");
    print_string (ascii_scatter ~width:64 ~height:12 (trace_points concolic.Concolic.trace));
    write_file (Printf.sprintf "fig5_%s.csv" label) (Trace.to_csv concolic.Concolic.trace);
    concolic.Concolic.bbvs
  in
  let bbvs = run_seed "normal" (Registry.seed t "large") in
  let division = Phase.divide (Rng.create 1) bbvs in
  Printf.printf "phases of the normal run (top strip of Fig 5a): %s (%d traps)\n"
    (Phase.render_strip division) division.Phase.trap_count;
  ignore (run_seed "buggy" (Registry.seed t "buggy-cielab"));
  (* the case study: pbSE finds the CIELab bug; KLEE's default searcher
     does not, even in 10x the budget *)
  let report = Driver.run prog ~seed:(Registry.seed t "small") ~deadline:ten_hours in
  note_run ~suite:"fig5" ~name:"tiff2rgba" ~deadline:ten_hours report;
  let pbse_found =
    List.filter (fun ((b : Bug.t), _) -> b.Bug.kind = "oob-read") report.Driver.bugs
  in
  let klee =
    Klee.run prog ~searcher:"default" ~input:(Bytes.make 100 '\000')
      ~checkpoints:[ ten_hours ]
  in
  Printf.printf
    "case study: pbSE found %d oob-read bug(s)%s; KLEE default found %d bug(s) in 10h\n"
    (List.length pbse_found)
    (match pbse_found with
     | ((b : Bug.t), phase) :: _ ->
       Printf.sprintf " (first in phase %d at t=%d: %s)" phase b.Bug.vtime b.Bug.location
     | [] -> "")
    (List.length klee.Klee.bugs)

(* --- Ablations ----------------------------------------------------------------- *)

let ablate () =
  heading "Ablations (DESIGN.md): pbSE design choices on dwarfdump";
  let t = target "dwarfdump" in
  let prog = Registry.program t in
  let seed = Registry.default_seed t in
  let table = Tablefmt.create [ "variant"; "traps"; "cov 1h"; "cov 10h"; "bugs" ] in
  let run label config =
    let report = Driver.run ~config prog ~seed ~deadline:ten_hours in
    note_run ~suite:"ablate" ~name:label ~deadline:ten_hours report;
    Tablefmt.add_row table
      [
        label;
        string_of_int report.Driver.division.Phase.trap_count;
        string_of_int (Driver.coverage_at report hour);
        string_of_int (Coverage.count (Executor.coverage report.Driver.executor));
        string_of_int (List.length report.Driver.bugs);
      ];
    Printf.printf "  ... %s done\n%!" label
  in
  run "pbSE (default)" Driver.default_config;
  run "BBV-only vectors"
    Driver.(with_concolic (fun c -> { c with mode = Phase.Bbv_only }) default_config);
  run "no seedState dedup"
    Driver.(with_search (fun s -> { s with dedup_seed_states = false }) default_config);
  run "sequential phases"
    Driver.(with_search (fun s -> { s with scheduler = "sequential" }) default_config);
  run "coverage-greedy phases"
    Driver.(with_search (fun s -> { s with scheduler = "coverage-greedy" }) default_config);
  run "fixed k = 4" Driver.(with_search (fun s -> { s with max_k = 4 }) default_config);
  Tablefmt.print table

(* --- Robustness: fault-injected sweep ------------------------------------------- *)

let robust () =
  heading
    "Robustness sweep: every target under a fixed fault-injection plan \
     (docs/robustness.md)";
  let plan =
    match Inject.parse "seed=7,solver=0.2,abort=0.1,mem=0.05,concolic=0.05" with
    | Ok p -> p
    | Error e -> failwith e
  in
  Printf.printf "  plan: %s\n%!" (Inject.to_string plan);
  let config = Driver.(with_robust (fun r -> { r with inject = plan }) default_config) in
  let table =
    Tablefmt.create
      [ "target"; "cov clean"; "cov injected"; "bugs"; "faults"; "evicted" ]
  in
  List.iter
    (fun t ->
      let prog = Registry.program t in
      let seed = Registry.default_seed t in
      let clean = Driver.run prog ~seed ~deadline:hour in
      note_run ~suite:"robust-clean" ~name:t.Registry.name ~deadline:hour clean;
      let faulty = Driver.run ~config prog ~seed ~deadline:hour in
      note_run ~suite:"robust-injected" ~name:t.Registry.name ~deadline:hour faulty;
      Tablefmt.add_row table
        [
          t.Registry.name;
          string_of_int (Coverage.count (Executor.coverage clean.Driver.executor));
          string_of_int (Coverage.count (Executor.coverage faulty.Driver.executor));
          Printf.sprintf "%d/%d"
            (List.length faulty.Driver.bugs)
            (List.length clean.Driver.bugs);
          string_of_int (Fault.total faulty.Driver.faults);
          string_of_int faulty.Driver.quarantined;
        ];
      Printf.printf "  ... %s done (%s)\n%!" t.Registry.name
        (Fault.summary faulty.Driver.faults))
    Registry.all;
  Tablefmt.print table

(* --- Bechamel micro-benchmarks -------------------------------------------------- *)

let bechamel () =
  heading "Bechamel micro-benchmarks (one kernel per table/figure)";
  let open Bechamel in
  let small = max 2_000 (hour / 60) in
  let t1_kernel () =
    let prog = Registry.program (target "readelf") in
    ignore
      (Klee.run prog ~searcher:"random-path" ~input:(Bytes.make 100 '\000')
         ~checkpoints:[ small ])
  in
  let t2_kernel () =
    let t = target "gif2tiff" in
    ignore (Driver.run (Registry.program t) ~seed:(Registry.default_seed t) ~deadline:small)
  in
  let t3_kernel () =
    let t = target "tiff2bw" in
    ignore (Driver.run (Registry.program t) ~seed:(Registry.default_seed t) ~deadline:small)
  in
  let fig1_kernel () =
    let t = target "pngtest" in
    let prog = Registry.program t in
    let clock = Vclock.create () in
    let exec = Executor.create ~clock prog ~input:(Registry.default_seed t) in
    ignore (Concolic.run exec (Trace.indexer ()))
  in
  let fig4_kernel () =
    let t = target "gif2tiff" in
    let prog = Registry.program t in
    let clock = Vclock.create () in
    let exec = Executor.create ~clock prog ~input:(Registry.default_seed t) in
    let concolic = Concolic.run ~interval_length:60 exec (Trace.indexer ()) in
    ignore (Phase.divide (Rng.create 1) concolic.Concolic.bbvs)
  in
  let fig5_kernel () =
    let t = target "tiff2rgba" in
    let prog = Registry.program t in
    ignore (Pbse_exec.Concrete.run prog ~input:(Registry.seed t "buggy-cielab"))
  in
  let tests =
    [
      Test.make ~name:"table1: KLEE random-path on readelf" (Staged.stage t1_kernel);
      Test.make ~name:"table2: pbSE end-to-end on gif2tiff" (Staged.stage t2_kernel);
      Test.make ~name:"table3: pbSE bug hunt on tiff2bw" (Staged.stage t3_kernel);
      Test.make ~name:"fig1: concolic trace of pngtest" (Staged.stage fig1_kernel);
      Test.make ~name:"fig4: phase division of gif2tiff" (Staged.stage fig4_kernel);
      Test.make ~name:"fig5: buggy-seed replay of tiff2rgba" (Staged.stage fig5_kernel);
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:8 ~quota:(Time.second 1.0) ~kde:(Some 8) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      let analysis = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-45s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-45s (no estimate)\n%!" name)
        analysis)
    tests

(* --- Pool campaigns ---------------------------------------------------------------- *)

(* Seed-level scheduling policies compared on one multi-seed target: the
   whole benign pool under the same deadline, one campaign per policy.
   The acceptance bar (results/runs.csv rows, suite "pool") is that
   coverage-greedy reaches merged coverage at least equal to the paper's
   equal-split smallest-first pass. *)
let pool_bench () =
  heading "Pool campaigns: seed schedulers on dwarfdump's benign pool";
  let t = target "dwarfdump" in
  let prog = Registry.program t in
  let seeds = List.map snd t.Registry.seeds in
  let deadline = ten_hours in
  let table =
    Tablefmt.create
      [ "policy"; "runs"; "turns"; "merged cov"; "bugs"; "spent" ]
  in
  let merged = ref [] in
  List.iter
    (fun scheduler ->
      let pool = Driver.run_pool ~scheduler prog ~seeds ~deadline in
      note_pool_run ~suite:"pool" ~name:(t.Registry.name ^ "/" ^ scheduler) ~deadline
        pool;
      merged := (scheduler, pool.Driver.merged_coverage) :: !merged;
      Tablefmt.add_row table
        [
          scheduler;
          string_of_int (List.length pool.Driver.runs);
          string_of_int pool.Driver.pool_stats.Pbse_campaign.Pool_scheduler.turns;
          string_of_int pool.Driver.merged_coverage;
          string_of_int (List.length pool.Driver.merged_bugs);
          string_of_int pool.Driver.pool_spent;
        ];
      Printf.printf "  ... %s done\n%!" scheduler)
    Pbse_campaign.Pool_scheduler.names;
  Tablefmt.print table;
  let cov name = try List.assoc name !merged with Not_found -> 0 in
  Printf.printf "  coverage-greedy vs smallest-first: %d vs %d (%s)\n%!"
    (cov "coverage-greedy") (cov "smallest-first")
    (if cov "coverage-greedy" >= cov "smallest-first" then "OK" else "BEHIND");
  (* A-B leg: the same campaign with the path-condition layer off. The
     merged bug count must match and merged coverage must not regress
     with the features on (docs/subsumption.md). *)
  let off_config =
    Driver.(
      with_pathcond
        (fun _ -> { subsumption = false; loop_summaries = false })
        default_config)
  in
  let scheduler = List.hd Pbse_campaign.Pool_scheduler.names in
  let off_pool =
    Driver.run_pool ~config:off_config ~scheduler prog ~seeds ~deadline
  in
  note_pool_run ~suite:"pool" ~name:(t.Registry.name ^ "/pathcond-off") ~deadline
    off_pool;
  let on_pool = Driver.run_pool ~scheduler prog ~seeds ~deadline in
  let on_bugs = List.length on_pool.Driver.merged_bugs
  and off_bugs = List.length off_pool.Driver.merged_bugs in
  if on_bugs <> off_bugs then begin
    Printf.eprintf
      "pathcond A-B (pool): merged bug sets diverged (on %d, off %d)\n" on_bugs
      off_bugs;
    exit 1
  end;
  (* Bug-set identity is hard; coverage gets a 1% band. At a fixed
     virtual-time deadline the work subsumption saves is reinvested in
     *different* exploration, so final pool coverage can move a block
     either way from scheduling alone — the strict outcome gate is
     pathcond-ab's work-to-outcome parity scan above. *)
  let slack = off_pool.Driver.merged_coverage / 100 in
  if on_pool.Driver.merged_coverage < off_pool.Driver.merged_coverage - slack
  then begin
    Printf.eprintf
      "pathcond A-B (pool): merged coverage regressed with features on (%d < \
       %d - %d)\n"
      on_pool.Driver.merged_coverage off_pool.Driver.merged_coverage slack;
    exit 1
  end;
  Printf.printf
    "  pathcond A-B (%s): merged cov %d (on) vs %d (off, 1%% band), %d bug(s) \
     both ways\n%!"
    scheduler on_pool.Driver.merged_coverage off_pool.Driver.merged_coverage
    on_bugs

(* --- Pathcond A-B: subsumption + loop summaries on vs off ------------------------ *)

(* The path-condition layer's acceptance gate (docs/subsumption.md): on
   dwarfdump, the engine with subsumption + summaries on must reach the
   baseline run's final coverage and bug set with at least 15% less
   solver work. No seeded target drains — every run fills its
   virtual-time deadline, so *total* work at a fixed deadline is
   deadline-bound by construction and cannot drop. The honest
   comparison is work-to-outcome: the solver work the ON run had spent
   when it first covered everything the OFF run ever covered (and had
   found every bug), interpolated from the coverage samples. Work
   accrues linearly in virtual time on deadline-filled runs, so work at
   virtual time t is w_total * t / deadline. *)
let pathcond_ab () =
  heading "Pathcond A-B: dwarfdump with and without subsumption + summaries";
  let t = target "dwarfdump" in
  let prog = Registry.program t in
  let seed = Registry.default_seed t in
  let deadline = ten_hours in
  let off_config =
    Driver.(
      with_pathcond
        (fun _ -> { subsumption = false; loop_summaries = false })
        default_config)
  in
  let on_r = Driver.run prog ~seed ~deadline in
  note_run ~suite:"pathcond-ab" ~name:(t.Registry.name ^ "/on") ~deadline on_r;
  let off_r = Driver.run ~config:off_config prog ~seed ~deadline in
  note_run ~suite:"pathcond-ab" ~name:(t.Registry.name ^ "/off") ~deadline off_r;
  let bug_set r =
    List.sort_uniq compare
      (List.map (fun ((b : Bug.t), _) -> (b.Bug.gid, b.Bug.kind)) r.Driver.bugs)
  in
  if bug_set on_r <> bug_set off_r then begin
    prerr_endline "pathcond A-B: bug sets diverged between on and off";
    exit 1
  end;
  let cov r = Coverage.count (Executor.coverage r.Driver.executor) in
  let cov_on = cov on_r and cov_off = cov off_r in
  if cov_on < cov_off then begin
    Printf.eprintf "pathcond A-B: coverage regressed with features on (%d < %d)\n"
      cov_on cov_off;
    exit 1
  end;
  (* earliest virtual time at which the ON run had matched the OFF run's
     outcome: its whole final coverage and its own last bug *)
  let cov_parity_t =
    let rec scan = function
      | [] -> deadline
      | (vt, c) :: rest -> if c >= cov_off then vt else scan rest
    in
    scan (List.sort compare on_r.Driver.coverage_samples)
  in
  let last_bug_t =
    List.fold_left
      (fun acc ((b : Bug.t), _) -> max acc b.Bug.vtime)
      0 on_r.Driver.bugs
  in
  let parity_t = max cov_parity_t last_bug_t in
  let work r = Report.metric (Driver.run_report r) "solver.work" in
  let w_on = work on_r and w_off = work off_r in
  let w_parity = w_on * parity_t / deadline in
  let reduction_pct =
    if w_off = 0 then 0 else 100 * (w_off - w_parity) / w_off
  in
  let est = Executor.stats on_r.Driver.executor in
  Printf.printf
    "  off: cov %d, %d bug(s), %d work to deadline\n\
    \  on:  cov %d at deadline; outcome parity at t=%d/%d -> %d work\n\
    \  interpolant hits %d / misses %d, %d state(s) subsumed, %d summar(ies), \
     %d fallback(s)\n\
    \  solver work to the off run's outcome: -%d%% (gate: >=15%%)\n%!"
    cov_off (List.length (bug_set off_r)) w_off cov_on parity_t deadline w_parity
    est.Executor.interpolant_hits est.Executor.interpolant_misses
    est.Executor.subsumed_states est.Executor.loop_summaries
    est.Executor.summary_fallbacks reduction_pct;
  if reduction_pct < 15 then begin
    Printf.eprintf
      "pathcond A-B: work-to-outcome reduction %d%% is below the 15%% gate\n"
      reduction_pct;
    exit 1
  end

(* --- Pool --jobs sweep ------------------------------------------------------------- *)

(* The domain-pool determinism-and-throughput sweep: the same campaign at
   --jobs 1/2/4, wall-clocked, with the byte-identical report contract
   checked inline (docs/parallelism.md). Speedup is reported honestly:
   on a single-core runner the widths tie (modulo domain overhead), and
   the column exists so multi-core runs of the same harness show the
   scaling. *)
let pool_jobs_bench ?(lease = 1) () =
  heading "Pool campaign at --jobs 1/2/4: determinism and wall-clock";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  (host reports %d recognisable core(s))\n%!" cores;
  if cores < 4 then
    Printf.printf
      "  warning: host has fewer than 4 cores, so --jobs 4 is clamped to %d \
       worker domain(s); expect speedup ~1.0x there (the CI pool-speedup \
       gate skips such runners)\n%!"
      cores;
  let t = target "dwarfdump" in
  let prog = Registry.program t in
  let seeds = List.map snd t.Registry.seeds in
  let deadline = ten_hours in
  let sweep ~lease =
    let table =
      Tablefmt.create
        [ "jobs"; "lease"; "merged cov"; "rounds"; "wall ms"; "speedup"; "report" ]
    in
    let base_json = ref "" and base_wall = ref 0 in
    List.iter
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let pool = Driver.run_pool ~jobs ~lease prog ~seeds ~deadline in
        let wall_ms =
          int_of_float (1000. *. (Unix.gettimeofday () -. t0))
        in
        let json = Report.to_json (Driver.pool_run_report pool) in
        let verdict =
          if jobs = 1 then begin
            base_json := json;
            base_wall := wall_ms;
            "baseline"
          end
          else if json = !base_json then "identical"
          else "MISMATCH"
        in
        let speedup_pct =
          if wall_ms <= 0 then 0 else 100 * !base_wall / wall_ms
        in
        let name =
          if lease = 1 then Printf.sprintf "%s/jobs-%d" t.Registry.name jobs
          else Printf.sprintf "%s/jobs-%d-lease-%d" t.Registry.name jobs lease
        in
        note_pool_run ~jobs ~lease ~wall_ms ~speedup_pct ~suite:"pool-jobs"
          ~name ~deadline pool;
        Tablefmt.add_row table
          [
            string_of_int jobs;
            string_of_int lease;
            string_of_int pool.Driver.merged_coverage;
            string_of_int pool.Driver.pool_rounds;
            string_of_int wall_ms;
            Printf.sprintf "%d.%02dx" (speedup_pct / 100) (speedup_pct mod 100);
            verdict;
          ];
        Printf.printf "  ... jobs=%d lease=%d done (%d ms, %s)\n%!" jobs lease
          wall_ms verdict;
        if verdict = "MISMATCH" then begin
          prerr_endline "pool reports diverged across --jobs; determinism bug";
          exit 1
        end)
      [ 1; 2; 4 ];
    Tablefmt.print table
  in
  sweep ~lease;
  if lease = 1 then begin
    (* the same identity check with coarse work units: a different (but
       equally deterministic) campaign, so it gets its own jobs=1
       baseline *)
    Printf.printf "  re-running the sweep with 3-turn leases\n%!";
    sweep ~lease:3
  end;
  Printf.printf
    "  every width produced byte-identical reports; speedup only reflects \
     the host's core count\n%!"

(* --- Crash-resume durability ------------------------------------------------------ *)

(* The crash-durability drill the CI crash-resume job also drives with a
   real SIGKILL: here the kill is simulated in-process (the checkpoint
   halts the campaign at a round barrier), the latest snapshot is loaded
   back and resumed, and the resumed pool report must be byte-identical
   to an uninterrupted run of the same campaign (docs/robustness.md).
   The runs.csv row carries the serialisation cost (snapshot_ms) and the
   resume count. *)
let crash_resume_bench ?(jobs = 2) ?(lease = 2) () =
  heading "Crash-resume: checkpoint every turn, kill at a barrier, resume, compare";
  let t = target "dwarfdump" in
  let prog = Registry.program t in
  let seeds = List.map snd t.Registry.seeds in
  let deadline = ten_hours in
  let scheduler = "round-robin" in
  Telemetry.set_enabled true;
  let baseline = Driver.run_pool ~scheduler ~jobs ~lease prog ~seeds ~deadline in
  Telemetry.set_enabled false;
  let base_json = Report.to_json (Driver.pool_run_report baseline) in
  let path = Filename.temp_file "pbse_bench_ck" ".json" in
  let snapshot_ms = ref 0 in
  let ck =
    Driver.checkpoint ~halt_after:2
      ~note_ms:(fun ms -> snapshot_ms := !snapshot_ms + ms)
      ~path ~every:1 ()
  in
  Telemetry.set_enabled true;
  let _killed : Driver.pool_report =
    Driver.run_pool ~scheduler ~jobs ~lease ~checkpoint:ck prog ~seeds ~deadline
  in
  Telemetry.set_enabled false;
  Printf.printf "  ... halted at the round-2 barrier (%d ms in snapshot writes)\n%!"
    !snapshot_ms;
  match Driver.load_snapshot ~path with
  | Error e ->
    Printf.eprintf "checkpoint unreadable: %s\n" e;
    exit 1
  | Ok (sn, fallback) ->
    (match fallback with
     | Some why -> Printf.printf "  ... resumed from the .bak rotation: %s\n%!" why
     | None -> ());
    Telemetry.set_enabled true;
    (* no ~lease here on purpose: the resume must pick the lease back up
       from the snapshot meta, or leased checkpoints would re-plan with
       different work units and diverge *)
    let resumed =
      match Driver.resume_pool ~jobs sn prog ~seeds with
      | Ok pool -> pool
      | Error e ->
        Telemetry.set_enabled false;
        Printf.eprintf "resume failed: %s\n" e;
        exit 1
    in
    Telemetry.set_enabled false;
    let resumed_json = Report.to_json (Driver.pool_run_report resumed) in
    if resumed_json <> base_json then begin
      prerr_endline "resumed pool report diverged from the uninterrupted run";
      exit 1
    end;
    note_pool_run ~jobs ~lease ~snapshot_ms:!snapshot_ms ~resumes:1
      ~suite:"crash-resume" ~name:(t.Registry.name ^ "/" ^ scheduler) ~deadline
      resumed;
    Printf.printf
      "  kill@round-2 + resume reproduced the uninterrupted report byte for byte \
       (%d bytes)\n%!"
      (String.length base_json)

(* --- Session store: cold vs warm campaigns ---------------------------------------- *)

(* The session-layer fast path: the same campaign run twice against one
   Session_store — the second run must be served from the campaign memo
   (store hits > 0), produce byte-identical report JSON, and cost less
   wall-clock than the cold bootstrap (docs/architecture.md). *)
let session_store_bench () =
  heading "Session store: cold vs warm campaign (byte-identity and wall-clock)";
  let t = target "dwarfdump" in
  let prog = Registry.program t in
  let seeds = List.map snd t.Registry.seeds in
  let deadline = ten_hours in
  let store = Pbse_session.Session_store.create () in
  let campaign label =
    Telemetry.set_enabled true;
    let t0 = Unix.gettimeofday () in
    let pool =
      Driver.run_pool ~store ~target:t.Registry.name prog ~seeds ~deadline
    in
    let wall_ms = int_of_float (1000. *. (Unix.gettimeofday () -. t0)) in
    Telemetry.set_enabled false;
    Printf.printf "  ... %s campaign done (%d ms, %d store hit(s))\n%!" label
      wall_ms
      (Pbse_session.Session_store.hits store);
    (pool, wall_ms, Report.to_json (Driver.pool_run_report pool))
  in
  let cold, cold_ms, cold_json = campaign "cold" in
  let warm, warm_ms, warm_json = campaign "warm" in
  if warm_json <> cold_json then begin
    prerr_endline "warm campaign report diverged from the cold run";
    exit 1
  end;
  let hits = Pbse_session.Session_store.hits store in
  let evictions = Pbse_session.Session_store.evictions store in
  if hits = 0 then begin
    prerr_endline "warm campaign was not served from the session store";
    exit 1
  end;
  note_pool_run ~wall_ms:cold_ms ~suite:"session-store"
    ~name:(t.Registry.name ^ "/cold") ~deadline cold;
  note_pool_run ~wall_ms:warm_ms ~session_hits:hits ~session_evictions:evictions
    ~suite:"session-store" ~name:(t.Registry.name ^ "/warm") ~deadline warm;
  Printf.printf
    "  warm reuse: %d -> %d ms (%d session hit(s), %d eviction(s)); reports \
     byte-identical (%d bytes)\n%!"
    cold_ms warm_ms hits evictions (String.length cold_json)

(* --- Serve: concurrent socket campaigns ------------------------------------------- *)

(* The server drill the CI serve-smoke job also drives end-to-end with
   the real binary: here the server runs in-process on a temp socket,
   two clients request the same campaign concurrently over pbse-serve/2,
   and both responses must be byte-identical to the CLI `run --pool
   --report` recipe for the same parameters. A third (v1 one-liner)
   request measures the warm (store-served) latency and keeps the
   deprecated framing exercised. Two further legs mirror the new CI
   gates: a quota-capped server must reject a burst with a structured
   over-capacity error, and a --store-file restart must serve the warm
   body from the reloaded residue cache. *)
let serve_bench () =
  heading "Serve: 2 concurrent socket campaigns + warm reuse + quota + restart";
  let t = target "gif2tiff" in
  let deadline = hour / 4 in
  (* local equivalent of the request, for the identity check and the CSV
     row's engine metrics *)
  Telemetry.set_enabled true;
  let local =
    Driver.run_pool
      (Registry.program t)
      ~seeds:(List.map snd t.Registry.seeds)
      ~deadline
  in
  Telemetry.set_enabled false;
  let local_json =
    Report.to_json
      (Driver.pool_run_report
         ~meta:
           [
             ("target", t.Registry.name);
             ("seed", "pool");
             ("deadline", string_of_int deadline);
           ]
         local)
  in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pbse-bench-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let endpoint = Pbse_serve.Transport.Unix_socket socket in
  let lookup name =
    Option.map
      (fun t -> (Registry.program t, List.map snd t.Registry.seeds))
      (Registry.by_name name)
  in
  (* boot a server configuration, run [drive] against it, return its
     lifetime stats *)
  let with_server ?store_file ?(quota_burst = 0) drive =
    let control = Pbse_serve.Transport.control_create () in
    let stats_cell = ref None in
    let server =
      Thread.create
        (fun () ->
          stats_cell :=
            Some
              (Pbse.Serve.serve ~endpoints:[ endpoint ] ~jobs:2 ?store_file
                 ~quota_burst ~control ~lookup ()))
        ()
    in
    (* wait for the socket to come up (listen unlinks any old file first) *)
    let rec wait_up n =
      if n = 0 then failwith "server socket never came up"
      else if not (Sys.file_exists socket) then begin
        Thread.delay 0.05;
        wait_up (n - 1)
      end
    in
    wait_up 100;
    Fun.protect
      ~finally:(fun () ->
        Pbse_serve.Transport.request_stop control;
        Thread.join server)
      drive
    |> fun result -> (result, Option.get !stats_cell)
  in
  let v2_line =
    Pbse_serve.Protocol.render_request
      {
        Pbse_serve.Protocol.rq_id = Some "bench";
        rq_client = Some "bench";
        rq_progress = false;
        rq_target = t.Registry.name;
        rq_deadline = deadline;
        rq_pool_scheduler = "";
        rq_scheduler = None;
        rq_jobs = None;
        rq_lease = 1;
        rq_share = false;
      }
  in
  let v1_line =
    Printf.sprintf "{\"target\": %S, \"deadline\": %d}" t.Registry.name deadline
  in
  let timed_request line =
    let t0 = Unix.gettimeofday () in
    let r = Pbse.Serve.request ~connect:endpoint line in
    (r, int_of_float (1000. *. (Unix.gettimeofday () -. t0)))
  in
  let check label = function
    | Error e ->
      Printf.eprintf "serve request %s failed: %s: %s\n" label
        e.Pbse.Serve.err_code e.Pbse.Serve.err_message;
      exit 1
    | Ok body ->
      if body <> local_json then begin
        Printf.eprintf "serve response %s diverged from the CLI --pool report\n"
          label;
        exit 1
      end
  in
  (* leg 1: two concurrent v2 clients + one warm v1 one-liner *)
  let (timings, stats) =
    with_server (fun () ->
        let unset =
          {
            Pbse.Serve.err_code = "unset";
            err_message = "unset";
            err_retry_after = None;
          }
        in
        let slot_a = ref (Error unset, 0) in
        let client_a = Thread.create (fun () -> slot_a := timed_request v2_line) () in
        let b, b_ms = timed_request v2_line in
        Thread.join client_a;
        let a, a_ms = !slot_a in
        let warm, warm_ms = timed_request v1_line in
        check "A" a;
        check "B" b;
        check "warm-v1" warm;
        (a_ms, b_ms, warm_ms))
  in
  let a_ms, b_ms, warm_ms = timings in
  (* leg 2: a burst-of-1 quota rejects the second request, structured *)
  let (retry_after, quota_stats) =
    with_server ~quota_burst:1 (fun () ->
        check "quota-first" (fst (timed_request v2_line));
        match fst (timed_request v2_line) with
        | Ok _ ->
          prerr_endline "quota-capped server admitted a burst of 2";
          exit 1
        | Error e ->
          if e.Pbse.Serve.err_code <> "over-capacity" then begin
            Printf.eprintf "quota rejection had code %s (want over-capacity)\n"
              e.Pbse.Serve.err_code;
            exit 1
          end;
          Option.value e.Pbse.Serve.err_retry_after ~default:0)
  in
  if quota_stats.Pbse.Serve.sv_rejections < 1 then begin
    prerr_endline "quota leg recorded no rejections";
    exit 1
  end;
  (* leg 3: kill + reboot with --store-file; the rebooted server must
     serve the warm body from the reloaded residue cache *)
  let store_file =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pbse-bench-%d.store" (Unix.getpid ()))
  in
  (try Sys.remove store_file with Sys_error _ -> ());
  let ((), _cold_stats) =
    with_server ~store_file (fun () -> check "store-cold" (fst (timed_request v2_line)))
  in
  let (reload_ms, warm_stats) =
    with_server ~store_file (fun () ->
        let r, ms = timed_request v2_line in
        check "store-warm" r;
        ms)
  in
  (try Sys.remove store_file with Sys_error _ -> ());
  (try Sys.remove (store_file ^ ".bak") with Sys_error _ -> ());
  if warm_stats.Pbse.Serve.sv_store_reloads < 1 then begin
    prerr_endline "restarted server reloaded nothing from the store file";
    exit 1
  end;
  if warm_stats.Pbse.Serve.sv_store_hits < 1 then begin
    prerr_endline "restarted server served no store hit";
    exit 1
  end;
  note_pool_run ~jobs:2 ~wall_ms:(max a_ms b_ms)
    ~session_hits:stats.Pbse.Serve.sv_store_hits
    ~serve_clients:stats.Pbse.Serve.sv_clients
    ~serve_rejections:quota_stats.Pbse.Serve.sv_rejections
    ~store_reloads:warm_stats.Pbse.Serve.sv_store_reloads ~suite:"serve"
    ~name:t.Registry.name ~deadline local;
  Printf.printf
    "  2 concurrent v2 clients (%d / %d ms) + warm v1 reuse (%d ms): all \
     responses byte-identical to the CLI report (%d bytes); %d client(s), %d \
     store hit(s)\n%!"
    a_ms b_ms warm_ms (String.length local_json) stats.Pbse.Serve.sv_clients
    stats.Pbse.Serve.sv_store_hits;
  Printf.printf
    "  quota burst=1: second request rejected over-capacity (retry_after \
     %ds, %d rejection(s)); restart with --store-file: %d reload(s), warm \
     response in %d ms\n%!"
    retry_after quota_stats.Pbse.Serve.sv_rejections
    warm_stats.Pbse.Serve.sv_store_reloads reload_ms

(* --- Smoke (CI) ----------------------------------------------------------------- *)

(* One tiny end-to-end run with telemetry enabled; used by the CI
   bench-smoke job, which checks results/runs.csv and
   results/smoke_report.json for the telemetry columns. *)
let smoke ?(jobs = 1) () =
  heading "Smoke: one tiny telemetry-instrumented run (CI artifact)";
  (* big enough that the concolic pass and phase analysis (~14k units on
     gif2tiff) leave budget for phase scheduling, so solver/phase metrics
     are nonzero *)
  let small = max 25_000 (hour / 4) in
  let t = target "gif2tiff" in
  Telemetry.set_enabled true;
  let report =
    Driver.run (Registry.program t) ~seed:(Registry.default_seed t) ~deadline:small
  in
  Telemetry.set_enabled false;
  note_run ~suite:"smoke" ~name:t.Registry.name ~deadline:small report;
  let rr =
    Driver.run_report
      ~meta:
        [
          ("target", t.Registry.name);
          ("suite", "smoke");
          ("deadline", string_of_int small);
        ]
      report
  in
  write_file "smoke_report.json" (Report.to_json rr);
  Printf.printf "smoke report -> results/smoke_report.json (%d metrics)\n%!"
    (List.length rr.Report.metrics);
  (* A-B leg: the same run with the path-condition layer off; the bug
     sets must match, and the off-side report is written for the CI
     solver.work gate (docs/subsumption.md) *)
  let off_config =
    Driver.(
      with_pathcond
        (fun _ -> { subsumption = false; loop_summaries = false })
        default_config)
  in
  Telemetry.set_enabled true;
  let off_report =
    Driver.run ~config:off_config (Registry.program t)
      ~seed:(Registry.default_seed t) ~deadline:small
  in
  Telemetry.set_enabled false;
  note_run ~suite:"smoke" ~name:(t.Registry.name ^ "/pathcond-off")
    ~deadline:small off_report;
  let bug_set r =
    List.sort_uniq compare
      (List.map
         (fun ((b : Pbse_exec.Bug.t), _) -> (b.Pbse_exec.Bug.gid, b.Pbse_exec.Bug.kind))
         r.Driver.bugs)
  in
  if bug_set report <> bug_set off_report then begin
    prerr_endline "smoke pathcond A-B: bug sets diverged between on and off";
    exit 1
  end;
  let orr =
    Driver.run_report
      ~meta:
        [
          ("target", t.Registry.name);
          ("suite", "smoke-pathcond-off");
          ("deadline", string_of_int small);
        ]
      off_report
  in
  write_file "smoke_report_off.json" (Report.to_json orr);
  Printf.printf
    "smoke pathcond A-B -> results/smoke_report_off.json (queries %d on vs %d \
     off, %d interpolant hit(s))\n%!"
    (Report.metric rr "solver.queries")
    (Report.metric orr "solver.queries")
    (Report.metric rr "smt.interpolant_hits");
  (* and one tiny pool campaign, so the aggregate-report path is gated
     in CI too *)
  Telemetry.set_enabled true;
  let pool =
    Driver.run_pool ~scheduler:"coverage-greedy" ~jobs (Registry.program t)
      ~seeds:(List.map snd t.Registry.seeds)
      ~deadline:small
  in
  Telemetry.set_enabled false;
  note_pool_run ~jobs ~suite:"smoke-pool" ~name:t.Registry.name ~deadline:small
    pool;
  let pr =
    Driver.pool_run_report
      ~meta:
        [
          ("target", t.Registry.name);
          ("suite", "smoke-pool");
          ("deadline", string_of_int small);
        ]
      pool
  in
  write_file "pool_smoke_report.json" (Report.to_json pr);
  Printf.printf "pool smoke report -> results/pool_smoke_report.json (%d seeds, %d metrics)\n%!"
    (List.length pr.Report.seeds)
    (List.length pr.Report.metrics)

(* --- main ------------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (* two flags, shared by the subcommands that campaign: --jobs N and
     --lease K *)
  let flag name default =
    let rec scan i =
      if i + 1 >= Array.length Sys.argv then default
      else if Sys.argv.(i) = name then
        try max 1 (int_of_string Sys.argv.(i + 1)) with Failure _ -> default
      else scan (i + 1)
    in
    scan 1
  in
  let jobs = flag "--jobs" 1 in
  let lease = flag "--lease" 1 in
  Printf.printf "pbSE benchmark harness: 1h = %d virtual time units (PBSE_HOUR)\n" hour;
  (match what with
   | "table1" -> table1 ()
   | "table2" -> table2 ()
   | "table3" -> table3 ()
   | "fig1" -> fig1 ()
   | "fig4" -> fig4 ()
   | "fig5" -> fig5 ()
   | "ablate" -> ablate ()
   | "robust" -> robust ()
   | "pool" -> pool_bench ()
   | "pathcond-ab" -> pathcond_ab ()
   | "pool-jobs" -> pool_jobs_bench ~lease ()
   | "crash-resume" -> crash_resume_bench ~jobs ()
   | "session-store" -> session_store_bench ()
   | "serve" -> serve_bench ()
   | "smoke" -> smoke ~jobs ()
   | "bechamel" -> bechamel ()
   | "all" ->
     table1 ();
     table2 ();
     table3 ();
     fig1 ();
     fig4 ();
     fig5 ();
     ablate ();
     robust ();
     pool_bench ();
     pathcond_ab ();
     pool_jobs_bench ();
     crash_resume_bench ();
     session_store_bench ();
     serve_bench ();
     bechamel ()
   | other ->
     Printf.eprintf
       "unknown benchmark %s (try \
        table1|table2|table3|fig1|fig4|fig5|ablate|robust|pool|pathcond-ab|pool-jobs|crash-resume|session-store|serve|smoke|bechamel|all)\n"
       other;
     exit 1);
  flush_runs ()
