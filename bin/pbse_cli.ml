(* pbse — command-line front end.

   Subcommands:
     targets            list bundled target programs
     run TARGET         phase-based symbolic execution (the paper's system)
     resume SNAPSHOT    continue a checkpointed --pool campaign
     klee TARGET        baseline run with one KLEE-style searcher
     phases TARGET      concolic execution + phase division only
     bugs TARGET        bug hunt, printing each witness as a hex dump
     report FILE [B]    print a JSON run report, or diff two of them
     serve              campaign server on a Unix-domain socket
     request            client for a running `pbse serve'
     compile FILE       compile a MiniC source file and print its IR
     exec FILE          run a MiniC source file concretely on an input *)

open Cmdliner
module Registry = Pbse_targets.Registry
module Driver = Pbse.Driver
module Klee = Pbse.Klee
module Executor = Pbse_exec.Executor
module Coverage = Pbse_exec.Coverage
module Bug = Pbse_exec.Bug
module Phase = Pbse_phase.Phase
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Pool_scheduler = Pbse_campaign.Pool_scheduler
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report

let default_hour = 120_000

let lookup_target name =
  match Registry.by_name name with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown target %s (try: %s)" name
         (String.concat ", " (List.map (fun t -> t.Registry.name) Registry.all)))

let lookup_seed t label =
  match Registry.seed t label with
  | seed -> Ok seed
  | exception Not_found ->
    let labels = List.map fst (t.Registry.seeds @ t.Registry.buggy_seeds) in
    Error (Printf.sprintf "unknown seed %s (available: %s)" label (String.concat ", " labels))

(* --- shared arguments -------------------------------------------------------- *)

let target_arg =
  let doc = "Target program (see `pbse targets')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)

let seed_arg =
  let doc = "Seed label from the target's pool." in
  Arg.(value & opt string "small" & info [ "seed" ] ~docv:"LABEL" ~doc)

let hours_arg =
  let doc = "Virtual-time budget in paper-hours (one hour = 120k work units)." in
  Arg.(value & opt float 1.0 & info [ "hours" ] ~docv:"H" ~doc)

let deadline_of_hours h = int_of_float (h *. float_of_int default_hour)

let inject_arg =
  let doc =
    "Deterministic fault-injection plan: comma-separated clauses of \
     seed=N, solver=RATE, abort=RATE, mem=RATE, concolic=RATE, \
     crash=RATE (campaign turns killed at entry), snapshot=RATE \
     (checkpoint writes corrupted on disk); rates in [0,1]; see \
     docs/robustness.md."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"PLAN" ~doc)

let scheduler_arg =
  let doc =
    Printf.sprintf "Phase scheduling policy: %s."
      (String.concat ", " Pbse_sched.Scheduler.names)
  in
  Arg.(
    value
    & opt string Driver.default_config.Driver.search.Driver.scheduler
    & info [ "scheduler" ] ~docv:"POLICY" ~doc)

let max_strikes_arg =
  let doc = "Faults a state survives before it is quarantined." in
  Arg.(
    value
    & opt int Driver.default_config.Driver.robust.Driver.max_strikes
    & info [ "max-strikes" ] ~docv:"N" ~doc)

let intervals_target_arg =
  let doc = "BBVs aimed for when auto-sizing the concolic interval." in
  Arg.(
    value
    & opt int Driver.default_config.Driver.concolic.Driver.intervals_target
    & info [ "intervals-target" ] ~docv:"N" ~doc)

let prefix_cap_arg =
  let doc =
    "Bound on the solver's prefix-context LRU (distinct path prefixes \
     cached per session); evictions are counted as smt.prefix_evictions."
  in
  Arg.(
    value
    & opt int Driver.default_config.Driver.solver.Driver.prefix_cap
    & info [ "prefix-cap" ] ~docv:"N" ~doc)

let no_subsumption_arg =
  let doc =
    "Disable the block-boundary subsumption cache (unsat-core \
     interpolants; see docs/subsumption.md). Coverage and bugs are \
     unchanged either way; use for solver-work A-B comparisons."
  in
  Arg.(value & flag & info [ "no-subsumption" ] ~doc)

let no_loop_summaries_arg =
  let doc =
    "Disable closed-form loop summaries (counting-loop templates; see \
     docs/subsumption.md). Coverage and bugs are unchanged either way."
  in
  Arg.(value & flag & info [ "no-loop-summaries" ] ~doc)

let report_arg =
  let doc =
    "Enable telemetry and write the JSON run report to $(docv) \
     (schema pbse-report/1; see docs/telemetry.md). With --pool this is \
     the aggregate campaign report. Compare two reports with \
     `pbse report --diff A B'."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let write_report_json ~path json =
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "run report written to %s\n" path

(* One shared term assembles the driver configuration for every
   subcommand that runs the engine, so flags compose identically
   everywhere and new ones are added in exactly one place. Evaluates to
   a [(Driver.config, string) result]. *)
let config_term =
  let combine inject max_strikes scheduler intervals_target prefix_cap
      no_subsumption no_loop_summaries =
    if not (List.mem scheduler Pbse_sched.Scheduler.names) then
      Error
        (Printf.sprintf "unknown scheduler %s (available: %s)" scheduler
           (String.concat ", " Pbse_sched.Scheduler.names))
    else
      let config =
        Driver.default_config
        |> Driver.with_search (fun s -> { s with Driver.scheduler })
        |> Driver.with_robust (fun r -> { r with Driver.max_strikes })
        |> Driver.with_concolic (fun c -> { c with Driver.intervals_target })
        |> Driver.with_solver (fun s -> { s with Driver.prefix_cap })
        |> Driver.with_pathcond (fun p ->
               {
                 Driver.subsumption = p.Driver.subsumption && not no_subsumption;
                 loop_summaries = p.Driver.loop_summaries && not no_loop_summaries;
               })
      in
      match inject with
      | None -> Ok config
      | Some spec -> (
        match Inject.parse spec with
        | Ok plan ->
          Ok (Driver.with_robust (fun r -> { r with Driver.inject = plan }) config)
        | Error e -> Error (Printf.sprintf "bad --inject plan: %s" e))
  in
  Term.(
    const combine $ inject_arg $ max_strikes_arg $ scheduler_arg
    $ intervals_target_arg $ prefix_cap_arg $ no_subsumption_arg
    $ no_loop_summaries_arg)

(* --- targets ------------------------------------------------------------------ *)

let targets_cmd =
  let run () =
    let table = Pbse_util.Tablefmt.create [ "name"; "package"; "blocks"; "seeds"; "planted bugs" ] in
    List.iter
      (fun t ->
        let prog = Registry.program t in
        Pbse_util.Tablefmt.add_row table
          [
            t.Registry.name;
            t.Registry.package;
            string_of_int (Pbse_ir.Types.block_count prog);
            String.concat " "
              (List.map
                 (fun (l, s) -> Printf.sprintf "%s(%dB)" l (Bytes.length s))
                 t.Registry.seeds);
            string_of_int (List.length t.Registry.planted_bugs);
          ])
      Registry.all;
    Pbse_util.Tablefmt.print table;
    0
  in
  Cmd.v (Cmd.info "targets" ~doc:"List bundled target programs")
    Term.(const run $ const ())

(* --- run (pbSE) ---------------------------------------------------------------- *)

let print_report (report : Driver.report) =
  Printf.printf "seed: %d bytes; BBV interval: %d units\n" report.Driver.seed_size
    report.Driver.interval_length;
  Printf.printf "concolic time (c-time): %d; phase analysis (p-time): %d\n"
    report.Driver.c_time report.Driver.p_time;
  let division = report.Driver.division in
  Printf.printf "phases: k=%d, %d trap phase(s); strip: %s\n" division.Phase.k
    division.Phase.trap_count
    (Phase.render_strip division);
  Printf.printf "seedStates scheduled: %d\n" report.Driver.seed_state_count;
  Printf.printf "blocks covered: %d\n"
    (Coverage.count (Executor.coverage report.Driver.executor));
  Printf.printf "faults contained: %s\n" (Fault.summary report.Driver.faults);
  Printf.printf "quarantine: %d state(s) evicted, %d strike(s)\n"
    report.Driver.quarantined report.Driver.strikes;
  match report.Driver.bugs with
  | [] -> print_endline "no bugs found"
  | bugs ->
    Printf.printf "%d bug(s):\n" (List.length bugs);
    List.iter
      (fun ((bug : Bug.t), phase) ->
        Printf.printf "  phase %d: %s\n" phase (Bug.to_string bug))
      bugs

let print_seed_rows rows =
  let table =
    Pbse_util.Tablefmt.create
      [ "seed"; "bytes"; "turns"; "granted"; "dwell"; "new-blocks"; "bugs";
        "faults"; "evicted"; "strikes"; "timeouts" ]
  in
  List.iter
    (fun (s : Report.seed_row) ->
      Pbse_util.Tablefmt.add_row table
        [
          string_of_int s.Report.ordinal;
          string_of_int s.Report.bytes;
          string_of_int s.Report.turns;
          string_of_int s.Report.granted;
          string_of_int s.Report.dwell;
          string_of_int s.Report.new_blocks;
          string_of_int s.Report.bugs;
          string_of_int s.Report.faults;
          string_of_int s.Report.quarantined;
          string_of_int s.Report.strikes;
          string_of_int s.Report.timeouts;
        ])
    rows;
  Pbse_util.Tablefmt.print table

let print_pool_campaign (report : Driver.pool_report) =
  Printf.printf "%s campaign: %d of %d seed(s) run; merged coverage: %d blocks\n"
    report.Driver.pool_scheduler
    (List.length report.Driver.runs)
    (List.length report.Driver.seed_rows)
    report.Driver.merged_coverage;
  (match Fault.summary report.Driver.pool_faults with
   | "no faults" -> ()
   | faults -> Printf.printf "pool faults: %s\n" faults);
  (* wall-clock-side contention diagnostics; deliberately absent from the
     byte-identical report JSON (docs/parallelism.md) *)
  Printf.printf "pool workers: %d turn(s) pinned, %d stolen; %d id-block refill(s)\n"
    report.Driver.pool_pinned_turns report.Driver.pool_steal_count
    report.Driver.pool_id_refills;
  if report.Driver.pool_shared_seedstates > 0 then
    Printf.printf "seedStates shared across seeds: %d skipped\n"
      report.Driver.pool_shared_seedstates;
  print_seed_rows report.Driver.seed_rows;
  List.iter
    (fun ((bug : Bug.t), phase) ->
      Printf.printf "  phase %d: %s\n" phase (Bug.to_string bug))
    report.Driver.merged_bugs

(* --checkpoint/--checkpoint-every, shared by `run --pool' and `resume' *)
let checkpoint_args =
  let path_arg =
    let doc =
      "Checkpoint the campaign to $(docv) at round barriers (schema \
       pbse-snapshot/1; previous checkpoint kept as $(docv).bak). Resume \
       with `pbse resume $(docv)'."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let every_arg =
    let doc = "Campaign turns between checkpoint writes." in
    Arg.(value & opt int 8 & info [ "checkpoint-every" ] ~docv:"K" ~doc)
  in
  let combine path every = (path, every) in
  Term.(const combine $ path_arg $ every_arg)

let build_checkpoint ~target (path, every) =
  Option.map
    (fun path -> Driver.checkpoint ~meta:[ ("target", target) ] ~path ~every ())
    path

let run_cmd =
  let pool_arg =
    let doc = "Run the whole benign seed pool as a scheduled campaign." in
    Arg.(value & flag & info [ "pool" ] ~doc)
  in
  let pool_scheduler_arg =
    let doc =
      Printf.sprintf "Seed-level scheduling policy for --pool: %s."
        (String.concat ", " Pool_scheduler.names)
    in
    Arg.(
      value
      & opt string Pool_scheduler.default
      & info [ "pool-scheduler" ] ~docv:"POLICY" ~doc)
  in
  let jobs_arg =
    let doc =
      "Domains running --pool campaign turns concurrently. Reports are \
       byte-identical for every value (docs/parallelism.md)."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let lease_arg =
    let doc =
      "Consecutive same-budget turns granted per campaign dispatch: turns \
       run unbroken on the seed's home domain and merge at the round \
       barrier, amortising barrier overhead. Recorded in checkpoints so \
       `pbse resume' continues under the same lease."
    in
    Arg.(value & opt int 1 & info [ "lease" ] ~docv:"K" ~doc)
  in
  let share_arg =
    let doc =
      "With --pool: share seedStates and solver prefix residue across the \
       campaign's sessions (a fork point another seed already published is \
       scheduled once campaign-wide). Per-run reports are only \
       jobs-invariant with sharing off; the merged campaign report stays \
       deterministic at --jobs 1."
    in
    Arg.(value & flag & info [ "share-seedstates" ] ~doc)
  in
  let run name seed_label hours pool pool_scheduler jobs lease share ck config
      report_file =
    match (lookup_target name, config) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      1
    | _, _ when pool && jobs < 1 ->
      prerr_endline "--jobs must be at least 1";
      1
    | _, _ when pool && lease < 1 ->
      prerr_endline "--lease must be at least 1";
      1
    | _, _ when pool && not (List.mem pool_scheduler Pool_scheduler.names) ->
      Printf.eprintf "unknown pool scheduler %s (available: %s)\n" pool_scheduler
        (String.concat ", " Pool_scheduler.names);
      1
    | _, _ when (not pool) && fst ck <> None ->
      prerr_endline "--checkpoint needs --pool (single runs are not checkpointed)";
      1
    | _, _ when share && not pool ->
      prerr_endline "--share-seedstates needs --pool (sharing is across a campaign's seeds)";
      1
    | Ok t, Ok config ->
      if report_file <> None then Telemetry.set_enabled true;
      let deadline = deadline_of_hours hours in
      let meta seed_label =
        [ ("target", name); ("seed", seed_label); ("deadline", string_of_int deadline) ]
      in
      if pool then begin
        let config =
          if share then
            Driver.with_search
              (fun s -> { s with Driver.share_seed_states = true })
              config
          else config
        in
        let report =
          Driver.run_pool ~config ~scheduler:pool_scheduler ~jobs ~lease
            ?checkpoint:(build_checkpoint ~target:name ck)
            ~target:name
            (Registry.program t)
            ~seeds:(List.map snd t.Registry.seeds)
            ~deadline
        in
        print_pool_campaign report;
        (match report_file with
         | Some path ->
           write_report_json ~path
             (Report.to_json (Driver.pool_run_report ~meta:(meta "pool") report))
         | None -> ());
        0
      end
      else begin
        match lookup_seed t seed_label with
        | Error e ->
          prerr_endline e;
          1
        | Ok seed ->
          let report = Driver.run ~config (Registry.program t) ~seed ~deadline in
          print_report report;
          (match report_file with
           | Some path ->
             write_report_json ~path
               (Report.to_json (Driver.run_report ~meta:(meta seed_label) report))
           | None -> ());
          0
      end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Phase-based symbolic execution on a target")
    Term.(
      const run $ target_arg $ seed_arg $ hours_arg $ pool_arg
      $ pool_scheduler_arg $ jobs_arg $ lease_arg $ share_arg $ checkpoint_args
      $ config_term $ report_arg)

(* --- resume ---------------------------------------------------------------------- *)

let resume_cmd =
  let snapshot_arg =
    let doc = "Campaign checkpoint written by `pbse run --pool --checkpoint'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SNAPSHOT" ~doc)
  in
  let jobs_arg =
    let doc = "Domain-pool width; defaults to the width the snapshot records." in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let fresh_target_arg =
    let doc =
      "Fallback target when the snapshot (and its .bak) is unusable: \
       restart the campaign fresh on $(docv), recording the lost \
       checkpoint as a snapshot-corrupt fault instead of failing."
    in
    Arg.(value & opt (some string) None & info [ "fresh-target" ] ~docv:"TARGET" ~doc)
  in
  let fresh_hours_arg =
    let doc = "Virtual-time budget for a --fresh-target restart." in
    Arg.(value & opt float 1.0 & info [ "fresh-hours" ] ~docv:"H" ~doc)
  in
  let finish ~meta report_file report =
    print_pool_campaign report;
    (match report_file with
     | Some path ->
       write_report_json ~path (Report.to_json (Driver.pool_run_report ~meta report))
     | None -> ());
    0
  in
  (* total checkpoint loss: restart from nothing, fault on record *)
  let fresh_start ~detail target hours ck jobs report_file =
    match lookup_target target with
    | Error e ->
      prerr_endline e;
      1
    | Ok t ->
      if report_file <> None then Telemetry.set_enabled true;
      let deadline = deadline_of_hours hours in
      let report =
        Driver.run_pool ~jobs:(Option.value jobs ~default:1)
          ?checkpoint:(build_checkpoint ~target ck)
          ~preload_faults:[ (Fault.Snapshot_corrupt, detail) ]
          (Registry.program t)
          ~seeds:(List.map snd t.Registry.seeds)
          ~deadline
      in
      finish
        ~meta:
          [ ("target", target); ("seed", "pool"); ("deadline", string_of_int deadline) ]
        report_file report
  in
  let run path jobs ck fresh_target fresh_hours report_file =
    match Driver.load_snapshot ~path with
    | Error e -> (
      match fresh_target with
      | Some target ->
        Printf.eprintf "checkpoint unusable (%s); restarting fresh on %s\n" e target;
        fresh_start ~detail:e target fresh_hours ck jobs report_file
      | None ->
        Printf.eprintf "cannot resume %s: %s\n" path e;
        1)
    | Ok (sn, fallback) -> (
      (match fallback with
       | Some why -> Printf.eprintf "primary checkpoint bad (%s); resuming from %s.bak\n" why path
       | None -> ());
      let meta_of key = List.assoc_opt key sn.Pbse_campaign.Snapshot.sn_meta in
      match meta_of "target" with
      | None ->
        prerr_endline "snapshot records no target name; cannot rebuild the campaign";
        1
      | Some target -> (
        match lookup_target target with
        | Error e ->
          prerr_endline e;
          1
        | Ok t ->
          (* match the original process's telemetry switch so the resumed
             report is byte-identical to the uninterrupted run's *)
          if meta_of "telemetry" = Some "1" || report_file <> None then
            Telemetry.set_enabled true;
          let meta =
            [
              ("target", target);
              ("seed", "pool");
              ("deadline", Option.value (meta_of "deadline") ~default:"0");
            ]
          in
          (match
             Driver.resume_pool ?jobs
               ?checkpoint:(build_checkpoint ~target ck)
               ?fallback sn (Registry.program t)
               ~seeds:(List.map snd t.Registry.seeds)
           with
           | Ok report -> finish ~meta report_file report
           | Error e ->
             prerr_endline ("cannot resume: " ^ e);
             1)))
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Continue a checkpointed --pool campaign (crash recovery)")
    Term.(
      const run $ snapshot_arg $ jobs_arg $ checkpoint_args $ fresh_target_arg
      $ fresh_hours_arg $ report_arg)

(* --- klee ----------------------------------------------------------------------- *)

let klee_cmd =
  let searcher_arg =
    let doc = "Searcher: default, random-path, random-state, covnew, md2u, dfs, bfs." in
    Arg.(value & opt string "default" & info [ "searcher" ] ~docv:"NAME" ~doc)
  in
  let sym_size_arg =
    let doc = "Symbolic file size in bytes." in
    Arg.(value & opt int 100 & info [ "sym-size" ] ~docv:"N" ~doc)
  in
  let run name searcher sym_size hours =
    match lookup_target name with
    | Error e ->
      prerr_endline e;
      1
    | Ok t -> (
      let deadline = deadline_of_hours hours in
      match
        Klee.run (Registry.program t) ~searcher ~input:(Bytes.make sym_size '\000')
          ~checkpoints:[ deadline ]
      with
      | r ->
        Printf.printf "searcher %s, sym-%d, %.1fh: %d blocks covered, %d fork(s)\n"
          searcher sym_size hours
          (List.assoc deadline r.Klee.checkpoints)
          r.Klee.forks;
        List.iter (fun bug -> print_endline ("  " ^ Bug.to_string bug)) r.Klee.bugs;
        0
      | exception Invalid_argument msg ->
        prerr_endline msg;
        1)
  in
  Cmd.v
    (Cmd.info "klee" ~doc:"Baseline symbolic execution with one searcher")
    Term.(const run $ target_arg $ searcher_arg $ sym_size_arg $ hours_arg)

(* --- phases ---------------------------------------------------------------------- *)

let phases_cmd =
  let run name seed_label config =
    match (lookup_target name, config) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      1
    | Ok t, Ok config -> (
      match lookup_seed t seed_label with
      | Error e ->
        prerr_endline e;
        1
      | Ok seed ->
        let prog = Registry.program t in
        let clock = Pbse_util.Vclock.create () in
        let exec = Executor.create ~clock prog ~input:seed in
        (* same interval sizing as the driver, honouring --intervals-target *)
        let interval_length = Driver.interval_length_for config prog ~seed in
        let concolic =
          Pbse_concolic.Concolic.run ~interval_length exec
            (Pbse_concolic.Trace.indexer ())
        in
        let division =
          Phase.divide ~mode:config.Driver.concolic.Driver.mode
            ~max_k:config.Driver.search.Driver.max_k
            (Pbse_util.Rng.create config.Driver.rng_seed)
            concolic.Pbse_concolic.Concolic.bbvs
        in
        Printf.printf "concolic run: %d virtual time units, %d BBVs, %d seedStates\n"
          concolic.Pbse_concolic.Concolic.c_time
          (List.length concolic.Pbse_concolic.Concolic.bbvs)
          (List.length concolic.Pbse_concolic.Concolic.seed_states);
        Printf.printf "division: k=%d, %d trap phase(s)\n" division.Phase.k
          division.Phase.trap_count;
        Printf.printf "strip: %s\n" (Phase.render_strip division);
        List.iter
          (fun (p : Phase.phase) ->
            Printf.printf "  phase %d: %d interval(s), longest run %d%s, first seen t=%d\n"
              p.Phase.pid (Array.length p.Phase.intervals) p.Phase.longest_run
              (if p.Phase.trap then " (TRAP)" else "")
              p.Phase.first_vtime)
          division.Phase.phases;
        0)
  in
  Cmd.v
    (Cmd.info "phases" ~doc:"Concolic execution and phase division only")
    Term.(const run $ target_arg $ seed_arg $ config_term)

(* --- bugs ------------------------------------------------------------------------- *)

let hexdump bytes =
  let buf = Buffer.create 256 in
  Bytes.iteri
    (fun i c ->
      if i mod 16 = 0 then Buffer.add_string buf (Printf.sprintf "\n    %04x: " i);
      Buffer.add_string buf (Printf.sprintf "%02x " (Char.code c)))
    bytes;
  Buffer.contents buf

let bugs_cmd =
  let run name seed_label hours config =
    match (lookup_target name, config) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      1
    | Ok t, Ok config -> (
      match lookup_seed t seed_label with
      | Error e ->
        prerr_endline e;
        1
      | Ok seed ->
        let report =
          Driver.run ~config (Registry.program t) ~seed
            ~deadline:(deadline_of_hours hours)
        in
        (match report.Driver.bugs with
         | [] -> print_endline "no bugs found"
         | bugs ->
           List.iter
             (fun ((bug : Bug.t), phase) ->
               Printf.printf "phase %d: %s\n" phase (Bug.to_string bug);
               Printf.printf "  witness:%s\n" (hexdump bug.Bug.witness))
             bugs);
        0)
  in
  Cmd.v
    (Cmd.info "bugs" ~doc:"Hunt bugs with pbSE and print witness inputs")
    Term.(const run $ target_arg $ seed_arg $ hours_arg $ config_term)

(* --- report ---------------------------------------------------------------------- *)

let load_report path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Report.of_json text with
  | Ok r -> Ok r
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let print_report_summary (r : Report.t) =
  List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v) r.Report.meta;
  List.iter (fun (k, v) -> Printf.printf "%-28s %d\n" k v) r.Report.metrics;
  (match r.Report.seeds with [] -> () | rows -> print_seed_rows rows);
  match r.Report.phases with
  | [] -> ()
  | phases ->
    let table =
      Pbse_util.Tablefmt.create
        [
          "phase"; "pid"; "trap"; "seeded"; "turns"; "slices"; "new-cover";
          "dwell"; "evicted"; "subsumed"; "summarized";
        ]
    in
    List.iter
      (fun (p : Report.phase_row) ->
        Pbse_util.Tablefmt.add_row table
          [
            string_of_int p.Report.ordinal;
            string_of_int p.Report.pid;
            (if p.Report.trap then "yes" else "no");
            string_of_int p.Report.seeded;
            string_of_int p.Report.turns;
            string_of_int p.Report.slices;
            string_of_int p.Report.new_cover;
            string_of_int p.Report.dwell;
            string_of_int p.Report.quarantined;
            string_of_int p.Report.subsumed;
            string_of_int p.Report.summarized;
          ])
      phases;
    Pbse_util.Tablefmt.print table

let report_cmd =
  let file_a =
    let doc = "Run report (JSON, written by `pbse run --report')." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc)
  in
  let file_b =
    let doc = "Second report to compare against (new side of the diff)." in
    Arg.(value & pos 1 (some file) None & info [] ~docv:"B" ~doc)
  in
  let diff_flag =
    let doc = "Print a regression summary between reports $(i,A) and $(i,B)." in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let fail_on_arg =
    let doc =
      "Regression gates for a diff, e.g. \
       `coverage.blocks:-10%,solver.work:+75%': exit 1 when a metric in \
       $(i,B) drops (-N%) or grows (+N%) past its threshold relative to \
       $(i,A)."
    in
    Arg.(value & opt (some string) None & info [ "fail-on" ] ~docv:"SPEC" ~doc)
  in
  let run path_a path_b diff fail_on =
    match (path_b, diff || fail_on <> None) with
    | None, true ->
      prerr_endline "report --diff needs two report files (A and B)";
      1
    | None, false -> (
      match load_report path_a with
      | Error e ->
        prerr_endline e;
        1
      | Ok r ->
        print_report_summary r;
        0)
    | Some path_b, _ -> (
      match (load_report path_a, load_report path_b) with
      | Error e, _ | _, Error e ->
        prerr_endline e;
        1
      | Ok a, Ok b -> (
        print_string (Report.diff a b);
        match fail_on with
        | None -> 0
        | Some spec -> (
          match Report.parse_gates spec with
          | Error e ->
            prerr_endline ("bad --fail-on spec: " ^ e);
            1
          | Ok gates -> (
            match Report.check_gates gates a b with
            | [] -> 0
            | violations ->
              List.iter (fun v -> prerr_endline ("gate violated: " ^ v)) violations;
              1))))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Print a JSON run report, or diff two of them (`report --diff A B')")
    Term.(const run $ file_a $ file_b $ diff_flag $ fail_on_arg)

(* --- serve / request ----------------------------------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path of the campaign server." in
  Arg.(value & opt string "/tmp/pbse.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let jobs_arg =
    let doc = "Worker domains in the server's shared campaign pool." in
    Arg.(value & opt int 2 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let store_cap_arg =
    let doc = "Live sessions kept in the server's session store (LRU)." in
    Arg.(value & opt (some int) None & info [ "store-cap" ] ~docv:"N" ~doc)
  in
  let listen_arg =
    let doc = "Also listen on TCP $(docv) (e.g. 127.0.0.1:7199)." in
    Arg.(
      value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT" ~doc)
  in
  let store_file_arg =
    let doc =
      "Persist rendered responses to $(docv) (pbse-store/1): reloaded at \
       boot, checkpointed after each request and at shutdown, so the warm \
       cache survives a restart."
    in
    Arg.(
      value & opt (some string) None & info [ "store-file" ] ~docv:"FILE" ~doc)
  in
  let max_inflight_arg =
    let doc = "Concurrently admitted campaigns across all clients (0 = unlimited)." in
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let quota_arg =
    let doc =
      "Per-client token-bucket quota: burst of $(docv) requests, refilling \
       at $(docv) per minute (0 = no quotas). Clients are keyed by the \
       request envelope's \"client\" identity."
    in
    Arg.(value & opt int 0 & info [ "quota" ] ~docv:"N" ~doc)
  in
  let run socket listen jobs store_cap store_file max_inflight quota =
    if jobs < 1 then begin
      prerr_endline "--jobs must be at least 1";
      1
    end
    else begin
      let endpoints =
        match listen with
        | None -> Ok [ Pbse_serve.Transport.Unix_socket socket ]
        | Some spec -> (
          match Pbse_serve.Transport.endpoint_of_string spec with
          | Ok tcp -> Ok [ Pbse_serve.Transport.Unix_socket socket; tcp ]
          | Error e -> Error e)
      in
      match endpoints with
      | Error e ->
        prerr_endline e;
        1
      | Ok endpoints ->
        let control = Pbse_serve.Transport.control_create () in
        let quit =
          Sys.Signal_handle
            (fun _ -> Pbse_serve.Transport.request_stop control)
        in
        Sys.set_signal Sys.sigterm quit;
        Sys.set_signal Sys.sigint quit;
        let lookup name =
          Option.map
            (fun t -> (Registry.program t, List.map snd t.Registry.seeds))
            (Registry.by_name name)
        in
        Printf.printf "pbse serve: listening on %s (%d job(s))\n%!"
          (String.concat ", "
             (List.map Pbse_serve.Transport.endpoint_to_string endpoints))
          jobs;
        let stats =
          Pbse.Serve.serve ~endpoints ~jobs ?store_cap ?store_file
            ~max_inflight ~quota_burst:quota
            ~quota_refill:(float_of_int quota /. 60.0)
            ~control ~lookup ()
        in
        Printf.printf
          "pbse serve: %d client(s), %d request(s), %d error(s), %d \
           rejection(s); store: %d hit(s), %d miss(es), %d eviction(s), %d \
           reload(s)\n"
          stats.Pbse.Serve.sv_clients stats.Pbse.Serve.sv_requests
          stats.Pbse.Serve.sv_errors stats.Pbse.Serve.sv_rejections
          stats.Pbse.Serve.sv_store_hits stats.Pbse.Serve.sv_store_misses
          stats.Pbse.Serve.sv_store_evictions stats.Pbse.Serve.sv_store_reloads;
        0
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Campaign server speaking pbse-serve/2 (and the deprecated v1 \
          one-liner) over a Unix-domain socket and optionally TCP \
          (--listen). pbse-report/1 responses byte-identical to `run --pool \
          --report' on every transport; admission control via \
          --max-inflight/--quota; --store-file keeps the response cache warm \
          across restarts. Stops immediately on SIGTERM/SIGINT.")
    Term.(
      const run $ socket_arg $ listen_arg $ jobs_arg $ store_cap_arg
      $ store_file_arg $ max_inflight_arg $ quota_arg)

let request_cmd =
  let json_arg =
    let doc =
      "Raw request JSON (one object; see docs/architecture.md). Overrides \
       the individual request flags."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"JSON" ~doc)
  in
  let target_arg =
    let doc = "Target program to request a campaign for." in
    Arg.(value & opt (some string) None & info [ "target" ] ~docv:"TARGET" ~doc)
  in
  let deadline_arg =
    let doc = "Virtual-time budget of the requested campaign (work units)." in
    Arg.(value & opt int default_hour & info [ "deadline" ] ~docv:"N" ~doc)
  in
  let pool_scheduler_arg =
    let doc = "Seed-level scheduling policy for the requested campaign." in
    Arg.(
      value
      & opt string Pool_scheduler.default
      & info [ "pool-scheduler" ] ~docv:"POLICY" ~doc)
  in
  let lease_arg =
    let doc = "Consecutive same-budget turns per campaign dispatch." in
    Arg.(value & opt int 1 & info [ "lease" ] ~docv:"K" ~doc)
  in
  let out_arg =
    let doc = "Write the report JSON to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let connect_arg =
    let doc = "Connect over TCP to $(docv) instead of the Unix socket." in
    Arg.(
      value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let timeout_arg =
    let doc = "Bound the connect and every read by $(docv) seconds." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let id_arg =
    let doc = "Request id, echoed in every response frame." in
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc)
  in
  let client_arg =
    let doc = "Client identity for the server's per-client quotas." in
    Arg.(value & opt (some string) None & info [ "client" ] ~docv:"NAME" ~doc)
  in
  let progress_arg =
    let doc = "Print a progress line to stderr at each campaign round." in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let run socket connect json target deadline pool_scheduler lease id client
      progress timeout out =
    let line =
      match (json, target) with
      | Some json, _ -> Ok json
      | None, Some target ->
        Ok
          (Pbse_serve.Protocol.render_request
             {
               Pbse_serve.Protocol.rq_id = id;
               rq_client = client;
               rq_progress = progress;
               rq_target = target;
               rq_deadline = deadline;
               rq_pool_scheduler = pool_scheduler;
               rq_scheduler = None;
               rq_jobs = None;
               rq_lease = lease;
               rq_share = false;
             })
      | None, None -> Error "request needs --target NAME or --json REQUEST"
    in
    let endpoint =
      match connect with
      | None -> Ok (Pbse_serve.Transport.Unix_socket socket)
      | Some spec -> Pbse_serve.Transport.endpoint_of_string spec
    in
    match (line, endpoint) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      1
    | Ok line, Ok endpoint -> (
      let on_progress round =
        if progress then Printf.eprintf "pbse request: round %d\n%!" round
      in
      match Pbse.Serve.request ?timeout ~on_progress ~connect:endpoint line with
      | Error e ->
        let retry =
          match e.Pbse.Serve.err_retry_after with
          | Some s -> Printf.sprintf " (retry after %ds)" s
          | None -> ""
        in
        Printf.eprintf "pbse request: error %s: %s%s\n" e.Pbse.Serve.err_code
          e.Pbse.Serve.err_message retry;
        1
      | Ok body ->
        (match out with
         | Some path -> write_report_json ~path body
         | None -> print_string body);
        0)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one campaign request to a running `pbse serve' (pbse-serve/2 \
          envelope; falls back to v1 against an old server). Errors are \
          structured `code: message' lines on stderr with a non-zero exit.")
    Term.(
      const run $ socket_arg $ connect_arg $ json_arg $ target_arg
      $ deadline_arg $ pool_scheduler_arg $ lease_arg $ id_arg $ client_arg
      $ progress_arg $ timeout_arg $ out_arg)

(* --- compile / exec ------------------------------------------------------------------ *)

let file_arg =
  let doc = "MiniC source file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_cmd =
  let run path =
    match Pbse_lang.Frontend.compile_result (read_file path) with
    | Ok prog ->
      print_string (Pbse_ir.Printer.program_to_string prog);
      0
    | Error msg ->
      prerr_endline msg;
      1
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a MiniC file and print its IR")
    Term.(const run $ file_arg)

let exec_cmd =
  let input_arg =
    let doc = "Input file fed to the in()/in_size() intrinsics." in
    Arg.(value & opt (some file) None & info [ "input" ] ~docv:"FILE" ~doc)
  in
  let run path input =
    match Pbse_lang.Frontend.compile_result (read_file path) with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok prog ->
      let input =
        match input with Some f -> Bytes.of_string (read_file f) | None -> Bytes.empty
      in
      let r = Pbse_exec.Concrete.run prog ~input in
      List.iter (fun v -> Printf.printf "out: %Ld\n" v) r.Pbse_exec.Concrete.output;
      (match r.Pbse_exec.Concrete.outcome with
       | Pbse_exec.Concrete.Exit code ->
         Printf.printf "exit %Ld (%d steps)\n" code r.Pbse_exec.Concrete.steps;
         Int64.to_int code land 0xFF
       | Pbse_exec.Concrete.Fault { kind; detail; _ } ->
         Printf.printf "fault: %s (%s)\n" kind detail;
         2
       | Pbse_exec.Concrete.Halted { message; _ } ->
         Printf.printf "halted: %s\n" message;
         3
       | Pbse_exec.Concrete.Out_of_fuel ->
         print_endline "out of fuel";
         4)
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Run a MiniC file concretely")
    Term.(const run $ file_arg $ input_arg)

let () =
  let info =
    Cmd.info "pbse" ~version:"1.0.0"
      ~doc:"Phase-based symbolic execution (DSN 2017 reproduction)"
  in
  let group =
    Cmd.group info
      [
        targets_cmd; run_cmd; resume_cmd; klee_cmd; phases_cmd; bugs_cmd; report_cmd;
        serve_cmd; request_cmd; compile_cmd; exec_cmd;
      ]
  in
  exit (Cmd.eval' group)
