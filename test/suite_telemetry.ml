module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report
module Json = Pbse_telemetry.Json
module Driver = Pbse.Driver

(* The registry is process-global; every test snapshots/restores the
   enabled flag and resets so tests stay order-independent. *)
let with_registry ~enabled f =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled enabled;
  Telemetry.reset ();
  Fun.protect ~finally:(fun () ->
      Telemetry.reset ();
      Telemetry.set_enabled was)
    f

(* --- histogram bucketing -------------------------------------------------- *)

let test_bucket_edges () =
  let check v expect =
    Alcotest.(check int) (Printf.sprintf "bucket of %d" v) expect
      (Telemetry.bucket_index v)
  in
  check min_int 0;
  check (-1) 0;
  check 0 0;
  check 1 1;
  check 2 2;
  check 3 2;
  check 4 3;
  (* every power-of-two boundary: 2^k - 1 sits one bucket below 2^k *)
  for k = 1 to 61 do
    let p = 1 lsl k in
    Alcotest.(check int)
      (Printf.sprintf "2^%d" k)
      (k + 1) (Telemetry.bucket_index p);
    Alcotest.(check int)
      (Printf.sprintf "2^%d - 1" k)
      k
      (Telemetry.bucket_index (p - 1))
  done;
  check max_int (Telemetry.nbuckets - 1)

let test_bucket_lo_roundtrip () =
  (* bucket_lo is the smallest value mapping into its bucket *)
  Alcotest.(check int) "lo 0" 0 (Telemetry.bucket_lo 0);
  for i = 1 to Telemetry.nbuckets - 1 do
    let lo = Telemetry.bucket_lo i in
    Alcotest.(check int) (Printf.sprintf "lo of bucket %d maps back" i) i
      (Telemetry.bucket_index lo);
    if i >= 2 then
      Alcotest.(check int)
        (Printf.sprintf "lo %d - 1 maps below" i)
        (i - 1)
        (Telemetry.bucket_index (lo - 1))
  done

let test_histogram_snapshot () =
  with_registry ~enabled:true (fun () ->
      let h = Telemetry.histogram "test.hist" in
      List.iter (Telemetry.observe h) [ 0; 1; 1; 5; 1024; max_int ];
      let s = Telemetry.histogram_snapshot h in
      Alcotest.(check int) "count" 6 s.Telemetry.hs_count;
      Alcotest.(check int) "min" 0 s.Telemetry.hs_min;
      Alcotest.(check int) "max" max_int s.Telemetry.hs_max;
      Alcotest.(check bool) "sum overflow-wrapped or exact" true
        (s.Telemetry.hs_sum = 0 + 1 + 1 + 5 + 1024 + max_int);
      Alcotest.(check (list (pair int int)))
        "nonzero buckets"
        [ (0, 1); (1, 2); (3, 1); (11, 1); (Telemetry.nbuckets - 1, 1) ]
        s.Telemetry.hs_buckets)

(* --- gating ---------------------------------------------------------------- *)

let test_disabled_is_inert () =
  with_registry ~enabled:false (fun () ->
      let c = Telemetry.counter "test.gated" in
      let g = Telemetry.gauge "test.gated_gauge" in
      let h = Telemetry.histogram "test.gated_hist" in
      let s = Telemetry.span "test.gated_span" in
      Telemetry.incr c;
      Telemetry.add c 41;
      Telemetry.set_gauge g 7;
      Telemetry.observe h 99;
      let r = Telemetry.with_span s ~now:(fun () -> 123) (fun () -> "ok") in
      Alcotest.(check string) "with_span passes result through" "ok" r;
      Alcotest.(check int) "counter untouched" 0 (Telemetry.counter_value c);
      Alcotest.(check int) "gauge untouched" 0 (Telemetry.gauge_value g);
      Alcotest.(check int) "histogram untouched" 0
        (Telemetry.histogram_snapshot h).Telemetry.hs_count;
      Alcotest.(check int) "span untouched" 0 (Telemetry.span_count s))

let test_enabled_records () =
  with_registry ~enabled:true (fun () ->
      let c = Telemetry.counter "test.live" in
      Telemetry.incr c;
      Telemetry.add c 41;
      Alcotest.(check int) "counter" 42 (Telemetry.counter_value c);
      (* same name returns the same instrument *)
      Alcotest.(check int) "interned by name" 42
        (Telemetry.counter_value (Telemetry.counter "test.live"));
      Telemetry.reset ();
      Alcotest.(check int) "reset zeroes" 0 (Telemetry.counter_value c))

let test_span_fake_clock () =
  with_registry ~enabled:true (fun () ->
      let s = Telemetry.span "test.clock" in
      let t = ref 0 in
      let now () = !t in
      Telemetry.with_span s ~now (fun () -> t := !t + 10);
      Telemetry.with_span s ~now (fun () -> t := !t + 7);
      Alcotest.(check int) "two spans" 2 (Telemetry.span_count s);
      Alcotest.(check int) "total elapsed" 17 (Telemetry.span_total s);
      (* exceptions still charge the span *)
      (try
         Telemetry.with_span s ~now (fun () ->
             t := !t + 3;
             failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "exception counted" 3 (Telemetry.span_count s);
      Alcotest.(check int) "exception charged" 20 (Telemetry.span_total s))

(* --- JSON ------------------------------------------------------------------ *)

let sample_report () =
  {
    Report.meta = [ ("target", "mini"); ("seed", "default") ];
    metrics = [ ("a.one", 1); ("b.two", 2); ("c.zero", 0) ];
    phases =
      [
        {
          Report.ordinal = 1;
          pid = 3;
          trap = true;
          seeded = 4;
          turns = 5;
          slices = 6;
          new_cover = 2;
          dwell = 1000;
          quarantined = 0;
          subsumed = 3;
          summarized = 1;
        };
      ];
    seeds = [];
    histograms =
      [
        {
          Telemetry.hs_name = "test.h";
          hs_count = 2;
          hs_sum = 5;
          hs_min = 1;
          hs_max = 4;
          hs_buckets = [ (1, 1); (3, 1) ];
        };
      ];
  }

let test_report_roundtrip () =
  let r = sample_report () in
  let json = Report.to_json r in
  match Report.of_json json with
  | Error e -> Alcotest.fail ("of_json: " ^ e)
  | Ok r' ->
    Alcotest.(check string) "roundtrip is byte-identical" json (Report.to_json r');
    Alcotest.(check int) "metric lookup" 2 (Report.metric r' "b.two");
    Alcotest.(check int) "missing metric is 0" 0 (Report.metric r' "nope")

let test_report_bad_schema () =
  let json = Report.to_json (sample_report ()) in
  (* bump the schema version in place *)
  let mangled =
    match String.index json '1' with
    | i -> String.sub json 0 i ^ "9" ^ String.sub json (i + 1) (String.length json - i - 1)
    | exception Not_found -> Alcotest.fail "no schema digit found"
  in
  match Report.of_json mangled with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ()

let test_json_rejects_floats () =
  match Json.parse "{\"x\": 1.5}" with
  | Ok _ -> Alcotest.fail "float accepted"
  | Error _ -> ()

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_diff_self () =
  let r = sample_report () in
  let d = Report.diff r r in
  Alcotest.(check bool) "self-diff reports identical metrics" true
    (contains ~needle:"identical metrics" d);
  let other =
    { r with metrics = List.map (fun (k, v) -> (k, v + 1)) r.metrics }
  in
  let d2 = Report.diff r other in
  Alcotest.(check bool) "changed metrics reported" true
    (contains ~needle:"3 of 3 metrics changed" d2)

(* --- end-to-end determinism ------------------------------------------------ *)

let driver_report_json ?(scheduler = Driver.default_config.Driver.search.Driver.scheduler)
    () =
  with_registry ~enabled:true (fun () ->
      let config =
        Driver.(with_search (fun s -> { s with scheduler }) default_config)
      in
      let report =
        Driver.run ~config
          (Suite_core.mini_program ())
          ~seed:(Suite_core.mini_seed ()) ~deadline:80_000
      in
      Report.to_json
        (Driver.run_report ~meta:[ ("target", "mini") ] report))

(* every scheduling policy must be deterministic: same seed, same
   byte-identical report *)
let test_identical_runs_identical_reports () =
  List.iter
    (fun scheduler ->
      let a = driver_report_json ~scheduler () in
      let b = driver_report_json ~scheduler () in
      Alcotest.(check bool) (scheduler ^ ": nonempty") true (String.length a > 0);
      Alcotest.(check string)
        (Printf.sprintf "byte-identical reports (%s)" scheduler)
        a b)
    Pbse_sched.Scheduler.names

let test_driver_report_has_core_metrics () =
  let json = driver_report_json () in
  match Report.of_json json with
  | Error e -> Alcotest.fail ("of_json: " ^ e)
  | Ok r ->
    Alcotest.(check bool) "solver.queries > 0" true (Report.metric r "solver.queries" > 0);
    Alcotest.(check bool) "phase.turns > 0" true (Report.metric r "phase.turns" > 0);
    Alcotest.(check bool) "exec.states > 0" true (Report.metric r "exec.states" > 0);
    Alcotest.(check bool) "has phase rows" true (List.length r.Report.phases > 0);
    Alcotest.(check bool) "has histograms (telemetry was on)" true
      (List.length r.Report.histograms > 0);
    Alcotest.(check bool) "span.driver.concolic recorded" true
      (Report.metric r "span.driver.concolic.count" > 0)

(* --- registry merge laws ---------------------------------------------------- *)

(* Build a registry with one instrument of each kind, loaded with the
   given values. Enabled while loading so the gated mutators record. *)
let loaded ~c ~g ~h ~sp =
  let r = Telemetry.Registry.create ~enabled:true () in
  Telemetry.add (Telemetry.Registry.counter r "c") c;
  Telemetry.set_gauge (Telemetry.Registry.gauge r "g") g;
  List.iter (Telemetry.observe (Telemetry.Registry.histogram r "h")) h;
  let span = Telemetry.Registry.span r "s" in
  let t = ref 0 in
  Telemetry.with_span span ~now:(fun () -> !t) (fun () -> t := sp);
  r

let merge_snapshot r =
  ( Telemetry.Registry.snapshot_counters r,
    Telemetry.Registry.snapshot_gauges r,
    Telemetry.Registry.snapshot_spans r,
    List.map
      (fun h ->
        Telemetry.
          (h.hs_name, h.hs_count, h.hs_sum, h.hs_min, h.hs_max, h.hs_buckets))
      (Telemetry.Registry.snapshot_histograms r) )

let test_merge_laws () =
  let a () = loaded ~c:3 ~g:7 ~h:[ 1; 100 ] ~sp:5 in
  let b () = loaded ~c:4 ~g:2 ~h:[ 50 ] ~sp:9 in
  let into = Telemetry.Registry.create ~enabled:true () in
  Telemetry.Registry.merge_into ~into (a ());
  Telemetry.Registry.merge_into ~into (b ());
  Alcotest.(check (list (pair string int)))
    "counters add" [ ("c", 7) ]
    (Telemetry.Registry.snapshot_counters into);
  Alcotest.(check (list (pair string int)))
    "gauges keep the max" [ ("g", 7) ]
    (Telemetry.Registry.snapshot_gauges into);
  (match Telemetry.Registry.snapshot_spans into with
   | [ ("s", count, total) ] ->
     Alcotest.(check int) "span counts add" 2 count;
     Alcotest.(check int) "span totals add" 14 total
   | other -> Alcotest.fail (Printf.sprintf "span rows: %d" (List.length other)));
  (match Telemetry.Registry.snapshot_histograms into with
   | [ h ] ->
     Alcotest.(check int) "histogram counts add" 3 h.Telemetry.hs_count;
     Alcotest.(check int) "histogram sums add" 151 h.Telemetry.hs_sum;
     Alcotest.(check int) "min hull" 1 h.Telemetry.hs_min;
     Alcotest.(check int) "max hull" 100 h.Telemetry.hs_max
   | other -> Alcotest.fail (Printf.sprintf "histogram rows: %d" (List.length other)))

let test_merge_commutes () =
  let ab = Telemetry.Registry.create () in
  Telemetry.Registry.merge_into ~into:ab (loaded ~c:3 ~g:7 ~h:[ 1; 100 ] ~sp:5);
  Telemetry.Registry.merge_into ~into:ab (loaded ~c:4 ~g:2 ~h:[ 50 ] ~sp:9);
  let ba = Telemetry.Registry.create () in
  Telemetry.Registry.merge_into ~into:ba (loaded ~c:4 ~g:2 ~h:[ 50 ] ~sp:9);
  Telemetry.Registry.merge_into ~into:ba (loaded ~c:3 ~g:7 ~h:[ 1; 100 ] ~sp:5);
  Alcotest.(check bool) "merge is commutative" true
    (merge_snapshot ab = merge_snapshot ba)

let test_merge_associates () =
  let parts () =
    [
      loaded ~c:1 ~g:9 ~h:[ 4 ] ~sp:2;
      loaded ~c:2 ~g:3 ~h:[ 8; 8 ] ~sp:4;
      loaded ~c:5 ~g:6 ~h:[] ~sp:0;
    ]
  in
  (* ((a+b)+c) vs (a+(b+c)): merge the middle pair first *)
  let left = Telemetry.Registry.create () in
  List.iter (fun r -> Telemetry.Registry.merge_into ~into:left r) (parts ());
  let right = Telemetry.Registry.create () in
  (match parts () with
   | [ ra; rb; rc ] ->
     Telemetry.Registry.merge_into ~into:rb rc;
     Telemetry.Registry.merge_into ~into:right ra;
     Telemetry.Registry.merge_into ~into:right rb
   | _ -> assert false);
  Alcotest.(check bool) "merge is associative" true
    (merge_snapshot left = merge_snapshot right)

let test_merge_ignores_enabled_gate () =
  (* a disabled aggregate must still absorb worker values: merges happen
     at barriers, after the gated hot paths *)
  let src = loaded ~c:6 ~g:1 ~h:[ 2 ] ~sp:3 in
  Telemetry.Registry.set_enabled src false;
  let into = Telemetry.Registry.create () in
  Telemetry.Registry.merge_into ~into src;
  Alcotest.(check (list (pair string int)))
    "disabled registries still merge" [ ("c", 6) ]
    (Telemetry.Registry.snapshot_counters into)

let suite =
  [
    Alcotest.test_case "histogram bucket edges" `Quick test_bucket_edges;
    Alcotest.test_case "bucket_lo roundtrip" `Quick test_bucket_lo_roundtrip;
    Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
    Alcotest.test_case "disabled registry is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "enabled registry records" `Quick test_enabled_records;
    Alcotest.test_case "spans under a fake clock" `Quick test_span_fake_clock;
    Alcotest.test_case "report JSON roundtrip" `Quick test_report_roundtrip;
    Alcotest.test_case "report rejects wrong schema" `Quick test_report_bad_schema;
    Alcotest.test_case "JSON parser rejects floats" `Quick test_json_rejects_floats;
    Alcotest.test_case "self-diff is quiet" `Quick test_diff_self;
    Alcotest.test_case "identical runs, identical reports" `Quick
      test_identical_runs_identical_reports;
    Alcotest.test_case "driver report has core metrics" `Quick
      test_driver_report_has_core_metrics;
    Alcotest.test_case "registry merge laws" `Quick test_merge_laws;
    Alcotest.test_case "registry merge commutes" `Quick test_merge_commutes;
    Alcotest.test_case "registry merge associates" `Quick test_merge_associates;
    Alcotest.test_case "merge ignores enabled gate" `Quick
      test_merge_ignores_enabled_gate;
  ]
