(* Scheduler policy tests: the pluggable phase-scheduling subsystem the
   driver delegates to (lib/sched). Queues are driven directly here with
   dfs searchers holding dummy states, no engine involved. *)

module Scheduler = Pbse_sched.Scheduler
module Phase_queue = Pbse_sched.Phase_queue
module Searcher = Pbse_exec.Searcher
module State = Pbse_exec.State
module Mem = Pbse_exec.Mem

let dummy_state id =
  State.create ~id ~nregs:1 ~mem:Mem.empty ~model:Pbse_smt.Model.empty ~fidx:0
    ~born:0

let queue ?(states = 1) ?(trap = false) ordinal =
  let q = Phase_queue.create ~ordinal ~pid:ordinal ~trap (Searcher.dfs ()) in
  for i = 1 to states do
    Phase_queue.seed q (dummy_state ((100 * ordinal) + i))
  done;
  q

let tp = 1000

let make name qs =
  match Scheduler.by_name name with
  | Some f -> f ~time_period:tp qs
  | None -> Alcotest.fail ("unknown policy " ^ name)

let select_ordinal sched =
  match sched.Scheduler.select () with
  | Some t -> t.Scheduler.queue.Phase_queue.ordinal
  | None -> Alcotest.fail "expected a turn"

let test_queue_basics () =
  let q = queue ~states:3 1 in
  Alcotest.(check int) "seeded counted" 3 q.Phase_queue.seeded;
  Alcotest.(check int) "size tracks searcher" 3 (Phase_queue.size q);
  (match q.Phase_queue.searcher.Searcher.select () with
   | Some st ->
     q.Phase_queue.searcher.Searcher.remove st;
     Alcotest.(check int) "size after remove" 2 (Phase_queue.size q)
   | None -> Alcotest.fail "expected a state")

let test_round_robin_cycles_in_order () =
  let sched = make "round-robin" [ queue 1; queue 2; queue 3 ] in
  let step () =
    let o = select_ordinal sched in
    sched.Scheduler.credit (List.nth (sched.Scheduler.remaining ()) (o - 1)) ~elapsed:1
      ~new_cover:0;
    o
  in
  Alcotest.(check (list int)) "two full rotations" [ 1; 2; 3; 1; 2; 3 ]
    (List.init 6 (fun _ -> step ()));
  Alcotest.(check int) "turns counted" 6 sched.Scheduler.stats.Scheduler.turns;
  Alcotest.(check int) "rotations counted" 2 sched.Scheduler.stats.Scheduler.rotations

let test_round_robin_budget_grows_per_rotation () =
  let qs = [ queue 1; queue 2 ] in
  let sched = make "round-robin" qs in
  let budget () =
    match sched.Scheduler.select () with
    | Some t ->
      sched.Scheduler.credit t.Scheduler.queue ~elapsed:1 ~new_cover:0;
      t.Scheduler.budget
    | None -> Alcotest.fail "expected a turn"
  in
  (* Algorithm 3: budget = rotation * time_period *)
  Alcotest.(check (list int)) "budgets over three rotations"
    [ tp; tp; 2 * tp; 2 * tp; 3 * tp; 3 * tp ]
    (List.init 6 (fun _ -> budget ()))

let test_round_robin_evict_keeps_cursor () =
  let sched = make "round-robin" [ queue 1; queue 2; queue 3 ] in
  (* evict the selected head: the next queue shifts into the slot *)
  let o = select_ordinal sched in
  Alcotest.(check int) "head first" 1 o;
  (match sched.Scheduler.select () with
   | Some t -> sched.Scheduler.evict t.Scheduler.queue ~failed:false
   | None -> Alcotest.fail "expected a turn");
  Alcotest.(check int) "cursor stays on the shifted queue" 2 (select_ordinal sched);
  Alcotest.(check int) "evictions counted" 1 sched.Scheduler.stats.Scheduler.evictions;
  Alcotest.(check int) "clean evictions are not failovers" 0
    sched.Scheduler.stats.Scheduler.failovers;
  Alcotest.(check bool) "not drained" false (sched.Scheduler.drained ());
  (* retire the rest *)
  List.iter
    (fun q -> sched.Scheduler.evict q ~failed:true)
    (sched.Scheduler.remaining ());
  Alcotest.(check bool) "drained" true (sched.Scheduler.drained ());
  Alcotest.(check bool) "select on drained" true (sched.Scheduler.select () = None);
  Alcotest.(check int) "failed evictions are failovers" 2
    sched.Scheduler.stats.Scheduler.failovers

let test_sequential_drains_head_first () =
  let sched = make "sequential" [ queue 1; queue 2 ] in
  Alcotest.(check int) "head" 1 (select_ordinal sched);
  Alcotest.(check int) "head again until evicted" 1 (select_ordinal sched);
  (match sched.Scheduler.select () with
   | Some t -> sched.Scheduler.evict t.Scheduler.queue ~failed:false
   | None -> Alcotest.fail "expected a turn");
  Alcotest.(check int) "next queue after eviction" 2 (select_ordinal sched)

let test_coverage_greedy_prefers_productive () =
  let q1 = queue 1 and q2 = queue 2 in
  let sched = make "coverage-greedy" [ q1; q2 ] in
  (* equal ratios: the tie breaks to the lower ordinal *)
  Alcotest.(check int) "tie to lower ordinal" 1 (select_ordinal sched);
  (* q2 found coverage cheaply, q1 dwelt for nothing: q2 wins *)
  q1.Phase_queue.dwell <- 3 * tp;
  q2.Phase_queue.dwell <- tp;
  q2.Phase_queue.new_cover <- 5;
  Alcotest.(check int) "productive queue wins" 2 (select_ordinal sched);
  (* its budget scales with its own turn count *)
  q2.Phase_queue.turns <- 3;
  (match sched.Scheduler.select () with
   | Some t -> Alcotest.(check int) "budget from turn count" (4 * tp) t.Scheduler.budget
   | None -> Alcotest.fail "expected a turn");
  (* starving the winner's ratio hands the turn back *)
  q2.Phase_queue.new_cover <- 0;
  q2.Phase_queue.dwell <- 10 * tp;
  q1.Phase_queue.new_cover <- 2;
  Alcotest.(check int) "lead changes with the ratio" 1 (select_ordinal sched)

let test_trap_first_orders_traps_ahead () =
  let qs () = [ queue 1; queue ~trap:true 2; queue 3; queue ~trap:true 4 ] in
  let drive sched n =
    List.init n (fun _ ->
        match sched.Scheduler.select () with
        | Some t ->
          sched.Scheduler.credit t.Scheduler.queue ~elapsed:1 ~new_cover:0;
          (t.Scheduler.queue.Phase_queue.ordinal, t.Scheduler.budget)
        | None -> Alcotest.fail "expected a turn")
  in
  let sched = make "trap-first" (qs ()) in
  (* traps 2 and 4 lead every rotation; budgets grow per rotation *)
  Alcotest.(check (list (pair int int)))
    "traps first, appearance order within class, growing budgets"
    [
      (2, tp); (4, tp); (1, tp); (3, tp);
      (2, 2 * tp); (4, 2 * tp); (1, 2 * tp); (3, 2 * tp);
    ]
    (drive sched 8);
  Alcotest.(check int) "rotations counted" 2 sched.Scheduler.stats.Scheduler.rotations;
  (* determinism: an identical call sequence yields identical selections *)
  let a = drive (make "trap-first" (qs ())) 10 in
  let b = drive (make "trap-first" (qs ())) 10 in
  Alcotest.(check (list (pair int int))) "deterministic selection sequence" a b

let test_trap_first_eviction_keeps_rotation () =
  let sched = make "trap-first" [ queue 1; queue ~trap:true 2; queue 3 ] in
  Alcotest.(check int) "trap leads" 2 (select_ordinal sched);
  (* evicting the trap mid-rotation hands the turn to the non-traps *)
  (match sched.Scheduler.select () with
   | Some t -> sched.Scheduler.evict t.Scheduler.queue ~failed:false
   | None -> Alcotest.fail "expected a turn");
  let step () =
    let o = select_ordinal sched in
    sched.Scheduler.credit
      (List.find
         (fun (q : Phase_queue.t) -> q.Phase_queue.ordinal = o)
         (sched.Scheduler.remaining ()))
      ~elapsed:1 ~new_cover:0;
    o
  in
  Alcotest.(check (list int)) "remaining rotation, then plain round-robin"
    [ 1; 3; 1; 3 ]
    (List.init 4 (fun _ -> step ()));
  Alcotest.(check bool) "not drained" false (sched.Scheduler.drained ())

let test_by_name_covers_names () =
  List.iter
    (fun name ->
      match Scheduler.by_name name with
      | Some f ->
        let sched = f ~time_period:tp [ queue 1 ] in
        Alcotest.(check string) (name ^ " self-names") name sched.Scheduler.name
      | None -> Alcotest.fail ("by_name missed " ^ name))
    Scheduler.names;
  Alcotest.(check bool) "unknown name rejected" true (Scheduler.by_name "nope" = None)

let suite =
  [
    Alcotest.test_case "phase queue basics" `Quick test_queue_basics;
    Alcotest.test_case "round-robin cycles in order" `Quick
      test_round_robin_cycles_in_order;
    Alcotest.test_case "round-robin budget grows per rotation" `Quick
      test_round_robin_budget_grows_per_rotation;
    Alcotest.test_case "round-robin evict keeps cursor" `Quick
      test_round_robin_evict_keeps_cursor;
    Alcotest.test_case "sequential drains head first" `Quick
      test_sequential_drains_head_first;
    Alcotest.test_case "coverage-greedy prefers productive" `Quick
      test_coverage_greedy_prefers_productive;
    Alcotest.test_case "trap-first orders traps ahead" `Quick
      test_trap_first_orders_traps_ahead;
    Alcotest.test_case "trap-first eviction keeps rotation" `Quick
      test_trap_first_eviction_keeps_rotation;
    Alcotest.test_case "by_name covers names" `Quick test_by_name_covers_names;
  ]
