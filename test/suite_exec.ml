open Pbse_exec
module Expr = Pbse_smt.Expr
module Vclock = Pbse_util.Vclock
module Rng = Pbse_util.Rng

let compile = Pbse_lang.Frontend.compile

(* --- concrete interpreter faults ------------------------------------------- *)

let run_concrete ?(input = "") src =
  Concrete.run (compile src) ~input:(Bytes.of_string input)

let expect_fault name src kind =
  match (run_concrete src).Concrete.outcome with
  | Concrete.Fault { kind = k; _ } -> Alcotest.(check string) name kind k
  | _ -> Alcotest.fail (name ^ ": expected fault " ^ kind)

let test_concrete_oob_read () =
  expect_fault "oob read" "fn main() { var b = alloc(4); return b[9]; }" "oob-read"

let test_concrete_oob_write () =
  expect_fault "oob write" "fn main() { var b = alloc(4); b[4] = 1; return 0; }" "oob-write"

let test_concrete_underflow_is_fault () =
  (* negative offset borrows into the object id: caught as a memory fault *)
  match (run_concrete "fn main() { var b = alloc(4); return b[0 - 1]; }").Concrete.outcome with
  | Concrete.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault on buffer underflow"

let test_concrete_null_deref () =
  expect_fault "null" "fn main() { var p = 0; return p[3]; }" "null-deref"

let test_concrete_use_after_free () =
  expect_fault "uaf" "fn main() { var b = alloc(4); free(b); return b[0]; }" "use-after-free"

let test_concrete_bad_free () =
  expect_fault "bad free" "fn main() { var b = alloc(4); free(b + 1); return 0; }" "bad-free"

let test_concrete_double_free () =
  expect_fault "double free" "fn main() { var b = alloc(4); free(b); free(b); return 0; }"
    "bad-free"

let test_concrete_div_by_zero () =
  expect_fault "div" "fn main() { var z = 0; return 5 / z; }" "div-by-zero"

let test_concrete_fuel () =
  let prog = compile "fn main() { while (1) { } return 0; }" in
  match (Concrete.run prog ~input:Bytes.empty ~fuel:1000).Concrete.outcome with
  | Concrete.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_concrete_huge_alloc_is_null () =
  expect_fault "huge alloc gives null" "fn main() { var b = alloc(99999999); return b[0]; }"
    "null-deref"

let test_concrete_on_block_hook () =
  let prog = compile "fn main() { var i = 0; while (i < 3) { i = i + 1; } return 0; }" in
  let entries = ref 0 in
  let result = Concrete.run prog ~input:Bytes.empty ~on_block:(fun _ _ -> incr entries) in
  Alcotest.(check int) "hook counts all entries" result.Concrete.blocks_entered !entries;
  Alcotest.(check bool) "several blocks" true (!entries > 5)

(* --- symbolic executor ------------------------------------------------------ *)

let make_executor ?(input = Bytes.make 2 '\000') ?max_live src =
  let prog = compile src in
  let clock = Vclock.create () in
  let exec = Executor.create ?max_live ~clock prog ~input in
  (exec, clock)

let explore_all ?input ?max_live ?(deadline = 2_000_000) src searcher_name =
  let exec, _clock = make_executor ?input ?max_live src in
  let rng = Rng.create 7 in
  let searcher =
    match Searcher.by_name searcher_name with
    | Some make -> make rng (Executor.cfg exec) (Executor.coverage exec)
    | None -> Alcotest.fail ("unknown searcher " ^ searcher_name)
  in
  searcher.Searcher.add (Executor.initial_state exec);
  Executor.explore exec searcher ~deadline;
  exec

(* A program whose exit code depends on two input bytes: 4 behaviours. *)
let branchy_src =
  "fn main() {\n\
  \  var a = in(0);\n\
  \  var b = in(1);\n\
  \  if (a < 10) { if (b == 3) { return 1; } return 2; }\n\
  \  if (b > 200) { return 3; }\n\
  \  return 4;\n\
   }"

let exit_codes exec =
  ignore exec;
  []

let collect_exits src searcher_name =
  let prog = compile src in
  let clock = Vclock.create () in
  let exec = Executor.create ~clock prog ~input:(Bytes.make 2 '\000') in
  let rng = Rng.create 7 in
  let searcher =
    match Searcher.by_name searcher_name with
    | Some make -> make rng (Executor.cfg exec) (Executor.coverage exec)
    | None -> assert false
  in
  let exits = ref [] in
  searcher.Searcher.add (Executor.initial_state exec);
  let rec loop () =
    if Vclock.now clock > 2_000_000 then ()
    else
      match searcher.Searcher.select () with
      | None -> ()
      | Some st -> (
        match Executor.run_slice exec st with
        | Executor.Running -> loop ()
        | Executor.Forked children ->
          List.iter (fun c -> searcher.Searcher.fork ~parent:st c) children;
          loop ()
        | Executor.Finished reason ->
          (match reason with
           | Executor.Exited code -> exits := code :: !exits
           | _ -> ());
          searcher.Searcher.remove st;
          loop ())
  in
  loop ();
  List.sort_uniq Int64.compare !exits

let test_symbolic_finds_all_behaviours () =
  List.iter
    (fun searcher ->
      let exits = collect_exits branchy_src searcher in
      Alcotest.(check (list int64))
        (searcher ^ " finds all four exits")
        [ 1L; 2L; 3L; 4L ] exits)
    [ "dfs"; "bfs"; "random-state"; "random-path"; "covnew"; "md2u"; "default" ]

(* Brute-force ground truth: behaviours reachable symbolically are exactly
   the behaviours reachable by running every 2-byte input concretely. *)
let prop_symbolic_matches_concrete_behaviours =
  QCheck.Test.make ~count:25 ~name:"symbolic exits = concrete exits over all inputs"
    QCheck.(make Gen.(pair (int_range 0 255) (int_range 1 6)))
    (fun (threshold, modulus) ->
      let src =
        Printf.sprintf
          "fn main() {\n\
          \  var a = in(0);\n\
          \  var b = in(1);\n\
          \  if (a == %d) { return 10; }\n\
          \  if ((a %% %d) == 1 && b > a) { return 11; }\n\
          \  if (a > b) { return 12; }\n\
          \  return 13;\n\
           }"
          threshold modulus
      in
      let symbolic = collect_exits src "dfs" in
      let prog = compile src in
      let concrete = Hashtbl.create 4 in
      for a = 0 to 255 do
        for b = 0 to 255 do
          let input = Bytes.create 2 in
          Bytes.set input 0 (Char.chr a);
          Bytes.set input 1 (Char.chr b);
          match (Concrete.run prog ~input).Concrete.outcome with
          | Concrete.Exit code -> Hashtbl.replace concrete code ()
          | _ -> ()
        done
      done;
      let concrete = List.sort Int64.compare (Hashtbl.fold (fun k () l -> k :: l) concrete []) in
      symbolic = concrete)

let test_bug_witness_confirmed () =
  let src =
    "fn main() {\n\
    \  var b = alloc(8);\n\
    \  if (in(0) == 0x42) {\n\
    \    if (in(1) == 0x99) { b[20] = 1; }\n\
    \  }\n\
    \  return 0;\n\
     }"
  in
  let exec = explore_all src "dfs" in
  match Executor.bugs exec with
  | [ bug ] ->
    Alcotest.(check string) "kind" "oob-write" bug.Bug.kind;
    Alcotest.(check bool) "confirmed by replay" true bug.Bug.confirmed;
    Alcotest.(check char) "witness byte 0" '\x42' (Bytes.get bug.Bug.witness 0);
    Alcotest.(check char) "witness byte 1" '\x99' (Bytes.get bug.Bug.witness 1)
  | bugs -> Alcotest.fail (Printf.sprintf "expected exactly one bug, got %d" (List.length bugs))

let test_symbolic_div_bug () =
  let src = "fn main() { var d = in(0); return 100 / d; }" in
  let exec = explore_all src "dfs" in
  match List.filter (fun b -> b.Bug.kind = "div-by-zero") (Executor.bugs exec) with
  | [ bug ] ->
    Alcotest.(check bool) "confirmed" true bug.Bug.confirmed;
    Alcotest.(check char) "witness divisor zero" '\x00' (Bytes.get bug.Bug.witness 0)
  | _ -> Alcotest.fail "expected one div-by-zero bug"

let test_symbolic_oob_via_symbolic_index () =
  (* the access index is symbolic: the OOB oracle must ask the solver *)
  let src =
    "fn main() {\n\
    \  var b = alloc(16);\n\
    \  var i = in(0);\n\
    \  return b[i];\n\
     }"
  in
  let exec = explore_all src "dfs" in
  match List.filter (fun b -> b.Bug.kind = "oob-read") (Executor.bugs exec) with
  | [ bug ] ->
    Alcotest.(check bool) "confirmed" true bug.Bug.confirmed;
    Alcotest.(check bool) "witness index out of bounds" true
      (Char.code (Bytes.get bug.Bug.witness 0) >= 16)
  | _ -> Alcotest.fail "expected one oob-read bug"

let test_no_false_positive_on_guarded_index () =
  let src =
    "fn main() {\n\
    \  var b = alloc(16);\n\
    \  var i = in(0);\n\
    \  if (i <u 16) { return b[i]; }\n\
    \  return 0;\n\
     }"
  in
  let exec = explore_all src "dfs" in
  Alcotest.(check int) "no bugs" 0 (List.length (Executor.bugs exec))

let test_unreachable_bug_not_found () =
  let src =
    "fn main() {\n\
    \  var b = alloc(8);\n\
    \  var a = in(0);\n\
    \  if (a > 10 && a < 5) { b[99] = 1; }\n\
    \  return 0;\n\
     }"
  in
  let exec = explore_all src "dfs" in
  Alcotest.(check int) "no bugs" 0 (List.length (Executor.bugs exec))

let test_deadline_respected () =
  let src = "fn main() { var i = 0; while (i <u in_size() + 1000000) { i = i + 1; } return 0; }" in
  let exec, clock = make_executor src in
  let searcher = Searcher.dfs () in
  searcher.Searcher.add (Executor.initial_state exec);
  Executor.explore exec searcher ~deadline:5_000;
  Alcotest.(check bool) "clock stopped promptly" true (Vclock.now clock < 10_000)

let test_max_live_caps_forks () =
  (* an input-bounded loop forks every iteration *)
  let src =
    "fn main() {\n\
    \  var n = in(0) | (in(1) << 8);\n\
    \  var i = 0;\n\
    \  while (i < n) { i = i + 1; }\n\
    \  return 0;\n\
     }"
  in
  let exec, _ = make_executor ~max_live:4 src in
  let searcher = Searcher.dfs () in
  searcher.Searcher.add (Executor.initial_state exec);
  Executor.explore exec searcher ~deadline:60_000;
  Alcotest.(check bool) "dropped forks counted" true
    ((Executor.stats exec).Executor.dropped_forks > 0);
  Alcotest.(check bool) "live never exceeded the cap" true (searcher.Searcher.size () <= 4)

let test_coverage_grows_and_dedups () =
  let exec = explore_all branchy_src "bfs" in
  let coverage = Executor.coverage exec in
  Alcotest.(check bool) "some blocks covered" true (Coverage.count coverage > 5);
  Alcotest.(check int) "count matches ids" (Coverage.count coverage)
    (List.length (Coverage.covered_ids coverage))

let test_switch_forks_all_arms () =
  (* switch lowered from if-chains is covered elsewhere; build directly *)
  let open Pbse_ir in
  let fb = Builder.create_func ~name:"main" ~nparams:0 in
  let r = Builder.fresh_reg fb in
  Builder.emit fb (Types.Call (Some r, "in_byte", [ Types.Const 0L ]));
  Builder.switch fb (Types.Reg r) [ (1L, "one"); (2L, "two") ] "other";
  Builder.start_block fb "one";
  Builder.ret fb (Some (Types.Const 101L));
  Builder.start_block fb "two";
  Builder.ret fb (Some (Types.Const 102L));
  Builder.start_block fb "other";
  Builder.ret fb (Some (Types.Const 103L));
  let prog = Builder.program ~main:"main" [ Builder.finish_func fb ] in
  let clock = Vclock.create () in
  let exec = Executor.create ~clock prog ~input:(Bytes.make 1 '\000') in
  let searcher = Searcher.dfs () in
  searcher.Searcher.add (Executor.initial_state exec);
  let exits = ref [] in
  let rec loop () =
    match searcher.Searcher.select () with
    | None -> ()
    | Some st -> (
      match Executor.run_slice exec st with
      | Executor.Running -> loop ()
      | Executor.Forked children ->
        List.iter (fun c -> searcher.Searcher.fork ~parent:st c) children;
        loop ()
      | Executor.Finished (Executor.Exited code) ->
        exits := code :: !exits;
        searcher.Searcher.remove st;
        loop ()
      | Executor.Finished _ ->
        searcher.Searcher.remove st;
        loop ())
  in
  loop ();
  Alcotest.(check (list int64)) "all three arms" [ 101L; 102L; 103L ]
    (List.sort Int64.compare !exits)

let test_stats_populated () =
  let exec = explore_all branchy_src "dfs" in
  let stats = Executor.stats exec in
  Alcotest.(check bool) "instructions" true (stats.Executor.instructions > 10);
  Alcotest.(check bool) "forks" true (stats.Executor.forks >= 3);
  Alcotest.(check bool) "exits" true (stats.Executor.term_exit >= 4)

let _ = exit_codes

(* --- copy-on-write state forks ---------------------------------------------- *)

let cow_state () =
  let st =
    State.create ~id:0 ~nregs:4 ~mem:Mem.empty ~model:Pbse_smt.Model.empty ~fidx:0
      ~born:0
  in
  ignore (State.write_reg st 0 (Expr.const 1L));
  st

let reg st i = Expr.is_const (State.current_regs st).(i)

let test_cow_fork_isolation () =
  let parent = cow_state () in
  let child = State.fork parent ~id:1 ~born:0 ~fork_gid:0 in
  Alcotest.(check bool) "regs shared right after fork" true
    (State.current_regs parent == State.current_regs child);
  (* parent's first post-fork write copies; the child must not see it *)
  Alcotest.(check bool) "parent write copies" true
    (State.write_reg parent 0 (Expr.const 7L));
  Alcotest.(check (option int64)) "child unchanged" (Some 1L) (reg child 0);
  Alcotest.(check (option int64)) "parent updated" (Some 7L) (reg parent 0);
  (* the child's array is still marked shared, so its first write copies
     too; after that, writes are in place *)
  Alcotest.(check bool) "child write copies" true
    (State.write_reg child 1 (Expr.const 9L));
  Alcotest.(check bool) "second child write is in place" false
    (State.write_reg child 2 (Expr.const 3L));
  Alcotest.(check (option int64)) "parent reg 1 untouched" (Some 0L) (reg parent 1)

let test_cow_sibling_isolation () =
  let parent = cow_state () in
  let a = State.fork parent ~id:1 ~born:0 ~fork_gid:0 in
  let b = State.fork parent ~id:2 ~born:0 ~fork_gid:0 in
  ignore (State.write_reg a 0 (Expr.const 10L));
  ignore (State.write_reg b 0 (Expr.const 20L));
  Alcotest.(check (option int64)) "sibling a" (Some 10L) (reg a 0);
  Alcotest.(check (option int64)) "sibling b" (Some 20L) (reg b 0);
  Alcotest.(check (option int64)) "parent untouched" (Some 1L) (reg parent 0)

let suite =
  [
    Alcotest.test_case "concrete oob read" `Quick test_concrete_oob_read;
    Alcotest.test_case "concrete oob write" `Quick test_concrete_oob_write;
    Alcotest.test_case "concrete underflow" `Quick test_concrete_underflow_is_fault;
    Alcotest.test_case "concrete null deref" `Quick test_concrete_null_deref;
    Alcotest.test_case "concrete use after free" `Quick test_concrete_use_after_free;
    Alcotest.test_case "concrete bad free" `Quick test_concrete_bad_free;
    Alcotest.test_case "concrete double free" `Quick test_concrete_double_free;
    Alcotest.test_case "concrete div by zero" `Quick test_concrete_div_by_zero;
    Alcotest.test_case "concrete fuel" `Quick test_concrete_fuel;
    Alcotest.test_case "huge alloc null" `Quick test_concrete_huge_alloc_is_null;
    Alcotest.test_case "concrete on_block hook" `Quick test_concrete_on_block_hook;
    Alcotest.test_case "all searchers find all behaviours" `Quick
      test_symbolic_finds_all_behaviours;
    Alcotest.test_case "bug witness confirmed" `Quick test_bug_witness_confirmed;
    Alcotest.test_case "symbolic div bug" `Quick test_symbolic_div_bug;
    Alcotest.test_case "symbolic index oob" `Quick test_symbolic_oob_via_symbolic_index;
    Alcotest.test_case "guarded index has no bug" `Quick test_no_false_positive_on_guarded_index;
    Alcotest.test_case "unreachable bug not reported" `Quick test_unreachable_bug_not_found;
    Alcotest.test_case "deadline respected" `Quick test_deadline_respected;
    Alcotest.test_case "max live caps forks" `Quick test_max_live_caps_forks;
    Alcotest.test_case "coverage grows" `Quick test_coverage_grows_and_dedups;
    Alcotest.test_case "switch forks all arms" `Quick test_switch_forks_all_arms;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
    Alcotest.test_case "cow fork isolation" `Quick test_cow_fork_isolation;
    Alcotest.test_case "cow sibling isolation" `Quick test_cow_sibling_isolation;
    QCheck_alcotest.to_alcotest prop_symbolic_matches_concrete_behaviours;
  ]
