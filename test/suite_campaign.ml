(* Campaign layer tests: seed-level scheduling policies and the generic
   campaign loop (lib/campaign) driven directly, plus Driver.run_pool
   edge cases and aggregate-report determinism on the mini target. *)

module Seed_slot = Pbse_campaign.Seed_slot
module Pool_scheduler = Pbse_campaign.Pool_scheduler
module Campaign = Pbse_campaign.Campaign
module Driver = Pbse.Driver
module Executor = Pbse_exec.Executor
module Coverage = Pbse_exec.Coverage
module Report = Pbse_telemetry.Report

let slot ?(size = 4) ordinal = Seed_slot.create ~ordinal (Bytes.make size 'a')

let make name slots =
  match Pool_scheduler.by_name name with
  | Some f -> f ~time_period:1000 slots
  | None -> Alcotest.fail ("unknown pool policy " ^ name)

let select_ordinal ?(remaining = 10_000) sched =
  match sched.Pool_scheduler.select ~remaining with
  | Some t -> t.Pool_scheduler.slot.Seed_slot.ordinal
  | None -> Alcotest.fail "expected a turn"

(* --- policies -------------------------------------------------------------- *)

let test_smallest_first_equal_share () =
  let sched = make "smallest-first" [ slot 1; slot 2; slot 3 ] in
  (* head slot, one third of the remaining budget *)
  (match sched.Pool_scheduler.select ~remaining:9000 with
   | Some t ->
     Alcotest.(check int) "head slot" 1 t.Pool_scheduler.slot.Seed_slot.ordinal;
     Alcotest.(check int) "equal share" 3000 t.Pool_scheduler.budget;
     (* one turn per seed: crediting retires the slot *)
     sched.Pool_scheduler.credit t.Pool_scheduler.slot ~spent:1000 ~new_blocks:0
   | None -> Alcotest.fail "expected a turn");
  (* unused budget flows through the shrinking divisor *)
  (match sched.Pool_scheduler.select ~remaining:8000 with
   | Some t ->
     Alcotest.(check int) "next slot" 2 t.Pool_scheduler.slot.Seed_slot.ordinal;
     Alcotest.(check int) "half of what is left" 4000 t.Pool_scheduler.budget;
     sched.Pool_scheduler.retire t.Pool_scheduler.slot
   | None -> Alcotest.fail "expected a turn");
  Alcotest.(check int) "last slot" 3 (select_ordinal sched);
  Alcotest.(check int) "retirements counted" 2
    sched.Pool_scheduler.stats.Pool_scheduler.retirements

let test_round_robin_carries_unused_budget () =
  let s1 = slot 1 and s2 = slot 2 in
  let sched = make "round-robin" [ s1; s2 ] in
  (match sched.Pool_scheduler.select ~remaining:10_000 with
   | Some t ->
     Alcotest.(check int) "quantum turn" 1000 t.Pool_scheduler.budget;
     (* the campaign loop owns the counters; emulate a turn that used
        only 400 of a 1000 grant *)
     s1.Seed_slot.granted <- 1000;
     s1.Seed_slot.dwell <- 400;
     sched.Pool_scheduler.credit s1 ~spent:400 ~new_blocks:1
   | None -> Alcotest.fail "expected a turn");
  Alcotest.(check int) "rotation continues" 2 (select_ordinal sched);
  s2.Seed_slot.granted <- 1000;
  s2.Seed_slot.dwell <- 1000;
  sched.Pool_scheduler.credit s2 ~spent:1000 ~new_blocks:0;
  (* s1's unused 600 rolls onto its next turn; s2 overshot and gets none *)
  match sched.Pool_scheduler.select ~remaining:10_000 with
  | Some t ->
    Alcotest.(check int) "back to the head" 1 t.Pool_scheduler.slot.Seed_slot.ordinal;
    Alcotest.(check int) "carry added" 1600 t.Pool_scheduler.budget
  | None -> Alcotest.fail "expected a turn"

let test_coverage_greedy_follows_ratio () =
  let s1 = slot 1 and s2 = slot 2 in
  let sched = make "coverage-greedy" [ s1; s2 ] in
  (* equal ratios: tie to the lower ordinal (the smaller seed) *)
  Alcotest.(check int) "tie to lower ordinal" 1 (select_ordinal sched);
  (* s2 earns blocks cheaply, s1 dwells for nothing: s2 wins the next turn *)
  s1.Seed_slot.dwell <- 5000;
  s2.Seed_slot.dwell <- 1000;
  s2.Seed_slot.new_blocks <- 10;
  Alcotest.(check int) "productive seed wins" 2 (select_ordinal sched);
  (* budget scales with the slot's own turn count *)
  s2.Seed_slot.turns <- 2;
  (match sched.Pool_scheduler.select ~remaining:10_000 with
   | Some t -> Alcotest.(check int) "earned budget" 3000 t.Pool_scheduler.budget
   | None -> Alcotest.fail "expected a turn");
  (* a dried-up seed loses the lead *)
  s2.Seed_slot.new_blocks <- 0;
  s2.Seed_slot.dwell <- 20_000;
  s1.Seed_slot.new_blocks <- 3;
  Alcotest.(check int) "lead changes with the ratio" 1 (select_ordinal sched)

let test_pool_by_name_covers_names () =
  List.iter
    (fun name ->
      match Pool_scheduler.by_name name with
      | Some f ->
        let sched = f ~time_period:1000 [ slot 1 ] in
        Alcotest.(check string) (name ^ " self-names") name sched.Pool_scheduler.name
      | None -> Alcotest.fail ("by_name missed " ^ name))
    Pool_scheduler.names;
  Alcotest.(check bool) "default is listed" true
    (List.mem Pool_scheduler.default Pool_scheduler.names);
  Alcotest.(check bool) "unknown name rejected" true
    (Pool_scheduler.by_name "nope" = None)

(* --- campaign loop --------------------------------------------------------- *)

let test_campaign_loop_owns_counters () =
  let s1 = slot 1 and s2 = slot 2 in
  let sched = make "round-robin" [ s1; s2 ] in
  let spent =
    Campaign.run ~sched ~deadline:3000 (fun _slot ~budget ->
        { Campaign.spent = budget; new_blocks = 2; finished = false })
  in
  Alcotest.(check int) "deadline consumed exactly" 3000 spent;
  Alcotest.(check int) "turns split 2/1" 2 s1.Seed_slot.turns;
  Alcotest.(check int) "second seed got one turn" 1 s2.Seed_slot.turns;
  Alcotest.(check int) "dwell tracked" 2000 s1.Seed_slot.dwell;
  Alcotest.(check int) "blocks credited" 4 s1.Seed_slot.new_blocks;
  Alcotest.(check bool) "nobody retired" false
    (s1.Seed_slot.retired || s2.Seed_slot.retired)

let test_campaign_retires_finished_and_stuck () =
  let s1 = slot 1 and s2 = slot 2 in
  let sched = make "round-robin" [ s1; s2 ] in
  let spent =
    Campaign.run ~sched ~deadline:100_000 (fun slot ~budget:_ ->
        if slot.Seed_slot.ordinal = 1 then
          (* drains on its first turn *)
          { Campaign.spent = 500; new_blocks = 1; finished = true }
        else (* makes no progress: must be retired, not re-granted *)
          { Campaign.spent = 0; new_blocks = 0; finished = false })
  in
  Alcotest.(check int) "only the productive turn spent" 500 spent;
  Alcotest.(check bool) "both retired" true (s1.Seed_slot.retired && s2.Seed_slot.retired);
  Alcotest.(check int) "stuck seed got exactly one turn" 1 s2.Seed_slot.turns;
  Alcotest.(check bool) "rotation drained" true (sched.Pool_scheduler.drained ())

let test_campaign_zero_deadline () =
  let s1 = slot 1 in
  let sched = make "smallest-first" [ s1 ] in
  let spent =
    Campaign.run ~sched ~deadline:0 (fun _ ~budget:_ ->
        Alcotest.fail "no turn should be granted")
  in
  Alcotest.(check int) "nothing spent" 0 spent;
  Alcotest.(check int) "no turns" 0 s1.Seed_slot.turns

(* --- Driver.run_pool edge cases -------------------------------------------- *)

let mini_program = Suite_core.mini_program
let mini_seed = Suite_core.mini_seed

let pool_seeds () =
  [ mini_seed (); Bytes.of_string "S1\002\171ab"; Bytes.of_string "S1\000\000" ]

let test_run_pool_empty_seed_list () =
  let pool = Driver.run_pool (mini_program ()) ~seeds:[] ~deadline:50_000 in
  Alcotest.(check int) "no runs" 0 (List.length pool.Driver.runs);
  Alcotest.(check int) "no coverage" 0 pool.Driver.merged_coverage;
  Alcotest.(check int) "no seed rows" 0 (List.length pool.Driver.seed_rows);
  Alcotest.(check int) "nothing spent" 0 pool.Driver.pool_spent;
  (* the aggregate report is still a valid document *)
  let json = Report.to_json (Driver.pool_run_report pool) in
  match Report.of_json json with
  | Ok r -> Alcotest.(check int) "pool.seeds is zero" 0 (Report.metric r "pool.seeds")
  | Error e -> Alcotest.fail e

let test_run_pool_single_seed () =
  let pool =
    Driver.run_pool (mini_program ()) ~seeds:[ mini_seed () ] ~deadline:100_000
  in
  Alcotest.(check int) "one run" 1 (List.length pool.Driver.runs);
  Alcotest.(check int) "one row" 1 (List.length pool.Driver.seed_rows);
  let row = List.hd pool.Driver.seed_rows in
  Alcotest.(check bool) "the seed got budget" true (row.Report.granted > 0);
  Alcotest.(check bool) "coverage merged" true (pool.Driver.merged_coverage > 0);
  (* a single-seed pool matches a solo run's coverage at the same deadline *)
  let solo = Driver.run (mini_program ()) ~seed:(mini_seed ()) ~deadline:100_000 in
  Alcotest.(check int) "same blocks as a solo run"
    (Coverage.count (Executor.coverage solo.Driver.executor))
    pool.Driver.merged_coverage

let test_run_pool_tiny_deadline () =
  (* a deadline smaller than any useful turn: the campaign must
     terminate cleanly, never loop, and report zero-ish rows *)
  let pool = Driver.run_pool (mini_program ()) ~seeds:(pool_seeds ()) ~deadline:10 in
  Alcotest.(check int) "rows for every seed" 3 (List.length pool.Driver.seed_rows);
  Alcotest.(check bool) "spent bounded by grants" true
    (List.for_all
       (fun (s : Report.seed_row) -> s.Report.turns <= 1)
       pool.Driver.seed_rows)

let test_run_pool_unknown_scheduler () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Driver.run_pool ~scheduler:"nope" (mini_program ()) ~seeds:(pool_seeds ())
            ~deadline:1000);
       false
     with Invalid_argument _ -> true)

let test_run_pool_schedulers_merge_alike () =
  (* every policy must run the whole pool on a generous deadline, find
     the planted bug (surfaced concolically by the marker seed), and
     report a merged set at least as large as any single run's *)
  List.iter
    (fun scheduler ->
      let pool =
        Driver.run_pool ~scheduler (mini_program ()) ~seeds:(pool_seeds ())
          ~deadline:300_000
      in
      Alcotest.(check string) "policy recorded" scheduler pool.Driver.pool_scheduler;
      Alcotest.(check int) (scheduler ^ ": all seeds ran") 3
        (List.length pool.Driver.runs);
      Alcotest.(check int) (scheduler ^ ": bug found once") 1
        (List.length pool.Driver.merged_bugs);
      Alcotest.(check bool) (scheduler ^ ": merged at least per-run max") true
        (List.for_all
           (fun (_, r) ->
             pool.Driver.merged_coverage
             >= Coverage.count (Executor.coverage r.Driver.executor))
           pool.Driver.runs))
    Pool_scheduler.names

let test_pool_reports_byte_identical () =
  (* identical seeded campaigns must serialise byte-identically, for
     every policy — the pool counterpart of the single-run determinism
     test *)
  let json scheduler =
    Pbse_telemetry.Telemetry.set_enabled true;
    Fun.protect
      ~finally:(fun () -> Pbse_telemetry.Telemetry.set_enabled false)
      (fun () ->
        let pool =
          Driver.run_pool ~scheduler (mini_program ()) ~seeds:(pool_seeds ())
            ~deadline:150_000
        in
        Report.to_json
          (Driver.pool_run_report ~meta:[ ("target", "mini") ] pool))
  in
  List.iter
    (fun scheduler ->
      let a = json scheduler in
      let b = json scheduler in
      Alcotest.(check bool) (scheduler ^ ": nonempty") true (String.length a > 0);
      Alcotest.(check string)
        (Printf.sprintf "byte-identical pool reports (%s)" scheduler)
        a b)
    Pool_scheduler.names

let test_pool_report_document () =
  let pool =
    Driver.run_pool ~scheduler:"coverage-greedy" (mini_program ())
      ~seeds:(pool_seeds ()) ~deadline:150_000
  in
  let report = Driver.pool_run_report ~meta:[ ("target", "mini") ] pool in
  let json = Report.to_json report in
  match Report.of_json json with
  | Error e -> Alcotest.fail ("of_json: " ^ e)
  | Ok r ->
    Alcotest.(check string) "roundtrip byte-identical" json (Report.to_json r);
    Alcotest.(check string) "scheduler in meta" "coverage-greedy"
      (match List.assoc_opt "pool_scheduler" r.Report.meta with
       | Some v -> v
       | None -> "(missing)");
    Alcotest.(check int) "pool.seeds" 3 (Report.metric r "pool.seeds");
    Alcotest.(check int) "merged coverage is the metric" pool.Driver.merged_coverage
      (Report.metric r "coverage.blocks");
    Alcotest.(check int) "dedup bugs are the metric"
      (List.length pool.Driver.merged_bugs)
      (Report.metric r "bugs.total");
    Alcotest.(check int) "per-seed rows survive the roundtrip" 3
      (List.length r.Report.seeds);
    (* per-seed new_blocks rows partition the merged set *)
    Alcotest.(check int) "rows sum to merged coverage" pool.Driver.merged_coverage
      (List.fold_left
         (fun acc (s : Report.seed_row) -> acc + s.Report.new_blocks)
         0 r.Report.seeds);
    (* diffing a pool report against itself works and mentions seeds *)
    let d = Report.diff r r in
    Alcotest.(check bool) "self-diff mentions seeds" true
      (Suite_telemetry.contains ~needle:"seeds: 3 -> 3" d)

let test_select_seed_tie_breaks_smallest () =
  (* equal coverage everywhere: the smallest seed wins the tie *)
  let s4 = Bytes.make 4 'a' and s6 = Bytes.make 6 'b' and s8 = Bytes.make 8 'c' in
  (match Driver.select_seed [ s8; s4; s6 ] ~coverage_of:(fun _ -> 7) with
   | Some chosen -> Alcotest.(check bool) "smallest wins ties" true (chosen == s4)
   | None -> Alcotest.fail "expected a seed");
  (* a larger seed must strictly beat the smaller one to take the pick *)
  match Driver.select_seed [ s4; s6 ] ~coverage_of:(fun s -> Bytes.length s) with
  | Some chosen -> Alcotest.(check bool) "strictly better wins" true (chosen == s6)
  | None -> Alcotest.fail "expected a seed"

let suite =
  [
    Alcotest.test_case "smallest-first equal share" `Quick test_smallest_first_equal_share;
    Alcotest.test_case "round-robin carries unused budget" `Quick
      test_round_robin_carries_unused_budget;
    Alcotest.test_case "coverage-greedy follows ratio" `Quick
      test_coverage_greedy_follows_ratio;
    Alcotest.test_case "pool by_name covers names" `Quick test_pool_by_name_covers_names;
    Alcotest.test_case "campaign loop owns counters" `Quick
      test_campaign_loop_owns_counters;
    Alcotest.test_case "campaign retires finished and stuck" `Quick
      test_campaign_retires_finished_and_stuck;
    Alcotest.test_case "campaign zero deadline" `Quick test_campaign_zero_deadline;
    Alcotest.test_case "run_pool empty seed list" `Quick test_run_pool_empty_seed_list;
    Alcotest.test_case "run_pool single seed" `Quick test_run_pool_single_seed;
    Alcotest.test_case "run_pool tiny deadline" `Quick test_run_pool_tiny_deadline;
    Alcotest.test_case "run_pool unknown scheduler" `Quick test_run_pool_unknown_scheduler;
    Alcotest.test_case "run_pool schedulers merge alike" `Quick
      test_run_pool_schedulers_merge_alike;
    Alcotest.test_case "pool reports byte-identical" `Quick
      test_pool_reports_byte_identical;
    Alcotest.test_case "pool report document" `Quick test_pool_report_document;
    Alcotest.test_case "select_seed tie-breaks smallest" `Quick
      test_select_seed_tie_breaks_smallest;
  ]
