let () =
  Alcotest.run "pbse"
    [
      ("util", Suite_util.suite);
      ("ir", Suite_ir.suite);
      ("smt", Suite_smt.suite);
      ("lang", Suite_lang.suite);
      ("mem", Suite_mem.suite);
      ("searcher", Suite_searcher.suite);
      ("exec", Suite_exec.suite);
      ("concolic", Suite_concolic.suite);
      ("pathcond", Suite_pathcond.suite);
      ("phase", Suite_phase.suite);
      ("sched", Suite_sched.suite);
      ("telemetry", Suite_telemetry.suite);
      ("core", Suite_core.suite);
      ("session", Suite_session.suite);
      ("serve", Suite_serve.suite);
      ("campaign", Suite_campaign.suite);
      ("parallel", Suite_parallel.suite);
      ("robust", Suite_robust.suite);
      ("targets", Suite_targets.suite);
      ("snapshot", Suite_snapshot.suite);
    ]
