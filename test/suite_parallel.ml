(* Parallelism tests: the domain-pool turn executor, the byte-identical
   [--jobs N] contract of Driver.run_pool (including under adversarial
   fault injection), the solver's prefix-context LRU bound, per-phase
   report histograms, and expression-arena isolation across domains. *)

module Domain_pool = Pbse_campaign.Domain_pool
module Pool_scheduler = Pbse_campaign.Pool_scheduler
module Driver = Pbse.Driver
module Runtime = Pbse.Runtime
module Report = Pbse_telemetry.Report
module Telemetry = Pbse_telemetry.Telemetry
module Solver = Pbse_smt.Solver
module Expr = Pbse_smt.Expr
module Inject = Pbse_robust.Inject
module T = Pbse_ir.Types

let mini_program = Suite_core.mini_program
let pool_seeds = Suite_campaign.pool_seeds

(* --- Domain_pool.map -------------------------------------------------------- *)

(* Deterministic busy work (no wall clock): enough iterations that a
   skewed distribution actually interleaves domain completion order. *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 31) + i
  done;
  !acc

let test_map_results_in_input_order () =
  (* adversarial skew: the first tasks are the slowest, so with several
     workers the later tasks finish first — results must still come back
     in input order *)
  let inputs = List.init 16 (fun i -> i) in
  let f i =
    ignore (spin ((16 - i) * 20_000));
    i * i
  in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "input order at jobs=%d" jobs)
        (List.map (fun i -> i * i) inputs)
        (Domain_pool.map ~jobs f inputs))
    [ 1; 2; 4 ]

exception Boom of int

let test_map_reraises_earliest_failure () =
  (* two failing tasks; the one earliest in input order wins, regardless
     of which domain hit its exception first *)
  let f i =
    ignore (spin ((8 - i) * 10_000));
    if i = 2 || i = 5 then raise (Boom i);
    i
  in
  List.iter
    (fun jobs ->
      match Domain_pool.map ~jobs f (List.init 8 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "earliest failure at jobs=%d" jobs)
          2 i)
    [ 1; 4 ]

let test_map_clamps_jobs () =
  (* more workers than tasks, and degenerate widths, all behave *)
  let xs = [ 10; 20; 30 ] in
  let double x = x * 2 in
  Alcotest.(check (list int)) "jobs=64 on 3 tasks" [ 20; 40; 60 ]
    (Domain_pool.map ~jobs:64 double xs);
  Alcotest.(check (list int)) "jobs=0 runs inline" [ 20; 40; 60 ]
    (Domain_pool.map ~jobs:0 double xs);
  Alcotest.(check (list int)) "empty input" []
    (Domain_pool.map ~jobs:4 double [])

(* --- byte-identical pool reports across --jobs ------------------------------ *)

let pool_json ?config ?(scheduler = Pool_scheduler.default) ?(lease = 1) ~jobs () =
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled false)
    (fun () ->
      let pool =
        Driver.run_pool ?config ~scheduler ~jobs ~lease (mini_program ())
          ~seeds:(pool_seeds ()) ~deadline:150_000
      in
      Report.to_json (Driver.pool_run_report ~meta:[ ("target", "mini") ] pool))

let test_pool_reports_identical_across_jobs () =
  (* the determinism contract (docs/parallelism.md): [--jobs N] is
     invisible in the report bytes, for every seed-level policy *)
  List.iter
    (fun scheduler ->
      let baseline = pool_json ~scheduler ~jobs:1 () in
      Alcotest.(check bool) (scheduler ^ ": nonempty") true
        (String.length baseline > 0);
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s: jobs=%d matches jobs=1" scheduler jobs)
            baseline
            (pool_json ~scheduler ~jobs ()))
        [ 2; 4 ])
    Pool_scheduler.names

let test_pool_identical_under_fault_injection () =
  (* adversarial turn durations: injected faults skew how long each
     seed's turns take and which states survive, and the plan must still
     merge byte-identically at every width *)
  let inject =
    match Inject.parse "seed=7,solver=0.3,abort=0.2,mem=0.1,concolic=0.1" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let config =
    Driver.(with_robust (fun r -> { r with inject }) default_config)
  in
  let baseline = pool_json ~config ~jobs:1 () in
  Alcotest.(check string) "faulted campaign: jobs=4 matches jobs=1" baseline
    (pool_json ~config ~jobs:4 ());
  (* and the faults actually fired, or the test proves nothing *)
  match Report.of_json baseline with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let injected =
      List.fold_left
        (fun acc (name, v) ->
          if String.length name > 6 && String.sub name 0 6 = "fault." then
            acc + v
          else acc)
        0 r.Report.metrics
    in
    Alcotest.(check bool) "faults were injected" true (injected > 0)

let test_pool_identical_across_jobs_with_leases () =
  (* multi-turn leases coarsen the work units but must not re-introduce
     width into the report bytes: at any fixed lease, every width merges
     to the same campaign (docs/parallelism.md) *)
  List.iter
    (fun lease ->
      let baseline = pool_json ~lease ~jobs:1 () in
      Alcotest.(check bool)
        (Printf.sprintf "lease=%d: nonempty" lease)
        true
        (String.length baseline > 0);
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "lease=%d: jobs=%d matches jobs=1" lease jobs)
            baseline
            (pool_json ~lease ~jobs ()))
        [ 2; 4 ])
    [ 2; 3 ]

let test_pool_counters_jobs_independent () =
  let metrics json =
    match Report.of_json json with
    | Error e -> Alcotest.fail e
    | Ok r ->
      List.map
        (fun m -> (m, Report.metric r m))
        [
          "pool.rounds";
          "pool.parallel_turns";
          "pool.merge_blocks";
          "pool.merge_bugs";
          "pool.merge_registries";
        ]
  in
  let a = metrics (pool_json ~jobs:1 ()) in
  Alcotest.(check (list (pair string int)))
    "pool.* counters identical at jobs=4" a
    (metrics (pool_json ~jobs:4 ()));
  Alcotest.(check bool) "rounds counted" true
    (List.assoc "pool.rounds" a > 0);
  Alcotest.(check bool) "registries merged per seed" true
    (List.assoc "pool.merge_registries" a >= 3)

(* --- solver prefix-context LRU ---------------------------------------------- *)

(* an [extra] the empty hint model cannot satisfy, so check_assuming
   must actually consult the prefix context *)
let hard_extra k = [ Expr.bin T.Eq (Expr.read 1) (Expr.of_int (1 + (k land 0x7f))) ]

let test_prefix_lru_evicts () =
  (* many distinct path prefixes against the smallest cap (the solver
     clamps [prefix_cap] to at least 16): the LRU must stay bounded and
     count what it dropped *)
  let s = Solver.create ~prefix_cap:16 () in
  for k = 0 to 63 do
    let path = [ Expr.bin T.Eq (Expr.read 0) (Expr.of_int (k land 0xff)) ] in
    ignore (Solver.check_assuming s ~path (hard_extra k))
  done;
  let st = Solver.stats s in
  Alcotest.(check bool) "contexts were built" true (st.Solver.prefix_builds >= 48);
  Alcotest.(check bool) "evictions counted" true (st.Solver.prefix_evictions > 0)

let test_prefix_lru_eviction_metric () =
  let registry = Telemetry.Registry.create ~enabled:true () in
  let s = Solver.create ~prefix_cap:16 ~registry () in
  for k = 0 to 63 do
    let path = [ Expr.bin T.Eq (Expr.read 0) (Expr.of_int k) ] in
    ignore (Solver.check_assuming s ~path (hard_extra k))
  done;
  let evictions = (Solver.stats s).Solver.prefix_evictions in
  Alcotest.(check bool) "stats count evictions" true (evictions > 0);
  Alcotest.(check int) "smt.prefix_evictions mirrors stats" evictions
    (Telemetry.counter_value (Telemetry.Registry.counter registry "smt.prefix_evictions"))

(* --- per-phase report histograms -------------------------------------------- *)

let test_run_report_has_phase_dwell_histograms () =
  let registry = Telemetry.Registry.create ~enabled:true () in
  let runtime = Runtime.create ~registry () in
  let r =
    Driver.run ~runtime (mini_program ()) ~seed:(Suite_core.mini_seed ())
      ~deadline:150_000
  in
  let report = Driver.run_report r in
  let is_dwell h =
    let n = h.Telemetry.hs_name in
    String.length n > 6
    && String.sub n 0 6 = "phase."
    && String.length n > 11
    && String.sub n (String.length n - 10) 10 = "turn_dwell"
  in
  let dwell = List.filter is_dwell report.Report.histograms in
  Alcotest.(check bool) "per-phase turn_dwell histograms present" true
    (List.length dwell > 0);
  Alcotest.(check bool) "dwell histograms carry observations" true
    (List.exists (fun h -> h.Telemetry.hs_count > 0) dwell)

(* --- expression-arena isolation --------------------------------------------- *)

let test_arena_isolation_across_domains () =
  (* run inside a spawned domain so [use_arena] never disturbs the main
     domain's per-domain default arena *)
  let outcome =
    Domain.spawn (fun () ->
        let a1 = Expr.arena () and a2 = Expr.arena () in
        Expr.use_arena a1;
        let e1 = Expr.bin T.Add (Expr.read 0) (Expr.of_int 7) in
        Expr.use_arena a2;
        let e2 = Expr.bin T.Add (Expr.read 0) (Expr.of_int 7) in
        let e2' = Expr.bin T.Add (Expr.read 0) (Expr.of_int 7) in
        (e1.Expr.id, e2.Expr.id, e2 == e2'))
    |> Domain.join
  in
  let id1, id2, interned = outcome in
  Alcotest.(check bool) "distinct arenas assign distinct ids" true (id1 <> id2);
  Alcotest.(check bool) "same arena hash-conses to the same node" true interned

let test_id_blocks_never_collide () =
  (* expression ids come from per-domain id blocks carved off one shared
     cursor: concurrent interning on several domains must never hand out
     the same id twice *)
  let refills0 = Expr.id_block_refills () in
  let per_domain = 3_000 in
  let ids_of () =
    Expr.use_arena (Expr.arena ());
    List.init per_domain (fun i ->
        (Expr.bin T.Add (Expr.read 0) (Expr.of_int i)).Expr.id)
  in
  let per =
    List.init 4 (fun _ -> Domain.spawn ids_of) |> List.map Domain.join
  in
  let seen = Hashtbl.create (8 * per_domain) in
  List.iter
    (List.iter (fun id ->
         if Hashtbl.mem seen id then
           Alcotest.failf "expression id %d allocated on two domains" id;
         Hashtbl.add seen id ()))
    per;
  Alcotest.(check int) "every interned node got its own id" (4 * per_domain)
    (Hashtbl.length seen);
  (* each spawned domain starts with an empty id cell, so at least one
     block refill per domain must have been counted *)
  Alcotest.(check bool) "block refills were counted" true
    (Expr.id_block_refills () - refills0 >= 4)

(* the same query workload, as a tuple of every observable the solver's
   caches could leak id-sensitivity through *)
let solver_workload () =
  Expr.use_arena (Expr.arena ());
  let s = Solver.create ~prefix_cap:16 () in
  for k = 0 to 31 do
    let path = [ Expr.bin T.Eq (Expr.read 0) (Expr.of_int (k land 7)) ] in
    ignore (Solver.check_assuming s ~path (hard_extra k))
  done;
  let st = Solver.stats s in
  [
    st.Solver.queries; st.Solver.sat; st.Solver.unsat; st.Solver.unknown;
    st.Solver.cache_hits; st.Solver.hint_hits; st.Solver.prefix_hits;
    st.Solver.prefix_builds; st.Solver.prefix_model_hits;
    st.Solver.prefix_evictions;
  ]

let test_solver_caches_invariant_across_id_blocks () =
  (* solver cache keys must be renaming-invariant: re-running the same
     structural workload with every expression id shifted into different
     per-domain id blocks has to hit and miss identically *)
  let plain = Domain.spawn solver_workload |> Domain.join in
  let shifted =
    Domain.spawn (fun () ->
        (* burn through several id blocks first, so the workload's
           expressions intern under entirely different ids *)
        Expr.use_arena (Expr.arena ());
        for i = 0 to 20_000 do
          ignore (Expr.of_int i)
        done;
        solver_workload ())
    |> Domain.join
  in
  Alcotest.(check (list int)) "cache behaviour identical under id renaming"
    plain shifted

let suite =
  [
    Alcotest.test_case "map keeps input order under skew" `Quick
      test_map_results_in_input_order;
    Alcotest.test_case "map re-raises the earliest failure" `Quick
      test_map_reraises_earliest_failure;
    Alcotest.test_case "map clamps the job count" `Quick test_map_clamps_jobs;
    Alcotest.test_case "pool reports byte-identical across jobs" `Slow
      test_pool_reports_identical_across_jobs;
    Alcotest.test_case "pool identical under fault injection" `Slow
      test_pool_identical_under_fault_injection;
    Alcotest.test_case "pool reports byte-identical with leases" `Slow
      test_pool_identical_across_jobs_with_leases;
    Alcotest.test_case "pool counters independent of jobs" `Slow
      test_pool_counters_jobs_independent;
    Alcotest.test_case "prefix LRU evicts at the cap" `Quick
      test_prefix_lru_evicts;
    Alcotest.test_case "prefix eviction metric mirrors stats" `Quick
      test_prefix_lru_eviction_metric;
    Alcotest.test_case "run report has per-phase dwell histograms" `Quick
      test_run_report_has_phase_dwell_histograms;
    Alcotest.test_case "expression arenas are isolated" `Quick
      test_arena_isolation_across_domains;
    Alcotest.test_case "per-domain id blocks never collide" `Quick
      test_id_blocks_never_collide;
    Alcotest.test_case "solver caches invariant across id blocks" `Quick
      test_solver_caches_invariant_across_id_blocks;
  ]
