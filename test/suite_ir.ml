open Pbse_ir
open Pbse_ir.Types

(* A tiny two-function program used across the IR tests:
   main: r1 = add r0, 1; if r1 then .then else .else; both ret.
   leaf: ret 7. *)
let sample_program () =
  let fb = Builder.create_func ~name:"main" ~nparams:1 in
  let r1 = Builder.fresh_reg fb in
  Builder.emit fb (Bin (r1, Add, Reg 0, Const 1L));
  Builder.emit fb (Call (None, "leaf", []));
  Builder.br fb (Reg r1) "then" "else";
  Builder.start_block fb "then";
  Builder.ret fb (Some (Reg r1));
  Builder.start_block fb "else";
  Builder.ret fb (Some (Const 0L));
  let main = Builder.finish_func fb in
  let fb2 = Builder.create_func ~name:"leaf" ~nparams:0 in
  Builder.ret fb2 (Some (Const 7L));
  let leaf = Builder.finish_func fb2 in
  Builder.program ~main:"main" [ main; leaf ]

let test_builder_roundtrip () =
  let prog = sample_program () in
  Alcotest.(check int) "two functions" 2 (Array.length prog.funcs);
  Alcotest.(check int) "main is entry" 0 prog.main;
  Alcotest.(check int) "main has three blocks" 3 (Array.length (prog.funcs.(0)).blocks);
  Alcotest.(check (list string)) "no validation errors" []
    (List.map Validate.error_to_string (Validate.check_program prog))

let test_builder_rejects_unterminated () =
  let fb = Builder.create_func ~name:"f" ~nparams:0 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Builder.finish_func fb);
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_dangling_label () =
  let fb = Builder.create_func ~name:"f" ~nparams:0 in
  Builder.jmp fb "nowhere";
  Alcotest.(check bool) "raises" true
    (try
       ignore (Builder.finish_func fb);
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_duplicate_label () =
  let fb = Builder.create_func ~name:"f" ~nparams:0 in
  Builder.jmp fb "entry";
  Builder.start_block fb "a";
  Builder.ret fb None;
  Builder.start_block fb "a";
  Builder.ret fb None;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Builder.finish_func fb);
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_emit_after_terminator () =
  let fb = Builder.create_func ~name:"f" ~nparams:0 in
  Builder.ret fb None;
  Alcotest.(check bool) "raises" true
    (try
       Builder.emit fb (Bin (0, Add, Const 1L, Const 2L));
       false
     with Invalid_argument _ -> true)

let make_func ~name blocks nregs =
  { fname = name; nparams = 0; nregs; blocks = Array.of_list blocks }

let test_validate_catches_bad_register () =
  let f =
    make_func ~name:"f"
      [ { label = "entry"; insts = [| Bin (5, Add, Const 1L, Const 2L) |]; term = Ret None } ]
      1
  in
  let errors = Validate.check_func ~known:(fun _ -> true) f in
  Alcotest.(check bool) "register error reported" true
    (List.exists (fun e -> e.Validate.message = "register r5 out of range") errors)

let test_validate_catches_bad_target () =
  let f =
    make_func ~name:"f" [ { label = "entry"; insts = [||]; term = Jmp 9 } ] 1
  in
  let errors = Validate.check_func ~known:(fun _ -> true) f in
  Alcotest.(check int) "one error" 1 (List.length errors)

let test_validate_catches_unknown_callee () =
  let f =
    make_func ~name:"f"
      [ { label = "entry"; insts = [| Call (None, "ghost", []) |]; term = Ret None } ]
      1
  in
  let errors = Validate.check_func ~known:(fun name -> name = "f") f in
  Alcotest.(check bool) "unknown callee" true
    (List.exists (fun e -> e.Validate.message = "unknown callee ghost") errors)

let test_validate_program_duplicate_names () =
  let f = make_func ~name:"f" [ { label = "entry"; insts = [||]; term = Ret None } ] 1 in
  let prog = { funcs = [| f; f |]; main = 0 } in
  let errors = Validate.check_program prog in
  Alcotest.(check bool) "duplicate reported" true
    (List.exists (fun e -> e.Validate.message = "duplicate function name f") errors)

let test_intrinsics_known () =
  Alcotest.(check bool) "in_byte" true (is_intrinsic "in_byte");
  Alcotest.(check bool) "in_size" true (is_intrinsic "in_size");
  Alcotest.(check bool) "out" true (is_intrinsic "out");
  Alcotest.(check bool) "random name" false (is_intrinsic "foo")

let test_counts () =
  let prog = sample_program () in
  Alcotest.(check int) "block count" 4 (block_count prog);
  (* main: 2 insts + 3 terms, leaf: 1 term *)
  Alcotest.(check int) "inst count" 6 (inst_count prog)

let test_cfg_ids_and_labels () =
  let prog = sample_program () in
  let cfg = Cfg.build prog in
  Alcotest.(check int) "nblocks" 4 (Cfg.nblocks cfg);
  Alcotest.(check int) "main entry id" 0 (Cfg.id cfg 0 0);
  Alcotest.(check int) "leaf entry id" 3 (Cfg.id cfg 1 0);
  Alcotest.(check (pair int int)) "of_id inverse" (1, 0) (Cfg.of_id cfg 3);
  Alcotest.(check string) "label" "leaf/.0" (Cfg.label cfg 3)

let test_cfg_successors_include_calls () =
  let prog = sample_program () in
  let cfg = Cfg.build prog in
  let succs = List.sort Int.compare (Cfg.successors cfg 0) in
  (* entry branches to .1 and .2, and calls leaf (global id 3) *)
  Alcotest.(check (list int)) "successors" [ 1; 2; 3 ] succs

let test_cfg_reachability () =
  let prog = sample_program () in
  let cfg = Cfg.build prog in
  let reach = Cfg.reachable_from cfg 0 in
  Alcotest.(check (array bool)) "all reachable from main" [| true; true; true; true |] reach;
  let from_leaf = Cfg.reachable_from cfg 3 in
  Alcotest.(check (array bool)) "only leaf from leaf" [| false; false; false; true |] from_leaf

let test_cfg_distances () =
  let prog = sample_program () in
  let cfg = Cfg.build prog in
  let dist = Cfg.distances_to cfg ~targets:(fun gid -> gid = 1) in
  Alcotest.(check int) "target distance zero" 0 dist.(1);
  Alcotest.(check int) "entry one step away" 1 dist.(0);
  Alcotest.(check bool) "else block cannot reach" true (dist.(2) = max_int)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* --- natural-loop detection edge cases ------------------------------- *)

let body_blocks (l : Loop.loop) =
  let out = ref [] in
  Array.iteri (fun i m -> if m then out := i :: !out) l.Loop.body;
  List.rev !out

(* Nested loops: an inner loop (header 2, latch 3) wholly inside an outer
   loop (header 1, latch 4). Both must be discovered, each with its own
   body. *)
let nested_loops_func () =
  make_func ~name:"nested"
    [
      { label = "entry"; insts = [||]; term = Jmp 1 };
      { label = "outer"; insts = [||]; term = Br (Reg 0, 2, 5) };
      { label = "inner"; insts = [||]; term = Br (Reg 0, 3, 4) };
      { label = "inner_latch"; insts = [||]; term = Jmp 2 };
      { label = "outer_latch"; insts = [||]; term = Jmp 1 };
      { label = "exit"; insts = [||]; term = Ret None };
    ]
    1

let test_loop_nested () =
  let { Loop.loops; irreducible } = Loop.analyze (nested_loops_func ()) in
  Alcotest.(check (list int)) "reducible" [] irreducible;
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let outer = List.nth loops 0 and inner = List.nth loops 1 in
  Alcotest.(check int) "outer header" 1 outer.Loop.header;
  Alcotest.(check (list int)) "outer latches" [ 4 ] outer.Loop.latches;
  Alcotest.(check (list int)) "outer body" [ 1; 2; 3; 4 ] (body_blocks outer);
  Alcotest.(check int) "inner header" 2 inner.Loop.header;
  Alcotest.(check (list int)) "inner latches" [ 3 ] inner.Loop.latches;
  Alcotest.(check (list int)) "inner body" [ 2; 3 ] (body_blocks inner)

(* Two back edges into one header must merge into a single loop with both
   latches, not two loops. *)
let test_loop_merged_latches () =
  let f =
    make_func ~name:"merged"
      [
        { label = "entry"; insts = [||]; term = Jmp 1 };
        { label = "head"; insts = [||]; term = Br (Reg 0, 2, 5) };
        { label = "split"; insts = [||]; term = Br (Reg 0, 3, 4) };
        { label = "latch_a"; insts = [||]; term = Jmp 1 };
        { label = "latch_b"; insts = [||]; term = Jmp 1 };
        { label = "exit"; insts = [||]; term = Ret None };
      ]
      1
  in
  let { Loop.loops; irreducible } = Loop.analyze f in
  Alcotest.(check (list int)) "reducible" [] irreducible;
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "header" 1 l.Loop.header;
  Alcotest.(check (list int)) "both latches" [ 3; 4 ] l.Loop.latches;
  Alcotest.(check (list int)) "merged body" [ 1; 2; 3; 4 ] (body_blocks l)

(* A retreating edge whose target does not dominate its source is
   irreducible: the 1 <-> 2 cycle is entered at both 1 and 2, so neither
   is a header and no natural loop may be reported. *)
let test_loop_irreducible () =
  let f =
    make_func ~name:"irr"
      [
        { label = "entry"; insts = [||]; term = Br (Reg 0, 1, 2) };
        { label = "a"; insts = [||]; term = Jmp 2 };
        { label = "b"; insts = [||]; term = Br (Reg 0, 1, 3) };
        { label = "exit"; insts = [||]; term = Ret None };
      ]
      1
  in
  let { Loop.loops; irreducible } = Loop.analyze f in
  Alcotest.(check int) "no natural loops" 0 (List.length loops);
  Alcotest.(check (list int)) "irreducible target" [ 1 ] irreducible

(* Self-loop: a block branching to itself is its own header and latch. *)
let test_loop_self () =
  let f =
    make_func ~name:"self"
      [
        { label = "entry"; insts = [||]; term = Jmp 1 };
        { label = "spin"; insts = [||]; term = Br (Reg 0, 1, 2) };
        { label = "exit"; insts = [||]; term = Ret None };
      ]
      1
  in
  let { Loop.loops; irreducible } = Loop.analyze f in
  Alcotest.(check (list int)) "reducible" [] irreducible;
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "header" 1 l.Loop.header;
  Alcotest.(check (list int)) "self latch" [ 1 ] l.Loop.latches;
  Alcotest.(check (list int)) "body is the header" [ 1 ] (body_blocks l)

let test_loop_idoms () =
  let f = nested_loops_func () in
  let idoms = Loop.idoms f in
  Alcotest.(check (list int)) "immediate dominators" [ -1; 0; 1; 2; 2; 1 ]
    (Array.to_list idoms);
  Alcotest.(check bool) "outer header dominates inner latch" true
    (Loop.dominates idoms 1 3);
  Alcotest.(check bool) "inner latch does not dominate exit" false
    (Loop.dominates idoms 3 5)

let test_printer_mentions_everything () =
  let prog = sample_program () in
  let text = Printer.program_to_string prog in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" fragment) true
        (contains text fragment))
    [ "fn main"; "fn leaf"; "add"; "call leaf()"; "br r1" ]

let suite =
  [
    Alcotest.test_case "builder roundtrip" `Quick test_builder_roundtrip;
    Alcotest.test_case "builder rejects unterminated" `Quick test_builder_rejects_unterminated;
    Alcotest.test_case "builder rejects dangling label" `Quick
      test_builder_rejects_dangling_label;
    Alcotest.test_case "builder rejects duplicate label" `Quick
      test_builder_rejects_duplicate_label;
    Alcotest.test_case "builder rejects emit after terminator" `Quick
      test_builder_rejects_emit_after_terminator;
    Alcotest.test_case "validate bad register" `Quick test_validate_catches_bad_register;
    Alcotest.test_case "validate bad target" `Quick test_validate_catches_bad_target;
    Alcotest.test_case "validate unknown callee" `Quick test_validate_catches_unknown_callee;
    Alcotest.test_case "validate duplicate names" `Quick test_validate_program_duplicate_names;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics_known;
    Alcotest.test_case "block/inst counts" `Quick test_counts;
    Alcotest.test_case "cfg ids and labels" `Quick test_cfg_ids_and_labels;
    Alcotest.test_case "cfg successors with calls" `Quick test_cfg_successors_include_calls;
    Alcotest.test_case "cfg reachability" `Quick test_cfg_reachability;
    Alcotest.test_case "cfg distances" `Quick test_cfg_distances;
    Alcotest.test_case "loops: nested" `Quick test_loop_nested;
    Alcotest.test_case "loops: merged latches" `Quick test_loop_merged_latches;
    Alcotest.test_case "loops: irreducible" `Quick test_loop_irreducible;
    Alcotest.test_case "loops: self loop" `Quick test_loop_self;
    Alcotest.test_case "loops: idoms" `Quick test_loop_idoms;
    Alcotest.test_case "printer output" `Quick test_printer_mentions_everything;
  ]
