open Pbse_smt
module T = Pbse_ir.Types

(* A reference AST that mirrors Expr but is built and evaluated without any
   simplification; qcheck compares the two evaluators, which verifies every
   smart-constructor rewrite against Semantics. *)
type spec =
  | Sconst of int64
  | Sread of int
  | Sbin of T.binop * spec * spec
  | Sun of T.unop * spec
  | Site of spec * spec * spec

let rec build = function
  | Sconst c -> Expr.const c
  | Sread i -> Expr.read i
  | Sbin (op, a, b) -> Expr.bin op (build a) (build b)
  | Sun (op, a) -> Expr.un op (build a)
  | Site (c, t, e) -> Expr.ite (build c) (build t) (build e)

let rec ref_eval lookup = function
  | Sconst c -> c
  | Sread i -> Int64.of_int (lookup i land 0xFF)
  | Sbin (op, a, b) -> Semantics.binop op (ref_eval lookup a) (ref_eval lookup b)
  | Sun (op, a) -> Semantics.unop op (ref_eval lookup a)
  | Site (c, t, e) ->
    if Semantics.truthy (ref_eval lookup c) then ref_eval lookup t else ref_eval lookup e

let all_binops =
  [
    T.Add; T.Sub; T.Mul; T.Udiv; T.Sdiv; T.Urem; T.Srem; T.And; T.Or; T.Xor;
    T.Shl; T.Lshr; T.Ashr; T.Eq; T.Ne; T.Ult; T.Ule; T.Slt; T.Sle;
  ]

let all_unops = [ T.Neg; T.Not; T.Sext8; T.Sext16; T.Sext32; T.Trunc8; T.Trunc16; T.Trunc32 ]

let gen_spec nvars =
  let open QCheck.Gen in
  let const_gen =
    oneof
      [
        map Int64.of_int (int_range (-4) 260);
        oneofl [ 0L; 1L; -1L; 0xFFL; 0xFFFFL; 0x100L; Int64.max_int; Int64.min_int; 64L; 63L ];
      ]
  in
  let leaf =
    oneof [ map (fun c -> Sconst c) const_gen; map (fun i -> Sread i) (int_range 0 (nvars - 1)) ]
  in
  fix
    (fun self n ->
      if n <= 0 then leaf
      else
        frequency
          [
            (1, leaf);
            ( 4,
              map3
                (fun op a b -> Sbin (op, a, b))
                (oneofl all_binops) (self (n / 2)) (self (n / 2)) );
            (2, map2 (fun op a -> Sun (op, a)) (oneofl all_unops) (self (n - 1)));
            ( 1,
              map3 (fun c t e -> Site (c, t, e)) (self (n / 3)) (self (n / 3)) (self (n / 3))
            );
          ])
    6

let gen_bytes nvars = QCheck.Gen.(array_size (return nvars) (int_range 0 255))

let arb_spec_and_bytes nvars =
  QCheck.make
    QCheck.Gen.(pair (gen_spec nvars) (gen_bytes nvars))

let prop_simplifier_sound =
  QCheck.Test.make ~count:2000 ~name:"expr simplifier agrees with reference semantics"
    (arb_spec_and_bytes 4)
    (fun (spec, bytes) ->
      let lookup i = bytes.(i) in
      Int64.equal (Expr.eval lookup (build spec)) (ref_eval lookup spec))

let prop_lognot_negates =
  QCheck.Test.make ~count:1000 ~name:"lognot flips truthiness"
    (arb_spec_and_bytes 3)
    (fun (spec, bytes) ->
      let lookup i = bytes.(i) in
      let e = build spec in
      Bool.equal
        (Semantics.truthy (Expr.eval lookup (Expr.lognot e)))
        (not (Semantics.truthy (Expr.eval lookup e))))

let prop_interval_sound =
  QCheck.Test.make ~count:2000 ~name:"interval analysis bounds concrete evaluation"
    (arb_spec_and_bytes 4)
    (fun (spec, bytes) ->
      let e = build spec in
      let iv = Interval.eval (fun _ -> Interval.make 0L 255L) e in
      Interval.contains iv (Expr.eval (fun i -> bytes.(i)) e))

let prop_interval_point_precision =
  QCheck.Test.make ~count:1000 ~name:"interval on point domains contains the point result"
    (arb_spec_and_bytes 4)
    (fun (spec, bytes) ->
      let e = build spec in
      let iv = Interval.eval (fun i -> Interval.point (Int64.of_int bytes.(i))) e in
      Interval.contains iv (Expr.eval (fun i -> bytes.(i)) e))

let prop_bits_sound =
  QCheck.Test.make ~count:2000 ~name:"possible-bits mask covers every concrete value"
    (arb_spec_and_bytes 4)
    (fun (spec, bytes) ->
      let e = build spec in
      let v = Expr.eval (fun i -> bytes.(i)) e in
      Int64.logand v (Int64.lognot e.Expr.bits) = 0L)

let test_bits_of_field_composition () =
  (* u16 little-endian read: bits must be exactly 0xFFFF *)
  let u16 = Expr.bin T.Or (Expr.read 0) (Expr.bin T.Shl (Expr.read 1) (Expr.const 8L)) in
  Alcotest.(check int64) "u16 bits" 0xFFFFL u16.Expr.bits;
  let u32 =
    Expr.bin T.Or u16
      (Expr.bin T.Or
         (Expr.bin T.Shl (Expr.read 2) (Expr.const 16L))
         (Expr.bin T.Shl (Expr.read 3) (Expr.const 24L)))
  in
  Alcotest.(check int64) "u32 bits" 0xFFFFFFFFL u32.Expr.bits

let test_solver_u32_magic () =
  (* the tcpdump-style gate: a 4-byte little-endian magic *)
  let solver = Solver.create () in
  let u32 =
    Expr.bin T.Or
      (Expr.bin T.Or (Expr.read 0) (Expr.bin T.Shl (Expr.read 1) (Expr.const 8L)))
      (Expr.bin T.Or
         (Expr.bin T.Shl (Expr.read 2) (Expr.const 16L))
         (Expr.bin T.Shl (Expr.read 3) (Expr.const 24L)))
  in
  (match Solver.check solver [ Expr.bin T.Eq u32 (Expr.const 0xA1B2C3D4L) ] with
   | Solver.Sat model, _ ->
     Alcotest.(check int) "byte 0" 0xD4 (Model.get model 0);
     Alcotest.(check int) "byte 1" 0xC3 (Model.get model 1);
     Alcotest.(check int) "byte 2" 0xB2 (Model.get model 2);
     Alcotest.(check int) "byte 3" 0xA1 (Model.get model 3)
   | (Solver.Unsat | Solver.Unknown), _ -> Alcotest.fail "u32 magic must be sat");
  match Solver.check solver [ Expr.bin T.Eq u32 (Expr.const 0x1_0000_0000L) ] with
  | Solver.Unsat, _ -> ()
  | (Solver.Sat _ | Solver.Unknown), _ -> Alcotest.fail "33-bit magic must be unsat"

let test_check_assuming_matches_check () =
  let solver = Solver.create () in
  let w = Expr.bin T.Or (Expr.read 0) (Expr.bin T.Shl (Expr.read 1) (Expr.const 8L)) in
  let path = [ Expr.bin T.Ult (Expr.const 3L) w; Expr.bin T.Ult w (Expr.const 600L) ] in
  let hint = Pbse_smt.Model.set (Pbse_smt.Model.set Model.empty 0 10) 1 0 in
  (* hint satisfies path (w = 10); the extra asks for one more loop step *)
  let extra = [ Expr.bin T.Ult (Expr.const 10L) w ] in
  (match Solver.check_assuming solver ~hint ~path extra with
   | Solver.Sat model, _ ->
     Alcotest.(check bool) "model satisfies everything" true
       (Model.satisfies model (path @ extra))
   | (Solver.Unsat | Solver.Unknown), _ -> Alcotest.fail "expected sat");
  (* contradiction with the path must be unsat, not unknown *)
  match Solver.check_assuming solver ~hint ~path [ Expr.bin T.Ult w (Expr.const 2L) ] with
  | Solver.Unsat, _ -> ()
  | (Solver.Sat _ | Solver.Unknown), _ -> Alcotest.fail "expected unsat"

(* --- solver vs brute force ----------------------------------------------- *)

let brute_force_sat specs =
  let exception Found in
  try
    for a = 0 to 255 do
      for b = 0 to 255 do
        let lookup i = if i = 0 then a else b in
        if List.for_all (fun s -> Semantics.truthy (ref_eval lookup s)) specs then raise Found
      done
    done;
    false
  with Found -> true

let gen_constraints =
  QCheck.Gen.(list_size (int_range 1 4) (gen_spec 2))

let prop_solver_matches_brute_force =
  QCheck.Test.make ~count:300 ~name:"solver agrees with 2-byte brute force"
    (QCheck.make gen_constraints)
    (fun specs ->
      let solver = Solver.create ~budget:400_000 () in
      let exprs = List.map build specs in
      match Solver.check solver exprs with
      | Solver.Sat model, _ ->
        Model.satisfies model exprs && brute_force_sat specs
      | Solver.Unsat, _ -> not (brute_force_sat specs)
      | Solver.Unknown, _ -> QCheck.assume_fail ())

let prop_sat_model_satisfies =
  QCheck.Test.make ~count:300 ~name:"sat models satisfy their query"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 5) (gen_spec 4)))
    (fun specs ->
      let solver = Solver.create () in
      let exprs = List.map build specs in
      match Solver.check solver exprs with
      | Solver.Sat model, _ -> Model.satisfies model exprs
      | (Solver.Unsat | Solver.Unknown), _ -> true)

(* --- deterministic unit tests --------------------------------------------- *)

let check_simpl name expected e =
  Alcotest.(check string) name expected (Expr.to_string e)

let test_simplifications () =
  let x = Expr.read 0 in
  check_simpl "x + 0" "in[0]" (Expr.bin T.Add x Expr.zero);
  check_simpl "x - x" "0" (Expr.bin T.Sub x x);
  check_simpl "x * 0" "0" (Expr.bin T.Mul x Expr.zero);
  check_simpl "x & 0xff is identity on a byte" "in[0]"
    (Expr.bin T.And x (Expr.const 0xFFL));
  check_simpl "x ^ x" "0" (Expr.bin T.Xor x x);
  check_simpl "x == x" "1" (Expr.bin T.Eq x x);
  check_simpl "byte == 300 is false" "0" (Expr.bin T.Eq x (Expr.const 300L));
  check_simpl "byte < 256 is true" "1" (Expr.bin T.Ult x (Expr.const 256L));
  check_simpl "counter chain collapses" "(add in[0] 3)"
    (Expr.bin T.Add (Expr.bin T.Add (Expr.bin T.Add x Expr.one) Expr.one) Expr.one);
  check_simpl "trunc8 of byte" "in[0]" (Expr.un T.Trunc8 x);
  check_simpl "sext8 of small value stays" "(and in[0] 127)"
    (Expr.un T.Sext8 (Expr.bin T.And x (Expr.const 0x7FL)))

let test_hash_consing_shares () =
  let a = Expr.bin T.Add (Expr.read 0) (Expr.const 5L) in
  let b = Expr.bin T.Add (Expr.read 0) (Expr.const 5L) in
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check bool) "equal" true (Expr.equal a b)

let test_reads () =
  let e =
    Expr.bin T.Add
      (Expr.bin T.Mul (Expr.read 3) (Expr.read 1))
      (Expr.bin T.Add (Expr.read 3) (Expr.const 9L))
  in
  Alcotest.(check (list int)) "sorted distinct reads" [ 1; 3 ] (Expr.reads e);
  Alcotest.(check int) "max_read" 3 e.Expr.max_read

let test_model_roundtrip () =
  let m = Model.of_string "AB" in
  Alcotest.(check int) "byte 0" 65 (Model.get m 0);
  Alcotest.(check int) "byte 1" 66 (Model.get m 1);
  Alcotest.(check int) "default 0" 0 (Model.get m 5);
  let m2 = Model.set m 1 0x142 in
  Alcotest.(check int) "set masks to byte" 0x42 (Model.get m2 1);
  Alcotest.(check string) "to_bytes" "A\x42\x00" (Bytes.to_string (Model.to_bytes ~size:3 m2))

let test_model_union_prefers_left () =
  let a = Model.set Model.empty 0 1 in
  let b = Model.set (Model.set Model.empty 0 2) 1 3 in
  let u = Model.union a b in
  Alcotest.(check int) "left wins" 1 (Model.get u 0);
  Alcotest.(check int) "right fills" 3 (Model.get u 1)

(* A realistic parser query: a little-endian u16 magic plus a bounded count. *)
let u16le b0 b1 =
  Expr.bin T.Or (Expr.read b0) (Expr.bin T.Shl (Expr.read b1) (Expr.const 8L))

let test_solver_magic_bytes () =
  let solver = Solver.create () in
  let magic = Expr.bin T.Eq (u16le 0 1) (Expr.const 0x4D42L) in
  let count_small = Expr.bin T.Ult (Expr.read 2) (Expr.const 5L) in
  (match Solver.check solver [ magic; count_small ] with
   | Solver.Sat model, _ ->
     Alcotest.(check int) "low byte" 0x42 (Model.get model 0);
     Alcotest.(check int) "high byte" 0x4D (Model.get model 1);
     Alcotest.(check bool) "count" true (Model.get model 2 < 5)
   | (Solver.Unsat | Solver.Unknown), _ -> Alcotest.fail "expected sat");
  (* contradictory magic *)
  let wrong = Expr.bin T.Eq (u16le 0 1) (Expr.const 0x12345L) in
  match Solver.check solver [ wrong ] with
  | Solver.Unsat, _ -> ()
  | (Solver.Sat _ | Solver.Unknown), _ -> Alcotest.fail "expected unsat"

let test_solver_hint_reuse () =
  let solver = Solver.create () in
  let hint = Model.of_string "\x07" in
  let c = Expr.bin T.Eq (Expr.read 0) (Expr.const 7L) in
  (match Solver.check solver ~hint [ c ] with
   | Solver.Sat model, _ -> Alcotest.(check int) "hint model kept" 7 (Model.get model 0)
   | (Solver.Unsat | Solver.Unknown), _ -> Alcotest.fail "expected sat");
  Alcotest.(check int) "hint hit counted" 1 (Solver.stats solver).Solver.hint_hits

let test_solver_independence_slicing () =
  let solver = Solver.create () in
  (* two independent groups; each is tiny even though together they span
     four bytes *)
  let g1 = Expr.bin T.Eq (Expr.read 0) (Expr.const 1L) in
  let g2 = Expr.bin T.Eq (u16le 2 3) (Expr.const 0x0102L) in
  match Solver.check solver [ g1; g2 ] with
  | Solver.Sat model, _ ->
    Alcotest.(check int) "group 1" 1 (Model.get model 0);
    Alcotest.(check int) "group 2 low" 2 (Model.get model 2);
    Alcotest.(check int) "group 2 high" 1 (Model.get model 3)
  | (Solver.Unsat | Solver.Unknown), _ -> Alcotest.fail "expected sat"

let test_solver_budget_unknown () =
  (* An 8-byte equality over a product is far beyond a 10-unit budget. *)
  let solver = Solver.create ~budget:10 () in
  let wide =
    let rec sum i acc = if i >= 8 then acc else sum (i + 1) (Expr.bin T.Add acc (Expr.read i)) in
    Expr.bin T.Eq (sum 1 (Expr.read 0)) (Expr.const 900L)
  in
  match Solver.check solver [ wide ] with
  | Solver.Unknown, work ->
    Alcotest.(check bool) "work reported" true (work > 0)
  | (Solver.Sat _ | Solver.Unsat), _ -> Alcotest.fail "expected unknown under tiny budget"

let test_solver_cache_hits () =
  let solver = Solver.create () in
  let c = Expr.bin T.Eq (Expr.read 0) (Expr.const 9L) in
  (* force a non-hint-satisfiable query twice: hint default is byte 0 = 0 *)
  ignore (Solver.check solver [ c ]);
  ignore (Solver.check solver [ c ]);
  Alcotest.(check bool) "cache hit on repeat" true
    ((Solver.stats solver).Solver.cache_hits >= 1)

let test_cache_key_collisions () =
  let a = Expr.bin T.Eq (Expr.read 0) (Expr.const 1L) in
  let b = Expr.bin T.Eq (Expr.read 1) (Expr.const 2L) in
  (* permutations of one constraint set must collide (that is the point
     of sorting), distinct sets must not *)
  Alcotest.(check (list int))
    "order-insensitive" (Simplify.cache_key [ a; b ])
    (Simplify.cache_key [ b; a ]);
  Alcotest.(check bool) "subset gets its own key" true
    (Simplify.cache_key [ a ] <> Simplify.cache_key [ a; b ]);
  Alcotest.(check bool) "different singletons differ" true
    (Simplify.cache_key [ a ] <> Simplify.cache_key [ b ]);
  Alcotest.(check bool) "duplicate constraint changes the key" true
    (Simplify.cache_key [ a; a ] <> Simplify.cache_key [ a ]);
  (* hash consing: a structurally equal rebuild reuses the id, so the
     keys collide across separately constructed conjunctions *)
  let a' = Expr.bin T.Eq (Expr.read 0) (Expr.const 1L) in
  Alcotest.(check (list int))
    "hash-consed rebuild collides" (Simplify.cache_key [ a ])
    (Simplify.cache_key [ a' ])

let test_prefix_reuse_on_extension () =
  let solver = Solver.create () in
  let b0 = Expr.read 0 in
  let gt n = Expr.bin T.Ult (Expr.const (Int64.of_int n)) b0 in
  (* default hint (byte 0 = 0) falsifies every extra, so each query
     reaches the prefix machinery *)
  let p1 = [ gt 3 ] in
  (match Solver.check_assuming solver ~path:p1 [ gt 10 ] with
   | Solver.Sat _, _ -> ()
   | (Solver.Unsat | Solver.Unknown), _ -> Alcotest.fail "first query must be sat");
  let st = Solver.stats solver in
  Alcotest.(check int) "first query builds its prefix" 1 st.Solver.prefix_builds;
  let hits_before = st.Solver.prefix_hits in
  (* extend the same physical spine by one constraint: the indexed
     prefix is found by identity and only the delta is indexed *)
  let p2 = gt 10 :: p1 in
  (match Solver.check_assuming solver ~path:p2 [ gt 20 ] with
   | Solver.Sat _, _ -> ()
   | (Solver.Unsat | Solver.Unknown), _ -> Alcotest.fail "second query must be sat");
  let st = Solver.stats solver in
  Alcotest.(check bool) "extension reuses the indexed prefix" true
    (st.Solver.prefix_hits > hits_before);
  Alcotest.(check int) "extension indexes only the delta" 2 st.Solver.prefix_builds;
  (* an exact repeat builds nothing *)
  (match Solver.check_assuming solver ~path:p2 [ gt 30 ] with
   | Solver.Sat _, _ -> ()
   | (Solver.Unsat | Solver.Unknown), _ -> Alcotest.fail "third query must be sat");
  Alcotest.(check int) "exact repeat builds nothing" 2
    (Solver.stats solver).Solver.prefix_builds

let test_solver_unsat_chain () =
  let solver = Solver.create () in
  let a = Expr.bin T.Ult (Expr.read 0) (Expr.const 10L) in
  let b = Expr.bin T.Ult (Expr.const 20L) (Expr.read 0) in
  match Solver.check solver [ a; b ] with
  | Solver.Unsat, _ -> ()
  | (Solver.Sat _ | Solver.Unknown), _ -> Alcotest.fail "expected unsat"

let suite =
  [
    Alcotest.test_case "simplifications" `Quick test_simplifications;
    Alcotest.test_case "hash consing" `Quick test_hash_consing_shares;
    Alcotest.test_case "reads" `Quick test_reads;
    Alcotest.test_case "model roundtrip" `Quick test_model_roundtrip;
    Alcotest.test_case "model union" `Quick test_model_union_prefers_left;
    Alcotest.test_case "solver magic bytes" `Quick test_solver_magic_bytes;
    Alcotest.test_case "solver hint reuse" `Quick test_solver_hint_reuse;
    Alcotest.test_case "solver independence slicing" `Quick test_solver_independence_slicing;
    Alcotest.test_case "solver budget unknown" `Quick test_solver_budget_unknown;
    Alcotest.test_case "solver cache hits" `Quick test_solver_cache_hits;
    Alcotest.test_case "cache key collisions" `Quick test_cache_key_collisions;
    Alcotest.test_case "prefix reuse on extension" `Quick test_prefix_reuse_on_extension;
    Alcotest.test_case "solver unsat chain" `Quick test_solver_unsat_chain;
    Alcotest.test_case "bits of field composition" `Quick test_bits_of_field_composition;
    Alcotest.test_case "solver u32 magic" `Quick test_solver_u32_magic;
    Alcotest.test_case "check_assuming" `Quick test_check_assuming_matches_check;
    QCheck_alcotest.to_alcotest prop_bits_sound;
    QCheck_alcotest.to_alcotest prop_simplifier_sound;
    QCheck_alcotest.to_alcotest prop_lognot_negates;
    QCheck_alcotest.to_alcotest prop_interval_sound;
    QCheck_alcotest.to_alcotest prop_interval_point_precision;
    QCheck_alcotest.to_alcotest prop_solver_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_sat_model_satisfies;
  ]
