(* The path-condition layer: structured path conditions (spine sharing,
   bloom signatures, block-boundary deltas), the unsat-core subsumption
   cache, the loop-summary template matcher, and end-to-end equivalence
   of summarized vs unrolled execution on seeded MiniC programs. *)

module Expr = Pbse_smt.Expr
module Pathcond = Pbse_pathcond.Pathcond
module Subsume = Pbse_pathcond.Subsume
module Loop_summary = Pbse_pathcond.Loop_summary
module Loop = Pbse_ir.Loop
module Driver = Pbse.Driver
module Executor = Pbse_exec.Executor
module Coverage = Pbse_exec.Coverage
module Bug = Pbse_exec.Bug
open Pbse_ir.Types

(* a few distinct interned conditions to thread through the tests *)
let cond i = Expr.bin Ne (Expr.read i) (Expr.const (Int64.of_int (17 + i)))

(* --- Pathcond ---------------------------------------------------------- *)

let test_pathcond_basics () =
  let c0 = cond 0 and c1 = cond 1 and c2 = cond 2 in
  let p = Pathcond.empty in
  Alcotest.(check int) "empty length" 0 (Pathcond.length p);
  let p = Pathcond.assume p ~block:7 c0 in
  let p = Pathcond.assume p ~block:7 c1 in
  let p = Pathcond.assume p ~block:9 c2 in
  Alcotest.(check int) "length" 3 (Pathcond.length p);
  Alcotest.(check bool) "mem c1" true (Pathcond.mem p c1.Expr.id);
  Alcotest.(check bool) "mem other" false (Pathcond.mem p (cond 5).Expr.id);
  Alcotest.(check bool) "spine newest first" true
    (match Pathcond.spine p with e :: _ -> Expr.equal e c2 | [] -> false);
  Alcotest.(check bool) "conditions oldest first" true
    (match Pathcond.conditions p with e :: _ -> Expr.equal e c0 | [] -> false)

let test_pathcond_fork_shares_spine () =
  (* sibling states forked from a common prefix must share the prefix
     spine physically: Prefix_ctx keys contexts on spine tails *)
  let base =
    Pathcond.assume (Pathcond.assume Pathcond.empty ~block:1 (cond 0)) ~block:1
      (cond 1)
  in
  let left = Pathcond.assume base ~block:2 (cond 2) in
  let right = Pathcond.assume base ~block:2 (cond 3) in
  match (Pathcond.spine left, Pathcond.spine right) with
  | _ :: ltail, _ :: rtail ->
    Alcotest.(check bool) "tails physically equal" true (ltail == rtail)
  | _ -> Alcotest.fail "unexpected spine shapes"

let test_pathcond_signature_superset () =
  let conds = List.init 6 cond in
  let p =
    List.fold_left (fun p c -> Pathcond.assume p ~block:0 c) Pathcond.empty conds
  in
  (* any subset's signature is covered by the full signature *)
  List.iter
    (fun (c : Expr.t) ->
      let s = Pathcond.signature_of_ids [ c.Expr.id ] in
      Alcotest.(check int) "subset covered" s (s land Pathcond.signature p))
    conds

let test_pathcond_deltas () =
  let c = Array.init 5 cond in
  let p = Pathcond.empty in
  let p = Pathcond.assume p ~block:10 c.(0) in
  let p = Pathcond.assume p ~block:10 c.(1) in
  (* same block consecutively: merged into one delta *)
  let p = Pathcond.assume p ~block:11 c.(2) in
  let p = Pathcond.assume p ~block:10 c.(3) in
  (* revisiting block 10 later: a fresh delta, not merged backwards *)
  let p = Pathcond.assume p ~block:10 c.(4) in
  let ds =
    List.map (fun (g, es) -> (g, List.map (fun e -> e.Expr.id) es)) (Pathcond.deltas p)
  in
  Alcotest.(check (list (pair int (list int))))
    "block-boundary deltas"
    [
      (10, [ c.(0).Expr.id; c.(1).Expr.id ]);
      (11, [ c.(2).Expr.id ]);
      (10, [ c.(3).Expr.id; c.(4).Expr.id ]);
    ]
    ds

(* --- Subsume ----------------------------------------------------------- *)

let mem_of (p : Pathcond.t) id = Pathcond.mem p id

let test_subsume_hit_miss_empty () =
  let t = Subsume.create () in
  let core = [ cond 0; cond 1 ] in
  Alcotest.(check bool) "empty before recording" true
    (Subsume.consult t ~block:5 ~sg:max_int ~mem:(fun _ -> true) = `Empty);
  Subsume.record t ~block:5 core;
  (* a path holding a superset of the core is answered Unsat *)
  let super =
    List.fold_left
      (fun p c -> Pathcond.assume p ~block:5 c)
      Pathcond.empty [ cond 0; cond 1; cond 2 ]
  in
  Alcotest.(check bool) "superset hits" true
    (Subsume.consult t ~block:5 ~sg:(Pathcond.signature super) ~mem:(mem_of super)
    = `Hit);
  (* a disjoint path misses without being Empty *)
  let other =
    List.fold_left
      (fun p c -> Pathcond.assume p ~block:5 c)
      Pathcond.empty [ cond 3; cond 4 ]
  in
  Alcotest.(check bool) "disjoint misses" true
    (Subsume.consult t ~block:5 ~sg:(Pathcond.signature other) ~mem:(mem_of other)
    = `Miss);
  (* the cache is bucketed: the same query at another block is Empty *)
  Alcotest.(check bool) "other block empty" true
    (Subsume.consult t ~block:6 ~sg:(Pathcond.signature super) ~mem:(mem_of super)
    = `Empty)

let test_subsume_dedup_and_cap () =
  let t = Subsume.create () in
  Subsume.record t ~block:1 [ cond 0; cond 1 ];
  Subsume.record t ~block:1 [ cond 1; cond 0 ];
  (* same id set, either order: one core *)
  Alcotest.(check (pair int int)) "duplicates dropped" (1, 1) (Subsume.stats t);
  (* overflow a bucket: the count stays at the cap *)
  for i = 0 to 40 do
    Subsume.record t ~block:2 [ cond (10 + i); cond (11 + i) ]
  done;
  let cores, buckets = Subsume.stats t in
  Alcotest.(check int) "two buckets" 2 buckets;
  Alcotest.(check bool) "bucket capped" true (cores <= 1 + 24)

(* --- Loop_summary ------------------------------------------------------ *)

let counting_loop_src =
  "fn main() {\n\
   var n = in(0);\n\
   var acc = 0;\n\
   var i = 0;\n\
   while (i < n) { acc = acc + 3; i = i + 1; }\n\
   out(acc);\n\
   return 0;\n\
   }"

let test_summary_matches_minic_counting_loop () =
  let prog = Pbse_lang.Frontend.compile counting_loop_src in
  let a = Loop_summary.analyze prog in
  Alcotest.(check int) "no fallbacks" 0 a.Loop_summary.fallbacks;
  Alcotest.(check int) "one summary" 1 (Hashtbl.length a.Loop_summary.summaries);
  Hashtbl.iter
    (fun _ (s : Loop_summary.summary) ->
      Alcotest.(check bool) "signed compare" true (s.Loop_summary.cmp = Slt);
      (* MiniC lowers both advances through a temporary *)
      Alcotest.(check bool) "counter pair" true (s.Loop_summary.counter_tmp <> None);
      match s.Loop_summary.updates with
      | [ u ] ->
        Alcotest.(check int64) "accumulator step" 3L u.Loop_summary.step;
        Alcotest.(check bool) "accumulator pair" true (u.Loop_summary.tmp <> None)
      | ups ->
        Alcotest.fail
          (Printf.sprintf "expected one non-counter update, got %d"
             (List.length ups)))
    a.Loop_summary.summaries

let test_summary_rejects_effectful_body () =
  (* the loop reads input inside the body: a Call is not an advance, so
     the loop must fall back to plain unrolling *)
  let src =
    "fn main() {\n\
     var n = in(0);\n\
     var s = 0;\n\
     var i = 0;\n\
     while (i < n) { s = s + in(i); i = i + 1; }\n\
     out(s);\n\
     return 0;\n\
     }"
  in
  let a = Loop_summary.analyze (Pbse_lang.Frontend.compile src) in
  Alcotest.(check int) "no summaries" 0 (Hashtbl.length a.Loop_summary.summaries);
  Alcotest.(check int) "one fallback" 1 a.Loop_summary.fallbacks

let test_summary_rejects_nested_loops () =
  let src =
    "fn main() {\n\
     var n = in(0);\n\
     var acc = 0;\n\
     var i = 0;\n\
     while (i < n) {\n\
     var j = 0;\n\
     while (j < n) { acc = acc + 1; j = j + 1; }\n\
     i = i + 1;\n\
     }\n\
     out(acc);\n\
     return 0;\n\
     }"
  in
  let prog = Pbse_lang.Frontend.compile src in
  let a = Loop_summary.analyze prog in
  (* the outer loop is multi-block and must fall back; the inner one may
     or may not match depending on lowering, but never the outer *)
  Alcotest.(check bool) "outer loop falls back" true (a.Loop_summary.fallbacks >= 1)

let test_summary_never_fires_on_irreducible () =
  (* a template-shaped outer loop whose body contains an irreducible
     cycle (3 <-> 4, entered at both ends): Loop.analyze reports the
     taint and the matcher must refuse the whole loop *)
  let f =
    {
      fname = "irr";
      nparams = 0;
      nregs = 5;
      blocks =
        [|
          { label = "entry"; insts = [||]; term = Jmp 1 };
          {
            label = "head";
            insts = [| Bin (4, Ult, Reg 3, Reg 1) |];
            term = Br (Reg 4, 2, 6);
          };
          { label = "split"; insts = [||]; term = Br (Reg 0, 3, 4) };
          { label = "left"; insts = [||]; term = Jmp 4 };
          { label = "right"; insts = [||]; term = Br (Reg 0, 3, 5) };
          {
            label = "latch";
            insts = [| Bin (3, Add, Reg 3, Const 1L) |];
            term = Jmp 1;
          };
          { label = "exit"; insts = [||]; term = Ret None };
        |];
    }
  in
  let { Loop.irreducible; loops } = Loop.analyze f in
  Alcotest.(check bool) "irreducibility detected" true (irreducible <> []);
  Alcotest.(check bool) "a natural loop still exists" true (loops <> []);
  let a = Loop_summary.analyze { funcs = [| f |]; main = 0 } in
  Alcotest.(check int) "never summarized" 0 (Hashtbl.length a.Loop_summary.summaries);
  Alcotest.(check bool) "counted as fallback" true (a.Loop_summary.fallbacks >= 1)

(* --- summarized vs unrolled equivalence -------------------------------- *)

(* A seeded MiniC program where the counting loop matters: the
   accumulator flows into output and a guarded out-of-bounds write sits
   behind an input byte the symbolic search must solve for. The [tag]
   branch before the loop matters for the summary: states forked there
   re-enter the loop with the seed's model and traverse it whole, which
   is where the one-step leap fires under the concolic-then-fork flow
   (states forked at the loop header itself only ever add one
   iteration). *)
let equiv_src =
  "fn main() {\n\
   var n = in(0);\n\
   if (n > 40) { return 1; }\n\
   var tag = in(1);\n\
   var acc = 0;\n\
   if (tag == 3) { acc = 1; }\n\
   var i = 0;\n\
   while (i < n) { acc = acc + 3; i = i + 1; }\n\
   out(acc);\n\
   var buf = alloc(8);\n\
   if (tag == 0x7F) { buf[9] = acc; }\n\
   return 0;\n\
   }"

let equiv_seed () = Bytes.of_string "\005A"

let pathcond_off =
  Driver.(
    with_pathcond
      (fun _ -> { subsumption = false; loop_summaries = false })
      default_config)

let run_equiv config =
  Driver.run ~config (Pbse_lang.Frontend.compile equiv_src) ~seed:(equiv_seed ())
    ~deadline:100_000

let bug_set (r : Driver.report) =
  List.sort_uniq compare
    (List.map (fun ((b : Bug.t), _) -> (b.Bug.gid, b.Bug.kind)) r.Driver.bugs)

let test_summary_equivalent_to_unrolling () =
  let on = run_equiv Driver.default_config in
  let off = run_equiv pathcond_off in
  let st_on = Executor.stats on.Driver.executor in
  let st_off = Executor.stats off.Driver.executor in
  Alcotest.(check bool) "summaries fired" true (st_on.Executor.loop_summaries > 0);
  Alcotest.(check int) "disabled run applied none" 0 st_off.Executor.loop_summaries;
  Alcotest.(check int) "disabled run consulted no cores" 0
    (st_off.Executor.interpolant_hits + st_off.Executor.interpolant_misses);
  Alcotest.(check int) "identical coverage"
    (Coverage.count (Executor.coverage off.Driver.executor))
    (Coverage.count (Executor.coverage on.Driver.executor));
  Alcotest.(check bool) "found the guarded bug" true (bug_set on <> []);
  Alcotest.(check (list (pair int string))) "identical bug set" (bug_set off)
    (bug_set on)

let test_summary_covers_zero_iteration_side () =
  (* with a seed that skips the loop entirely the summary must not fire
     on the seed path, yet the two configurations still agree *)
  let seed = Bytes.of_string "\000A" in
  let run config =
    Driver.run ~config
      (Pbse_lang.Frontend.compile equiv_src)
      ~seed ~deadline:100_000
  in
  let on = run Driver.default_config in
  let off = run pathcond_off in
  Alcotest.(check int) "identical coverage"
    (Coverage.count (Executor.coverage off.Driver.executor))
    (Coverage.count (Executor.coverage on.Driver.executor));
  Alcotest.(check (list (pair int string))) "identical bug set" (bug_set off)
    (bug_set on)

(* --- counter manifest -------------------------------------------------- *)

let test_manifest_has_pathcond_counters () =
  let names = Pbse_session.Session.scalar_metric_names in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in manifest") true (List.mem n names))
    [
      "smt.subsumed_states";
      "smt.interpolant_hits";
      "smt.interpolant_misses";
      "pathcond.loop_summaries";
      "pathcond.summary_fallbacks";
    ];
  (* the manifest is the single source for runs.csv: no duplicates *)
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "pathcond basics" `Quick test_pathcond_basics;
    Alcotest.test_case "pathcond fork shares spine" `Quick
      test_pathcond_fork_shares_spine;
    Alcotest.test_case "pathcond signature superset" `Quick
      test_pathcond_signature_superset;
    Alcotest.test_case "pathcond deltas" `Quick test_pathcond_deltas;
    Alcotest.test_case "subsume hit/miss/empty" `Quick test_subsume_hit_miss_empty;
    Alcotest.test_case "subsume dedup and cap" `Quick test_subsume_dedup_and_cap;
    Alcotest.test_case "summary matches counting loop" `Quick
      test_summary_matches_minic_counting_loop;
    Alcotest.test_case "summary rejects effectful body" `Quick
      test_summary_rejects_effectful_body;
    Alcotest.test_case "summary rejects nested loops" `Quick
      test_summary_rejects_nested_loops;
    Alcotest.test_case "summary never fires on irreducible" `Quick
      test_summary_never_fires_on_irreducible;
    Alcotest.test_case "summary equivalent to unrolling" `Quick
      test_summary_equivalent_to_unrolling;
    Alcotest.test_case "summary zero-iteration side" `Quick
      test_summary_covers_zero_iteration_side;
    Alcotest.test_case "manifest has pathcond counters" `Quick
      test_manifest_has_pathcond_counters;
  ]
