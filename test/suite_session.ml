(* Session-layer tests: strict LRU eviction order in the session store,
   cold-vs-warm campaign identity through the store's campaign memo, and
   determinism of cross-seed seedState sharing. *)

module Driver = Pbse.Driver
module Session = Pbse_session.Session
module Session_store = Pbse_session.Session_store
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report

let mini_program = Suite_core.mini_program
let pool_seeds = Suite_campaign.pool_seeds

let open_mini seed =
  Session.open_session (mini_program ()) ~seed ~deadline:5_000

let test_store_lru_eviction_order () =
  let registry = Telemetry.Registry.create ~enabled:true () in
  let store : unit Session_store.t =
    Session_store.create ~cap:2 ~registry ()
  in
  let config_fp = Session.config_fingerprint Session.default_config in
  let key label = Session_store.session_key ~target:"mini" ~seed:(Bytes.of_string label) ~config_fp in
  let a, b, c = (key "a", key "b", key "c") in
  Session_store.put_session store a (open_mini (Bytes.of_string "a-seed"));
  Session_store.put_session store b (open_mini (Bytes.of_string "b-seed"));
  Alcotest.(check int) "cap not yet exceeded" 0 (Session_store.evictions store);
  (* touch [a]: it becomes most-recent, so inserting [c] must evict [b] *)
  Alcotest.(check bool) "a is cached" true
    (Option.is_some (Session_store.find_session store a));
  Session_store.put_session store c (open_mini (Bytes.of_string "c-seed"));
  Alcotest.(check int) "one eviction at cap" 1 (Session_store.evictions store);
  Alcotest.(check int) "still at cap" 2 (Session_store.size store);
  Alcotest.(check bool) "b (LRU) was evicted" true
    (Option.is_none (Session_store.find_session store b));
  Alcotest.(check bool) "a survived (touched)" true
    (Option.is_some (Session_store.find_session store a));
  Alcotest.(check bool) "c survived (newest)" true
    (Option.is_some (Session_store.find_session store c));
  (* distinct keys never alias: the config fingerprint is part of the key *)
  let other_fp =
    Session.config_fingerprint
      (Session.with_rng_seed 99 Session.default_config)
  in
  Alcotest.(check bool) "config change changes the key" true
    (Session_store.session_key ~target:"mini" ~seed:(Bytes.of_string "a") ~config_fp
    <> Session_store.session_key ~target:"mini" ~seed:(Bytes.of_string "a")
         ~config_fp:other_fp)

let pool_json_with ?config ?store ~jobs () =
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled false)
    (fun () ->
      let pool =
        Driver.run_pool ?config ?store ~target:"mini" ~jobs (mini_program ())
          ~seeds:(pool_seeds ()) ~deadline:150_000
      in
      ( Report.to_json (Driver.pool_run_report ~meta:[ ("target", "mini") ] pool),
        pool ))

let test_campaign_cold_vs_warm_identical () =
  let store = Session_store.create ~registry:(Telemetry.Registry.create ~enabled:true ()) () in
  let cold, _ = pool_json_with ~store ~jobs:1 () in
  Alcotest.(check int) "cold run hit nothing" 0 (Session_store.hits store);
  Alcotest.(check bool) "cold run populated the store" true
    (Session_store.size store > 0);
  let warm, _ = pool_json_with ~store ~jobs:1 () in
  Alcotest.(check string) "warm report byte-identical to cold" cold warm;
  Alcotest.(check bool) "warm run was served from the store" true
    (Session_store.hits store > 0);
  (* jobs is excluded from the campaign fingerprint: any width may reuse
     any width's campaign (reports are jobs-invariant) *)
  let hits_before = Session_store.hits store in
  let warm4, _ = pool_json_with ~store ~jobs:4 () in
  Alcotest.(check string) "jobs=4 served the same bytes" cold warm4;
  Alcotest.(check bool) "jobs=4 hit the same memo" true
    (Session_store.hits store > hits_before);
  (* a config change misses: no stale campaign can be served *)
  let config = Driver.with_rng_seed 7 Driver.default_config in
  let other, _ = pool_json_with ~config ~store ~jobs:1 () in
  Alcotest.(check bool) "different config is a different campaign" true
    (other <> warm)

let test_seedstate_sharing_deterministic () =
  (* two slots over the SAME seed at jobs=1: the first session publishes
     every fork point, the second drops them all as shared — and the
     merged campaign must be indistinguishable from the unshared one *)
  let seeds = [ Suite_core.mini_seed (); Suite_core.mini_seed () ] in
  (* counters only record on enabled registries *)
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) @@ fun () ->
  let run ~share =
    let config =
      if share then
        Driver.with_search
          (fun s -> { s with Driver.share_seed_states = true })
          Driver.default_config
      else Driver.default_config
    in
    Driver.run_pool ~config ~jobs:1 (mini_program ()) ~seeds ~deadline:150_000
  in
  let unshared = run ~share:false in
  let shared = run ~share:true in
  Alcotest.(check bool) "sharing actually fired" true
    (shared.Driver.pool_shared_seedstates > 0);
  Alcotest.(check int) "unshared campaign shares nothing" 0
    unshared.Driver.pool_shared_seedstates;
  Alcotest.(check int) "same merged coverage" unshared.Driver.merged_coverage
    shared.Driver.merged_coverage;
  Alcotest.(check int) "same merged bugs"
    (List.length unshared.Driver.merged_bugs)
    (List.length shared.Driver.merged_bugs);
  (* the duplicated slot drains early once its seedStates are dropped,
     so sharing can only cheapen the campaign, never inflate it *)
  Alcotest.(check bool) "sharing spends no more virtual time" true
    (shared.Driver.pool_spent <= unshared.Driver.pool_spent);
  (* the per-session counter surfaces in the merged pool registry *)
  let counter_total registry =
    List.fold_left
      (fun acc (name, v) ->
        if name = "session.seedstate_shared_hits" then acc + v else acc)
      0
      (Telemetry.Registry.snapshot_counters registry)
  in
  Alcotest.(check bool) "session.seedstate_shared_hits > 0" true
    (counter_total shared.Driver.pool_registry > 0)

let test_share_prefix_hint_roundtrip () =
  (* hint residue exported from a finished session imports into the
     share and round-trips: first writer per fingerprint wins *)
  let share = Session.share_create () in
  Session.share_publish_hints share [ (42, [ (0, 7); (3, 1) ]); (9, []) ];
  Session.share_publish_hints share [ (42, [ (0, 99) ]); (10, [ (1, 2) ]) ];
  let hints = List.sort compare (Session.share_hints share) in
  Alcotest.(check int) "three fingerprints" 3 (List.length hints);
  Alcotest.(check bool) "first writer wins for fp 42" true
    (List.assoc 42 hints = [ (0, 7); (3, 1) ]);
  Alcotest.(check bool) "published/hit stats start at zero" true
    (Session.share_stats share = (0, 0))

let suite =
  [
    Alcotest.test_case "store LRU eviction order" `Quick test_store_lru_eviction_order;
    Alcotest.test_case "cold vs warm campaign byte-identical" `Slow
      test_campaign_cold_vs_warm_identical;
    Alcotest.test_case "seedState sharing deterministic" `Slow
      test_seedstate_sharing_deterministic;
    Alcotest.test_case "share prefix-hint roundtrip" `Quick
      test_share_prefix_hint_roundtrip;
  ]
