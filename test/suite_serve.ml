(* pbse-serve/2 tests: strict envelope parsing and frame round-trips,
   transport edges (endpoint parsing, self-pipe wakeup, bounded reads),
   token-bucket admission under an injected clock, store-file residue
   persistence, and an in-process server exercised end-to-end — v2 and
   v1 byte-identity, progress frames, structured errors, quota
   exhaustion, oversized lines, mid-request disconnects and the
   client-side v1 fallback against a fake pre-v2 server. *)

module Driver = Pbse.Driver
module Serve = Pbse.Serve
module Session_store = Pbse_session.Session_store
module Telemetry = Pbse_telemetry.Telemetry
module Report = Pbse_telemetry.Report
module Json = Pbse_telemetry.Json
module Protocol = Pbse_serve.Protocol
module Transport = Pbse_serve.Transport
module Admission = Pbse_serve.Admission

let mini_program = Suite_core.mini_program
let pool_seeds = Suite_campaign.pool_seeds
let deadline = 5_000

(* --- protocol ---------------------------------------------------------------- *)

let base_request =
  {
    Protocol.rq_id = None;
    rq_client = None;
    rq_progress = false;
    rq_target = "mini";
    rq_deadline = deadline;
    rq_pool_scheduler = "";
    rq_scheduler = None;
    rq_jobs = None;
    rq_lease = 1;
    rq_share = false;
  }

let expect_error label expected line =
  match Protocol.parse_request line with
  | Ok _ -> Alcotest.failf "%s: parsed but should be %s" label
              (Protocol.error_label expected)
  | Error (_, code, _) ->
    Alcotest.(check string) label
      (Protocol.error_label expected)
      (Protocol.error_label code)

let test_envelope_roundtrip () =
  let req =
    {
      base_request with
      Protocol.rq_id = Some "r1";
      rq_client = Some "ci";
      rq_progress = true;
      rq_deadline = 777;
      rq_pool_scheduler = "coverage-greedy";
      rq_scheduler = Some "round-robin";
      rq_jobs = Some 3;
      rq_lease = 2;
      rq_share = true;
    }
  in
  match Protocol.parse_request (Protocol.render_request req) with
  | Error (_, _, e) -> Alcotest.failf "render/parse roundtrip failed: %s" e
  | Ok (version, parsed) ->
    Alcotest.(check bool) "parsed as v2" true (version = Protocol.V2);
    Alcotest.(check bool) "roundtrips every field" true (parsed = req)

let test_envelope_strictness () =
  expect_error "malformed JSON" Protocol.Bad_json "{\"target\": ";
  expect_error "not an object" Protocol.Bad_request "[1, 2]";
  expect_error "unknown envelope field" Protocol.Bad_request
    "{\"pbse\": 2, \"bogus\": 1, \"params\": {\"target\": \"t\"}}";
  expect_error "duplicate envelope field" Protocol.Bad_request
    "{\"pbse\": 2, \"id\": \"a\", \"id\": \"b\", \"params\": {\"target\": \"t\"}}";
  expect_error "unknown params field" Protocol.Bad_request
    "{\"pbse\": 2, \"params\": {\"target\": \"t\", \"jbos\": 2}}";
  expect_error "duplicate params field" Protocol.Bad_request
    "{\"pbse\": 2, \"params\": {\"target\": \"t\", \"target\": \"u\"}}";
  expect_error "mistyped params field" Protocol.Bad_request
    "{\"pbse\": 2, \"params\": {\"target\": \"t\", \"deadline\": \"soon\"}}";
  expect_error "missing params" Protocol.Bad_request "{\"pbse\": 2}";
  expect_error "missing target" Protocol.Bad_request
    "{\"pbse\": 2, \"params\": {}}";
  expect_error "future version" Protocol.Unsupported_version
    "{\"pbse\": 3, \"params\": {\"target\": \"t\"}}";
  expect_error "non-integer version" Protocol.Bad_request
    "{\"pbse\": \"two\", \"params\": {\"target\": \"t\"}}"

let test_v1_lenient_compat () =
  (* the deprecated one-liner: unknown fields ignored, defaults filled *)
  match
    Protocol.parse_request
      "{\"target\": \"mini\", \"deadline\": 42, \"mystery\": true}"
  with
  | Error (_, _, e) -> Alcotest.failf "v1 parse failed: %s" e
  | Ok (version, req) ->
    Alcotest.(check bool) "parsed as v1" true (version = Protocol.V1);
    Alcotest.(check string) "target" "mini" req.Protocol.rq_target;
    Alcotest.(check int) "deadline" 42 req.Protocol.rq_deadline;
    Alcotest.(check bool) "no progress in v1" false req.Protocol.rq_progress;
    (* and the v1 error is attributed to v1, so a broken v1 client gets
       a v1-framed answer *)
    (match Protocol.parse_request "{\"deadline\": 9}" with
     | Error (Some Protocol.V1, Protocol.Bad_request, _) -> ()
     | _ -> Alcotest.fail "v1 missing-target error not attributed to v1")

let test_downgrade () =
  let line = Protocol.render_request { base_request with rq_lease = 2 } in
  match Protocol.downgrade_request line with
  | None -> Alcotest.fail "v2 line did not downgrade"
  | Some v1 -> (
    match Protocol.parse_request v1 with
    | Ok (Protocol.V1, req) ->
      Alcotest.(check string) "target survives" "mini" req.Protocol.rq_target;
      Alcotest.(check int) "lease survives" 2 req.Protocol.rq_lease;
      (* progress streaming has no v1 spelling *)
      Alcotest.(check bool) "progress refuses to downgrade" true
        (Protocol.downgrade_request
           (Protocol.render_request { base_request with rq_progress = true })
        = None)
    | Ok (Protocol.V2, _) -> Alcotest.fail "downgraded line still v2"
    | Error (_, _, e) -> Alcotest.failf "downgraded line unparsable: %s" e)

let test_frame_roundtrip () =
  let check_frame label frame =
    let line = Protocol.render_frame frame in
    Alcotest.(check bool)
      (label ^ " newline-terminated")
      true
      (line.[String.length line - 1] = '\n');
    match Protocol.parse_frame (String.trim line) with
    | Ok parsed -> Alcotest.(check bool) (label ^ " roundtrips") true (parsed = frame)
    | Error e -> Alcotest.failf "%s failed to parse: %s" label e
  in
  check_frame "report" (Protocol.Report { id = Some "r"; bytes = 812 });
  check_frame "progress" (Protocol.Progress { id = None; round = 3 });
  check_frame "error"
    (Protocol.Error_frame
       {
         id = Some "r";
         code = Protocol.Over_capacity;
         message = "over capacity: retry after 2s";
         retry_after = Some 2;
       });
  (* retry_after is an integer on the wire — the Json layer has no
     floats, so this is enforced by construction; check the rendering *)
  let line =
    Protocol.render_frame
      (Protocol.Error_frame
         { id = None; code = Protocol.Over_capacity; message = "m"; retry_after = Some 5 })
  in
  Alcotest.(check bool) "retry_after rendered as integer" true
    (let json = Result.get_ok (Json.parse (String.trim line)) in
     Option.bind (Json.member "retry_after" json) Json.to_int = Some 5)

(* --- transport --------------------------------------------------------------- *)

let test_endpoint_parsing () =
  (match Transport.endpoint_of_string "127.0.0.1:7199" with
   | Ok (Transport.Tcp ("127.0.0.1", 7199)) -> ()
   | _ -> Alcotest.fail "HOST:PORT did not parse");
  List.iter
    (fun bad ->
      match Transport.endpoint_of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [ "no-port"; "host:"; "host:0"; "host:notanumber"; ":7199"; "host:70000" ]

let test_self_pipe_wakeup () =
  (* the accept loop blocks with no timeout; request_stop alone must
     wake it promptly *)
  let control = Transport.control_create () in
  let socket = Filename.temp_file "pbse-test" ".sock" in
  Sys.remove socket;
  let fd = Transport.listen (Transport.Unix_socket socket) in
  let finished = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        Transport.accept_loop control [ fd ] (fun c -> Unix.close c);
        Atomic.set finished true)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "loop is blocked" false (Atomic.get finished);
  let t0 = Unix.gettimeofday () in
  Transport.request_stop control;
  Thread.join t;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "woke immediately (not a 200ms poll)" true
    (elapsed < 0.15);
  Transport.close_listener (Transport.Unix_socket socket) fd;
  Transport.control_close control

let test_bounded_reader () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rd = Transport.reader a in
  let payload = String.make 100 'x' in
  ignore
    (Unix.write_substring b ("hello\n" ^ payload ^ "rest\n") 0
       (6 + String.length payload + 5));
  (match Transport.read_line rd with
   | Ok "hello" -> ()
   | _ -> Alcotest.fail "first line");
  (match Transport.read_exact rd 100 with
   | Ok s -> Alcotest.(check string) "exact payload" payload s
   | Error _ -> Alcotest.fail "read_exact failed");
  (match Transport.read_line rd with
   | Ok "rest" -> ()
   | _ -> Alcotest.fail "line after payload");
  (* an over-long line is an overflow, not a truncated success *)
  let big = String.make 600 'y' ^ "\n" in
  ignore (Unix.write_substring b big 0 (String.length big));
  (match Transport.read_line ~max:512 rd with
   | Error Transport.Overflow -> ()
   | _ -> Alcotest.fail "oversized line not rejected");
  Unix.close a;
  Unix.close b

(* --- admission --------------------------------------------------------------- *)

let test_admission_quota_bucket () =
  let clock = ref 0.0 in
  let t =
    Admission.create ~quota_burst:2 ~quota_refill:0.5 ~now:(fun () -> !clock) ()
  in
  let admit client =
    match Admission.admit t ~client with
    | Admission.Admit ticket ->
      Admission.release ticket;
      Ok ()
    | Admission.Reject { retry_after } -> Error retry_after
  in
  Alcotest.(check bool) "burst 1 admitted" true (admit "a" = Ok ());
  Alcotest.(check bool) "burst 2 admitted" true (admit "a" = Ok ());
  (* dry bucket: 1 token at 0.5/s is 2 seconds away *)
  (match admit "a" with
   | Error retry -> Alcotest.(check int) "retry_after from refill rate" 2 retry
   | Ok () -> Alcotest.fail "third burst admitted");
  Alcotest.(check int) "rejection counted" 1 (Admission.rejections t);
  (* another identity has its own bucket *)
  Alcotest.(check bool) "client b unaffected" true (admit "b" = Ok ());
  (* the clock refills the bucket *)
  clock := 2.5;
  Alcotest.(check bool) "refilled after 2.5s" true (admit "a" = Ok ());
  (match admit "a" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "refill over-credited the bucket");
  (* a zero refill rate still answers with a positive retry_after *)
  let frozen = Admission.create ~quota_burst:1 ~quota_refill:0.0 ~now:(fun () -> 0.0) () in
  ignore (Admission.admit frozen ~client:"c");
  (match Admission.admit frozen ~client:"c" with
   | Admission.Reject { retry_after } ->
     Alcotest.(check bool) "positive retry_after with no refill" true (retry_after >= 1)
   | Admission.Admit _ -> Alcotest.fail "frozen bucket admitted")

let test_admission_inflight_cap () =
  let t = Admission.create ~max_inflight:2 () in
  let take client =
    match Admission.admit t ~client with
    | Admission.Admit ticket -> ticket
    | Admission.Reject _ -> Alcotest.fail "under-cap admit rejected"
  in
  let t1 = take "a" in
  let t2 = take "b" in
  Alcotest.(check int) "two in flight" 2 (Admission.inflight t);
  (match Admission.admit t ~client:"c" with
   | Admission.Reject { retry_after } ->
     Alcotest.(check int) "cap rejection retries in 1s" 1 retry_after
   | Admission.Admit _ -> Alcotest.fail "cap not enforced");
  Admission.release t1;
  (match Admission.admit t ~client:"c" with
   | Admission.Admit t3 -> Admission.release t3
   | Admission.Reject _ -> Alcotest.fail "released capacity not reusable");
  Admission.release t2;
  (* double release is a no-op, not an underflow *)
  Admission.release t2;
  Alcotest.(check int) "all released" 0 (Admission.inflight t)

(* --- store-file persistence -------------------------------------------------- *)

let test_store_residue_persistence () =
  let registry () = Telemetry.Registry.create ~enabled:true () in
  let store : unit Session_store.t = Session_store.create ~registry:(registry ()) () in
  Session_store.put_residue store ~fingerprint:"fp-1" "body one";
  Session_store.put_residue store ~fingerprint:"fp-2" "body two";
  Alcotest.(check bool) "residue recalled" true
    (Session_store.find_residue store ~fingerprint:"fp-1" = Some "body one");
  let path = Filename.temp_file "pbse-test" ".store" in
  Session_store.save store ~path;
  (* a fresh store (a restarted server) reloads both entries *)
  let reborn : unit Session_store.t = Session_store.create ~registry:(registry ()) () in
  (match Session_store.load reborn ~path with
   | Ok n -> Alcotest.(check int) "two entries reloaded" 2 n
   | Error e -> Alcotest.failf "load failed: %s" e);
  Alcotest.(check int) "reloads counted" 2 (Session_store.reloads reborn);
  let hits_before = Session_store.hits reborn in
  Alcotest.(check bool) "reloaded residue serves" true
    (Session_store.find_residue reborn ~fingerprint:"fp-2" = Some "body two");
  Alcotest.(check bool) "reloaded hit counts as a store hit" true
    (Session_store.hits reborn > hits_before);
  (* a corrupt file is an error and leaves the store unchanged *)
  let oc = open_out path in
  output_string oc "{\"schema\": \"pbse-store/1\", \"checksum\": \"fnv1a64:0000000000000000\", \"payload\": {\"entries\": []}}";
  close_out oc;
  let third : unit Session_store.t = Session_store.create ~registry:(registry ()) () in
  (match Session_store.load third ~path with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "checksum mismatch accepted");
  Alcotest.(check int) "corrupt load loaded nothing" 0
    (Session_store.residue_size third);
  Sys.remove path;
  (* residue cap evicts LRU *)
  let small : unit Session_store.t =
    Session_store.create ~residue_cap:2 ~registry:(registry ()) ()
  in
  Session_store.put_residue small ~fingerprint:"a" "A";
  Session_store.put_residue small ~fingerprint:"b" "B";
  ignore (Session_store.find_residue small ~fingerprint:"a");
  Session_store.put_residue small ~fingerprint:"c" "C";
  Alcotest.(check bool) "LRU residue evicted" true
    (Session_store.find_residue small ~fingerprint:"b" = None);
  Alcotest.(check bool) "touched residue survived" true
    (Session_store.find_residue small ~fingerprint:"a" = Some "A")

(* --- in-process server ------------------------------------------------------- *)

let temp_socket () =
  let path = Filename.temp_file "pbse-serve" ".sock" in
  Sys.remove path;
  path

let lookup name =
  if name = "mini" then Some (mini_program (), pool_seeds ()) else None

let with_server ?store_file ?max_inflight ?quota_burst ?quota_refill f =
  let socket = temp_socket () in
  let endpoint = Transport.Unix_socket socket in
  let control = Transport.control_create () in
  let stats_cell = ref None in
  let server =
    Thread.create
      (fun () ->
        stats_cell :=
          Some
            (Serve.serve ~endpoints:[ endpoint ] ~jobs:2 ?store_file
               ?max_inflight ?quota_burst ?quota_refill ~control ~lookup ()))
      ()
  in
  let rec wait_up n =
    if n = 0 then Alcotest.fail "server socket never came up"
    else if not (Sys.file_exists socket) then begin
      Thread.delay 0.02;
      wait_up (n - 1)
    end
  in
  wait_up 250;
  let result =
    Fun.protect
      ~finally:(fun () ->
        Transport.request_stop control;
        Thread.join server;
        Transport.control_close control)
      (fun () -> f endpoint)
  in
  (result, Option.get !stats_cell)

let local_json () =
  (* same recipe as the server: a fresh runtime over a private enabled
     registry, so spans registered by other suites in the process-global
     registry don't leak into the baseline *)
  let config = Driver.default_config in
  let runtime =
    Pbse.Runtime.create
      ~registry:(Pbse_telemetry.Telemetry.Registry.create ~enabled:true ())
      ~rng_seed:config.Driver.rng_seed
      ~inject:config.Driver.robust.Driver.inject
      ~max_strikes:config.Driver.robust.Driver.max_strikes
      ~prefix_cap:config.Driver.solver.Driver.prefix_cap ()
  in
  let pool =
    Driver.run_pool ~runtime (mini_program ()) ~seeds:(pool_seeds ()) ~deadline
  in
  Report.to_json
    (Driver.pool_run_report
       ~meta:
         [
           ("target", "mini");
           ("seed", "pool");
           ("deadline", string_of_int deadline);
         ]
       pool)

let v2_line ?id ?client ?(progress = false) () =
  Protocol.render_request
    {
      base_request with
      Protocol.rq_id = id;
      rq_client = client;
      rq_progress = progress;
    }

let expect_body label expected = function
  | Ok body -> Alcotest.(check string) label expected body
  | Error e ->
    Alcotest.failf "%s failed: %s: %s" label e.Serve.err_code e.Serve.err_message

let test_serve_v2_v1_identity_and_progress () =
  let expected = local_json () in
  let ((), stats) =
    with_server (fun endpoint ->
        (* cold request with progress: frames stream at round barriers,
           then the report *)
        let rounds = ref [] in
        expect_body "progress response" expected
          (Serve.request ~connect:endpoint
             ~on_progress:(fun r -> rounds := r :: !rounds)
             (v2_line ~id:"t1" ~progress:true ()));
        Alcotest.(check bool) "saw progress frames" true (!rounds <> []);
        Alcotest.(check bool) "rounds count up from 1" true
          (List.rev !rounds = List.init (List.length !rounds) (fun i -> i + 1));
        (* v2 envelope, warm: identical bytes, no progress frames *)
        expect_body "v2 response" expected
          (Serve.request ~connect:endpoint (v2_line ~id:"t2" ()));
        (* deprecated v1 one-liner, same bytes *)
        expect_body "v1 response" expected
          (Serve.request ~connect:endpoint
             (Printf.sprintf "{\"target\": \"mini\", \"deadline\": %d}" deadline)))
  in
  Alcotest.(check int) "three clients" 3 stats.Serve.sv_clients;
  Alcotest.(check int) "three requests served" 3 stats.Serve.sv_requests;
  Alcotest.(check int) "no errors" 0 stats.Serve.sv_errors;
  (* requests 2 and 3 were served warm from the residue cache *)
  Alcotest.(check bool) "warm requests hit the store" true
    (stats.Serve.sv_store_hits > 0)

let expect_code label expected = function
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" label
  | Error e -> Alcotest.(check string) label expected e.Serve.err_code

let test_serve_structured_errors () =
  let ((), stats) =
    with_server (fun endpoint ->
        expect_code "malformed JSON" "bad-json"
          (Serve.request ~connect:endpoint "{\"target\": ");
        expect_code "unknown envelope field" "bad-request"
          (Serve.request ~connect:endpoint
             "{\"pbse\": 2, \"bogus\": 1, \"params\": {\"target\": \"mini\"}}");
        expect_code "duplicate envelope field" "bad-request"
          (Serve.request ~connect:endpoint
             "{\"pbse\": 2, \"id\": \"a\", \"id\": \"b\", \"params\": {\"target\": \"mini\"}}");
        expect_code "future version" "unsupported-version"
          (Serve.request ~connect:endpoint
             "{\"pbse\": 3, \"params\": {\"target\": \"mini\"}}");
        expect_code "unknown target" "unknown-target"
          (Serve.request ~connect:endpoint
             "{\"pbse\": 2, \"params\": {\"target\": \"nosuch\"}}");
        expect_code "unknown pool scheduler" "unknown-scheduler"
          (Serve.request ~connect:endpoint
             "{\"pbse\": 2, \"params\": {\"target\": \"mini\", \"pool_scheduler\": \"nosuch\"}}");
        (* an oversized request line is answered, structured, not dropped *)
        let huge =
          Printf.sprintf "{\"pbse\": 2, \"params\": {\"target\": \"mini\", \"scheduler\": %S}}"
            (String.make (Protocol.max_line + 64) 'x')
        in
        expect_code "oversized request" "oversized-request"
          (Serve.request ~connect:endpoint huge);
        (* after every error the server still serves a real campaign *)
        expect_body "pool healthy after errors" (local_json ())
          (Serve.request ~connect:endpoint (v2_line ())))
  in
  Alcotest.(check int) "errors counted" 7 stats.Serve.sv_errors;
  Alcotest.(check int) "one success" 1 stats.Serve.sv_requests

let test_serve_quota_rejection () =
  let ((), stats) =
    with_server ~quota_burst:1 (fun endpoint ->
        expect_body "first request admitted" (local_json ())
          (Serve.request ~connect:endpoint (v2_line ~client:"c1" ()));
        (match Serve.request ~connect:endpoint (v2_line ~client:"c1" ()) with
         | Ok _ -> Alcotest.fail "burst of 2 admitted under quota_burst 1"
         | Error e ->
           Alcotest.(check string) "over-capacity code" "over-capacity"
             e.Serve.err_code;
           Alcotest.(check bool) "structured retry_after" true
             (match e.Serve.err_retry_after with Some s -> s >= 1 | None -> false));
        (* another client identity has its own bucket — and the pool is
           healthy after the rejection *)
        expect_body "other client admitted" (local_json ())
          (Serve.request ~connect:endpoint (v2_line ~client:"c2" ())))
  in
  Alcotest.(check int) "one rejection" 1 stats.Serve.sv_rejections;
  Alcotest.(check int) "two served" 2 stats.Serve.sv_requests

let test_serve_mid_request_disconnect () =
  let ((), stats) =
    with_server (fun endpoint ->
        (* connect, send a valid request, hang up immediately *)
        (match Transport.connect endpoint with
         | Error e -> Alcotest.failf "connect failed: %s" e
         | Ok fd ->
           let line = v2_line ~progress:true () ^ "\n" in
           ignore (Unix.write_substring fd line 0 (String.length line));
           Unix.close fd);
        (* the abandoned campaign completes in the background; the pool
           serves the next client the same bytes *)
        let expected = local_json () in
        expect_body "pool healthy after disconnect" expected
          (Serve.request ~connect:endpoint (v2_line ()));
        (* by the time that response was written the residue was cached,
           so a third request is served warm from the store *)
        expect_body "warm after disconnect" expected
          (Serve.request ~connect:endpoint (v2_line ())))
  in
  Alcotest.(check int) "all connections counted" 3 stats.Serve.sv_clients;
  Alcotest.(check bool) "campaign cached despite disconnect" true
    (stats.Serve.sv_store_hits > 0)

let test_serve_store_file_restart () =
  let store_file = Filename.temp_file "pbse-serve" ".store" in
  Sys.remove store_file;
  let expected = local_json () in
  let ((), cold) =
    with_server ~store_file (fun endpoint ->
        expect_body "cold boot" expected
          (Serve.request ~connect:endpoint (v2_line ())))
  in
  Alcotest.(check int) "cold boot reloaded nothing" 0 cold.Serve.sv_store_reloads;
  Alcotest.(check bool) "store file written" true (Sys.file_exists store_file);
  (* the restarted server serves the same bytes from the reloaded
     residue — a warm cache that survived the "deploy" *)
  let ((), warm) =
    with_server ~store_file (fun endpoint ->
        expect_body "warm reboot" expected
          (Serve.request ~connect:endpoint (v2_line ())))
  in
  Alcotest.(check bool) "residues reloaded at boot" true
    (warm.Serve.sv_store_reloads > 0);
  Alcotest.(check bool) "warm reboot hit the store" true
    (warm.Serve.sv_store_hits > 0);
  Sys.remove store_file;
  try Sys.remove (store_file ^ ".bak") with Sys_error _ -> ()

(* A fake pre-v2 server: speaks only the v1 one-liner. The v2 client
   must notice the v1 error to its envelope, downgrade, and succeed. *)
let test_client_v1_fallback () =
  let socket = temp_socket () in
  let endpoint = Transport.Unix_socket socket in
  let listen_fd = Transport.listen endpoint in
  let body = "{\"schema\":\"pbse-report/1\",\"fake\":1}" in
  let server =
    Thread.create
      (fun () ->
        (* serve exactly two connections, v1-only *)
        for _ = 1 to 2 do
          let fd, _ = Unix.accept listen_fd in
          let rd = Transport.reader fd in
          (match Transport.read_line rd with
           | Ok line ->
             let reply =
               match Json.parse line with
               | Ok json
                 when Option.bind (Json.member "target" json) Json.to_str
                      <> None ->
                 Protocol.render_v1_ok_header (String.length body) ^ body
               | _ -> Protocol.render_v1_error "request needs a \"target\" field"
             in
             ignore (Unix.write_substring fd reply 0 (String.length reply))
           | Error _ -> ());
          Unix.close fd
        done)
      ()
  in
  let result = Serve.request ~connect:endpoint (v2_line ()) in
  Thread.join server;
  Transport.close_listener endpoint listen_fd;
  (match result with
   | Ok got -> Alcotest.(check string) "fallback served the v1 body" body got
   | Error e ->
     Alcotest.failf "fallback failed: %s: %s" e.Serve.err_code e.Serve.err_message)

let suite =
  [
    Alcotest.test_case "v2 envelope roundtrip" `Quick test_envelope_roundtrip;
    Alcotest.test_case "v2 strict parse edges" `Quick test_envelope_strictness;
    Alcotest.test_case "v1 lenient compat parse" `Quick test_v1_lenient_compat;
    Alcotest.test_case "v2 -> v1 downgrade" `Quick test_downgrade;
    Alcotest.test_case "response frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "endpoint parsing" `Quick test_endpoint_parsing;
    Alcotest.test_case "self-pipe wakeup" `Quick test_self_pipe_wakeup;
    Alcotest.test_case "bounded reader" `Quick test_bounded_reader;
    Alcotest.test_case "admission quota bucket" `Quick test_admission_quota_bucket;
    Alcotest.test_case "admission in-flight cap" `Quick test_admission_inflight_cap;
    Alcotest.test_case "store residue persistence" `Quick
      test_store_residue_persistence;
    Alcotest.test_case "serve v2/v1 identity + progress" `Slow
      test_serve_v2_v1_identity_and_progress;
    Alcotest.test_case "serve structured errors" `Slow test_serve_structured_errors;
    Alcotest.test_case "serve quota rejection" `Slow test_serve_quota_rejection;
    Alcotest.test_case "serve mid-request disconnect" `Slow
      test_serve_mid_request_disconnect;
    Alcotest.test_case "serve store-file restart" `Slow test_serve_store_file_restart;
    Alcotest.test_case "client v1 fallback" `Quick test_client_v1_fallback;
  ]
