open Pbse_phase
module Bbv = Pbse_concolic.Bbv
module Rng = Pbse_util.Rng

(* --- k-means --------------------------------------------------------------- *)

let vec l = Array.of_list l

let test_kmeans_single_cluster () =
  let vectors = [| vec [ (0, 1.0) ]; vec [ (0, 1.0) ]; vec [ (0, 1.0) ] |] in
  let c = Kmeans.cluster (Rng.create 1) ~k:1 ~dim:1 vectors in
  Alcotest.(check (array int)) "all in cluster 0" [| 0; 0; 0 |] c.Kmeans.assignment;
  Alcotest.(check (float 1e-9)) "zero inertia" 0.0 c.Kmeans.inertia

let test_kmeans_separates_two_groups () =
  let a = vec [ (0, 1.0) ] and b = vec [ (5, 1.0) ] in
  let vectors = [| a; b; a; b; a; b |] in
  let c = Kmeans.cluster (Rng.create 3) ~k:2 ~dim:6 vectors in
  let c0 = c.Kmeans.assignment.(0) in
  let c1 = c.Kmeans.assignment.(1) in
  Alcotest.(check bool) "two distinct clusters" true (c0 <> c1);
  Alcotest.(check (array int)) "alternating assignment" [| c0; c1; c0; c1; c0; c1 |]
    c.Kmeans.assignment;
  Alcotest.(check (float 1e-9)) "perfect separation" 0.0 c.Kmeans.inertia

let test_kmeans_deterministic () =
  let vectors =
    Array.init 20 (fun i -> vec [ (i mod 4, 1.0); (5 + (i mod 3), 0.5) ])
  in
  let c1 = Kmeans.cluster (Rng.create 42) ~k:3 ~dim:8 vectors in
  let c2 = Kmeans.cluster (Rng.create 42) ~k:3 ~dim:8 vectors in
  Alcotest.(check (array int)) "same assignment" c1.Kmeans.assignment c2.Kmeans.assignment

let test_kmeans_rejects_bad_input () =
  let check_raises name f =
    Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  check_raises "k=0" (fun () -> Kmeans.cluster (Rng.create 1) ~k:0 ~dim:1 [| vec [] |]);
  check_raises "no vectors" (fun () -> Kmeans.cluster (Rng.create 1) ~k:1 ~dim:1 [||]);
  check_raises "dim=0" (fun () -> Kmeans.cluster (Rng.create 1) ~k:1 ~dim:0 [| vec [] |])

let prop_kmeans_assignment_in_range =
  QCheck.Test.make ~count:100 ~name:"kmeans assignments stay in [0, k)"
    QCheck.(make Gen.(triple (int_range 1 6) (int_range 1 30) (int_range 0 10000)))
    (fun (k, n, seed) ->
      let vectors =
        Array.init n (fun i -> vec [ (i mod 5, float_of_int (i mod 7) /. 7.0) ])
      in
      let c = Kmeans.cluster (Rng.create seed) ~k ~dim:5 vectors in
      Array.for_all (fun a -> a >= 0 && a < k) c.Kmeans.assignment)

(* --- phase division --------------------------------------------------------- *)

(* Craft BBVs imitating two regimes: intervals 0..9 dominated by block 1
   (a loop: the trap), intervals 10..14 spread over distinct blocks. *)
let make_bbv index counts coverage : Bbv.t =
  let counts = List.sort (fun (a, _) (b, _) -> Int.compare a b) counts in
  {
    Bbv.index;
    t_start = index * 100;
    t_end = (index * 100) + 100;
    counts = Array.of_list counts;
    total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts;
    coverage;
  }

let two_regime_bbvs () =
  let looping = List.init 10 (fun i -> make_bbv i [ (1, 90); (2, 10) ] 20) in
  let exploring = List.init 5 (fun i -> make_bbv (10 + i) [ (10 + i, 50) ] (30 + (i * 10))) in
  looping @ exploring

let test_divide_finds_trap () =
  let division = Phase.divide (Rng.create 7) (two_regime_bbvs ()) in
  Alcotest.(check bool) "at least one trap" true (division.Phase.trap_count >= 1);
  (* the looping regime must be a trap phase *)
  let looping_cluster = division.Phase.assignment.(0) in
  let trap_of_looping =
    List.exists
      (fun p -> p.Phase.pid = looping_cluster && p.Phase.trap)
      division.Phase.phases
  in
  Alcotest.(check bool) "looping cluster is a trap" true trap_of_looping

let test_divide_phases_ordered_by_time () =
  let division = Phase.divide (Rng.create 7) (two_regime_bbvs ()) in
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.Phase.first_vtime <= b.Phase.first_vtime && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true (ordered division.Phase.phases)

let test_trap_threshold () =
  Alcotest.(check int) "minimum 2" 2 (Phase.trap_run_threshold 10);
  Alcotest.(check int) "5 percent" 10 (Phase.trap_run_threshold 200)

let test_divide_empty_is_one_phase () =
  (* [divide] is total: no BBVs degrades to a single non-trap phase so
     the driver can still schedule everything in one queue *)
  let division = Phase.divide (Rng.create 1) [] in
  Alcotest.(check int) "k" 1 division.Phase.k;
  Alcotest.(check int) "one phase" 1 (List.length division.Phase.phases);
  Alcotest.(check int) "no traps" 0 division.Phase.trap_count;
  (match division.Phase.phases with
   | [ p ] -> Alcotest.(check bool) "not trap" false p.Phase.trap
   | _ -> Alcotest.fail "expected exactly one phase");
  (* every interval maps to the single phase *)
  Alcotest.(check (option int)) "interval mapped" (Some 0)
    (Phase.phase_of_interval division [] 17)

let test_phase_of_interval () =
  let bbvs = two_regime_bbvs () in
  let division = Phase.divide (Rng.create 7) bbvs in
  (match Phase.phase_of_interval division bbvs 0 with
   | Some pid -> Alcotest.(check int) "interval 0 in looping cluster"
                   division.Phase.assignment.(0) pid
   | None -> Alcotest.fail "interval 0 should map");
  (* an unrecorded later interval maps to the nearest earlier one *)
  match Phase.phase_of_interval division bbvs 100 with
  | Some pid ->
    Alcotest.(check int) "nearest earlier" division.Phase.assignment.(14) pid
  | None -> Alcotest.fail "interval 100 should map backwards"

let test_render_strip () =
  let division = Phase.divide (Rng.create 7) (two_regime_bbvs ()) in
  let strip = Phase.render_strip division in
  Alcotest.(check int) "one char per bbv" 15 (String.length strip);
  Alcotest.(check bool) "has uppercase trap letters" true
    (String.exists (fun c -> c >= 'A' && c <= 'Z') strip)

(* The paper's Fig. 4 claim: adding the coverage element finds at least as
   many trap phases as plain BBVs on executions whose coverage stalls
   inside loops. *)
let test_coverage_mode_at_least_as_many_traps () =
  (* loop regime with *stalled* coverage vs exploration with rising
     coverage; the BBV profiles of the two loop bursts are identical so
     plain BBVs merge them with the exploration in-between *)
  let burst1 = List.init 6 (fun i -> make_bbv i [ (1, 80); (2, 20) ] 20) in
  let explore = List.init 3 (fun i -> make_bbv (6 + i) [ (30 + i, 10) ] (40 + (i * 15))) in
  let burst2 = List.init 6 (fun i -> make_bbv (9 + i) [ (1, 80); (2, 20) ] 90) in
  let bbvs = burst1 @ explore @ burst2 in
  let plain = Phase.divide ~mode:Phase.Bbv_only (Rng.create 11) bbvs in
  let augmented = Phase.divide ~mode:Phase.Bbv_with_coverage (Rng.create 11) bbvs in
  Alcotest.(check bool)
    (Printf.sprintf "augmented (%d) >= plain (%d)" augmented.Phase.trap_count
       plain.Phase.trap_count)
    true
    (augmented.Phase.trap_count >= plain.Phase.trap_count)

let suite =
  [
    Alcotest.test_case "kmeans single cluster" `Quick test_kmeans_single_cluster;
    Alcotest.test_case "kmeans separates groups" `Quick test_kmeans_separates_two_groups;
    Alcotest.test_case "kmeans deterministic" `Quick test_kmeans_deterministic;
    Alcotest.test_case "kmeans rejects bad input" `Quick test_kmeans_rejects_bad_input;
    Alcotest.test_case "divide finds trap" `Quick test_divide_finds_trap;
    Alcotest.test_case "phases ordered by time" `Quick test_divide_phases_ordered_by_time;
    Alcotest.test_case "trap threshold" `Quick test_trap_threshold;
    Alcotest.test_case "divide empty is one phase" `Quick
      test_divide_empty_is_one_phase;
    Alcotest.test_case "phase of interval" `Quick test_phase_of_interval;
    Alcotest.test_case "render strip" `Quick test_render_strip;
    Alcotest.test_case "coverage mode finds more traps" `Quick
      test_coverage_mode_at_least_as_many_traps;
    QCheck_alcotest.to_alcotest prop_kmeans_assignment_in_range;
  ]
