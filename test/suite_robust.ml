(* Robustness pipeline tests: fault-injection plans, solver retry
   escalation, quarantine, and crash-freedom of the supervised driver
   under injected faults (docs/robustness.md). *)

module Driver = Pbse.Driver
module Registry = Pbse_targets.Registry
module Executor = Pbse_exec.Executor
module Bug = Pbse_exec.Bug
module Solver = Pbse_smt.Solver
module Expr = Pbse_smt.Expr
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Quarantine = Pbse_robust.Quarantine
module T = Pbse_ir.Types

(* --- fault log ------------------------------------------------------------ *)

let test_fault_log () =
  let log = Fault.log_create () in
  Alcotest.(check string) "empty summary" "no faults" (Fault.summary log);
  Fault.record log ~vtime:1 Fault.Exec_abort;
  Fault.record log ~vtime:2 Fault.Solver_unknown;
  Fault.record log ~detail:"again" ~vtime:3 Fault.Solver_unknown;
  Alcotest.(check int) "count" 2 (Fault.count log Fault.Solver_unknown);
  Alcotest.(check int) "total" 3 (Fault.total log);
  (* summary renders kinds in the fixed taxonomy order *)
  Alcotest.(check string) "summary" "solver-unknown=2 exec-abort=1"
    (Fault.summary log);
  (match Fault.recent log with
   | [ a; b; c ] ->
     Alcotest.(check int) "oldest first" 1 a.Fault.vtime;
     Alcotest.(check int) "middle" 2 b.Fault.vtime;
     Alcotest.(check string) "detail kept" "again" c.Fault.detail
   | l -> Alcotest.fail (Printf.sprintf "expected 3 recent, got %d" (List.length l)))

let test_fault_log_recent_capped () =
  let log = Fault.log_create () in
  for i = 1 to 1000 do
    Fault.record log ~vtime:i Fault.Mem_pressure
  done;
  Alcotest.(check int) "total uncapped" 1000 (Fault.total log);
  let recent = Fault.recent log in
  Alcotest.(check bool) "recent capped" true (List.length recent <= 256);
  (* the cap keeps the newest entries *)
  (match List.rev recent with
   | newest :: _ -> Alcotest.(check int) "newest kept" 1000 newest.Fault.vtime
   | [] -> Alcotest.fail "recent empty")

(* --- quarantine ----------------------------------------------------------- *)

let test_quarantine_eviction () =
  let q = Quarantine.create ~max_strikes:3 () in
  Alcotest.(check bool) "strike 1" false (Quarantine.strike q 42);
  Alcotest.(check bool) "strike 2" false (Quarantine.strike q 42);
  Alcotest.(check int) "strikes so far" 2 (Quarantine.strikes_of q 42);
  Alcotest.(check bool) "strike 3 evicts" true (Quarantine.strike q 42);
  Alcotest.(check int) "evicted" 1 (Quarantine.evicted q);
  Alcotest.(check int) "record cleared" 0 (Quarantine.strikes_of q 42);
  Alcotest.(check int) "total strikes survive eviction" 3
    (Quarantine.total_strikes q);
  (* independent states have independent strike counts *)
  Alcotest.(check bool) "other state" false (Quarantine.strike q 7);
  Alcotest.(check int) "other strikes" 1 (Quarantine.strikes_of q 7)

let test_quarantine_min_strikes () =
  (* max_strikes is clamped to >= 1: the first strike evicts *)
  let q = Quarantine.create ~max_strikes:0 () in
  Alcotest.(check bool) "immediate eviction" true (Quarantine.strike q 1);
  Alcotest.(check int) "evicted" 1 (Quarantine.evicted q)

let test_quarantine_epoch_site_persistence () =
  let q = Quarantine.create ~max_strikes:3 () in
  ignore (Quarantine.strike q ~site:100 1);
  ignore (Quarantine.strike q ~site:100 1);
  Alcotest.(check bool) "third strike evicts" true (Quarantine.strike q ~site:100 1);
  Alcotest.(check int) "site eviction recorded" 1 (Quarantine.site_evictions q 100);
  (* a strike left open on another state, then a new epoch *)
  ignore (Quarantine.strike q ~site:200 2);
  Quarantine.epoch q;
  Alcotest.(check int) "per-state strikes cleared" 0 (Quarantine.strikes_of q 2);
  Alcotest.(check int) "totals persist" 4 (Quarantine.total_strikes q);
  Alcotest.(check int) "evictions persist" 1 (Quarantine.evicted q);
  Alcotest.(check int) "site record persists" 1 (Quarantine.site_evictions q 100);
  (* the recorded site lowers the effective limit: two strikes now evict *)
  Alcotest.(check bool) "bad-site strike 1" false (Quarantine.strike q ~site:100 9);
  Alcotest.(check bool) "bad-site strike 2 evicts" true
    (Quarantine.strike q ~site:100 9);
  (* a fresh site still gets the full limit *)
  Alcotest.(check bool) "fresh-site strike 1" false (Quarantine.strike q ~site:300 10);
  Alcotest.(check bool) "fresh-site strike 2" false (Quarantine.strike q ~site:300 10);
  Alcotest.(check bool) "fresh-site strike 3 evicts" true
    (Quarantine.strike q ~site:300 10)

(* --- inject plans --------------------------------------------------------- *)

let test_inject_parse_roundtrip () =
  match Inject.parse "seed=7,solver=0.2,abort=0.1,mem=0.05" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check int) "seed" 7 plan.Inject.seed;
    Alcotest.(check (float 1e-9)) "solver" 0.2 plan.Inject.solver_unknown_rate;
    Alcotest.(check (float 1e-9)) "abort" 0.1 plan.Inject.exec_abort_rate;
    Alcotest.(check (float 1e-9)) "mem" 0.05 plan.Inject.mem_pressure_rate;
    Alcotest.(check bool) "active" true (Inject.is_active plan);
    (match Inject.parse (Inject.to_string plan) with
     | Ok plan' -> Alcotest.(check bool) "round-trips" true (plan = plan')
     | Error e -> Alcotest.fail ("round-trip: " ^ e))

let test_inject_parse_defaults () =
  (match Inject.parse "solver=0.5" with
   | Ok plan ->
     Alcotest.(check int) "default seed" 1 plan.Inject.seed;
     Alcotest.(check (float 1e-9)) "abort default" 0.0 plan.Inject.exec_abort_rate
   | Error e -> Alcotest.fail e);
  match Inject.parse "" with
  | Ok plan -> Alcotest.(check bool) "empty plan inactive" false (Inject.is_active plan)
  | Error e -> Alcotest.fail e

let test_inject_parse_errors () =
  let rejects spec =
    match Inject.parse spec with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" spec)
    | Error _ -> ()
  in
  rejects "solver=1.5";
  rejects "solver=-0.1";
  rejects "bogus=1";
  rejects "seed=x";
  rejects "solver";
  rejects "solver=0.1=0.2"

let test_inject_streams_deterministic () =
  let plan =
    match Inject.parse "seed=11,solver=0.3,abort=0.2,mem=0.1" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let draw () =
    let t = Inject.create plan in
    let seq = ref [] in
    for _ = 1 to 200 do
      seq :=
        Inject.fire_mem_pressure t :: Inject.fire_exec_abort t
        :: Inject.fire_solver_unknown t :: !seq
    done;
    (List.rev !seq, Inject.fired t)
  in
  let s1, f1 = draw () in
  let s2, f2 = draw () in
  Alcotest.(check bool) "same decision sequence" true (s1 = s2);
  Alcotest.(check int) "same fire count" f1 f2;
  Alcotest.(check bool) "some fired" true (f1 > 0);
  Alcotest.(check bool) "not all fired" true (f1 < 600)

let test_inject_zero_rate_never_fires () =
  let t = Inject.create Inject.none in
  for _ = 1 to 100 do
    Alcotest.(check bool) "solver silent" false (Inject.fire_solver_unknown t);
    Alcotest.(check bool) "abort silent" false (Inject.fire_exec_abort t);
    Alcotest.(check bool) "mem silent" false (Inject.fire_mem_pressure t)
  done;
  Alcotest.(check int) "nothing fired" 0 (Inject.fired t)

let test_inject_concolic_channel () =
  (match Inject.parse "seed=3,concolic=0.5" with
   | Error e -> Alcotest.fail e
   | Ok plan ->
     Alcotest.(check (float 1e-9)) "rate parsed" 0.5 plan.Inject.concolic_drop_rate;
     Alcotest.(check bool) "active" true (Inject.is_active plan);
     (match Inject.parse (Inject.to_string plan) with
      | Ok plan' -> Alcotest.(check bool) "round-trips" true (plan = plan')
      | Error e -> Alcotest.fail ("round-trip: " ^ e));
     let t = Inject.create plan in
     let fired = ref 0 in
     for _ = 1 to 200 do
       if Inject.fire_concolic_drop t then incr fired
     done;
     Alcotest.(check bool) "some fired" true (!fired > 0);
     Alcotest.(check bool) "not all fired" true (!fired < 200);
     Alcotest.(check int) "fired counted" !fired (Inject.fired t));
  (* the concolic stream is split off last: adding the clause must not
     shift the decisions of the existing channels *)
  let draw spec =
    let plan = match Inject.parse spec with Ok p -> p | Error e -> failwith e in
    let t = Inject.create plan in
    let seq = ref [] in
    for _ = 1 to 100 do
      seq :=
        Inject.fire_mem_pressure t :: Inject.fire_exec_abort t
        :: Inject.fire_solver_unknown t :: !seq
    done;
    !seq
  in
  Alcotest.(check bool) "other channels unshifted" true
    (draw "seed=11,solver=0.3,abort=0.2,mem=0.1"
    = draw "seed=11,solver=0.3,abort=0.2,mem=0.1,concolic=0.9")

(* --- solver retry escalation ---------------------------------------------- *)

(* A satisfiable sum-of-bytes equality: hopeless under a 10-unit budget,
   solvable once escalation grows the allowance a few doublings later. *)
let hard_query () =
  let rec sum i acc =
    if i >= 8 then acc else sum (i + 1) (Expr.bin T.Add acc (Expr.read i))
  in
  [ Expr.bin T.Eq (sum 1 (Expr.read 0)) (Expr.const 900L) ]

let test_solver_retry_escalates_to_sat () =
  (* budget 30 admits the per-query expression walk (so cache hits can
     answer) but is hopeless for the actual search *)
  let solver = Solver.create ~budget:30 ~retry_cap:1_000_000 () in
  Alcotest.(check int) "cap respected" 1_000_000 (Solver.retry_cap solver);
  let q = hard_query () in
  (match Solver.check solver q with
   | Solver.Unknown, _ -> ()
   | _ -> Alcotest.fail "expected unknown on first attempt");
  let rec retry n =
    if n > 40 then Alcotest.fail "never resolved under escalation"
    else
      match Solver.check solver q with
      | Solver.Sat model, _ ->
        let sum = ref 0 in
        for i = 0 to 7 do
          sum := !sum + Pbse_smt.Model.get model i
        done;
        Alcotest.(check int) "model satisfies query" 900 !sum;
        n
      | Solver.Unknown, _ -> retry (n + 1)
      | Solver.Unsat, _ -> Alcotest.fail "query is satisfiable"
  in
  let attempts = retry 1 in
  let st = Solver.stats solver in
  Alcotest.(check bool) "took a few doublings" true (attempts >= 3);
  Alcotest.(check int) "every reissue counted" attempts st.Solver.retries;
  Alcotest.(check bool) "budgets escalated" true (st.Solver.escalations >= 3);
  Alcotest.(check int) "resolution retired the entry" 1 st.Solver.retry_resolved;
  (* once resolved the escalation record is gone: a fresh identical query
     is answered from the query cache, not the retry table *)
  (match Solver.check solver q with
   | Solver.Sat _, _ -> ()
   | _ -> Alcotest.fail "expected cached sat");
  Alcotest.(check int) "no further retries" attempts (Solver.stats solver).Solver.retries

let test_solver_retry_cap_bounds_escalation () =
  (* cap at 4x budget: 10 -> 20 -> 40, then the limit stays pinned *)
  let solver = Solver.create ~budget:10 ~retry_cap:40 () in
  let q = hard_query () in
  for _ = 1 to 10 do
    match Solver.check solver q with
    | Solver.Unknown, work ->
      Alcotest.(check bool) "work bounded by cap" true (work <= 40 + 64)
    | _ -> Alcotest.fail "must stay unknown below the cap"
  done;
  let st = Solver.stats solver in
  Alcotest.(check int) "reissues counted" 9 st.Solver.retries;
  Alcotest.(check int) "escalations stop at the cap" 2 st.Solver.escalations;
  Alcotest.(check int) "nothing resolved" 0 st.Solver.retry_resolved

let test_solver_retry_deterministic () =
  let run () =
    let solver = Solver.create ~budget:10 ~retry_cap:1_000_000 () in
    let q = hard_query () in
    let rec retry n =
      if n > 40 then n
      else
        match Solver.check solver q with
        | Solver.Sat _, _ -> n
        | _, _ -> retry (n + 1)
    in
    let attempts = retry 1 in
    let st = Solver.stats solver in
    (attempts, st.Solver.retries, st.Solver.escalations, st.Solver.work)
  in
  Alcotest.(check bool) "identical escalation trajectory" true (run () = run ())

(* --- driver under injection ------------------------------------------------ *)

let mini_program () = Pbse_lang.Frontend.compile Suite_core.mini_target_src
let mini_seed = Suite_core.mini_seed

let plan_of spec =
  match Inject.parse spec with Ok p -> p | Error e -> failwith e

let run_injected ?(deadline = 120_000) ?(max_strikes = 2) spec =
  let config =
    Driver.(
      with_robust
        (fun r -> { r with inject = plan_of spec; max_strikes })
        default_config)
  in
  Driver.run ~config (mini_program ()) ~seed:(mini_seed ()) ~deadline

let test_driver_quarantines_under_total_solver_failure () =
  (* every solver query gives up: lazily forked seedStates can never
     verify, so each should strike out and be quarantined -- and the run
     must still terminate normally *)
  let report = run_injected ~deadline:60_000 "seed=3,solver=1.0" in
  Alcotest.(check bool) "injected unknowns recorded" true
    (Fault.count report.Driver.faults Fault.Solver_injected > 0);
  Alcotest.(check bool) "states quarantined" true (report.Driver.quarantined > 0);
  Alcotest.(check bool) "strikes recorded" true
    (report.Driver.strikes >= 2 * report.Driver.quarantined)

let test_driver_contains_concolic_drops () =
  (* dropped lazy-fork seedStates are contained faults: the run completes
     and records every drop *)
  let report = run_injected ~deadline:60_000 "seed=4,concolic=0.6" in
  Alcotest.(check bool) "drops recorded" true
    (Fault.count report.Driver.faults Fault.Concolic_injected > 0);
  (* same plan, same drops: the concolic channel is deterministic too *)
  let again = run_injected ~deadline:60_000 "seed=4,concolic=0.6" in
  Alcotest.(check int) "deterministic drop count"
    (Fault.count report.Driver.faults Fault.Concolic_injected)
    (Fault.count again.Driver.faults Fault.Concolic_injected)

let test_shared_quarantine_across_runs () =
  (* one quarantine threaded through consecutive runs (as run_pool does):
     per-run reports are deltas and site records carry over *)
  let q = Quarantine.create ~max_strikes:2 () in
  let config =
    Driver.(
      with_robust (fun r -> { r with inject = plan_of "seed=3,solver=1.0" }) default_config)
  in
  let run () =
    Driver.run ~config ~quarantine:q (mini_program ()) ~seed:(mini_seed ())
      ~deadline:60_000
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "first run evicts" true (a.Driver.quarantined > 0);
  (* per-run values are deltas: they sum to the quarantine's lifetime totals *)
  Alcotest.(check int) "evictions sum to total"
    (Quarantine.evicted q)
    (a.Driver.quarantined + b.Driver.quarantined);
  Alcotest.(check int) "strikes sum to total"
    (Quarantine.total_strikes q)
    (a.Driver.strikes + b.Driver.strikes);
  (* recorded sites lower the limit, so the second epoch never needs more
     strikes per eviction than the first *)
  Alcotest.(check bool) "site records persist" true
    (b.Driver.quarantined = 0
    || b.Driver.strikes * a.Driver.quarantined
       <= a.Driver.strikes * b.Driver.quarantined)

let test_driver_report_deterministic_under_injection () =
  let run () = run_injected "seed=9,solver=0.25,abort=0.15,mem=0.1" in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "same fault summary" (Fault.summary a.Driver.faults)
    (Fault.summary b.Driver.faults);
  Alcotest.(check bool) "same coverage samples" true
    (a.Driver.coverage_samples = b.Driver.coverage_samples);
  Alcotest.(check int) "same quarantine count" a.Driver.quarantined
    b.Driver.quarantined;
  Alcotest.(check int) "same strike count" a.Driver.strikes b.Driver.strikes;
  Alcotest.(check bool) "same bugs" true
    (List.map (fun (bug, p) -> (Bug.to_string bug, p)) a.Driver.bugs
    = List.map (fun (bug, p) -> (Bug.to_string bug, p)) b.Driver.bugs)

let test_driver_bug_dedup_survives_faults () =
  let report = run_injected ~deadline:200_000 "seed=5,solver=0.2,abort=0.1" in
  let keys = List.map (fun (bug, _) -> Bug.dedup_key bug) report.Driver.bugs in
  let uniq = List.sort_uniq compare keys in
  Alcotest.(check int) "no duplicate bug keys" (List.length uniq) (List.length keys)

let sweep_plan () =
  (* CI can pin a different plan via PBSE_INJECT *)
  let spec =
    match Sys.getenv_opt "PBSE_INJECT" with
    | Some s when String.trim s <> "" -> s
    | Some _ | None -> "seed=5,solver=0.15,abort=0.08,mem=0.05"
  in
  plan_of spec

let test_registry_sweep_never_crashes () =
  (* acceptance criterion: under a plan forcing solver Unknowns and
     executor aborts, Driver.run completes on every bundled target *)
  let plan = sweep_plan () in
  let config = Driver.(with_robust (fun r -> { r with inject = plan }) default_config) in
  let injected = ref 0 in
  List.iter
    (fun t ->
      let report =
        Driver.run ~config (Registry.program t) ~seed:(Registry.default_seed t)
          ~deadline:30_000
      in
      injected :=
        !injected
        + Fault.count report.Driver.faults Fault.Solver_injected
        + Fault.count report.Driver.faults Fault.Exec_injected_abort;
      (* coverage samples stay monotone in time and coverage *)
      let rec monotone = function
        | (t1, c1) :: ((t2, c2) :: _ as rest) ->
          t1 <= t2 && c1 <= c2 && monotone rest
        | _ -> true
      in
      Alcotest.(check bool)
        (t.Registry.name ^ " coverage monotone")
        true
        (monotone report.Driver.coverage_samples))
    Registry.all;
  Alcotest.(check bool) "plan actually fired" true (!injected > 0)

let suite =
  [
    Alcotest.test_case "fault log" `Quick test_fault_log;
    Alcotest.test_case "fault log recent capped" `Quick test_fault_log_recent_capped;
    Alcotest.test_case "quarantine eviction" `Quick test_quarantine_eviction;
    Alcotest.test_case "quarantine min strikes" `Quick test_quarantine_min_strikes;
    Alcotest.test_case "quarantine epoch and site persistence" `Quick
      test_quarantine_epoch_site_persistence;
    Alcotest.test_case "inject parse roundtrip" `Quick test_inject_parse_roundtrip;
    Alcotest.test_case "inject parse defaults" `Quick test_inject_parse_defaults;
    Alcotest.test_case "inject parse errors" `Quick test_inject_parse_errors;
    Alcotest.test_case "inject streams deterministic" `Quick
      test_inject_streams_deterministic;
    Alcotest.test_case "inject zero rate never fires" `Quick
      test_inject_zero_rate_never_fires;
    Alcotest.test_case "inject concolic channel" `Quick test_inject_concolic_channel;
    Alcotest.test_case "solver retry escalates to sat" `Quick
      test_solver_retry_escalates_to_sat;
    Alcotest.test_case "solver retry cap bounds escalation" `Quick
      test_solver_retry_cap_bounds_escalation;
    Alcotest.test_case "solver retry deterministic" `Quick
      test_solver_retry_deterministic;
    Alcotest.test_case "driver quarantines under total solver failure" `Quick
      test_driver_quarantines_under_total_solver_failure;
    Alcotest.test_case "driver contains concolic drops" `Quick
      test_driver_contains_concolic_drops;
    Alcotest.test_case "shared quarantine across runs" `Quick
      test_shared_quarantine_across_runs;
    Alcotest.test_case "driver report deterministic under injection" `Quick
      test_driver_report_deterministic_under_injection;
    Alcotest.test_case "driver bug dedup survives faults" `Quick
      test_driver_bug_dedup_survives_faults;
    Alcotest.test_case "registry sweep never crashes" `Slow
      test_registry_sweep_never_crashes;
  ]
