open Pbse_exec
module Expr = Pbse_smt.Expr
module T = Pbse_ir.Types

let test_ptr_roundtrip () =
  let p = Mem.Ptr.make 7 123 in
  Alcotest.(check int) "obj" 7 (Mem.Ptr.obj p);
  Alcotest.(check int) "off" 123 (Mem.Ptr.off p);
  Alcotest.(check bool) "null is null" true (Mem.Ptr.is_null Mem.Ptr.null);
  Alcotest.(check bool) "small ints look null" true (Mem.Ptr.is_null 42L)

let test_ptr_packing_edges () =
  (* the offset field is 40 bits wide *)
  let max_off = (1 lsl 40) - 1 in
  let p = Mem.Ptr.make 3 max_off in
  Alcotest.(check int) "max offset round-trips" max_off (Mem.Ptr.off p);
  Alcotest.(check int) "obj intact at max offset" 3 (Mem.Ptr.obj p);
  (* one past the field: masked, never a carry into the object id *)
  let p = Mem.Ptr.make 3 (max_off + 1) in
  Alcotest.(check int) "offset overflow is masked" 0 (Mem.Ptr.off p);
  Alcotest.(check int) "obj survives offset overflow" 3 (Mem.Ptr.obj p);
  (* the object id gets the remaining 24 bits *)
  let max_obj = (1 lsl 24) - 1 in
  let p = Mem.Ptr.make max_obj max_off in
  Alcotest.(check int) "max obj round-trips" max_obj (Mem.Ptr.obj p);
  Alcotest.(check int) "max offset beside max obj" max_off (Mem.Ptr.off p);
  (* object-id overflow shifts out entirely: the pointer degrades to a
     null-looking value rather than aliasing a small id *)
  let p = Mem.Ptr.make (1 lsl 24) 5 in
  Alcotest.(check int) "obj overflow wraps to 0" 0 (Mem.Ptr.obj p);
  Alcotest.(check bool) "overflowed pointer is null-like" true (Mem.Ptr.is_null p);
  (* null round-trip: obj 0 is the null object whatever the offset *)
  Alcotest.(check int) "null obj" 0 (Mem.Ptr.obj Mem.Ptr.null);
  Alcotest.(check int) "null off" 0 (Mem.Ptr.off Mem.Ptr.null);
  Alcotest.(check bool) "make 0 0 is null" true (Mem.Ptr.make 0 0 = Mem.Ptr.null);
  Alcotest.(check bool) "obj-0 with offset still null" true
    (Mem.Ptr.is_null (Mem.Ptr.make 0 77))

let prop_ptr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pointer encode/decode roundtrip"
    QCheck.(pair (int_range 1 100000) (int_range 0 1000000))
    (fun (obj, off) ->
      let p = Mem.Ptr.make obj off in
      Mem.Ptr.obj p = obj && Mem.Ptr.off p = off)

let test_alloc_and_byte_roundtrip () =
  let mem, ptr = Mem.alloc Mem.empty ~size:16 in
  Alcotest.(check (option int)) "size" (Some 16) (Mem.size_of mem ptr);
  match Mem.store mem ptr T.W1 (Expr.const 0xABL) with
  | Error _ -> Alcotest.fail "store failed"
  | Ok mem -> (
    match Mem.load mem ptr T.W1 with
    | Ok v -> Alcotest.(check (option int64)) "byte back" (Some 0xABL) (Expr.is_const v)
    | Error _ -> Alcotest.fail "load failed")

let test_little_endian_widths () =
  let mem, ptr = Mem.alloc Mem.empty ~size:16 in
  match Mem.store mem ptr T.W4 (Expr.const 0x11223344L) with
  | Error _ -> Alcotest.fail "store failed"
  | Ok mem ->
    let byte_at off =
      match Mem.load mem (Int64.add ptr (Int64.of_int off)) T.W1 with
      | Ok v -> Expr.is_const v
      | Error _ -> None
    in
    Alcotest.(check (option int64)) "byte 0 is lsb" (Some 0x44L) (byte_at 0);
    Alcotest.(check (option int64)) "byte 3 is msb" (Some 0x11L) (byte_at 3);
    (match Mem.load mem ptr T.W2 with
     | Ok v -> Alcotest.(check (option int64)) "w2" (Some 0x3344L) (Expr.is_const v)
     | Error _ -> Alcotest.fail "w2 load failed");
    (match Mem.load mem ptr T.W8 with
     | Ok v ->
       Alcotest.(check (option int64)) "w8 zero-extends" (Some 0x11223344L)
         (Expr.is_const v)
     | Error _ -> Alcotest.fail "w8 load failed")

let test_persistence_on_fork () =
  let mem, ptr = Mem.alloc Mem.empty ~size:4 in
  let mem1 =
    match Mem.store mem ptr T.W1 (Expr.const 1L) with Ok m -> m | Error _ -> assert false
  in
  let mem2 =
    match Mem.store mem ptr T.W1 (Expr.const 2L) with Ok m -> m | Error _ -> assert false
  in
  let read m =
    match Mem.load m ptr T.W1 with Ok v -> Expr.is_const v | Error _ -> None
  in
  Alcotest.(check (option int64)) "first version" (Some 1L) (read mem1);
  Alcotest.(check (option int64)) "second version" (Some 2L) (read mem2);
  Alcotest.(check (option int64)) "original untouched" (Some 0L) (read mem)

let test_symbolic_cells () =
  let mem, ptr = Mem.alloc Mem.empty ~size:4 in
  let mem =
    match Mem.store mem ptr T.W1 (Expr.read 5) with Ok m -> m | Error _ -> assert false
  in
  match Mem.load mem ptr T.W2 with
  | Ok v ->
    (* low byte symbolic, high byte zero: the value is in[5] *)
    Alcotest.(check string) "expr" "in[5]" (Expr.to_string v)
  | Error _ -> Alcotest.fail "load failed"

let expect_fault name result expected =
  match result with
  | Error fault -> Alcotest.(check string) name expected (Concrete.fault_class fault)
  | Ok _ -> Alcotest.fail (name ^ ": expected fault")

let test_faults () =
  let mem, ptr = Mem.alloc Mem.empty ~size:4 in
  expect_fault "oob read" (Mem.load mem (Int64.add ptr 4L) T.W1) "oob-read";
  expect_fault "straddling oob" (Mem.load mem (Int64.add ptr 2L) T.W4) "oob-read";
  expect_fault "oob write" (Mem.store mem (Int64.add ptr 100L) T.W1 Expr.zero) "oob-write";
  expect_fault "null" (Mem.load mem Mem.Ptr.null T.W1) "null-deref";
  expect_fault "unallocated" (Mem.load mem (Mem.Ptr.make 99 0) T.W1) "oob-read";
  (match Mem.free mem ptr with
   | Ok freed ->
     expect_fault "use after free" (Mem.load freed ptr T.W1) "use-after-free";
     (match Mem.free freed ptr with
      | Error f -> Alcotest.(check string) "double free" "bad-free" (Concrete.fault_class f)
      | Ok _ -> Alcotest.fail "double free allowed")
   | Error _ -> Alcotest.fail "free failed");
  match Mem.free mem (Int64.add ptr 1L) with
  | Error f -> Alcotest.(check string) "interior free" "bad-free" (Concrete.fault_class f)
  | Ok _ -> Alcotest.fail "interior free allowed"

let test_free_null_ok () =
  match Mem.free Mem.empty Mem.Ptr.null with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "free(null) must be a no-op"

let test_alloc_limits () =
  let mem, ptr = Mem.alloc Mem.empty ~size:(Mem.max_object_size + 1) in
  Alcotest.(check bool) "huge alloc yields null" true (Mem.Ptr.is_null ptr);
  Alcotest.(check int) "nothing allocated" 0 (Mem.object_count mem);
  let mem, ptr = Mem.alloc Mem.empty ~size:(-1) in
  Alcotest.(check bool) "negative alloc yields null" true (Mem.Ptr.is_null ptr);
  ignore mem

let test_alloc_bytes_contents () =
  let mem, ptr = Mem.alloc_bytes Mem.empty (Bytes.of_string "hi") in
  (match Mem.load mem ptr T.W1 with
   | Ok v -> Alcotest.(check (option int64)) "h" (Some 104L) (Expr.is_const v)
   | Error _ -> Alcotest.fail "load failed");
  Alcotest.(check (option int)) "size" (Some 2) (Mem.size_of mem ptr)

let prop_store_load_roundtrip =
  QCheck.Test.make ~count:300 ~name:"store/load roundtrip at every width"
    QCheck.(triple (int_range 0 12) (oneofl [ T.W1; T.W2; T.W4; T.W8 ]) int64)
    (fun (off, width, value) ->
      QCheck.assume (off + T.bytes_of_width width <= 16);
      let mem, ptr = Mem.alloc Mem.empty ~size:16 in
      let addr = Int64.add ptr (Int64.of_int off) in
      match Mem.store mem addr width (Expr.const value) with
      | Error _ -> false
      | Ok mem -> (
        match Mem.load mem addr width with
        | Error _ -> false
        | Ok v ->
          let bits = 8 * T.bytes_of_width width in
          let expected =
            if bits = 64 then value
            else Int64.logand value (Int64.sub (Int64.shift_left 1L bits) 1L)
          in
          Expr.is_const v = Some expected))

let suite =
  [
    Alcotest.test_case "ptr roundtrip" `Quick test_ptr_roundtrip;
    Alcotest.test_case "ptr packing edges" `Quick test_ptr_packing_edges;
    Alcotest.test_case "alloc and byte roundtrip" `Quick test_alloc_and_byte_roundtrip;
    Alcotest.test_case "little endian widths" `Quick test_little_endian_widths;
    Alcotest.test_case "persistence on fork" `Quick test_persistence_on_fork;
    Alcotest.test_case "symbolic cells" `Quick test_symbolic_cells;
    Alcotest.test_case "faults" `Quick test_faults;
    Alcotest.test_case "free null ok" `Quick test_free_null_ok;
    Alcotest.test_case "alloc limits" `Quick test_alloc_limits;
    Alcotest.test_case "alloc_bytes contents" `Quick test_alloc_bytes_contents;
    QCheck_alcotest.to_alcotest prop_ptr_roundtrip;
    QCheck_alcotest.to_alcotest prop_store_load_roundtrip;
  ]
