(* Crash-durability tests: snapshot serialisation (versioned, checksummed,
   byte-stable), checkpoint rotation and fallback, kill-and-resume report
   identity across every pool scheduler and jobs width, injected turn
   crashes and snapshot corruption, the turn watchdog, and the stable
   exception-detail normalization the replay contract depends on. *)

module Driver = Pbse.Driver
module Snapshot = Pbse_campaign.Snapshot
module Pool_scheduler = Pbse_campaign.Pool_scheduler
module Fault = Pbse_robust.Fault
module Inject = Pbse_robust.Inject
module Report = Pbse_telemetry.Report
module Telemetry = Pbse_telemetry.Telemetry

let mini_program = Suite_core.mini_program
let pool_seeds = Suite_campaign.pool_seeds

(* --- snapshot documents ----------------------------------------------------- *)

let sample_snapshot () =
  {
    Snapshot.sn_meta = [ ("target", "mini"); ("scheduler", "round-robin") ];
    sn_deadline = 150_000;
    sn_spent = 42_000;
    sn_rounds = 3;
    sn_parallel_turns = 6;
    sn_merge_blocks = 17;
    sn_merge_bugs = 2;
    sn_checkpoints = 2;
    sn_degrade_faults = 1;
    sn_sched_turns = 9;
    sn_sched_rotations = 3;
    sn_sched_retirements = 1;
    sn_sched_state = [ ("pos", 2) ];
    sn_pool_faults = [ ("turn-timeout", 1); ("snapshot-corrupt", 0) ];
    sn_opened = [ 1; 3 ];
    sn_counters = [ ("pool.rounds", 3); ("campaign.turns", 9) ];
    sn_slots =
      [
        {
          Snapshot.sl_ordinal = 1;
          sl_bytes = 6;
          sl_turns = 3;
          sl_granted = 30_000;
          sl_dwell = 28_000;
          sl_new_blocks = 12;
          sl_bugs = 1;
          sl_quarantined = 0;
          sl_strikes = 2;
          sl_timeouts = 1;
          sl_retired = false;
          sl_clock = 28_000;
          sl_coverage = 12;
          sl_prefix_cap = 256;
          sl_crash_draws = 3;
          sl_events =
            [
              Snapshot.Step { deadline = 10_000; budget = 10_000 };
              Snapshot.Crash "injected-crash";
              Snapshot.Step { deadline = 21_000; budget = 10_000 };
            ];
        };
        {
          Snapshot.sl_ordinal = 2;
          sl_bytes = 9;
          sl_turns = 0;
          sl_granted = 0;
          sl_dwell = 0;
          sl_new_blocks = 0;
          sl_bugs = 0;
          sl_quarantined = 0;
          sl_strikes = 0;
          sl_timeouts = 0;
          sl_retired = true;
          sl_clock = 0;
          sl_coverage = 0;
          sl_prefix_cap = -1;
          sl_crash_draws = 1;
          sl_events = [];
        };
      ];
    sn_bugs = [ { Snapshot.br_slot = 1; br_gid = 77; br_kind = "div-by-zero" } ];
  }

let test_snapshot_roundtrip_bytes () =
  let sn = sample_snapshot () in
  let doc = Snapshot.to_string sn in
  match Snapshot.of_string doc with
  | Error e -> Alcotest.fail (Snapshot.error_message e)
  | Ok parsed ->
    (* parse then re-render reproduces the document byte for byte — the
       checksum guards exactly these bytes *)
    Alcotest.(check string) "re-serialises byte-identically" doc
      (Snapshot.to_string parsed);
    Alcotest.(check int) "spent survives" sn.Snapshot.sn_spent
      parsed.Snapshot.sn_spent;
    Alcotest.(check int) "slots survive" 2 (List.length parsed.Snapshot.sn_slots);
    Alcotest.(check (list int)) "opened order survives" [ 1; 3 ]
      parsed.Snapshot.sn_opened;
    let s1 = List.hd parsed.Snapshot.sn_slots in
    Alcotest.(check int) "events survive" 3 (List.length s1.Snapshot.sl_events);
    Alcotest.(check bool) "crash event survives" true
      (List.exists
         (function Snapshot.Crash "injected-crash" -> true | _ -> false)
         s1.Snapshot.sl_events)

let test_snapshot_checksum_catches_corruption () =
  let doc = Snapshot.to_string (sample_snapshot ()) in
  (* flip one byte in the payload half of the document *)
  let b = Bytes.of_string doc in
  Bytes.set b (Bytes.length b - 10) '#';
  (match Snapshot.of_string (Bytes.to_string b) with
   | Error (Snapshot.Corrupt _) -> ()
   | Error (Snapshot.Version_mismatch m) -> Alcotest.fail ("wrong error: " ^ m)
   | Ok _ -> Alcotest.fail "corrupted document parsed");
  match Snapshot.of_string "not json at all" with
  | Error (Snapshot.Corrupt _) -> ()
  | _ -> Alcotest.fail "garbage accepted"

let test_snapshot_version_mismatch () =
  let doc = Snapshot.to_string (sample_snapshot ()) in
  (* bump the schema version in place *)
  let idx =
    let rec find i =
      if String.sub doc i 15 = "pbse-snapshot/1" then i else find (i + 1)
    in
    find 0
  in
  let b = Bytes.of_string doc in
  Bytes.set b (idx + 14) '9';
  match Snapshot.of_string (Bytes.to_string b) with
  | Error (Snapshot.Version_mismatch _) -> ()
  | Error (Snapshot.Corrupt m) -> Alcotest.fail ("wrong error: " ^ m)
  | Ok _ -> Alcotest.fail "future-schema document accepted"

let test_save_rotates_and_falls_back () =
  let path = Filename.temp_file "pbse_snap" ".json" in
  let sn1 = sample_snapshot () in
  let sn2 = { sn1 with Snapshot.sn_spent = 43_000 } in
  Snapshot.save ~path sn1;
  Snapshot.save ~path sn2;
  Alcotest.(check bool) "previous checkpoint rotated to .bak" true
    (Sys.file_exists (path ^ ".bak"));
  (match Driver.load_snapshot ~path with
   | Ok (sn, None) ->
     Alcotest.(check int) "primary is the newest" 43_000 sn.Snapshot.sn_spent
   | Ok (_, Some why) -> Alcotest.fail ("unexpected fallback: " ^ why)
   | Error e -> Alcotest.fail e);
  (* corrupt the primary: load falls back to the .bak rotation and
     reports why *)
  let oc = open_out path in
  output_string oc "{\"schema\":\"pbse-snapshot/1\",\"checksum\":\"zzz\"}";
  close_out oc;
  (match Driver.load_snapshot ~path with
   | Ok (sn, Some _) ->
     Alcotest.(check int) "fell back to previous checkpoint" 42_000
       sn.Snapshot.sn_spent
   | Ok (_, None) -> Alcotest.fail "corrupt primary loaded without fallback"
   | Error e -> Alcotest.fail e);
  (* corrupt both: a combined error, never an exception *)
  let oc = open_out (path ^ ".bak") in
  output_string oc "garbage";
  close_out oc;
  match Driver.load_snapshot ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "doubly corrupt checkpoint loaded"

(* --- kill-and-resume report identity ---------------------------------------- *)

let with_telemetry f =
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) f

let report_meta = [ ("target", "mini") ]

let uninterrupted_json ?config ?(lease = 1) ?prog ?seeds ?(deadline = 150_000)
    ~scheduler ~jobs () =
  let prog = match prog with Some p -> p | None -> mini_program () in
  let seeds = match seeds with Some s -> s | None -> pool_seeds () in
  with_telemetry (fun () ->
      let pool =
        Driver.run_pool ?config ~scheduler ~jobs ~lease prog ~seeds ~deadline
      in
      Report.to_json (Driver.pool_run_report ~meta:report_meta pool))

(* Run the same campaign but stop at round [kill_at]'s barrier with a
   checkpoint (a deterministic in-process SIGKILL), then resume from the
   file and render the finished campaign's report. *)
let killed_and_resumed_json ?config ?(lease = 1) ?prog ?seeds
    ?(deadline = 150_000) ~scheduler ~jobs ~kill_at () =
  let prog = match prog with Some p -> p | None -> mini_program () in
  let seeds = match seeds with Some s -> s | None -> pool_seeds () in
  let path = Filename.temp_file "pbse_resume" ".json" in
  with_telemetry (fun () ->
      let ck =
        Driver.checkpoint ~meta:[ ("target", "mini") ] ~halt_after:kill_at ~path
          ~every:1 ()
      in
      let _killed : Driver.pool_report =
        Driver.run_pool ?config ~scheduler ~jobs ~lease ~checkpoint:ck prog
          ~seeds ~deadline
      in
      match Driver.load_snapshot ~path with
      | Error e -> Alcotest.fail e
      | Ok (sn, fallback) -> (
        Alcotest.(check bool) "no fallback needed" true (fallback = None);
        match Driver.resume_pool ~jobs sn prog ~seeds with
        | Error e -> Alcotest.fail e
        | Ok pool ->
          Report.to_json (Driver.pool_run_report ~meta:report_meta pool)))

let test_kill_resume_identity_all_schedulers () =
  (* the headline invariant: kill at a barrier + resume reproduces the
     uninterrupted pool report byte for byte, for every policy *)
  List.iter
    (fun scheduler ->
      let baseline = uninterrupted_json ~scheduler ~jobs:2 () in
      Alcotest.(check string)
        (scheduler ^ ": kill@1+resume matches uninterrupted")
        baseline
        (killed_and_resumed_json ~scheduler ~jobs:2 ~kill_at:1 ()))
    Pool_scheduler.names

let test_kill_resume_identity_across_jobs_and_rounds () =
  let scheduler = "round-robin" in
  let baseline = uninterrupted_json ~scheduler ~jobs:1 () in
  List.iter
    (fun (jobs, kill_at) ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d kill@%d matches jobs=1 uninterrupted" jobs
           kill_at)
        baseline
        (killed_and_resumed_json ~scheduler ~jobs ~kill_at ()))
    [ (1, 1); (2, 2); (4, 3) ]

let test_kill_resume_identity_with_leases () =
  (* snapshots written under multi-turn leases must resume to the same
     bytes: the lease is part of the snapshot meta and the resume picks
     it back up (killed_and_resumed_json never passes it to
     Driver.resume_pool), so the remaining rounds re-plan with the same
     work units *)
  let scheduler = "round-robin" in
  let baseline = uninterrupted_json ~lease:3 ~scheduler ~jobs:1 () in
  List.iter
    (fun (jobs, kill_at) ->
      Alcotest.(check string)
        (Printf.sprintf "lease=3 jobs=%d kill@%d matches jobs=1 uninterrupted"
           jobs kill_at)
        baseline
        (killed_and_resumed_json ~lease:3 ~scheduler ~jobs ~kill_at ()))
    [ (2, 1); (4, 2) ]

let test_kill_resume_identity_under_crash_injection () =
  (* injected turn kills (crash=R) are part of the durable record: the
     per-slot ledgers and RNG-draw counts replay them, so the invariant
     holds even for a campaign that was being actively crash-injected *)
  let inject =
    match Inject.parse "seed=9,crash=0.4" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let config = Driver.(with_robust (fun r -> { r with inject }) default_config) in
  let scheduler = "round-robin" in
  let baseline = uninterrupted_json ~config ~scheduler ~jobs:1 () in
  Alcotest.(check string) "crash-injected: jobs=4 matches jobs=1" baseline
    (uninterrupted_json ~config ~scheduler ~jobs:4 ());
  Alcotest.(check string) "crash-injected: kill+resume matches" baseline
    (killed_and_resumed_json ~config ~scheduler ~jobs:2 ~kill_at:1 ());
  (* and the kills actually landed, or this proves nothing *)
  match Report.of_json baseline with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let struck =
      List.fold_left (fun acc (s : Report.seed_row) -> acc + s.Report.timeouts)
        0 r.Report.seeds
    in
    Alcotest.(check bool) "injected crashes struck seeds" true (struck > 0)

let test_kill_resume_rebuilds_interpolant_caches () =
  (* interpolant caches are deliberately not serialized: a resumed
     campaign rebuilds them deterministically by replaying turns. The
     mini program is too small to repeat unsat cores, so this runs a
     registry target. The resumed report must (a) match the
     uninterrupted bytes exactly and (b) show the subsumption layer
     actually at work after the resume — otherwise this proves identity
     of an idle feature *)
  let t =
    match Pbse_targets.Registry.by_name "gif2tiff" with
    | Some t -> t
    | None -> Alcotest.fail "gif2tiff not registered"
  in
  let prog = Pbse_targets.Registry.program t in
  let seeds = List.map snd t.Pbse_targets.Registry.seeds in
  let deadline = 25_000 in
  let scheduler = "round-robin" in
  let baseline =
    uninterrupted_json ~prog ~seeds ~deadline ~scheduler ~jobs:2 ()
  in
  let resumed =
    killed_and_resumed_json ~prog ~seeds ~deadline ~scheduler ~jobs:2 ~kill_at:1
      ()
  in
  Alcotest.(check string) "resume under subsumption is byte-identical" baseline
    resumed;
  match Report.of_json resumed with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "interpolant cache answered queries" true
      (Report.metric r "smt.interpolant_hits" > 0);
    Alcotest.(check bool) "states were subsumed" true
      (Report.metric r "smt.subsumed_states" > 0)

(* --- graceful degradation --------------------------------------------------- *)

let test_certain_crash_retires_pool_without_aborting () =
  (* crash=1.0 kills every turn at entry: every seed strikes out at
     watchdog_strikes and force-retires; the campaign ends cleanly with
     the kills on the pool fault record and no sessions ever opened *)
  let inject =
    match Inject.parse "seed=5,crash=1.0" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let config = Driver.(with_robust (fun r -> { r with inject }) default_config) in
  let pool =
    Driver.run_pool ~config ~scheduler:"round-robin" (mini_program ())
      ~seeds:(pool_seeds ()) ~deadline:150_000
  in
  Alcotest.(check int) "no session survived to run" 0 (List.length pool.Driver.runs);
  Alcotest.(check bool) "kills recorded at pool level" true
    (Fault.count pool.Driver.pool_faults Fault.Exec_exception > 0);
  List.iter
    (fun (s : Report.seed_row) ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d struck out" s.Report.ordinal)
        Driver.default_config.Driver.robust.Driver.watchdog_strikes
        s.Report.timeouts)
    pool.Driver.seed_rows

let test_watchdog_flags_overrunning_turns () =
  (* a tight factor against tiny round-robin turn budgets: the first
     turn's setup (concolic + analysis) dwarfs its budget, so the
     watchdog must fire, strike the seed and stay deterministic *)
  let config =
    Driver.default_config
    |> Driver.with_concolic (fun c -> { c with Driver.time_period = 100 })
    |> Driver.with_robust (fun r -> { r with Driver.watchdog_factor = 1 })
  in
  let json1 = uninterrupted_json ~config ~scheduler:"round-robin" ~jobs:1 () in
  Alcotest.(check string) "watchdogged campaign identical across jobs" json1
    (uninterrupted_json ~config ~scheduler:"round-robin" ~jobs:4 ());
  match Report.of_json json1 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "turn timeouts recorded" true
      (Report.metric r "fault.turn-timeout" > 0);
    let struck =
      List.fold_left (fun acc (s : Report.seed_row) -> acc + s.Report.timeouts)
        0 r.Report.seeds
    in
    Alcotest.(check bool) "struck seeds reported" true (struck > 0)

let test_resume_pool_shape_mismatch_degrades () =
  (* a snapshot for a different seed pool must not crash the resume: it
     restarts fresh with a Resume_mismatch on the record *)
  let path = Filename.temp_file "pbse_shape" ".json" in
  let ck =
    Driver.checkpoint ~meta:[ ("target", "mini") ] ~halt_after:1 ~path ~every:1 ()
  in
  let _ : Driver.pool_report =
    Driver.run_pool ~scheduler:"round-robin" ~checkpoint:ck (mini_program ())
      ~seeds:(pool_seeds ()) ~deadline:150_000
  in
  match Driver.load_snapshot ~path with
  | Error e -> Alcotest.fail e
  | Ok (sn, _) -> (
    match
      Driver.resume_pool sn (mini_program ())
        ~seeds:[ Bytes.of_string "XX" ] (* not the checkpointed pool *)
    with
    | Error e -> Alcotest.fail e
    | Ok pool ->
      Alcotest.(check bool) "mismatch recorded" true
        (Fault.count pool.Driver.pool_faults Fault.Resume_mismatch > 0);
      Alcotest.(check int) "campaign ran fresh over the new pool" 1
        (List.length pool.Driver.seed_rows))

let test_injected_snapshot_corruption_is_detected () =
  (* snapshot=1.0 corrupts every checkpoint write on disk; loading must
     fail the checksum on both the primary and its rotation, never crash
     or return garbage *)
  let inject =
    match Inject.parse "seed=5,snapshot=1.0" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let config = Driver.(with_robust (fun r -> { r with inject }) default_config) in
  let path = Filename.temp_file "pbse_corrupt" ".json" in
  let ck = Driver.checkpoint ~path ~every:1 () in
  let _ : Driver.pool_report =
    Driver.run_pool ~config ~scheduler:"round-robin" ~checkpoint:ck
      (mini_program ()) ~seeds:(pool_seeds ()) ~deadline:150_000
  in
  Alcotest.(check bool) "checkpoint file exists" true (Sys.file_exists path);
  (match Snapshot.load ~path with
   | Error (Snapshot.Corrupt _) -> ()
   | Error (Snapshot.Version_mismatch m) -> Alcotest.fail ("wrong error: " ^ m)
   | Ok _ -> Alcotest.fail "corrupted checkpoint passed its checksum");
  match Driver.load_snapshot ~path with
  | Error _ -> () (* every rotation was corrupted too *)
  | Ok _ -> Alcotest.fail "load_snapshot accepted a fully corrupted history"

(* --- config round-trip and fault-detail stability --------------------------- *)

let test_config_kvs_roundtrip () =
  let config =
    Driver.default_config
    |> Driver.with_concolic (fun c ->
           { c with Driver.interval_length = Some 77; Driver.time_period = 456 })
    |> Driver.with_search (fun s ->
           { s with Driver.scheduler = "sequential"; Driver.max_live = 99 })
    |> Driver.with_solver (fun s -> { s with Driver.prefix_cap = 64 })
    |> Driver.with_robust (fun r ->
           {
             r with
             Driver.watchdog_factor = 7;
             Driver.inject =
               (match Inject.parse "seed=3,crash=0.25,snapshot=0.5" with
                | Ok p -> p
                | Error e -> Alcotest.fail e);
           })
    |> Driver.with_rng_seed 1234
  in
  match Driver.config_of_kvs (Driver.config_to_kvs config) with
  | Error e -> Alcotest.fail e
  | Ok rebuilt ->
    Alcotest.(check (list (pair string string)))
      "kvs round-trip is exact"
      (Driver.config_to_kvs config)
      (Driver.config_to_kvs rebuilt)

let test_config_kvs_ignores_unknown_and_rejects_bad () =
  (match Driver.config_of_kvs [ ("target", "mini"); ("scheduler", "round-robin") ] with
   | Ok config ->
     Alcotest.(check (list (pair string string)))
       "unknown keys fall through to defaults"
       (Driver.config_to_kvs Driver.default_config)
       (Driver.config_to_kvs config)
   | Error e -> Alcotest.fail e);
  match Driver.config_of_kvs [ ("solver.budget", "lots") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed value accepted"

exception Custom_failure of string

let test_normalize_exn_stable () =
  let check name expected exn =
    Alcotest.(check string) name expected (Fault.normalize_exn exn)
  in
  check "failure" "failure" (Failure "anything: 0x7f33");
  check "invalid-argument" "invalid-argument" (Invalid_argument "x");
  check "not-found" "not-found" Not_found;
  check "division-by-zero" "division-by-zero" Division_by_zero;
  check "end-of-file" "end-of-file" End_of_file;
  check "sys-error" "sys-error" (Sys_error "/tmp/x: No such file");
  (* payloads (which vary run to run) are cut from custom exceptions *)
  let a = Fault.normalize_exn (Custom_failure "addr 0xdeadbeef") in
  let b = Fault.normalize_exn (Custom_failure "addr 0xcafef00d") in
  Alcotest.(check string) "custom payloads do not leak" a b;
  Alcotest.(check bool) "custom label is kebab-case" true
    (String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.' || c = '-')
       a)

let test_inject_parse_new_channels () =
  match Inject.parse "seed=4,crash=0.5,snapshot=0.125" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.(check bool) "plan is active" true (Inject.is_active plan);
    (* the rendering round-trips through parse *)
    (match Inject.parse (Inject.to_string plan) with
     | Ok plan' ->
       Alcotest.(check string) "to_string/parse round-trip"
         (Inject.to_string plan) (Inject.to_string plan')
     | Error e -> Alcotest.fail e);
    (* rate-1 crash channel fires; rate-0 snapshot-corrupt never does *)
    let t =
      Inject.create
        (match Inject.parse "seed=4,crash=1.0" with
         | Ok p -> p
         | Error e -> Alcotest.fail e)
    in
    Alcotest.(check bool) "crash fires at rate 1" true (Inject.fire_turn_crash t);
    Alcotest.(check bool) "snapshot silent at rate 0" false
      (Inject.fire_snapshot_corrupt t)

let suite =
  [
    Alcotest.test_case "snapshot roundtrip bytes" `Quick test_snapshot_roundtrip_bytes;
    Alcotest.test_case "snapshot checksum catches corruption" `Quick
      test_snapshot_checksum_catches_corruption;
    Alcotest.test_case "snapshot version mismatch" `Quick test_snapshot_version_mismatch;
    Alcotest.test_case "save rotates and falls back" `Quick
      test_save_rotates_and_falls_back;
    Alcotest.test_case "kill+resume identity (all schedulers)" `Slow
      test_kill_resume_identity_all_schedulers;
    Alcotest.test_case "kill+resume identity (jobs x rounds)" `Slow
      test_kill_resume_identity_across_jobs_and_rounds;
    Alcotest.test_case "kill+resume identity under multi-turn leases" `Slow
      test_kill_resume_identity_with_leases;
    Alcotest.test_case "kill+resume identity under crash injection" `Slow
      test_kill_resume_identity_under_crash_injection;
    Alcotest.test_case "kill+resume rebuilds interpolant caches" `Slow
      test_kill_resume_rebuilds_interpolant_caches;
    Alcotest.test_case "certain crash retires pool gracefully" `Quick
      test_certain_crash_retires_pool_without_aborting;
    Alcotest.test_case "watchdog flags overrunning turns" `Slow
      test_watchdog_flags_overrunning_turns;
    Alcotest.test_case "resume pool-shape mismatch degrades" `Quick
      test_resume_pool_shape_mismatch_degrades;
    Alcotest.test_case "injected snapshot corruption detected" `Quick
      test_injected_snapshot_corruption_is_detected;
    Alcotest.test_case "config kvs roundtrip" `Quick test_config_kvs_roundtrip;
    Alcotest.test_case "config kvs unknown/bad keys" `Quick
      test_config_kvs_ignores_unknown_and_rejects_bad;
    Alcotest.test_case "normalize_exn stable" `Quick test_normalize_exn_stable;
    Alcotest.test_case "inject crash/snapshot channels" `Quick
      test_inject_parse_new_channels;
  ]
