module Driver = Pbse.Driver
module Klee = Pbse.Klee
module Registry = Pbse_targets.Registry
module Coverage = Pbse_exec.Coverage
module Executor = Pbse_exec.Executor
module Bug = Pbse_exec.Bug

(* A miniature staged parser with a deep planted bug: enough structure for
   phases, small enough for quick tests. *)
let mini_target_src =
  "fn stage1() {\n\
  \  if (in(0) != 'S') { return 0; }\n\
  \  if (in(1) != '1') { return 0; }\n\
  \  return 1;\n\
   }\n\
   fn stage2(n) {\n\
  \  var sum = 0;\n\
  \  var i = 0;\n\
  \  while (i < n) { sum = sum + in(4 + i); i = i + 1; }\n\
  \  return sum;\n\
   }\n\
   fn stage3(marker) {\n\
  \  var buf = alloc(8);\n\
  \  if (marker == 0xAB) { buf[12] = 1; }\n\
  \  return buf[0];\n\
   }\n\
   fn main() {\n\
  \  if (stage1() == 0) { return 1; }\n\
  \  var n = in(2);\n\
  \  if (n > 64) { return 2; }\n\
  \  out(stage2(n));\n\
  \  out(stage3(in(3)));\n\
  \  return 0;\n\
   }"

let mini_seed () =
  let b = Buffer.create 16 in
  Buffer.add_string b "S1";
  Buffer.add_char b '\008';
  Buffer.add_char b '\000';
  Buffer.add_string b "abcdefgh";
  Buffer.to_bytes b

let mini_program () = Pbse_lang.Frontend.compile mini_target_src

let test_klee_checkpoints_monotone () =
  let prog = mini_program () in
  let r =
    Klee.run prog ~searcher:"default" ~input:(Bytes.make 16 '\000')
      ~checkpoints:[ 5_000; 20_000; 60_000 ]
  in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "coverage monotone over checkpoints" true (monotone r.Klee.checkpoints);
  Alcotest.(check int) "three checkpoints" 3 (List.length r.Klee.checkpoints)

let test_klee_unknown_searcher () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Klee.run (mini_program ()) ~searcher:"nope" ~input:Bytes.empty ~checkpoints:[]);
       false
     with Invalid_argument _ -> true)

let run_driver ?(config = Driver.default_config) ?(deadline = 150_000) () =
  Driver.run ~config (mini_program ()) ~seed:(mini_seed ()) ~deadline

let test_driver_report_sane () =
  let report = run_driver () in
  Alcotest.(check bool) "c_time positive" true (report.Driver.c_time > 0);
  Alcotest.(check bool) "p_time positive" true (report.Driver.p_time > 0);
  Alcotest.(check bool) "interval length positive" true (report.Driver.interval_length > 0);
  Alcotest.(check bool) "has phases" true
    (List.length report.Driver.division.Pbse_phase.Phase.phases >= 1);
  Alcotest.(check bool) "has seedStates" true (report.Driver.seed_state_count >= 1);
  Alcotest.(check int) "seed size recorded" (Bytes.length (mini_seed ()))
    report.Driver.seed_size

let test_driver_finds_deep_bug () =
  let report = run_driver () in
  match report.Driver.bugs with
  | [] -> Alcotest.fail "expected the stage3 bug"
  | bugs ->
    List.iter
      (fun ((bug : Bug.t), phase) ->
        Alcotest.(check string) "kind" "oob-write" bug.Bug.kind;
        Alcotest.(check bool) "confirmed" true bug.Bug.confirmed;
        Alcotest.(check bool) "phase attributed" true (phase >= 0);
        Alcotest.(check char) "witness marker byte" '\xAB' (Bytes.get bug.Bug.witness 3))
      bugs

let test_driver_beats_coverage_floor () =
  let report = run_driver () in
  let cov = Coverage.count (Executor.coverage report.Driver.executor) in
  (* concolic alone covers the seed path; pbSE must exceed it *)
  let concolic_only =
    let prog = mini_program () in
    let r = Pbse_exec.Concrete.run prog ~input:(mini_seed ()) in
    r.Pbse_exec.Concrete.blocks_entered
  in
  ignore concolic_only;
  Alcotest.(check bool) "covers most of the program" true (cov > 20)

let test_driver_coverage_at_monotone () =
  let report = run_driver () in
  let c1 = Driver.coverage_at report 10_000 in
  let c2 = Driver.coverage_at report 100_000 in
  let c3 = Driver.coverage_at report max_int in
  Alcotest.(check bool) "monotone" true (c1 <= c2 && c2 <= c3);
  Alcotest.(check int) "final matches executor" c3
    (Coverage.count (Executor.coverage report.Driver.executor))

let test_driver_deterministic () =
  let a = run_driver () in
  let b = run_driver () in
  Alcotest.(check int) "same final coverage"
    (Coverage.count (Executor.coverage a.Driver.executor))
    (Coverage.count (Executor.coverage b.Driver.executor));
  Alcotest.(check int) "same bug count" (List.length a.Driver.bugs)
    (List.length b.Driver.bugs)

let test_driver_config_variants () =
  (* the ablation configurations must all run to completion *)
  List.iter
    (fun config ->
      let report = run_driver ~config ~deadline:60_000 () in
      Alcotest.(check bool) "coverage positive" true
        (Coverage.count (Executor.coverage report.Driver.executor) > 0))
    [
      Driver.(
        with_concolic
          (fun c -> { c with mode = Pbse_phase.Phase.Bbv_only })
          default_config);
      Driver.(with_search (fun s -> { s with dedup_seed_states = false }) default_config);
      Driver.(with_search (fun s -> { s with scheduler = "sequential" }) default_config);
      Driver.(with_search (fun s -> { s with phase_searcher = "dfs" }) default_config);
      Driver.(with_search (fun s -> { s with max_k = 4 }) default_config);
      Driver.(with_concolic (fun c -> { c with interval_length = Some 40 }) default_config);
    ]

let test_driver_unknown_phase_searcher () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (run_driver
            ~config:
              Driver.(
                with_search (fun s -> { s with phase_searcher = "zigzag" }) default_config)
            ());
       false
     with Invalid_argument _ -> true)

let test_select_seed_prefers_coverage_among_smallest () =
  (* with fewer than ten seeds the whole pool competes on coverage *)
  let small_bad = Bytes.make 4 'x' in
  let small_good = Bytes.make 6 'y' in
  let huge = Bytes.make 1000 'z' in
  let coverage_of b = if b == small_good then 100 else if b == huge then 50 else 10 in
  (match Driver.select_seed [ small_bad; huge; small_good ] ~coverage_of with
   | Some chosen -> Alcotest.(check bool) "picked small_good" true (chosen == small_good)
   | None -> Alcotest.fail "expected a seed");
  Alcotest.(check bool) "empty pool" true (Driver.select_seed [] ~coverage_of = None)

let test_select_seed_ignores_large_when_ten_smaller () =
  let seeds = List.init 10 (fun i -> Bytes.make (i + 1) 'a') in
  let big = Bytes.make 999 'b' in
  let coverage_of b = Bytes.length b in
  match Driver.select_seed (big :: seeds) ~coverage_of with
  | Some chosen -> Alcotest.(check bool) "big excluded" true (Bytes.length chosen <= 10)
  | None -> Alcotest.fail "expected a seed"

let test_run_pool_merges () =
  let prog = mini_program () in
  let seeds =
    [
      mini_seed ();
      Bytes.of_string "S1\002\171ab";
      (* marker 0xAB: triggers the bug concolically *)
      Bytes.of_string "S1\000\000";
    ]
  in
  let pool = Driver.run_pool prog ~seeds ~deadline:150_000 in
  Alcotest.(check int) "all seeds ran" 3 (List.length pool.Driver.runs);
  Alcotest.(check bool) "merged coverage at least per-run max" true
    (List.for_all
       (fun (_, r) ->
         pool.Driver.merged_coverage
         >= Coverage.count (Executor.coverage r.Driver.executor))
       pool.Driver.runs);
  Alcotest.(check bool) "bug found once across runs" true
    (List.length pool.Driver.merged_bugs = 1);
  (* smallest seed must have run first *)
  match pool.Driver.runs with
  | (first, _) :: _ -> Alcotest.(check int) "smallest first" 4 (Bytes.length first)
  | [] -> Alcotest.fail "no runs"

let test_testcase_generation_replays () =
  let src =
    "fn main() {\n\
    \  var a = in(0);\n\
    \  if (a < 10) { return 1; }\n\
    \  if (a == 200) { return 2; }\n\
    \  return 3;\n\
     }"
  in
  let prog = Pbse_lang.Frontend.compile src in
  let clock = Pbse_util.Vclock.create () in
  let exec = Executor.create ~clock prog ~input:(Bytes.make 1 '\000') in
  Executor.set_record_testcases exec true;
  let s = Pbse_exec.Searcher.dfs () in
  s.Pbse_exec.Searcher.add (Executor.initial_state exec);
  Executor.explore exec s ~deadline:100_000;
  let cases = Executor.testcases exec in
  Alcotest.(check int) "three paths, three test cases" 3 (List.length cases);
  List.iter
    (fun (input, label) ->
      match (Pbse_exec.Concrete.run prog ~input).Pbse_exec.Concrete.outcome with
      | Pbse_exec.Concrete.Exit code ->
        Alcotest.(check string) "label matches replay"
          (Printf.sprintf "exit-%Ld" code)
          label
      | _ -> Alcotest.fail "testcase replay did not exit")
    cases

(* end-to-end on a real registry target, small budget *)
let test_driver_on_registry_target () =
  let t = Option.get (Registry.by_name "tcpdump") in
  let report =
    Driver.run (Registry.program t) ~seed:(Registry.default_seed t) ~deadline:40_000
  in
  Alcotest.(check bool) "tcpdump covers blocks" true
    (Coverage.count (Executor.coverage report.Driver.executor) > 30);
  Alcotest.(check int) "tcpdump has no bugs" 0 (List.length report.Driver.bugs)

let suite =
  [
    Alcotest.test_case "klee checkpoints monotone" `Quick test_klee_checkpoints_monotone;
    Alcotest.test_case "klee unknown searcher" `Quick test_klee_unknown_searcher;
    Alcotest.test_case "driver report sane" `Quick test_driver_report_sane;
    Alcotest.test_case "driver finds deep bug" `Quick test_driver_finds_deep_bug;
    Alcotest.test_case "driver coverage floor" `Quick test_driver_beats_coverage_floor;
    Alcotest.test_case "driver coverage_at monotone" `Quick test_driver_coverage_at_monotone;
    Alcotest.test_case "driver deterministic" `Quick test_driver_deterministic;
    Alcotest.test_case "driver config variants" `Quick test_driver_config_variants;
    Alcotest.test_case "driver unknown phase searcher" `Quick
      test_driver_unknown_phase_searcher;
    Alcotest.test_case "select_seed heuristic" `Quick
      test_select_seed_prefers_coverage_among_smallest;
    Alcotest.test_case "select_seed smallest ten" `Quick
      test_select_seed_ignores_large_when_ten_smaller;
    Alcotest.test_case "driver on tcpdump" `Quick test_driver_on_registry_target;
    Alcotest.test_case "run_pool merges" `Quick test_run_pool_merges;
    Alcotest.test_case "testcase generation replays" `Quick test_testcase_generation_replays;
  ]
