open Pbse_concolic
module Vclock = Pbse_util.Vclock
module Executor = Pbse_exec.Executor

let test_bbv_builder_intervals () =
  let b = Bbv.builder ~interval_length:100 in
  Bbv.set_coverage_probe b (fun () -> 7);
  Bbv.record b ~vtime:10 ~gid:1;
  Bbv.record b ~vtime:20 ~gid:1;
  Bbv.record b ~vtime:30 ~gid:2;
  Bbv.record b ~vtime:150 ~gid:3;
  (* crossing into interval 1 closed interval 0 *)
  Bbv.flush b ~coverage_at:(fun () -> 9) ~vtime:160;
  match Bbv.bbvs b with
  | [ first; second ] ->
    Alcotest.(check int) "first interval index" 0 first.Bbv.index;
    Alcotest.(check (list (pair int int))) "first counts" [ (1, 2); (2, 1) ]
      (Array.to_list first.Bbv.counts);
    Alcotest.(check int) "first total" 3 first.Bbv.total;
    Alcotest.(check int) "first coverage probed" 7 first.Bbv.coverage;
    Alcotest.(check int) "second interval index" 1 second.Bbv.index;
    Alcotest.(check (list (pair int int))) "second counts" [ (3, 1) ]
      (Array.to_list second.Bbv.counts);
    Alcotest.(check int) "second coverage from flush" 9 second.Bbv.coverage
  | bbvs -> Alcotest.fail (Printf.sprintf "expected 2 BBVs, got %d" (List.length bbvs))

let test_bbv_normalized () =
  let b = Bbv.builder ~interval_length:1000 in
  Bbv.record b ~vtime:1 ~gid:4;
  Bbv.record b ~vtime:2 ~gid:4;
  Bbv.record b ~vtime:3 ~gid:9;
  Bbv.record b ~vtime:4 ~gid:9;
  Bbv.flush b ~coverage_at:(fun () -> 0) ~vtime:5;
  match Bbv.bbvs b with
  | [ bbv ] ->
    let normalized = Bbv.normalized bbv in
    let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 normalized in
    Alcotest.(check (float 1e-9)) "proportions sum to 1" 1.0 total
  | _ -> Alcotest.fail "expected one BBV"

let test_bbv_dims () =
  let b = Bbv.builder ~interval_length:10 in
  Bbv.record b ~vtime:1 ~gid:41;
  Bbv.flush b ~coverage_at:(fun () -> 0) ~vtime:2;
  Alcotest.(check int) "dims is max gid + 1" 42 (Bbv.dims (Bbv.bbvs b))

let test_bbv_rejects_bad_interval () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Bbv.builder ~interval_length:0);
       false
     with Invalid_argument _ -> true)

let test_trace_indexer_first_execution_order () =
  let ix = Trace.indexer () in
  Alcotest.(check int) "first block gets 0" 0 (Trace.index_of ix 500);
  Alcotest.(check int) "second block gets 1" 1 (Trace.index_of ix 123);
  Alcotest.(check int) "repeat keeps index" 0 (Trace.index_of ix 500);
  Alcotest.(check int) "assigned" 2 (Trace.assigned ix)

let test_trace_csv () =
  let ix = Trace.indexer () in
  let trace = Trace.create ix in
  Trace.record trace ~vtime:5 ~gid:100;
  Trace.record trace ~vtime:9 ~gid:100;
  Trace.record trace ~vtime:12 ~gid:200;
  Alcotest.(check string) "csv" "vtime,bb\n5,0\n9,0\n12,1\n" (Trace.to_csv trace);
  Alcotest.(check int) "points" 3 (List.length (Trace.points trace))

(* a staged program: header check then an input-bounded loop *)
let staged_src =
  "fn main() {\n\
  \  if (in(0) != 'M') { return 1; }\n\
  \  var n = in(1);\n\
  \  var i = 0;\n\
  \  var sum = 0;\n\
  \  while (i < n) { sum = sum + in(2 + i); i = i + 1; }\n\
  \  out(sum);\n\
  \  if (in(2) == 0x7F) { return 3; }\n\
  \  return 0;\n\
   }"

let run_concolic ?(seed = "M\005abcde") () =
  let prog = Pbse_lang.Frontend.compile staged_src in
  let clock = Vclock.create () in
  let exec = Executor.create ~clock prog ~input:(Bytes.of_string seed) in
  let ix = Trace.indexer () in
  (Concolic.run ~interval_length:20 exec ix, exec)

let test_concolic_follows_seed () =
  let result, _ = run_concolic () in
  (match result.Concolic.outcome with
   | Concolic.Exited 0L -> ()
   | Concolic.Exited c -> Alcotest.fail (Printf.sprintf "wrong exit %Ld" c)
   | _ -> Alcotest.fail "expected clean exit");
  Alcotest.(check bool) "positive c_time" true (result.Concolic.c_time > 0);
  Alcotest.(check bool) "entered blocks" true (result.Concolic.blocks_entered > 5)

let test_concolic_seed_states_at_forks () =
  let result, _ = run_concolic () in
  (* branches on symbolic input: header check, 6 loop checks (n=5),
     final byte check -> at least 7 seedStates *)
  let n = List.length result.Concolic.seed_states in
  Alcotest.(check bool) "several seedStates" true (n >= 7);
  List.iter
    (fun (ss : Concolic.seed_state) ->
      Alcotest.(check bool) "children marked for verification" true
        ss.Concolic.state.Pbse_exec.State.needs_verify;
      Alcotest.(check bool) "fork gid recorded" true (ss.Concolic.fork_gid >= 0))
    result.Concolic.seed_states

let test_concolic_uses_no_solver () =
  let result, exec = run_concolic () in
  ignore result;
  let stats = Pbse_smt.Solver.stats (Executor.solver exec) in
  Alcotest.(check int) "no queries during concolic" 0 stats.Pbse_smt.Solver.queries

let test_concolic_bbvs_cover_run () =
  let result, _ = run_concolic () in
  Alcotest.(check bool) "bbvs gathered" true (List.length result.Concolic.bbvs >= 2);
  let all_sorted =
    List.for_all
      (fun (bbv : Bbv.t) -> bbv.Bbv.t_start <= bbv.Bbv.t_end)
      result.Concolic.bbvs
  in
  Alcotest.(check bool) "interval bounds ordered" true all_sorted

let test_concolic_deterministic () =
  let a, _ = run_concolic () in
  let b, _ = run_concolic () in
  Alcotest.(check int) "same c_time" a.Concolic.c_time b.Concolic.c_time;
  Alcotest.(check int) "same seedState count"
    (List.length a.Concolic.seed_states)
    (List.length b.Concolic.seed_states)

let test_concolic_seed_states_verify () =
  let result, exec = run_concolic () in
  let verified =
    List.filter
      (fun (ss : Concolic.seed_state) ->
        Executor.verify exec ss.Concolic.state = Executor.Verified)
      result.Concolic.seed_states
  in
  (* the not-taken side of the loop-entry check at iteration 0 is n = 0:
     feasible; the header-mismatch side is feasible too; at least half of
     all divergences should verify *)
  Alcotest.(check bool) "most seedStates feasible" true
    (2 * List.length verified >= List.length result.Concolic.seed_states);
  List.iter
    (fun (ss : Concolic.seed_state) ->
      Alcotest.(check bool) "verified state has consistent model" true
        (Pbse_smt.Model.satisfies ss.Concolic.state.Pbse_exec.State.model
           (Pbse_exec.State.path_conditions ss.Concolic.state)))
    verified

let suite =
  [
    Alcotest.test_case "bbv builder intervals" `Quick test_bbv_builder_intervals;
    Alcotest.test_case "bbv normalized" `Quick test_bbv_normalized;
    Alcotest.test_case "bbv dims" `Quick test_bbv_dims;
    Alcotest.test_case "bbv rejects bad interval" `Quick test_bbv_rejects_bad_interval;
    Alcotest.test_case "trace indexer order" `Quick test_trace_indexer_first_execution_order;
    Alcotest.test_case "trace csv" `Quick test_trace_csv;
    Alcotest.test_case "concolic follows seed" `Quick test_concolic_follows_seed;
    Alcotest.test_case "concolic seedStates at forks" `Quick
      test_concolic_seed_states_at_forks;
    Alcotest.test_case "concolic uses no solver" `Quick test_concolic_uses_no_solver;
    Alcotest.test_case "concolic bbvs cover run" `Quick test_concolic_bbvs_cover_run;
    Alcotest.test_case "concolic deterministic" `Quick test_concolic_deterministic;
    Alcotest.test_case "concolic seedStates verify" `Quick test_concolic_seed_states_verify;
  ]
