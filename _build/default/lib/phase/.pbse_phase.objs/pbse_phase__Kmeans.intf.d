lib/phase/kmeans.mli: Pbse_util
