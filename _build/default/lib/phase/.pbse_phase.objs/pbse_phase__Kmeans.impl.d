lib/phase/kmeans.ml: Array Pbse_util
