lib/phase/phase.ml: Array Char Int Kmeans List Option Pbse_concolic String
