lib/phase/phase.mli: Pbse_concolic Pbse_util
