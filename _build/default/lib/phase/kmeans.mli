(** k-means clustering over sparse vectors.

    Deterministic (seeded k-means++ initialisation, Lloyd iterations to a
    fixed point or an iteration cap). Used to group per-interval BBVs
    into program phases. *)

type vector = (int * float) array
(** Sparse: (dimension, value), sorted by dimension, no duplicates. *)

val distance2 : vector -> float array -> float
(** Squared Euclidean distance between a sparse vector and a dense
    centroid. *)

type clustering = {
  k : int;
  assignment : int array; (* vector index -> cluster in [0, k) *)
  centroids : float array array;
  inertia : float; (* sum of squared distances to assigned centroids *)
}

val cluster :
  Pbse_util.Rng.t -> k:int -> dim:int -> vector array -> clustering
(** Raises [Invalid_argument] when [k < 1], [dim < 1] or there are no
    vectors. When there are fewer vectors than [k], surplus clusters stay
    empty. *)
