module Rng = Pbse_util.Rng

type vector = (int * float) array

let distance2 v centroid =
  (* |v - c|^2 = |c|^2 + sum_over_v ((v_i - c_i)^2 - c_i^2) *)
  let c2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 centroid in
  Array.fold_left
    (fun acc (dim, x) ->
      let c = centroid.(dim) in
      let d = x -. c in
      acc +. (d *. d) -. (c *. c))
    c2 v

type clustering = {
  k : int;
  assignment : int array;
  centroids : float array array;
  inertia : float;
}

let max_iterations = 25

let cluster rng ~k ~dim vectors =
  if k < 1 then invalid_arg "Kmeans.cluster: k < 1";
  if dim < 1 then invalid_arg "Kmeans.cluster: dim < 1";
  let n = Array.length vectors in
  if n = 0 then invalid_arg "Kmeans.cluster: no vectors";
  let dense v =
    let c = Array.make dim 0.0 in
    Array.iter (fun (d, x) -> c.(d) <- x) v;
    c
  in
  (* k-means++ seeding *)
  let centroids = Array.make k [||] in
  centroids.(0) <- dense vectors.(Rng.int rng n);
  let d2 = Array.map (fun v -> distance2 v centroids.(0)) vectors in
  for c = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let choice =
      if total <= 0.0 then Rng.int rng n
      else begin
        let r = Rng.float rng total in
        let acc = ref 0.0 in
        let chosen = ref (n - 1) in
        (try
           Array.iteri
             (fun i w ->
               acc := !acc +. w;
               if !acc >= r then begin
                 chosen := i;
                 raise Exit
               end)
             d2
         with Exit -> ());
        !chosen
      end
    in
    centroids.(c) <- dense vectors.(choice);
    Array.iteri
      (fun i v ->
        let d = distance2 v centroids.(c) in
        if d < d2.(i) then d2.(i) <- d)
      vectors
  done;
  let assignment = Array.make n 0 in
  let assign () =
    let changed = ref false in
    let inertia = ref 0.0 in
    Array.iteri
      (fun i v ->
        let best = ref 0 and best_d = ref infinity in
        for c = 0 to k - 1 do
          let d = distance2 v centroids.(c) in
          if d < !best_d then begin
            best_d := d;
            best := c
          end
        done;
        if assignment.(i) <> !best then begin
          assignment.(i) <- !best;
          changed := true
        end;
        inertia := !inertia +. !best_d)
      vectors;
    (!changed, !inertia)
  in
  let recompute () =
    let sums = Array.init k (fun _ -> Array.make dim 0.0) in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i v ->
        let c = assignment.(i) in
        counts.(c) <- counts.(c) + 1;
        Array.iter (fun (d, x) -> sums.(c).(d) <- sums.(c).(d) +. x) v)
      vectors;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then begin
        let inv = 1.0 /. float_of_int counts.(c) in
        Array.iteri (fun d x -> sums.(c).(d) <- x *. inv) sums.(c);
        centroids.(c) <- sums.(c)
      end
      (* empty clusters keep their previous centroid *)
    done
  in
  let rec iterate i _inertia =
    let changed, inertia' = assign () in
    if changed && i < max_iterations then begin
      recompute ();
      iterate (i + 1) inertia'
    end
    else inertia'
  in
  let inertia = iterate 0 infinity in
  { k; assignment; centroids; inertia }
