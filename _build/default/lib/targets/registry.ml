type t = {
  name : string;
  package : string;
  source : string;
  seeds : (string * bytes) list;
  buggy_seeds : (string * bytes) list;
  planted_bugs : (string * string) list;
  cves : (string * string) list;
}

let readelf =
  {
    name = Readelf_target.name;
    package = Readelf_target.package;
    source = Readelf_target.source;
    seeds = Readelf_target.seeds ();
    buggy_seeds = [];
    planted_bugs = Readelf_target.planted_bugs;
    cves = [];
  }

let pngtest =
  {
    name = Png_target.name;
    package = Png_target.package;
    source = Png_target.source;
    seeds = Png_target.seeds ();
    buggy_seeds =
      [
        ("buggy-keyword", Png_target.seed_buggy_keyword ());
        ("buggy-month", Png_target.seed_buggy_month ());
      ];
    planted_bugs = Png_target.planted_bugs;
    cves =
      [
        ("time-month-oob-read", "CVE-2015-7981");
        ("keyword-trim-underflow", "CVE-2015-8540");
      ];
  }

let gif2tiff =
  {
    name = Gif_target.name;
    package = Gif_target.package;
    source = Gif_target.source;
    seeds = Gif_target.seeds ();
    buggy_seeds = [ ("buggy-colormap", Gif_target.seed_buggy_colormap ()) ];
    planted_bugs = Gif_target.planted_bugs;
    cves = [];
  }

let tiff2rgba =
  {
    name = Rgba_target.name;
    package = Rgba_target.package;
    source = Rgba_target.source;
    seeds = Rgba_target.seeds ();
    buggy_seeds = [ ("buggy-cielab", Rgba_target.seed_buggy ()) ];
    planted_bugs = Rgba_target.planted_bugs;
    cves = [];
  }

let tiff2bw =
  {
    name = Bw_target.name;
    package = Bw_target.package;
    source = Bw_target.source;
    seeds = Bw_target.seeds ();
    buggy_seeds = [ ("buggy-spp", Bw_target.seed_buggy_spp ()) ];
    planted_bugs = Bw_target.planted_bugs;
    cves = [];
  }

let dwarfdump =
  {
    name = Dwarf_target.name;
    package = Dwarf_target.package;
    source = Dwarf_target.source;
    seeds = Dwarf_target.seeds ();
    buggy_seeds = [];
    planted_bugs = Dwarf_target.planted_bugs;
    cves =
      [
        ("abbrev-code-oob-read", "CVE-2015-8538");
        ("form-string-oob-read", "CVE-2015-8750");
        ("sibling-ref-oob-read", "CVE-2016-2050");
        ("line-file-index-oob-read", "CVE-2016-2091");
        ("null-abbrev-table-deref", "CVE-2014-9482");
      ];
  }

let tcpdump =
  {
    name = Tcpdump_target.name;
    package = Tcpdump_target.package;
    source = Tcpdump_target.source;
    seeds = Tcpdump_target.seeds ();
    buggy_seeds = [];
    planted_bugs = Tcpdump_target.planted_bugs;
    cves = [];
  }

let all = [ readelf; pngtest; gif2tiff; tiff2rgba; tiff2bw; dwarfdump; tcpdump ]

let by_name name = List.find_opt (fun t -> t.name = name) all

let programs : (string, Pbse_ir.Types.program) Hashtbl.t = Hashtbl.create 8

let program t =
  match Hashtbl.find_opt programs t.name with
  | Some p -> p
  | None ->
    let p = Pbse_lang.Frontend.compile t.source in
    Hashtbl.replace programs t.name p;
    p

let seed t label =
  match List.assoc_opt label t.seeds with
  | Some s -> s
  | None -> (
    match List.assoc_opt label t.buggy_seeds with
    | Some s -> s
    | None -> raise Not_found)

let default_seed t = seed t "small"
