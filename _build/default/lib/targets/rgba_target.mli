(** tiff2rgba analog — the paper's headline case study: the CIELab
    conversion reads h*w*3 bytes from a fixed 257-byte buffer. *)

val name : string
val package : string

val source : string
(** Complete MiniC source (prelude included). *)

val planted_bugs : (string * string) list
(** (label, fault kind) ground truth; labels match the BUG(...) source
    annotations. *)

val seeds : unit -> (string * bytes) list
(** Labelled benign seeds; every one runs to a clean exit. *)

val seed_small : unit -> bytes
val seed_large : unit -> bytes

val seed_buggy : unit -> bytes
(** h*w*3 = 270 > 257: triggers the CIELab oob-read (paper Fig. 5b). *)
