(** pngtest analog over the synthetic MNG image format, carrying the
    CVE-2015-7981 and CVE-2015-8540 analogs. *)

val name : string
val package : string

val source : string
(** Complete MiniC source (prelude included). *)

val planted_bugs : (string * string) list
(** (label, fault kind) ground truth; labels match the BUG(...) source
    annotations. *)

val seeds : unit -> (string * bytes) list
(** Labelled benign seeds; every one runs to a clean exit. *)

val seed_small : unit -> bytes
val seed_large : unit -> bytes

val seed_buggy_keyword : unit -> bytes
(** All-space tEXt keyword: triggers the keyword-trim underflow. *)

val seed_buggy_month : unit -> bytes
(** tIME month byte 0: triggers the rfc1123 month-index read. *)
