(* Shared front end for the TIF-R container used by the tiff2rgba and
   tiff2bw analogs.

   Layout: "II" magic, u16 42, u32 IFD offset. The IFD is a u16 entry
   count followed by 8-byte entries: tag u16, type u16, value u32.
   Tags (following real TIFF numbering): 256 width, 257 height, 258
   bits-per-sample, 259 compression, 262 photometric, 273 strip offset,
   277 samples-per-pixel, 279 strip byte count. *)

let header_source =
  {|
// ---------------- TIF-R front end ----------------

fn tiff_check_header() {
  if (in(0) != 'I') { return 0 - 1; }
  if (in(1) != 'I') { return 0 - 1; }
  if (iu16(2) != 42) { return 0 - 1; }
  var ifd = iu32(4);
  if (ifd < 8 || ifd + 2 > in_size()) { return 0 - 1; }
  return ifd;
}

// Parses the IFD into the fields buffer (12 u16 slots stored via st16):
// 0 width, 1 height, 2 bits, 3 compression, 4 photometric,
// 5 strip offset, 6 samples per pixel, 7 strip byte count,
// 8 orientation, 9 colormap entry count.
fn tiff_parse_ifd(ifd, fields) {
  var count = iu16(ifd);
  if (count == 0 || count > 64) { out(7001); return 0; }
  // defaults
  st16(fields + 4, 8);    // bits
  st16(fields + 6, 1);    // compression
  st16(fields + 8, 1);    // photometric
  st16(fields + 12, 1);   // samples per pixel
  st16(fields + 16, 1);   // orientation
  st16(fields + 18, 0);   // colormap entries
  var i = 0;
  while (i < count) {
    var base = ifd + 2 + i * 8;
    var tag = iu16(base);
    var val = iu32(base + 4);
    if (tag == 256) { st16(fields + 0, val); }
    else { if (tag == 257) { st16(fields + 2, val); }
    else { if (tag == 258) { st16(fields + 4, val); }
    else { if (tag == 259) { st16(fields + 6, val); }
    else { if (tag == 262) { st16(fields + 8, val); }
    else { if (tag == 273) { st16(fields + 10, val); }
    else { if (tag == 277) { st16(fields + 12, val); }
    else { if (tag == 279) { st16(fields + 14, val); }
    else { if (tag == 274) { st16(fields + 16, val); }
    else { if (tag == 320) { st16(fields + 18, val); }
    else { out(tag); } } } } } } } } } }
    i = i + 1;
  }
  return 1;
}

// PackBits-style decompression of the strip into a bounded buffer
fn unpack_bits(src_off, src_len, dst, cap) {
  var i = 0;
  var o = 0;
  while (i < src_len) {
    var n = in(src_off + i);
    if (n < 128) {
      // literal run of n + 1 bytes
      var k = 0;
      while (k <= n && i + 1 + k < src_len) {
        if (o < cap) { dst[o] = in(src_off + i + 1 + k); o = o + 1; }
        k = k + 1;
      }
      i = i + 1 + n + 1;
    } else { if (n == 128) {
      i = i + 1;  // no-op marker
    } else {
      // repeat next byte 257 - n times
      var count = 257 - n;
      if (i + 1 >= src_len) { out(7011); break; }
      var v = in(src_off + i + 1);
      var k = 0;
      while (k < count) {
        if (o < cap) { dst[o] = v; o = o + 1; }
        k = k + 1;
      }
      i = i + 2;
    } }
  }
  return o;
}

fn describe_orientation(orientation) {
  if (orientation == 1) { out(7101); return 1; }
  if (orientation == 2) { out(7102); return 1; }
  if (orientation == 3) { out(7103); return 1; }
  if (orientation == 4) { out(7104); return 1; }
  if (orientation == 5) { out(7105); return 1; }
  if (orientation == 6) { out(7106); return 1; }
  if (orientation == 7) { out(7107); return 1; }
  if (orientation == 8) { out(7108); return 1; }
  out(7100);
  return 0;
}

fn tiff_validate(fields) {
  var w = ld16(fields);
  var h = ld16(fields + 2);
  var bits = ld16(fields + 4);
  var compression = ld16(fields + 6);
  if (w == 0 || h == 0) { out(7002); return 0; }
  if (w > 512 || h > 512) { out(7003); return 0; }
  if (bits != 1 && bits != 8 && bits != 16) { out(7004); return 0; }
  if (compression != 1 && compression != 5) { out(7005); return 0; }
  return 1;
}
|}

(* OCaml-side IFD builder shared by the tiff seed generators. *)
let build_file entries ~strip =
  let b = Binbuf.create () in
  Binbuf.raw b "II";
  Binbuf.u16 b 42;
  Binbuf.u32 b 0 (* IFD offset, patched *);
  let strip_off = Binbuf.pos b in
  Binbuf.raw b strip;
  let ifd_off = Binbuf.pos b in
  let entries = entries @ [ (273, strip_off); (279, String.length strip) ] in
  Binbuf.u16 b (List.length entries);
  List.iter
    (fun (tag, value) ->
      Binbuf.u16 b tag;
      Binbuf.u16 b 3;
      Binbuf.u32 b value)
    entries;
  Binbuf.patch_u32 b 4 ifd_off;
  Binbuf.contents b
