(* gif2tiff analog: parses a GIF-like container, decodes an LZW-style
   code stream, and emits a TIFF-like digest.

   Planted bugs (matching the two unknown gif2tiff bugs in Table III):
   - the colour table is allocated at its declared size, but decoded
     pixel values index it unchecked (oob-read);
   - the decoder's chain-following stack has no depth check; a crafted
     table cycle (entry whose prefix is itself) overflows it
     (oob-write) — the classic gif2tiff LZW family of bugs. *)

let name = "gif2tiff"
let package = "libtiff-4.0.6"

let planted_bugs =
  [
    ("colormap-oob-read", "oob-read");
    ("lzw-stack-oob-write", "oob-write");
  ]

let body =
  {|
// ---------------- gif2tiff driver (GIF-T format) ----------------

fn gif_check_magic() {
  if (in(0) != 'G') { return 0; }
  if (in(1) != 'I') { return 0; }
  if (in(2) != 'F') { return 0; }
  if (in(3) != '8') { return 0; }
  var v = in(4);
  if (v != '7' && v != '9') { return 0; }
  if (in(5) != 'a') { return 0; }
  return 1;
}

// Decode one sub-block of codes. Codes < 128 are literal pixels and
// define a new table entry (prefix = previous code); codes >= 128 walk
// the prefix chain.
// BUG(lzw-stack-oob-write, oob-write): the chain stack is 64 bytes and
// sp is never bounded — a table cycle overflows it.
fn lzw_decode_block(off, len, state, pixels, cap, produced) {
  // state layout: 0 prev, 2 next_entry, 4.. prefix[128], 132.. suffix[128]
  var stack = alloc(64);
  var i = 0;
  while (i < len) {
    var code = in(off + i);
    var prev = ld16(state);
    var next_entry = ld16(state + 2);
    if (code < 128) {
      if (produced < cap) { pixels[produced] = code; produced = produced + 1; }
      if (next_entry < 256) {
        state[4 + (next_entry - 128)] = prev;
        state[132 + (next_entry - 128)] = code;
        st16(state + 2, next_entry + 1);
      }
    } else {
      var cc = code;
      var sp = 0;
      while (cc >= 128) {
        stack[sp] = state[132 + (cc - 128)];
        sp = sp + 1;
        cc = state[4 + (cc - 128)];
      }
      if (produced < cap) { pixels[produced] = cc; produced = produced + 1; }
      while (sp > 0) {
        sp = sp - 1;
        if (produced < cap) { pixels[produced] = stack[sp]; produced = produced + 1; }
      }
    }
    st16(state, code);
    i = i + 1;
  }
  return produced;
}

// BUG(colormap-oob-read, oob-read): pixel values index the colour table
// without checking against its entry count.
fn write_tiff(pixels, npix, gtbl) {
  var sum = 0;
  var i = 0;
  while (i < npix) {
    var p = pixels[i];
    var r = gtbl[p * 3];
    var g = gtbl[p * 3 + 1];
    var b = gtbl[p * 3 + 2];
    sum = t16(sum + r * 3 + g * 5 + b * 7);
    i = i + 1;
  }
  out(sum);
  return 0;
}

// graphics control extension: 4-byte payload
fn handle_gce(pos) {
  var blen = in(pos);
  if (blen != 4) { out(6010); return pos + blen + 2; }
  var gflags = in(pos + 1);
  var delay = iu16(pos + 2);
  var transparent = in(pos + 4);
  var disposal = (gflags >> 2) & 7;
  if (disposal > 3) { out(6011); }
  else { out(disposal); }
  if ((gflags & 1) != 0) { out(transparent); }
  out(delay);
  return pos + blen + 2;
}

// plain-text extension: 12-byte header then text sub-blocks
fn handle_plain_text(pos) {
  var blen = in(pos);
  if (blen != 12) { out(6020); return skip_subblocks(pos); }
  var gw = iu16(pos + 5);
  var gh = iu16(pos + 7);
  var cw = in(pos + 9);
  var ch = in(pos + 10);
  if (cw == 0 || ch == 0) { out(6021); }
  else { out(gw / cw * (gh / ch)); }
  return skip_subblocks(pos + blen + 1);
}

// application extension: 11-byte identifier, NETSCAPE loop blocks
fn handle_application(pos) {
  var blen = in(pos);
  if (blen != 11) { out(6030); return skip_subblocks(pos); }
  var netscape = 1;
  if (in(pos + 1) != 'N') { netscape = 0; }
  if (in(pos + 2) != 'E') { netscape = 0; }
  if (in(pos + 3) != 'T') { netscape = 0; }
  if (netscape == 1) {
    var dlen = in(pos + 12);
    if (dlen == 3 && in(pos + 13) == 1) {
      out(60000 + iu16(pos + 14));
    } else {
      out(6031);
    }
  }
  return skip_subblocks(pos + blen + 1);
}

// interlaced GIFs store rows in four passes; compute the display order
fn deinterlace(pixels, w, h, rowmap) {
  var row = 0;
  var pass = 0;
  var y = 0;
  while (pass < 4) {
    var start = 0;
    var step = 8;
    if (pass == 1) { start = 4; }
    if (pass == 2) { start = 2; step = 4; }
    if (pass == 3) { start = 1; step = 2; }
    y = start;
    while (y < h) {
      if (row < 256 && y < 256) { rowmap[row] = t8(y); }
      row = row + 1;
      y = y + step;
    }
    pass = pass + 1;
  }
  return row;
}

fn skip_subblocks(pos) {
  var len = in(pos);
  var guard = 0;
  while (len != 0 && guard < 64) {
    pos = pos + len + 1;
    len = in(pos);
    guard = guard + 1;
  }
  return pos + 1;
}

fn main() {
  if (gif_check_magic() == 0) { out(6000); return 1; }
  var sw = iu16(6);
  var sh = iu16(8);
  var flags = in(10);
  if (sw == 0 || sh == 0) { out(6001); return 1; }
  if (sw > 512 || sh > 512) { out(6002); return 1; }
  var pos = 13;
  var gcount = 0;
  var gtbl = alloc(3);
  if ((flags & 0x80) != 0) {
    gcount = 2 << (flags & 7);
    gtbl = alloc(gcount * 3);
    // trap phase: the colour table copy loop is bounded by a header field
    copy_in(gtbl, 0, pos, gcount * 3);
    pos = pos + gcount * 3;
  }
  var pixels = alloc(1024);
  var produced = 0;
  var state = alloc(260);
  st16(state + 2, 128);
  var blocks = 0;
  while (blocks < 32) {
    var intro = in(pos);
    if (intro == 0x3B) { out(6099); break; }
    if (intro == 0x21) {
      var label = in(pos + 1);
      if (label == 0xF9) { pos = handle_gce(pos + 2); }
      else { if (label == 0x01) { pos = handle_plain_text(pos + 2); }
      else { if (label == 0xFF) { pos = handle_application(pos + 2); }
      else { if (label == 0xFE) { pos = skip_subblocks(pos + 2); }
      else {
        out(6004);
        pos = skip_subblocks(pos + 2);
      } } } }
    } else { if (intro == 0x2C) {
      var iw = iu16(pos + 5);
      var ih = iu16(pos + 7);
      var lflags = in(pos + 9);
      pos = pos + 10;
      if ((lflags & 0x80) != 0) {
        pos = pos + (2 << (lflags & 7)) * 3;
      }
      pos = pos + 1;  // code size byte
      // decode sub-blocks
      var len = in(pos);
      var guard = 0;
      while (len != 0 && guard < 32) {
        produced = lzw_decode_block(pos + 1, len, state, pixels, 1024, produced);
        pos = pos + len + 1;
        len = in(pos);
        guard = guard + 1;
      }
      pos = pos + 1;
      if (iw * ih > 0) { out(iw * ih); }
      if ((lflags & 0x40) != 0 && iw <u 256 && ih <u 256) {
        var rowmap = alloc(256);
        out(deinterlace(pixels, iw, ih, rowmap));
      }
    } else {
      out(6003);
      return 1;
    } }
    blocks = blocks + 1;
  }
  if (gcount > 0 && produced > 0) {
    write_tiff(pixels, produced, gtbl);
  }
  out(77781);
  return 0;
}
|}

let source = Prelude.wrap body

(* --- seeds ----------------------------------------------------------------- *)

(* Benign GIF-T: global colour table of [1 << (bits+1)] entries, one image
   with literal pixel codes below the table size. *)
let build_seed ~bits ~width ~height ~ncodes =
  let b = Binbuf.create () in
  Binbuf.raw b "GIF87a";
  Binbuf.u16 b width;
  Binbuf.u16 b height;
  Binbuf.u8 b (0x80 lor bits);
  Binbuf.u8 b 0 (* background *);
  Binbuf.u8 b 0 (* aspect *);
  let entries = 2 lsl bits in
  for i = 0 to (entries * 3) - 1 do
    Binbuf.u8 b (i * 5)
  done;
  (* a comment extension exercises the skip loop *)
  Binbuf.u8 b 0x21;
  Binbuf.u8 b 0xFE;
  Binbuf.u8 b 4;
  Binbuf.raw b "mini";
  Binbuf.u8 b 0;
  (* graphics control extension *)
  Binbuf.u8 b 0x21;
  Binbuf.u8 b 0xF9;
  Binbuf.u8 b 4;
  Binbuf.u8 b 0x05;
  Binbuf.u16 b 10;
  Binbuf.u8 b 2;
  Binbuf.u8 b 0;
  (* plain text extension *)
  Binbuf.u8 b 0x21;
  Binbuf.u8 b 0x01;
  Binbuf.u8 b 12;
  Binbuf.u16 b 0;
  Binbuf.u16 b 0;
  Binbuf.u16 b 64;
  Binbuf.u16 b 16;
  Binbuf.u8 b 8;
  Binbuf.u8 b 8;
  Binbuf.u8 b 1;
  Binbuf.u8 b 2;
  Binbuf.u8 b 2;
  Binbuf.raw b "hi";
  Binbuf.u8 b 0;
  (* application extension: NETSCAPE loop block *)
  Binbuf.u8 b 0x21;
  Binbuf.u8 b 0xFF;
  Binbuf.u8 b 11;
  Binbuf.raw b "NETSCAPE2.0";
  Binbuf.u8 b 3;
  Binbuf.u8 b 1;
  Binbuf.u16 b 7;
  Binbuf.u8 b 0;
  (* image descriptor (interlaced) *)
  Binbuf.u8 b 0x2C;
  Binbuf.u16 b 0;
  Binbuf.u16 b 0;
  Binbuf.u16 b width;
  Binbuf.u16 b height;
  Binbuf.u8 b 0x40 (* interlaced, no local table *);
  Binbuf.u8 b 7 (* code size *);
  (* code sub-blocks: literals below the table size *)
  let remaining = ref ncodes in
  while !remaining > 0 do
    let chunk = min !remaining 100 in
    Binbuf.u8 b chunk;
    for i = 0 to chunk - 1 do
      Binbuf.u8 b (i mod entries)
    done;
    remaining := !remaining - chunk
  done;
  Binbuf.u8 b 0 (* end of sub-blocks *);
  Binbuf.u8 b 0x3B;
  Binbuf.contents b

let seed_small () = build_seed ~bits:2 ~width:10 ~height:10 ~ncodes:100
let seed_large () = build_seed ~bits:5 ~width:20 ~height:16 ~ncodes:320

(* pixel value 9 with a 4-entry table (2 << 1): colormap oob-read *)
let seed_buggy_colormap () =
  let b = Binbuf.create () in
  Binbuf.raw b "GIF87a";
  Binbuf.u16 b 4;
  Binbuf.u16 b 2;
  Binbuf.u8 b 0x81 (* table present, 2 << 1 = 4 entries *);
  Binbuf.u8 b 0;
  Binbuf.u8 b 0;
  for i = 0 to 11 do
    Binbuf.u8 b i
  done;
  Binbuf.u8 b 0x2C;
  Binbuf.u16 b 0;
  Binbuf.u16 b 0;
  Binbuf.u16 b 4;
  Binbuf.u16 b 2;
  Binbuf.u8 b 0;
  Binbuf.u8 b 7;
  Binbuf.u8 b 3;
  List.iter (Binbuf.u8 b) [ 1; 9; 2 ] (* pixel 9 >= 4 entries *);
  Binbuf.u8 b 0;
  Binbuf.u8 b 0x3B;
  Binbuf.contents b

let seeds () =
  [
    ("small", seed_small ());
    ("large", seed_large ());
    ("narrow", build_seed ~bits:1 ~width:6 ~height:4 ~ncodes:24);
  ]
