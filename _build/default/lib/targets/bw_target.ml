(* tiff2bw analog: grayscale conversion over the TIF-R front end.

   Two planted bugs, both deep in the conversion stages:
   - the pixel buffer is sized w*h assuming one sample per pixel, but the
     averaging loop indexes (pixel * spp + s) — samples-per-pixel 3 runs
     off the end (oob-read);
   - the min-is-white inversion pass has an off-by-one row bound
     (r <= h), writing one row past the output buffer (oob-write). *)

let name = "tiff2bw"
let package = "libtiff-4.0.6"

let planted_bugs =
  [
    ("spp-oob-read", "oob-read");
    ("invert-row-oob-write", "oob-write");
  ]

let body =
  {|
// ---------------- tiff2bw driver ----------------

// BUG(spp-oob-read, oob-read): sbuf holds w*h bytes but the averaging
// loop reads (row*w + col) * spp + s, overrunning when spp > 1.
fn average_samples(sbuf, w, h, spp, obuf) {
  var row = 0;
  while (row < h) {
    var col = 0;
    while (col < w) {
      var acc = 0;
      var s = 0;
      while (s < spp) {
        acc = acc + sbuf[(row * w + col) * spp + s];
        s = s + 1;
      }
      obuf[row * w + col] = t8(acc / spp);
      col = col + 1;
    }
    row = row + 1;
  }
  return 0;
}

// BUG(invert-row-oob-write, oob-write): the row loop bound is r <= h, so
// the min-is-white inversion writes one row past the output buffer.
fn invert_min_is_white(sbuf, obuf, w, h) {
  var r = 0;
  while (r <= h) {
    var c = 0;
    while (c < w) {
      var v = 255 - sbuf[imin(r, h - 1) * w + c];
      obuf[r * w + c] = v;
      c = c + 1;
    }
    r = r + 1;
  }
  return 0;
}

fn main() {
  var ifd = tiff_check_header();
  if (ifd < 0) { out(7000); return 1; }
  var fields = alloc(24);
  if (tiff_parse_ifd(ifd, fields) == 0) { return 1; }
  if (tiff_validate(fields) == 0) { return 1; }
  var w = ld16(fields);
  var h = ld16(fields + 2);
  var photometric = ld16(fields + 8);
  var strip_off = ld16(fields + 10);
  var strip_len = ld16(fields + 14);
  var spp = ld16(fields + 12);
  var compression = ld16(fields + 6);
  describe_orientation(ld16(fields + 16));
  if (spp == 0 || spp > 4) { out(7007); return 1; }
  var npix = w * h;
  var sbuf = alloc(npix);
  if (compression == 5) {
    unpack_bits(strip_off, strip_len, sbuf, npix);
  } else {
    copy_in(sbuf, 0, strip_off, imin(strip_len, npix));
  }
  var obuf = alloc(npix);
  average_samples(sbuf, w, h, spp, obuf);
  if (photometric == 0) {
    invert_min_is_white(sbuf, obuf, w, h);
  }
  // emit a digest of the converted image
  var sum = 0;
  var i = 0;
  while (i < npix) {
    sum = t16(sum + obuf[i]);
    i = i + 1;
  }
  out(sum);
  out(77780);
  return 0;
}
|}

let source = Prelude.wrap (Tiff_common.header_source ^ body)

let seed_small () =
  Tiff_common.build_file
    [ (256, 6); (257, 6); (258, 8); (262, 1); (277, 1) ]
    ~strip:(String.init 36 (fun i -> Char.chr (255 - (i * 3 land 0xFF))))

let seed_large () =
  Tiff_common.build_file
    [ (256, 26); (257, 52); (258, 8); (262, 1); (277, 1) ]
    ~strip:(String.init 1352 (fun i -> Char.chr (i * 11 land 0xFF)))

(* triggers spp-oob-read: three samples per pixel over a one-sample buffer *)
let seed_buggy_spp () =
  Tiff_common.build_file
    [ (256, 6); (257, 6); (258, 8); (262, 1); (277, 3) ]
    ~strip:(String.make 36 'p')

let seeds () =
  [
    ("small", seed_small ());
    ("large", seed_large ());
    ( "gray",
      Tiff_common.build_file
        [ (256, 12); (257, 10); (258, 8); (262, 1); (277, 1) ]
        ~strip:(String.make 120 'g') );
  ]
