(** The catalogue of target programs: the analogs of the paper's test
    subjects, with their MiniC sources, seed pools, bug-trigger seeds and
    planted-bug ground truth. *)

type t = {
  name : string; (* test driver, e.g. "readelf" *)
  package : string; (* e.g. "binutils-2.26" *)
  source : string; (* complete MiniC source *)
  seeds : (string * bytes) list; (* labelled benign seeds *)
  buggy_seeds : (string * bytes) list; (* seeds that trigger a planted bug *)
  planted_bugs : (string * string) list; (* (label, expected fault kind) *)
  cves : (string * string) list; (* (bug label, CVE id analog) *)
}

val all : t list
val by_name : string -> t option

val program : t -> Pbse_ir.Types.program
(** Compiles (and memoizes) the target's MiniC source. *)

val seed : t -> string -> bytes
(** Raises [Not_found] when the label is unknown (checks both benign and
    buggy pools). *)

val default_seed : t -> bytes
(** The paper's heuristic applied to the benign pool: among the 10
    smallest seeds, the one with the best concrete block coverage —
    approximated here as the first labelled "small". *)
