(** tcpdump analog: shallow, bounds-checked packet dissection — the
    paper's negative control (no bugs planted, none to find). *)

val name : string
val package : string

val source : string
(** Complete MiniC source (prelude included). *)

val planted_bugs : (string * string) list
(** (label, fault kind) ground truth; labels match the BUG(...) source
    annotations. *)

val seeds : unit -> (string * bytes) list
(** Labelled benign seeds; every one runs to a clean exit. *)

val seed_small : unit -> bytes
val seed_large : unit -> bytes
