type t = Buffer.t

let create () = Buffer.create 256
let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u16 b v =
  u8 b v;
  u8 b (v lsr 8)

let u32 b v =
  u16 b v;
  u16 b (v lsr 16)

let raw b s = Buffer.add_string b s
let fill b byte n = Buffer.add_string b (String.make n (Char.chr (byte land 0xFF)))
let pos b = Buffer.length b

(* Buffer has no random-access write; patching rebuilds the contents. *)
let patch_bytes b offset values =
  let data = Buffer.to_bytes b in
  List.iteri
    (fun i v -> Bytes.set data (offset + i) (Char.chr (v land 0xFF)))
    values;
  Buffer.clear b;
  Buffer.add_bytes b data

let patch_u16 b offset v = patch_bytes b offset [ v; v lsr 8 ]
let patch_u32 b offset v = patch_bytes b offset [ v; v lsr 8; v lsr 16; v lsr 24 ]
let contents b = Buffer.to_bytes b
