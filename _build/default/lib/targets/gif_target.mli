(** gif2tiff analog over a GIF-like container with an LZW-style decoder. *)

val name : string
val package : string

val source : string
(** Complete MiniC source (prelude included). *)

val planted_bugs : (string * string) list
(** (label, fault kind) ground truth; labels match the BUG(...) source
    annotations. *)

val seeds : unit -> (string * bytes) list
(** Labelled benign seeds; every one runs to a clean exit. *)

val seed_small : unit -> bytes
val seed_large : unit -> bytes

val seed_buggy_colormap : unit -> bytes
(** A pixel value beyond the colour-table size: colormap oob-read. *)
