(** Shared front end for the TIF-R container used by the tiff2rgba and
    tiff2bw analogs: header check, IFD parsing into a fields buffer,
    validation, PackBits decompression and orientation decoding. *)

val header_source : string
(** MiniC source of the shared functions; prepended to each driver. *)

val build_file : (int * int) list -> strip:string -> bytes
(** [build_file tags ~strip] assembles a consistent TIF-R file: header,
    strip data, then an IFD carrying [tags] plus the strip offset/count
    entries (tags 273/279 are appended automatically). *)
