(* tcpdump analog over a PCAP-like capture format.

   The paper reports finding no bugs in tcpdump: packets are captured and
   printed with little analysis. This target replicates that shape — a
   shallow, bounds-checked packet loop — and serves as the control: pbSE
   should find no bugs here, and the coverage gap between pbSE and KLEE
   should be smaller than on the deep parsers. *)

let name = "tcpdump"
let package = "tcpdump-4.7"
let planted_bugs : (string * string) list = []

let body =
  {|
// ---------------- tcpdump driver (PCAP-S format) ----------------

fn pcap_check_header() {
  if (iu32(0) != 0xA1B2C3D4) { return 0; }
  var version = iu16(4);
  if (version != 2) { return 0; }
  return 1;
}

fn print_packet(off, caplen) {
  var i = 0;
  var sum = 0;
  while (i < caplen) {
    sum = t16(sum + in(off + i));
    i = i + 1;
  }
  out(sum);
  return 0;
}

fn dissect_tcp(off, len) {
  if (len < 20) { out(4010); return 0; }
  var sport = in(off) << 8 | in(off + 1);
  var dport = in(off + 2) << 8 | in(off + 3);
  var flags = in(off + 13);
  out(sport);
  out(dport);
  if ((flags & 0x02) != 0) { out(4011); }  // SYN
  if ((flags & 0x10) != 0) { out(4012); }  // ACK
  if ((flags & 0x01) != 0) { out(4013); }  // FIN
  if ((flags & 0x04) != 0) { out(4014); }  // RST
  var doff = (in(off + 12) >> 4) * 4;
  if (doff < 20 || doff > len) { out(4015); return 0; }
  return len - doff;
}

fn dissect_udp(off, len) {
  if (len < 8) { out(4020); return 0; }
  var sport = in(off) << 8 | in(off + 1);
  var dport = in(off + 2) << 8 | in(off + 3);
  var ulen = in(off + 4) << 8 | in(off + 5);
  out(sport);
  out(dport);
  if (ulen > len) { out(4021); return 0; }
  if (dport == 53 || sport == 53) { out(4022); }  // DNS
  if (dport == 123) { out(4023); }                // NTP
  return ulen - 8;
}

fn dissect_icmp(off, len) {
  if (len < 4) { out(4030); return 0; }
  var kind = in(off);
  var code = in(off + 1);
  if (kind == 0) { out(4031); }
  else { if (kind == 8) { out(4032); }
  else { if (kind == 3) { out(4033 + code); }
  else { if (kind == 11) { out(4040); }
  else { out(4041); } } } }
  return len - 4;
}

fn dissect_ipv4(off, len) {
  if (len < 20) { out(4050); return 0; }
  var vihl = in(off);
  if ((vihl >> 4) != 4) { out(4051); return 0; }
  var ihl = (vihl & 15) * 4;
  if (ihl < 20 || ihl > len) { out(4052); return 0; }
  var total = in(off + 2) << 8 | in(off + 3);
  var ttl = in(off + 8);
  var proto = in(off + 9);
  if (total > len) { out(4053); }
  if (ttl < 2) { out(4054); }
  out(proto);
  var payload = off + ihl;
  var plen = len - ihl;
  if (proto == 6) { dissect_tcp(payload, plen); }
  else { if (proto == 17) { dissect_udp(payload, plen); }
  else { if (proto == 1) { dissect_icmp(payload, plen); }
  else { out(4055); } } }
  return 0;
}

fn dissect_ipv6(off, len) {
  if (len < 40) { out(4060); return 0; }
  var ver = in(off) >> 4;
  if (ver != 6) { out(4061); return 0; }
  var next = in(off + 6);
  var hops = in(off + 7);
  if (hops == 0) { out(4062); }
  out(next);
  if (next == 6) { dissect_tcp(off + 40, len - 40); }
  else { if (next == 17) { dissect_udp(off + 40, len - 40); }
  else { out(4063); } }
  return 0;
}

fn dissect_arp(off, len) {
  if (len < 8) { out(4070); return 0; }
  var htype = in(off) << 8 | in(off + 1);
  var op = in(off + 6) << 8 | in(off + 7);
  if (htype != 1) { out(4071); return 0; }
  if (op == 1) { out(4072); }
  else { if (op == 2) { out(4073); }
  else { out(4074); } }
  return 0;
}

fn classify(off, caplen) {
  if (caplen < 14) { out(4001); return 0; }
  var ethertype = in(off + 12) << 8 | in(off + 13);
  var payload = off + 14;
  var plen = caplen - 14;
  // 802.1Q VLAN tag indirection
  if (ethertype == 0x8100) {
    if (caplen < 18) { out(4002); return 0; }
    out(in(off + 14) << 8 | in(off + 15));
    ethertype = in(off + 16) << 8 | in(off + 17);
    payload = off + 18;
    plen = caplen - 18;
  }
  switch (ethertype) {
    case 0x0800: { dissect_ipv4(payload, plen); }
    case 0x86DD: { dissect_ipv6(payload, plen); }
    case 0x0806: { dissect_arp(payload, plen); }
    default: { out(0); }
  }
  return 0;
}

fn main() {
  if (pcap_check_header() == 0) { out(4000); return 1; }
  var size = in_size();
  var pos = 8;
  var packets = 0;
  while (pos + 8 <= size && packets < 64) {
    var ts = iu32(pos);
    var caplen = iu16(pos + 4);
    var origlen = iu16(pos + 6);
    if (caplen > origlen) { out(4002); return 1; }
    if (caplen > 2048) { out(4003); return 1; }
    out(ts);
    classify(pos + 8, caplen);
    print_packet(pos + 8, imin(caplen, size - pos - 8));
    pos = pos + 8 + caplen;
    packets = packets + 1;
  }
  out(packets);
  out(77783);
  return 0;
}
|}

let source = Prelude.wrap body

(* one ethernet frame: 14-byte header then a protocol payload *)
let frame kind =
  let f = Binbuf.create () in
  Binbuf.fill f 0xAA 6;
  Binbuf.fill f 0xBB 6;
  (match kind with
   | `Tcp | `Udp | `Icmp ->
     Binbuf.u8 f 0x08;
     Binbuf.u8 f 0x00;
     (* IPv4 header *)
     Binbuf.u8 f 0x45;
     Binbuf.u8 f 0;
     let proto, payload =
       match kind with
       | `Tcp ->
         (* 20-byte TCP header: SYN+ACK *)
         let t = Binbuf.create () in
         Binbuf.u8 t 0x01; Binbuf.u8 t 0xBB;  (* sport 443 *)
         Binbuf.u8 t 0xC0; Binbuf.u8 t 0x01;
         Binbuf.u32 t 1000; Binbuf.u32 t 2000;
         Binbuf.u8 t 0x50; Binbuf.u8 t 0x12;
         Binbuf.u16 t 0xFFFF; Binbuf.u16 t 0; Binbuf.u16 t 0;
         (6, Bytes.to_string (Binbuf.contents t))
       | `Udp ->
         let t = Binbuf.create () in
         Binbuf.u8 t 0x00; Binbuf.u8 t 0x35;  (* sport 53 *)
         Binbuf.u8 t 0x10; Binbuf.u8 t 0x01;
         Binbuf.u8 t 0x00; Binbuf.u8 t 0x0C;  (* length 12 *)
         Binbuf.u16 t 0;
         Binbuf.raw t "dns!";
         (17, Bytes.to_string (Binbuf.contents t))
       | _ ->
         let t = Binbuf.create () in
         Binbuf.u8 t 8; Binbuf.u8 t 0; Binbuf.u16 t 0; Binbuf.raw t "ping";
         (1, Bytes.to_string (Binbuf.contents t))
     in
     let total = 20 + String.length payload in
     Binbuf.u8 f ((total lsr 8) land 0xFF);
     Binbuf.u8 f (total land 0xFF);
     Binbuf.u16 f 0;
     Binbuf.u16 f 0x4000;
     Binbuf.u8 f 64;
     Binbuf.u8 f proto;
     Binbuf.u16 f 0;
     Binbuf.u32 f 0x0A000001;
     Binbuf.u32 f 0x0A000002;
     Binbuf.raw f payload
   | `Arp ->
     Binbuf.u8 f 0x08;
     Binbuf.u8 f 0x06;
     Binbuf.u8 f 0; Binbuf.u8 f 1;
     Binbuf.u8 f 0x08; Binbuf.u8 f 0;
     Binbuf.u8 f 6; Binbuf.u8 f 4;
     Binbuf.u8 f 0; Binbuf.u8 f 2;
     Binbuf.fill f 0xCC 20
   | `Vlan6 ->
     Binbuf.u8 f 0x81;
     Binbuf.u8 f 0x00;
     Binbuf.u8 f 0x00; Binbuf.u8 f 0x2A;
     Binbuf.u8 f 0x86; Binbuf.u8 f 0xDD;
     (* IPv6 header + UDP *)
     Binbuf.u8 f 0x60; Binbuf.fill f 0 3;
     Binbuf.u16 f 12;
     Binbuf.u8 f 17;
     Binbuf.u8 f 64;
     Binbuf.fill f 0x20 32;
     Binbuf.u8 f 0x00; Binbuf.u8 f 0x7B;
     Binbuf.u8 f 0x30 ; Binbuf.u8 f 0x39;
     Binbuf.u8 f 0; Binbuf.u8 f 0x0C;
     Binbuf.u16 f 0;
     Binbuf.raw f "ntp!");
  Bytes.to_string (Binbuf.contents f)

let build_seed ~npackets ~caplen:_ =
  let kinds = [| `Tcp; `Udp; `Icmp; `Arp; `Vlan6 |] in
  let b = Binbuf.create () in
  Binbuf.u32 b 0xA1B2C3D4;
  Binbuf.u16 b 2;
  Binbuf.u16 b 4;
  for p = 0 to npackets - 1 do
    let data = frame kinds.(p mod Array.length kinds) in
    Binbuf.u32 b (1700000000 + p);
    Binbuf.u16 b (String.length data);
    Binbuf.u16 b (String.length data);
    Binbuf.raw b data
  done;
  Binbuf.contents b

let seed_small () = build_seed ~npackets:2 ~caplen:20
let seed_large () = build_seed ~npackets:10 ~caplen:80

let seeds () = [ ("small", seed_small ()); ("large", seed_large ()) ]
