(** Little-endian binary buffer for constructing seed files. *)

type t

val create : unit -> t
val u8 : t -> int -> unit
val u16 : t -> int -> unit
val u32 : t -> int -> unit
val raw : t -> string -> unit
val fill : t -> int -> int -> unit
(** [fill b byte n] appends [n] copies of [byte]. *)

val pos : t -> int
(** Bytes appended so far. *)

val patch_u16 : t -> int -> int -> unit
(** [patch_u16 b offset v] overwrites two bytes already appended. *)

val patch_u32 : t -> int -> int -> unit

val contents : t -> bytes
