(* The MiniC standard prelude shared by every target program: input
   readers for little-endian fields, buffer helpers, and small numeric
   utilities. Every target source is compiled as [prelude ^ body]. *)

let source =
  {|
// ---- shared MiniC prelude ----

// little-endian field readers over the symbolic input file
fn iu16(o) { return in(o) | (in(o + 1) << 8); }
fn iu32(o) { return in(o) | (in(o + 1) << 8) | (in(o + 2) << 16) | (in(o + 3) << 24); }

// copy n input bytes starting at src into buf at off
fn copy_in(buf, off, src, n) {
  var i = 0;
  while (i < n) {
    buf[off + i] = in(src + i);
    i = i + 1;
  }
  return 0;
}

fn fill8(buf, off, v, n) {
  var i = 0;
  while (i < n) {
    buf[off + i] = v;
    i = i + 1;
  }
  return 0;
}

fn imin(a, b) { if (a < b) { return a; } return b; }
fn imax(a, b) { if (a > b) { return a; } return b; }

// unsigned LEB128 at input offset o, 5 bytes max; returns the value.
// use uleb_len for the encoded length.
fn uleb(o) {
  var result = 0;
  var shift = 0;
  var i = 0;
  while (i < 5) {
    var byte = in(o + i);
    result = result | ((byte & 0x7F) << shift);
    if ((byte & 0x80) == 0) { return result; }
    shift = shift + 7;
    i = i + 1;
  }
  return result;
}

fn uleb_len(o) {
  var i = 0;
  while (i < 5) {
    if ((in(o + i) & 0x80) == 0) { return i + 1; }
    i = i + 1;
  }
  return 5;
}

// ---- end prelude ----
|}

let wrap body = source ^ body
