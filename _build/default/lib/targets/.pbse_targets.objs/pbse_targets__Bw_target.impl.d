lib/targets/bw_target.ml: Char Prelude String Tiff_common
