lib/targets/binbuf.mli:
