lib/targets/tiff_common.mli:
