lib/targets/prelude.mli:
