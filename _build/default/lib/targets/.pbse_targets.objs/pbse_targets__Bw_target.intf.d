lib/targets/bw_target.mli:
