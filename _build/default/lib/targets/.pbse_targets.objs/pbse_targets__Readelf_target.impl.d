lib/targets/readelf_target.ml: Binbuf List Prelude Printf String
