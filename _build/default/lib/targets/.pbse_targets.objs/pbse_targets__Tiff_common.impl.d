lib/targets/tiff_common.ml: Binbuf List String
