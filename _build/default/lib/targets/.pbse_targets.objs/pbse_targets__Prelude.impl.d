lib/targets/prelude.ml:
