lib/targets/tcpdump_target.ml: Array Binbuf Bytes Prelude String
