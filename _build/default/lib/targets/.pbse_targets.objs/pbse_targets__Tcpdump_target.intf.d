lib/targets/tcpdump_target.mli:
