lib/targets/readelf_target.mli:
